//===- om/Analysis.cpp - Link-time dataflow analysis ----------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "om/Analysis.h"

#include "isa/Registers.h"
#include "support/ContentHash.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace om64;
using namespace om64::isa;
using namespace om64::om;
using namespace om64::om::analysis;

//===----------------------------------------------------------------------===//
// Abstract values
//===----------------------------------------------------------------------===//

AbsVal AbsVal::meet(const AbsVal &A, const AbsVal &B) {
  if (A.Kind == ValueKind::Bottom)
    return B;
  if (B.Kind == ValueKind::Bottom)
    return A;
  if (A == B)
    return A;
  // Disagreeing global-derived values still agree on the region, which is
  // all the scheduler's base disambiguation needs.
  if (A.isGlobalDerived() && B.isGlobalDerived())
    return AbsVal::globalPtr();
  return AbsVal::unknown();
}

//===----------------------------------------------------------------------===//
// Memory abstract state
//===----------------------------------------------------------------------===//

const MemVal *MemState::slot(int64_t Off) const {
  auto It = std::lower_bound(
      Slots.begin(), Slots.end(), Off,
      [](const std::pair<int64_t, MemVal> &E, int64_t O) {
        return E.first < O;
      });
  if (It != Slots.end() && It->first == Off)
    return &It->second;
  return nullptr;
}

void MemState::setSlot(int64_t Off, const MemVal &V) {
  auto It = std::lower_bound(
      Slots.begin(), Slots.end(), Off,
      [](const std::pair<int64_t, MemVal> &E, int64_t O) {
        return E.first < O;
      });
  if (It != Slots.end() && It->first == Off) {
    It->second = V;
    return;
  }
  Slots.insert(It, {Off, V});
}

void MemState::invalidateSlots(int64_t Off, int64_t Size) {
  // Tracked slots are 8 bytes wide: [SlotOff, SlotOff + 8) overlaps the
  // store's [Off, Off + Size) iff SlotOff > Off - 8 and SlotOff < Off+Size.
  auto Cmp = [](const std::pair<int64_t, MemVal> &E, int64_t O) {
    return E.first < O;
  };
  auto First = std::lower_bound(Slots.begin(), Slots.end(), Off - 7, Cmp);
  auto Last = std::lower_bound(First, Slots.end(), Off + Size, Cmp);
  Slots.erase(First, Last);
}

namespace {

constexpr unsigned GpUnit = 29; // intUnit(isa::GP)
constexpr unsigned PvUnit = 27; // intUnit(isa::PV)
constexpr unsigned SpUnit = 30; // intUnit(isa::SP)
constexpr unsigned RaUnit = 26; // intUnit(isa::RA)

uint64_t unitBit(unsigned U) { return 1ull << U; }

const char *unitName(unsigned U) {
  return U < 32 ? intRegName(static_cast<uint8_t>(U))
                : fpRegName(static_cast<uint8_t>(U - 32));
}

/// Register units a call conventionally reads: integer and fp arguments,
/// SP and GP (the callee runs on the caller's stack and, without a live
/// prologue, on the caller's GP), and the callee-saved registers (the
/// callee's own prologue *reads* them to save them).
uint64_t conventionalCallUse() {
  uint64_t M = 0;
  for (unsigned R = A0; R <= A5; ++R)
    M |= unitBit(intUnit(static_cast<uint8_t>(R)));
  for (unsigned F = 16; F <= 21; ++F) // f16..f21: fp arguments
    M |= unitBit(fpUnit(static_cast<uint8_t>(F)));
  for (unsigned R = S0; R <= S5; ++R)
    M |= unitBit(intUnit(static_cast<uint8_t>(R)));
  M |= unitBit(intUnit(FP)) | unitBit(intUnit(SP)) | unitBit(intUnit(GP));
  for (unsigned F = 2; F <= 9; ++F) // f2..f9: fp callee-saved
    M |= unitBit(fpUnit(static_cast<uint8_t>(F)));
  return M;
}

/// Register units conventionally live at a return: the return values, the
/// caller's stack and callee-saved state, and GP (the caller may continue
/// on it when its post-call reset was deleted).
uint64_t conventionalRetUse() {
  uint64_t M = unitBit(intUnit(V0)) | unitBit(fpUnit(F0));
  for (unsigned R = S0; R <= S5; ++R)
    M |= unitBit(intUnit(static_cast<uint8_t>(R)));
  M |= unitBit(intUnit(FP)) | unitBit(intUnit(SP)) | unitBit(intUnit(GP));
  for (unsigned F = 2; F <= 9; ++F)
    M |= unitBit(fpUnit(static_cast<uint8_t>(F)));
  return M;
}

/// Register units a call may clobber (everything not callee-saved; PV's
/// treatment depends on the callee's summary and is handled separately).
uint64_t callerSavedUnits() {
  uint64_t M = 0;
  for (unsigned U = 0; U < NumRegUnits; ++U) {
    if (isZeroUnit(U))
      continue;
    if (U < 32) {
      if ((U >= S0 && U <= S5) || U == intUnit(FP) || U == SpUnit ||
          U == GpUnit || U == PvUnit)
        continue;
      M |= unitBit(U);
    } else {
      unsigned F = U - 32;
      if (F >= 2 && F <= 9) // f2..f9 callee-saved
        continue;
      M |= unitBit(U);
    }
  }
  return M;
}

/// Register units the L007 audit examines at returns: the callee-saved
/// set without RA. A call rewrites RA by design, so RA misuse surfaces
/// through its save slot (L008) rather than as a preservation failure.
uint64_t calleeSavedUnits() {
  uint64_t M = 0;
  for (unsigned R = S0; R <= S5; ++R)
    M |= unitBit(intUnit(static_cast<uint8_t>(R)));
  M |= unitBit(intUnit(FP));
  for (unsigned F = 2; F <= 9; ++F)
    M |= unitBit(fpUnit(static_cast<uint8_t>(F)));
  return M;
}

const uint64_t CallUseMask = conventionalCallUse();
const uint64_t RetUseMask = conventionalRetUse();
const uint64_t CallClobberMask = callerSavedUnits();
const uint64_t CalleeSavedMask = calleeSavedUnits();
const uint64_t AllUnitsMask =
    ~(unitBit(intUnit(Zero)) | unitBit(fpUnit(FZero)));

/// One data-memory access, classified for the memory-domain checks. Lda
/// and Ldah are address arithmetic, not accesses.
struct MemAccess {
  bool IsMem = false;
  bool IsStore = false;
  int64_t Size = 0;
};

MemAccess accessOf(const Inst &I) {
  switch (I.Op) {
  case Opcode::Ldl:
    return {true, false, 4};
  case Opcode::Ldq:
  case Opcode::Ldt:
    return {true, false, 8};
  case Opcode::Stl:
    return {true, true, 4};
  case Opcode::Stq:
  case Opcode::Stt:
    return {true, true, 8};
  default:
    return {};
  }
}

/// Register unit a store's value comes from (STT stores an fp register).
unsigned storedUnit(const Inst &I) {
  return I.Op == Opcode::Stt ? fpUnit(I.Ra) : intUnit(I.Ra);
}

bool isCall(const SymInst &SI) {
  return SI.Kind == SKind::DirectCall || SI.Kind == SKind::JsrViaGat ||
         SI.Kind == SKind::JsrIndirect;
}

bool isHalt(const Inst &I) {
  return classOf(I.Op) == InstClass::Pal &&
         (static_cast<uint32_t>(I.Disp) & 0xffu) ==
             static_cast<uint32_t>(PalFunc::Halt);
}

} // namespace

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

bool Cfg::dominates(uint32_t A, uint32_t B) const {
  if (A >= Blocks.size() || B >= Blocks.size() || !Reachable[A] ||
      !Reachable[B])
    return false;
  while (true) {
    if (B == A)
      return true;
    uint32_t Up = Idom[B];
    if (Up == ~0u || Up == B)
      return false;
    B = Up;
  }
}

Cfg analysis::buildCfg(const SymProc &Proc) {
  Cfg C;
  const std::vector<SymInst> &Insts = Proc.Insts;
  const uint32_t N = static_cast<uint32_t>(Insts.size());
  if (N == 0)
    return C;

  // Leaders: the entry, every local branch target, and every instruction
  // after a live terminator (calls included — a call ends its block with a
  // fall-through edge, which keeps call transfer functions edge-local).
  // Nullified instructions are plain no-ops.
  std::vector<uint8_t> Leader(N, 0);
  Leader[0] = 1;
  for (uint32_t I = 0; I < N; ++I) {
    const SymInst &SI = Insts[I];
    if (SI.Nullified)
      continue;
    if (SI.Kind == SKind::LocalBranch && SI.TargetIdx >= 0 &&
        static_cast<uint32_t>(SI.TargetIdx) < N)
      Leader[SI.TargetIdx] = 1;
    if (isTerminator(SI.I.Op) && I + 1 < N)
      Leader[I + 1] = 1;
    if (SI.I.Op == Opcode::Jmp)
      C.HasComputedJump = true;
  }

  C.BlockOf.assign(N, 0);
  for (uint32_t I = 0; I < N; ++I) {
    if (Leader[I]) {
      CfgBlock B;
      B.Begin = I;
      C.Blocks.push_back(B);
    }
    C.BlockOf[I] = static_cast<uint32_t>(C.Blocks.size()) - 1;
  }
  for (size_t B = 0; B < C.Blocks.size(); ++B)
    C.Blocks[B].End = B + 1 < C.Blocks.size() ? C.Blocks[B + 1].Begin : N;

  // Edges. A successor past the last instruction is a fall-off-the-end
  // edge, recorded per block rather than as an edge.
  C.FallsOff.assign(C.Blocks.size(), 0);
  for (uint32_t B = 0; B < C.Blocks.size(); ++B) {
    CfgBlock &Blk = C.Blocks[B];
    const SymInst &Last = Insts[Blk.End - 1];
    auto addSucc = [&](uint32_t Target) {
      if (Target >= N) {
        C.FallsOff[B] = 1;
        return;
      }
      Blk.Succs[Blk.NumSuccs++] = C.BlockOf[Target];
    };
    if (Last.Nullified) {
      addSucc(Blk.End);
    } else if (Last.Kind == SKind::LocalBranch) {
      addSucc(static_cast<uint32_t>(Last.TargetIdx));
      if (isCondBranch(Last.I.Op))
        addSucc(Blk.End);
    } else if (isCall(Last)) {
      addSucc(Blk.End);
    } else if (classOf(Last.I.Op) == InstClass::Jump) {
      // Ret or a computed Jmp: no successors the symbolic form can see.
    } else if (isHalt(Last.I)) {
      // Halt: execution stops.
    } else {
      addSucc(Blk.End);
    }
  }
  for (uint32_t B = 0; B < C.Blocks.size(); ++B)
    for (uint32_t S = 0; S < C.Blocks[B].NumSuccs; ++S)
      C.Blocks[C.Blocks[B].Succs[S]].Preds.push_back(B);

  // Reachability and reverse postorder from the entry block.
  C.Reachable.assign(C.Blocks.size(), 0);
  std::vector<uint32_t> Post;
  Post.reserve(C.Blocks.size());
  {
    // Iterative DFS; the second stack slot tracks the next successor.
    std::vector<std::pair<uint32_t, uint32_t>> Stack;
    Stack.emplace_back(0u, 0u);
    C.Reachable[0] = 1;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc < C.Blocks[B].NumSuccs) {
        uint32_t S = C.Blocks[B].Succs[NextSucc++];
        if (!C.Reachable[S]) {
          C.Reachable[S] = 1;
          Stack.emplace_back(S, 0u);
        }
      } else {
        Post.push_back(B);
        Stack.pop_back();
      }
    }
  }
  C.Rpo.assign(Post.rbegin(), Post.rend());
  for (uint32_t B = 0; B < C.Blocks.size(); ++B)
    if (C.Reachable[B] && C.FallsOff[B])
      C.FallsOffEnd = true;

  // Immediate dominators: the Cooper-Harvey-Kennedy iteration over RPO.
  std::vector<uint32_t> RpoPos(C.Blocks.size(), ~0u);
  for (uint32_t I = 0; I < C.Rpo.size(); ++I)
    RpoPos[C.Rpo[I]] = I;
  C.Idom.assign(C.Blocks.size(), ~0u);
  auto intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoPos[A] > RpoPos[B])
        A = C.Idom[A] == ~0u ? 0 : C.Idom[A];
      while (RpoPos[B] > RpoPos[A])
        B = C.Idom[B] == ~0u ? 0 : C.Idom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t I = 1; I < C.Rpo.size(); ++I) {
      uint32_t B = C.Rpo[I];
      uint32_t NewIdom = ~0u;
      for (uint32_t P : C.Blocks[B].Preds) {
        if (!C.Reachable[P])
          continue;
        if (P != 0 && C.Idom[P] == ~0u)
          continue; // not yet processed this round
        NewIdom = NewIdom == ~0u ? P : intersect(NewIdom, P);
      }
      if (NewIdom != ~0u && C.Idom[B] != NewIdom) {
        C.Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Transfer functions
//===----------------------------------------------------------------------===//

namespace {

/// Everything a transfer function needs besides the state: the program and
/// the current interprocedural summaries (possibly mid-fixpoint).
struct TransferCtx {
  const SymbolicProgram &SP;
  const std::vector<ProcSummary> &Summaries;
  GpVal IndirectExitGp;
  bool IndirectClobbersPv = true;
  bool IndirectReturns = true;
  bool IndirectReadsPv = true;
  /// When set (lint only), AddressLoad provenness resolves MaybeEntry
  /// through this converged entry-GP summary, exactly as gpBefore and the
  /// L002 check do. The fixpoint rounds leave it null: they run before
  /// EntryGp exists, which is what keeps EntryGp out of the cache keys.
  const GpVal *ResolveEntry = nullptr;
};

/// Whether \p Raw, with MaybeEntry resolved through \p EntryGp, is exactly
/// the procedure's own group GP (the L002/gpBefore resolution).
bool gpProvenAt(const SymProc &Proc, const GpVal &Raw, const GpVal &EntryGp) {
  GpVal G = Raw;
  if (G.MaybeEntry) {
    if (EntryGp.isBottom())
      return false; // never entered; nothing is proven
    G.MaybeEntry = false;
    G.Groups |= EntryGp.Groups;
    G.MaybeOther |= EntryGp.MaybeOther;
  }
  return G.provenGroup(Proc.GpGroup);
}

/// Resolves a call site to its callee procedure; ~0u means "indirect or
/// through a data symbol" (use the combined indirect summary).
uint32_t calleeOf(const SymbolicProgram &SP, const SymInst &SI) {
  if (SI.Kind == SKind::DirectCall)
    return SI.TargetProc;
  if (SI.Kind == SKind::JsrViaGat && SI.LitId != ~0u) {
    auto It = SP.Lits.find(SI.LitId);
    if (It != SP.Lits.end() && It->second.TargetSym < SP.Syms.size() &&
        SP.Syms[It->second.TargetSym].IsProc)
      return SP.Syms[It->second.TargetSym].ProcIdx;
  }
  return ~0u;
}

/// Keeps the scalar GP slot consistent with the may-set domain. Entry and
/// group GPs are global-segment addresses, so any GP that cannot be
/// MaybeOther is at least GlobalPtr.
void syncGpScalar(const SymProc &Proc, ValueState &S) {
  if (S.Gp.provenGroup(Proc.GpGroup))
    S.R[GpUnit] = AbsVal::gpOfGroup(Proc.GpGroup);
  else if (!S.Gp.MaybeOther && (S.Gp.MaybeEntry || S.Gp.Groups != 0))
    S.R[GpUnit] = AbsVal::globalPtr();
  else
    S.R[GpUnit] = AbsVal::unknown();
}

void setUnit(ValueState &S, unsigned U, const AbsVal &V) {
  if (U == ~0u || isZeroUnit(U))
    return;
  S.R[U] = V;
  if (U == GpUnit)
    S.Gp = GpVal::other(); // a write outside a GP-disp pair is unpredictable
}

/// Forward transfer of one instruction over a value state. Nullified
/// instructions are no-ops. Control effects (successors) live in the CFG;
/// this models only register contents and the "call never returns" cut.
void applyInst(const TransferCtx &C, const SymProc &Proc, const SymInst &SI,
               ValueState &S) {
  if (S.Unreachable || SI.Nullified)
    return;
  const Inst &I = SI.I;

  // GP-establishing pairs and GAT loads first: their SKind carries meaning
  // the raw opcode does not.
  switch (SI.Kind) {
  case SKind::GpHigh:
    S.Gp = GpVal::other(); // mid-pair: GP holds a partial value
    S.R[GpUnit] = AbsVal::unknown();
    return;
  case SKind::GpLow:
    S.Gp = GpVal::ofGroup(Proc.GpGroup);
    syncGpScalar(Proc, S);
    return;
  case SKind::AddressLoad: {
    // Loads &TargetSym from the GAT (or computes it GP-relative once
    // converted); the result is meaningful only under the right GP.
    AbsVal V = AbsVal::unknown();
    bool Proven = C.ResolveEntry
                      ? gpProvenAt(Proc, S.Gp, *C.ResolveEntry)
                      : S.Gp.provenGroup(Proc.GpGroup);
    if (Proven && SI.TargetSym < C.SP.Syms.size()) {
      const PSym &Sym = C.SP.Syms[SI.TargetSym];
      V = Sym.IsProc ? AbsVal::entryOf(Sym.ProcIdx)
                     : AbsVal::addrOf(SI.TargetSym);
    }
    setUnit(S, intUnit(I.Ra), V);
    return;
  }
  default:
    break;
  }

  if (isCall(SI)) {
    uint32_t Callee = calleeOf(C.SP, SI);
    GpVal ExitGp = C.IndirectExitGp;
    bool ClobbersPv = C.IndirectClobbersPv;
    bool Returns = C.IndirectReturns;
    if (Callee != ~0u && Callee < C.Summaries.size()) {
      const ProcSummary &Sum = C.Summaries[Callee];
      ExitGp = Sum.ExitGp;
      ClobbersPv = Sum.ClobbersPv;
      Returns = Sum.Returns;
    }
    if (!Returns) {
      S = ValueState(); // everything after this call is unreachable
      return;
    }
    GpVal PreGp = S.Gp;
    for (unsigned U = 0; U < NumRegUnits; ++U)
      if (CallClobberMask & unitBit(U))
        S.R[U] = AbsVal::unknown();
    if (ClobbersPv)
      S.R[PvUnit] = AbsVal::unknown();
    // Compose the callee's exit-GP summary with the caller's value:
    // MaybeEntry in the summary means "some path returns with the GP the
    // callee was entered with", i.e. this site's pre-call GP.
    GpVal After;
    After.Groups = ExitGp.Groups | (ExitGp.MaybeEntry ? PreGp.Groups : 0);
    After.MaybeOther =
        ExitGp.MaybeOther || (ExitGp.MaybeEntry && PreGp.MaybeOther);
    After.MaybeEntry = ExitGp.MaybeEntry && PreGp.MaybeEntry;
    S.Gp = After;
    syncGpScalar(Proc, S);
    return;
  }

  switch (classOf(I.Op)) {
  case InstClass::Pal:
    setUnit(S, regUnitWritten(I), AbsVal::unknown());
    return;
  case InstClass::LoadAddress: {
    // LDA/LDAH: pointer arithmetic. A zero-displacement LDA is a move;
    // otherwise the result stays in the base value's region.
    AbsVal Base = S.R[intUnit(I.Rb)];
    AbsVal V;
    if (I.Op == Opcode::Lda && I.Disp == 0)
      V = Base;
    else if (Base.Kind == ValueKind::Stack)
      V = AbsVal::stack();
    else if (Base.isGlobalDerived())
      V = AbsVal::globalPtr();
    else
      V = AbsVal::unknown();
    setUnit(S, intUnit(I.Ra), V);
    return;
  }
  case InstClass::IntOp: {
    AbsVal A = S.R[intUnit(I.Ra)];
    AbsVal B = I.IsLit ? AbsVal::unknown() : S.R[intUnit(I.Rb)];
    AbsVal V = AbsVal::unknown();
    switch (I.Op) {
    case Opcode::Bis:
      // The canonical move: BIS with one zero operand copies the other.
      if (I.Ra == Zero && !I.IsLit)
        V = B;
      else if (!I.IsLit && I.Rb == Zero)
        V = A;
      else if (I.IsLit && I.Lit == 0)
        V = A;
      break;
    case Opcode::Addq:
    case Opcode::Subq:
    case Opcode::S4addq:
    case Opcode::S8addq:
      // Pointer arithmetic keeps the pointer operand's region: MLang
      // derives a pointer only from its own object, so for defined
      // executions the sum stays in that object's segment (DESIGN.md
      // records the out-of-bounds caveat).
      if (A.Kind == ValueKind::Stack || B.Kind == ValueKind::Stack)
        V = AbsVal::stack();
      else if (A.isGlobalDerived() || B.isGlobalDerived())
        V = AbsVal::globalPtr();
      break;
    default:
      break;
    }
    setUnit(S, intUnit(I.Rc), V);
    return;
  }
  default:
    setUnit(S, regUnitWritten(I), AbsVal::unknown());
    return;
  }
}

void setMemUnit(MemState &M, unsigned U, const MemVal &V) {
  if (U == ~0u || isZeroUnit(U))
    return;
  M.R[U] = V;
}

/// Forward transfer of one instruction over a memory state. \p S is the
/// value state *before* the instruction (callers run applyMem first, then
/// applyInst): it supplies the GP proof for AddressLoad and nothing else.
/// Mirrors applyInst's reachability cut at provably non-returning calls,
/// so MemState::Unreachable stays in lockstep with ValueState's.
void applyMem(const TransferCtx &C, const SymProc &Proc, const SymInst &SI,
              const ValueState &S, MemState &M) {
  if (M.Unreachable || SI.Nullified)
    return;
  const Inst &I = SI.I;

  switch (SI.Kind) {
  case SKind::GpHigh:
  case SKind::GpLow:
    M.R[GpUnit] = MemVal::unknown();
    return;
  case SKind::AddressLoad: {
    // GAT slot provenance: the loaded register is &TargetSym exactly when
    // the value transfer proves it (procedure addresses are not tracked —
    // no data access ever goes through one legitimately).
    MemVal V = MemVal::unknown();
    bool Proven = C.ResolveEntry
                      ? gpProvenAt(Proc, S.Gp, *C.ResolveEntry)
                      : S.Gp.provenGroup(Proc.GpGroup);
    if (Proven && SI.TargetSym < C.SP.Syms.size() &&
        !C.SP.Syms[SI.TargetSym].IsProc)
      V = MemVal::gatAddr(SI.TargetSym, 0);
    setMemUnit(M, intUnit(I.Ra), V);
    return;
  }
  default:
    break;
  }

  if (isCall(SI)) {
    // Callee-saved facts survive a call only when the callee provably
    // preserves the unit; invisible callees (indirect sites the program
    // analysis cannot enumerate) are assumed convention-abiding, so L007
    // only ever fires on a positive proof. SP is restored by every
    // convention-abiding callee; the frame slots survive because no
    // callee can name this frame (MLang has no address-of-local — the
    // same caveat memBaseRegions and the rescheduler rely on).
    uint32_t Callee = calleeOf(C.SP, SI);
    uint64_t Preserved = ~0ull;
    bool Returns = C.IndirectReturns;
    if (Callee != ~0u && Callee < C.Summaries.size()) {
      Preserved = C.Summaries[Callee].PreservedSaved;
      Returns = C.Summaries[Callee].Returns;
    }
    if (!Returns) {
      M = MemState(); // everything after this call is unreachable
      return;
    }
    for (unsigned U = 0; U < NumRegUnits; ++U) {
      if (isZeroUnit(U) || U == SpUnit)
        continue;
      if ((CalleeSavedMask & unitBit(U)) && (Preserved & unitBit(U)))
        continue;
      M.R[U] = MemVal::unknown();
    }
    return;
  }

  MemAccess A = accessOf(I);
  if (A.IsMem) {
    const MemVal Base = M.R[intUnit(I.Rb)];
    if (A.IsStore) {
      if (Base.Kind == MemVal::K::SpRel) {
        int64_t Addr = Base.Off + I.Disp;
        M.invalidateSlots(Addr, A.Size);
        if (A.Size == 8)
          M.setSlot(Addr, M.R[storedUnit(I)]);
      }
      // Stores through global-derived or unknown bases cannot touch this
      // frame's slots: globals live in a disjoint segment, and no pointer
      // into the stack escapes (no address-of-local; DESIGN.md records
      // the caveat).
      return;
    }
    MemVal V = MemVal::unknown();
    if (Base.Kind == MemVal::K::SpRel && A.Size == 8)
      if (const MemVal *Slot = M.slot(Base.Off + I.Disp))
        V = *Slot;
    setMemUnit(M, regUnitWritten(I), V);
    return;
  }

  switch (classOf(I.Op)) {
  case InstClass::LoadAddress: {
    const MemVal Base = M.R[intUnit(I.Rb)];
    MemVal V = MemVal::unknown();
    if (I.Op == Opcode::Lda) {
      if (Base.Kind == MemVal::K::SpRel)
        V = MemVal::spRel(Base.Off + I.Disp);
      else if (Base.Kind == MemVal::K::GatAddr)
        V = MemVal::gatAddr(Base.Id, Base.Off + I.Disp);
      else if (I.Disp == 0)
        V = Base; // a zero-displacement LDA is a move
    }
    setMemUnit(M, intUnit(I.Ra), V);
    return;
  }
  case InstClass::IntOp: {
    MemVal V = MemVal::unknown();
    if (I.Op == Opcode::Bis) {
      if (I.Ra == Zero && !I.IsLit)
        V = M.R[intUnit(I.Rb)];
      else if (!I.IsLit && I.Rb == Zero)
        V = M.R[intUnit(I.Ra)];
      else if (I.IsLit && I.Lit == 0)
        V = M.R[intUnit(I.Ra)];
    }
    setMemUnit(M, intUnit(I.Rc), V);
    return;
  }
  case InstClass::FpOp: {
    MemVal V = MemVal::unknown();
    if (I.Op == Opcode::Cpys && I.Ra == I.Rb)
      V = M.R[fpUnit(I.Ra)]; // the exact fp move
    setMemUnit(M, regUnitWritten(I), V);
    return;
  }
  default:
    setMemUnit(M, regUnitWritten(I), MemVal::unknown());
    return;
  }
}

void meetMemInto(MemState &Into, const MemState &From) {
  if (From.Unreachable)
    return;
  if (Into.Unreachable) {
    Into = From;
    return;
  }
  for (unsigned U = 0; U < NumRegUnits; ++U)
    Into.R[U] = MemVal::meet(Into.R[U], From.R[U]);
  // Keep only the slots both paths agree on (sorted intersection).
  std::vector<std::pair<int64_t, MemVal>> Keep;
  size_t A = 0, B = 0;
  while (A < Into.Slots.size() && B < From.Slots.size()) {
    if (Into.Slots[A].first < From.Slots[B].first) {
      ++A;
    } else if (From.Slots[B].first < Into.Slots[A].first) {
      ++B;
    } else {
      if (Into.Slots[A].second == From.Slots[B].second)
        Keep.push_back(Into.Slots[A]);
      ++A;
      ++B;
    }
  }
  Into.Slots = std::move(Keep);
}

bool sameMem(const MemState &A, const MemState &B) {
  if (A.Unreachable != B.Unreachable)
    return false;
  if (A.Unreachable)
    return true;
  return A.R == B.R && A.Slots == B.Slots;
}

/// The memory state every procedure is entered with: SP is the frame
/// anchor, and every callee-saved unit (plus RA, whose save slot L008
/// watches) still holds its own entry value.
MemState entryMemState() {
  MemState M;
  M.Unreachable = false;
  M.R[SpUnit] = MemVal::spRel(0);
  for (unsigned R = S0; R <= S5; ++R)
    M.R[intUnit(static_cast<uint8_t>(R))] =
        MemVal::savedOf(intUnit(static_cast<uint8_t>(R)));
  M.R[intUnit(FP)] = MemVal::savedOf(intUnit(FP));
  M.R[RaUnit] = MemVal::savedOf(RaUnit);
  for (unsigned F = 2; F <= 9; ++F)
    M.R[fpUnit(static_cast<uint8_t>(F))] =
        MemVal::savedOf(fpUnit(static_cast<uint8_t>(F)));
  return M;
}

void meetInto(ValueState &Into, const ValueState &From) {
  if (From.Unreachable)
    return;
  if (Into.Unreachable) {
    Into = From;
    return;
  }
  for (unsigned U = 0; U < NumRegUnits; ++U)
    Into.R[U] = AbsVal::meet(Into.R[U], From.R[U]);
  Into.Gp |= From.Gp;
}

bool sameState(const ValueState &A, const ValueState &B) {
  if (A.Unreachable != B.Unreachable)
    return false;
  if (A.Unreachable)
    return true;
  return A.R == B.R && A.Gp == B.Gp;
}

/// The abstract state every procedure is entered with. Temporaries are
/// provably uninitialized (the basis of L001); argument, callee-saved, and
/// linkage registers hold caller values, defined by convention (the loader
/// provides SP, RA, GP, and PV for the entry procedure). GP starts as the
/// MaybeEntry marker, resolved against the procedure's entry summary at
/// query time, so the per-procedure analysis is independent of EntryGp.
ValueState entryState(uint32_t ProcIdx) {
  ValueState S;
  S.Unreachable = false;
  for (unsigned U = 0; U < NumRegUnits; ++U)
    S.R[U] = AbsVal::uninit();
  auto def = [&](unsigned U) { S.R[U] = AbsVal::unknown(); };
  def(intUnit(Zero));
  def(fpUnit(FZero));
  for (unsigned R = A0; R <= A5; ++R)
    def(intUnit(static_cast<uint8_t>(R)));
  for (unsigned F = 16; F <= 21; ++F)
    def(fpUnit(static_cast<uint8_t>(F)));
  for (unsigned R = S0; R <= S5; ++R)
    def(intUnit(static_cast<uint8_t>(R)));
  for (unsigned F = 2; F <= 9; ++F)
    def(fpUnit(static_cast<uint8_t>(F)));
  def(intUnit(FP));
  def(RaUnit);
  def(fpUnit(F0)); // scratch, but conventionally holds the caller's value
  S.R[SpUnit] = AbsVal::stack();
  S.R[PvUnit] = AbsVal::entryOf(ProcIdx);
  S.Gp = GpVal::entry();
  S.R[GpUnit] = AbsVal::globalPtr();
  return S;
}

using ProcRound = om::analysis::detail::ProcRound;

/// Runs the intra-procedural value fixpoint for one procedure under the
/// given (mid-fixpoint) summaries and extracts the round products.
ProcRound analyzeProcRound(const TransferCtx &C, const Cfg &Cfg_,
                           uint32_t ProcIdx) {
  const SymProc &Proc = C.SP.Procs[ProcIdx];
  ProcRound R;
  R.Values.In.assign(Cfg_.Blocks.size(), ValueState());
  if (Cfg_.Blocks.empty())
    return R;
  R.Values.In[0] = entryState(ProcIdx);
  // The memory states ride the same fixpoint (their transfers need the
  // value state only for the AddressLoad GP proof); they are consumed by
  // the PreservedSaved extraction below and then discarded — the lint
  // recomputes them per procedure with entry-GP resolution.
  std::vector<MemState> MemIn(Cfg_.Blocks.size());
  MemIn[0] = entryMemState();

  // Iterate over RPO to a fixpoint: meets only descend the lattice, so
  // in-states are meet-accumulated and never reset. (The entry block keeps
  // its entry state met with any back edges into instruction 0.)
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Cfg_.Rpo) {
      ValueState S = R.Values.In[B];
      MemState M = MemIn[B];
      if (S.Unreachable)
        continue;
      const CfgBlock &Blk = Cfg_.Blocks[B];
      for (uint32_t I = Blk.Begin; I < Blk.End; ++I) {
        applyMem(C, Proc, Proc.Insts[I], S, M);
        applyInst(C, Proc, Proc.Insts[I], S);
      }
      for (uint32_t SuccI = 0; SuccI < Blk.NumSuccs; ++SuccI) {
        uint32_t Succ = Blk.Succs[SuccI];
        ValueState &In = R.Values.In[Succ];
        ValueState Old = In;
        meetInto(In, S);
        if (!sameState(Old, In))
          Changed = true;
        MemState &MIn = MemIn[Succ];
        MemState MOld = MIn;
        meetMemInto(MIn, M);
        if (!sameMem(MOld, MIn))
          Changed = true;
      }
    }
  }

  // Summary extraction: walk each reachable block once more, recording
  // call-site GP values, exit GP at returns, the PV-clobber bit, and the
  // callee-saved units still provably holding their entry values at every
  // reachable RET. Computed-jump exits leave PreservedSaved alone: the
  // invisible continuation is assumed convention-abiding, so a cleared
  // bit is always a positive clobber proof.
  R.Summary.ReadsPvAtEntry = false;
  for (const SymInst &SI : Proc.Insts)
    if (SI.Kind == SKind::GpHigh && !SI.Nullified &&
        SI.GpKind == obj::GpDispKind::Prologue)
      R.Summary.ReadsPvAtEntry = true;
  R.Summary.ClobbersPv = false;
  R.Summary.Returns = false;
  R.Summary.PreservedSaved = ~0ull;
  for (uint32_t B = 0; B < Cfg_.Blocks.size(); ++B) {
    ValueState S = R.Values.In[B];
    MemState M = MemIn[B];
    if (S.Unreachable)
      continue;
    const CfgBlock &Blk = Cfg_.Blocks[B];
    for (uint32_t I = Blk.Begin; I < Blk.End; ++I) {
      const SymInst &SI = Proc.Insts[I];
      if (!SI.Nullified && !S.Unreachable) {
        if (isCall(SI)) {
          uint32_t Callee = calleeOf(C.SP, SI);
          if (Callee != ~0u) {
            R.CalleeEntries.emplace_back(Callee, S.Gp);
            if (C.Summaries[Callee].ClobbersPv)
              R.Summary.ClobbersPv = true;
          } else {
            R.IndirectEntries.push_back(S.Gp);
            if (SI.Kind == SKind::JsrViaGat)
              R.HasDataCall = true;
            if (C.IndirectClobbersPv)
              R.Summary.ClobbersPv = true;
          }
        } else if (regUnitWritten(SI.I) == PvUnit) {
          R.Summary.ClobbersPv = true;
        }
        if (SI.I.Op == Opcode::Jmp) {
          // A computed jump may land anywhere: treat it as an indirect
          // tail-transfer with this GP that may also return to our caller.
          R.IndirectEntries.push_back(S.Gp);
          R.Summary.ClobbersPv = true;
        }
      }
      applyMem(C, Proc, Proc.Insts[I], S, M);
      applyInst(C, Proc, Proc.Insts[I], S);
    }
    if (S.Unreachable)
      continue;
    const SymInst &Last = Proc.Insts[Blk.End - 1];
    if (!Last.Nullified && Last.I.Op == Opcode::Ret) {
      R.Summary.Returns = true;
      R.Summary.ExitGp |= S.Gp;
      for (unsigned U = 0; U < NumRegUnits; ++U)
        if ((CalleeSavedMask & unitBit(U)) &&
            !(M.R[U] == MemVal::savedOf(U)))
          R.Summary.PreservedSaved &= ~unitBit(U);
    }
    if (!Last.Nullified && Last.I.Op == Opcode::Jmp) {
      R.Summary.Returns = true;
      R.Summary.ExitGp |= GpVal::other();
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

/// Backward transfer of one instruction over a live-unit mask.
uint64_t liveStep(const TransferCtx &C, const SymInst &SI, uint64_t Live) {
  if (SI.Nullified)
    return Live;
  const Inst &I = SI.I;
  if (isCall(SI)) {
    // The call writes its link register; the callee conventionally reads
    // arguments, anchors, and callee-saved registers (to save them). PV is
    // read when the callee's entry executes a live prologue (direct calls
    // with SkipPrologue enter past it); the JSR's own target-register read
    // is added with regUnitsRead below.
    unsigned W = regUnitWritten(I);
    if (W != ~0u)
      Live &= ~unitBit(W);
    Live |= CallUseMask;
    uint32_t Callee = calleeOf(C.SP, SI);
    bool ReadsPv;
    if (Callee != ~0u)
      ReadsPv = C.Summaries[Callee].ReadsPvAtEntry &&
                !(SI.Kind == SKind::DirectCall && SI.SkipPrologue);
    else
      ReadsPv = C.IndirectReadsPv;
    if (ReadsPv)
      Live |= unitBit(PvUnit);
  } else {
    unsigned W = regUnitWritten(I);
    if (W != ~0u)
      Live &= ~unitBit(W);
  }
  unsigned Units[3];
  unsigned N = regUnitsRead(I, Units);
  for (unsigned K = 0; K < N; ++K)
    if (!isZeroUnit(Units[K]))
      Live |= unitBit(Units[K]);
  return Live;
}

/// Live-out mask of a block with no recorded successors.
uint64_t exitLiveOut(const Cfg &Cfg_, const SymProc &Proc, uint32_t B) {
  const CfgBlock &Blk = Cfg_.Blocks[B];
  const SymInst &Last = Proc.Insts[Blk.End - 1];
  if (!Last.Nullified && Last.I.Op == Opcode::Ret)
    return RetUseMask;
  if (!Last.Nullified && Last.I.Op == Opcode::Jmp)
    return AllUnitsMask; // computed target: anything may be read
  if (!Last.Nullified && classOf(Last.I.Op) == InstClass::Pal)
    return 0; // halt (the only successor-less PAL)
  // Falls off the end of the procedure into whatever the layout places
  // next: everything is potentially read.
  return AllUnitsMask;
}

ProcLiveness analyzeLiveness(const TransferCtx &C, const Cfg &Cfg_,
                             uint32_t ProcIdx) {
  const SymProc &Proc = C.SP.Procs[ProcIdx];
  ProcLiveness L;
  L.In.assign(Cfg_.Blocks.size(), 0);
  L.Out.assign(Cfg_.Blocks.size(), 0);
  if (Cfg_.Blocks.empty())
    return L;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Cfg_.Rpo.rbegin(); It != Cfg_.Rpo.rend(); ++It) {
      uint32_t B = *It;
      const CfgBlock &Blk = Cfg_.Blocks[B];
      uint64_t Out = 0;
      if (Blk.NumSuccs == 0 && !Cfg_.FallsOff[B])
        Out = exitLiveOut(Cfg_, Proc, B);
      for (uint32_t S = 0; S < Blk.NumSuccs; ++S)
        Out |= L.In[Blk.Succs[S]];
      if (Cfg_.FallsOff[B])
        Out |= AllUnitsMask; // the fall-off edge reads everything
      uint64_t LiveIn = Out;
      for (uint32_t I = Blk.End; I > Blk.Begin; --I)
        LiveIn = liveStep(C, Proc.Insts[I - 1], LiveIn);
      if (Out != L.Out[B] || LiveIn != L.In[B]) {
        L.Out[B] = Out;
        L.In[B] = LiveIn;
        Changed = true;
      }
    }
  }
  return L;
}

//===----------------------------------------------------------------------===//
// Summary-cache keys
//===----------------------------------------------------------------------===//

void addGpVal(Hasher &H, const GpVal &G) {
  H.addBool(G.MaybeEntry);
  H.addBool(G.MaybeOther);
  H.addU64(G.Groups);
}

/// Mixes the summary fields the per-procedure transfers read. EntryGp is
/// deliberately excluded: neither analyzeProcRound nor analyzeLiveness
/// consumes a callee's EntryGp, and excluding it keeps warm-link keys
/// stable across links.
void addSummary(Hasher &H, const ProcSummary &S) {
  addGpVal(H, S.ExitGp);
  H.addBool(S.Returns);
  H.addBool(S.ClobbersPv);
  H.addBool(S.ReadsPvAtEntry);
  H.addU64(S.PreservedSaved);
}

/// Content key of one procedure for the summary cache: every per-procedure
/// fact analyzeProcRound and analyzeLiveness read. That is the procedure's
/// instructions (all fields — Nullified/SkipPrologue/Converted change the
/// transfers), its index (entryState pins PV to EntryOf(ProcIdx)), its
/// group/flags, and, per literal- or symbol-bearing site, the referent
/// facts calleeOf and the AddressLoad transfer consult (the literal's
/// target symbol and that symbol's IsProc/ProcIdx). Callee summaries are
/// NOT part of this key — they go into the per-round inputs hash, so a
/// procedure whose own bytes are unchanged re-keys cheaply every round.
uint64_t hashProcContent(const SymbolicProgram &SP, uint32_t ProcIdx) {
  const SymProc &P = SP.Procs[ProcIdx];
  Hasher H;
  H.addU32(ProcIdx);
  H.addU32(P.GpGroup);
  H.addBool(P.IsEntry);
  H.addBool(P.AddressTaken);
  H.addU64(P.Insts.size());
  auto addSymFacts = [&](uint32_t SymId) {
    H.addU32(SymId);
    if (SymId < SP.Syms.size()) {
      const PSym &S = SP.Syms[SymId];
      H.addBool(S.IsProc);
      H.addU32(S.ProcIdx);
    } else {
      H.addU64(0x6b6173686d697373ull); // out-of-bounds marker
    }
  };
  for (const SymInst &SI : P.Insts) {
    const Inst &I = SI.I;
    H.addU64(static_cast<uint64_t>(I.Op));
    H.addU64(static_cast<uint64_t>(I.Ra) | (uint64_t(I.Rb) << 8) |
             (uint64_t(I.Rc) << 16) | (uint64_t(I.IsLit) << 24) |
             (uint64_t(I.Lit) << 32));
    H.addI32(I.Disp);
    H.addU64(static_cast<uint64_t>(SI.Kind) |
             (uint64_t(static_cast<uint8_t>(SI.GpKind)) << 8) |
             (uint64_t(SI.SkipPrologue) << 16) |
             (uint64_t(SI.Nullified) << 17) |
             (uint64_t(SI.AnalysisNullified) << 18) |
             (uint64_t(SI.Converted) << 19) | (uint64_t(SI.Cold) << 20));
    H.addU32(SI.LitId);
    H.addU32(SI.PairId);
    H.addU32(SI.TargetProc);
    H.addI32(SI.TargetIdx);
    H.addI32(SI.OrigDisp);
    if (SI.LitId != ~0u) {
      auto It = SP.Lits.find(SI.LitId);
      if (It != SP.Lits.end())
        addSymFacts(It->second.TargetSym);
      else
        H.addU64(0x6e6f6c6974ull); // dangling-literal marker
    }
    if (SI.TargetSym != ~0u)
      addSymFacts(SI.TargetSym);
  }
  return H.digest();
}

/// Sorted, deduplicated direct-callee indices: the summaries a round of
/// this procedure may read. Conservatively includes nullified call sites.
std::vector<uint32_t> directCallees(const SymbolicProgram &SP,
                                    uint32_t ProcIdx) {
  std::vector<uint32_t> Out;
  for (const SymInst &SI : SP.Procs[ProcIdx].Insts) {
    if (!isCall(SI))
      continue;
    uint32_t Callee = calleeOf(SP, SI);
    if (Callee != ~0u && Callee < SP.Procs.size())
      Out.push_back(Callee);
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

size_t roundEntryBytes(const ProcRound &R, bool WithValues) {
  size_t B = 128 +
             R.CalleeEntries.size() * sizeof(std::pair<uint32_t, GpVal>) +
             R.IndirectEntries.size() * sizeof(GpVal);
  if (WithValues)
    B += R.Values.In.size() * sizeof(ValueState);
  return B;
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-program analysis
//===----------------------------------------------------------------------===//

void SummaryCache::trim(size_t MaxBytes) {
  if (Bytes <= MaxBytes)
    return;
  struct Victim {
    uint64_t LastUse;
    Key K;
    bool IsLive;
    size_t EntryBytes;
  };
  std::vector<Victim> Order;
  Order.reserve(Rounds.size() + Liveness.size());
  for (const auto &[K, E] : Rounds)
    Order.push_back({E->LastUse, K, false, E->Bytes});
  for (const auto &[K, E] : Liveness)
    Order.push_back({E->LastUse, K, true, E->Bytes});
  std::sort(Order.begin(), Order.end(),
            [](const Victim &A, const Victim &B) {
              if (A.LastUse != B.LastUse)
                return A.LastUse < B.LastUse;
              if (A.IsLive != B.IsLive)
                return !A.IsLive && B.IsLive;
              if (A.K.Proc != B.K.Proc)
                return A.K.Proc < B.K.Proc;
              return A.K.Inputs < B.K.Inputs;
            });
  for (const Victim &V : Order) {
    if (Bytes <= MaxBytes)
      break;
    if (V.IsLive)
      Liveness.erase(V.K);
    else
      Rounds.erase(V.K);
    Bytes -= V.EntryBytes;
  }
}

ProgramAnalysis analysis::analyzeProgram(const SymbolicProgram &SP,
                                         ThreadPool &Pool,
                                         SummaryCache *Cache) {
  ProgramAnalysis PA;
  const size_t N = SP.Procs.size();
  PA.Cfgs.resize(N);
  Pool.parallelFor(N, [&](size_t I) { PA.Cfgs[I] = buildCfg(SP.Procs[I]); });

  bool AnyComputedJump = false;
  for (const Cfg &C : PA.Cfgs)
    AnyComputedJump |= C.HasComputedJump;
  std::vector<uint32_t> AddressTaken;
  for (uint32_t I = 0; I < N; ++I)
    if (SP.Procs[I].AddressTaken)
      AddressTaken.push_back(I);

  // Interprocedural fixpoint over {ExitGp, Returns, ClobbersPv}: start
  // from the optimistic bottom (the least fixpoint — sound because any
  // concrete returning execution has a finite call tree whose innermost
  // return surfaces in round one and propagates outward). Each round
  // re-runs the per-procedure value analysis in parallel against the
  // previous round's summaries; the round count is bounded by the summary
  // lattice height. All reductions are in procedure-index order.
  PA.Summaries.assign(N, ProcSummary{});
  for (ProcSummary &S : PA.Summaries) {
    S.Returns = false;
    S.ClobbersPv = false;
  }
  // Uncached path: per-round results live in Rounds. Cached path: results
  // are shared_ptrs into the cache (Shared), so converged rounds persist
  // across links; ProcHash/Callees are computed once per call, InputsHash
  // is re-keyed every round against the evolving summaries.
  std::vector<ProcRound> Rounds(Cache ? 0 : N);
  std::vector<std::shared_ptr<SummaryCache::RoundEntry>> Shared(Cache ? N
                                                                      : 0);
  std::vector<uint64_t> ProcHash, InputsHash;
  std::vector<std::vector<uint32_t>> Callees;
  std::vector<uint8_t> FreshRound;
  if (Cache) {
    ++Cache->Gen;
    ProcHash.resize(N);
    InputsHash.resize(N);
    Callees.resize(N);
    FreshRound.assign(N, 0);
    Pool.parallelFor(N, [&](size_t I) {
      ProcHash[I] = hashProcContent(SP, static_cast<uint32_t>(I));
      Callees[I] = directCallees(SP, static_cast<uint32_t>(I));
    });
  }
  auto makeCtx = [&]() {
    TransferCtx C{SP, PA.Summaries, GpVal::other(), true, true, true};
    if (!AnyComputedJump && !AddressTaken.empty()) {
      GpVal Exit = GpVal::bottom();
      bool Clobbers = false, Returns = false, ReadsPv = false;
      for (uint32_t P : AddressTaken) {
        Exit |= PA.Summaries[P].ExitGp;
        Clobbers |= PA.Summaries[P].ClobbersPv;
        Returns |= PA.Summaries[P].Returns;
        ReadsPv |= PA.Summaries[P].ReadsPvAtEntry;
      }
      C.IndirectExitGp = Exit;
      C.IndirectClobbersPv = Clobbers;
      C.IndirectReturns = Returns;
      C.IndirectReadsPv = ReadsPv;
    }
    return C;
  };
  bool SummariesChanged = true;
  while (SummariesChanged) {
    TransferCtx C = makeCtx();
    if (!Cache) {
      Pool.parallelFor(N, [&](size_t I) {
        Rounds[I] =
            analyzeProcRound(C, PA.Cfgs[I], static_cast<uint32_t>(I));
      });
    } else {
      // Key this round: the procedure's content hash plus everything its
      // transfers read from outside it — the combined indirect summary
      // and each direct callee's current summary, in sorted-callee order.
      Hasher CtxH;
      addGpVal(CtxH, C.IndirectExitGp);
      CtxH.addBool(C.IndirectClobbersPv);
      CtxH.addBool(C.IndirectReturns);
      CtxH.addBool(C.IndirectReadsPv);
      const uint64_t CtxHash = CtxH.digest();
      Pool.parallelFor(N, [&](size_t I) {
        Hasher H;
        H.addU64(ProcHash[I]);
        H.addU64(CtxHash);
        for (uint32_t Callee : Callees[I])
          addSummary(H, PA.Summaries[Callee]);
        InputsHash[I] = H.digest();
      });
      for (size_t I = 0; I < N; ++I) {
        auto It = Cache->Rounds.find({ProcHash[I], InputsHash[I]});
        if (It != Cache->Rounds.end()) {
          Shared[I] = It->second;
          It->second->LastUse = Cache->Gen;
          FreshRound[I] = 0;
          ++Cache->Totals.RoundHits;
        } else {
          Shared[I] = nullptr;
          FreshRound[I] = 1;
          ++Cache->Totals.RoundMisses;
        }
      }
      Pool.parallelFor(N, [&](size_t I) {
        if (Shared[I])
          return;
        auto E = std::make_shared<SummaryCache::RoundEntry>();
        E->R = analyzeProcRound(C, PA.Cfgs[I], static_cast<uint32_t>(I));
        E->HasValues = true;
        Shared[I] = std::move(E);
      });
      // Publish the freshly computed rounds stripped of their value
      // tables: mid-fixpoint rounds recur every link, but only the
      // converged round's values are worth their footprint (the upgrade
      // happens after the loop).
      for (size_t I = 0; I < N; ++I) {
        if (!FreshRound[I])
          continue;
        auto S = std::make_shared<SummaryCache::RoundEntry>();
        S->R.Summary = Shared[I]->R.Summary;
        S->R.CalleeEntries = Shared[I]->R.CalleeEntries;
        S->R.IndirectEntries = Shared[I]->R.IndirectEntries;
        S->R.HasDataCall = Shared[I]->R.HasDataCall;
        S->LastUse = Cache->Gen;
        S->Bytes = roundEntryBytes(S->R, false);
        Cache->Bytes += S->Bytes;
        Cache->Rounds[{ProcHash[I], InputsHash[I]}] = S;
      }
    }
    SummariesChanged = false;
    for (size_t I = 0; I < N; ++I) {
      ProcSummary &Old = PA.Summaries[I];
      const ProcSummary &New =
          Cache ? Shared[I]->R.Summary : Rounds[I].Summary;
      if (Old.ExitGp != New.ExitGp || Old.Returns != New.Returns ||
          Old.ClobbersPv != New.ClobbersPv ||
          Old.ReadsPvAtEntry != New.ReadsPvAtEntry ||
          Old.PreservedSaved != New.PreservedSaved) {
        GpVal Entry = Old.EntryGp; // filled below; preserve across rounds
        Old = New;
        Old.EntryGp = Entry;
        SummariesChanged = true;
      }
    }
  }
  if (!Cache) {
    PA.Values.resize(N);
    for (size_t I = 0; I < N; ++I)
      PA.Values[I] = std::move(Rounds[I].Values);
  } else {
    // Converged: the keys of the final round name the fixpoint state.
    // Ensure every procedure's entry at its converged key carries the
    // value tables (recomputing the round for procedures whose final
    // lookup hit a stripped mid-fixpoint entry), then copy them out.
    TransferCtx C = makeCtx();
    std::vector<std::shared_ptr<SummaryCache::RoundEntry>> Recomputed(N);
    Pool.parallelFor(N, [&](size_t I) {
      if (Shared[I]->HasValues)
        return;
      auto E = std::make_shared<SummaryCache::RoundEntry>();
      E->R = analyzeProcRound(C, PA.Cfgs[I], static_cast<uint32_t>(I));
      E->HasValues = true;
      Recomputed[I] = std::move(E);
    });
    for (size_t I = 0; I < N; ++I) {
      std::shared_ptr<SummaryCache::RoundEntry> Full;
      if (Recomputed[I])
        Full = Recomputed[I]; // converged lookup hit a stripped entry
      else if (FreshRound[I])
        Full = Shared[I]; // computed in the final round, values in hand
      else
        continue; // hit an already-upgraded entry
      SummaryCache::Key K{ProcHash[I], InputsHash[I]};
      auto It = Cache->Rounds.find(K);
      if (It != Cache->Rounds.end())
        Cache->Bytes -= It->second->Bytes;
      Full->HasValues = true;
      Full->LastUse = Cache->Gen;
      Full->Bytes = roundEntryBytes(Full->R, true);
      Cache->Bytes += Full->Bytes;
      Cache->Rounds[K] = Full;
      Shared[I] = Full;
    }
    PA.Values.resize(N);
    Pool.parallelFor(N,
                     [&](size_t I) { PA.Values[I] = Shared[I]->R.Values; });
  }
  auto roundOf = [&](size_t I) -> const ProcRound & {
    return Cache ? Shared[I]->R : Rounds[I];
  };

  // Final combined indirect summary, stored for query-time transfers.
  bool AnyDataCall = false;
  for (size_t I = 0; I < N; ++I)
    AnyDataCall |= roundOf(I).HasDataCall;
  {
    TransferCtx C = makeCtx();
    PA.IndirectExitGp = C.IndirectExitGp;
    PA.IndirectClobbersPv = C.IndirectClobbersPv;
    PA.IndirectReturns = C.IndirectReturns;
    PA.IndirectReadsPv = C.IndirectReadsPv;
    if (AnyDataCall) {
      // A call through a data symbol can reach code the symbolic form
      // doesn't model; poison the combined summary.
      PA.IndirectExitGp |= GpVal::other();
      PA.IndirectClobbersPv = true;
      PA.IndirectReturns = true;
      PA.IndirectReadsPv = true;
    }
  }

  // EntryGp fixpoint: a serial union iteration over the collected
  // call-site contributions (cheap bitset unions), seeded by the loader
  // contract: the simulator enters the entry procedure with GP already
  // holding its group's value.
  for (uint32_t I = 0; I < N; ++I)
    if (SP.Procs[I].IsEntry)
      PA.Summaries[I].EntryGp |= GpVal::ofGroup(SP.Procs[I].GpGroup);
  auto resolveEntry = [](const GpVal &Raw, const GpVal &CallerEntry) {
    if (!Raw.MaybeEntry)
      return Raw;
    GpVal V = Raw;
    V.MaybeEntry = false;
    V.Groups |= CallerEntry.Groups;
    V.MaybeOther |= CallerEntry.MaybeOther;
    // CallerEntry bottom: the caller itself is never entered, so this
    // site never executes and contributes nothing (yet).
    return V;
  };
  if (AnyDataCall || AnyComputedJump)
    for (uint32_t P : AddressTaken)
      PA.Summaries[P].EntryGp |= GpVal::other();
  bool EntryChanged = true;
  while (EntryChanged) {
    EntryChanged = false;
    for (uint32_t I = 0; I < N; ++I) {
      const GpVal MyEntry = PA.Summaries[I].EntryGp;
      for (const auto &[Callee, Raw] : roundOf(I).CalleeEntries) {
        if (Callee >= N)
          continue;
        GpVal V = resolveEntry(Raw, MyEntry);
        GpVal &E = PA.Summaries[Callee].EntryGp;
        GpVal Old = E;
        E |= V;
        EntryChanged |= !(E == Old);
      }
      for (const GpVal &Raw : roundOf(I).IndirectEntries) {
        GpVal V = resolveEntry(Raw, MyEntry);
        for (uint32_t P : AddressTaken) {
          GpVal &E = PA.Summaries[P].EntryGp;
          GpVal Old = E;
          E |= V;
          EntryChanged |= !(E == Old);
        }
      }
    }
  }

  // Backward liveness per procedure (pure: needs only the converged
  // summaries).
  PA.Live.resize(N);
  {
    TransferCtx C{SP,
                  PA.Summaries,
                  PA.IndirectExitGp,
                  PA.IndirectClobbersPv,
                  PA.IndirectReturns,
                  PA.IndirectReadsPv};
    if (!Cache) {
      Pool.parallelFor(N, [&](size_t I) {
        PA.Live[I] =
            analyzeLiveness(C, PA.Cfgs[I], static_cast<uint32_t>(I));
      });
    } else {
      // Liveness depends on the same per-procedure inputs the rounds do,
      // but against the final (possibly data-call-poisoned) indirect
      // summary — hash it independently.
      Hasher CtxH;
      addGpVal(CtxH, C.IndirectExitGp);
      CtxH.addBool(C.IndirectClobbersPv);
      CtxH.addBool(C.IndirectReturns);
      CtxH.addBool(C.IndirectReadsPv);
      const uint64_t CtxHash = CtxH.digest();
      std::vector<uint64_t> LiveKey(N);
      Pool.parallelFor(N, [&](size_t I) {
        Hasher H;
        H.addU64(ProcHash[I]);
        H.addU64(CtxHash);
        for (uint32_t Callee : Callees[I])
          addSummary(H, PA.Summaries[Callee]);
        LiveKey[I] = H.digest();
      });
      std::vector<std::shared_ptr<SummaryCache::LiveEntry>> L(N);
      for (size_t I = 0; I < N; ++I) {
        auto It = Cache->Liveness.find({ProcHash[I], LiveKey[I]});
        if (It != Cache->Liveness.end()) {
          L[I] = It->second;
          It->second->LastUse = Cache->Gen;
          ++Cache->Totals.LiveHits;
        } else {
          ++Cache->Totals.LiveMisses;
        }
      }
      Pool.parallelFor(N, [&](size_t I) {
        if (L[I])
          return;
        auto E = std::make_shared<SummaryCache::LiveEntry>();
        E->L = analyzeLiveness(C, PA.Cfgs[I], static_cast<uint32_t>(I));
        L[I] = std::move(E);
      });
      for (size_t I = 0; I < N; ++I) {
        SummaryCache::Key K{ProcHash[I], LiveKey[I]};
        if (!Cache->Liveness.count(K)) {
          L[I]->LastUse = Cache->Gen;
          L[I]->Bytes = 64 + L[I]->L.In.size() * 16;
          Cache->Bytes += L[I]->Bytes;
          Cache->Liveness.emplace(K, L[I]);
        }
        PA.Live[I] = L[I]->L;
      }
    }
  }

  // Dataflow reach sets for the verify-stage audit against
  // computeReachableGroups: the groups a procedure's call subtree may
  // leave established in GP at return (pass-through excluded; MaybeOther
  // saturates to all groups, the pattern side's convention).
  PA.ReachableGroups.assign(N, 0);
  for (size_t I = 0; I < N; ++I) {
    const GpVal &Exit = PA.Summaries[I].ExitGp;
    PA.ReachableGroups[I] = Exit.Groups | (Exit.MaybeOther ? ~0ull : 0);
  }
  return PA;
}

ValueState ProgramAnalysis::valuesBefore(const SymbolicProgram &SP,
                                         uint32_t ProcIdx,
                                         uint32_t InstIdx) const {
  const SymProc &Proc = SP.Procs[ProcIdx];
  const Cfg &C = Cfgs[ProcIdx];
  if (InstIdx >= C.BlockOf.size())
    return ValueState();
  uint32_t B = C.BlockOf[InstIdx];
  ValueState S = Values[ProcIdx].In[B];
  TransferCtx Ctx{SP,
                  Summaries,
                  IndirectExitGp,
                  IndirectClobbersPv,
                  IndirectReturns,
                  IndirectReadsPv};
  for (uint32_t I = C.Blocks[B].Begin; I < InstIdx; ++I)
    applyInst(Ctx, Proc, Proc.Insts[I], S);
  return S;
}

uint64_t ProgramAnalysis::liveAfter(const SymbolicProgram &SP,
                                    uint32_t ProcIdx, uint32_t InstIdx) const {
  const SymProc &Proc = SP.Procs[ProcIdx];
  const Cfg &C = Cfgs[ProcIdx];
  if (InstIdx >= C.BlockOf.size())
    return AllUnitsMask;
  uint32_t B = C.BlockOf[InstIdx];
  const CfgBlock &Blk = C.Blocks[B];
  TransferCtx Ctx{SP,
                  Summaries,
                  IndirectExitGp,
                  IndirectClobbersPv,
                  IndirectReturns,
                  IndirectReadsPv};
  uint64_t L = Live[ProcIdx].Out[B];
  for (uint32_t I = Blk.End; I > InstIdx + 1; --I)
    L = liveStep(Ctx, Proc.Insts[I - 1], L);
  return L;
}

std::vector<uint8_t> analysis::memBaseRegions(const SymbolicProgram &SP,
                                              const ProgramAnalysis &PA,
                                              uint32_t ProcIdx) {
  const SymProc &Proc = SP.Procs[ProcIdx];
  std::vector<uint8_t> Regions(Proc.Insts.size(), 0);
  const Cfg &C = PA.Cfgs[ProcIdx];
  TransferCtx Ctx{SP,
                  PA.Summaries,
                  PA.IndirectExitGp,
                  PA.IndirectClobbersPv,
                  PA.IndirectReturns,
                  PA.IndirectReadsPv};
  for (uint32_t B = 0; B < C.Blocks.size(); ++B) {
    ValueState S = PA.Values[ProcIdx].In[B];
    const CfgBlock &Blk = C.Blocks[B];
    for (uint32_t I = Blk.Begin; I < Blk.End; ++I) {
      const SymInst &SI = Proc.Insts[I];
      if (!S.Unreachable && !SI.Nullified &&
          (isLoad(SI.I.Op) || isStore(SI.I.Op))) {
        const AbsVal &Base = S.R[intUnit(SI.I.Rb)];
        if (Base.Kind == ValueKind::Stack)
          Regions[I] = 2;
        else if (Base.isGlobalDerived())
          Regions[I] = 1;
      }
      applyInst(Ctx, Proc, SI, S);
    }
  }
  return Regions;
}

GpProof ProgramAnalysis::gpBefore(const SymbolicProgram &SP, uint32_t ProcIdx,
                                  uint32_t InstIdx, uint32_t Group) const {
  ValueState S = valuesBefore(SP, ProcIdx, InstIdx);
  if (S.Unreachable)
    return GpProof::Unreachable;
  GpVal G = S.Gp;
  if (G.MaybeEntry) {
    const GpVal &E = Summaries[ProcIdx].EntryGp;
    if (E.isBottom())
      return GpProof::Unreachable; // the procedure is never entered
    G.MaybeEntry = false;
    G.Groups |= E.Groups;
    G.MaybeOther |= E.MaybeOther;
  }
  return G.provenGroup(Group) ? GpProof::Proven : GpProof::Unproven;
}

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

namespace {

/// Shortest path (by block count) from the entry block to \p Target; empty
/// when Target is unreachable. The result lists blocks in forward order.
std::vector<uint32_t> shortestBlockPath(const Cfg &C, uint32_t Target) {
  std::vector<uint32_t> Path;
  if (C.Blocks.empty() || Target >= C.Blocks.size())
    return Path;
  std::vector<uint32_t> Prev(C.Blocks.size(), ~0u);
  std::vector<uint8_t> Seen(C.Blocks.size(), 0);
  std::vector<uint32_t> Queue;
  Queue.push_back(0);
  Seen[0] = 1;
  for (size_t Q = 0; Q < Queue.size() && !Seen[Target]; ++Q) {
    uint32_t B = Queue[Q];
    for (uint32_t S = 0; S < C.Blocks[B].NumSuccs; ++S) {
      uint32_t T = C.Blocks[B].Succs[S];
      if (!Seen[T]) {
        Seen[T] = 1;
        Prev[T] = B;
        Queue.push_back(T);
      }
    }
  }
  if (!Seen[Target])
    return Path;
  for (uint32_t B = Target;; B = Prev[B]) {
    Path.push_back(B);
    if (B == 0 || Prev[B] == ~0u)
      break;
  }
  std::reverse(Path.begin(), Path.end());
  return Path;
}

/// One-line description of a witness step.
std::string describeStep(const SymInst &SI) {
  if (isCall(SI))
    return formatString("%s: call (callee facts applied)",
                        opcodeName(SI.I.Op));
  if (isStore(SI.I.Op))
    return formatString("%s stores %s", opcodeName(SI.I.Op),
                        SI.I.Op == Opcode::Stt ? fpRegName(SI.I.Ra)
                                               : intRegName(SI.I.Ra));
  unsigned W = regUnitWritten(SI.I);
  if (W != ~0u)
    return formatString("%s writes %s", opcodeName(SI.I.Op), unitName(W));
  return opcodeName(SI.I.Op);
}

/// Builds a finding's witness path: the shortest CFG path from the
/// procedure entry to the defect block, replayed through both abstract
/// transfers, keeping the instructions that write a watched register unit
/// or store into the watched frame slot (plus calls — they apply callee
/// facts to the watched units). Always non-empty: the entry fact and the
/// defect site frame the trace.
std::vector<LintWitnessStep>
buildWitness(const TransferCtx &Ctx, const SymProc &Proc, const Cfg &C,
             const std::vector<ValueState> &VIn,
             const std::vector<MemState> &MIn, uint32_t DefBlock,
             uint32_t DefInst, uint64_t WatchUnits, bool WatchSlot,
             int64_t SlotOff, std::string DefectNote) {
  std::vector<LintWitnessStep> W;
  constexpr size_t MaxSteps = 12;
  std::vector<uint32_t> Path = shortestBlockPath(C, DefBlock);
  if (Path.empty()) {
    W.push_back({DefInst, "no path from the procedure entry reaches this "
                          "block (the defect is the block itself)"});
    W.push_back({DefInst, std::move(DefectNote)});
    return W;
  }
  W.push_back({C.Blocks[0].Begin,
               "entry: argument, callee-saved, and linkage registers hold "
               "caller values; sp anchors the frame"});
  size_t Elided = 0;
  for (uint32_t B : Path) {
    ValueState S = VIn[B];
    MemState M = MIn[B];
    const CfgBlock &Blk = C.Blocks[B];
    uint32_t End = B == DefBlock ? DefInst : Blk.End;
    for (uint32_t I = Blk.Begin; I < End; ++I) {
      const SymInst &SI = Proc.Insts[I];
      bool Relevant = false;
      if (!SI.Nullified && !S.Unreachable) {
        unsigned Wr = regUnitWritten(SI.I);
        if (Wr != ~0u && (WatchUnits & unitBit(Wr)))
          Relevant = true;
        if (isCall(SI) && WatchUnits != 0)
          Relevant = true;
        if (WatchSlot && isStore(SI.I.Op)) {
          MemAccess A = accessOf(SI.I);
          const MemVal Base = M.R[intUnit(SI.I.Rb)];
          if (Base.Kind == MemVal::K::SpRel) {
            int64_t Addr = Base.Off + SI.I.Disp;
            if (Addr < SlotOff + 8 && Addr + A.Size > SlotOff)
              Relevant = true;
          }
        }
      }
      if (Relevant) {
        if (W.size() < MaxSteps)
          W.push_back({I, describeStep(SI)});
        else
          ++Elided;
      }
      applyMem(Ctx, Proc, SI, S, M);
      applyInst(Ctx, Proc, SI, S);
    }
  }
  if (Elided)
    W.push_back({DefInst, formatString("... %zu more steps elided",
                                       Elided)});
  W.push_back({DefInst, std::move(DefectNote)});
  return W;
}

/// Lints one procedure, appending its findings (sorted by instruction,
/// then code) to \p Out. Runs a procedure-local value+memory fixpoint with
/// the converged entry-GP summary resolved in, so GAT provenance crosses
/// procedure boundaries exactly as the L002 proof does.
void lintProc(const TransferCtx &BaseCtx, const SymbolicProgram &SP,
              const ProgramAnalysis &PA, uint32_t ProcIdx,
              std::vector<LintFinding> &Out) {
  const SymProc &Proc = SP.Procs[ProcIdx];
  const Cfg &C = PA.Cfgs[ProcIdx];
  if (Proc.Insts.empty() || C.Blocks.empty())
    return;

  const GpVal EntryGp = PA.Summaries[ProcIdx].EntryGp;
  TransferCtx Ctx = BaseCtx;
  Ctx.ResolveEntry = &EntryGp;

  // Procedure-local combined fixpoint (same shape as analyzeProcRound's,
  // plus entry-GP resolution for AddressLoad provenance).
  std::vector<ValueState> VIn(C.Blocks.size());
  std::vector<MemState> MIn(C.Blocks.size());
  VIn[0] = entryState(ProcIdx);
  MIn[0] = entryMemState();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : C.Rpo) {
      ValueState S = VIn[B];
      MemState M = MIn[B];
      if (S.Unreachable)
        continue;
      const CfgBlock &Blk = C.Blocks[B];
      for (uint32_t I = Blk.Begin; I < Blk.End; ++I) {
        applyMem(Ctx, Proc, Proc.Insts[I], S, M);
        applyInst(Ctx, Proc, Proc.Insts[I], S);
      }
      for (uint32_t SuccI = 0; SuccI < Blk.NumSuccs; ++SuccI) {
        uint32_t Succ = Blk.Succs[SuccI];
        ValueState Old = VIn[Succ];
        meetInto(VIn[Succ], S);
        if (!sameState(Old, VIn[Succ]))
          Changed = true;
        MemState MOld = MIn[Succ];
        meetMemInto(MIn[Succ], M);
        if (!sameMem(MOld, MIn[Succ]))
          Changed = true;
      }
    }
  }

  auto report = [&](uint32_t InstIdx, const char *Code, std::string Msg,
                    uint64_t WatchUnits, bool WatchSlot, int64_t SlotOff,
                    std::string DefectNote) {
    LintFinding F;
    F.Code = Code;
    F.ProcIdx = ProcIdx;
    F.Proc = Proc.Name;
    F.InstIdx = InstIdx;
    F.Message = std::move(Msg);
    uint32_t DefBlock =
        C.BlockOf[std::min<size_t>(InstIdx, C.BlockOf.size() - 1)];
    F.Witness = buildWitness(Ctx, Proc, C, VIn, MIn, DefBlock, InstIdx,
                             WatchUnits, WatchSlot, SlotOff,
                             std::move(DefectNote));
    Out.push_back(std::move(F));
  };

  const size_t FirstFinding = Out.size();
  for (uint32_t B = 0; B < C.Blocks.size(); ++B) {
    if (!C.Reachable[B])
      continue;
    ValueState S = VIn[B];
    MemState M = MIn[B];
    const CfgBlock &Blk = C.Blocks[B];
    for (uint32_t I = Blk.Begin; I < Blk.End; ++I) {
      const SymInst &SI = Proc.Insts[I];
      if (SI.Nullified || S.Unreachable) {
        applyMem(Ctx, Proc, SI, S, M);
        applyInst(Ctx, Proc, SI, S);
        continue;
      }
      // L001: a read of a register no path has written since entry.
      unsigned Units[3];
      unsigned NR = regUnitsRead(SI.I, Units);
      for (unsigned K = 0; K < NR; ++K) {
        unsigned U = Units[K];
        if (!isZeroUnit(U) && S.R[U].Kind == ValueKind::Uninit) {
          report(I,
                 "L001",
                 formatString("L001: reads uninitialized register %s at +%u",
                              unitName(U), I * 4),
                 unitBit(U), false, 0,
                 formatString("reads %s, which no path has written",
                              unitName(U)));
          break;
        }
      }
      // L002: a GAT address load whose GP is not provably this group's.
      if (SI.Kind == SKind::AddressLoad) {
        bool NeverEntered = S.Gp.MaybeEntry && EntryGp.isBottom();
        if (!NeverEntered && !gpProvenAt(Proc, S.Gp, EntryGp))
          report(I,
                 "L002",
                 formatString("L002: GAT address load at +%u is reachable "
                              "with a wrong or unknown GP",
                              I * 4),
                 unitBit(GpUnit), false, 0,
                 "GAT load here: GP is not provably this group's value");
      }
      // L005: call-convention violations.
      if (SI.Kind == SKind::JsrViaGat && SI.LitId != ~0u) {
        auto It = SP.Lits.find(SI.LitId);
        if (It != SP.Lits.end() && It->second.TargetSym < SP.Syms.size() &&
            !SP.Syms[It->second.TargetSym].IsProc)
          report(I,
                 "L005",
                 formatString("L005: call at +%u targets data symbol '%s'",
                              I * 4,
                              SP.Syms[It->second.TargetSym].Name.c_str()),
                 0, false, 0, "call through a data symbol's GAT slot");
      }
      if (SI.I.Op == Opcode::Jsr && SI.I.Ra != RA)
        report(I,
               "L005",
               formatString("L005: call at +%u links through %s instead "
                            "of ra",
                            I * 4, intRegName(SI.I.Ra)),
               0, false, 0, "call links through the wrong register");
      if (SI.Kind == SKind::DirectCall && SI.I.Op == Opcode::Bsr &&
          SI.I.Ra != RA)
        report(I,
               "L005",
               formatString("L005: call at +%u links through %s instead "
                            "of ra",
                            I * 4, intRegName(SI.I.Ra)),
               0, false, 0, "call links through the wrong register");
      if (SI.I.Op == Opcode::Ret && SI.I.Rb != RA)
        report(I,
               "L005",
               formatString("L005: return at +%u through %s instead of ra",
                            I * 4, intRegName(SI.I.Rb)),
               0, false, 0, "return through the wrong register");

      // Memory-domain checks. The GAT slot load itself (base GP) never
      // trips them: GP's MemVal is always Unknown.
      MemAccess A = accessOf(SI.I);
      if (A.IsMem) {
        const MemVal Base = M.R[intUnit(SI.I.Rb)];
        const MemVal CurSp = M.R[SpUnit];
        // L006: a provably SP-relative access outside the live frame
        // [current sp, entry sp). Incoming arguments are register-passed,
        // so nothing above the entry SP is ever legitimately addressed.
        if (Base.Kind == MemVal::K::SpRel &&
            CurSp.Kind == MemVal::K::SpRel) {
          int64_t Lo = Base.Off + SI.I.Disp;
          int64_t Hi = Lo + A.Size;
          if (Lo < CurSp.Off || Hi > 0)
            report(I,
                   "L006",
                   formatString("L006: stack access at +%u is out of frame "
                                "bounds (entry-sp%+lld, frame is [%lld, 0))",
                                I * 4, static_cast<long long>(Lo),
                                static_cast<long long>(CurSp.Off)),
                   unitBit(intUnit(SI.I.Rb)) | unitBit(SpUnit), false, 0,
                   formatString("accesses [entry-sp%+lld, entry-sp%+lld) "
                                "outside the frame",
                                static_cast<long long>(Lo),
                                static_cast<long long>(Hi)));
        }
        // L009: a GAT-proven data access outside the symbol's bounds or
        // misaligned for its width.
        if (Base.Kind == MemVal::K::GatAddr && Base.Id < SP.Syms.size()) {
          const PSym &Sym = SP.Syms[Base.Id];
          if (!Sym.IsProc && Sym.Size > 0) {
            int64_t Lo = Base.Off + SI.I.Disp;
            int64_t Hi = Lo + A.Size;
            if (Lo < 0 || Hi > static_cast<int64_t>(Sym.Size))
              report(I,
                     "L009",
                     formatString("L009: access at +%u to '%s'%+lld is "
                                  "outside the symbol's %llu bytes",
                                  I * 4, Sym.Name.c_str(),
                                  static_cast<long long>(Lo),
                                  static_cast<unsigned long long>(Sym.Size)),
                     unitBit(intUnit(SI.I.Rb)), false, 0,
                     formatString("accesses ['%s'%+lld, '%s'%+lld), "
                                  "outside [0, %llu)",
                                  Sym.Name.c_str(),
                                  static_cast<long long>(Lo),
                                  Sym.Name.c_str(),
                                  static_cast<long long>(Hi),
                                  static_cast<unsigned long long>(Sym.Size)));
            else if (Lo % A.Size != 0)
              report(I,
                     "L009",
                     formatString("L009: access at +%u to '%s'%+lld is "
                                  "misaligned for its %lld-byte width",
                                  I * 4, Sym.Name.c_str(),
                                  static_cast<long long>(Lo),
                                  static_cast<long long>(A.Size)),
                     unitBit(intUnit(SI.I.Rb)), false, 0,
                     "misaligned GAT-relative access");
          }
        }
        if (A.IsStore) {
          unsigned SU = storedUnit(SI.I);
          // L008: overwriting a slot that still holds the saved return
          // address with anything else.
          if (Base.Kind == MemVal::K::SpRel) {
            int64_t Lo = Base.Off + SI.I.Disp;
            for (const auto &[SlotOff, V] : M.Slots) {
              if (SlotOff >= Lo + A.Size)
                break;
              if (SlotOff + 8 <= Lo)
                continue;
              if (V == MemVal::savedOf(RaUnit) &&
                  !(M.R[SU] == MemVal::savedOf(RaUnit)))
                report(I,
                       "L008",
                       formatString("L008: store at +%u overwrites the "
                                    "saved return address at entry-sp%+lld",
                                    I * 4, static_cast<long long>(SlotOff)),
                       unitBit(SpUnit) | unitBit(RaUnit), true, SlotOff,
                       "overwrites the slot holding the saved ra");
            }
          }
          // L010: a stack address stored through a global-derived base
          // outlives its frame.
          bool StackVal = S.R[SU].Kind == ValueKind::Stack ||
                          M.R[SU].Kind == MemVal::K::SpRel;
          bool GlobalBase = S.R[intUnit(SI.I.Rb)].isGlobalDerived() ||
                            Base.Kind == MemVal::K::GatAddr;
          if (StackVal && GlobalBase)
            report(I,
                   "L010",
                   formatString("L010: store at +%u leaks a stack address "
                                "to a global location",
                                I * 4),
                   unitBit(SU) | unitBit(intUnit(SI.I.Rb)), false, 0,
                   "stores a stack-derived value through a global base");
        }
      }
      // L007: a callee-saved register not provably holding its entry
      // value at a return.
      if (SI.I.Op == Opcode::Ret) {
        for (unsigned U = 0; U < NumRegUnits; ++U)
          if ((CalleeSavedMask & unitBit(U)) &&
              !(M.R[U] == MemVal::savedOf(U)))
            report(I,
                   "L007",
                   formatString("L007: callee-saved register %s is not "
                                "preserved at the return at +%u",
                                unitName(U), I * 4),
                   unitBit(U), false, 0,
                   formatString("returns with %s not holding its entry "
                                "value",
                                unitName(U)));
      }
      applyMem(Ctx, Proc, SI, S, M);
      applyInst(Ctx, Proc, SI, S);
    }
  }
  // L003: blocks no path from the procedure entry reaches. Compiled code
  // legitimately contains dead register-only straight-line blocks — the
  // compiler's default-return guard behind an always-taken branch, nop
  // padding — so only blocks with an observable effect (a store, a call,
  // or control flow of their own) are reported.
  for (uint32_t B = 0; B < C.Blocks.size(); ++B) {
    if (C.Reachable[B])
      continue;
    bool Observable = false;
    for (uint32_t I = C.Blocks[B].Begin; I < C.Blocks[B].End && !Observable;
         ++I) {
      const SymInst &SI = Proc.Insts[I];
      if (SI.Nullified)
        continue;
      InstClass Cls = classOf(SI.I.Op);
      Observable = isStore(SI.I.Op) || Cls == InstClass::Branch ||
                   Cls == InstClass::Jump || Cls == InstClass::Pal;
    }
    if (Observable)
      report(C.Blocks[B].Begin, "L003",
             formatString("L003: unreachable block at +%u",
                          C.Blocks[B].Begin * 4),
             0, false, 0, "real code with no path from the entry");
  }
  // L004: a reachable path runs past the last instruction into whatever
  // the layout places next.
  if (C.FallsOffEnd) {
    uint32_t FallBlock = 0;
    for (uint32_t B = 0; B < C.Blocks.size(); ++B)
      if (C.Reachable[B] && C.FallsOff[B]) {
        FallBlock = B;
        break;
      }
    uint32_t InstIdx = static_cast<uint32_t>(Proc.Insts.size()) - 1;
    LintFinding F;
    F.Code = "L004";
    F.ProcIdx = ProcIdx;
    F.Proc = Proc.Name;
    F.InstIdx = InstIdx;
    F.Message = "L004: control can fall through the end of the procedure";
    F.Witness = buildWitness(Ctx, Proc, C, VIn, MIn, FallBlock,
                             C.Blocks[FallBlock].End, 0, false, 0,
                             "control runs past the last instruction");
    F.Witness.back().InstIdx = InstIdx; // the defect anchors on the last inst
    Out.push_back(std::move(F));
  }
  std::stable_sort(Out.begin() + FirstFinding, Out.end(),
                   [](const LintFinding &A, const LintFinding &B) {
                     if (A.InstIdx != B.InstIdx)
                       return A.InstIdx < B.InstIdx;
                     return A.Code < B.Code;
                   });
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20)
        Out += formatString("\\u%04x", static_cast<unsigned>(Ch));
      else
        Out += Ch;
    }
  }
  return Out;
}

const char *lintRuleTitle(unsigned Code) {
  switch (Code) {
  case 1:
    return "read of a provably-uninitialized register";
  case 2:
    return "GAT address load reachable with a wrong or unknown GP";
  case 3:
    return "unreachable basic block containing real code";
  case 4:
    return "control falls through the end of a procedure";
  case 5:
    return "call-convention violation";
  case 6:
    return "stack access out of frame bounds";
  case 7:
    return "callee-saved register clobbered without save/restore";
  case 8:
    return "return-address slot overwritten after save";
  case 9:
    return "GAT access with mismatched size or alignment";
  case 10:
    return "stack address escapes its frame lifetime";
  default:
    return "";
  }
}

} // namespace

std::vector<LintFinding> analysis::lintProgram(const SymbolicProgram &SP,
                                               const ProgramAnalysis &PA,
                                               ThreadPool &Pool) {
  const size_t N = SP.Procs.size();
  TransferCtx Ctx{SP,
                  PA.Summaries,
                  PA.IndirectExitGp,
                  PA.IndirectClobbersPv,
                  PA.IndirectReturns,
                  PA.IndirectReadsPv};
  std::vector<std::vector<LintFinding>> Per(N);
  Pool.parallelFor(N, [&](size_t I) {
    lintProc(Ctx, SP, PA, static_cast<uint32_t>(I), Per[I]);
  });
  std::vector<LintFinding> Out;
  for (std::vector<LintFinding> &V : Per)
    for (LintFinding &F : V)
      Out.push_back(std::move(F));
  return Out;
}

std::string analysis::renderLintText(const std::vector<LintFinding> &Findings,
                                     bool Explain) {
  std::string Out;
  for (const LintFinding &F : Findings) {
    Out += formatString("lint:%s:%u:0: warning: %s\n", F.Proc.c_str(),
                        F.InstIdx + 1, F.Message.c_str());
    if (!Explain)
      continue;
    unsigned N = 0;
    for (const LintWitnessStep &St : F.Witness)
      Out += formatString("  #%u +%u: %s\n", N++, St.InstIdx * 4,
                          St.Note.c_str());
  }
  return Out;
}

std::string
analysis::renderLintJson(const std::vector<LintFinding> &Findings) {
  std::string Out = "{\"findings\":[";
  bool First = true;
  for (const LintFinding &F : Findings) {
    if (!First)
      Out += ',';
    First = false;
    Out += formatString(
        "{\"code\":\"%s\",\"proc\":\"%s\",\"offset\":%u,\"message\":\"%s\"}",
        jsonEscape(F.Code).c_str(), jsonEscape(F.Proc).c_str(),
        F.InstIdx * 4, jsonEscape(F.Message).c_str());
  }
  Out += "]}\n";
  return Out;
}

std::string
analysis::renderLintSarif(const std::vector<LintFinding> &Findings) {
  std::string Out =
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"aaxlint\",\"rules\":[";
  for (unsigned Code = 1; Code <= 10; ++Code) {
    if (Code > 1)
      Out += ',';
    Out += formatString("{\"id\":\"L%03u\",\"shortDescription\":{"
                        "\"text\":\"%s\"}}",
                        Code, jsonEscape(lintRuleTitle(Code)).c_str());
  }
  Out += "]}},\"results\":[";
  bool First = true;
  for (const LintFinding &F : Findings) {
    if (!First)
      Out += ',';
    First = false;
    Out += formatString(
        "{\"ruleId\":\"%s\",\"level\":\"warning\","
        "\"message\":{\"text\":\"%s\"},\"locations\":[{"
        "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},"
        "\"region\":{\"startLine\":%u}}}]}",
        jsonEscape(F.Code).c_str(), jsonEscape(F.Message).c_str(),
        jsonEscape(F.Proc).c_str(), F.InstIdx + 1);
  }
  Out += "]}]}\n";
  return Out;
}

unsigned analysis::runLint(const SymbolicProgram &SP,
                           const ProgramAnalysis &PA,
                           DiagnosticEngine &Diags) {
  ThreadPool Pool(1);
  std::vector<LintFinding> Findings = lintProgram(SP, PA, Pool);
  for (const LintFinding &F : Findings)
    Diags.warning("lint:" + F.Proc, SourceLoc{F.InstIdx + 1, 0}, F.Message);
  return static_cast<unsigned>(Findings.size());
}

//===----------------------------------------------------------------------===//
// Lint corpus
//===----------------------------------------------------------------------===//

namespace {

struct CorpusProc {
  std::string Name;
  std::vector<Inst> Insts;
  bool UsesGp = false;
};

obj::ObjectFile makeCorpusObject(const std::vector<CorpusProc> &Procs) {
  obj::ObjectFile O;
  O.ModuleName = "lintcase";
  uint64_t Off = 0;
  for (const CorpusProc &P : Procs) {
    obj::Symbol S;
    S.Name = "lintcase." + P.Name;
    S.Section = obj::SectionKind::Text;
    S.Offset = Off;
    S.Size = P.Insts.size() * 4;
    S.IsProcedure = true;
    S.IsExported = true;
    S.IsDefined = true;
    obj::ProcDesc D;
    D.SymbolIndex = static_cast<uint32_t>(O.Symbols.size());
    D.TextOffset = Off;
    D.TextSize = S.Size;
    D.UsesGp = P.UsesGp;
    O.Symbols.push_back(std::move(S));
    O.Procs.push_back(D);
    for (const Inst &I : P.Insts) {
      uint32_t W = encode(I);
      O.Text.push_back(static_cast<uint8_t>(W));
      O.Text.push_back(static_cast<uint8_t>(W >> 8));
      O.Text.push_back(static_cast<uint8_t>(W >> 16));
      O.Text.push_back(static_cast<uint8_t>(W >> 24));
    }
    Off += P.Insts.size() * 4;
  }
  return O;
}

} // namespace

std::vector<LintCase> analysis::lintCorpus() {
  std::vector<LintCase> Cases;

  // clean: a well-formed module with no findings — the gate's
  // false-positive check.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Lda, V0, 7, Zero),
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    Cases.push_back({"", "clean", makeCorpusObject({Main})});
  }

  // L001: the ADDQ reads t0, which no path has written since entry.
  {
    CorpusProc Main{"main",
                    {makeOpLit(Opcode::Addq, T0, 1, V0),
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    Cases.push_back({"L001", "uninit_read", makeCorpusObject({Main})});
  }

  // L002: main clobbers GP, then calls f, whose GAT load therefore runs
  // under an unknown GP.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Lda, GP, 0, Zero),
                     makeBranch(Opcode::Bsr, RA, 1), // -> f at +12
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    CorpusProc F{"f",
                 {makeMem(Opcode::Ldq, T0, 0, GP),
                  makeJump(Opcode::Ret, Zero, RA)},
                 true};
    obj::ObjectFile O = makeCorpusObject({Main, F});
    obj::Symbol D;
    D.Name = "lintcase.d";
    D.Section = obj::SectionKind::Data;
    D.Offset = 0;
    D.Size = 8;
    D.IsDefined = true;
    uint32_t DIdx = static_cast<uint32_t>(O.Symbols.size());
    O.Symbols.push_back(std::move(D));
    O.Data.assign(8, 0);
    O.Gat.push_back({DIdx, 0});
    obj::Reloc R;
    R.Kind = obj::RelocKind::Literal;
    R.Section = obj::SectionKind::Text;
    R.Offset = 12; // f's LDQ
    R.GatIndex = 0;
    R.LiteralId = 0;
    O.Relocs.push_back(R);
    Cases.push_back({"L002", "wrong_gp_load", std::move(O)});
  }

  // L003: the BR skips over a block nothing branches to; the dead block
  // has its own RET, so it is real code, not a benign dead-value guard.
  {
    CorpusProc Main{"main",
                    {makeBranch(Opcode::Br, Zero, 2), // -> ret at index 3
                     makeMem(Opcode::Lda, V0, 1, Zero),
                     makeJump(Opcode::Ret, Zero, RA),
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    Cases.push_back({"L003", "unreachable_block", makeCorpusObject({Main})});
  }

  // L004: main has no terminator and falls into f.
  {
    CorpusProc Main{"main", {makeMem(Opcode::Lda, V0, 0, Zero)}, false};
    CorpusProc F{"f", {makeJump(Opcode::Ret, Zero, RA)}, false};
    Cases.push_back({"L004", "fall_through", makeCorpusObject({Main, F})});
  }

  // L005: an indirect call that links through t0 instead of RA.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Lda, T1, 0, Zero),
                     makeJump(Opcode::Jsr, T0, T1),
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    Cases.push_back({"L005", "bad_link_reg", makeCorpusObject({Main})});
  }

  // L006: the store lands at entry-sp-24, below the 16-byte frame.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Lda, SP, -16, SP),
                     makeMem(Opcode::Stq, Zero, -8, SP),
                     makeMem(Opcode::Lda, SP, 16, SP),
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    Cases.push_back({"L006", "stack_oob", makeCorpusObject({Main})});
  }

  // L007: s0 is overwritten and never restored before the return.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Lda, S0, 1, Zero),
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    Cases.push_back(
        {"L007", "clobbered_saved_reg", makeCorpusObject({Main})});
  }

  // L008: ra is saved at entry-sp-16, then the same slot is overwritten
  // with zero before the restore — the reload yields garbage.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Lda, SP, -16, SP),
                     makeMem(Opcode::Stq, RA, 0, SP),
                     makeMem(Opcode::Stq, Zero, 0, SP),
                     makeMem(Opcode::Ldq, RA, 0, SP),
                     makeMem(Opcode::Lda, SP, 16, SP),
                     makeJump(Opcode::Ret, Zero, RA)},
                    false};
    Cases.push_back({"L008", "ra_slot_overwrite", makeCorpusObject({Main})});
  }

  // L009: the GAT slot resolves to the 8-byte symbol d, but the second
  // load reads [d+8, d+16) — past the end.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Ldq, T1, 0, GP),
                     makeMem(Opcode::Ldq, T0, 8, T1),
                     makeJump(Opcode::Ret, Zero, RA)},
                    true};
    obj::ObjectFile O = makeCorpusObject({Main});
    obj::Symbol D;
    D.Name = "lintcase.d";
    D.Section = obj::SectionKind::Data;
    D.Offset = 0;
    D.Size = 8;
    D.IsDefined = true;
    uint32_t DIdx = static_cast<uint32_t>(O.Symbols.size());
    O.Symbols.push_back(std::move(D));
    O.Data.assign(8, 0);
    O.Gat.push_back({DIdx, 0});
    obj::Reloc R;
    R.Kind = obj::RelocKind::Literal;
    R.Section = obj::SectionKind::Text;
    R.Offset = 0; // main's first LDQ
    R.GatIndex = 0;
    R.LiteralId = 0;
    O.Relocs.push_back(R);
    Cases.push_back({"L009", "gat_oob", std::move(O)});
  }

  // L010: the frame pointer value (sp itself) is stored into the global
  // d — a stack address escaping its frame's lifetime.
  {
    CorpusProc Main{"main",
                    {makeMem(Opcode::Ldq, T1, 0, GP),
                     makeMem(Opcode::Stq, SP, 0, T1),
                     makeJump(Opcode::Ret, Zero, RA)},
                    true};
    obj::ObjectFile O = makeCorpusObject({Main});
    obj::Symbol D;
    D.Name = "lintcase.d";
    D.Section = obj::SectionKind::Data;
    D.Offset = 0;
    D.Size = 8;
    D.IsDefined = true;
    uint32_t DIdx = static_cast<uint32_t>(O.Symbols.size());
    O.Symbols.push_back(std::move(D));
    O.Data.assign(8, 0);
    O.Gat.push_back({DIdx, 0});
    obj::Reloc R;
    R.Kind = obj::RelocKind::Literal;
    R.Section = obj::SectionKind::Text;
    R.Offset = 0; // main's first LDQ
    R.GatIndex = 0;
    R.LiteralId = 0;
    O.Relocs.push_back(R);
    Cases.push_back({"L010", "stack_escape", std::move(O)});
  }

  return Cases;
}

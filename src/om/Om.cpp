//===- om/Om.cpp - OM driver ------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "om/Om.h"

#include "om/OmImpl.h"
#include "om/Verify.h"

#include <chrono>

using namespace om64;
using namespace om64::om;

const char *om64::om::levelName(OmLevel L) {
  switch (L) {
  case OmLevel::None:   return "none";
  case OmLevel::Simple: return "simple";
  case OmLevel::Full:   return "full";
  }
  return "?";
}

namespace {

/// Seconds elapsed since \p Start on the monotonic clock.
double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

Result<OmOptions> om64::om::canonicalizeOptions(const OmOptions &OptsIn) {
  OmOptions Opts = OptsIn;
  if (Opts.Level == OmLevel::None) {
    // The no-optimization configuration measures OM's overhead against the
    // standard linker (Figure 7's "no opt" column); it must reproduce the
    // traditional module-order data layout.
    Opts.SortDataBySize = false;
    Opts.Reschedule = false;
    Opts.AlignLoopTargets = false;
  }

  if (Opts.InstrumentBlockCounts)
    Opts.InstrumentProcedureCounts = true;
  if (Opts.InstrumentProcedureCounts && Opts.Level != OmLevel::Full)
    return Result<OmOptions>::failure(
        "instrumentation inserts code and therefore requires OM-full "
        "(section 4: only the symbolic form supports insertion)");

  if (Opts.VerifyEachStage)
    Opts.Verify = true;
  return Opts;
}

unsigned om64::om::effectiveJobs(const OmOptions &Opts,
                                 uint64_t TotalInsts) {
  // Below the cutoff the per-procedure work is so small that waking
  // workers costs more than it saves; run serially so -jN never loses
  // to -j1 on tiny programs. Determinism makes this safe: the image
  // does not depend on the thread count.
  if (Opts.SerialFallbackInsts != 0 && TotalInsts < Opts.SerialFallbackInsts)
    return 1;
  return Opts.Jobs;
}

Result<OmResult> om64::om::optimize(const std::vector<obj::ObjectFile> &Objs,
                                    const OmOptions &OptsIn) {
  Result<OmOptions> Opts = canonicalizeOptions(OptsIn);
  if (!Opts)
    return Result<OmResult>::failure(Opts.message());
  uint64_t TotalInsts = 0;
  for (const obj::ObjectFile &O : Objs)
    TotalInsts += O.Text.size() / 4;
  ThreadPool Pool(effectiveJobs(*Opts, TotalInsts));
  return runPipeline(Objs, *Opts, Pool, nullptr, nullptr);
}

Result<OmResult> om64::om::runPipeline(const std::vector<obj::ObjectFile> &Objs,
                                       const OmOptions &Opts, ThreadPool &Pool,
                                       LiftCache *LC,
                                       analysis::SummaryCache *SC) {
  OmResult Out;
  Out.Stats.Jobs = Pool.threadCount();
  auto TotalStart = std::chrono::steady_clock::now();

  auto LiftStart = std::chrono::steady_clock::now();
  Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Pool, LC);
  Out.Stats.Seconds.Lift = secondsSince(LiftStart);
  if (!SP)
    return Result<OmResult>::failure(SP.message());
  if (Opts.Verify) {
    auto VerifyStart = std::chrono::steady_clock::now();
    Error E = verifyStage(*SP, "lift", &Pool);
    Out.Stats.Seconds.Verify += secondsSince(VerifyStart);
    if (E)
      return Result<OmResult>::failure(E.message());
  }

  OmContext Ctx(*SP, Pool, SC);

  if (Opts.Lint) {
    // Lint the lifted inputs (pre-transform, same view omlink --lint
    // reports on) against the epoch-cached analysis: on a warm relink the
    // SummaryCache means only edited procedures re-derive their fixpoints.
    std::vector<analysis::LintFinding> Findings =
        analysis::lintProgram(*SP, Ctx.program(), Pool);
    Out.LintFindings = static_cast<unsigned>(Findings.size());
    Out.LintReport = analysis::renderLintText(Findings, Opts.LintExplain);
  }

  auto TransformStart = std::chrono::steady_clock::now();
  runCallTransforms(*SP, Opts, Out.Stats, Ctx);
  Out.Stats.Seconds.CallTransforms = secondsSince(TransformStart);
  if (Opts.Verify) {
    auto VerifyStart = std::chrono::steady_clock::now();
    Error E = verifyStage(*SP, "call-transforms", &Pool);
    // Every analysis-justified deletion must still prove out against a
    // fresh dataflow run over the mutated program — this catches a
    // transform miscompile even when the differential harness's inputs
    // never execute the deleted path.
    if (!E && Opts.Analysis && Opts.Level == OmLevel::Full)
      E = verifyDeletionProofs(*SP, Pool);
    Out.Stats.Seconds.Verify += secondsSince(VerifyStart);
    if (E)
      return Result<OmResult>::failure(E.message());
  }

  Result<obj::Image> Img =
      layoutAndEmit(*SP, Opts, Out.Stats, Out.ProfiledProcedures, Ctx);
  if (!Img) {
    Out.Stats.Seconds.Total = secondsSince(TotalStart);
    return Result<OmResult>::failure(Img.message());
  }
  if (Opts.Verify) {
    // Close the relaxation loop: every BSR that survived the worst-case-
    // then-shrink fixpoint is re-checked against the addresses actually
    // assembled, not the upper-bound layout the admission reasoned about.
    auto VerifyStart = std::chrono::steady_clock::now();
    Error E = verifyBsrRanges(*Img);
    Out.Stats.Seconds.Verify += secondsSince(VerifyStart);
    if (E)
      return Result<OmResult>::failure(E.message());
  }
  Out.Stats.Seconds.Total = secondsSince(TotalStart);
  Out.Image = Img.take();
  return Out;
}

//===- om/Om.h - The OM link-time optimizer --------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OM, the link-time code-modification system of the paper: it translates
/// the object code of the entire program into a symbolic form, analyzes
/// and transforms it, and generates the executable from the result.
///
/// Three optimization levels mirror the paper's study:
///
///   * None   — link only; used to compute baseline ("no OM") statistics.
///   * Simple — what a traditional linker could do with local analysis and
///     no code motion: address loads become GP-relative LDA/LDAH or no-ops,
///     GP-reset pairs become no-ops, JSRs become BSRs, common symbols are
///     sorted by size next to the GAT. Instruction order never changes.
///   * Full   — code deletion and motion: GP prologues restored to
///     procedure entry, BSRs retargeted past prologues, PV loads removed,
///     nullified code deleted, the GAT reduced to a fixpoint, and
///     optionally basic blocks rescheduled with quadword alignment of
///     backward-branch targets.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_OM_H
#define OM64_OM_OM_H

#include "objfile/Image.h"
#include "objfile/ObjectFile.h"
#include "support/Profile.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace om64 {
namespace om {

/// Optimization level.
enum class OmLevel : uint8_t { None, Simple, Full };

/// Returns "none", "simple" or "full".
const char *levelName(OmLevel L);

/// OM options.
struct OmOptions {
  OmLevel Level = OmLevel::Full;
  /// Reschedule basic blocks after optimization (OM-full only).
  bool Reschedule = false;
  /// Quadword-align targets of backward branches (OM-full only; the paper
  /// ties this to rescheduling, and found it can hurt — ear, section 5.2).
  bool AlignLoopTargets = false;
  /// Sort data symbols by size ascending next to the GAT (on for both
  /// OM levels; off reproduces the baseline module-order layout and is an
  /// ablation knob).
  bool SortDataBySize = true;
  /// Maximum 8-byte entries per GAT group (GP reach).
  unsigned MaxGatEntriesPerGroup = 4096;
  std::string EntryName = "main";
  /// ATOM-style instrumentation (section 6 / reference [5]): insert a
  /// profile-count hook at every procedure entry. Requires OmLevel::Full
  /// (insertion is code motion). Counter i belongs to
  /// OmResult::ProfiledProcedures[i]; the simulator accumulates them in
  /// SimResult::ProfileCounts.
  bool InstrumentProcedureCounts = false;
  /// Finer ATOM-style instrumentation: also count every branch-target
  /// block (labels of the recovered control structure). Implies
  /// procedure-entry counters; labels look like "mod.proc" or
  /// "mod.proc+<index>". Requires OmLevel::Full.
  bool InstrumentBlockCounts = false;
  /// Analysis-driven deletions (OM-full only): run the dataflow layer of
  /// om/Analysis.h after the pattern transforms and additionally delete
  /// what it can *prove* — GP-reset and prologue pairs whose GP is already
  /// correct on every incoming path, PV loads whose register provably
  /// holds the callee address already, and address loads whose result is
  /// dead. Off by default so the pattern baseline stays measurable
  /// (omlink --analysis; the AnalysisXxx counters report the extra wins).
  bool Analysis = false;
  /// Run OmVerify's structural invariant checks (om/Verify.h) after the
  /// lift and after the call transforms; an invariant violation aborts the
  /// link with stage-labeled diagnostics instead of emitting a miscompiled
  /// image. With Analysis it also re-derives every dataflow-justified
  /// deletion's proof on the mutated program (om/Verify.h:
  /// verifyDeletionProofs).
  bool Verify = false;
  /// Additionally verify between every emission stage (address-load
  /// rewriting, deletion, rescheduling, instrumentation). Implies Verify.
  bool VerifyEachStage = false;
  /// Worker threads for the per-procedure pipeline stages (lift, call
  /// transforms, deletion, rescheduling, per-procedure verification, and
  /// code emission). 0 means hardware concurrency; 1 is the serial
  /// pipeline. The output image is byte-identical for every value.
  unsigned Jobs = 0;
  /// Inputs below this many total text instructions run the whole pipeline
  /// serially regardless of Jobs: the 19 SPEC-shaped seed workloads link in
  /// milliseconds, where worker wakeups cost more than they save, and -jN
  /// must never lose to -j1. 0 disables the fallback (tests that assert on
  /// Stats.Jobs or exercise true parallelism on tiny inputs). The image is
  /// byte-identical either way; only Stats.Jobs and stage times observe it.
  uint64_t SerialFallbackInsts = 1u << 15;
  /// Profile-guided hot/cold code layout (omlink --profile-in FILE
  /// --layout=hot-cold). Requires OmLevel::Full and a Profile collected
  /// from an identically optioned link (aaxrun --profile-out). Reorders
  /// each procedure's basic blocks so the hottest successor falls through
  /// (Pettis–Hansen-style greedy chaining), moves never-executed blocks
  /// into a cold tail, orders procedures by dynamic call-edge heat, and
  /// restricts AlignLoopTargets' quadword alignment to hot branch targets.
  /// Procedures the profile does not cover (or covers with a mismatched
  /// branch count) are left byte-identical; an empty profile therefore
  /// leaves the whole image byte-identical to a no-layout link.
  bool HotColdLayout = false;
  /// Run the L001..L010 lint over the lifted program and report findings
  /// as warnings (omlink --lint). Part of the link configuration key:
  /// flipping it invalidates warm daemon state so cached links can never
  /// suppress (or duplicate) diagnostics.
  bool Lint = false;
  /// With Lint: append each finding's witness path — the shortest
  /// abstract-interpretation trace from the procedure entry to the defect
  /// site (omlink --lint --explain).
  bool LintExplain = false;
  /// The execution profile driving HotColdLayout (ignored otherwise).
  prof::Profile Profile;
};

/// Wall-clock seconds per pipeline stage of one OM run (omlink --stats /
/// --stats-json). AddressLoads covers BSR relaxation, the layout/decision
/// fixpoint, and displacement rewriting; CodeMotion covers deletion,
/// rescheduling, and instrumentation.
struct OmStageSeconds {
  double Lift = 0;
  double CallTransforms = 0;
  double AddressLoads = 0;
  double CodeMotion = 0;
  double Assemble = 0;
  double Verify = 0;
  double Total = 0;
};

/// Static statistics of one OM run, sufficient to regenerate the paper's
/// Figures 3-5 and the GAT-reduction numbers of section 5.1.
struct OmStats {
  // Figure 3: address loads.
  uint64_t AddressLoadsTotal = 0;
  uint64_t AddressLoadsConverted = 0; // became LDA/LDAH
  uint64_t AddressLoadsNullified = 0; // became no-ops / were deleted

  // Figure 4: procedure-call bookkeeping.
  uint64_t CallsTotal = 0;            // JSR + BSR call sites
  uint64_t CallsNeedingPvLoad = 0;    // callee reads PV (or is unknown)
  uint64_t CallsNeedingGpReset = 0;   // live GP-reset pair after the call
  uint64_t JsrConvertedToBsr = 0;
  /// Converted calls reverted to their original JSR because the BSR's
  /// 21-bit word displacement cannot be guaranteed to fit in the final
  /// layout (the worst-case-then-shrink relaxation of Emit.cpp). These
  /// sites are not counted in JsrConvertedToBsr.
  uint64_t BsrFallbackJsrs = 0;
  /// Layout rounds the relaxation fixpoint ran before no call changed
  /// state (Dickson-style worst-case-then-shrink; sizes only shrink, so
  /// the round count is bounded and small in practice).
  uint64_t BsrRelaxRounds = 0;
  /// Conversions the fixpoint re-admitted from the worst-case layout —
  /// i.e. calls that survive as BSRs because their displacement provably
  /// fits the final (possibly profile-reordered) procedure order. Always
  /// equals the surviving JsrConvertedToBsr count.
  uint64_t BsrRetainedByRelax = 0;

  // Figure 5: instruction counts.
  uint64_t InstructionsTotal = 0;     // before optimization
  uint64_t InstructionsNullified = 0; // no-opped (OM-simple)
  uint64_t InstructionsDeleted = 0;   // removed (OM-full)
  uint64_t NopsInserted = 0;          // alignment padding added
  uint64_t InstrumentationInserted = 0; // profile hooks added

  // Analysis-driven deletions (OmOptions::Analysis), over and above the
  // pattern transforms' own nullifications. Each counts sites the pattern
  // baseline kept.
  uint64_t AnalysisGpPairsDeleted = 0;   // GP pairs proven redundant
  uint64_t AnalysisPvLoadsDeleted = 0;   // call loads proven equal
  uint64_t AnalysisDeadLoadsDeleted = 0; // address loads proven dead
  /// Memory-ordering pairs the rescheduler skipped because the dataflow
  /// proved the two base registers point into disjoint regions (GAT/data
  /// vs stack). Nonzero only with Reschedule and Analysis.
  uint64_t SchedMemDepsFreed = 0;

  // Section 5.1: GAT size.
  uint64_t GatBytesBefore = 0; // merged + deduplicated, before reduction
  uint64_t GatBytesAfter = 0;
  uint32_t GpGroups = 0;

  uint64_t TextBytesBefore = 0;
  uint64_t TextBytesAfter = 0;

  // Profile-guided layout (OmOptions::HotColdLayout).
  uint64_t LayoutProcsReordered = 0;  // procedures whose blocks moved
  uint64_t LayoutBlocksMoved = 0;     // blocks emitted out of source order
  uint64_t LayoutColdBlocks = 0;      // blocks split into cold tails
  uint64_t LayoutFixupBranches = 0;   // BRs inserted to mend fall-throughs

  /// Observability: per-stage wall time and the worker count actually
  /// used. Not part of the image; -j1 and -jN runs differ only here.
  OmStageSeconds Seconds;
  unsigned Jobs = 1;
};

/// Result of an OM run.
struct OmResult {
  obj::Image Image;
  OmStats Stats;
  /// Procedure owning each profile counter (instrumented runs only).
  std::vector<std::string> ProfiledProcedures;
  /// Rendered L001..L010 findings over the lifted inputs (Opts.Lint only;
  /// with Opts.LintExplain each finding carries its witness path). Empty
  /// text means the link is lint-clean. Warm relinks recompute this from
  /// the summary-cached analysis, so only edited procedures re-derive
  /// their fixpoints.
  std::string LintReport;
  unsigned LintFindings = 0;
};

/// Links and optimizes the given objects.
Result<OmResult> optimize(const std::vector<obj::ObjectFile> &Objects,
                          const OmOptions &Opts = OmOptions());

} // namespace om
} // namespace om64

#endif // OM64_OM_OM_H

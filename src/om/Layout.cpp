//===- om/Layout.cpp - Profile-guided hot/cold code layout ----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-guided layout pass (OmOptions::HotColdLayout). Consumes an
/// execution profile collected by `aaxrun --profile-out` (support/Profile.h)
/// and reorders code at two granularities:
///
///   * within each procedure, basic blocks are chained greedily by edge
///     heat in the style of Pettis & Hansen so the hottest successor of
///     every block becomes its fall-through (inverting branch conditions
///     where that makes the hot side fall through), and blocks the profile
///     never saw execute are split into a cold tail at the end of the
///     procedure, marked SymInst::Cold so the quadword alignment of
///     backward-branch targets is not wasted on them;
///   * across procedures, the dynamic call graph's hottest edges pull
///     caller and callee adjacent, and never-executed procedures sink to
///     the end of the text segment.
///
/// Correctness over profile fidelity: a procedure is laid out only when the
/// profile's branch-site count matches its LocalBranch count exactly (the
/// symbolic keying contract of support/Profile.h), and procedures with
/// computed jumps or GP-reset pairs that a reorder could detach from their
/// anchoring call are left untouched. An empty profile touches nothing, so
/// `--layout=hot-cold` without meaningful counts emits an image
/// byte-identical to a plain link.
///
/// Runs after deletion/rescheduling/instrumentation and before assembly.
/// Block decisions and rebuilds are per-procedure pure functions and fan
/// out on the thread pool; the procedure-order decision and index remap
/// stay serial, keeping `-jN` byte-identical to `-j1`.
///
//===----------------------------------------------------------------------===//

#include "om/OmImpl.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace om64;
using namespace om64::om;
using namespace om64::isa;
using namespace om64::obj;

namespace {

/// The condition-inverted form of a conditional branch, so the formerly
/// taken (hot) side can become the fall-through.
Opcode invertedCond(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
    return Opcode::Bne;
  case Opcode::Bne:
    return Opcode::Beq;
  case Opcode::Blt:
    return Opcode::Bge;
  case Opcode::Bge:
    return Opcode::Blt;
  case Opcode::Ble:
    return Opcode::Bgt;
  case Opcode::Bgt:
    return Opcode::Ble;
  case Opcode::Fbeq:
    return Opcode::Fbne;
  case Opcode::Fbne:
    return Opcode::Fbeq;
  default:
    return Op;
  }
}

bool isCallKind(SKind K) {
  return K == SKind::DirectCall || K == SKind::JsrViaGat ||
         K == SKind::JsrIndirect;
}

/// A half-open instruction range [Start, End); the terminator, if any, is
/// the LocalBranch at End-1.
struct Block {
  uint32_t Start = 0;
  uint32_t End = 0;
  int32_t BranchOrd = -1; // profile ordinal of the terminating branch
};

struct ProcLayout {
  bool Changed = false;
  std::vector<SymInst> NewInsts;
  uint64_t BlocksMoved = 0;
  uint64_t ColdBlocks = 0;
  uint64_t Fixups = 0;
  std::string Err; // internal invariant failure; aborts the link
};

/// Decides and applies the block layout of one procedure. \p EntryIn is the
/// dynamic entry count from the call-edge graph (0 when unknown). Returns
/// Changed=false (and leaves NewInsts empty) when the procedure is
/// ineligible or the layout is a no-op.
ProcLayout layoutProc(const SymProc &Proc, const prof::ProcProfile &PP,
                      uint64_t EntryIn) {
  ProcLayout R;
  const std::vector<SymInst> &Insts = Proc.Insts;
  const size_t N = Insts.size();
  if (N == 0 || PP.InstsExecuted == 0)
    return R;

  // Eligibility: computed jumps have targets the symbolic form cannot see.
  for (const SymInst &SI : Insts)
    if (SI.I.Op == Opcode::Jmp)
      return R;

  // The profile's branch sites map to LocalBranches by ordinal; a count
  // mismatch means the profile came from a differently optioned link.
  std::vector<uint32_t> BranchAt;
  for (uint32_t Idx = 0; Idx < N; ++Idx)
    if (Insts[Idx].Kind == SKind::LocalBranch)
      BranchAt.push_back(Idx);
  if (BranchAt.size() != PP.Branches.size())
    return R;

  // Leaders: entry, every branch target, every post-branch instruction.
  std::vector<bool> Leader(N, false), Targeted(N, false);
  Leader[0] = true;
  for (uint32_t BIdx : BranchAt) {
    uint32_t T = static_cast<uint32_t>(Insts[BIdx].TargetIdx);
    if (T >= N) {
      R.Err = Proc.Name + ": branch target out of range before layout";
      return R;
    }
    Leader[T] = true;
    Targeted[T] = true;
    if (BIdx + 1 < N)
      Leader[BIdx + 1] = true;
  }

  std::vector<Block> Blocks;
  std::vector<uint32_t> BlockOf(N);
  {
    std::map<uint32_t, int32_t> OrdOfIdx;
    for (uint32_t Ord = 0; Ord < BranchAt.size(); ++Ord)
      OrdOfIdx[BranchAt[Ord]] = static_cast<int32_t>(Ord);
    for (uint32_t Idx = 0; Idx < N; ++Idx) {
      if (Leader[Idx]) {
        if (!Blocks.empty())
          Blocks.back().End = Idx;
        Blocks.push_back({Idx, static_cast<uint32_t>(N), -1});
      }
      BlockOf[Idx] = static_cast<uint32_t>(Blocks.size() - 1);
    }
    for (Block &B : Blocks)
      if (B.End > B.Start && Insts[B.End - 1].Kind == SKind::LocalBranch)
        B.BranchOrd = OrdOfIdx[B.End - 1];
  }
  const uint32_t NB = static_cast<uint32_t>(Blocks.size());
  if (NB < 2)
    return R;

  // Eligibility: a post-call GP-reset pair encodes against the end of the
  // nearest preceding call *in emission order*. Both halves must sit in
  // one block with their call, or a reorder could re-anchor them.
  {
    std::map<uint32_t, std::pair<uint32_t, int64_t>> PairAnchor;
    for (uint32_t B = 0; B < NB; ++B) {
      int64_t LastCall = -1;
      for (uint32_t Idx = Blocks[B].Start; Idx < Blocks[B].End; ++Idx) {
        const SymInst &SI = Insts[Idx];
        if (isCallKind(SI.Kind))
          LastCall = Idx;
        if ((SI.Kind == SKind::GpHigh || SI.Kind == SKind::GpLow) &&
            SI.GpKind == GpDispKind::PostCall) {
          if (LastCall < 0)
            return R; // anchored to a call in some other block
          auto It = PairAnchor.find(SI.PairId);
          if (It == PairAnchor.end())
            PairAnchor[SI.PairId] = {B, LastCall};
          else if (It->second != std::make_pair(B, LastCall))
            return R; // halves would disagree about their anchor
        }
      }
    }
  }

  // Block execution counts. Branch-terminated blocks are exact (the
  // terminator's Executed count *is* the block count); fall-through-only
  // blocks accumulate inflow, computable in one forward pass because the
  // only backward dependence is on the immediately preceding block.
  std::vector<uint64_t> TakenIn(NB, 0);
  for (uint32_t Ord = 0; Ord < BranchAt.size(); ++Ord) {
    uint32_t TB = BlockOf[static_cast<uint32_t>(Insts[BranchAt[Ord]].TargetIdx)];
    TakenIn[TB] += PP.Branches[Ord].Taken;
  }
  std::vector<uint64_t> Exec(NB, 0);
  for (uint32_t B = 0; B < NB; ++B) {
    if (Blocks[B].BranchOrd >= 0) {
      Exec[B] = PP.Branches[Blocks[B].BranchOrd].Executed;
      continue;
    }
    uint64_t FallIn = 0;
    if (B == 0) {
      FallIn = EntryIn ? EntryIn : 1; // entered at least once
    } else {
      const Block &P = Blocks[B - 1];
      const SymInst &Last = Insts[P.End - 1];
      if (P.BranchOrd >= 0)
        FallIn = Last.I.Op == Opcode::Br
                     ? 0
                     : PP.Branches[P.BranchOrd].Executed -
                           PP.Branches[P.BranchOrd].Taken;
      else if (Last.I.Op == Opcode::Ret)
        FallIn = 0;
      else
        FallIn = Exec[B - 1];
    }
    Exec[B] = FallIn + TakenIn[B];
  }
  std::vector<bool> Cold(NB, false);
  for (uint32_t B = 1; B < NB; ++B)
    Cold[B] = Exec[B] == 0;

  // Greedy Pettis–Hansen chaining over the hot blocks: process edges by
  // weight, gluing a chain tail to a chain head so the edge becomes a
  // fall-through. Block 0 stays a chain head (procedure entry).
  struct Edge {
    uint64_t W;
    uint32_t Src, Dst;
  };
  std::vector<Edge> Edges;
  for (uint32_t B = 0; B < NB; ++B) {
    if (Cold[B])
      continue;
    const Block &Blk = Blocks[B];
    auto addEdge = [&](uint32_t Dst, uint64_t W) {
      if (W > 0 && Dst != B && Dst < NB && !Cold[Dst])
        Edges.push_back({W, B, Dst});
    };
    if (Blk.BranchOrd >= 0) {
      const prof::BranchCounts &C = PP.Branches[Blk.BranchOrd];
      uint32_t TB = BlockOf[static_cast<uint32_t>(Insts[Blk.End - 1].TargetIdx)];
      addEdge(TB, C.Taken);
      if (Insts[Blk.End - 1].I.Op != Opcode::Br && B + 1 < NB)
        addEdge(B + 1, C.Executed - C.Taken);
    } else if (Insts[Blk.End - 1].I.Op != Opcode::Ret && B + 1 < NB) {
      addEdge(B + 1, Exec[B]);
    }
  }
  std::stable_sort(Edges.begin(), Edges.end(),
                   [](const Edge &A, const Edge &B) {
                     if (A.W != B.W)
                       return A.W > B.W;
                     if (A.Src != B.Src)
                       return A.Src < B.Src;
                     return A.Dst < B.Dst;
                   });

  std::vector<uint32_t> ChainOf(NB, ~0u);
  std::vector<std::vector<uint32_t>> Chains;
  for (uint32_t B = 0; B < NB; ++B)
    if (!Cold[B]) {
      ChainOf[B] = static_cast<uint32_t>(Chains.size());
      Chains.push_back({B});
    }
  for (const Edge &E : Edges) {
    uint32_t CA = ChainOf[E.Src], CB = ChainOf[E.Dst];
    if (CA == CB || Chains[CA].back() != E.Src ||
        Chains[CB].front() != E.Dst || E.Dst == 0)
      continue;
    for (uint32_t B : Chains[CB]) {
      ChainOf[B] = CA;
      Chains[CA].push_back(B);
    }
    Chains[CB].clear();
  }

  // Final order: the entry chain, the remaining hot chains by total heat
  // (ties to the earlier original position), then the cold tail in
  // original order.
  std::vector<uint32_t> ChainIds;
  for (uint32_t C = 0; C < Chains.size(); ++C)
    if (!Chains[C].empty() && Chains[C].front() != 0)
      ChainIds.push_back(C);
  std::stable_sort(ChainIds.begin(), ChainIds.end(),
                   [&](uint32_t A, uint32_t B) {
                     uint64_t HA = 0, HB = 0;
                     for (uint32_t Blk : Chains[A])
                       HA += Exec[Blk];
                     for (uint32_t Blk : Chains[B])
                       HB += Exec[Blk];
                     if (HA != HB)
                       return HA > HB;
                     return Chains[A].front() < Chains[B].front();
                   });
  std::vector<uint32_t> Order;
  Order.reserve(NB);
  for (uint32_t B : Chains[ChainOf[0]])
    Order.push_back(B);
  for (uint32_t C : ChainIds)
    for (uint32_t B : Chains[C])
      Order.push_back(B);
  for (uint32_t B = 0; B < NB; ++B)
    if (Cold[B]) {
      Order.push_back(B);
      ++R.ColdBlocks;
    }
  if (Order.size() != NB) {
    R.Err = Proc.Name + ": layout dropped or duplicated a block";
    return R;
  }

  // Rebuild the instruction vector in the chosen order, adapting each
  // block's terminator: keep, invert (hot taken side becomes the
  // fall-through), delete (unconditional branch to the next block), or
  // append a fixup BR where the old fall-through no longer follows.
  std::vector<int64_t> OldToNew(N, -1);
  std::vector<SymInst> Out;
  Out.reserve(N + NB);
  uint64_t Deleted = 0, Inverted = 0;
  bool AnyCold = false;
  for (uint32_t Pos = 0; Pos < NB; ++Pos) {
    uint32_t B = Order[Pos];
    const Block &Blk = Blocks[B];
    int64_t Next = Pos + 1 < NB ? static_cast<int64_t>(Order[Pos + 1]) : -1;
    if (B != Pos)
      ++R.BlocksMoved;

    bool NeedFall = false; // falls through to old block B+1
    for (uint32_t Idx = Blk.Start; Idx < Blk.End; ++Idx) {
      SymInst SI = Insts[Idx];
      if (Cold[B]) {
        SI.Cold = true;
        AnyCold = true;
      }
      bool IsTerm = Idx == Blk.End - 1;
      if (IsTerm && SI.Kind == SKind::LocalBranch) {
        uint32_t TB = BlockOf[static_cast<uint32_t>(SI.TargetIdx)];
        bool HasFall = B + 1 < NB;
        if (SI.I.Op == Opcode::Br) {
          // Unconditional: drop it when its target now follows and
          // nothing needs the instruction itself (no link register, not a
          // branch target).
          if (SI.I.Ra == Zero && !Targeted[Idx] && Next == TB) {
            OldToNew[Idx] = static_cast<int64_t>(Out.size());
            ++Deleted;
            continue;
          }
        } else if (HasFall && Next != static_cast<int64_t>(B + 1)) {
          if (Next == TB && TB != B + 1) {
            // The taken side follows: invert the condition and branch to
            // the old fall-through instead.
            SI.I.Op = invertedCond(SI.I.Op);
            SI.TargetIdx = static_cast<int32_t>(Blocks[B + 1].Start);
            ++Inverted;
          } else {
            NeedFall = true;
          }
        }
      } else if (IsTerm && SI.I.Op != Opcode::Ret && B + 1 < NB &&
                 Next != static_cast<int64_t>(B + 1)) {
        NeedFall = true;
      }
      OldToNew[Idx] = static_cast<int64_t>(Out.size());
      Out.push_back(SI);
    }
    if (NeedFall) {
      SymInst Fix;
      Fix.I = makeBranch(Opcode::Br, Zero, 0);
      Fix.Kind = SKind::LocalBranch;
      Fix.TargetIdx = static_cast<int32_t>(Blocks[B + 1].Start);
      Fix.Cold = Cold[B];
      Out.push_back(Fix);
      ++R.Fixups;
    }
  }

  // Invariants ("every block emitted exactly once"): every old index has a
  // new home, and the instruction count balances deletions and fixups.
  for (uint32_t Idx = 0; Idx < N; ++Idx)
    if (OldToNew[Idx] < 0) {
      R.Err = formatString("%s: layout lost instruction %u",
                           Proc.Name.c_str(), Idx);
      return R;
    }
  if (Out.size() != N - Deleted + R.Fixups) {
    R.Err = Proc.Name + ": layout instruction count mismatch";
    return R;
  }
  for (SymInst &SI : Out)
    if (SI.Kind == SKind::LocalBranch) {
      int64_t T = OldToNew[static_cast<uint32_t>(SI.TargetIdx)];
      if (T < 0 || T >= static_cast<int64_t>(Out.size())) {
        R.Err = Proc.Name + ": layout remapped a branch out of range";
        return R;
      }
      SI.TargetIdx = static_cast<int32_t>(T);
    }

  bool Identity = true;
  for (uint32_t Pos = 0; Pos < NB; ++Pos)
    if (Order[Pos] != Pos)
      Identity = false;
  if (Identity && Deleted == 0 && Inverted == 0 && R.Fixups == 0 &&
      !AnyCold)
    return R; // byte-identical: report unchanged

  R.Changed = true;
  R.NewInsts = std::move(Out);
  return R;
}

} // namespace

std::vector<uint64_t>
om64::om::pessimisticProcEnds(const SymbolicProgram &SP,
                              const OmOptions &Opts) {
  bool Full = Opts.Level == OmLevel::Full;
  bool Align = Full && Opts.AlignLoopTargets;
  bool ProcCounters = Full && Opts.InstrumentProcedureCounts;
  bool BlockCounters = Full && Opts.InstrumentBlockCounts;
  bool Layout = profileLayoutLive(Opts);

  std::vector<uint64_t> MaxEnd(SP.Procs.size());
  uint64_t Cur = 0;
  for (size_t Idx = 0; Idx < SP.Procs.size(); ++Idx) {
    const SymProc &Proc = SP.Procs[Idx];
    uint64_t Branches = 0;
    for (const SymInst &SI : Proc.Insts)
      if (SI.Kind == SKind::LocalBranch)
        ++Branches;
    // The layout inserts at most one fixup BR per block, and a procedure
    // has at most 2*Branches + 1 blocks (each branch contributes one
    // target leader and one post-branch leader).
    uint64_t Fixups = Layout ? 2 * Branches + 2 : 0;
    uint64_t Insts = Proc.Insts.size() + (ProcCounters ? 1 : 0) +
                     (BlockCounters ? Branches : 0) + Fixups +
                     (Align ? Branches + Fixups : 0);
    Cur = ((Cur + 15) & ~15ull) + Insts * 4;
    MaxEnd[Idx] = Cur;
  }
  return MaxEnd;
}

std::vector<uint32_t>
om64::om::proposeProcOrder(const SymbolicProgram &SP, const OmOptions &Opts) {
  if (!profileLayoutLive(Opts) || SP.Procs.empty())
    return {};
  const prof::Profile &Prof = Opts.Profile;
  const uint32_t N = static_cast<uint32_t>(SP.Procs.size());

  // Resolve profile procedures by name, first match winning — the same
  // resolution the block-level layout performs, so the order proposed
  // here is exactly the one runProfileLayout will apply.
  std::map<std::string, uint32_t> SymIdxOfName;
  for (uint32_t Idx = 0; Idx < N; ++Idx)
    SymIdxOfName.emplace(SP.Procs[Idx].Name, Idx);
  std::vector<int64_t> SymOfProf(Prof.Procs.size(), -1);
  std::vector<int64_t> ProfOfSym(N, -1);
  for (uint32_t P = 0; P < Prof.Procs.size(); ++P) {
    auto It = SymIdxOfName.find(Prof.Procs[P].Name);
    if (It != SymIdxOfName.end() && ProfOfSym[It->second] < 0) {
      SymOfProf[P] = It->second;
      ProfOfSym[It->second] = P;
    }
  }

  std::vector<uint64_t> Heat(N, 0);
  for (uint32_t Idx = 0; Idx < N; ++Idx)
    if (ProfOfSym[Idx] >= 0)
      Heat[Idx] = Prof.Procs[ProfOfSym[Idx]].InstsExecuted;

  // Compiler-emitted BSRs cannot fall back to a JSR, so on images large
  // enough that a reorder could stretch one past BSR reach, the
  // procedures they connect are clustered (union-find, min-index root)
  // and each cluster moves as one contiguous unit: an un-revertible call
  // then spans at most its cluster, not the text. Below that size any
  // order is safe and the clustering is skipped, keeping small-workload
  // orders byte-identical to the pre-clustering layout.
  std::vector<uint32_t> Parent(N);
  for (uint32_t I = 0; I < N; ++I)
    Parent[I] = I;
  auto Find = [&Parent](uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  if (pessimisticProcEnds(SP, Opts).back() > BsrReachBytes)
    for (uint32_t P = 0; P < N; ++P)
      for (const SymInst &SI : SP.Procs[P].Insts) {
        if (SI.Kind != SKind::DirectCall || SI.LitId != ~0u ||
            SI.TargetProc == ~0u || SI.TargetProc == P)
          continue;
        uint32_t RA = Find(P), RB = Find(SI.TargetProc);
        if (RA == RB)
          continue;
        if (RA < RB)
          Parent[RB] = RA;
        else
          Parent[RA] = RB;
      }
  std::vector<std::vector<uint32_t>> Members(N);
  std::vector<uint64_t> NodeHeat(N, 0);
  for (uint32_t P = 0; P < N; ++P) {
    uint32_t R = Find(P);
    Members[R].push_back(P);
    NodeHeat[R] += Heat[P];
  }

  // Chain the dynamic call graph's hottest edges over cluster nodes (with
  // no clustering every node is a singleton and this is the legacy
  // procedure order), order chains by heat, and sink never-executed
  // nodes to the end in original order.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> EdgeW;
  for (const prof::CallEdge &E : Prof.Edges) {
    if (SymOfProf[E.Caller] < 0 || SymOfProf[E.Callee] < 0)
      continue;
    uint32_t A = Find(static_cast<uint32_t>(SymOfProf[E.Caller]));
    uint32_t B = Find(static_cast<uint32_t>(SymOfProf[E.Callee]));
    if (A != B)
      EdgeW[{A, B}] += E.Count;
  }
  struct PEdge {
    uint64_t W;
    uint32_t A, B;
  };
  std::vector<PEdge> PEdges;
  for (const auto &[Key, W] : EdgeW)
    PEdges.push_back({W, Key.first, Key.second});
  std::stable_sort(PEdges.begin(), PEdges.end(),
                   [](const PEdge &X, const PEdge &Y) {
                     if (X.W != Y.W)
                       return X.W > Y.W;
                     if (X.A != Y.A)
                       return X.A < Y.A;
                     return X.B < Y.B;
                   });

  std::vector<uint32_t> ChainOf(N, ~0u);
  std::vector<std::vector<uint32_t>> Chains;
  for (uint32_t Idx = 0; Idx < N; ++Idx)
    if (!Members[Idx].empty() && NodeHeat[Idx] > 0) {
      ChainOf[Idx] = static_cast<uint32_t>(Chains.size());
      Chains.push_back({Idx});
    }
  for (const PEdge &E : PEdges) {
    if (ChainOf[E.A] == ~0u || ChainOf[E.B] == ~0u)
      continue;
    uint32_t CA = ChainOf[E.A], CB = ChainOf[E.B];
    if (CA == CB)
      continue;
    for (uint32_t P : Chains[CB]) {
      ChainOf[P] = CA;
      Chains[CA].push_back(P);
    }
    Chains[CB].clear();
  }
  std::vector<uint32_t> ChainIds;
  for (uint32_t C = 0; C < Chains.size(); ++C)
    if (!Chains[C].empty())
      ChainIds.push_back(C);
  std::stable_sort(ChainIds.begin(), ChainIds.end(),
                   [&](uint32_t X, uint32_t Y) {
                     uint64_t HX = 0, HY = 0;
                     for (uint32_t P : Chains[X])
                       HX += NodeHeat[P];
                     for (uint32_t P : Chains[Y])
                       HY += NodeHeat[P];
                     if (HX != HY)
                       return HX > HY;
                     return Chains[X].front() < Chains[Y].front();
                   });
  std::vector<uint32_t> NewOrder;
  NewOrder.reserve(N);
  for (uint32_t C : ChainIds)
    for (uint32_t Node : Chains[C])
      for (uint32_t P : Members[Node])
        NewOrder.push_back(P);
  for (uint32_t Idx = 0; Idx < N; ++Idx)
    if (!Members[Idx].empty() && NodeHeat[Idx] == 0)
      for (uint32_t P : Members[Idx])
        NewOrder.push_back(P);
  if (NewOrder.size() != N)
    return {}; // defensive: identity is always safe

  bool Identity = true;
  for (uint32_t Pos = 0; Pos < N; ++Pos)
    if (NewOrder[Pos] != Pos)
      Identity = false;
  if (Identity)
    return {};
  return NewOrder;
}

bool om64::om::runProfileLayout(SymbolicProgram &SP, const OmOptions &Opts,
                                OmStats &Stats, ThreadPool &Pool,
                                std::string &Err,
                                const std::vector<uint32_t> &ProcOrder) {
  const prof::Profile &Prof = Opts.Profile;
  if (Prof.empty() || SP.Procs.empty())
    return true;

  // No whole-text reach gate here any more: the BSR relaxation fixpoint
  // already decided every OM-created call's reach against exactly the
  // procedure order this pass applies (and vetoed the order if an
  // un-revertible compiler BSR could not survive it), so mega-scale
  // images keep both hot-cold layout and every BSR that actually fits.

  // Resolve profile procedures against the symbolic program by name.
  std::map<std::string, uint32_t> SymIdxOfName;
  for (uint32_t Idx = 0; Idx < SP.Procs.size(); ++Idx)
    SymIdxOfName.emplace(SP.Procs[Idx].Name, Idx);
  std::vector<int64_t> SymOfProf(Prof.Procs.size(), -1);
  std::vector<int64_t> ProfOfSym(SP.Procs.size(), -1);
  for (uint32_t P = 0; P < Prof.Procs.size(); ++P) {
    auto It = SymIdxOfName.find(Prof.Procs[P].Name);
    if (It != SymIdxOfName.end() && ProfOfSym[It->second] < 0) {
      SymOfProf[P] = It->second;
      ProfOfSym[It->second] = P;
    }
  }

  // Dynamic entry counts seed the entry block's heat; the program's entry
  // procedure is entered once from outside the call graph.
  std::vector<uint64_t> EntryIn(SP.Procs.size(), 0);
  for (const prof::CallEdge &E : Prof.Edges)
    if (SymOfProf[E.Callee] >= 0)
      EntryIn[SymOfProf[E.Callee]] += E.Count;
  for (uint32_t Idx = 0; Idx < SP.Procs.size(); ++Idx)
    if (SP.Procs[Idx].IsEntry)
      EntryIn[Idx] += 1;

  // Per-procedure block layout: pure decisions into per-index slots.
  std::vector<ProcLayout> Results(SP.Procs.size());
  Pool.parallelFor(SP.Procs.size(), [&](size_t Idx) {
    if (ProfOfSym[Idx] < 0)
      return;
    Results[Idx] = layoutProc(SP.Procs[Idx], Prof.Procs[ProfOfSym[Idx]],
                              EntryIn[Idx]);
  });
  for (size_t Idx = 0; Idx < SP.Procs.size(); ++Idx) {
    ProcLayout &R = Results[Idx];
    if (!R.Err.empty()) {
      Err = "profile layout: " + R.Err;
      return false;
    }
    if (!R.Changed)
      continue;
    SP.Procs[Idx].Insts = std::move(R.NewInsts);
    ++Stats.LayoutProcsReordered;
    Stats.LayoutBlocksMoved += R.BlocksMoved;
    Stats.LayoutColdBlocks += R.ColdBlocks;
    Stats.LayoutFixupBranches += R.Fixups;
  }

  // Procedure order: apply the permutation the relaxation fixpoint
  // already validated (proposeProcOrder); empty means identity.
  if (ProcOrder.empty())
    return true;
  if (ProcOrder.size() != SP.Procs.size()) {
    Err = "profile layout: procedure order size mismatch";
    return false;
  }
  const std::vector<uint32_t> &NewOrder = ProcOrder;

  std::vector<uint32_t> NewIdxOfOld(SP.Procs.size());
  for (uint32_t Pos = 0; Pos < NewOrder.size(); ++Pos)
    NewIdxOfOld[NewOrder[Pos]] = Pos;
  std::vector<SymProc> NewProcs;
  NewProcs.reserve(SP.Procs.size());
  for (uint32_t Pos = 0; Pos < NewOrder.size(); ++Pos)
    NewProcs.push_back(std::move(SP.Procs[NewOrder[Pos]]));
  SP.Procs = std::move(NewProcs);
  for (PSym &S : SP.Syms)
    if (S.IsProc && S.ProcIdx != ~0u)
      S.ProcIdx = NewIdxOfOld[S.ProcIdx];
  for (SymProc &Proc : SP.Procs)
    for (SymInst &SI : Proc.Insts)
      if (SI.Kind == SKind::DirectCall && SI.TargetProc != ~0u)
        SI.TargetProc = NewIdxOfOld[SI.TargetProc];
  return true;
}

//===- om/Incremental.h - Incremental relinking with content hashes -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental relink layer behind omlinkd: a long-lived
/// IncrementalLinker holds the parsed modules, the per-module lift memo
/// (om::LiftCache) and the per-procedure analysis memo
/// (analysis::SummaryCache) across relinks of the same image. Each relink
/// takes the full set of module byte vectors, content-hashes them,
/// reparses only positions whose bytes changed, and runs the ordinary OM
/// pipeline with both caches attached.
///
/// Correctness contract: the produced image is byte-identical to a
/// from-scratch om::optimize() of the same inputs with the same options,
/// for every edit history. The caches memoize pure per-procedure products
/// keyed by everything they read (see LiftCache and SummaryCache); they
/// change how the answer is computed, never the answer. Tier-1 tests and
/// the CI daemon step re-link from scratch after every warm relink and
/// compare bytes.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_INCREMENTAL_H
#define OM64_OM_INCREMENTAL_H

#include "om/Analysis.h"
#include "om/Om.h"
#include "om/OmImpl.h"
#include "support/Result.h"

#include <cstdint>
#include <vector>

namespace om64 {
namespace om {

/// Content hash over *every* OmOptions field that can change the output
/// image, including the fields the daemon wire format does not carry
/// (HotColdLayout, the instrumentation switches, and the full profile
/// bytes — all inputs to the BSR relaxation fixpoint and the layout pass).
/// Anything keyed by "same options" — the daemon's per-(output, options)
/// linker map, a future on-disk artifact cache — must use this, not the
/// wire encoding, or two links differing only in relaxation inputs would
/// collide on one warm state.
uint64_t linkConfigKey(const OmOptions &Opts);

/// Observability for one relink: what was reused, what was redone.
struct RelinkStats {
  /// False for the first link through this linker (everything cold).
  bool Warm = false;
  /// True when every module's bytes matched the previous relink and the
  /// cached image was returned without running the pipeline at all.
  bool InputUnchanged = false;

  uint64_t ModulesTotal = 0;
  uint64_t ModulesReparsed = 0; ///< positions whose bytes changed
  uint64_t ModulesRelifted = 0; ///< lift-cache misses (includes reparsed)
  uint64_t ProcsTotal = 0;
  uint64_t ProcsRelifted = 0;

  /// Summary-fixpoint cache traffic (analysis links only; zero otherwise).
  uint64_t SummaryRoundHits = 0;
  uint64_t SummaryRoundMisses = 0;

  double Seconds = 0; ///< wall time of this relink
  OmStats Om;         ///< the underlying pipeline's statistics
};

/// Result of one relink.
struct RelinkResult {
  std::vector<uint8_t> ImageBytes; ///< serialized obj::Image
  RelinkStats Stats;
  /// Rendered lint findings (Opts.Lint only; see OmResult::LintReport).
  /// The no-op fast path replays the previous report: same bytes, same
  /// options, same findings by pipeline determinism.
  std::string LintReport;
  unsigned LintFindings = 0;
};

/// One image's warm state. Not thread-safe: the daemon serializes relinks
/// per image (an IncrementalLinker per output path, under a mutex).
class IncrementalLinker {
public:
  /// \p Opts is canonicalized on construction and fixed for the linker's
  /// lifetime; requesting different options means a new linker (the
  /// caches key per-procedure inputs, not option sets). An option error
  /// surfaces on the first relink.
  explicit IncrementalLinker(const OmOptions &Opts);

  /// Relinks the image from \p Modules (each element one module's
  /// serialized bytes, in link order). Reuses everything the content
  /// hashes allow; the output is byte-identical to a from-scratch link.
  Result<RelinkResult> relink(const std::vector<std::vector<uint8_t>> &Modules);

  /// Cache budget in bytes for the analysis memo; trimmed after every
  /// relink (least-recently-used first, value tables before summaries).
  void setCacheBudget(size_t Bytes) { CacheBudget = Bytes; }
  static constexpr size_t DefaultCacheBudget = 512ull << 20;

  const analysis::SummaryCache &summaryCache() const { return Summaries; }

private:
  OmOptions Opts;           ///< canonicalized; see OptionsError
  std::string OptionsError; ///< canonicalizeOptions failure, if any

  std::vector<uint64_t> ModuleHashes; ///< content hash per position
  std::vector<obj::ObjectFile> Objs;  ///< parsed modules, current bytes

  LiftCache Lifts;
  analysis::SummaryCache Summaries;
  size_t CacheBudget = DefaultCacheBudget;

  bool HaveImage = false;
  std::vector<uint8_t> LastImageBytes;
  std::string LastLintReport;
  unsigned LastLintFindings = 0;
  bool Cold = true;
};

} // namespace om
} // namespace om64

#endif // OM64_OM_INCREMENTAL_H

//===- om/Verify.h - OM correctness verification ---------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OmVerify: the correctness subsystem for OM's symbolic-form pipeline.
///
/// The symbolic form carries *positional* bookkeeping — LitInfo records raw
/// instruction indices (LoadIdx, JsrIdx, the three use lists) and
/// LocalBranch carries TargetIdx — so any transform that reorders a
/// procedure's Insts vector can silently invalidate them, and a later pass
/// that trusts a stale index will nullify or rewrite the *wrong*
/// instruction. Production binary rewriters treat this bug class as
/// existential and verify between passes; OmVerify does the same here, at
/// two layers:
///
///   1. verifyStructure / verifyStage: a structural invariant check over a
///      SymbolicProgram, runnable after lift and after every transform
///      stage. Violations are reported through support/Diagnostics with the
///      stage name, procedure, and 1-based instruction index, so a broken
///      invariant names the transform that broke it.
///
///   2. runDifferential: a differential-execution harness that links the
///      same objects at OmLevel::None vs Simple / Full / Full+sched, runs
///      every variant on the functional simulator, and demands identical
///      architectural results: exit value, output stream, and a
///      layout-independent hash of the final data memory.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_VERIFY_H
#define OM64_OM_VERIFY_H

#include "om/Om.h"
#include "om/SymbolicProgram.h"
#include "support/Diagnostics.h"
#include "support/Result.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace om {

/// Checks the structural invariants of \p SP and appends one diagnostic per
/// violation to \p Diags (buffer name "<stage>:<procedure>", line = 1-based
/// instruction index). Returns the number of violations found.
///
/// Invariants:
///   * symbol/procedure cross-references are in range and mutually
///     consistent (PSym::ProcIdx <-> SymProc::SymId),
///   * LocalBranch::TargetIdx and DirectCall::TargetProc are in range,
///   * every GpHigh has exactly one GpLow with the same PairId and GpKind,
///     the high precedes the low, and the two are both nullified or
///     neither (a half-nullified pair corrupts GP),
///   * while SP.Lits is populated (it is cleared by OM-full's deletion
///     stage, after which these checks are vacuous): every LitInfo index
///     points at an instruction of the matching SKind and LitId, every
///     lit-tagged instruction is listed by its literal at exactly its own
///     index, and a nullified address load has no live JsrViaGat consumer
///     and does not feed an escaping literal.
///
/// When \p Pool is non-null the per-procedure checks run on its workers,
/// each into a private engine; the engines are merged into \p Diags in
/// procedure order, so the diagnostics are identical at any pool size.
unsigned verifyStructure(const SymbolicProgram &SP, const std::string &Stage,
                         DiagnosticEngine &Diags,
                         ThreadPool *Pool = nullptr);

/// Runs verifyStructure and folds any violations into an Error whose
/// message carries the rendered diagnostics. Success when none were found.
Error verifyStage(const SymbolicProgram &SP, const std::string &Stage,
                  ThreadPool *Pool = nullptr);

/// Re-derives the dataflow proof behind every analysis-based deletion
/// (SymInst::AnalysisNullified) from a *fresh* ProgramAnalysis and fails
/// if any deletion is no longer justified: a deleted GP pair must see GP
/// already holding the procedure's group on every path into the pair (or
/// the pair must be unreachable), and a deleted address load must be
/// unreachable, have a dead destination, or provably load a value its
/// destination register already held. Also audits the dataflow's
/// ReachableGroups against the pattern matcher's reach set — the dataflow
/// result must be a subset, else one of the two is wrong. Run after the
/// call-transform stage when OmOptions::Analysis is on.
Error verifyDeletionProofs(const SymbolicProgram &SP, ThreadPool &Pool);

/// Post-assembly range audit for the worst-case-then-shrink BSR relaxation
/// (Emit.cpp): decodes every text word of the *final* image and, for each
/// surviving BSR, re-derives the target address from the encoded 21-bit
/// word displacement and demands it land inside some procedure's
/// [Entry, Entry + Size) span. The relaxation admits conversions against a
/// monotone upper-bound layout; this check closes the loop against the
/// addresses actually assembled, so a bound bug cannot ship a branch into
/// the void. Runs under OmOptions::Verify after assembly.
Error verifyBsrRanges(const obj::Image &Img);

/// One linked-and-executed configuration of a differential run.
struct DifferentialLeg {
  OmLevel Level = OmLevel::None;
  bool Sched = false;
  int64_t ExitCode = 0;
  std::string Output;
  uint64_t MemoryHash = 0;   // canonicalMemoryHash of the final data segment
  uint64_t Instructions = 0; // functional instruction count (informational)
};

/// The per-leg results of a successful differential run. Legs[0] is the
/// OmLevel::None reference; every later leg matched it.
struct DifferentialReport {
  std::vector<DifferentialLeg> Legs;
};

/// Layout-independent hash of a program's final data memory. Data layouts
/// legitimately differ across OM levels (size-sorted data, GAT shrinkage)
/// and stored code/data pointers embed shifted addresses, so the raw bytes
/// of the data segment cannot be compared. Instead the hash walks the
/// non-procedure symbols in name order and, for each stored quadword that
/// lands in the text or data range, substitutes the symbolic form
/// (procedure or symbol name + offset) for the raw address.
uint64_t canonicalMemoryHash(const obj::Image &Img,
                             const std::vector<uint8_t> &FinalData);

/// Links \p Objects at OmLevel::None, Simple, Full, and Full+sched (with
/// \p Base supplying everything but the level/scheduling fields; any
/// Verify/VerifyEachStage request in \p Base applies to every leg), runs
/// each image on the functional simulator, and fails unless every leg
/// reproduces the None leg's exit code, output, and canonical memory hash.
///
/// Every leg executes on BOTH functional dispatch cores (the computed-goto
/// threaded core and the legacy switch core, concurrently via
/// sim::runSuite) and the harness additionally fails if the two cores
/// disagree on any leg's exit code, output, final memory, instruction
/// count, or class histogram — so each differential run is also a
/// dispatch-parity proof. The cross-level comparison uses the threaded
/// core's results.
Result<DifferentialReport>
runDifferential(const std::vector<obj::ObjectFile> &Objects,
                const OmOptions &Base = OmOptions());

} // namespace om
} // namespace om64

#endif // OM64_OM_VERIFY_H

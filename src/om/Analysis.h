//===- om/Analysis.h - Link-time dataflow analysis over symbolic form -----===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OmAnalysis: the dataflow layer under OM's transforms, lint mode, and
/// deletion-proof verification.
///
/// The paper's OM-full justifies its deletions by understanding the
/// recovered control structure; the pattern transforms in Transforms.cpp
/// approximate that understanding syntactically ("this looks like a GP
/// reset after a call"). This file provides the real thing:
///
///   * a per-procedure CFG over SymbolicProgram with dominator trees,
///   * a forward abstract interpretation tracking register contents as
///     symbolic values (GpOfGroup(g), EntryOf(proc), AddrOf(sym), Stack,
///     Uninit, Unknown; meet at joins) with a dedicated may-set domain for
///     GP so pass-through callees keep caller facts precise,
///   * backward register liveness over the 64 register units,
///   * an interprocedural fixpoint over per-procedure entry/exit GP
///     summaries, seeded from the loader contract (the simulator enters
///     the entry procedure with PV = entry address and GP = its group's
///     GP value),
///   * an interprocedural memory abstract domain layered on the same
///     fixpoint: byte-interval stack-frame tracking (MemVal::SpRel), GAT
///     slot provenance (MemVal::GatAddr), and callee-saved preservation
///     proofs composed bottom-up through ProcSummary::PreservedSaved,
///   * a binary lint (`omlink --lint`, tools/aaxlint) reporting convention
///     violations as L001..L010 diagnostics with witness paths, with a
///     built-in corpus of broken modules that seed exactly one finding
///     each, plus JSON and SARIF 2.1.0 renderers.
///
/// Everything here is a pure function of the SymbolicProgram: per-procedure
/// passes fan out on the ThreadPool into per-index slots and are reduced in
/// procedure order, so results are identical for any pool size. OmContext
/// (OmImpl.h) caches one ProgramAnalysis per mutation epoch; transforms
/// invalidate it by stage.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_ANALYSIS_H
#define OM64_OM_ANALYSIS_H

#include "om/SymbolicProgram.h"
#include "support/Diagnostics.h"
#include "support/ThreadPool.h"

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace om64 {
namespace om {
namespace analysis {

//===----------------------------------------------------------------------===//
// Abstract values
//===----------------------------------------------------------------------===//

/// What a register may hold at a program point, as a single symbolic value.
/// Bottom is the meet identity (no path reaches the point yet); Unknown is
/// the top ("anything"). Uninit means every path reaches the point without
/// the register ever being written — the basis of lint L001.
enum class ValueKind : uint8_t {
  Bottom,
  Uninit,
  EntryOf,   // entry address of procedure Id
  AddrOf,    // address of data symbol Id (exact, offset 0)
  GpOfGroup, // the GP value of GAT group Id
  GlobalPtr, // derived pointer into the text/data segment (identity lost)
  Stack,     // SP-derived pointer into the stack segment
  Unknown,
};

/// One abstract register value.
struct AbsVal {
  ValueKind Kind = ValueKind::Bottom;
  uint32_t Id = 0; // EntryOf: proc index; AddrOf: symbol id; GpOfGroup: group

  static AbsVal bottom() { return {}; }
  static AbsVal uninit() { return {ValueKind::Uninit, 0}; }
  static AbsVal unknown() { return {ValueKind::Unknown, 0}; }
  static AbsVal entryOf(uint32_t Proc) { return {ValueKind::EntryOf, Proc}; }
  static AbsVal addrOf(uint32_t Sym) { return {ValueKind::AddrOf, Sym}; }
  static AbsVal gpOfGroup(uint32_t G) { return {ValueKind::GpOfGroup, G}; }
  static AbsVal globalPtr() { return {ValueKind::GlobalPtr, 0}; }
  static AbsVal stack() { return {ValueKind::Stack, 0}; }

  bool operator==(const AbsVal &O) const = default;

  /// True for values that are provably addresses into text/data (never the
  /// stack segment).
  bool isGlobalDerived() const {
    return Kind == ValueKind::EntryOf || Kind == ValueKind::AddrOf ||
           Kind == ValueKind::GpOfGroup || Kind == ValueKind::GlobalPtr;
  }

  /// Lattice meet: Bottom is the identity, equal values meet to themselves,
  /// and any disagreement goes to Unknown (GlobalPtr absorbs other
  /// global-derived values so base classification survives joins).
  static AbsVal meet(const AbsVal &A, const AbsVal &B);
};

/// The GP register gets a richer domain than one scalar: a may-set. This is
/// what keeps pass-through callees precise — a callee that establishes no
/// GP on some paths and its own group's GP on others returns
/// "entry-GP-or-group-g", which a same-group caller can still prove
/// correct. Joins are field-wise unions; GP is *proven* to hold group g's
/// value only when the set is exactly {g} (after resolving MaybeEntry
/// through the procedure's entry summary).
struct GpVal {
  bool MaybeEntry = false; // may still hold the procedure's entry GP
  bool MaybeOther = false; // may hold a non-GP-of-any-group value
  uint64_t Groups = 0;     // may hold group g's GP, for every set bit g
                           // (groups >= 64 saturate into MaybeOther, the
                           // same convention as computeReachableGroups)

  static GpVal bottom() { return {}; }
  static GpVal entry() { return {true, false, 0}; }
  static GpVal other() { return {false, true, 0}; }
  static GpVal ofGroup(uint32_t G) {
    if (G >= 64)
      return other();
    return {false, false, 1ull << G};
  }

  bool isBottom() const { return !MaybeEntry && !MaybeOther && Groups == 0; }
  bool operator==(const GpVal &O) const = default;

  GpVal &operator|=(const GpVal &O) {
    MaybeEntry |= O.MaybeEntry;
    MaybeOther |= O.MaybeOther;
    Groups |= O.Groups;
    return *this;
  }

  /// True when this value, with MaybeEntry already resolved away, is
  /// exactly group \p G's GP.
  bool provenGroup(uint32_t G) const {
    return !MaybeEntry && !MaybeOther && G < 64 && Groups == (1ull << G);
  }
};

/// Result of asking whether GP provably holds a group's value at a point.
enum class GpProof : uint8_t {
  Proven,      // GP == GpOfGroup(g) on every path into the point
  Unreachable, // no path reaches the point at all
  Unproven,
};

//===----------------------------------------------------------------------===//
// Memory abstract domain
//===----------------------------------------------------------------------===//

/// The memory-side abstract value of a register: where it points (or what
/// it holds) relative to the procedure's entry state. This is the domain
/// under lint codes L006..L010 — byte-precise stack-frame tracking, GAT
/// slot provenance, and callee-saved preservation proofs. Unknown is top;
/// the meet of disagreeing values is Unknown.
struct MemVal {
  enum class K : uint8_t {
    Unknown,
    SpRel,   // entry-SP + Off (the frame pointer family)
    SavedOf, // still holds the entry value of register unit Id
    GatAddr, // &Syms[Id] + Off, proven through a GAT load
  };
  K Kind = K::Unknown;
  int64_t Off = 0; // SpRel / GatAddr byte offset
  uint32_t Id = 0; // SavedOf: register unit; GatAddr: symbol id

  static MemVal unknown() { return {}; }
  static MemVal spRel(int64_t O) { return {K::SpRel, O, 0}; }
  static MemVal savedOf(unsigned U) { return {K::SavedOf, 0, U}; }
  static MemVal gatAddr(uint32_t Sym, int64_t O) {
    return {K::GatAddr, O, Sym};
  }

  bool operator==(const MemVal &O) const = default;

  static MemVal meet(const MemVal &A, const MemVal &B) {
    return A == B ? A : unknown();
  }
};

/// Memory abstract state at a program point: one MemVal per register unit
/// plus the tracked frame slots. Slots are keyed by entry-SP-relative byte
/// offset and record full-width (8-byte) stores through a provably
/// SP-relative base; any overlapping store invalidates them, and joins
/// keep only slots both paths agree on. Unreachable mirrors
/// ValueState::Unreachable exactly (the two states advance in lockstep).
struct MemState {
  std::array<MemVal, 64> R;
  std::vector<std::pair<int64_t, MemVal>> Slots; // sorted by offset
  bool Unreachable = true;

  /// Returns the tracked value at \p Off, or null.
  const MemVal *slot(int64_t Off) const;
  /// Sets (or inserts) the slot at \p Off, keeping the vector sorted.
  void setSlot(int64_t Off, const MemVal &V);
  /// Drops every tracked slot overlapping [Off, Off + Size).
  void invalidateSlots(int64_t Off, int64_t Size);
};

//===----------------------------------------------------------------------===//
// Control-flow graph
//===----------------------------------------------------------------------===//

/// One basic block: the half-open instruction range [Begin, End) plus its
/// successor/predecessor edges (block indices). At most two successors
/// (fall-through and/or one branch target).
struct CfgBlock {
  uint32_t Begin = 0;
  uint32_t End = 0;
  uint32_t NumSuccs = 0;
  std::array<uint32_t, 2> Succs = {~0u, ~0u};
  std::vector<uint32_t> Preds;
};

/// Per-procedure CFG with reachability, reverse postorder, and immediate
/// dominators. Nullified instructions are treated as no-ops (they fall
/// through), calls end their block with a fall-through edge, and Ret /
/// Halt / computed jumps end their block with no successors.
struct Cfg {
  std::vector<CfgBlock> Blocks;   // in instruction order
  std::vector<uint32_t> BlockOf;  // instruction index -> block index
  std::vector<uint8_t> Reachable; // per block, from the entry block
  std::vector<uint32_t> Rpo;      // reachable blocks in reverse postorder
  std::vector<uint32_t> Idom;     // per block; ~0u for entry/unreachable
  /// Per block: control can run past the last instruction of the procedure
  /// from here (a missing terminator, or a conditional branch at the end).
  /// Liveness treats the fall-off edge as reading every register.
  std::vector<uint8_t> FallsOff;
  /// True when some reachable block can fall through past the last
  /// instruction (into the next procedure) — lint L004.
  bool FallsOffEnd = false;
  /// True when the procedure contains a computed jump (Opcode::Jmp); its
  /// targets are invisible to the symbolic form, so every analysis goes
  /// conservative for the whole program.
  bool HasComputedJump = false;

  /// True when block \p A dominates block \p B (reflexive). Unreachable
  /// blocks are dominated by nothing and dominate nothing.
  bool dominates(uint32_t A, uint32_t B) const;
};

/// Builds the CFG of one procedure. Pure; safe to call concurrently on
/// different procedures.
Cfg buildCfg(const SymProc &Proc);

//===----------------------------------------------------------------------===//
// Per-procedure dataflow results
//===----------------------------------------------------------------------===//

/// Abstract register state at a program point: one scalar value per
/// register unit, plus the may-set GP domain (the scalar slot for GP holds
/// the projection of Gp — GpOfGroup(g) when proven, Unknown otherwise).
/// Unreachable marks points no execution reaches (the meet identity); it
/// covers both CFG-unreachable blocks and code after provably
/// non-returning calls.
struct ValueState {
  std::array<AbsVal, 64> R;
  GpVal Gp;
  bool Unreachable = true;
};

/// Forward value-analysis result: the state at entry to each block
/// (indices align with Cfg::Blocks). Unreachable blocks keep all-Bottom
/// states.
struct ProcValues {
  std::vector<ValueState> In;
};

/// Backward liveness result: live register units (bit = unit) at block
/// entry and exit.
struct ProcLiveness {
  std::vector<uint64_t> In;
  std::vector<uint64_t> Out;
};

/// Interprocedural summary of one procedure, produced by the optimistic
/// fixpoint in analyzeProgram.
struct ProcSummary {
  /// GP on entry, as the union over every call site (plus the loader for
  /// the entry procedure and every indirect call site for address-taken
  /// procedures). MaybeEntry is always resolved away here.
  GpVal EntryGp;
  /// GP on return, relative to entry: MaybeEntry set means some path
  /// returns with the entry GP untouched (pass-through).
  GpVal ExitGp;
  /// True when some reachable return exists (false: provably no return,
  /// e.g. every path halts — the least-fixpoint reading is sound).
  bool Returns = false;
  /// May write PV anywhere in its call subtree before returning. A callee
  /// with this false preserves the caller's PV — the basis of the
  /// "provably equal PV at the call" deletion.
  bool ClobbersPv = true;
  /// Entering at instruction 0 executes a live prologue GP-set pair,
  /// whose LDAH reads PV.
  bool ReadsPvAtEntry = false;
  /// Bit per register unit: the unit provably holds its entry value again
  /// at every reachable RET (only callee-saved units are ever examined).
  /// Composed bottom-up: a call keeps a callee-saved register's fact only
  /// when the callee's bit is set. Computed-jump exits and invisible
  /// callees are assumed convention-abiding (bits stay set), so a cleared
  /// bit is always a positive proof of clobbering — the basis of L007.
  uint64_t PreservedSaved = ~0ull;
};

namespace detail {

/// One procedure's per-round analysis products that feed the
/// interprocedural fixpoint. Exposed outside Analysis.cpp only so
/// SummaryCache can store rounds; not part of the stable analysis API.
struct ProcRound {
  ProcValues Values;
  ProcSummary Summary;
  /// Call-site EntryGp contributions: (callee, raw pre-call GpVal). Raw
  /// means MaybeEntry is not yet resolved through this procedure's own
  /// EntryGp.
  std::vector<std::pair<uint32_t, GpVal>> CalleeEntries;
  /// Raw pre-call GpVals of indirect call sites and computed jumps — they
  /// contribute to every address-taken procedure's entry.
  std::vector<GpVal> IndirectEntries;
  bool HasDataCall = false; // JsrViaGat through a non-procedure symbol
};

} // namespace detail

//===----------------------------------------------------------------------===//
// Whole-program analysis
//===----------------------------------------------------------------------===//

/// Everything OmAnalysis knows about one SymbolicProgram. All vectors are
/// indexed by procedure.
struct ProgramAnalysis {
  std::vector<Cfg> Cfgs;
  std::vector<ProcValues> Values;
  std::vector<ProcLiveness> Live;
  std::vector<ProcSummary> Summaries;
  /// Combined summary applied at indirect call sites: the union of every
  /// address-taken procedure's ExitGp/ClobbersPv (conservatively Unknown
  /// when the program has computed jumps or calls through data literals).
  GpVal IndirectExitGp;
  bool IndirectClobbersPv = true;
  bool IndirectReturns = true;
  bool IndirectReadsPv = true;
  /// Groups the dataflow proves each procedure's call subtree may leave in
  /// GP at return (same ~0 saturation as computeReachableGroups); the
  /// verify stage asserts this is a subset of the pattern's reach set.
  std::vector<uint64_t> ReachableGroups;

  /// Abstract register state immediately before Procs[ProcIdx].Insts[InstIdx]
  /// (all-Bottom when the instruction's block is unreachable). Walks the
  /// block from its stored entry state.
  ValueState valuesBefore(const SymbolicProgram &SP, uint32_t ProcIdx,
                          uint32_t InstIdx) const;

  /// Live register units immediately after Insts[InstIdx] (i.e. the set a
  /// deletion of InstIdx must not be observed by). Walks the block
  /// backward from its stored exit liveness.
  uint64_t liveAfter(const SymbolicProgram &SP, uint32_t ProcIdx,
                     uint32_t InstIdx) const;

  /// Whether GP provably holds group \p Group's value on every path into
  /// Insts[InstIdx].
  GpProof gpBefore(const SymbolicProgram &SP, uint32_t ProcIdx,
                   uint32_t InstIdx, uint32_t Group) const;
};

/// Cross-link cache of per-procedure analysis results, owned by an
/// om::IncrementalLinker and consulted by analyzeProgram when one is
/// passed. Keys are content hashes: the procedure's own code plus every
/// cross-procedure fact its transfer functions read (Proc), and the
/// summary inputs of the fixpoint round (Inputs — callee summaries plus
/// the combined indirect summary). A hit is therefore exactly a round the
/// fixpoint would recompute bit-identically, which is what keeps warm
/// relinks byte-identical to cold ones. Mid-fixpoint rounds are stored
/// stripped (no value table); the converged round per procedure is
/// upgraded to carry block-entry values. Not thread-safe: one cache per
/// output image, used under that image's serialization lock.
class SummaryCache {
public:
  struct Key {
    uint64_t Proc = 0;
    uint64_t Inputs = 0;
    bool operator==(const Key &O) const = default;
  };
  struct KeyHasher {
    size_t operator()(const Key &K) const {
      return static_cast<size_t>(K.Proc ^
                                 (K.Inputs * 0x9e3779b97f4a7c15ull));
    }
  };
  struct RoundEntry {
    detail::ProcRound R;
    bool HasValues = false; // R.Values populated (converged rounds only)
    uint64_t LastUse = 0;   // generation stamp for eviction
    size_t Bytes = 0;       // estimated footprint
  };
  struct LiveEntry {
    ProcLiveness L;
    uint64_t LastUse = 0;
    size_t Bytes = 0;
  };
  struct Counters {
    uint64_t RoundHits = 0;
    uint64_t RoundMisses = 0;
    uint64_t LiveHits = 0;
    uint64_t LiveMisses = 0;
  };
  Counters Totals;

  /// Evicts least-recently-used entries (ties broken by key, so eviction
  /// is deterministic) until the estimated footprint fits \p MaxBytes.
  void trim(size_t MaxBytes);
  size_t estimatedBytes() const { return Bytes; }

  // State below is written only by analyzeProgram.
  std::unordered_map<Key, std::shared_ptr<RoundEntry>, KeyHasher> Rounds;
  std::unordered_map<Key, std::shared_ptr<LiveEntry>, KeyHasher> Liveness;
  uint64_t Gen = 0;
  size_t Bytes = 0;
};

/// Analyzes the whole program: CFGs and dominators per procedure, the
/// interprocedural GP fixpoint, per-procedure value states and liveness.
/// Deterministic for any pool size (per-index slots, procedure-order
/// reductions, order-insensitive meets). With \p Cache, per-procedure
/// rounds and liveness are reused across calls when their content keys
/// match; the result is bit-identical to an uncached run by construction
/// (keys cover every input the per-procedure computations read).
ProgramAnalysis analyzeProgram(const SymbolicProgram &SP, ThreadPool &Pool,
                               SummaryCache *Cache = nullptr);

/// Classifies every instruction's memory base register for the
/// rescheduler's alias disambiguation: 0 = unknown, 1 = global (a
/// text/data-segment pointer: GP, a GAT-loaded address, or arithmetic on
/// one), 2 = stack (SP-derived). Non-memory instructions get 0. The codes
/// match sched::MemRegion by value. Pure per procedure.
std::vector<uint8_t> memBaseRegions(const SymbolicProgram &SP,
                                    const ProgramAnalysis &PA,
                                    uint32_t ProcIdx);

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

/// One step of a finding's witness path: an instruction on the shortest
/// abstract-interpretation trace from the procedure entry to the defect,
/// with a note saying what fact it establishes.
struct LintWitnessStep {
  uint32_t InstIdx = 0;
  std::string Note;
};

/// One lint finding, with enough structure for every renderer (text,
/// --explain, --json, --sarif): the code, the procedure (index and name),
/// the defect instruction, the formatted message, and the witness path
/// (never empty — at minimum the entry and the defect site).
struct LintFinding {
  std::string Code; // "L001".."L010"
  uint32_t ProcIdx = 0;
  std::string Proc;
  uint32_t InstIdx = 0;
  std::string Message;
  std::vector<LintWitnessStep> Witness;
};

/// Runs the binary lint over an analyzed program. Pure per procedure: the
/// per-procedure passes fan out on the ThreadPool into per-index slots and
/// are reduced in procedure order, with each procedure's findings sorted
/// by (instruction, code), so the result is byte-identical for any pool
/// size. Codes (see docs/LINT.md):
///
///   L001  read of a provably-uninitialized register
///   L002  GAT address load reachable with a wrong or unknown GP
///   L003  unreachable basic block containing real code (a store, call,
///         or control flow; dead register-only guards and padding that
///         compilers legitimately emit are not reported)
///   L004  control falls through the end of a procedure
///   L005  call-convention violation (call linking through a register
///         other than RA, return through a register other than RA, or a
///         GAT call through a data symbol)
///   L006  stack access provably outside the frame bounds
///   L007  callee-saved register not preserved at a return
///   L008  saved-return-address slot overwritten after the save
///   L009  GAT-proven data access outside the symbol's bounds or
///         misaligned for its width
///   L010  stack address stored to a global/GAT location (escapes the
///         frame's lifetime)
std::vector<LintFinding> lintProgram(const SymbolicProgram &SP,
                                     const ProgramAnalysis &PA,
                                     ThreadPool &Pool);

/// Renders findings in the classic diagnostic format, one line per
/// finding: "lint:<proc>:<inst+1>:0: warning: <message>". With \p Explain,
/// each finding is followed by its witness path, one "  #<n> +<off>:
/// <note>" line per step.
std::string renderLintText(const std::vector<LintFinding> &Findings,
                           bool Explain);

/// Renders findings as a stable machine-readable JSON document:
/// {"findings":[{"code","proc","offset","message"},...]} where offset is
/// the defect instruction's byte offset within the procedure.
std::string renderLintJson(const std::vector<LintFinding> &Findings);

/// Renders findings as a SARIF 2.1.0 document: one run, driver "aaxlint"
/// with one reportingDescriptor per code L001..L010, one result per
/// finding (ruleId = code, artifactLocation.uri = procedure name,
/// region.startLine = 1-based instruction index).
std::string renderLintSarif(const std::vector<LintFinding> &Findings);

/// Compatibility wrapper over lintProgram: appends one warning per finding
/// to \p Diags (buffer "lint:<procedure>", line = 1-based instruction
/// index, message prefixed with the L-code) and returns the number of
/// findings. Runs the per-procedure passes serially.
unsigned runLint(const SymbolicProgram &SP, const ProgramAnalysis &PA,
                 DiagnosticEngine &Diags);

/// One corpus case: a complete, linkable module seeded with exactly one
/// lint defect (Code "L001".."L010"), or none (Code empty, Name "clean").
struct LintCase {
  std::string Code;
  std::string Name;
  obj::ObjectFile Obj;
};

/// The built-in lint corpus: one broken module per L-code plus one clean
/// module. Shared by the lint tests (exact-diagnostic assertions),
/// `aaxlint --emit-corpus` (writes each case to <dir>/<Code>_<Name>.aaxo),
/// and the CI gate self-test driven by tools/check_bench.py.
std::vector<LintCase> lintCorpus();

} // namespace analysis
} // namespace om
} // namespace om64

#endif // OM64_OM_ANALYSIS_H

//===- om/OmImpl.h - Private interfaces between OM's phases ---------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_OMIMPL_H
#define OM64_OM_OMIMPL_H

#include "om/Analysis.h"
#include "om/Om.h"
#include "om/SymbolicProgram.h"
#include "support/Result.h"
#include "support/ThreadPool.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace om64 {
namespace om {

/// Shared state of one OM run that the phases thread through: the dataflow
/// analysis (om/Analysis.h), computed lazily and cached per mutation epoch.
/// Every transform that changes the symbolic form calls invalidate(); the
/// next program() call recomputes against the mutated program, so no phase
/// can consume facts derived from a shape that no longer exists (the same
/// bug class OmVerify exists for, closed structurally).
class OmContext {
public:
  OmContext(SymbolicProgram &SP, ThreadPool &Pool,
            analysis::SummaryCache *SC = nullptr)
      : SP(SP), Pool(Pool), SC(SC) {}

  /// Marks every cached analysis stale. Cheap; call after any mutation.
  void invalidate() { ++Epoch; }

  /// The analysis of the current program, recomputing if stale.
  const analysis::ProgramAnalysis &program() {
    if (!Cached || CachedEpoch != Epoch) {
      Cached.emplace(analysis::analyzeProgram(SP, Pool, SC));
      CachedEpoch = Epoch;
    }
    return *Cached;
  }

  ThreadPool &pool() { return Pool; }

private:
  SymbolicProgram &SP;
  ThreadPool &Pool;
  /// Cross-link memo of per-procedure fixpoint rounds and liveness,
  /// owned by the incremental relinker; nullptr for one-shot links.
  /// Verify.cpp and the lint deliberately run analyzeProgram without it
  /// so their re-derivations stay independent of the cache.
  analysis::SummaryCache *SC;
  uint64_t Epoch = 0;
  uint64_t CachedEpoch = ~0ull;
  std::optional<analysis::ProgramAnalysis> Cached;
};

/// Per-module memo of the lift, keyed by module position. A slot is
/// reusable when the module's serialized bytes are unchanged AND its
/// resolution signature — the program symbol ids its GAT entries resolve
/// to — is unchanged; together those cover every cross-module input
/// liftProc consumes (AddressLoad targets come from resolve() of GAT
/// entries, DirectCall targets are stashed as object-local entry offsets
/// until the rebase, and literal ids are procedure-local until then).
/// Owned by the incremental relinker; a from-scratch link passes nullptr.
struct LiftCache {
  struct ProcData {
    /// The lifted instructions in pre-rebase form: literal ids are
    /// procedure-local, DirectCall targets are object-local text offsets.
    std::vector<SymInst> Insts;
    /// Procedure-local literal table (LitInfo::Proc is provisional here;
    /// the merge in the lift rewrites it for every load-bearing entry).
    std::map<uint32_t, LitInfo> LocalLits;
    uint32_t LitCount = 0;
    bool MakesIndirectCalls = false;
  };
  struct Slot {
    bool Valid = false;
    uint64_t ContentHash = 0;   ///< hash of the module's serialized bytes
    uint64_t ResolutionSig = 0; ///< hash of its GAT resolution results
    std::vector<ProcData> Procs;
  };

  /// Content hash of each module in the current link, set by the caller
  /// before liftProgram (the caller hashes the raw bytes it parsed).
  std::vector<uint64_t> CurrentHashes;
  std::vector<Slot> Slots;

  // Reuse counters for the last lift (telemetry for RelinkStats).
  uint64_t ModulesReused = 0, ModulesLifted = 0;
  uint64_t ProcsReused = 0, ProcsLifted = 0;
};

/// Object code -> symbolic form. Resolves symbols, recovers procedures,
/// literals with their uses, GP-disp pairs, local branches, and direct
/// calls; assigns GP groups per object. Per-procedure decoding runs on
/// \p Pool; symbol resolution, literal-id assignment, and the final merge
/// stay serial and proc-ordered so the result is identical for any pool
/// size. With \p Cache, per-procedure decode/classify work is skipped for
/// modules whose cache slot matches (see LiftCache); the result is
/// bit-identical to an uncached lift because only the pre-rebase
/// per-procedure product is memoized and every cross-module fixup still
/// runs.
Result<SymbolicProgram> liftProgram(const std::vector<obj::ObjectFile> &Objs,
                                    const OmOptions &Opts, ThreadPool &Pool,
                                    LiftCache *Cache = nullptr);

/// The call-related transforms (JSR->BSR, prologue restoration/skipping/
/// deletion, PV-load removal, GP-reset nullification). Applies the subset
/// appropriate for Opts.Level and updates Stats counters it owns
/// (JsrConvertedToBsr, the AnalysisXxx deletion counts). Per-caller
/// rewriting runs on \p Ctx's pool against callee facts snapshotted
/// between phases; the cross-procedure reachability analysis stays serial.
/// With Opts.Analysis, a final phase deletes what the dataflow proves
/// (marking SymInst::AnalysisNullified), invalidating \p Ctx between its
/// two passes so the second pass proves against the once-mutated program.
void runCallTransforms(SymbolicProgram &SP, const OmOptions &Opts,
                       OmStats &Stats, OmContext &Ctx);

/// Fails when \p TotalLiteralSites no longer fits the 32-bit literal-id
/// space (SymInst::LitId, with ~0u reserved). The lift accumulates the
/// program-wide count in 64 bits precisely so this check sees the true
/// total instead of a wrapped one; exposed for the overflow regression
/// test.
Error checkLiteralIdSpace(uint64_t TotalLiteralSites);

/// Call-graph reachability of GP groups, exact at any group count: bit g
/// of row(P) is set when the subtree rooted at procedure P can execute
/// GP-setting code of group g. Rows are (NumGroups+63)/64 words; the old
/// single-word representation silently saturated to ~0 past 64 groups,
/// pessimizing every reset-nullification decision on mega-scale inputs
/// with per-module groups. This is the *pattern* side of the reset-safety
/// argument; the dataflow's ProgramAnalysis::ReachableGroups (still one
/// word, using its MaybeOther bit past 64 groups) must always be a subset
/// of projected64() (asserted by verifyDeletionProofs).
struct GroupReachability {
  uint32_t NumGroups = 1;
  uint32_t Words = 1;
  std::vector<uint64_t> Bits; // Procs x Words, row-major

  const uint64_t *row(uint32_t Proc) const { return &Bits[Proc * Words]; }

  /// True when procedure \p Proc's subtree can only reach \p Group.
  bool confinedTo(uint32_t Proc, uint32_t Group) const {
    const uint64_t *R = row(Proc);
    for (uint32_t W = 0; W < Words; ++W) {
      uint64_t Mask = W == Group / 64 ? ~(1ull << (Group % 64)) : ~0ull;
      if (R[W] & Mask)
        return false;
    }
    return true;
  }

  /// The row projected onto the legacy one-word form: bits 0..63 exact,
  /// any group >= 64 collapsing to ~0 (the superset the 64-bit consumers
  /// assumed). Sound for the subset audit because the dataflow side can
  /// only name groups < 64 individually.
  uint64_t projected64(uint32_t Proc) const {
    const uint64_t *R = row(Proc);
    for (uint32_t W = 1; W < Words; ++W)
      if (R[W])
        return ~0ull;
    return R[0];
  }
};

/// Computes exact group reachability for every procedure. The per-procedure
/// seeding/poisoning pass runs on \p Pool; the worklist fixpoint over the
/// reversed call graph is serial.
GroupReachability computeReachableGroups(const SymbolicProgram &SP,
                                         ThreadPool &Pool);

/// Layout, address-load conversion/nullification (to a fixpoint for
/// OM-full), deletion, optional rescheduling and loop alignment,
/// instrumentation, and image emission. Fills the remaining Stats fields
/// and the labels of any inserted profile counters. Layout and the GAT
/// fixpoint stay single-threaded; deletion, rescheduling, and instruction
/// encoding fan out per procedure on \p Ctx's pool. With Opts.Analysis and
/// Opts.Reschedule, the rescheduler consumes \p Ctx's base-register
/// classification to relax memory ordering across proven-disjoint bases.
Result<obj::Image> layoutAndEmit(SymbolicProgram &SP, const OmOptions &Opts,
                                 OmStats &Stats,
                                 std::vector<std::string> &Sites,
                                 OmContext &Ctx);

/// Profile-guided hot/cold layout (OmOptions::HotColdLayout): reorders
/// each procedure's basic blocks by branch heat, splits never-executed
/// blocks into a cold tail (marking them SymInst::Cold), inserts fixup
/// branches where a moved block's fall-through no longer follows it, and
/// applies \p ProcOrder to SP.Procs (remapping TargetProc and
/// PSym::ProcIdx; an empty order means identity). The order must come
/// from proposeProcOrder over the same program — the BSR relaxation
/// already decided every call's reach against it, which is why this pass
/// no longer carries a whole-text reach gate. Runs per procedure on
/// \p Pool; the remap is serial, so the result is identical for any pool
/// size. Procedures the profile does not cover, covers with a mismatched
/// branch count, or that contain computed jumps / split GP pairs are left
/// untouched. Returns false (with \p Err set) only on an internal
/// invariant failure.
bool runProfileLayout(SymbolicProgram &SP, const OmOptions &Opts,
                      OmStats &Stats, ThreadPool &Pool, std::string &Err,
                      const std::vector<uint32_t> &ProcOrder);

/// Resolves option implications into the exact configuration the pipeline
/// runs: OmLevel::None clears the layout-changing knobs, block-count
/// instrumentation implies procedure-count instrumentation (and both
/// require OM-full), VerifyEachStage implies Verify. Fails on an
/// inconsistent request. optimize() and the incremental relinker share
/// this so a warm relink runs the same configuration a one-shot link
/// would.
Result<OmOptions> canonicalizeOptions(const OmOptions &Opts);

/// The worker count the pipeline will actually use for \p Opts on an input
/// of \p TotalInsts text instructions: Opts.Jobs, forced to 1 below the
/// serial-fallback cutoff. The image never depends on the result.
unsigned effectiveJobs(const OmOptions &Opts, uint64_t TotalInsts);

/// The OM pipeline proper: lift, verify, call transforms, verify, layout
/// and emit — everything optimize() does after option canonicalization
/// and pool selection. \p Opts must already be canonicalized. The two
/// caches are optional cross-link memos (see LiftCache /
/// analysis::SummaryCache); passing nullptr gives the one-shot behavior,
/// and any combination produces a byte-identical image.
Result<OmResult> runPipeline(const std::vector<obj::ObjectFile> &Objs,
                             const OmOptions &Opts, ThreadPool &Pool,
                             LiftCache *LC, analysis::SummaryCache *SC);

/// Pessimistic upper bound on each procedure's end offset in the final
/// text under \p Opts: nothing deleted, every possible insertion
/// (instrumentation counters, alignment nops, layout fixup branches)
/// counted, full start alignment paid. Shared by the BSR relaxation and
/// the layout order proposal so the two stay consistent.
std::vector<uint64_t> pessimisticProcEnds(const SymbolicProgram &SP,
                                          const OmOptions &Opts);

/// A BSR reaches +/-(2^20 - 1) words from the instruction after it. The
/// single definition shared by the relaxation fixpoint, the layout order
/// proposal, and the post-assembly range audit — these reasoned about
/// reach with two hand-copied constants before, with a comment pleading
/// that they stay consistent.
constexpr uint64_t BsrReachBytes = ((1ull << 20) - 1) * 4;

/// True when the profile-guided layout pass will actually move code for
/// \p Opts: OM-full, --layout=hot-cold, and a non-empty profile. The BSR
/// relaxation and the layout pass share this single gate so the
/// relaxation's insertion allowances always match what layout may insert.
inline bool profileLayoutLive(const OmOptions &Opts) {
  return Opts.Level == OmLevel::Full && Opts.HotColdLayout &&
         !Opts.Profile.empty();
}

/// Saturating decrement for OmStats counters. The revert path subtracts
/// from counters another phase incremented; if a future reordering ever
/// runs the revert before the increment, a raw `--` would wrap to ~1e19
/// and poison every stats consumer. Clamping at zero keeps the counter
/// merely wrong-by-one instead of absurd. Returns false when the counter
/// was already zero (callers may want to assert or log).
inline bool checkedDecrement(uint64_t &Counter) {
  if (Counter == 0)
    return false;
  --Counter;
  return true;
}

/// Computes the procedure order the profile-guided layout pass intends to
/// apply (runProfileLayout later applies exactly this permutation): chain
/// the dynamic call graph's hottest edges, order chains by heat, sink
/// never-executed procedures to the end. Returns an empty vector for the
/// identity order (profile layout not live, empty/unmatched profile, or a
/// heat order equal to the input order).
///
/// On images whose pessimistic text exceeds BsrReachBytes, procedures
/// connected by compiler-emitted BSRs (which cannot fall back to a JSR)
/// are first clustered and each cluster kept contiguous in the order, so
/// reordering cannot stretch an un-revertible call across the text. Below
/// that size the clustering is skipped and the order is exactly the
/// legacy heat order (keeping small-workload layouts byte-identical).
std::vector<uint32_t> proposeProcOrder(const SymbolicProgram &SP,
                                       const OmOptions &Opts);

} // namespace om
} // namespace om64

#endif // OM64_OM_OMIMPL_H

//===- om/OmImpl.h - Private interfaces between OM's phases ---------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_OMIMPL_H
#define OM64_OM_OMIMPL_H

#include "om/Om.h"
#include "om/SymbolicProgram.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace om64 {
namespace om {

/// Object code -> symbolic form. Resolves symbols, recovers procedures,
/// literals with their uses, GP-disp pairs, local branches, and direct
/// calls; assigns GP groups per object.
Result<SymbolicProgram> liftProgram(const std::vector<obj::ObjectFile> &Objs,
                                    const OmOptions &Opts);

/// The call-related transforms (JSR->BSR, prologue restoration/skipping/
/// deletion, PV-load removal, GP-reset nullification). Applies the subset
/// appropriate for Opts.Level and updates Stats counters it owns
/// (JsrConvertedToBsr).
void runCallTransforms(SymbolicProgram &SP, const OmOptions &Opts,
                       OmStats &Stats);

/// Layout, address-load conversion/nullification (to a fixpoint for
/// OM-full), deletion, optional rescheduling and loop alignment,
/// instrumentation, and image emission. Fills the remaining Stats fields
/// and the labels of any inserted profile counters.
Result<obj::Image> layoutAndEmit(SymbolicProgram &SP, const OmOptions &Opts,
                                 OmStats &Stats,
                                 std::vector<std::string> &Sites);

} // namespace om
} // namespace om64

#endif // OM64_OM_OMIMPL_H

//===- om/OmImpl.h - Private interfaces between OM's phases ---------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_OMIMPL_H
#define OM64_OM_OMIMPL_H

#include "om/Om.h"
#include "om/SymbolicProgram.h"
#include "support/Result.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace om64 {
namespace om {

/// Object code -> symbolic form. Resolves symbols, recovers procedures,
/// literals with their uses, GP-disp pairs, local branches, and direct
/// calls; assigns GP groups per object. Per-procedure decoding runs on
/// \p Pool; symbol resolution, literal-id assignment, and the final merge
/// stay serial and proc-ordered so the result is identical for any pool
/// size.
Result<SymbolicProgram> liftProgram(const std::vector<obj::ObjectFile> &Objs,
                                    const OmOptions &Opts, ThreadPool &Pool);

/// The call-related transforms (JSR->BSR, prologue restoration/skipping/
/// deletion, PV-load removal, GP-reset nullification). Applies the subset
/// appropriate for Opts.Level and updates Stats counters it owns
/// (JsrConvertedToBsr). Per-caller rewriting runs on \p Pool against
/// callee facts snapshotted between phases; the cross-procedure
/// reachability analysis stays serial.
void runCallTransforms(SymbolicProgram &SP, const OmOptions &Opts,
                       OmStats &Stats, ThreadPool &Pool);

/// Layout, address-load conversion/nullification (to a fixpoint for
/// OM-full), deletion, optional rescheduling and loop alignment,
/// instrumentation, and image emission. Fills the remaining Stats fields
/// and the labels of any inserted profile counters. Layout and the GAT
/// fixpoint stay single-threaded; deletion, rescheduling, and instruction
/// encoding fan out per procedure on \p Pool.
Result<obj::Image> layoutAndEmit(SymbolicProgram &SP, const OmOptions &Opts,
                                 OmStats &Stats,
                                 std::vector<std::string> &Sites,
                                 ThreadPool &Pool);

} // namespace om
} // namespace om64

#endif // OM64_OM_OMIMPL_H

//===- om/OmImpl.h - Private interfaces between OM's phases ---------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_OMIMPL_H
#define OM64_OM_OMIMPL_H

#include "om/Om.h"
#include "om/SymbolicProgram.h"
#include "support/Result.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace om64 {
namespace om {

/// Object code -> symbolic form. Resolves symbols, recovers procedures,
/// literals with their uses, GP-disp pairs, local branches, and direct
/// calls; assigns GP groups per object. Per-procedure decoding runs on
/// \p Pool; symbol resolution, literal-id assignment, and the final merge
/// stay serial and proc-ordered so the result is identical for any pool
/// size.
Result<SymbolicProgram> liftProgram(const std::vector<obj::ObjectFile> &Objs,
                                    const OmOptions &Opts, ThreadPool &Pool);

/// The call-related transforms (JSR->BSR, prologue restoration/skipping/
/// deletion, PV-load removal, GP-reset nullification). Applies the subset
/// appropriate for Opts.Level and updates Stats counters it owns
/// (JsrConvertedToBsr). Per-caller rewriting runs on \p Pool against
/// callee facts snapshotted between phases; the cross-procedure
/// reachability analysis stays serial.
void runCallTransforms(SymbolicProgram &SP, const OmOptions &Opts,
                       OmStats &Stats, ThreadPool &Pool);

/// Layout, address-load conversion/nullification (to a fixpoint for
/// OM-full), deletion, optional rescheduling and loop alignment,
/// instrumentation, and image emission. Fills the remaining Stats fields
/// and the labels of any inserted profile counters. Layout and the GAT
/// fixpoint stay single-threaded; deletion, rescheduling, and instruction
/// encoding fan out per procedure on \p Pool.
Result<obj::Image> layoutAndEmit(SymbolicProgram &SP, const OmOptions &Opts,
                                 OmStats &Stats,
                                 std::vector<std::string> &Sites,
                                 ThreadPool &Pool);

/// Profile-guided hot/cold layout (OmOptions::HotColdLayout): reorders
/// each procedure's basic blocks by branch heat, splits never-executed
/// blocks into a cold tail (marking them SymInst::Cold), inserts fixup
/// branches where a moved block's fall-through no longer follows it, and
/// reorders SP.Procs by dynamic call-edge heat (remapping TargetProc and
/// PSym::ProcIdx). Runs per procedure on \p Pool; the procedure-order
/// decision and the remap are serial, so the result is identical for any
/// pool size. Procedures the profile does not cover, covers with a
/// mismatched branch count, or that contain computed jumps / split GP
/// pairs are left untouched. Returns false (with \p Err set) only on an
/// internal invariant failure.
bool runProfileLayout(SymbolicProgram &SP, const OmOptions &Opts,
                      OmStats &Stats, ThreadPool &Pool, std::string &Err);

/// Pessimistic upper bound on each procedure's end offset in the final
/// text under \p Opts: nothing deleted, every possible insertion
/// (instrumentation counters, alignment nops, layout fixup branches)
/// counted, full start alignment paid. Shared by the BSR relaxation and
/// the layout pass's reach gate so the two stay consistent.
std::vector<uint64_t> pessimisticProcEnds(const SymbolicProgram &SP,
                                          const OmOptions &Opts);

} // namespace om
} // namespace om64

#endif // OM64_OM_OMIMPL_H

//===- om/Transforms.cpp - OM's call-related optimizations ----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The section-3 call transformations:
///
///   * JSR -> BSR when the destination is known (both levels; "this
///     requires no analysis at all except to look up destinations in the
///     GAT and see if they are close enough"),
///   * skipping the callee's GP-setting prologue, which in turn makes the
///     PV load at the call site dead. OM-simple can do this only when the
///     pair is still a clean prefix of the callee (compile-time scheduling
///     usually moved it); OM-full first *restores* the pair to procedure
///     entry,
///   * nullifying the caller's GP-reset pair after calls whose entire call
///     subtree stays within one GP group (OM-simple uses the trivial
///     whole-program single-GAT argument; OM-full walks the call graph),
///   * OM-full: deleting GP prologues nothing can reach anymore.
///
//===----------------------------------------------------------------------===//

#include "om/OmImpl.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace om64;
using namespace om64::om;
using namespace om64::isa;
using namespace om64::obj;

namespace {

/// Moves the prologue GP-set pair of procedure \p ProcIdx back to
/// instructions 0 and 1 (undoing compile-time scheduling). Safe because
/// everything the compile-time scheduler may have hoisted above the pair
/// neither reads nor writes GP or PV (any GP/PV-dependent instruction was
/// kept below the pair by the scheduler's own dependence analysis).
///
/// The move renumbers every instruction up to the pair's low half, so all
/// positional bookkeeping into this procedure — LocalBranch targets and the
/// literal table's LoadIdx/JsrIdx/use indices — must be remapped, or later
/// passes (PV-load removal, address-load decisions) dereference stale
/// indices and nullify or rewrite the wrong instruction.
void restoreProloguePair(SymbolicProgram &SP, uint32_t ProcIdx) {
  SymProc &Proc = SP.Procs[ProcIdx];
  int High = -1, Low = -1;
  for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
    const SymInst &SI = Proc.Insts[Idx];
    if (SI.Kind == SKind::GpHigh && SI.GpKind == GpDispKind::Prologue) {
      High = static_cast<int>(Idx);
      for (size_t J = Idx + 1; J < Proc.Insts.size(); ++J)
        if (Proc.Insts[J].Kind == SKind::GpLow &&
            Proc.Insts[J].PairId == SI.PairId) {
          Low = static_cast<int>(J);
          break;
        }
      break;
    }
  }
  if (High < 0 || Low < 0)
    return;
  if (High == 0 && Low == 1)
    return;
  SymInst HighInst = Proc.Insts[High];
  SymInst LowInst = Proc.Insts[Low];
  Proc.Insts.erase(Proc.Insts.begin() + Low);
  Proc.Insts.erase(Proc.Insts.begin() + High);
  Proc.Insts.insert(Proc.Insts.begin(), LowInst);
  Proc.Insts.insert(Proc.Insts.begin(), HighInst);

  // High lands at 0 and Low at 1; instructions before the high shift down
  // by 2, those between the halves by 1, the rest stay put.
  auto remap = [High, Low](uint32_t Idx) -> uint32_t {
    int I = static_cast<int>(Idx);
    if (I == High)
      return 0;
    if (I == Low)
      return 1;
    if (I < High)
      return Idx + 2;
    if (I < Low)
      return Idx + 1;
    return Idx;
  };
  for (SymInst &SI : Proc.Insts)
    if (SI.Kind == SKind::LocalBranch && SI.TargetIdx >= 0)
      SI.TargetIdx =
          static_cast<int32_t>(remap(static_cast<uint32_t>(SI.TargetIdx)));
  for (auto &[LitId, L] : SP.Lits) {
    (void)LitId;
    if (L.Proc != ProcIdx)
      continue;
    if (L.LoadIdx != ~0u)
      L.LoadIdx = remap(L.LoadIdx);
    if (L.JsrIdx >= 0)
      L.JsrIdx =
          static_cast<int32_t>(remap(static_cast<uint32_t>(L.JsrIdx)));
    for (uint32_t &Use : L.MemUses)
      Use = remap(Use);
    for (uint32_t &Use : L.AddrUses)
      Use = remap(Use);
    for (uint32_t &Use : L.DerefUses)
      Use = remap(Use);
  }
}

} // namespace

/// Call-graph reachability of GP groups: bit g set when the subtree rooted
/// at the procedure can execute GP-setting code of group g. Indirect calls
/// poison the set with every group of every address-taken procedure
/// (conservatively: all groups). Rows are as many 64-bit words as the
/// program has groups, so the result is exact at any group count — the old
/// single-word form saturated past 64 groups, keeping every reset alive on
/// mega-scale inputs with per-module groups.
GroupReachability
om64::om::computeReachableGroups(const SymbolicProgram &SP,
                                 ThreadPool &Pool) {
  size_t N = SP.Procs.size();
  GroupReachability R;
  R.NumGroups = SP.NumGroups;
  R.Words = (SP.NumGroups + 63) / 64;
  R.Bits.assign(N * R.Words, 0);

  auto setAll = [&R](uint64_t *Row) {
    for (uint32_t W = 0; W < R.Words; ++W)
      Row[W] = ~0ull;
    if (uint32_t Tail = R.NumGroups % 64)
      Row[R.Words - 1] = (1ull << Tail) - 1;
  };

  // Seed every procedure and collect its call edges, in parallel: each
  // worker writes only its own row and edge list.
  std::vector<std::vector<uint32_t>> Callees(N);
  Pool.parallelFor(N, [&](size_t Idx) {
    const SymProc &P = SP.Procs[Idx];
    uint64_t *Row = &R.Bits[Idx * R.Words];
    Row[P.GpGroup / 64] |= 1ull << (P.GpGroup % 64);
    bool All = P.MakesIndirectCalls;
    for (const SymInst &SI : P.Insts) {
      if (SI.Kind == SKind::DirectCall) {
        Callees[Idx].push_back(SI.TargetProc);
      } else if (SI.Kind == SKind::JsrViaGat) {
        const LitInfo &L = SP.Lits.at(SI.LitId);
        const PSym &Target = SP.Syms[L.TargetSym];
        if (Target.IsProc)
          Callees[Idx].push_back(Target.ProcIdx);
        else
          All = true; // call through data: unknown
      }
      if (SI.Nullified)
        continue;
      // A computed jump's targets are invisible to the symbolic form: the
      // subtree can reach any GP-setting code at all. (Our codegen never
      // emits JMP, but hand-assembled objects can.)
      if (SI.I.Op == isa::Opcode::Jmp)
        All = true;
      // A GP write outside a recognized GP-disp pair leaves GP holding a
      // value no group argument covers; treating it as all-groups keeps
      // every reset after calls into this subtree alive. Without this the
      // set understates and a caller's reset is unsoundly nullified — the
      // dataflow audit (verifyDeletionProofs' subset check) is what caught
      // the gap.
      if (SI.Kind != SKind::GpHigh && SI.Kind != SKind::GpLow &&
          isa::regUnitWritten(SI.I) == isa::intUnit(isa::GP))
        All = true;
    }
    if (All)
      setAll(Row);
    std::sort(Callees[Idx].begin(), Callees[Idx].end());
    Callees[Idx].erase(std::unique(Callees[Idx].begin(), Callees[Idx].end()),
                       Callees[Idx].end());
  });

  // Serial worklist over the reversed call graph to the (unique) least
  // fixpoint; re-visits only procedures whose callees actually grew, unlike
  // the old rescan-everything loop.
  std::vector<std::vector<uint32_t>> Callers(N);
  for (uint32_t P = 0; P < N; ++P)
    for (uint32_t C : Callees[P])
      if (C != P)
        Callers[C].push_back(P);
  std::vector<uint32_t> Work(N);
  for (uint32_t P = 0; P < N; ++P)
    Work[P] = P;
  std::vector<uint8_t> Queued(N, 1);
  while (!Work.empty()) {
    uint32_t P = Work.back();
    Work.pop_back();
    Queued[P] = 0;
    uint64_t *Row = &R.Bits[P * R.Words];
    bool Changed = false;
    for (uint32_t C : Callees[P]) {
      const uint64_t *CalleeRow = &R.Bits[C * R.Words];
      for (uint32_t W = 0; W < R.Words; ++W) {
        uint64_t Merged = Row[W] | CalleeRow[W];
        if (Merged != Row[W]) {
          Row[W] = Merged;
          Changed = true;
        }
      }
    }
    if (Changed)
      for (uint32_t Caller : Callers[P])
        if (!Queued[Caller]) {
          Queued[Caller] = 1;
          Work.push_back(Caller);
        }
  }
  return R;
}

namespace {

/// Nullifies the GP-reset pair that follows the call at \p CallIdx, if one
/// exists (the next post-call GpHigh before any other call or branch
/// boundary is this call's reset).
bool nullifyResetAfter(SymProc &Proc, size_t CallIdx) {
  for (size_t Idx = CallIdx + 1; Idx < Proc.Insts.size(); ++Idx) {
    SymInst &SI = Proc.Insts[Idx];
    if (SI.Kind == SKind::GpHigh && SI.GpKind == GpDispKind::PostCall) {
      // Locate both halves before touching either: nullifying the high
      // without its low would leave a half-active pair that adds the low
      // displacement to an unreset GP (i.e. corrupts GP).
      for (size_t J = Idx + 1; J < Proc.Insts.size(); ++J)
        if (Proc.Insts[J].Kind == SKind::GpLow &&
            Proc.Insts[J].PairId == SI.PairId) {
          SI.Nullified = true;
          Proc.Insts[J].Nullified = true;
          return true;
        }
      return false;
    }
    // Stop at the next call or control transfer: this call has no reset.
    if (SI.Kind == SKind::DirectCall || SI.Kind == SKind::JsrViaGat ||
        SI.Kind == SKind::JsrIndirect ||
        classOf(SI.I.Op) == InstClass::Branch ||
        classOf(SI.I.Op) == InstClass::Jump)
      return false;
  }
  return false;
}

/// The analysis-driven deletion phase (OmOptions::Analysis, OM-full only).
/// Two passes against Ctx's dataflow, invalidating between them:
///
///   Pass A deletes instructions that are concrete no-ops under a proof —
///   a GP pair whose GP already holds the group's value on every path into
///   its high half, and a call's address load whose destination register
///   already holds the callee's entry address. No-ops can all be deleted
///   simultaneously against one analysis: no deletion changes any register
///   value, so no proof invalidates another.
///
///   Pass B deletes address loads whose result is dead. Deadness is a
///   property of the *current* program, so it proves against a fresh
///   analysis of the Pass-A result (Pass A only removes reads, which can
///   only make more registers dead, never fewer).
///
/// Every deletion sets SymInst::AnalysisNullified so OmVerify's literal
/// checks and verifyDeletionProofs can tell proof-based deletions from
/// pattern ones. Counters reduce in procedure order.
void runAnalysisDeletions(SymbolicProgram &SP, OmStats &Stats,
                          OmContext &Ctx) {
  size_t NumProcs = SP.Procs.size();
  ThreadPool &Pool = Ctx.pool();
  const unsigned GpUnit = intUnit(GP);

  // --- Pass A: equality proofs. ---
  Ctx.invalidate(); // the pattern transforms just mutated the program
  std::vector<uint64_t> PairCount(NumProcs, 0), PvCount(NumProcs, 0);
  {
    const analysis::ProgramAnalysis &PA = Ctx.program();
    Pool.parallelFor(NumProcs, [&](size_t ProcIdx) {
      SymProc &Proc = SP.Procs[ProcIdx];
      const analysis::Cfg &Cfg = PA.Cfgs[ProcIdx];
      for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
        SymInst &SI = Proc.Insts[Idx];
        if (SI.Nullified)
          continue;
        if (SI.Kind == SKind::GpHigh) {
          // Locate the low half; only the *pair* is a no-op (between the
          // halves GP holds the intermediate LDAH result), so both halves
          // must sit in one block with nothing touching GP in between —
          // then every execution of either half executes both.
          size_t Low = Proc.Insts.size();
          for (size_t J = Idx + 1; J < Proc.Insts.size(); ++J)
            if (Proc.Insts[J].Kind == SKind::GpLow &&
                Proc.Insts[J].PairId == SI.PairId) {
              Low = J;
              break;
            }
          if (Low == Proc.Insts.size() ||
              Cfg.BlockOf[Idx] != Cfg.BlockOf[Low])
            continue;
          bool Clean = true;
          for (size_t K = Idx + 1; K < Low && Clean; ++K) {
            const SymInst &Mid = Proc.Insts[K];
            if (Mid.Nullified)
              continue;
            unsigned Units[3];
            unsigned NumRead = regUnitsRead(Mid.I, Units);
            for (unsigned R = 0; R < NumRead; ++R)
              if (Units[R] == GpUnit)
                Clean = false;
            if (regUnitWritten(Mid.I) == GpUnit)
              Clean = false;
          }
          if (!Clean)
            continue;
          if (PA.gpBefore(SP, static_cast<uint32_t>(ProcIdx),
                          static_cast<uint32_t>(Idx),
                          Proc.GpGroup) != analysis::GpProof::Proven)
            continue;
          SI.Nullified = SI.AnalysisNullified = true;
          Proc.Insts[Low].Nullified = true;
          Proc.Insts[Low].AnalysisNullified = true;
          ++PairCount[ProcIdx];
        } else if (SI.Kind == SKind::AddressLoad && !SI.Converted) {
          // A call's PV load is a no-op when the destination register
          // already holds the callee's entry address (classically: a
          // second call to a callee that preserved PV). Restricted to
          // pure call literals so applyRewrites never folds displacements
          // of a load *we* nullified.
          auto It = SP.Lits.find(SI.LitId);
          if (It == SP.Lits.end())
            continue;
          const LitInfo &L = It->second;
          if (L.JsrIdx < 0 || !L.MemUses.empty() || !L.AddrUses.empty() ||
              !L.DerefUses.empty())
            continue;
          const PSym &Target = SP.Syms[L.TargetSym];
          if (!Target.IsProc)
            continue;
          analysis::ValueState S = PA.valuesBefore(
              SP, static_cast<uint32_t>(ProcIdx), static_cast<uint32_t>(Idx));
          if (S.Unreachable)
            continue;
          if (S.R[intUnit(SI.I.Ra)] ==
              analysis::AbsVal::entryOf(Target.ProcIdx)) {
            SI.Nullified = SI.AnalysisNullified = true;
            ++PvCount[ProcIdx];
          }
        }
      }
    });
  }

  // --- Pass B: deadness, proven against the Pass-A program. ---
  Ctx.invalidate();
  std::vector<uint64_t> DeadCount(NumProcs, 0);
  {
    const analysis::ProgramAnalysis &PA = Ctx.program();
    Pool.parallelFor(NumProcs, [&](size_t ProcIdx) {
      SymProc &Proc = SP.Procs[ProcIdx];
      for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
        SymInst &SI = Proc.Insts[Idx];
        if (SI.Kind != SKind::AddressLoad || SI.Nullified || SI.Converted)
          continue;
        auto It = SP.Lits.find(SI.LitId);
        if (It == SP.Lits.end() || !It->second.escapes())
          continue; // a recorded use reads the register; liveness agrees
        uint64_t LiveOut = PA.liveAfter(SP, static_cast<uint32_t>(ProcIdx),
                                        static_cast<uint32_t>(Idx));
        if ((LiveOut >> intUnit(SI.I.Ra)) & 1)
          continue;
        SI.Nullified = SI.AnalysisNullified = true;
        ++DeadCount[ProcIdx];
      }
    });
  }
  Ctx.invalidate();

  for (size_t Idx = 0; Idx < NumProcs; ++Idx) {
    Stats.AnalysisGpPairsDeleted += PairCount[Idx];
    Stats.AnalysisPvLoadsDeleted += PvCount[Idx];
    Stats.AnalysisDeadLoadsDeleted += DeadCount[Idx];
  }
}

} // namespace

void om64::om::runCallTransforms(SymbolicProgram &SP, const OmOptions &Opts,
                                 OmStats &Stats, OmContext &Ctx) {
  if (Opts.Level == OmLevel::None)
    return;
  ThreadPool &Pool = Ctx.pool();
  bool Full = Opts.Level == OmLevel::Full;
  size_t NumProcs = SP.Procs.size();

  // OM-full first restores prologue GP-set pairs to procedure entry so
  // that direct calls can be retargeted past them (section 4: "if we can
  // restore them to their logical place at the beginning of the procedure,
  // we can avoid executing them on most or all of the calls"). Each
  // restoration reorders only its own procedure and rewrites only the
  // literal records owned by it (L.Proc, which nobody writes here, selects
  // them), so procedures restore concurrently.
  if (Full)
    Pool.parallelFor(NumProcs, [&](size_t ProcIdx) {
      restoreProloguePair(SP, static_cast<uint32_t>(ProcIdx));
    });

  // Snapshot the callee-side facts the call rewriting reads, so that the
  // parallel rewrite below never looks into another procedure's (possibly
  // concurrently mutating) instruction vector. The snapshot is taken after
  // the restoration barrier, exactly where the serial pass would read the
  // same facts: the rewrite itself changes neither fact (it writes call
  // Kinds, TargetProc, SkipPrologue, and address-load Nullified bits — no
  // GpHigh/GpLow kinds and no entry pair).
  std::vector<uint8_t> CalleeHasGpSet(NumProcs, 0);
  std::vector<uint8_t> CalleePrologueAtEntry(NumProcs, 0);
  Pool.parallelFor(NumProcs, [&](size_t ProcIdx) {
    const SymProc &P = SP.Procs[ProcIdx];
    for (const SymInst &CI : P.Insts)
      if (CI.Kind == SKind::GpHigh && CI.GpKind == GpDispKind::Prologue) {
        CalleeHasGpSet[ProcIdx] = 1;
        break;
      }
    CalleePrologueAtEntry[ProcIdx] = P.hasProloguePairAtEntry();
  });

  // JSR -> BSR, prologue skipping, PV-load removal. Per caller: each
  // worker mutates only its own procedure's instructions and reads shared
  // state that is immutable during this phase (symbols, literal records,
  // the fact snapshots). Conversion counts reduce in procedure order.
  std::vector<uint64_t> ConvertedInProc(NumProcs, 0);
  Pool.parallelFor(NumProcs, [&](size_t ProcIdx) {
    SymProc &Caller = SP.Procs[ProcIdx];
    for (size_t Idx = 0; Idx < Caller.Insts.size(); ++Idx) {
      SymInst &SI = Caller.Insts[Idx];
      if (SI.Kind != SKind::JsrViaGat)
        continue;
      // find, not operator[]: a structural map mutation here would race
      // with the other workers' lookups.
      auto It = SP.Lits.find(SI.LitId);
      if (It == SP.Lits.end())
        continue;
      const LitInfo &L = It->second;
      const PSym &Target = SP.Syms[L.TargetSym];
      if (!Target.IsProc)
        continue; // call through a data literal: leave alone

      // The conversion itself needs no analysis; range is validated at
      // emission (total text is far below the 21-bit word reach).
      SI.Kind = SKind::DirectCall;
      SI.TargetProc = Target.ProcIdx;
      SI.I = makeBranch(Opcode::Bsr, RA, 0);
      ++ConvertedInProc[ProcIdx];

      // Skip the callee's GP-set pair when it is a clean entry prefix and
      // caller/callee share a GP value; then the PV load feeding this call
      // is dead if this call was its only use. A callee with no GP
      // prologue at all (it never reads PV) makes the load dead too --
      // the loader format's procedure descriptors tell even a traditional
      // linker that much.
      bool SameGroup = SP.Procs[Target.ProcIdx].GpGroup == Caller.GpGroup;
      bool PvDead = false;
      if (SameGroup && CalleePrologueAtEntry[Target.ProcIdx]) {
        SI.SkipPrologue = true;
        PvDead = true;
      } else if (!CalleeHasGpSet[Target.ProcIdx]) {
        PvDead = true;
      }
      if (PvDead && L.MemUses.empty() &&
          L.JsrIdx == static_cast<int32_t>(Idx))
        Caller.Insts[L.LoadIdx].Nullified = true;
    }
  });
  for (uint64_t Count : ConvertedInProc)
    Stats.JsrConvertedToBsr += Count;

  // GP-reset nullification.
  if (SP.NumGroups == 1 && !Full) {
    // OM-simple: with a single GAT every GP value is identical, so every
    // reset is redundant; no control-flow understanding required. Each
    // procedure is rewritten independently.
    Pool.parallelFor(NumProcs, [&](size_t P) {
      SymProc &Proc = SP.Procs[P];
      for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
        SymInst &SI = Proc.Insts[Idx];
        if (SI.Kind == SKind::GpHigh &&
            SI.GpKind == GpDispKind::PostCall) {
          SI.Nullified = true;
        } else if (SI.Kind == SKind::GpLow) {
          // Pair with a post-call high (prologue lows share PairId with a
          // prologue high); search backwards for the matching high.
          for (size_t J = Idx; J-- > 0;)
            if (Proc.Insts[J].Kind == SKind::GpHigh &&
                Proc.Insts[J].PairId == SI.PairId) {
              if (Proc.Insts[J].GpKind == GpDispKind::PostCall)
                SI.Nullified = true;
              break;
            }
        }
      }
    });
  } else if (Full) {
    // OM-full: per-call-site subtree analysis over the recovered call
    // graph, exact at any group count. The fixpoint is a serial
    // whole-program pass; the per-caller reset rewriting that consumes it
    // touches only the caller.
    GroupReachability Reach = computeReachableGroups(SP, Pool);
    Pool.parallelFor(NumProcs, [&](size_t ProcIdx) {
      SymProc &Caller = SP.Procs[ProcIdx];
      for (size_t Idx = 0; Idx < Caller.Insts.size(); ++Idx) {
        SymInst &SI = Caller.Insts[Idx];
        bool Confined;
        if (SI.Kind == SKind::DirectCall)
          Confined = Reach.confinedTo(SI.TargetProc, Caller.GpGroup);
        else if (SI.Kind == SKind::JsrIndirect)
          // An indirect call can reach any GP-setting code: confined only
          // in the degenerate single-group program.
          Confined = SP.NumGroups == 1;
        else
          continue;
        if (Confined)
          nullifyResetAfter(Caller, Idx);
      }
    });
  } else {
    // OM-simple with multiple GATs: only resets after direct calls whose
    // immediate callee shares the group and is itself leaf-safe cannot be
    // proven without control-flow analysis; a traditional linker keeps
    // them all.
  }

  // OM-full: delete GP prologues nothing can reach with a wrong GP (or at
  // all). Entry and address-taken procedures keep theirs; so do targets
  // of remaining non-skipping direct calls (cross-group BSRs).
  if (Full) {
    std::vector<bool> NeedsPrologue(SP.Procs.size(), false);
    for (SymProc &Proc : SP.Procs) {
      if (Proc.IsEntry || Proc.AddressTaken)
        NeedsPrologue[&Proc - &SP.Procs[0]] = true;
      for (const SymInst &SI : Proc.Insts)
        if (SI.Kind == SKind::DirectCall && !SI.SkipPrologue)
          NeedsPrologue[SI.TargetProc] = true;
        else if (SI.Kind == SKind::JsrViaGat) {
          const LitInfo &L = SP.Lits.at(SI.LitId);
          if (SP.Syms[L.TargetSym].IsProc)
            NeedsPrologue[SP.Syms[L.TargetSym].ProcIdx] = true;
        }
    }
    for (uint32_t ProcIdx = 0; ProcIdx < SP.Procs.size(); ++ProcIdx) {
      SymProc &Proc = SP.Procs[ProcIdx];
      if (NeedsPrologue[ProcIdx] || !Proc.hasProloguePairAtEntry())
        continue;
      Proc.Insts[0].Nullified = true;
      Proc.Insts[1].Nullified = true;
    }
  }

  // Whatever the patterns above could not justify, the dataflow may still
  // prove (prologues of procedures every caller enters with the right GP,
  // resets after pass-through callees, repeated PV loads, dead address
  // loads). Runs last so its counters measure exactly the wins over the
  // pattern baseline.
  if (Full && Opts.Analysis)
    runAnalysisDeletions(SP, Stats, Ctx);
  else
    Ctx.invalidate();
}

//===- om/Lift.cpp - Object code to symbolic form --------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The OM linker translates the object code of the entire program into
/// symbolic form, recovering the original structure ... It can be thorough
/// but still conservative in understanding the input object code because
/// it can use the loader symbol table and the relocation tables to clarify
/// the code." (section 4)
///
//===----------------------------------------------------------------------===//

#include "om/OmImpl.h"

#include "support/ContentHash.h"
#include "support/Format.h"
#include "support/ShardedMap.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

using namespace om64;
using namespace om64::om;
using namespace om64::isa;
using namespace om64::obj;

uint32_t SymProc::postPrologueIndex() const {
  if (hasProloguePairAtEntry())
    return 2;
  return 0;
}

bool SymProc::hasProloguePairAtEntry() const {
  return Insts.size() >= 2 && Insts[0].Kind == SKind::GpHigh &&
         Insts[0].GpKind == GpDispKind::Prologue &&
         Insts[1].Kind == SKind::GpLow &&
         Insts[1].PairId == Insts[0].PairId;
}

uint32_t SymbolicProgram::findProcBySuffix(const std::string &Suffix) const {
  for (uint32_t Idx = 0; Idx < Procs.size(); ++Idx) {
    const std::string &Name = Procs[Idx].Name;
    if (Name.size() > Suffix.size() + 1 &&
        Name[Name.size() - Suffix.size() - 1] == '.' &&
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) ==
            0)
      return Idx;
  }
  return ~0u;
}

namespace {

struct Lifter {
  const std::vector<ObjectFile> &Objs;
  const OmOptions &Opts;
  ThreadPool &Pool;
  LiftCache *Cache;
  SymbolicProgram SP;

  // Dense per-object tables replacing map lookups on the hot resolve path:
  // PSymIdOfDef[obj][symIdx] is the program symbol id of a defined symbol,
  // ~0u for undefined entries.
  std::vector<std::vector<uint32_t>> PSymIdOfDef;
  // Exported name -> program symbol id, interned concurrently during the
  // parallel symbol pass (mold-style sharded map).
  ShardedStringMap PSymOfName;

  Lifter(const std::vector<ObjectFile> &Objs, const OmOptions &Opts,
         ThreadPool &Pool, LiftCache *Cache)
      : Objs(Objs), Opts(Opts), Pool(Pool), Cache(Cache) {}

  Result<SymbolicProgram> run();
  Error buildSymbols();
  Error resolve(size_t ObjIdx, uint32_t SymIdx, uint32_t &Out) const;
  /// Decodes and classifies one procedure. \p RelocIdxs indexes the
  /// object's relocations belonging to this procedure, in table order.
  /// Literal ids are assigned from a procedure-local counter starting at 0
  /// (first-encounter order over the relocations, exactly as a shared
  /// counter would see them) and the literal records land in \p LocalLits;
  /// run() rebases both onto the program-wide id space in procedure order.
  /// Reads only immutable state of the Lifter, so procedures lift
  /// concurrently.
  Error liftProc(size_t ObjIdx, const ProcDesc &Desc, SymProc &Proc,
                 uint32_t &NextLitId, std::map<uint32_t, LitInfo> &LocalLits,
                 const std::vector<uint32_t> &RelocIdxs);
  void assignGroups();
  void computeAddressTaken();
};

} // namespace

Error Lifter::buildSymbols() {
  size_t NumObjs = Objs.size();
  PSymIdOfDef.resize(NumObjs);

  // Count definitions per object in parallel, then fix every object's id
  // range with a serial prefix sum: program symbol ids depend only on
  // object order, never on which thread interned what first.
  std::vector<uint64_t> DefCount(NumObjs, 0);
  Pool.parallelFor(NumObjs, [&](size_t ObjIdx) {
    uint64_t N = 0;
    for (const Symbol &S : Objs[ObjIdx].Symbols)
      N += S.IsDefined;
    DefCount[ObjIdx] = N;
  });
  std::vector<uint64_t> IdBase(NumObjs, 0);
  uint64_t Total = 0;
  for (size_t ObjIdx = 0; ObjIdx < NumObjs; ++ObjIdx) {
    IdBase[ObjIdx] = Total;
    Total += DefCount[ObjIdx];
  }
  if (Total >= ~0u)
    return Error::failure(
        formatString("program defines %llu symbols, exceeding the 32-bit "
                     "symbol-id space",
                     static_cast<unsigned long long>(Total)));
  SP.Syms.resize(Total);

  // Build each object's PSyms into its preassigned slots and intern the
  // exported names concurrently.
  Pool.parallelFor(NumObjs, [&](size_t ObjIdx) {
    const ObjectFile &O = Objs[ObjIdx];
    std::vector<uint32_t> &Ids = PSymIdOfDef[ObjIdx];
    Ids.assign(O.Symbols.size(), ~0u);
    uint32_t Id = static_cast<uint32_t>(IdBase[ObjIdx]);
    for (uint32_t SymIdx = 0; SymIdx < O.Symbols.size(); ++SymIdx) {
      const Symbol &S = O.Symbols[SymIdx];
      if (!S.IsDefined)
        continue;
      PSym &P = SP.Syms[Id];
      P.Name = S.Name;
      P.Size = S.Size;
      P.ObjIdx = static_cast<uint32_t>(ObjIdx);
      P.Exported = S.IsExported;
      P.IsProc = S.IsProcedure;
      if (!S.IsProcedure) {
        if (S.Section == SectionKind::Data) {
          P.Init.assign(O.Data.begin() + static_cast<ptrdiff_t>(S.Offset),
                        O.Data.begin() +
                            static_cast<ptrdiff_t>(S.Offset + S.Size));
        } else {
          P.IsBss = true;
        }
      }
      Ids[SymIdx] = Id;
      if (S.IsExported)
        PSymOfName.insert(S.Name, Id);
      ++Id;
    }
  });

  // Which duplicate won the concurrent interning is a race, so the
  // diagnosis is a serial object-order scan: the first definition whose
  // name resolved to some other id is the duplicate the serial code would
  // have reported (the message carries only the name either way).
  for (size_t ObjIdx = 0; ObjIdx < NumObjs; ++ObjIdx) {
    const ObjectFile &O = Objs[ObjIdx];
    for (uint32_t SymIdx = 0; SymIdx < O.Symbols.size(); ++SymIdx) {
      const Symbol &S = O.Symbols[SymIdx];
      if (!S.IsDefined || !S.IsExported)
        continue;
      if (PSymOfName.lookup(S.Name) != PSymIdOfDef[ObjIdx][SymIdx])
        return Error::failure("multiply-defined symbol '" + S.Name + "'");
    }
  }
  return Error::success();
}

Error Lifter::resolve(size_t ObjIdx, uint32_t SymIdx, uint32_t &Out) const {
  const Symbol &S = Objs[ObjIdx].Symbols[SymIdx];
  if (S.IsDefined) {
    Out = PSymIdOfDef[ObjIdx][SymIdx];
    return Error::success();
  }
  uint32_t Id = PSymOfName.lookup(S.Name);
  if (Id == ~0u)
    return Error::failure("undefined symbol '" + S.Name +
                          "' referenced from " + Objs[ObjIdx].ModuleName);
  Out = Id;
  return Error::success();
}

Error Lifter::liftProc(size_t ObjIdx, const ProcDesc &Desc, SymProc &Proc,
                       uint32_t &NextLitId,
                       std::map<uint32_t, LitInfo> &LocalLits,
                       const std::vector<uint32_t> &RelocIdxs) {
  const ObjectFile &O = Objs[ObjIdx];
  size_t NumInsts = Desc.TextSize / 4;
  Proc.Insts.resize(NumInsts);

  for (size_t Idx = 0; Idx < NumInsts; ++Idx) {
    size_t Off = Desc.TextOffset + Idx * 4;
    uint32_t Word = static_cast<uint32_t>(O.Text[Off]) |
                    (static_cast<uint32_t>(O.Text[Off + 1]) << 8) |
                    (static_cast<uint32_t>(O.Text[Off + 2]) << 16) |
                    (static_cast<uint32_t>(O.Text[Off + 3]) << 24);
    std::optional<Inst> I = decode(Word);
    if (!I)
      return Error::failure(formatString(
          "%s: undecodable instruction at +%zu in %s", O.ModuleName.c_str(),
          Off, Proc.Name.c_str()));
    Proc.Insts[Idx].I = *I;
    Proc.Insts[Idx].OrigDisp = I->Disp;
  }

  // Apply relocation knowledge. Local literal ids map to program-unique
  // ones so the Lits table can span objects.
  std::map<uint32_t, uint32_t> LitIdMap;
  auto mapLit = [&](uint32_t Local) {
    auto It = LitIdMap.find(Local);
    if (It != LitIdMap.end())
      return It->second;
    uint32_t Id = NextLitId++;
    LitIdMap.emplace(Local, Id);
    return Id;
  };

  uint32_t NextPairId = 0;
  for (uint32_t RelocIdx : RelocIdxs) {
    const Reloc &R = O.Relocs[RelocIdx];
    size_t Idx = (R.Offset - Desc.TextOffset) / 4;
    SymInst &SI = Proc.Insts[Idx];
    switch (R.Kind) {
    case RelocKind::Literal: {
      const GatEntry &E = O.Gat[R.GatIndex];
      if (E.Addend != 0)
        return Error::failure(O.ModuleName + ": GAT entry with addend not "
                                             "supported by OM");
      uint32_t Target;
      if (Error Err = resolve(ObjIdx, E.SymbolIndex, Target))
        return Err;
      SI.Kind = SKind::AddressLoad;
      SI.TargetSym = Target;
      SI.LitId = mapLit(R.LiteralId);
      break;
    }
    case RelocKind::LituseBase:
      SI.Kind = SKind::LitUseMem;
      SI.LitId = mapLit(R.LiteralId);
      break;
    case RelocKind::LituseAddr:
      SI.Kind = SKind::LitUseAddr;
      SI.LitId = mapLit(R.LiteralId);
      break;
    case RelocKind::LituseDeref:
      SI.Kind = SKind::LitUseDeref;
      SI.LitId = mapLit(R.LiteralId);
      break;
    case RelocKind::LituseJsr:
      SI.Kind = SKind::JsrViaGat;
      SI.LitId = mapLit(R.LiteralId);
      break;
    case RelocKind::GpDisp: {
      SI.Kind = SKind::GpHigh;
      SI.GpKind = static_cast<GpDispKind>(R.GpKind);
      SI.PairId = NextPairId;
      size_t LowIdx = (R.Offset + R.PairOffset - Desc.TextOffset) / 4;
      if (LowIdx >= NumInsts)
        return Error::failure(O.ModuleName + ": GP-disp pair crosses "
                                             "procedure boundary");
      Proc.Insts[LowIdx].Kind = SKind::GpLow;
      Proc.Insts[LowIdx].GpKind = static_cast<GpDispKind>(R.GpKind);
      Proc.Insts[LowIdx].PairId = NextPairId;
      ++NextPairId;
      break;
    }
    case RelocKind::RefQuad:
      break; // data relocation; handled by data lifting (not present here)
    }
  }

  // Classify control flow: remaining JSRs are indirect; branch-format
  // instructions become local branches or direct calls.
  for (size_t Idx = 0; Idx < NumInsts; ++Idx) {
    SymInst &SI = Proc.Insts[Idx];
    const Inst &I = SI.I;
    if (classOf(I.Op) == InstClass::Jump && I.Op == Opcode::Jsr &&
        SI.Kind == SKind::Plain) {
      SI.Kind = SKind::JsrIndirect;
      Proc.MakesIndirectCalls = true;
      continue;
    }
    if (classOf(I.Op) != InstClass::Branch)
      continue;
    int64_t TargetOff = static_cast<int64_t>(Desc.TextOffset) +
                        static_cast<int64_t>(Idx) * 4 + 4 +
                        static_cast<int64_t>(I.Disp) * 4;
    if (I.Op == Opcode::Bsr) {
      // A direct call; the target must be some procedure's entry in this
      // object (only the compiler creates BSRs, and only to entries).
      bool Found = false;
      for (const ProcDesc &D2 : O.Procs)
        if (static_cast<int64_t>(D2.TextOffset) == TargetOff) {
          // Target proc index is filled in by run() after all procedures
          // exist; stash the object-local descriptor identity via offset.
          SI.Kind = SKind::DirectCall;
          SI.TargetProc = static_cast<uint32_t>(TargetOff); // fixed later
          Found = true;
          break;
        }
      if (!Found)
        return Error::failure(O.ModuleName +
                              ": BSR to a non-procedure-entry target");
      continue;
    }
    // Conditional branches and BR stay inside the procedure.
    if (TargetOff < static_cast<int64_t>(Desc.TextOffset) ||
        TargetOff >= static_cast<int64_t>(Desc.TextOffset + Desc.TextSize))
      return Error::failure(O.ModuleName + ": local branch leaves " +
                            Proc.Name);
    SI.Kind = SKind::LocalBranch;
    SI.TargetIdx =
        static_cast<int32_t>((TargetOff - Desc.TextOffset) / 4);
  }

  // Record literal uses (into the procedure-local table; run() rebases).
  for (size_t Idx = 0; Idx < NumInsts; ++Idx) {
    SymInst &SI = Proc.Insts[Idx];
    if (SI.Kind == SKind::AddressLoad) {
      LitInfo &L = LocalLits[SI.LitId];
      L.Proc = Proc.SymId; // provisional; fixed by run()
      L.LoadIdx = static_cast<uint32_t>(Idx);
      L.TargetSym = SI.TargetSym;
    } else if (SI.Kind == SKind::LitUseMem) {
      LocalLits[SI.LitId].MemUses.push_back(static_cast<uint32_t>(Idx));
    } else if (SI.Kind == SKind::LitUseAddr) {
      LocalLits[SI.LitId].AddrUses.push_back(static_cast<uint32_t>(Idx));
    } else if (SI.Kind == SKind::LitUseDeref) {
      LocalLits[SI.LitId].DerefUses.push_back(static_cast<uint32_t>(Idx));
    } else if (SI.Kind == SKind::JsrViaGat) {
      LocalLits[SI.LitId].JsrIdx = static_cast<int32_t>(Idx);
    }
  }
  return Error::success();
}

void Lifter::assignGroups() {
  // Same grouping policy as the traditional linker: whole objects, in
  // order, while the merged (deduplicated) GAT fits one GP window. Each
  // object's entries resolve in parallel; the packing decision itself is a
  // serial object-order scan (it is inherently sequential and cheap), and
  // counts new entries against the running group instead of materializing
  // a merged copy per object.
  SP.GroupOfObj.resize(Objs.size());
  std::vector<std::vector<uint32_t>> EntriesOfObj(Objs.size());
  Pool.parallelFor(Objs.size(), [&](size_t ObjIdx) {
    std::vector<uint32_t> &Entries = EntriesOfObj[ObjIdx];
    for (const GatEntry &E : Objs[ObjIdx].Gat) {
      uint32_t Target;
      if (!resolve(ObjIdx, E.SymbolIndex, Target))
        Entries.push_back(Target);
    }
    std::sort(Entries.begin(), Entries.end());
    Entries.erase(std::unique(Entries.begin(), Entries.end()),
                  Entries.end());
  });

  uint32_t Group = 0;
  std::set<uint32_t> GroupEntries;
  uint64_t TotalEntries = 0;
  for (size_t ObjIdx = 0; ObjIdx < Objs.size(); ++ObjIdx) {
    const std::vector<uint32_t> &ObjEntries = EntriesOfObj[ObjIdx];
    size_t NewEntries = 0;
    for (uint32_t E : ObjEntries)
      NewEntries += !GroupEntries.count(E);
    if (GroupEntries.size() + NewEntries > Opts.MaxGatEntriesPerGroup &&
        !GroupEntries.empty()) {
      TotalEntries += GroupEntries.size();
      ++Group;
      GroupEntries.clear();
    }
    GroupEntries.insert(ObjEntries.begin(), ObjEntries.end());
    SP.GroupOfObj[ObjIdx] = Group;
  }
  TotalEntries += GroupEntries.size();
  SP.NumGroups = Group + 1;
  SP.OriginalGatEntries = TotalEntries;
  for (SymProc &P : SP.Procs)
    P.GpGroup = SP.GroupOfObj[P.ObjIdx];
}

void Lifter::computeAddressTaken() {
  for (const auto &[LitId, L] : SP.Lits) {
    (void)LitId;
    const PSym &Target = SP.Syms[L.TargetSym];
    if (!Target.IsProc)
      continue;
    // A procedure literal that is not used purely as a JSR destination
    // escapes: the procedure can be entered indirectly.
    if (L.escapes() || !L.MemUses.empty())
      SP.Procs[Target.ProcIdx].AddressTaken = true;
  }
}

Result<SymbolicProgram> Lifter::run() {
  SP.NumObjects = Objs.size();
  if (Error Err = buildSymbols())
    return Result<SymbolicProgram>::failure(Err.message());

  // Create procedures in object order.
  std::vector<std::unordered_map<uint64_t, uint32_t>> ProcByEntryOffset(
      Objs.size());
  for (size_t ObjIdx = 0; ObjIdx < Objs.size(); ++ObjIdx) {
    for (const ProcDesc &Desc : Objs[ObjIdx].Procs) {
      SymProc Proc;
      uint32_t SymId = PSymIdOfDef[ObjIdx][Desc.SymbolIndex];
      Proc.Name = SP.Syms[SymId].Name;
      Proc.ObjIdx = static_cast<uint32_t>(ObjIdx);
      Proc.SymId = SymId;
      Proc.Exported = SP.Syms[SymId].Exported;
      Proc.UsesGp = Desc.UsesGp;
      uint32_t ProcIdx = static_cast<uint32_t>(SP.Procs.size());
      SP.Syms[SymId].ProcIdx = ProcIdx;
      ProcByEntryOffset[ObjIdx][Desc.TextOffset] = ProcIdx;
      SP.Procs.push_back(std::move(Proc));
    }
  }

  // Decide per module whether the lift cache slot is reusable: bytes
  // unchanged (ContentHash, supplied by the caller) and every GAT entry
  // still resolving to the same program symbol. The signature hashes all
  // GAT resolutions — a superset of what Literal relocs actually consume —
  // so a match is sound for every AddressLoad target the cached
  // instructions carry.
  std::vector<uint64_t> Sig(Cache ? Objs.size() : 0);
  std::vector<uint8_t> UseSlot(Objs.size(), 0);
  if (Cache) {
    if (Cache->Slots.size() != Objs.size() ||
        Cache->CurrentHashes.size() != Objs.size()) {
      Cache->Slots.clear();
      Cache->Slots.resize(Objs.size());
      if (Cache->CurrentHashes.size() != Objs.size())
        Cache->CurrentHashes.assign(Objs.size(), 0);
    }
    Pool.parallelFor(Objs.size(), [&](size_t ObjIdx) {
      Hasher H;
      for (const GatEntry &E : Objs[ObjIdx].Gat) {
        uint32_t Target = ~0u;
        if (resolve(ObjIdx, E.SymbolIndex, Target))
          H.addU64(0x756e7265736f6cull); // "unresol": caught again below
        else
          H.addU32(Target);
        H.addI64(E.Addend);
      }
      Sig[ObjIdx] = H.digest();
      const LiftCache::Slot &S = Cache->Slots[ObjIdx];
      UseSlot[ObjIdx] = S.Valid &&
                        S.ContentHash == Cache->CurrentHashes[ObjIdx] &&
                        S.ResolutionSig == Sig[ObjIdx] &&
                        S.Procs.size() == Objs[ObjIdx].Procs.size();
    });
  }

  // Bucket each object's relocations by owning procedure (parallel, one
  // pass over the table with a binary search per entry): lifting becomes
  // O(insts + relocs) instead of every procedure rescanning its object's
  // whole relocation table, which was quadratic in procedures per module
  // on mega-scale inputs. Modules taking the cached path skip the fill
  // (their buckets are never read) but keep the per-procedure shape so
  // the unit table below can point into it unconditionally.
  std::vector<std::vector<std::vector<uint32_t>>> RelocBuckets(Objs.size());
  Pool.parallelFor(Objs.size(), [&](size_t ObjIdx) {
    const ObjectFile &O = Objs[ObjIdx];
    std::vector<std::vector<uint32_t>> &Buckets = RelocBuckets[ObjIdx];
    Buckets.resize(O.Procs.size());
    if (UseSlot[ObjIdx])
      return;
    struct Range {
      uint64_t Begin, End;
      uint32_t Proc;
    };
    std::vector<Range> Ranges;
    Ranges.reserve(O.Procs.size());
    for (uint32_t P = 0; P < O.Procs.size(); ++P)
      if (O.Procs[P].TextSize != 0)
        Ranges.push_back({O.Procs[P].TextOffset,
                          O.Procs[P].TextOffset + O.Procs[P].TextSize, P});
    std::sort(Ranges.begin(), Ranges.end(),
              [](const Range &A, const Range &B) { return A.Begin < B.Begin; });
    for (uint32_t RelocIdx = 0; RelocIdx < O.Relocs.size(); ++RelocIdx) {
      uint64_t Off = O.Relocs[RelocIdx].Offset;
      auto It = std::upper_bound(
          Ranges.begin(), Ranges.end(), Off,
          [](uint64_t V, const Range &R) { return V < R.Begin; });
      if (It == Ranges.begin())
        continue;
      const Range &R = *std::prev(It);
      if (Off < R.End)
        Buckets[R.Proc].push_back(RelocIdx);
    }
  });

  // Lift every procedure on the pool. Workers touch only their own
  // procedure, a private literal table, and a private error slot; the
  // Lifter itself (symbol tables, Objs) is immutable here. Literal ids are
  // rebased serially in procedure order below, which reproduces the
  // first-encounter numbering of a single shared counter bit for bit.
  struct LiftUnit {
    size_t ObjIdx;
    uint32_t ProcInObj;
    const ProcDesc *Desc;
    const std::vector<uint32_t> *Relocs;
  };
  std::vector<LiftUnit> Units;
  Units.reserve(SP.Procs.size());
  for (size_t ObjIdx = 0; ObjIdx < Objs.size(); ++ObjIdx)
    for (uint32_t P = 0; P < Objs[ObjIdx].Procs.size(); ++P)
      Units.push_back({ObjIdx, P, &Objs[ObjIdx].Procs[P],
                       &RelocBuckets[ObjIdx][P]});

  std::vector<std::map<uint32_t, LitInfo>> LocalLits(Units.size());
  std::vector<uint32_t> LocalLitCount(Units.size(), 0);
  std::vector<std::string> LiftErrors(Units.size());
  Pool.parallelFor(Units.size(), [&](size_t P) {
    if (UseSlot[Units[P].ObjIdx]) {
      // Cached: the pre-rebase product is a pure function of inputs the
      // slot match just validated; copy it (the rebase below mutates the
      // working copy, never the cache's).
      const LiftCache::ProcData &D =
          Cache->Slots[Units[P].ObjIdx].Procs[Units[P].ProcInObj];
      SP.Procs[P].Insts = D.Insts;
      SP.Procs[P].MakesIndirectCalls = D.MakesIndirectCalls;
      LocalLits[P] = D.LocalLits;
      LocalLitCount[P] = D.LitCount;
      return;
    }
    if (Error Err = liftProc(Units[P].ObjIdx, *Units[P].Desc, SP.Procs[P],
                             LocalLitCount[P], LocalLits[P],
                             *Units[P].Relocs))
      LiftErrors[P] = Err.message();
  });
  // First error in procedure order: the same one the serial loop stops at.
  for (const std::string &Msg : LiftErrors)
    if (!Msg.empty())
      return Result<SymbolicProgram>::failure(Msg);

  // Refill the cache for modules that lifted fresh, before the rebase
  // rewrites literal ids and call targets into link-specific form.
  if (Cache) {
    Cache->ModulesReused = Cache->ModulesLifted = 0;
    Cache->ProcsReused = Cache->ProcsLifted = 0;
    Pool.parallelFor(Objs.size(), [&](size_t ObjIdx) {
      if (UseSlot[ObjIdx])
        return;
      LiftCache::Slot &S = Cache->Slots[ObjIdx];
      S.Valid = true;
      S.ContentHash = Cache->CurrentHashes[ObjIdx];
      S.ResolutionSig = Sig[ObjIdx];
      S.Procs.clear();
      S.Procs.resize(Objs[ObjIdx].Procs.size());
    });
    Pool.parallelFor(Units.size(), [&](size_t P) {
      if (UseSlot[Units[P].ObjIdx])
        return;
      LiftCache::ProcData &D =
          Cache->Slots[Units[P].ObjIdx].Procs[Units[P].ProcInObj];
      D.Insts = SP.Procs[P].Insts;
      D.LocalLits = LocalLits[P];
      D.LitCount = LocalLitCount[P];
      D.MakesIndirectCalls = SP.Procs[P].MakesIndirectCalls;
    });
    for (size_t ObjIdx = 0; ObjIdx < Objs.size(); ++ObjIdx) {
      uint64_t NProcs = Objs[ObjIdx].Procs.size();
      if (UseSlot[ObjIdx]) {
        ++Cache->ModulesReused;
        Cache->ProcsReused += NProcs;
      } else {
        ++Cache->ModulesLifted;
        Cache->ProcsLifted += NProcs;
      }
    }
  }

  // Serial 64-bit prefix sum fixes every procedure's literal-id range (a
  // 32-bit running counter would wrap silently before the range check on
  // inputs with billions of sites), then the per-instruction rebase and
  // the DirectCall fixup fan back out.
  std::vector<uint64_t> LitBase(Units.size(), 0);
  uint64_t TotalLits = 0;
  for (size_t P = 0; P < Units.size(); ++P) {
    LitBase[P] = TotalLits;
    TotalLits += LocalLitCount[P];
  }
  if (Error Err = checkLiteralIdSpace(TotalLits))
    return Result<SymbolicProgram>::failure(Err.message());

  Pool.parallelFor(Units.size(), [&](size_t P) {
    SymProc &Proc = SP.Procs[P];
    uint32_t Base = static_cast<uint32_t>(LitBase[P]);
    const std::unordered_map<uint64_t, uint32_t> &Entries =
        ProcByEntryOffset[Proc.ObjIdx];
    for (SymInst &SI : Proc.Insts) {
      if (SI.LitId != ~0u)
        SI.LitId += Base;
      // DirectCall targets were stashed as object-local entry offsets.
      if (SI.Kind == SKind::DirectCall)
        SI.TargetProc = Entries.at(SI.TargetProc);
    }
    Proc.IsEntry = false;
  });

  // Serial procedure-order merge keeps the id -> LitInfo mapping identical
  // to what a single shared counter would have produced, and fixes each
  // literal's owner (every literal in LocalLits[P] belongs to procedure P).
  for (size_t P = 0; P < Units.size(); ++P) {
    for (auto &[LocalId, L] : LocalLits[P]) {
      if (L.LoadIdx != ~0u)
        L.Proc = static_cast<uint32_t>(P);
      SP.Lits.emplace(static_cast<uint32_t>(LitBase[P]) + LocalId,
                      std::move(L));
    }
    LocalLits[P].clear();
  }
  uint32_t Entry = SP.findProcBySuffix(Opts.EntryName);
  if (Entry == ~0u)
    return Result<SymbolicProgram>::failure("no '" + Opts.EntryName +
                                            "' procedure in program");
  SP.Procs[Entry].IsEntry = true;

  assignGroups();
  computeAddressTaken();
  return std::move(SP);
}

Result<SymbolicProgram>
om64::om::liftProgram(const std::vector<ObjectFile> &Objs,
                      const OmOptions &Opts, ThreadPool &Pool,
                      LiftCache *Cache) {
  Lifter L(Objs, Opts, Pool, Cache);
  return L.run();
}

Error om64::om::checkLiteralIdSpace(uint64_t TotalLiteralSites) {
  // SymInst::LitId is 32 bits with ~0u reserved as "no literal".
  if (TotalLiteralSites >= ~0u)
    return Error::failure(formatString(
        "program has %llu literal sites, exceeding the 32-bit literal-id "
        "space",
        static_cast<unsigned long long>(TotalLiteralSites)));
  return Error::success();
}

//===- om/Incremental.cpp - Incremental relinking --------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "om/Incremental.h"

#include "support/ByteStream.h"
#include "support/ContentHash.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <chrono>

using namespace om64;
using namespace om64::om;

uint64_t om64::om::linkConfigKey(const OmOptions &Opts) {
  // Serialize every output-affecting field, in declaration order, through
  // the same ByteWriter the object formats use. Adding an OmOptions field
  // without extending this list is the bug this function exists to make
  // loud: keep the count assert below in sync.
  ByteWriter W;
  W.writeU8(static_cast<uint8_t>(Opts.Level));
  W.writeU8(Opts.Reschedule ? 1 : 0);
  W.writeU8(Opts.AlignLoopTargets ? 1 : 0);
  W.writeU8(Opts.SortDataBySize ? 1 : 0);
  W.writeU32(Opts.MaxGatEntriesPerGroup);
  W.writeString(Opts.EntryName);
  W.writeU8(Opts.InstrumentProcedureCounts ? 1 : 0);
  W.writeU8(Opts.InstrumentBlockCounts ? 1 : 0);
  W.writeU8(Opts.Analysis ? 1 : 0);
  W.writeU8(Opts.Verify ? 1 : 0);
  W.writeU8(Opts.VerifyEachStage ? 1 : 0);
  // Jobs and SerialFallbackInsts never change the image (byte-identity
  // across -jN is a pipeline invariant), but they do change the observable
  // stats a cached answer would report; include them so a warm state is
  // only shared between genuinely identical configurations.
  W.writeU32(Opts.Jobs);
  W.writeU64(Opts.SerialFallbackInsts);
  // Relaxation/layout inputs: the hot-cold switch and the complete profile
  // bytes. Two profiles with different heat reorder procedures
  // differently, which changes which BSRs the relaxation admits.
  W.writeU8(Opts.HotColdLayout ? 1 : 0);
  // Lint options change which diagnostics a relink reports: a warm state
  // keyed without them could serve a lint-less answer to a --lint request
  // (stale silence) or vice versa.
  W.writeU8(Opts.Lint ? 1 : 0);
  W.writeU8(Opts.LintExplain ? 1 : 0);
  std::vector<uint8_t> Prof = Opts.Profile.serialize();
  W.writeU64(Prof.size());
  for (uint8_t B : Prof)
    W.writeU8(B);
  return hashBytes(W.bytes());
}

IncrementalLinker::IncrementalLinker(const OmOptions &OptsIn) {
  Result<OmOptions> Canon = canonicalizeOptions(OptsIn);
  if (Canon)
    Opts = Canon.take();
  else
    OptionsError = Canon.message();
}

Result<RelinkResult>
IncrementalLinker::relink(const std::vector<std::vector<uint8_t>> &Modules) {
  if (!OptionsError.empty())
    return Result<RelinkResult>::failure(OptionsError);
  auto Start = std::chrono::steady_clock::now();
  RelinkResult Out;
  Out.Stats.Warm = !Cold;
  Out.Stats.ModulesTotal = Modules.size();

  // Content-hash every position; decide which modules need reparsing.
  const bool CountChanged = Modules.size() != Objs.size();
  std::vector<uint64_t> NewHashes(Modules.size());
  std::vector<uint8_t> Reparse(Modules.size(), 0);
  bool AnyChanged = CountChanged;
  for (size_t I = 0; I < Modules.size(); ++I) {
    NewHashes[I] = hashBytes(Modules[I]);
    Reparse[I] =
        I >= Objs.size() || NewHashes[I] != ModuleHashes[I] ? 1 : 0;
    AnyChanged |= Reparse[I] != 0;
  }

  // Identical inputs: the previous image is the answer by determinism of
  // the pipeline (same bytes, same options -> same image).
  if (!AnyChanged && HaveImage) {
    Out.Stats.InputUnchanged = true;
    Out.ImageBytes = LastImageBytes;
    Out.LintReport = LastLintReport;
    Out.LintFindings = LastLintFindings;
    Out.Stats.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    return Out;
  }

  // Reparse changed positions only. A parse failure leaves this linker's
  // caches untouched (the hash is recorded only after a successful parse),
  // so a later relink with fixed bytes starts from the last good state.
  Objs.resize(Modules.size());
  ModuleHashes.resize(Modules.size(), 0);
  for (size_t I = 0; I < Modules.size(); ++I) {
    if (!Reparse[I])
      continue;
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(Modules[I]);
    if (!O)
      return Result<RelinkResult>::failure(
          formatString("module %zu: ", I) + O.message());
    Objs[I] = O.take();
    ModuleHashes[I] = NewHashes[I];
    ++Out.Stats.ModulesReparsed;
  }

  uint64_t TotalInsts = 0;
  for (const obj::ObjectFile &O : Objs)
    TotalInsts += O.Text.size() / 4;
  ThreadPool Pool(effectiveJobs(Opts, TotalInsts));

  Lifts.CurrentHashes = ModuleHashes;
  const analysis::SummaryCache::Counters Before = Summaries.Totals;
  Result<OmResult> R = runPipeline(Objs, Opts, Pool, &Lifts, &Summaries);
  if (!R)
    return Result<RelinkResult>::failure(R.message());

  Out.Stats.ModulesRelifted = Lifts.ModulesLifted;
  Out.Stats.ProcsTotal = Lifts.ProcsReused + Lifts.ProcsLifted;
  Out.Stats.ProcsRelifted = Lifts.ProcsLifted;
  Out.Stats.SummaryRoundHits = Summaries.Totals.RoundHits - Before.RoundHits;
  Out.Stats.SummaryRoundMisses =
      Summaries.Totals.RoundMisses - Before.RoundMisses;
  Out.Stats.Om = R->Stats;

  Out.ImageBytes = R->Image.serialize();
  Out.LintReport = R->LintReport;
  Out.LintFindings = R->LintFindings;
  LastImageBytes = Out.ImageBytes;
  LastLintReport = Out.LintReport;
  LastLintFindings = Out.LintFindings;
  HaveImage = true;
  Cold = false;

  Summaries.trim(CacheBudget);

  Out.Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}

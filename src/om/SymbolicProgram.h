//===- om/SymbolicProgram.h - OM's whole-program symbolic form ------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic form OM translates object code into (section 4: "The key
/// idea behind OM is the translation into symbolic form and back"): every
/// procedure becomes a vector of instructions whose address and control
/// operands are symbolic, so instructions can be deleted and reordered
/// without tracking the effect on address constants and displacements.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_OM_SYMBOLICPROGRAM_H
#define OM64_OM_SYMBOLICPROGRAM_H

#include "isa/Inst.h"
#include "objfile/ObjectFile.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace om64 {
namespace om {

/// A program-wide symbol: a procedure or a datum.
struct PSym {
  std::string Name;
  bool IsProc = false;
  uint32_t ProcIdx = ~0u; // into SymbolicProgram::Procs when IsProc
  bool IsBss = false;
  std::vector<uint8_t> Init; // initialized bytes (empty for bss)
  uint64_t Size = 0;
  uint32_t ObjIdx = 0;
  bool Exported = false;
  uint64_t Addr = 0; // assigned during layout
};

/// Classification of one symbolic instruction.
enum class SKind : uint8_t {
  Plain,
  AddressLoad, // LDQ r, slot(GP): loads &TargetSym; LitId names the site
  LitUseMem,   // memory op whose base register came from literal LitId
  LitUseAddr,  // scaled add deriving a pointer from literal LitId
  LitUseDeref, // memory op through the LitUseAddr-derived pointer
  JsrViaGat,   // JSR through a register loaded by literal LitId
  JsrIndirect, // JSR through a computed value (procedure variable)
  GpHigh,      // LDAH of a GP-disp pair (GpKind tells prologue/post-call)
  GpLow,       // LDA of a GP-disp pair
  LocalBranch, // conditional or unconditional branch within the procedure
  DirectCall,  // BSR to TargetProc (compile-time or OM-created)
};

/// One instruction of the symbolic form.
struct SymInst {
  isa::Inst I;
  SKind Kind = SKind::Plain;
  uint32_t LitId = ~0u;
  uint32_t TargetSym = ~0u; // AddressLoad
  uint32_t PairId = ~0u;    // GpHigh/GpLow pairing
  obj::GpDispKind GpKind = obj::GpDispKind::Prologue;
  uint32_t TargetProc = ~0u;  // DirectCall
  bool SkipPrologue = false;  // DirectCall enters past the GP-set pair
  int32_t TargetIdx = -1;     // LocalBranch: index within the procedure
  int32_t OrigDisp = 0;       // displacement as compiled (layout rounds
                              // recompute rewrites from this)
  bool Nullified = false;     // becomes a no-op (simple) / deleted (full)
  /// Set alongside Nullified when the deletion was justified by a dataflow
  /// proof (om/Analysis.h) rather than a pattern: the proof-checking verify
  /// stage re-derives these, and OmVerify's literal checks know an
  /// analysis-nullified call load keeps its (provably equal) register.
  bool AnalysisNullified = false;
  bool Converted = false;     // address load rewritten to LDA/LDAH
  /// Set by the profile-guided layout on instructions moved into a cold
  /// tail: AlignLoopTargets must not pad for branch targets that never
  /// execute. Never set in procedures the layout skipped, so unprofiled
  /// links keep their full alignment behaviour.
  bool Cold = false;
};

/// One procedure in symbolic form.
struct SymProc {
  std::string Name;
  uint32_t ObjIdx = 0;
  uint32_t SymId = ~0u;
  bool Exported = false;
  bool UsesGp = false;
  bool AddressTaken = false;
  bool IsEntry = false;
  bool MakesIndirectCalls = false;
  uint32_t GpGroup = 0;
  std::vector<SymInst> Insts;

  /// Index of the first instruction past the prologue GP-set pair (0 when
  /// the procedure has none). Maintained by the transforms.
  uint32_t postPrologueIndex() const;
  /// True if Insts[0..1] are this procedure's prologue GP-set pair.
  bool hasProloguePairAtEntry() const;
};

/// Per-literal bookkeeping: the loading instruction and its uses.
struct LitInfo {
  uint32_t Proc = ~0u;
  uint32_t LoadIdx = ~0u;
  uint32_t TargetSym = ~0u;
  std::vector<uint32_t> MemUses;   // indices of LitUseMem instructions
  std::vector<uint32_t> AddrUses;  // indices of LitUseAddr instructions
  std::vector<uint32_t> DerefUses; // indices of LitUseDeref instructions
  int32_t JsrIdx = -1;             // index of the JsrViaGat, if any
  /// True when the loaded address flows somewhere OM cannot see (no
  /// recorded uses): conversion is possible, nullification is not.
  bool escapes() const {
    return MemUses.empty() && AddrUses.empty() && DerefUses.empty() &&
           JsrIdx < 0;
  }
};

/// The whole program in symbolic form.
struct SymbolicProgram {
  std::vector<PSym> Syms;
  std::vector<SymProc> Procs;
  std::map<uint32_t, LitInfo> Lits; // program-unique literal ids
  size_t NumObjects = 0;
  std::vector<uint32_t> GroupOfObj; // GP group per object
  uint32_t NumGroups = 1;
  uint64_t OriginalGatEntries = 0;  // merged+deduped before reduction

  /// Finds a procedure by (suffix) name; ~0u when absent.
  uint32_t findProcBySuffix(const std::string &Suffix) const;
};

} // namespace om
} // namespace om64

#endif // OM64_OM_SYMBOLICPROGRAM_H

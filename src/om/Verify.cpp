//===- om/Verify.cpp - OM correctness verification -------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of OmVerify's two layers: the structural invariant
/// checker over the symbolic form, and the differential-execution harness
/// comparing OM levels on the functional simulator. See Verify.h.
///
//===----------------------------------------------------------------------===//

#include "om/Verify.h"

#include "om/Analysis.h"
#include "om/OmImpl.h"
#include "sim/SuiteRunner.h"
#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace om64;
using namespace om64::om;
using namespace om64::obj;

//===----------------------------------------------------------------------===//
// Structural invariants.
//===----------------------------------------------------------------------===//

namespace {

/// Bundles the diagnostic plumbing so every check site stays one line.
class Checker {
public:
  Checker(const SymbolicProgram &SP, const std::string &Stage,
          DiagnosticEngine &Diags)
      : SP(SP), Stage(Stage), Diags(Diags) {}

  /// Reports a violation at instruction \p InstIdx of \p ProcIdx
  /// (ProcIdx == ~0u for program-level problems).
  void bad(uint32_t ProcIdx, size_t InstIdx, std::string Message) {
    std::string Buffer = Stage;
    if (ProcIdx != ~0u && ProcIdx < SP.Procs.size())
      Buffer += ":" + SP.Procs[ProcIdx].Name;
    SourceLoc Loc;
    Loc.Line = static_cast<uint32_t>(InstIdx + 1);
    Diags.error(Buffer, Loc, std::move(Message));
  }

  void checkSymbols();
  void checkProc(uint32_t ProcIdx);
  void checkLits();

private:
  const SymbolicProgram &SP;
  const std::string &Stage;
  DiagnosticEngine &Diags;
};

void Checker::checkSymbols() {
  for (uint32_t SymId = 0; SymId < SP.Syms.size(); ++SymId) {
    const PSym &S = SP.Syms[SymId];
    if (!S.IsProc)
      continue;
    if (S.ProcIdx >= SP.Procs.size()) {
      bad(~0u, ~0u, "procedure symbol '" + S.Name +
                        "' has out-of-range ProcIdx " +
                        std::to_string(S.ProcIdx));
      continue;
    }
    if (SP.Procs[S.ProcIdx].SymId != SymId)
      bad(S.ProcIdx, ~0u,
          "procedure symbol '" + S.Name + "' and procedure disagree on "
          "their linkage (SymId mismatch)");
  }
}

void Checker::checkProc(uint32_t ProcIdx) {
  const SymProc &Proc = SP.Procs[ProcIdx];
  size_t N = Proc.Insts.size();
  bool HaveLits = !SP.Lits.empty();

  // GpHigh/GpLow pairing state, keyed by PairId.
  struct PairState {
    int High = -1;
    int Low = -1;
    unsigned Highs = 0;
    unsigned Lows = 0;
  };
  std::map<uint32_t, PairState> Pairs;

  for (size_t Idx = 0; Idx < N; ++Idx) {
    const SymInst &SI = Proc.Insts[Idx];
    switch (SI.Kind) {
    case SKind::LocalBranch:
      if (SI.TargetIdx < 0 || static_cast<size_t>(SI.TargetIdx) >= N)
        bad(ProcIdx, Idx,
            "local branch target " + std::to_string(SI.TargetIdx) +
                " outside the procedure (" + std::to_string(N) +
                " instructions)");
      break;
    case SKind::DirectCall:
      if (SI.TargetProc >= SP.Procs.size())
        bad(ProcIdx, Idx, "direct call to out-of-range procedure index " +
                              std::to_string(SI.TargetProc));
      break;
    case SKind::GpHigh: {
      PairState &P = Pairs[SI.PairId];
      P.High = static_cast<int>(Idx);
      ++P.Highs;
      break;
    }
    case SKind::GpLow: {
      PairState &P = Pairs[SI.PairId];
      P.Low = static_cast<int>(Idx);
      ++P.Lows;
      break;
    }
    case SKind::AddressLoad:
      if (HaveLits) {
        auto It = SP.Lits.find(SI.LitId);
        if (It == SP.Lits.end())
          bad(ProcIdx, Idx, "address load's literal " +
                                std::to_string(SI.LitId) +
                                " is not in the literal table");
        else if (It->second.Proc != ProcIdx ||
                 It->second.LoadIdx != static_cast<uint32_t>(Idx))
          bad(ProcIdx, Idx,
              "address load is not where literal " +
                  std::to_string(SI.LitId) + " records its load (LoadIdx " +
                  std::to_string(It->second.LoadIdx) + ")");
        else if (It->second.TargetSym != SI.TargetSym)
          bad(ProcIdx, Idx, "address load and literal " +
                                std::to_string(SI.LitId) +
                                " disagree on the target symbol");
      }
      break;
    case SKind::LitUseMem:
    case SKind::LitUseAddr:
    case SKind::LitUseDeref:
      if (HaveLits) {
        auto It = SP.Lits.find(SI.LitId);
        if (It == SP.Lits.end()) {
          bad(ProcIdx, Idx, "literal use's literal " +
                                std::to_string(SI.LitId) +
                                " is not in the literal table");
          break;
        }
        const std::vector<uint32_t> &Uses =
            SI.Kind == SKind::LitUseMem    ? It->second.MemUses
            : SI.Kind == SKind::LitUseAddr ? It->second.AddrUses
                                           : It->second.DerefUses;
        if (std::find(Uses.begin(), Uses.end(),
                      static_cast<uint32_t>(Idx)) == Uses.end())
          bad(ProcIdx, Idx,
              "literal use is not listed at its own index by literal " +
                  std::to_string(SI.LitId) + " (stale use list)");
      }
      break;
    case SKind::JsrViaGat:
      if (HaveLits) {
        auto It = SP.Lits.find(SI.LitId);
        if (It == SP.Lits.end())
          bad(ProcIdx, Idx, "JSR-via-GAT's literal " +
                                std::to_string(SI.LitId) +
                                " is not in the literal table");
        else if (It->second.JsrIdx != static_cast<int32_t>(Idx))
          bad(ProcIdx, Idx,
              "JSR-via-GAT is not where literal " +
                  std::to_string(SI.LitId) + " records its call (JsrIdx " +
                  std::to_string(It->second.JsrIdx) + ")");
      }
      break;
    case SKind::Plain:
    case SKind::JsrIndirect:
      break;
    }
  }

  for (const auto &[PairId, P] : Pairs) {
    if (P.Highs != 1 || P.Lows != 1) {
      bad(ProcIdx, P.High >= 0 ? P.High : (P.Low >= 0 ? P.Low : 0),
          "GP pair " + std::to_string(PairId) + " has " +
              std::to_string(P.Highs) + " high and " +
              std::to_string(P.Lows) + " low instruction(s)");
      continue;
    }
    if (P.High > P.Low)
      bad(ProcIdx, P.High, "GP pair " + std::to_string(PairId) +
                               ": the high half follows the low half");
    const SymInst &High = Proc.Insts[P.High];
    const SymInst &Low = Proc.Insts[P.Low];
    if (High.GpKind != Low.GpKind)
      bad(ProcIdx, P.High, "GP pair " + std::to_string(PairId) +
                               ": halves disagree on prologue/post-call");
    if (High.Nullified != Low.Nullified)
      bad(ProcIdx, High.Nullified ? P.High : P.Low,
          "GP pair " + std::to_string(PairId) +
              " is half-nullified (corrupts GP: the surviving half adds "
              "its displacement to the wrong base)");
  }
}

void Checker::checkLits() {
  for (const auto &[LitId, L] : SP.Lits) {
    std::string Tag = "literal " + std::to_string(LitId);
    if (L.Proc == ~0u) {
      if (!L.escapes())
        bad(~0u, ~0u, Tag + " has recorded uses but no owning procedure");
      continue;
    }
    if (L.Proc >= SP.Procs.size()) {
      bad(~0u, ~0u, Tag + " names out-of-range procedure " +
                        std::to_string(L.Proc));
      continue;
    }
    const SymProc &Proc = SP.Procs[L.Proc];
    size_t N = Proc.Insts.size();
    if (L.TargetSym >= SP.Syms.size())
      bad(L.Proc, ~0u, Tag + " targets out-of-range symbol " +
                           std::to_string(L.TargetSym));

    if (L.LoadIdx >= N) {
      bad(L.Proc, ~0u, Tag + " records out-of-range LoadIdx " +
                           std::to_string(L.LoadIdx));
      continue;
    }
    const SymInst &Load = Proc.Insts[L.LoadIdx];
    if (Load.Kind != SKind::AddressLoad || Load.LitId != LitId) {
      bad(L.Proc, L.LoadIdx,
          Tag + ": LoadIdx points at a non-matching instruction "
                "(stale index after reordering?)");
      continue;
    }

    auto checkUses = [&](const std::vector<uint32_t> &Uses, SKind Want,
                         const char *What) {
      for (uint32_t UseIdx : Uses) {
        if (UseIdx >= N) {
          bad(L.Proc, ~0u, Tag + " records out-of-range " + What +
                               " index " + std::to_string(UseIdx));
          continue;
        }
        const SymInst &Use = Proc.Insts[UseIdx];
        if (Use.Kind != Want || Use.LitId != LitId)
          bad(L.Proc, UseIdx, Tag + ": " + What +
                                  " index points at a non-matching "
                                  "instruction (stale index?)");
      }
    };
    checkUses(L.MemUses, SKind::LitUseMem, "MemUses");
    checkUses(L.AddrUses, SKind::LitUseAddr, "AddrUses");
    checkUses(L.DerefUses, SKind::LitUseDeref, "DerefUses");

    bool JsrLive = false;
    if (L.JsrIdx >= 0) {
      if (static_cast<size_t>(L.JsrIdx) >= N) {
        bad(L.Proc, ~0u, Tag + " records out-of-range JsrIdx " +
                             std::to_string(L.JsrIdx));
        continue;
      }
      const SymInst &Jsr = Proc.Insts[L.JsrIdx];
      // The call site is either the original JSR or the DirectCall it was
      // converted to; both keep the literal id.
      if ((Jsr.Kind != SKind::JsrViaGat && Jsr.Kind != SKind::DirectCall) ||
          Jsr.LitId != LitId)
        bad(L.Proc, L.JsrIdx,
            Tag + ": JsrIdx points at a non-matching instruction "
                  "(stale index after reordering?)");
      JsrLive = Jsr.Kind == SKind::JsrViaGat && !Jsr.Nullified;
    }

    if (Load.Nullified && !Load.AnalysisNullified) {
      // Nullified loads with direct/derived uses are fine (the uses get
      // folded onto GP), but a JSR still reading the loaded register, or
      // an escaping use OM cannot see, means a live consumer lost its
      // producer. Analysis-based deletions legitimately hit both shapes —
      // a JSR whose register provably already holds the callee, or an
      // escaping load whose destination is provably dead — and are
      // re-proved by verifyDeletionProofs instead.
      if (JsrLive)
        bad(L.Proc, L.LoadIdx,
            Tag + ": PV load nullified while its JSR still calls through "
                  "the loaded register");
      if (L.escapes())
        bad(L.Proc, L.LoadIdx,
            Tag + ": escaping literal's load nullified (the loaded "
                  "address has unseen consumers)");
    }
  }
}

} // namespace

unsigned om64::om::verifyStructure(const SymbolicProgram &SP,
                                   const std::string &Stage,
                                   DiagnosticEngine &Diags,
                                   ThreadPool *Pool) {
  unsigned Before = Diags.errorCount();
  {
    Checker C(SP, Stage, Diags);
    C.checkSymbols();
  }
  // The per-procedure checks are read-only over disjoint procedures; run
  // them on the pool into private engines, then merge in procedure order so
  // the diagnostic stream matches the serial one exactly.
  if (Pool && Pool->threadCount() > 1 && SP.Procs.size() > 1) {
    std::vector<DiagnosticEngine> PerProc(SP.Procs.size());
    Pool->parallelFor(SP.Procs.size(), [&](size_t ProcIdx) {
      Checker C(SP, Stage, PerProc[ProcIdx]);
      C.checkProc(static_cast<uint32_t>(ProcIdx));
    });
    for (DiagnosticEngine &E : PerProc)
      Diags.append(std::move(E));
  } else {
    Checker C(SP, Stage, Diags);
    for (uint32_t ProcIdx = 0; ProcIdx < SP.Procs.size(); ++ProcIdx)
      C.checkProc(ProcIdx);
  }
  if (!SP.Lits.empty()) {
    Checker C(SP, Stage, Diags);
    C.checkLits();
  }
  return Diags.errorCount() - Before;
}

Error om64::om::verifyStage(const SymbolicProgram &SP,
                            const std::string &Stage, ThreadPool *Pool) {
  DiagnosticEngine Diags;
  if (verifyStructure(SP, Stage, Diags, Pool) == 0)
    return Error::success();
  return Error::failure("OM invariant check failed after stage '" + Stage +
                        "':\n" + Diags.render());
}

//===----------------------------------------------------------------------===//
// Deletion-proof verification.
//===----------------------------------------------------------------------===//

namespace {

/// Re-derives the dataflow proof for one procedure's analysis deletions.
/// Sound to run against the post-deletion program: every analysis deletion
/// removes a provable no-op or a dead write, so the facts that justified it
/// survive the deletion itself.
void checkProcProofs(const SymbolicProgram &SP,
                     const analysis::ProgramAnalysis &PA, uint32_t ProcIdx,
                     DiagnosticEngine &Diags) {
  const SymProc &Proc = SP.Procs[ProcIdx];
  auto bad = [&](uint32_t InstIdx, std::string Message) {
    SourceLoc Loc;
    Loc.Line = InstIdx + 1;
    Diags.error("deletion-proofs:" + Proc.Name, Loc, std::move(Message));
  };
  for (uint32_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
    const SymInst &SI = Proc.Insts[Idx];
    if (!SI.AnalysisNullified)
      continue;
    if (!SI.Nullified) {
      bad(Idx,
          "instruction carries an analysis-deletion mark but is not "
          "nullified");
      continue;
    }
    switch (SI.Kind) {
    case SKind::GpLow:
      // Covered by its GpHigh below; the structural checker already
      // enforces that the two halves are deleted together.
      break;
    case SKind::GpHigh: {
      analysis::GpProof Pr = PA.gpBefore(SP, ProcIdx, Idx, Proc.GpGroup);
      if (Pr == analysis::GpProof::Unproven)
        bad(Idx, "deleted GP pair: dataflow no longer proves GP holds "
                 "group " +
                     std::to_string(Proc.GpGroup) +
                     " on every path into the pair");
      break;
    }
    case SKind::AddressLoad: {
      analysis::ValueState S = PA.valuesBefore(SP, ProcIdx, Idx);
      if (S.Unreachable)
        break; // no execution reaches the load; no value proof needed
      unsigned Dest = isa::intUnit(SI.I.Ra);
      if (!(PA.liveAfter(SP, ProcIdx, Idx) & (1ull << Dest)))
        break; // destination dead: the load was unobservable
      // Remaining justification: the equal-value proof — the register
      // already held the loaded address, so the load was a no-op.
      uint32_t Target = ~0u;
      auto It = SP.Lits.find(SI.LitId);
      if (It != SP.Lits.end() && It->second.TargetSym < SP.Syms.size() &&
          SP.Syms[It->second.TargetSym].IsProc)
        Target = SP.Syms[It->second.TargetSym].ProcIdx;
      if (Target == ~0u || !(S.R[Dest] == analysis::AbsVal::entryOf(Target)))
        bad(Idx, "deleted address load: destination is live and dataflow "
                 "no longer proves it already held the loaded value");
      break;
    }
    default:
      bad(Idx, "analysis-deletion mark on an instruction kind the "
               "analysis never deletes");
      break;
    }
  }
}

} // namespace

Error om64::om::verifyDeletionProofs(const SymbolicProgram &SP,
                                     ThreadPool &Pool) {
  analysis::ProgramAnalysis PA = analysis::analyzeProgram(SP, Pool);

  DiagnosticEngine Diags;
  std::vector<DiagnosticEngine> PerProc(SP.Procs.size());
  Pool.parallelFor(SP.Procs.size(), [&](size_t ProcIdx) {
    checkProcProofs(SP, PA, static_cast<uint32_t>(ProcIdx),
                    PerProc[ProcIdx]);
  });
  for (DiagnosticEngine &E : PerProc)
    Diags.append(std::move(E));

  // The dataflow may only ever *narrow* the pattern matcher's GP reach
  // sets; a group the dataflow claims reachable that the pattern excludes
  // means one of the two computations is wrong. The exact multi-word
  // pattern rows project onto the dataflow's one-word form (groups >= 64
  // collapse to ~0), which can only widen the pattern side — so the subset
  // check stays sound.
  GroupReachability Pattern = computeReachableGroups(SP, Pool);
  for (uint32_t P = 0; P < SP.Procs.size(); ++P) {
    uint64_t Extra = PA.ReachableGroups[P] & ~Pattern.projected64(P);
    if (Extra) {
      SourceLoc Loc;
      Diags.error("deletion-proofs:" + SP.Procs[P].Name, Loc,
                  "analysis reach set claims groups the pattern reach set "
                  "excludes (extra mask " +
                      formatHex64(Extra) + ")");
    }
  }

  if (!Diags.hasErrors())
    return Error::success();
  return Error::failure("OM deletion-proof check failed:\n" + Diags.render());
}

//===----------------------------------------------------------------------===//
// Post-assembly BSR range audit.
//===----------------------------------------------------------------------===//

Error om64::om::verifyBsrRanges(const Image &Img) {
  // Procedure spans sorted by entry for the landing check. The table is
  // emitted in layout order, which is address order, but sort defensively:
  // this is the auditor, so it must not inherit the assumptions it audits.
  std::vector<const ImageProc *> ByEntry;
  ByEntry.reserve(Img.Procs.size());
  for (const ImageProc &P : Img.Procs)
    ByEntry.push_back(&P);
  std::sort(ByEntry.begin(), ByEntry.end(),
            [](const ImageProc *A, const ImageProc *B) {
              return A->Entry < B->Entry;
            });
  auto ProcAt = [&](uint64_t Addr) -> const ImageProc * {
    auto It = std::upper_bound(ByEntry.begin(), ByEntry.end(), Addr,
                               [](uint64_t A, const ImageProc *P) {
                                 return A < P->Entry;
                               });
    if (It == ByEntry.begin())
      return nullptr;
    const ImageProc *P = *std::prev(It);
    return Addr < P->Entry + P->Size ? P : nullptr;
  };

  const uint64_t TextEnd = Img.TextBase + Img.Text.size();
  std::vector<uint32_t> Words = Img.textWords();
  for (size_t Idx = 0; Idx < Words.size(); ++Idx) {
    std::optional<isa::Inst> I = isa::decode(Words[Idx]);
    if (!I || I->Op != isa::Opcode::Bsr)
      continue;
    uint64_t Site = Img.TextBase + Idx * 4;
    // The encoded field is 21 bits, so the displacement trivially "fits";
    // the audit is that the target the hardware would compute from it
    // lands at a real instruction of a real procedure.
    uint64_t Target = Site + 4 + static_cast<int64_t>(I->Disp) * 4;
    const ImageProc *SiteProc = ProcAt(Site);
    std::string Where =
        (SiteProc ? SiteProc->Name : std::string("<no procedure>")) +
        formatString("+0x%llx (text offset 0x%llx)",
                     (unsigned long long)(SiteProc ? Site - SiteProc->Entry
                                                   : 0),
                     (unsigned long long)(Idx * 4));
    if (Target < Img.TextBase || Target >= TextEnd)
      return Error::failure(
          "BSR range audit: bsr at " + Where +
          formatString(" targets 0x%llx, outside the text segment",
                       (unsigned long long)Target));
    if (!ProcAt(Target))
      return Error::failure(
          "BSR range audit: bsr at " + Where +
          formatString(" targets 0x%llx, inside text but not inside any "
                       "procedure's span",
                       (unsigned long long)Target));
  }
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Canonical memory hash.
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t H, const void *Bytes, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Bytes);
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t fnv1aStr(uint64_t H, const std::string &S) {
  H = fnv1a(H, S.data(), S.size());
  uint8_t Sep = 0;
  return fnv1a(H, &Sep, 1);
}

uint64_t fnv1aU64(uint64_t H, uint64_t V) { return fnv1a(H, &V, 8); }

} // namespace

uint64_t om64::om::canonicalMemoryHash(const Image &Img,
                                       const std::vector<uint8_t> &Final) {
  // Data symbols sorted by address, for pointer-to-symbol resolution, and
  // by name, for the deterministic walk order.
  std::vector<const ImageSymbol *> ByAddr, ByName;
  for (const ImageSymbol &S : Img.Symbols)
    if (!S.IsProcedure) {
      ByAddr.push_back(&S);
      ByName.push_back(&S);
    }
  std::sort(ByAddr.begin(), ByAddr.end(),
            [](const ImageSymbol *A, const ImageSymbol *B) {
              return A->Addr < B->Addr;
            });
  std::sort(ByName.begin(), ByName.end(),
            [](const ImageSymbol *A, const ImageSymbol *B) {
              return A->Name < B->Name;
            });

  uint64_t TextEnd = Img.TextBase + Img.Text.size();
  uint64_t DataEnd = Img.DataBase + Img.dataSegmentSize();

  // Normalizes one stored quadword: addresses become symbolic references
  // so the hash is independent of the link-time layout.
  auto hashValue = [&](uint64_t H, uint64_t V) {
    if (V >= Img.TextBase && V < TextEnd) {
      for (const ImageProc &P : Img.Procs)
        if (V >= P.Entry && V < P.Entry + P.Size) {
          H = fnv1a(H, "T", 1);
          H = fnv1aStr(H, P.Name);
          return fnv1aU64(H, V - P.Entry);
        }
      H = fnv1a(H, "T?", 2);
      return fnv1aU64(H, 0);
    }
    if (V >= Img.DataBase && V < DataEnd) {
      // Last symbol starting at or before V.
      auto It = std::upper_bound(ByAddr.begin(), ByAddr.end(), V,
                                 [](uint64_t Addr, const ImageSymbol *S) {
                                   return Addr < S->Addr;
                                 });
      if (It != ByAddr.begin()) {
        const ImageSymbol *S = *(It - 1);
        if (V < S->Addr + std::max<uint64_t>(S->Size, 1)) {
          H = fnv1a(H, "D", 1);
          H = fnv1aStr(H, S->Name);
          return fnv1aU64(H, V - S->Addr);
        }
      }
      H = fnv1a(H, "D?", 2);
      return fnv1aU64(H, 0);
    }
    H = fnv1a(H, "V", 1);
    return fnv1aU64(H, V);
  };

  uint64_t H = FnvOffset;
  for (const ImageSymbol *S : ByName) {
    uint64_t Off = S->Addr - Img.DataBase;
    if (S->Addr < Img.DataBase || Off + S->Size > Final.size())
      continue; // not materialized (empty program); nothing to hash
    H = fnv1aStr(H, S->Name);
    uint64_t Quads = S->Size / 8;
    for (uint64_t Q = 0; Q < Quads; ++Q) {
      uint64_t V = 0;
      for (unsigned Byte = 0; Byte < 8; ++Byte)
        V |= static_cast<uint64_t>(Final[Off + Q * 8 + Byte]) << (8 * Byte);
      H = hashValue(H, V);
    }
    // Sub-quadword tail, hashed raw (cannot hold an 8-byte pointer).
    H = fnv1a(H, Final.data() + Off + Quads * 8, S->Size % 8);
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Differential execution.
//===----------------------------------------------------------------------===//

Result<DifferentialReport>
om64::om::runDifferential(const std::vector<ObjectFile> &Objects,
                          const OmOptions &Base) {
  struct LegCfg {
    OmLevel Level;
    bool Sched;
  };
  const LegCfg Cfgs[] = {{OmLevel::None, false},
                         {OmLevel::Simple, false},
                         {OmLevel::Full, false},
                         {OmLevel::Full, true}};

  auto legName = [](const LegCfg &Cfg) {
    return std::string("OM-") + levelName(Cfg.Level) +
           (Cfg.Sched ? "+sched" : "");
  };

  // Link every leg serially — omlink fans each link out onto its own
  // worker pool, so stacking the legs would only oversubscribe the host.
  // The images must stay alive past the runs: canonicalMemoryHash walks
  // their symbol tables against the final data snapshot.
  std::vector<OmResult> Linked;
  for (const LegCfg &Cfg : Cfgs) {
    OmOptions Opts = Base;
    Opts.Level = Cfg.Level;
    Opts.Reschedule = Cfg.Sched;
    Opts.AlignLoopTargets = Cfg.Sched;
    // Instrumentation inserts code and is rejected below OM-full; the
    // differential question is about the optimizations, so drop it.
    Opts.InstrumentProcedureCounts = false;
    Opts.InstrumentBlockCounts = false;

    Result<OmResult> R = optimize(Objects, Opts);
    if (!R)
      return Result<DifferentialReport>::failure("differential leg " +
                                                 legName(Cfg) + ": " +
                                                 R.message());
    if (Error E = R->Image.verify())
      return Result<DifferentialReport>::failure(
          "differential leg " + legName(Cfg) + ": image verification: " +
          E.message());
    Linked.push_back(std::move(*R));
  }

  // The runs are independent, so execute every leg on BOTH functional
  // dispatch cores concurrently (8 jobs through the suite runner). This
  // both parallelizes the sweep and turns every differential invocation
  // into a dispatch-parity check: the computed-goto core must reproduce
  // the switch core bit for bit before the legs are compared.
  const size_t NLegs = Linked.size();
  std::vector<sim::SuiteJob> Jobs;
  Jobs.reserve(NLegs * 2);
  for (size_t I = 0; I < NLegs; ++I) {
    for (sim::DispatchMode Mode :
         {sim::DispatchMode::Threaded, sim::DispatchMode::Switch}) {
      sim::SuiteJob Job;
      Job.Name = legName(Cfgs[I]) +
                 (Mode == sim::DispatchMode::Threaded ? "/threaded"
                                                      : "/switch");
      Job.Image = &Linked[I].Image;
      Job.Config.Timing = false;
      Job.Config.Dispatch = Mode;
      Jobs.push_back(std::move(Job));
    }
  }
  std::vector<sim::SuiteJobResult> Runs = sim::runSuite(Jobs);
  for (const sim::SuiteJobResult &Run : Runs)
    if (!Run.Ok)
      return Result<DifferentialReport>::failure(
          "differential leg " + Run.Name + ": execution: " + Run.Error);

  DifferentialReport Report;
  for (size_t I = 0; I < NLegs; ++I) {
    const sim::SimResult &Th = Runs[2 * I].Result;
    const sim::SimResult &Sw = Runs[2 * I + 1].Result;
    const char *Field = Th.ExitCode != Sw.ExitCode ? "exit code"
                        : Th.Output != Sw.Output   ? "output"
                        : Th.FinalData != Sw.FinalData ? "final memory"
                        : Th.Instructions != Sw.Instructions
                            ? "instruction count"
                        : Th.ClassCounts != Sw.ClassCounts
                            ? "class histogram"
                        : Th.Nops != Sw.Nops ? "nop count"
                                             : nullptr;
    if (Field)
      return Result<DifferentialReport>::failure(
          "dispatch mismatch: " + legName(Cfgs[I]) +
          ": threaded and switch cores disagree on " + Field);

    DifferentialLeg Leg;
    Leg.Level = Cfgs[I].Level;
    Leg.Sched = Cfgs[I].Sched;
    Leg.ExitCode = Th.ExitCode;
    Leg.Output = Th.Output;
    Leg.MemoryHash = canonicalMemoryHash(Linked[I].Image, Th.FinalData);
    Leg.Instructions = Th.Instructions;
    Report.Legs.push_back(std::move(Leg));
  }

  const DifferentialLeg &Ref = Report.Legs.front();
  for (size_t Idx = 1; Idx < Report.Legs.size(); ++Idx) {
    const DifferentialLeg &Leg = Report.Legs[Idx];
    std::string LegName = std::string("OM-") + levelName(Leg.Level) +
                          (Leg.Sched ? "+sched" : "");
    if (Leg.ExitCode != Ref.ExitCode)
      return Result<DifferentialReport>::failure(
          "differential mismatch: " + LegName + " exited with " +
          std::to_string(Leg.ExitCode) + ", OM-none with " +
          std::to_string(Ref.ExitCode));
    if (Leg.Output != Ref.Output)
      return Result<DifferentialReport>::failure(
          "differential mismatch: " + LegName + " produced " +
          std::to_string(Leg.Output.size()) + " output bytes differing "
          "from OM-none's " + std::to_string(Ref.Output.size()));
    if (Leg.MemoryHash != Ref.MemoryHash)
      return Result<DifferentialReport>::failure(
          "differential mismatch: " + LegName +
          " left different final memory (canonical hash " +
          formatHex64(Leg.MemoryHash) + " vs " +
          formatHex64(Ref.MemoryHash) + ")");
  }
  return Report;
}

//===- om/Emit.cpp - Address-load optimization, layout, image emission ----===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout-dependent half of OM:
///
///   * sorts data symbols by size next to the GAT and picks GP values,
///   * converts address loads to GP-relative LDA/LDAH or nullifies them by
///     folding the displacement into their uses (section 3, first
///     improvement),
///   * for OM-full, reduces the GAT to a fixpoint ("GAT-reduction ... means
///     that the GAT gets smaller, perhaps enabling a fresh round of the
///     other improvements"), deletes nullified code, optionally reschedules
///     basic blocks and quadword-aligns backward-branch targets,
///   * regenerates executable code from the symbolic form.
///
//===----------------------------------------------------------------------===//

#include "om/OmImpl.h"

#include "om/Verify.h"
#include "sched/ListScheduler.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

using namespace om64;
using namespace om64::om;
using namespace om64::isa;
using namespace om64::obj;

namespace {

/// Slot map key: one 64-bit word packing (group, symId).
uint64_t slotKey(uint32_t Group, uint32_t Sym) {
  return (static_cast<uint64_t>(Group) << 32) | Sym;
}

/// One layout round's results.
struct DataLayout {
  std::vector<uint64_t> GroupBase; // address of each group's GAT
  std::vector<uint64_t> GpValue;
  // slotKey(group, symId) -> slot index within that group's GAT.
  std::unordered_map<uint64_t, uint32_t> Slot;
  std::vector<std::vector<uint32_t>> GroupSyms; // slot -> symId
  uint64_t DataBytes = 0; // initialized-data extent past the GATs
  uint64_t BssBytes = 0;
  uint64_t GatBytes = 0;
};

class Emitter {
public:
  Emitter(SymbolicProgram &SP, const OmOptions &Opts, OmStats &Stats,
          OmContext &Ctx)
      : SP(SP), Opts(Opts), Stats(Stats), Pool(Ctx.pool()), Ctx(Ctx) {}

  Result<Image> run();

private:
  /// True when this address-load's literal must stay in the GAT because it
  /// feeds a call (PV must hold the exact procedure address).
  bool isCallLiteral(const LitInfo &L) const { return L.JsrIdx >= 0; }

  /// Worst-case-then-shrink BSR relaxation (Dickson's linear-time jump
  /// encoding, inverted to the shrink direction): start from a layout in
  /// which every OM-created JSR->BSR conversion is reverted (maximal
  /// text), then iteratively re-admit each conversion whose displacement
  /// fits under the current layout, re-running offset assignment until no
  /// call changes state. Sizes only shrink and 16-byte-aligned spans are
  /// monotone in them, so an admitted call stays admitted and the loop
  /// terminates. Reach is decided against the procedure order the profile
  /// layout proposes (ProcOrder); compiler-emitted BSRs — which cannot
  /// revert — are audited against the same fixpoint, vetoing first the
  /// reorder and then the layout pass itself (LayoutAllowed) if they
  /// cannot survive. Calls that stay reverted mutate back to their JSR
  /// (un-nullifying the PV load) before the first layout so their
  /// literals get GAT slots back. Serial decision order is the
  /// determinism barrier; per-procedure size census runs on the pool.
  /// Fails hard when a converted call's literal is missing — continuing
  /// would leave an un-range-checked BSR in the image.
  Error relaxDirectCalls();

  /// Builds GAT contents and data addresses for the current decision
  /// state. When \p IncludeAllLiterals, every address load contributes its
  /// entry regardless of decisions (OM-simple / baseline behaviour).
  DataLayout layoutData(bool IncludeAllLiterals) const;

  /// One decision round; returns true if any load's fate changed.
  bool decideAddressLoads(const DataLayout &DL, bool Commit);

  /// Applies the recorded decisions' displacement rewrites against \p DL.
  /// Fails (in every build mode) if a committed decision's displacement no
  /// longer fits its field — e.g. after GAT shrinking moved a symbol —
  /// rather than silently truncating the displacement into a miscompile.
  Error applyRewrites(const DataLayout &DL);

  void deleteNullified();
  void reschedule();
  void instrumentProcedureCounts();
  Result<Image> assemble(const DataLayout &DL);
  void finalizeStats(const DataLayout &DL);

  /// Splits SP.Lits by owning procedure so the decision and rewrite loops
  /// can fan out per procedure. Within each procedure literal ids ascend,
  /// and the lift assigns ids in procedure order, so walking LitsOfProc in
  /// procedure order visits literals exactly as the global ascending-id
  /// iteration did.
  void partitionLiterals();

  SymbolicProgram &SP;
  const OmOptions &Opts;
  OmStats &Stats;
  ThreadPool &Pool;
  OmContext &Ctx;

public:
  /// Labels of the inserted profile counters, in counter-index order.
  std::vector<std::string> ProfiledSites;

private:

  // Per-proc layout of the final text.
  std::vector<uint64_t> ProcBase;
  std::vector<std::vector<uint32_t>> InstOffset; // per proc, per inst
  uint64_t TextBytes = 0;

  /// Procedure order proposed by the profile layout and validated by the
  /// relaxation fixpoint; runProfileLayout applies exactly this
  /// permutation. Empty means identity.
  std::vector<uint32_t> ProcOrder;
  /// Cleared by relaxDirectCalls when even the identity order cannot keep
  /// every compiler BSR in reach once layout may insert fixups; run()
  /// then skips the profile layout pass (the legacy whole-text bail,
  /// now reached only when genuinely necessary).
  bool LayoutAllowed = true;

  // Per-procedure (LitId, literal) views into SP.Lits; map nodes are
  // pointer-stable, and dropped together with SP.Lits after deletion.
  std::vector<std::vector<std::pair<uint32_t, LitInfo *>>> LitsOfProc;
};

} // namespace

//===----------------------------------------------------------------------===//
// Data and GAT layout.
//===----------------------------------------------------------------------===//

DataLayout Emitter::layoutData(bool IncludeAllLiterals) const {
  DataLayout DL;
  uint32_t NumGroups = SP.NumGroups;
  DL.GroupSyms.resize(NumGroups);

  // GAT contents: entries still loaded from memory. Qualifying
  // (group, symbol) pairs are collected per procedure in parallel; slot
  // numbers are then assigned serially in procedure order, so every group's
  // GAT lays out exactly as the old serial scan produced it.
  std::vector<std::vector<uint64_t>> KeysOfProc(SP.Procs.size());
  Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
    const SymProc &Proc = SP.Procs[P];
    for (const SymInst &SI : Proc.Insts) {
      if (SI.Kind != SKind::AddressLoad)
        continue;
      if (!IncludeAllLiterals && (SI.Nullified || SI.Converted))
        continue;
      KeysOfProc[P].push_back(slotKey(Proc.GpGroup, SI.TargetSym));
    }
  });
  for (const std::vector<uint64_t> &Keys : KeysOfProc)
    for (uint64_t Key : Keys) {
      uint32_t Group = static_cast<uint32_t>(Key >> 32);
      auto [It, Inserted] = DL.Slot.emplace(
          Key, static_cast<uint32_t>(DL.GroupSyms[Group].size()));
      (void)It;
      if (Inserted)
        DL.GroupSyms[Group].push_back(static_cast<uint32_t>(Key));
    }

  // GAT placement and GP values.
  DL.GroupBase.resize(NumGroups);
  DL.GpValue.resize(NumGroups);
  uint64_t Cur = Layout::DataBase;
  for (uint32_t G = 0; G < NumGroups; ++G) {
    DL.GroupBase[G] = Cur;
    DL.GpValue[G] = Cur + 32768;
    Cur += DL.GroupSyms[G].size() * 8;
    DL.GatBytes += DL.GroupSyms[G].size() * 8;
  }

  // Data symbols, optionally sorted by size ascending so that as many as
  // possible land inside the GP window (section 3: "We sort the common
  // symbols by size and place them with the small data sections near the
  // GAT").
  std::vector<uint32_t> Order;
  for (uint32_t SymId = 0; SymId < SP.Syms.size(); ++SymId)
    if (!SP.Syms[SymId].IsProc)
      Order.push_back(SymId);
  if (Opts.SortDataBySize)
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t A, uint32_t B) {
                       return SP.Syms[A].Size < SP.Syms[B].Size;
                     });

  uint64_t LastInitEnd = Cur;
  for (uint32_t SymId : Order) {
    PSym &S = const_cast<PSym &>(SP.Syms[SymId]);
    S.Addr = Cur;
    Cur += (S.Size + 7) & ~7ull;
    if (!S.IsBss)
      LastInitEnd = Cur;
  }
  DL.DataBytes = LastInitEnd - Layout::DataBase;
  DL.BssBytes = Cur - LastInitEnd;
  return DL;
}

//===----------------------------------------------------------------------===//
// BSR range relaxation.
//===----------------------------------------------------------------------===//

Error Emitter::relaxDirectCalls() {
  const size_t N = SP.Procs.size();
  if (N == 0)
    return Error::success();
  const bool Full = Opts.Level == OmLevel::Full;
  const bool LayoutLive = profileLayoutLive(Opts);

  // One OM-created conversion that the fixpoint decides about. Compiler
  // BSRs carry no literal (LitId == ~0u) and cannot revert; they become
  // hard constraints on the procedure order instead.
  struct Cand {
    uint32_t Proc = 0;
    uint32_t Inst = 0;
    uint32_t Target = 0;
    LitInfo *L = nullptr; // map node, pointer-stable
    /// The conversion nullified the PV load, so reverting it resurrects
    /// one instruction (at OM-full, where nullified code is deleted).
    bool LoadWasNullified = false;
    bool Admitted = false;
  };

  // Per-procedure census on the pool: live instruction counts, branch
  // counts (for the insertion allowances, matching pessimisticProcEnds),
  // candidate conversions and compiler-BSR constraints. Decisions below
  // stay serial in procedure order, so -jN is byte-identical to -j1.
  std::vector<uint64_t> LiveInsts(N, 0), Branches(N, 0);
  std::vector<std::vector<Cand>> CandsOfProc(N);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> BsrsOfProc(N);
  std::vector<std::string> ErrOfProc(N);
  Pool.parallelFor(N, [&](size_t P) {
    SymProc &Proc = SP.Procs[P];
    for (uint32_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
      const SymInst &SI = Proc.Insts[Idx];
      if (SI.Kind == SKind::LocalBranch)
        ++Branches[P];
      if (!Full || !SI.Nullified)
        ++LiveInsts[P];
      if (SI.Kind != SKind::DirectCall)
        continue;
      if (SI.LitId == ~0u) {
        // Compiler-emitted BSR: range-valid in its own object, but a
        // reorder could stretch it; record the constraint.
        if (SI.TargetProc != ~0u)
          BsrsOfProc[P].emplace_back(static_cast<uint32_t>(P),
                                     SI.TargetProc);
        continue;
      }
      auto It = SP.Lits.find(SI.LitId);
      if (It == SP.Lits.end()) {
        // A converted call that lost its literal cannot revert, and
        // admitting it unchecked could emit an out-of-range BSR. This is
        // a link error in every build mode, not an assert-then-continue.
        if (ErrOfProc[P].empty())
          ErrOfProc[P] = formatString(
              "%s: converted call at instruction %u has no literal %u to "
              "revert through; refusing to emit an un-range-checked BSR",
              Proc.Name.c_str(), Idx, SI.LitId);
        continue;
      }
      Cand C;
      C.Proc = static_cast<uint32_t>(P);
      C.Inst = Idx;
      C.Target = SI.TargetProc;
      C.L = &It->second;
      C.LoadWasNullified = Proc.Insts[It->second.LoadIdx].Nullified;
      CandsOfProc[P].push_back(C);
    }
  });
  for (const std::string &Msg : ErrOfProc)
    if (!Msg.empty())
      return Error::failure(Msg);
  std::vector<Cand> Cands;
  std::vector<std::pair<uint32_t, uint32_t>> CompilerBsrs;
  for (size_t P = 0; P < N; ++P) {
    Cands.insert(Cands.end(), CandsOfProc[P].begin(), CandsOfProc[P].end());
    CompilerBsrs.insert(CompilerBsrs.end(), BsrsOfProc[P].begin(),
                        BsrsOfProc[P].end());
  }
  if (Cands.empty() && (!LayoutLive || CompilerBsrs.empty()))
    return Error::success();

  // Worst-case per-procedure sizes in instruction slots: every candidate
  // reverted (its nullified PV load resurrected), nothing else deleted
  // beyond what is already nullified, and every possible insertion
  // counted — the same allowance formula as pessimisticProcEnds. Real
  // procedure sizes at assembly never exceed these, and admission only
  // shrinks them, so spans computed from them are monotone upper bounds.
  const bool Align = Full && Opts.AlignLoopTargets;
  const bool ProcCounters = Full && Opts.InstrumentProcedureCounts;
  const bool BlockCounters = Full && Opts.InstrumentBlockCounts;
  auto buildWorst = [&](bool WithLayout) {
    std::vector<uint64_t> W(N);
    for (size_t P = 0; P < N; ++P) {
      uint64_t Fixups = WithLayout ? 2 * Branches[P] + 2 : 0;
      W[P] = LiveInsts[P] + (ProcCounters ? 1 : 0) +
             (BlockCounters ? Branches[P] : 0) + Fixups +
             (Align ? Branches[P] + Fixups : 0);
    }
    for (const Cand &C : Cands)
      if (Full && C.LoadWasNullified)
        ++W[C.Proc];
    return W;
  };
  std::vector<uint64_t> BaseWorst = buildWorst(LayoutLive);

  // The procedure order reach is decided against: what the profile layout
  // will apply. Computing it here (before any emission-stage mutation)
  // and handing the same permutation to runProfileLayout keeps the two
  // consistent by construction.
  if (LayoutLive)
    ProcOrder = proposeProcOrder(SP, Opts);

  std::vector<uint64_t> Worst(N), Base(N), End(N);
  auto computeLayout = [&]() {
    uint64_t Cur = 0;
    auto Place = [&](uint32_t P) {
      Cur = (Cur + 15) & ~15ull;
      Base[P] = Cur;
      Cur += Worst[P] * 4;
      End[P] = Cur;
    };
    if (ProcOrder.empty())
      for (uint32_t P = 0; P < N; ++P)
        Place(P);
    else
      for (uint32_t P : ProcOrder)
        Place(P);
  };
  // Both the call site and its target lie within their procedures'
  // [Base, End) spans, so the displacement magnitude is bounded by the
  // span of everything between the two procedures inclusive. Spans are
  // sums of per-procedure 16-byte-aligned sizes, monotone in each size,
  // so a bound that holds under the worst case holds in the final image.
  auto fits = [&](uint32_t A, uint32_t B) {
    uint64_t Hi = std::max(End[A], End[B]);
    uint64_t Lo = std::min(Base[A], Base[B]);
    return Hi - Lo <= BsrReachBytes;
  };
  auto runFixpoint = [&]() {
    Worst = BaseWorst;
    for (Cand &C : Cands)
      C.Admitted = false;
    bool Changed = true;
    while (Changed) {
      ++Stats.BsrRelaxRounds;
      Changed = false;
      computeLayout();
      for (Cand &C : Cands) {
        if (C.Admitted || !fits(C.Proc, C.Target))
          continue;
        C.Admitted = true;
        if (Full && C.LoadWasNullified)
          --Worst[C.Proc]; // the PV load stays deleted after all
        Changed = true;
      }
    }
    // The loop exits after a no-change round, whose layout at the top
    // already reflects every admission; Base/End are the fixpoint state.
  };
  auto compilerBsrsFit = [&]() {
    for (const auto &[A, B] : CompilerBsrs)
      if (!fits(A, B))
        return false;
    return true;
  };

  runFixpoint();
  if (LayoutLive && !compilerBsrsFit()) {
    // An un-revertible compiler BSR cannot survive the proposed order:
    // veto the reorder and re-run against the identity order.
    if (!ProcOrder.empty()) {
      ProcOrder.clear();
      runFixpoint();
    }
    if (!compilerBsrsFit()) {
      // Even identity order fails once layout may insert fixup branches;
      // drop the layout pass entirely and relax without its allowances.
      // (Without layout no code moves or grows, so the constraint
      // reduces to the compiler's own object-local guarantee.)
      LayoutAllowed = false;
      BaseWorst = buildWorst(false);
      runFixpoint();
    }
  }

  // Commit: admitted conversions survive as BSRs; the rest revert to
  // their original JSR through the (re-activated) GAT load. This runs
  // before the first data layout so reverted literals get GAT slots back.
  uint64_t Retained = 0;
  bool AnyRevert = false;
  for (const Cand &C : Cands) {
    if (C.Admitted) {
      ++Retained;
      continue;
    }
    SymProc &Proc = SP.Procs[C.Proc];
    SymInst &SI = Proc.Insts[C.Inst];
    LitInfo &L = *C.L;
    SymInst &Load = Proc.Insts[L.LoadIdx];
    // Restore the original call shape: JSR through the PV register the
    // (re-activated) GAT load provides. Re-entering the callee at its
    // first instruction is correct even when prologue skipping was
    // decided: the prologue is deleted only if every remaining direct
    // call skips it, and this site is no longer a direct call.
    SI.Kind = SKind::JsrViaGat;
    SI.I = makeJump(Opcode::Jsr, RA, Load.I.Ra);
    SI.TargetProc = ~0u;
    SI.SkipPrologue = false;
    // The load may have been nullified by the dataflow's equal-PV proof
    // rather than by prologue skipping; the revert resurrects it either
    // way (harmless when the proof held — the reload is a no-op), so the
    // proof bookkeeping must follow or verifyDeletionProofs would check
    // a deletion that no longer exists.
    if (Load.AnalysisNullified && Load.Nullified) {
      Load.AnalysisNullified = false;
      checkedDecrement(Stats.AnalysisPvLoadsDeleted);
    }
    Load.Nullified = false;
    checkedDecrement(Stats.JsrConvertedToBsr);
    ++Stats.BsrFallbackJsrs;
    AnyRevert = true;
  }
  Stats.BsrRetainedByRelax += Retained;
  if (AnyRevert)
    Ctx.invalidate();
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Address-load decisions.
//===----------------------------------------------------------------------===//

void Emitter::partitionLiterals() {
  LitsOfProc.assign(SP.Procs.size(), {});
  for (auto &[LitId, L] : SP.Lits)
    if (L.Proc != ~0u)
      LitsOfProc[L.Proc].emplace_back(LitId, &L);
}

bool Emitter::decideAddressLoads(const DataLayout &DL, bool Commit) {
  // Each literal reads and writes only its owning procedure's
  // instructions, so procedures decide independently; the per-procedure
  // flags OR-reduce to the same Changed the serial scan returned.
  std::vector<uint8_t> ChangedInProc(SP.Procs.size(), 0);
  Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
    SymProc &Proc = SP.Procs[P];
    for (auto &[LitId, LPtr] : LitsOfProc[P]) {
      (void)LitId;
      LitInfo &L = *LPtr;
      SymInst &Load = Proc.Insts[L.LoadIdx];
      if (Load.Kind != SKind::AddressLoad || Load.Nullified ||
          Load.Converted)
        continue;
      if (isCallLiteral(L))
        continue; // PV must be the exact procedure address
      const PSym &Target = SP.Syms[L.TargetSym];
      if (Target.IsProc)
        continue; // escaping procedure address: must stay exact
      int64_t A = static_cast<int64_t>(Target.Addr);
      int64_t G = static_cast<int64_t>(DL.GpValue[Proc.GpGroup]);

      if (L.escapes()) {
        // &variable: the loaded value must be exact, so only a
        // one-instruction LDA can replace it.
        if (fitsDisp16(A - G)) {
          if (Commit)
            Load.Converted = true;
          ChangedInProc[P] = 1;
        }
        continue;
      }

      // Mixed direct and derived uses never come out of our compiler; be
      // conservative if they somehow appear.
      if (!L.MemUses.empty() && !L.DerefUses.empty())
        continue;
      // A derived-pointer chain needs its address computation rewritten as
      // well; keep chains with unusual shapes.
      if (!L.DerefUses.empty() && L.AddrUses.size() != 1)
        continue;

      // The displacement-carrying instructions: direct memory uses, or the
      // dereferences at the end of an address-arithmetic chain.
      const std::vector<uint32_t> &DispUses =
          L.DerefUses.empty() ? L.MemUses : L.DerefUses;
      if (DispUses.empty())
        continue; // derived address never dereferenced: leave alone
      bool AllNear = true;
      bool HaveHigh = false;
      int32_t SharedHigh = 0;
      bool HighConsistent = true;
      for (uint32_t UseIdx : DispUses) {
        const SymInst &Use = Proc.Insts[UseIdx];
        int64_t Du = A - G + Use.OrigDisp;
        if (!fitsDisp16(Du))
          AllNear = false;
        int32_t High, Low;
        splitDisp32(Du, High, Low);
        if (!fitsDisp16(High))
          HighConsistent = false;
        else if (!HaveHigh) {
          SharedHigh = High;
          HaveHigh = true;
        } else if (High != SharedHigh) {
          HighConsistent = false;
        }
      }
      if (AllNear) {
        if (Commit)
          Load.Nullified = true;
        ChangedInProc[P] = 1;
      } else if (HighConsistent && HaveHigh) {
        if (Commit)
          Load.Converted = true;
        ChangedInProc[P] = 1;
      }
    }
  });
  bool Changed = false;
  for (uint8_t C : ChangedInProc)
    Changed |= C != 0;
  return Changed;
}

Error Emitter::applyRewrites(const DataLayout &DL) {
  // Range guards below are real link errors, not asserts: the decisions
  // were committed against an earlier layout, and GAT shrinking between
  // rounds can legitimately move a symbol out of the range the decision
  // assumed. Truncating the displacement (what the unchecked encode would
  // do, silently, in NDEBUG builds) is a miscompile; failing the link is
  // the only safe answer, and it must fire in release builds too.
  //
  // Procedures rewrite independently; failures land in per-procedure
  // slots and the first in procedure order is reported — the error the
  // serial loop raised, since literal ids ascend in procedure order.
  std::vector<std::string> Errors(SP.Procs.size());
  Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
    SymProc &Proc = SP.Procs[P];
    for (auto &[LitId, LPtr] : LitsOfProc[P]) {
      LitInfo &L = *LPtr;
      SymInst &Load = Proc.Insts[L.LoadIdx];
      if (Load.Kind != SKind::AddressLoad)
        continue;
      const PSym &Target = SP.Syms[L.TargetSym];
      int64_t A = static_cast<int64_t>(Target.Addr);
      int64_t G = static_cast<int64_t>(DL.GpValue[Proc.GpGroup]);

      const std::vector<uint32_t> &DispUses =
          L.DerefUses.empty() ? L.MemUses : L.DerefUses;

      if (Load.Converted) {
        if (L.escapes()) {
          if (!fitsDisp16(A - G)) {
            Errors[P] = formatString(
                "%s: literal %u (&%s): converted escaping load's GP "
                "displacement %lld exceeds 16 bits after layout",
                Proc.Name.c_str(), LitId, Target.Name.c_str(),
                static_cast<long long>(A - G));
            return;
          }
          Load.I = makeMem(Opcode::Lda, Load.I.Ra,
                           static_cast<int32_t>(A - G), GP);
        } else {
          if (DispUses.empty()) {
            Errors[P] = formatString(
                "%s: literal %u (&%s): converted load has no uses to take "
                "the low displacement", Proc.Name.c_str(), LitId,
                Target.Name.c_str());
            return;
          }
          int32_t High = 0, Low = 0;
          // All uses share the same high part; recompute from the first.
          splitDisp32(A - G + Proc.Insts[DispUses[0]].OrigDisp, High, Low);
          if (!fitsDisp16(High)) {
            Errors[P] = formatString(
                "%s: literal %u (&%s): converted load's high displacement "
                "%d exceeds 16 bits after layout", Proc.Name.c_str(),
                LitId, Target.Name.c_str(), High);
            return;
          }
          Load.I = makeMem(Opcode::Ldah, Load.I.Ra, High, GP);
          for (uint32_t UseIdx : DispUses) {
            SymInst &Use = Proc.Insts[UseIdx];
            int32_t UHigh, ULow;
            splitDisp32(A - G + Use.OrigDisp, UHigh, ULow);
            if (UHigh != High) {
              Errors[P] = formatString(
                  "%s: literal %u (&%s): uses no longer share one high "
                  "displacement after layout (%d vs %d)",
                  Proc.Name.c_str(), LitId, Target.Name.c_str(), UHigh,
                  High);
              return;
            }
            Use.I.Disp = ULow;
          }
        }
        continue;
      }
      if (Load.Nullified && !DispUses.empty()) {
        // Folded into the uses: direct memory uses become GP-relative, and
        // chained address computations add to GP instead of the (dead)
        // loaded base.
        for (uint32_t UseIdx : DispUses) {
          SymInst &Use = Proc.Insts[UseIdx];
          int64_t Du = A - G + Use.OrigDisp;
          if (!fitsDisp16(Du)) {
            Errors[P] = formatString(
                "%s: literal %u (&%s): nullified load's use displacement "
                "%lld exceeds 16 bits after layout", Proc.Name.c_str(),
                LitId, Target.Name.c_str(), static_cast<long long>(Du));
            return;
          }
          if (L.DerefUses.empty())
            Use.I.Rb = GP; // direct use: rebase onto GP
          Use.I.Disp = static_cast<int32_t>(Du);
        }
        for (uint32_t AddrIdx : L.AddrUses)
          Proc.Insts[AddrIdx].I.Rb = GP;
      }
    }
  });
  for (const std::string &Msg : Errors)
    if (!Msg.empty())
      return Error::failure(Msg);
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Deletion, rescheduling, alignment.
//===----------------------------------------------------------------------===//

void Emitter::deleteNullified() {
  // Per-procedure compaction is independent; deletion counts reduce in
  // procedure order after the barrier.
  std::vector<uint64_t> DeletedInProc(SP.Procs.size(), 0);
  Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
    SymProc &Proc = SP.Procs[P];
    std::vector<uint32_t> OldToNew(Proc.Insts.size() + 1, 0);
    std::vector<SymInst> Kept;
    Kept.reserve(Proc.Insts.size());
    for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
      OldToNew[Idx] = static_cast<uint32_t>(Kept.size());
      if (Proc.Insts[Idx].Nullified)
        ++DeletedInProc[P];
      else
        Kept.push_back(Proc.Insts[Idx]);
    }
    OldToNew[Proc.Insts.size()] = static_cast<uint32_t>(Kept.size());
    for (SymInst &SI : Kept)
      if (SI.Kind == SKind::LocalBranch)
        SI.TargetIdx = static_cast<int32_t>(OldToNew[SI.TargetIdx]);
    Proc.Insts = std::move(Kept);
  });
  for (uint64_t Count : DeletedInProc)
    Stats.InstructionsDeleted += Count;
  // Literal bookkeeping indices are stale after deletion; transforms and
  // decisions are all complete by now, so drop the table (and the
  // per-procedure views into it) to make any accidental later use loud.
  SP.Lits.clear();
  LitsOfProc.clear();
  Ctx.invalidate();
}

void Emitter::reschedule() {
  // With the dataflow live, classify every memory base register (GAT/data
  // vs stack) against the post-deletion program; the scheduler then skips
  // ordering edges between proven-disjoint accesses. Without it the
  // classification pointer stays null and the scheduler's default path is
  // byte-identical to the historical conservative one.
  const analysis::ProgramAnalysis *PA =
      Opts.Analysis ? &Ctx.program() : nullptr;

  // scheduleRegion is a pure function of the region's instructions, so
  // procedures reschedule independently; freed-pair counts reduce in
  // procedure order.
  std::vector<uint64_t> FreedInProc(SP.Procs.size(), 0);
  Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
    SymProc &Proc = SP.Procs[P];
    std::vector<SymInst> &Insts = Proc.Insts;
    if (Insts.empty())
      return;
    std::vector<uint8_t> BaseOf;
    if (PA)
      BaseOf = analysis::memBaseRegions(SP, *PA, static_cast<uint32_t>(P));

    // Region boundaries: branch targets and a pinned prologue pair.
    std::vector<bool> IsBoundary(Insts.size(), false);
    for (const SymInst &SI : Insts)
      if (SI.Kind == SKind::LocalBranch &&
          static_cast<size_t>(SI.TargetIdx) < Insts.size())
        IsBoundary[SI.TargetIdx] = true;
    size_t Start = Proc.postPrologueIndex();

    std::vector<SymInst> NewInsts(Insts.begin(),
                                  Insts.begin() +
                                      static_cast<ptrdiff_t>(Start));
    size_t RegionStart = Start;
    auto flush = [&](size_t End) {
      if (End == RegionStart)
        return;
      std::vector<Inst> Region;
      Region.reserve(End - RegionStart);
      std::vector<sched::MemRegion> Bases;
      if (PA)
        Bases.reserve(End - RegionStart);
      for (size_t I = RegionStart; I < End; ++I) {
        Region.push_back(Insts[I].I);
        if (PA)
          Bases.push_back(static_cast<sched::MemRegion>(BaseOf[I]));
      }
      sched::SchedStats SStats;
      for (size_t Local : sched::scheduleRegion(
               Region, PA ? &Bases : nullptr, PA ? &SStats : nullptr))
        NewInsts.push_back(Insts[RegionStart + Local]);
      FreedInProc[P] += SStats.MemDepPairsFreed;
      RegionStart = End;
    };
    for (size_t Idx = Start; Idx < Insts.size(); ++Idx) {
      if (IsBoundary[Idx] && Idx != RegionStart)
        flush(Idx);
      if (sched::isSchedulingBarrier(Insts[Idx].I)) {
        flush(Idx);
        NewInsts.push_back(Insts[Idx]);
        RegionStart = Idx + 1;
      }
    }
    flush(Insts.size());
    assert(NewInsts.size() == Insts.size() && "rescheduling lost code");
    Insts = std::move(NewInsts);
  });
  for (uint64_t Count : FreedInProc)
    Stats.SchedMemDepsFreed += Count;
  Ctx.invalidate();
}

void Emitter::instrumentProcedureCounts() {
  // ATOM-style counters (section 6). Entry counters go after each
  // procedure's GP prologue, where both fall-through entry and
  // prologue-skipping BSRs pass. With block counting on, every branch
  // target (the heads of the recovered control structure) gets one too.
  // Insertions proceed from the highest position downward; branch targets
  // at or past an insertion point shift by one, so loop back-edges land
  // on their counter while straight-line fall-through passes it exactly
  // when the block executes.
  uint32_t NextCounter = 0;
  for (uint32_t ProcIdx = 0; ProcIdx < SP.Procs.size(); ++ProcIdx) {
    SymProc &Proc = SP.Procs[ProcIdx];

    std::set<uint32_t> Points;
    Points.insert(Proc.postPrologueIndex());
    if (Opts.InstrumentBlockCounts)
      for (const SymInst &SI : Proc.Insts)
        if (SI.Kind == SKind::LocalBranch)
          Points.insert(static_cast<uint32_t>(SI.TargetIdx));

    // Assign counter ids in ascending source order for readable labels,
    // but insert in descending order so earlier points stay valid.
    std::vector<uint32_t> Ascending(Points.begin(), Points.end());
    std::map<uint32_t, uint32_t> CounterAt;
    for (uint32_t At : Ascending) {
      CounterAt[At] = NextCounter++;
      ProfiledSites.push_back(
          At == Proc.postPrologueIndex()
              ? Proc.Name
              : Proc.Name + "+" + std::to_string(At));
    }
    // Branch-target adjustment differs by mode: block counters must be
    // executed by branches into their block (a target equal to the
    // insertion point keeps pointing at the counter, so back-edges count
    // every iteration); pure entry counters must not re-count on loops
    // to the entry position (such targets skip past the counter).
    bool BlockMode = Opts.InstrumentBlockCounts;
    for (size_t Rev = Ascending.size(); Rev-- > 0;) {
      uint32_t At = Ascending[Rev];
      for (SymInst &SI : Proc.Insts)
        if (SI.Kind == SKind::LocalBranch &&
            (BlockMode ? SI.TargetIdx > static_cast<int32_t>(At)
                       : SI.TargetIdx >= static_cast<int32_t>(At)))
          ++SI.TargetIdx;
      SymInst Counter;
      Counter.I = makePalCount(CounterAt[At]);
      Proc.Insts.insert(Proc.Insts.begin() + At, Counter);
      ++Stats.InstrumentationInserted;
    }
  }
  Ctx.invalidate();
}

//===----------------------------------------------------------------------===//
// Final assembly.
//===----------------------------------------------------------------------===//

Result<Image> Emitter::assemble(const DataLayout &DL) {
  bool Align = Opts.Level == OmLevel::Full && Opts.AlignLoopTargets;

  // Per-procedure offsets, inserting alignment nops before targets of
  // backward branches ("quadword-aligning instructions that are the
  // targets of backward branches", section 4). Relative offsets compute
  // per procedure in parallel — every procedure starts 16-byte aligned,
  // so the mod-8 alignment decisions cannot observe the base — and a
  // serial prefix pass accumulates bases and nop counts in procedure
  // order.
  ProcBase.resize(SP.Procs.size());
  InstOffset.resize(SP.Procs.size());
  std::vector<uint64_t> BytesOfProc(SP.Procs.size(), 0);
  std::vector<uint64_t> NopsOfProc(SP.Procs.size(), 0);
  Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
    const SymProc &Proc = SP.Procs[P];
    std::vector<bool> BackTarget(Proc.Insts.size(), false);
    if (Align)
      for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
        const SymInst &SI = Proc.Insts[Idx];
        // Cold code (split off by the profile-guided layout) earns no
        // alignment padding: neither a never-executed branch nor a target
        // in the cold tail justifies the nops.
        if (SI.Kind == SKind::LocalBranch &&
            SI.TargetIdx <= static_cast<int32_t>(Idx) && !SI.Cold &&
            !Proc.Insts[static_cast<size_t>(SI.TargetIdx)].Cold)
          BackTarget[SI.TargetIdx] = true;
      }

    InstOffset[P].resize(Proc.Insts.size());
    uint64_t Off = 0;
    for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
      if (Align && BackTarget[Idx] && Off % 8 != 0) {
        Off += 4; // an alignment nop will be placed here
        ++NopsOfProc[P];
      }
      InstOffset[P][Idx] = static_cast<uint32_t>(Off);
      Off += 4;
    }
    BytesOfProc[P] = Off;
  });
  uint64_t Cur = 0;
  for (uint32_t ProcIdx = 0; ProcIdx < SP.Procs.size(); ++ProcIdx) {
    Cur = (Cur + 15) & ~15ull;
    ProcBase[ProcIdx] = Cur;
    Cur += BytesOfProc[ProcIdx];
    Stats.NopsInserted += NopsOfProc[ProcIdx];
  }
  TextBytes = Cur;

  // Procedure symbol addresses.
  for (uint32_t ProcIdx = 0; ProcIdx < SP.Procs.size(); ++ProcIdx)
    SP.Syms[SP.Procs[ProcIdx].SymId].Addr =
        Layout::TextBase + ProcBase[ProcIdx];

  Image Img;
  Img.TextBase = Layout::TextBase;
  Img.DataBase = Layout::DataBase;
  Img.GatBase = Layout::DataBase;
  Img.GatSize = DL.GatBytes;
  Img.BssSize = DL.BssBytes;

  uint32_t NopWord = encode(Inst::nop());
  Img.Text.assign(TextBytes, 0);
  for (size_t Off = 0; Off + 4 <= Img.Text.size(); Off += 4)
    for (unsigned Byte = 0; Byte < 4; ++Byte)
      Img.Text[Off + Byte] = static_cast<uint8_t>(NopWord >> (8 * Byte));

  // Encode procedures concurrently: each writes only its own (disjoint)
  // byte range of the text and reads shared layout state that is frozen by
  // now. Failures land in per-procedure slots; the first in procedure
  // order is reported, matching the serial loop's error exactly.
  std::vector<std::string> EncodeErrors(SP.Procs.size());
  Pool.parallelFor(SP.Procs.size(), [&](size_t ProcIdxS) {
    uint32_t ProcIdx = static_cast<uint32_t>(ProcIdxS);
    SymProc &Proc = SP.Procs[ProcIdx];
    int64_t G = static_cast<int64_t>(DL.GpValue[Proc.GpGroup]);
    uint64_t LastCallEnd = 0; // text offset just after the last call

    for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
      SymInst &SI = Proc.Insts[Idx];
      uint64_t Off = ProcBase[ProcIdx] + InstOffset[ProcIdx][Idx];
      Inst Out = SI.I;

      if (SI.Nullified) {
        Out = Inst::nop();
      } else {
        switch (SI.Kind) {
        case SKind::AddressLoad:
          if (!SI.Converted) {
            auto It = DL.Slot.find(slotKey(Proc.GpGroup, SI.TargetSym));
            if (It == DL.Slot.end()) {
              EncodeErrors[ProcIdx] =
                  "internal: live address load without a GAT slot for " +
                  SP.Syms[SI.TargetSym].Name;
              return;
            }
            int64_t SlotAddr = static_cast<int64_t>(
                DL.GroupBase[Proc.GpGroup] + It->second * 8ull);
            // A real error, not an assert: a slot pushed out of the GP
            // window would otherwise encode a truncated displacement in
            // NDEBUG builds (load from the wrong slot at run time).
            if (!fitsDisp16(SlotAddr - G)) {
              EncodeErrors[ProcIdx] = formatString(
                  "%s: GAT slot of %s is %lld bytes from GP, beyond the "
                  "16-bit displacement", Proc.Name.c_str(),
                  SP.Syms[SI.TargetSym].Name.c_str(),
                  static_cast<long long>(SlotAddr - G));
              return;
            }
            Out.Disp = static_cast<int32_t>(SlotAddr - G);
          }
          break;
        case SKind::GpHigh:
        case SKind::GpLow: {
          uint64_t Anchor = SI.GpKind == GpDispKind::Prologue
                                ? ProcBase[ProcIdx]
                                : LastCallEnd;
          int64_t Value =
              G - static_cast<int64_t>(Layout::TextBase + Anchor);
          if (!fitsDisp32(Value)) {
            EncodeErrors[ProcIdx] =
                Proc.Name + ": GP displacement exceeds 32 bits";
            return;
          }
          int32_t High, Low;
          splitDisp32(Value, High, Low);
          Out.Disp = SI.Kind == SKind::GpHigh ? High : Low;
          break;
        }
        case SKind::LocalBranch: {
          uint64_t TargetOff =
              ProcBase[ProcIdx] +
              InstOffset[ProcIdx][static_cast<size_t>(SI.TargetIdx)];
          int64_t Disp = (static_cast<int64_t>(TargetOff) -
                          static_cast<int64_t>(Off) - 4) / 4;
          if (!fitsBranchDisp(Disp)) {
            EncodeErrors[ProcIdx] = Proc.Name + ": branch out of range";
            return;
          }
          Out.Disp = static_cast<int32_t>(Disp);
          break;
        }
        case SKind::DirectCall: {
          const SymProc &Callee = SP.Procs[SI.TargetProc];
          uint64_t Target = ProcBase[SI.TargetProc];
          if (SI.SkipPrologue) {
            uint32_t Post = Callee.postPrologueIndex();
            Target = ProcBase[SI.TargetProc] +
                     (Post < Callee.Insts.size()
                          ? InstOffset[SI.TargetProc][Post]
                          : Callee.Insts.size() * 4);
          }
          int64_t Disp = (static_cast<int64_t>(Target) -
                          static_cast<int64_t>(Off) - 4) / 4;
          if (!fitsBranchDisp(Disp)) {
            // The relaxation pass reverts every call this could happen
            // to; reaching here means its pessimistic bound was wrong.
            EncodeErrors[ProcIdx] =
                Proc.Name + ": BSR out of range; JSR fallback required";
            return;
          }
          Out.Disp = static_cast<int32_t>(Disp);
          break;
        }
        default:
          break;
        }
      }

      // GP-low instructions paired with a prologue high use the same
      // anchor; track the end of calls for post-call anchors.
      if (!SI.Nullified &&
          (SI.Kind == SKind::DirectCall || SI.Kind == SKind::JsrViaGat ||
           SI.Kind == SKind::JsrIndirect))
        LastCallEnd = Off + 4;

      uint32_t Word = encode(Out);
      for (unsigned Byte = 0; Byte < 4; ++Byte)
        Img.Text[Off + Byte] = static_cast<uint8_t>(Word >> (8 * Byte));
    }
  });
  for (const std::string &Msg : EncodeErrors)
    if (!Msg.empty())
      return Result<Image>::failure(Msg);

  // Data: GAT groups then data symbols.
  Img.Data.assign(DL.DataBytes, 0);
  for (uint32_t Gr = 0; Gr < SP.NumGroups; ++Gr) {
    uint64_t Base = DL.GroupBase[Gr] - Layout::DataBase;
    for (size_t Slot = 0; Slot < DL.GroupSyms[Gr].size(); ++Slot) {
      uint64_t Value = SP.Syms[DL.GroupSyms[Gr][Slot]].Addr;
      for (unsigned Byte = 0; Byte < 8; ++Byte)
        Img.Data[Base + Slot * 8 + Byte] =
            static_cast<uint8_t>(Value >> (8 * Byte));
    }
  }
  for (const PSym &S : SP.Syms) {
    if (S.IsProc || S.IsBss || S.Init.empty())
      continue;
    uint64_t Off = S.Addr - Layout::DataBase;
    if (Off + S.Init.size() <= Img.Data.size())
      std::copy(S.Init.begin(), S.Init.end(),
                Img.Data.begin() + static_cast<ptrdiff_t>(Off));
  }

  // Symbols and procedure table.
  for (const PSym &S : SP.Syms) {
    ImageSymbol IS;
    IS.Name = S.Name;
    IS.Addr = S.Addr;
    IS.Size = S.IsProc ? SP.Procs[S.ProcIdx].Insts.size() * 4 : S.Size;
    IS.IsProcedure = S.IsProc;
    Img.Symbols.push_back(std::move(IS));
  }
  for (uint32_t ProcIdx = 0; ProcIdx < SP.Procs.size(); ++ProcIdx) {
    const SymProc &Proc = SP.Procs[ProcIdx];
    ImageProc IP;
    IP.Name = Proc.Name;
    IP.Entry = Layout::TextBase + ProcBase[ProcIdx];
    IP.Size = Proc.Insts.size() * 4;
    IP.GpGroup = Proc.GpGroup;
    IP.GpValue = DL.GpValue[Proc.GpGroup];
    Img.Procs.push_back(std::move(IP));
    if (Proc.IsEntry) {
      Img.Entry = IP.Entry;
      Img.InitialGp = IP.GpValue;
    }
  }
  return Img;
}

//===----------------------------------------------------------------------===//
// Statistics.
//===----------------------------------------------------------------------===//

void Emitter::finalizeStats(const DataLayout &DL) {
  Stats.GatBytesAfter = DL.GatBytes;
  Stats.GpGroups = SP.NumGroups;
  Stats.TextBytesAfter = TextBytes;

  // Per-procedure counting is independent (the callee scans are read-only
  // and no instruction mutates here); counters reduce in procedure order
  // after the barrier.
  struct Counts {
    uint64_t Nullified = 0, GpResets = 0, Calls = 0, PvLoads = 0;
  };
  std::vector<Counts> CountsOfProc(SP.Procs.size());
  Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
    Counts &C = CountsOfProc[P];
    const SymProc &Proc = SP.Procs[P];
    for (size_t Idx = 0; Idx < Proc.Insts.size(); ++Idx) {
      const SymInst &SI = Proc.Insts[Idx];
      if (SI.Nullified)
        ++C.Nullified;
      // GP-reset pairs correspond 1:1 to the calls that emitted them, so
      // a surviving post-call pair means its call still needs resets.
      if (SI.Kind == SKind::GpHigh && SI.GpKind == GpDispKind::PostCall &&
          !SI.Nullified)
        ++C.GpResets;

      bool IsCall = SI.Kind == SKind::JsrViaGat ||
                    SI.Kind == SKind::JsrIndirect ||
                    SI.Kind == SKind::DirectCall;
      if (!IsCall)
        continue;
      ++C.Calls;
      bool NeedsPv = false;
      switch (SI.Kind) {
      case SKind::JsrViaGat:
      case SKind::JsrIndirect:
        NeedsPv = true;
        break;
      case SKind::DirectCall: {
        // The callee reads PV if any live prologue GP-set remains in it,
        // wherever compile-time scheduling may have left it.
        const SymProc &Callee = SP.Procs[SI.TargetProc];
        bool CalleeReadsPv = false;
        for (const SymInst &CI : Callee.Insts)
          if (CI.Kind == SKind::GpHigh &&
              CI.GpKind == GpDispKind::Prologue && !CI.Nullified)
            CalleeReadsPv = true;
        NeedsPv = CalleeReadsPv && !SI.SkipPrologue;
        break;
      }
      default:
        break;
      }
      if (NeedsPv)
        ++C.PvLoads;
    }
  });
  for (const Counts &C : CountsOfProc) {
    Stats.InstructionsNullified += C.Nullified;
    Stats.CallsNeedingGpReset += C.GpResets;
    Stats.CallsTotal += C.Calls;
    Stats.CallsNeedingPvLoad += C.PvLoads;
  }
}

//===----------------------------------------------------------------------===//
// Driver.
//===----------------------------------------------------------------------===//

Result<Image> Emitter::run() {
  Stats.GatBytesBefore = SP.OriginalGatEntries * 8;
  {
    // Read-only census; counts reduce in procedure order.
    std::vector<uint64_t> LoadsInProc(SP.Procs.size(), 0);
    Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
      for (const SymInst &SI : SP.Procs[P].Insts)
        if (SI.Kind == SKind::AddressLoad)
          ++LoadsInProc[P];
    });
    for (size_t P = 0; P < SP.Procs.size(); ++P) {
      Stats.InstructionsTotal += SP.Procs[P].Insts.size();
      Stats.AddressLoadsTotal += LoadsInProc[P];
    }
  }
  Stats.TextBytesBefore = Stats.InstructionsTotal * 4;

  bool Full = Opts.Level == OmLevel::Full;
  bool DoOpt = Opts.Level != OmLevel::None;

  // Stage-granular invariant checking (om/Verify.h): each emission stage
  // that mutates the symbolic form re-validates it before the next stage
  // consumes it, so a verification failure names the guilty stage.
  auto checkStage = [&](const char *Stage) -> Error {
    if (!Opts.VerifyEachStage)
      return Error::success();
    auto Start = std::chrono::steady_clock::now();
    Error E = verifyStage(SP, Stage, &Pool);
    Stats.Seconds.Verify +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    return E;
  };

  auto AddrStart = std::chrono::steady_clock::now();
  // Converted calls that could overrun the 21-bit BSR reach revert to
  // their JSR before the first layout, so their literals keep GAT slots.
  if (DoOpt)
    if (Error E = relaxDirectCalls())
      return Result<Image>::failure(E.message());
  // Literal ownership is final after the relaxation; the decision and
  // rewrite loops below fan out over this per-procedure partition.
  partitionLiterals();
  DataLayout DL = layoutData(/*IncludeAllLiterals=*/!Full);
  if (DoOpt) {
    if (Full) {
      // Fixpoint: decisions shrink the GAT, which moves data closer to
      // GP, which enables more decisions.
      for (unsigned Round = 0; Round < 8; ++Round) {
        bool Changed = decideAddressLoads(DL, /*Commit=*/true);
        DataLayout Next = layoutData(/*IncludeAllLiterals=*/false);
        bool Same = Next.GatBytes == DL.GatBytes;
        DL = std::move(Next);
        if (!Changed && Same)
          break;
      }
    } else {
      decideAddressLoads(DL, /*Commit=*/true);
    }
    Error RewriteErr = applyRewrites(DL);
    Ctx.invalidate(); // decisions and rewrites changed the instructions
    if (RewriteErr)
      return Result<Image>::failure(RewriteErr.message());
    Stats.Seconds.AddressLoads +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      AddrStart)
            .count();
    if (Error E = checkStage("address-loads"))
      return Result<Image>::failure(E.message());
  }

  // Address-load accounting must precede deletion (deleted loads vanish).
  {
    std::vector<uint64_t> ConvInProc(SP.Procs.size(), 0);
    std::vector<uint64_t> NullInProc(SP.Procs.size(), 0);
    Pool.parallelFor(SP.Procs.size(), [&](size_t P) {
      for (const SymInst &SI : SP.Procs[P].Insts)
        if (SI.Kind == SKind::AddressLoad) {
          if (SI.Converted)
            ++ConvInProc[P];
          else if (SI.Nullified)
            ++NullInProc[P];
        }
    });
    for (size_t P = 0; P < SP.Procs.size(); ++P) {
      Stats.AddressLoadsConverted += ConvInProc[P];
      Stats.AddressLoadsNullified += NullInProc[P];
    }
  }

  // Deletion and code motion happen only at full level; counts feed the
  // statistics either way.
  if (Full) {
    auto MotionStart = std::chrono::steady_clock::now();
    auto motionSeconds = [&] {
      Stats.Seconds.CodeMotion +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        MotionStart)
              .count();
      MotionStart = std::chrono::steady_clock::now();
    };
    deleteNullified();
    motionSeconds();
    if (Error E = checkStage("delete-nullified"))
      return Result<Image>::failure(E.message());
    if (Opts.Reschedule) {
      MotionStart = std::chrono::steady_clock::now();
      reschedule();
      motionSeconds();
      if (Error E = checkStage("reschedule"))
        return Result<Image>::failure(E.message());
    }
    if (Opts.InstrumentProcedureCounts) {
      MotionStart = std::chrono::steady_clock::now();
      instrumentProcedureCounts();
      motionSeconds();
      if (Error E = checkStage("instrument"))
        return Result<Image>::failure(E.message());
    }
    if (Opts.HotColdLayout && LayoutAllowed) {
      // Last of the code-motion stages: every other transform is done, so
      // the block structure the profile keyed against is final. The
      // procedure order applied here is the one relaxDirectCalls already
      // validated every BSR against.
      MotionStart = std::chrono::steady_clock::now();
      std::string LayoutErr;
      bool Ok = runProfileLayout(SP, Opts, Stats, Pool, LayoutErr, ProcOrder);
      Ctx.invalidate();
      motionSeconds();
      if (!Ok)
        return Result<Image>::failure(LayoutErr);
      if (Error E = checkStage("profile-layout"))
        return Result<Image>::failure(E.message());
    }
  }

  auto AssembleStart = std::chrono::steady_clock::now();
  Result<Image> Img = assemble(DL);
  Stats.Seconds.Assemble +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    AssembleStart)
          .count();
  if (!Img)
    return Img;
  finalizeStats(DL);
  return Img;
}

Result<Image> om64::om::layoutAndEmit(SymbolicProgram &SP,
                                      const OmOptions &Opts,
                                      OmStats &Stats,
                                      std::vector<std::string> &Sites,
                                      OmContext &Ctx) {
  Emitter E(SP, Opts, Stats, Ctx);
  Result<Image> Img = E.run();
  Sites = std::move(E.ProfiledSites);
  return Img;
}

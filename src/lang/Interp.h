//===- lang/Interp.h - Reference AST interpreter ---------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct AST interpreter with semantics bit-identical to the compiled
/// pipeline, used as the oracle for differential testing: for any valid
/// program, interpret(P) must produce the same output stream and exit code
/// as compiling, linking (with or without OM at any level), and simulating
/// it. This includes replicating the runtime library's software division
/// exactly (shift-subtract, divq(x, 0) == 0) and the simulator's
/// conversion clamping.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_LANG_INTERP_H
#define OM64_LANG_INTERP_H

#include "lang/AST.h"

#include <cstdint>
#include <string>

namespace om64 {
namespace lang {

/// Outcome of an interpreted run.
struct InterpResult {
  bool Ok = false;
  std::string Error;       // set when !Ok (OOB index, step budget, ...)
  int64_t ExitCode = 0;
  std::string Output;      // the pal_put* stream
};

/// Interprets \p P from its entry point. \p MaxSteps bounds the number of
/// statements+expressions evaluated (runaway guard).
InterpResult interpret(const Program &P, uint64_t MaxSteps = 50000000);

/// The runtime library's division, emulated bit-exactly (exposed for unit
/// tests comparing against rt.divq on the simulator).
int64_t emulatedDivq(int64_t A, int64_t B);
int64_t emulatedRemq(int64_t A, int64_t B);

} // namespace lang
} // namespace om64

#endif // OM64_LANG_INTERP_H

//===- lang/Sema.cpp -------------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "support/Format.h"

#include <map>

using namespace om64;
using namespace om64::lang;

Builtin om64::lang::lookupBuiltin(const std::string &Name) {
  static const std::map<std::string, Builtin> Builtins = {
      {"trunc", Builtin::Trunc},
      {"toreal", Builtin::ToReal},
      {"pal_putint", Builtin::PalPutInt},
      {"pal_putchar", Builtin::PalPutChar},
      {"pal_putreal", Builtin::PalPutReal},
      {"pal_halt", Builtin::PalHalt},
      {"pal_cycles", Builtin::PalCycles}};
  auto It = Builtins.find(Name);
  return It == Builtins.end() ? Builtin::None : It->second;
}

namespace {

/// Per-module analysis state.
class SemaModule {
public:
  SemaModule(Program &P, Module &M, DiagnosticEngine &Diags)
      : P(P), M(M), Diags(Diags) {}

  bool run();

private:
  void error(SourceLoc Loc, std::string Message) {
    Diags.error(M.Name, Loc, std::move(Message));
  }

  /// Finds a global variable visible under (Qualifier, Name); reports
  /// errors itself. Sets ModuleOut to the defining module.
  const GlobalVar *resolveGlobal(SourceLoc Loc, const std::string &Qualifier,
                                 const std::string &Name,
                                 std::string &ModuleOut, bool Quiet = false);

  /// Same for functions.
  const Function *resolveFunction(SourceLoc Loc, const std::string &Qualifier,
                                  const std::string &Name,
                                  std::string &ModuleOut, bool Quiet = false);

  bool isImported(const std::string &Name) const {
    for (const std::string &I : M.Imports)
      if (I == Name)
        return true;
    return false;
  }

  bool analyzeFunction(Function &F);
  bool analyzeStmt(Function &F, Stmt &S);
  bool analyzeExpr(Function &F, Expr &E);
  bool analyzeCall(Function &F, Expr &E);

  /// Resolves a bare identifier against params/locals. Returns true and
  /// fills the Expr if found.
  bool resolveLocal(Function &F, Expr &E);

  Program &P;
  Module &M;
  DiagnosticEngine &Diags;
};

} // namespace

const GlobalVar *SemaModule::resolveGlobal(SourceLoc Loc,
                                           const std::string &Qualifier,
                                           const std::string &Name,
                                           std::string &ModuleOut,
                                           bool Quiet) {
  if (Qualifier.empty()) {
    if (const GlobalVar *G = M.findGlobal(Name)) {
      ModuleOut = M.Name;
      return G;
    }
    if (!Quiet)
      error(Loc, formatString("undeclared variable '%s'", Name.c_str()));
    return nullptr;
  }
  if (!isImported(Qualifier)) {
    if (!Quiet)
      error(Loc, formatString("module '%s' is not imported",
                              Qualifier.c_str()));
    return nullptr;
  }
  const Module *Other = P.findModule(Qualifier);
  if (!Other) {
    if (!Quiet)
      error(Loc, formatString("imported module '%s' is not part of the "
                              "program",
                              Qualifier.c_str()));
    return nullptr;
  }
  const GlobalVar *G = Other->findGlobal(Name);
  if (!G || !G->Exported) {
    if (!Quiet)
      error(Loc, formatString("module '%s' does not export variable '%s'",
                              Qualifier.c_str(), Name.c_str()));
    return nullptr;
  }
  ModuleOut = Qualifier;
  return G;
}

const Function *SemaModule::resolveFunction(SourceLoc Loc,
                                            const std::string &Qualifier,
                                            const std::string &Name,
                                            std::string &ModuleOut,
                                            bool Quiet) {
  if (Qualifier.empty()) {
    if (const Function *F = M.findFunction(Name)) {
      ModuleOut = M.Name;
      return F;
    }
    if (!Quiet)
      error(Loc, formatString("undeclared function '%s'", Name.c_str()));
    return nullptr;
  }
  if (!isImported(Qualifier)) {
    if (!Quiet)
      error(Loc, formatString("module '%s' is not imported",
                              Qualifier.c_str()));
    return nullptr;
  }
  const Module *Other = P.findModule(Qualifier);
  if (!Other) {
    if (!Quiet)
      error(Loc, formatString("imported module '%s' is not part of the "
                              "program",
                              Qualifier.c_str()));
    return nullptr;
  }
  const Function *F = Other->findFunction(Name);
  if (!F || !F->Exported) {
    if (!Quiet)
      error(Loc, formatString("module '%s' does not export function '%s'",
                              Qualifier.c_str(), Name.c_str()));
    return nullptr;
  }
  ModuleOut = Qualifier;
  return F;
}

bool SemaModule::resolveLocal(Function &F, Expr &E) {
  for (uint32_t Idx = 0; Idx < F.Params.size(); ++Idx)
    if (F.Params[Idx].Name == E.Name) {
      E.Ref = RefKind::Param;
      E.SlotIndex = Idx;
      E.Ty = F.Params[Idx].Ty;
      return true;
    }
  for (uint32_t Idx = 0; Idx < F.Locals.size(); ++Idx)
    if (F.Locals[Idx].Name == E.Name) {
      E.Ref = RefKind::Local;
      E.SlotIndex = Idx;
      E.Ty = F.Locals[Idx].Ty;
      return true;
    }
  return false;
}

bool SemaModule::analyzeCall(Function &F, Expr &E) {
  for (ExprPtr &Arg : E.Args)
    if (!analyzeExpr(F, *Arg))
      return false;

  // Builtins are checked first; their names are reserved.
  if (E.Qualifier.empty()) {
    Builtin B = lookupBuiltin(E.Name);
    if (B != Builtin::None) {
      E.BuiltinFunc = B;
      auto requireArgs = [&](size_t N, TypeKind Arg0) {
        if (E.Args.size() != N) {
          error(E.Loc, formatString("builtin '%s' takes %zu argument(s)",
                                    E.Name.c_str(), N));
          return false;
        }
        if (N == 1 && E.Args[0]->Ty.Kind != Arg0) {
          error(E.Loc, formatString("builtin '%s' argument has wrong type",
                                    E.Name.c_str()));
          return false;
        }
        return true;
      };
      switch (B) {
      case Builtin::Trunc:
        if (!requireArgs(1, TypeKind::Real))
          return false;
        E.Ty = {TypeKind::Int, 0};
        return true;
      case Builtin::ToReal:
        if (!requireArgs(1, TypeKind::Int))
          return false;
        E.Ty = {TypeKind::Real, 0};
        return true;
      case Builtin::PalPutInt:
      case Builtin::PalPutChar:
      case Builtin::PalHalt:
        if (!requireArgs(1, TypeKind::Int))
          return false;
        E.Ty = {TypeKind::Void, 0};
        return true;
      case Builtin::PalPutReal:
        if (!requireArgs(1, TypeKind::Real))
          return false;
        E.Ty = {TypeKind::Void, 0};
        return true;
      case Builtin::PalCycles:
        if (!requireArgs(0, TypeKind::Void))
          return false;
        E.Ty = {TypeKind::Int, 0};
        return true;
      case Builtin::None:
        break;
      }
    }

    // Indirect call through a funcptr local/param/global?
    Expr Probe;
    Probe.Name = E.Name;
    if (resolveLocal(F, Probe)) {
      if (!Probe.Ty.isFuncPtr()) {
        // Fall through to direct-function resolution only if a function by
        // this name exists; otherwise it's a call of a non-funcptr variable.
        std::string Mod;
        if (!resolveFunction(E.Loc, "", E.Name, Mod, /*Quiet=*/true)) {
          error(E.Loc, formatString("'%s' is not callable", E.Name.c_str()));
          return false;
        }
      } else {
        E.IsIndirectCall = true;
        E.Ref = Probe.Ref;
        E.SlotIndex = Probe.SlotIndex;
        if (E.Args.size() > 6) {
          error(E.Loc, "indirect calls support at most 6 arguments");
          return false;
        }
        for (const ExprPtr &Arg : E.Args)
          if (!Arg->Ty.isInt()) {
            error(E.Loc, "indirect call arguments must be int");
            return false;
          }
        E.Ty = {TypeKind::Int, 0};
        return true;
      }
    } else {
      std::string Mod;
      const GlobalVar *G = resolveGlobal(E.Loc, "", E.Name, Mod,
                                         /*Quiet=*/true);
      if (G && G->Ty.isFuncPtr()) {
        E.IsIndirectCall = true;
        E.Ref = RefKind::Global;
        E.TargetModule = Mod;
        if (E.Args.size() > 6) {
          error(E.Loc, "indirect calls support at most 6 arguments");
          return false;
        }
        for (const ExprPtr &Arg : E.Args)
          if (!Arg->Ty.isInt()) {
            error(E.Loc, "indirect call arguments must be int");
            return false;
          }
        E.Ty = {TypeKind::Int, 0};
        return true;
      }
    }
  }

  // Direct call.
  std::string Mod;
  const Function *Callee = resolveFunction(E.Loc, E.Qualifier, E.Name, Mod);
  if (!Callee)
    return false;
  E.Ref = RefKind::Function;
  E.TargetModule = Mod;
  if (E.Args.size() != Callee->Params.size()) {
    error(E.Loc,
          formatString("call to '%s' passes %zu arguments, expected %zu",
                       E.Name.c_str(), E.Args.size(), Callee->Params.size()));
    return false;
  }
  if (E.Args.size() > 6) {
    error(E.Loc, "calls support at most 6 arguments");
    return false;
  }
  for (size_t Idx = 0; Idx < E.Args.size(); ++Idx)
    if (!(E.Args[Idx]->Ty == Callee->Params[Idx].Ty)) {
      error(E.Loc, formatString("argument %zu of call to '%s' has type %s, "
                                "expected %s",
                                Idx + 1, E.Name.c_str(),
                                E.Args[Idx]->Ty.str().c_str(),
                                Callee->Params[Idx].Ty.str().c_str()));
      return false;
    }
  E.Ty = Callee->ReturnType;
  return true;
}

bool SemaModule::analyzeExpr(Function &F, Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    E.Ty = {TypeKind::Int, 0};
    return true;
  case Expr::Kind::RealLit:
    E.Ty = {TypeKind::Real, 0};
    return true;
  case Expr::Kind::VarRef: {
    if (E.Qualifier.empty() && resolveLocal(F, E))
      return true;
    std::string Mod;
    const GlobalVar *G = resolveGlobal(E.Loc, E.Qualifier, E.Name, Mod);
    if (!G)
      return false;
    if (G->Ty.isArray()) {
      error(E.Loc, formatString("array '%s' must be indexed", E.Name.c_str()));
      return false;
    }
    E.Ref = RefKind::Global;
    E.TargetModule = Mod;
    E.Ty = G->Ty;
    return true;
  }
  case Expr::Kind::Index: {
    if (!analyzeExpr(F, *E.Args[0]))
      return false;
    if (!E.Args[0]->Ty.isInt()) {
      error(E.Loc, "array index must be int");
      return false;
    }
    std::string Mod;
    const GlobalVar *G = resolveGlobal(E.Loc, E.Qualifier, E.Name, Mod);
    if (!G)
      return false;
    if (!G->Ty.isArray()) {
      error(E.Loc, formatString("'%s' is not an array", E.Name.c_str()));
      return false;
    }
    E.Ref = RefKind::Global;
    E.TargetModule = Mod;
    E.Ty = G->Ty.element();
    return true;
  }
  case Expr::Kind::Unary: {
    if (!analyzeExpr(F, *E.Args[0]))
      return false;
    Type OpTy = E.Args[0]->Ty;
    if (E.Op == Tok::Minus) {
      if (!OpTy.isInt() && !OpTy.isReal()) {
        error(E.Loc, "unary '-' requires int or real");
        return false;
      }
      E.Ty = OpTy;
      return true;
    }
    if (!OpTy.isInt()) {
      error(E.Loc, "'not' requires int");
      return false;
    }
    E.Ty = OpTy;
    return true;
  }
  case Expr::Kind::Binary: {
    if (!analyzeExpr(F, *E.Args[0]) || !analyzeExpr(F, *E.Args[1]))
      return false;
    Type L = E.Args[0]->Ty, R = E.Args[1]->Ty;
    if (!(L == R)) {
      error(E.Loc, formatString("operand type mismatch: %s vs %s (use "
                                "toreal/trunc to convert)",
                                L.str().c_str(), R.str().c_str()));
      return false;
    }
    bool IsCompare = E.Op == Tok::EqEq || E.Op == Tok::NotEq ||
                     E.Op == Tok::Less || E.Op == Tok::LessEq ||
                     E.Op == Tok::Greater || E.Op == Tok::GreaterEq;
    bool IntOnly = E.Op == Tok::Percent || E.Op == Tok::Shl ||
                   E.Op == Tok::Shr || E.Op == Tok::BitAnd ||
                   E.Op == Tok::BitOr || E.Op == Tok::BitXor ||
                   E.Op == Tok::KwAnd || E.Op == Tok::KwOr;
    if (L.isFuncPtr()) {
      error(E.Loc, "funcptr values support no operators");
      return false;
    }
    if (IntOnly && !L.isInt()) {
      error(E.Loc, "this operator requires int operands");
      return false;
    }
    E.Ty = IsCompare ? Type{TypeKind::Int, 0} : L;
    return true;
  }
  case Expr::Kind::Call:
    return analyzeCall(F, E);
  case Expr::Kind::AddrOf: {
    std::string Mod;
    const Function *Target =
        resolveFunction(E.Loc, E.Qualifier, E.Name, Mod);
    if (!Target)
      return false;
    // A procedure whose address is taken can be reached indirectly; all
    // indirect-call signatures are (int...)->int in MLang.
    E.Ref = RefKind::Function;
    E.TargetModule = Mod;
    E.Ty = {TypeKind::FuncPtr, 0};
    return true;
  }
  }
  return false;
}

bool SemaModule::analyzeStmt(Function &F, Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Assign: {
    if (!analyzeExpr(F, *S.Target) || !analyzeExpr(F, *S.Value))
      return false;
    if (!(S.Target->Ty == S.Value->Ty)) {
      error(S.Loc, formatString("cannot assign %s to %s",
                                S.Value->Ty.str().c_str(),
                                S.Target->Ty.str().c_str()));
      return false;
    }
    return true;
  }
  case Stmt::Kind::ExprStmt:
    return analyzeExpr(F, *S.Value);
  case Stmt::Kind::If:
  case Stmt::Kind::While: {
    if (!analyzeExpr(F, *S.Value))
      return false;
    if (!S.Value->Ty.isInt()) {
      error(S.Loc, "condition must be int");
      return false;
    }
    for (StmtPtr &Child : S.Body)
      if (!analyzeStmt(F, *Child))
        return false;
    for (StmtPtr &Child : S.ElseBody)
      if (!analyzeStmt(F, *Child))
        return false;
    return true;
  }
  case Stmt::Kind::Return: {
    if (S.Value) {
      if (!analyzeExpr(F, *S.Value))
        return false;
      if (!(S.Value->Ty == F.ReturnType)) {
        error(S.Loc, formatString("return type mismatch: %s, expected %s",
                                  S.Value->Ty.str().c_str(),
                                  F.ReturnType.str().c_str()));
        return false;
      }
    } else if (F.ReturnType.Kind != TypeKind::Void) {
      error(S.Loc, "non-void function must return a value");
      return false;
    }
    return true;
  }
  case Stmt::Kind::Block:
    for (StmtPtr &Child : S.Body)
      if (!analyzeStmt(F, *Child))
        return false;
    return true;
  }
  return false;
}

bool SemaModule::analyzeFunction(Function &F) {
  // Reject duplicate parameter/local names.
  for (size_t I = 0; I < F.Params.size(); ++I)
    for (size_t J = I + 1; J < F.Params.size(); ++J)
      if (F.Params[I].Name == F.Params[J].Name) {
        error(F.Loc, formatString("duplicate parameter '%s'",
                                  F.Params[I].Name.c_str()));
        return false;
      }
  for (size_t I = 0; I < F.Locals.size(); ++I) {
    for (size_t J = I + 1; J < F.Locals.size(); ++J)
      if (F.Locals[I].Name == F.Locals[J].Name) {
        error(F.Loc, formatString("duplicate local '%s'",
                                  F.Locals[I].Name.c_str()));
        return false;
      }
    for (const LocalVar &Param : F.Params)
      if (Param.Name == F.Locals[I].Name) {
        error(F.Loc, formatString("local '%s' shadows a parameter",
                                  F.Locals[I].Name.c_str()));
        return false;
      }
  }
  if (F.Params.size() > 6) {
    error(F.Loc, "functions support at most 6 parameters");
    return false;
  }
  bool Ok = true;
  for (StmtPtr &S : F.Body)
    Ok = analyzeStmt(F, *S) && Ok;
  return Ok;
}

bool SemaModule::run() {
  // Duplicate top-level names within the module.
  for (size_t I = 0; I < M.Globals.size(); ++I)
    for (size_t J = I + 1; J < M.Globals.size(); ++J)
      if (M.Globals[I].Name == M.Globals[J].Name) {
        error(M.Globals[J].Loc, formatString("duplicate global '%s'",
                                             M.Globals[J].Name.c_str()));
        return false;
      }
  for (size_t I = 0; I < M.Functions.size(); ++I)
    for (size_t J = I + 1; J < M.Functions.size(); ++J)
      if (M.Functions[I].Name == M.Functions[J].Name) {
        error(M.Functions[J].Loc, formatString("duplicate function '%s'",
                                               M.Functions[J].Name.c_str()));
        return false;
      }
  for (const GlobalVar &G : M.Globals)
    for (const Function &F : M.Functions)
      if (G.Name == F.Name) {
        error(G.Loc, formatString("'%s' declared as both variable and "
                                  "function",
                                  G.Name.c_str()));
        return false;
      }

  for (const std::string &Import : M.Imports)
    if (!P.findModule(Import)) {
      Diags.error(M.Name, SourceLoc{1, 1},
                  formatString("imported module '%s' not found",
                               Import.c_str()));
      return false;
    }

  bool Ok = true;
  for (Function &F : M.Functions)
    Ok = analyzeFunction(F) && Ok;
  return Ok;
}

bool om64::lang::analyzeProgram(Program &P, DiagnosticEngine &Diags) {
  // Duplicate module names break the flat "module.name" symbol space.
  for (size_t I = 0; I < P.Modules.size(); ++I)
    for (size_t J = I + 1; J < P.Modules.size(); ++J)
      if (P.Modules[I].Name == P.Modules[J].Name) {
        Diags.error(P.Modules[J].Name, SourceLoc{1, 1},
                    "duplicate module name in program");
        return false;
      }
  bool Ok = true;
  for (Module &M : P.Modules)
    Ok = SemaModule(P, M, Diags).run() && Ok;
  return Ok;
}

bool om64::lang::checkEntryPoint(const Program &P, DiagnosticEngine &Diags,
                                 bool RequireMain) {
  const Function *Main = nullptr;
  const Module *MainModule = nullptr;
  for (const Module &M : P.Modules)
    if (const Function *F = M.findFunction("main")) {
      if (Main) {
        Diags.error(M.Name, F->Loc, "multiple definitions of 'main'");
        return false;
      }
      Main = F;
      MainModule = &M;
    }
  if (!Main)
    return !RequireMain ||
           (Diags.error("<program>", SourceLoc{1, 1},
                        "no 'main' function in program"),
            false);
  if (!Main->Exported || !Main->Params.empty() ||
      Main->ReturnType.Kind != TypeKind::Int) {
    Diags.error(MainModule->Name, Main->Loc,
                "'main' must be exported, take no parameters, and return int");
    return false;
  }
  return true;
}

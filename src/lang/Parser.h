//===- lang/Parser.h - MLang recursive-descent parser ---------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_LANG_PARSER_H
#define OM64_LANG_PARSER_H

#include "lang/AST.h"
#include "support/Result.h"

#include <optional>

namespace om64 {
namespace lang {

/// Parses one module from \p Src. On syntax errors, diagnostics are added
/// to \p Diags and std::nullopt is returned.
std::optional<Module> parseModule(const std::string &BufferName,
                                  const std::string &Src,
                                  DiagnosticEngine &Diags);

} // namespace lang
} // namespace om64

#endif // OM64_LANG_PARSER_H

//===- lang/Sema.h - MLang semantic analysis -------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking over a whole Program. Sema annotates
/// the AST in place (Expr::Ty, Expr::Ref, Expr::TargetModule, ...) with the
/// facts code generation consumes.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_LANG_SEMA_H
#define OM64_LANG_SEMA_H

#include "lang/AST.h"

namespace om64 {
namespace lang {

/// Resolves and type-checks every module of \p P. Returns false (with
/// diagnostics in \p Diags) on any error. Must be run before codegen.
bool analyzeProgram(Program &P, DiagnosticEngine &Diags);

/// Checks the per-program entry requirements: an exported, parameterless,
/// int-returning function "main" exists in exactly one module of \p P.
/// Library-only builds (no main) pass \p RequireMain = false.
bool checkEntryPoint(const Program &P, DiagnosticEngine &Diags,
                     bool RequireMain = true);

/// Returns the builtin binding of \p Name, or Builtin::None.
Builtin lookupBuiltin(const std::string &Name);

} // namespace lang
} // namespace om64

#endif // OM64_LANG_SEMA_H

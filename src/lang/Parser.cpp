//===- lang/Parser.cpp -----------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "support/Format.h"

using namespace om64;
using namespace om64::lang;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:      return "void";
  case TypeKind::Int:       return "int";
  case TypeKind::Real:      return "real";
  case TypeKind::FuncPtr:   return "funcptr";
  case TypeKind::IntArray:  return formatString("int[%u]", ArraySize);
  case TypeKind::RealArray: return formatString("real[%u]", ArraySize);
  }
  return "?";
}

namespace {

/// Recursive-descent parser over the token stream. Any error aborts the
/// parse of the module; error recovery is not needed because all MLang
/// sources in this project are machine-generated or test inputs.
class Parser {
public:
  Parser(const std::string &BufferName, std::vector<Token> Tokens,
         DiagnosticEngine &Diags)
      : BufferName(BufferName), Tokens(std::move(Tokens)), Diags(Diags) {}

  std::optional<Module> parseModuleDecl();

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t Idx = Pos + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(Tok K) const { return peek().Kind == K; }
  bool match(Tok K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(Tok K, const char *Context) {
    if (match(K))
      return true;
    error(formatString("expected %s %s, found %s", tokenName(K), Context,
                       tokenName(peek().Kind)));
    return false;
  }
  void error(std::string Message) {
    if (!Failed)
      Diags.error(BufferName, peek().Loc, std::move(Message));
    Failed = true;
  }

  std::optional<Type> parseType(bool AllowArray);
  bool parseGlobal(Module &M, bool Exported);
  bool parseFunction(Module &M, bool Exported);
  bool parseLocals(Function &F);
  StmtPtr parseStmt();
  StmtPtr parseBlockInto(std::vector<StmtPtr> &Body);
  bool parseBlockBody(std::vector<StmtPtr> &Body);

  // Expression precedence climbing.
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseBitOr();
  ExprPtr parseBitXor();
  ExprPtr parseBitAnd();
  ExprPtr parseComparison();
  ExprPtr parseShift();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  const std::string &BufferName;
  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

std::optional<Type> Parser::parseType(bool AllowArray) {
  Type Ty;
  if (match(Tok::KwInt))
    Ty.Kind = TypeKind::Int;
  else if (match(Tok::KwReal))
    Ty.Kind = TypeKind::Real;
  else if (match(Tok::KwFuncPtr))
    Ty.Kind = TypeKind::FuncPtr;
  else {
    error(formatString("expected a type, found %s", tokenName(peek().Kind)));
    return std::nullopt;
  }
  if (check(Tok::LBracket)) {
    if (!AllowArray || Ty.Kind == TypeKind::FuncPtr) {
      error("array types are only allowed on module-level int/real variables");
      return std::nullopt;
    }
    advance();
    if (!check(Tok::IntLiteral)) {
      error("expected array size literal");
      return std::nullopt;
    }
    int64_t N = advance().IntValue;
    if (N <= 0 || N > (1 << 24)) {
      error("array size out of range");
      return std::nullopt;
    }
    Ty.Kind = Ty.Kind == TypeKind::Int ? TypeKind::IntArray
                                       : TypeKind::RealArray;
    Ty.ArraySize = static_cast<uint32_t>(N);
    if (!expect(Tok::RBracket, "after array size"))
      return std::nullopt;
  }
  return Ty;
}

bool Parser::parseGlobal(Module &M, bool Exported) {
  GlobalVar G;
  G.Exported = Exported;
  G.Loc = peek().Loc;
  if (!check(Tok::Identifier)) {
    error("expected variable name");
    return false;
  }
  G.Name = advance().Text;
  if (!expect(Tok::Colon, "after variable name"))
    return false;
  std::optional<Type> Ty = parseType(/*AllowArray=*/true);
  if (!Ty)
    return false;
  G.Ty = *Ty;
  if (match(Tok::Assign)) {
    if (G.Ty.isArray()) {
      error("array variables cannot have initializers");
      return false;
    }
    bool Neg = match(Tok::Minus);
    if (check(Tok::IntLiteral)) {
      G.HasInit = true;
      G.IntInit = advance().IntValue * (Neg ? -1 : 1);
      if (G.Ty.isReal()) {
        G.RealInit = static_cast<double>(G.IntInit);
      }
    } else if (check(Tok::RealLiteral)) {
      G.HasInit = true;
      G.RealInit = advance().RealValue * (Neg ? -1.0 : 1.0);
      if (!G.Ty.isReal()) {
        error("real initializer on non-real variable");
        return false;
      }
    } else {
      error("expected literal initializer");
      return false;
    }
  }
  if (!expect(Tok::Semicolon, "after variable declaration"))
    return false;
  M.Globals.push_back(std::move(G));
  return true;
}

bool Parser::parseLocals(Function &F) {
  while (check(Tok::KwVar)) {
    advance();
    LocalVar L;
    L.Loc = peek().Loc;
    if (!check(Tok::Identifier)) {
      error("expected local variable name");
      return false;
    }
    L.Name = advance().Text;
    if (!expect(Tok::Colon, "after local variable name"))
      return false;
    std::optional<Type> Ty = parseType(/*AllowArray=*/false);
    if (!Ty)
      return false;
    L.Ty = *Ty;
    if (!expect(Tok::Semicolon, "after local variable declaration"))
      return false;
    F.Locals.push_back(std::move(L));
  }
  return true;
}

bool Parser::parseFunction(Module &M, bool Exported) {
  Function F;
  F.Exported = Exported;
  F.Loc = peek().Loc;
  if (!check(Tok::Identifier)) {
    error("expected function name");
    return false;
  }
  F.Name = advance().Text;
  if (!expect(Tok::LParen, "after function name"))
    return false;
  if (!check(Tok::RParen)) {
    do {
      LocalVar P;
      P.Loc = peek().Loc;
      if (!check(Tok::Identifier)) {
        error("expected parameter name");
        return false;
      }
      P.Name = advance().Text;
      if (!expect(Tok::Colon, "after parameter name"))
        return false;
      std::optional<Type> Ty = parseType(/*AllowArray=*/false);
      if (!Ty)
        return false;
      P.Ty = *Ty;
      F.Params.push_back(std::move(P));
    } while (match(Tok::Comma));
  }
  if (!expect(Tok::RParen, "after parameters"))
    return false;
  if (match(Tok::Colon)) {
    std::optional<Type> Ty = parseType(/*AllowArray=*/false);
    if (!Ty)
      return false;
    F.ReturnType = *Ty;
  }
  if (!expect(Tok::LBrace, "to begin function body"))
    return false;
  if (!parseLocals(F))
    return false;
  if (!parseBlockBody(F.Body))
    return false;
  M.Functions.push_back(std::move(F));
  return true;
}

bool Parser::parseBlockBody(std::vector<StmtPtr> &Body) {
  while (!check(Tok::RBrace) && !check(Tok::EndOfFile) && !Failed) {
    StmtPtr S = parseStmt();
    if (!S)
      return false;
    Body.push_back(std::move(S));
  }
  return expect(Tok::RBrace, "to close block");
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;
  if (match(Tok::KwIf)) {
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::If;
    S->Loc = Loc;
    if (!expect(Tok::LParen, "after 'if'"))
      return nullptr;
    S->Value = parseExpr();
    if (!S->Value || !expect(Tok::RParen, "after condition") ||
        !expect(Tok::LBrace, "to begin 'if' body") ||
        !parseBlockBody(S->Body))
      return nullptr;
    if (match(Tok::KwElse)) {
      if (check(Tok::KwIf)) { // else-if chains nest
        StmtPtr Nested = parseStmt();
        if (!Nested)
          return nullptr;
        S->ElseBody.push_back(std::move(Nested));
      } else if (!expect(Tok::LBrace, "to begin 'else' body") ||
                 !parseBlockBody(S->ElseBody)) {
        return nullptr;
      }
    }
    return S;
  }
  if (match(Tok::KwWhile)) {
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::While;
    S->Loc = Loc;
    if (!expect(Tok::LParen, "after 'while'"))
      return nullptr;
    S->Value = parseExpr();
    if (!S->Value || !expect(Tok::RParen, "after condition") ||
        !expect(Tok::LBrace, "to begin loop body") ||
        !parseBlockBody(S->Body))
      return nullptr;
    return S;
  }
  if (match(Tok::KwReturn)) {
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::Return;
    S->Loc = Loc;
    if (!check(Tok::Semicolon)) {
      S->Value = parseExpr();
      if (!S->Value)
        return nullptr;
    }
    if (!expect(Tok::Semicolon, "after 'return'"))
      return nullptr;
    return S;
  }

  // Assignment or expression statement, both starting with an expression.
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  auto S = std::make_unique<Stmt>();
  S->Loc = Loc;
  if (match(Tok::Assign)) {
    if (E->K != Expr::Kind::VarRef && E->K != Expr::Kind::Index) {
      error("assignment target must be a variable or array element");
      return nullptr;
    }
    S->K = Stmt::Kind::Assign;
    S->Target = std::move(E);
    S->Value = parseExpr();
    if (!S->Value)
      return nullptr;
  } else {
    if (E->K != Expr::Kind::Call) {
      error("only call expressions may stand alone as statements");
      return nullptr;
    }
    S->K = Stmt::Kind::ExprStmt;
    S->Value = std::move(E);
  }
  if (!expect(Tok::Semicolon, "after statement"))
    return nullptr;
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

static ExprPtr makeBinary(Tok Op, SourceLoc Loc, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>();
  E->K = Expr::Kind::Binary;
  E->Loc = Loc;
  E->Op = Op;
  E->Args.push_back(std::move(L));
  E->Args.push_back(std::move(R));
  return E;
}

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (L && check(Tok::KwOr)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseAnd();
    if (!R)
      return nullptr;
    L = makeBinary(Tok::KwOr, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseBitOr();
  while (L && check(Tok::KwAnd)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseBitOr();
    if (!R)
      return nullptr;
    L = makeBinary(Tok::KwAnd, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseBitOr() {
  ExprPtr L = parseBitXor();
  while (L && check(Tok::BitOr)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseBitXor();
    if (!R)
      return nullptr;
    L = makeBinary(Tok::BitOr, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseBitXor() {
  ExprPtr L = parseBitAnd();
  while (L && check(Tok::BitXor)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseBitAnd();
    if (!R)
      return nullptr;
    L = makeBinary(Tok::BitXor, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseBitAnd() {
  ExprPtr L = parseComparison();
  while (L && check(Tok::Amp)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseComparison();
    if (!R)
      return nullptr;
    L = makeBinary(Tok::BitAnd, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseComparison() {
  ExprPtr L = parseShift();
  while (L && (check(Tok::EqEq) || check(Tok::NotEq) || check(Tok::Less) ||
               check(Tok::LessEq) || check(Tok::Greater) ||
               check(Tok::GreaterEq))) {
    Tok Op = peek().Kind;
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseShift();
    if (!R)
      return nullptr;
    L = makeBinary(Op, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseShift() {
  ExprPtr L = parseAdditive();
  while (L && (check(Tok::Shl) || check(Tok::Shr))) {
    Tok Op = peek().Kind;
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseAdditive();
    if (!R)
      return nullptr;
    L = makeBinary(Op, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  while (L && (check(Tok::Plus) || check(Tok::Minus))) {
    Tok Op = peek().Kind;
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseMultiplicative();
    if (!R)
      return nullptr;
    L = makeBinary(Op, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  while (L &&
         (check(Tok::Star) || check(Tok::Slash) || check(Tok::Percent))) {
    Tok Op = peek().Kind;
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    L = makeBinary(Op, Loc, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (check(Tok::Minus) || check(Tok::KwNot)) {
    Tok Op = peek().Kind;
    SourceLoc Loc = advance().Loc;
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Unary;
    E->Loc = Loc;
    E->Op = Op;
    E->Args.push_back(std::move(Operand));
    return E;
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(Tok::IntLiteral)) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::IntLit;
    E->Loc = Loc;
    E->IntValue = advance().IntValue;
    return E;
  }
  if (check(Tok::RealLiteral)) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::RealLit;
    E->Loc = Loc;
    E->RealValue = advance().RealValue;
    return E;
  }
  if (match(Tok::LParen)) {
    ExprPtr E = parseExpr();
    if (!E || !expect(Tok::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  if (match(Tok::Amp)) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::AddrOf;
    E->Loc = Loc;
    if (!check(Tok::Identifier)) {
      error("expected function name after '&'");
      return nullptr;
    }
    E->Name = advance().Text;
    if (match(Tok::Dot)) {
      E->Qualifier = E->Name;
      if (!check(Tok::Identifier)) {
        error("expected name after module qualifier");
        return nullptr;
      }
      E->Name = advance().Text;
    }
    return E;
  }
  if (!check(Tok::Identifier)) {
    error(formatString("expected an expression, found %s",
                       tokenName(peek().Kind)));
    return nullptr;
  }

  auto E = std::make_unique<Expr>();
  E->Loc = Loc;
  E->Name = advance().Text;
  if (match(Tok::Dot)) {
    E->Qualifier = E->Name;
    if (!check(Tok::Identifier)) {
      error("expected name after module qualifier");
      return nullptr;
    }
    E->Name = advance().Text;
  }

  if (match(Tok::LParen)) {
    E->K = Expr::Kind::Call;
    if (!check(Tok::RParen)) {
      do {
        ExprPtr Arg = parseExpr();
        if (!Arg)
          return nullptr;
        E->Args.push_back(std::move(Arg));
      } while (match(Tok::Comma));
    }
    if (!expect(Tok::RParen, "after call arguments"))
      return nullptr;
    return E;
  }
  if (match(Tok::LBracket)) {
    E->K = Expr::Kind::Index;
    ExprPtr Idx = parseExpr();
    if (!Idx || !expect(Tok::RBracket, "after array index"))
      return nullptr;
    E->Args.push_back(std::move(Idx));
    return E;
  }
  E->K = Expr::Kind::VarRef;
  return E;
}

//===----------------------------------------------------------------------===//
// Module structure.
//===----------------------------------------------------------------------===//

std::optional<Module> Parser::parseModuleDecl() {
  Module M;
  if (!expect(Tok::KwModule, "at start of file"))
    return std::nullopt;
  if (!check(Tok::Identifier)) {
    error("expected module name");
    return std::nullopt;
  }
  M.Name = advance().Text;
  if (!expect(Tok::Semicolon, "after module name"))
    return std::nullopt;

  while (match(Tok::KwImport)) {
    if (!check(Tok::Identifier)) {
      error("expected imported module name");
      return std::nullopt;
    }
    M.Imports.push_back(advance().Text);
    if (!expect(Tok::Semicolon, "after import"))
      return std::nullopt;
  }

  while (!check(Tok::EndOfFile) && !Failed) {
    bool Exported = match(Tok::KwExport);
    if (match(Tok::KwVar)) {
      if (!parseGlobal(M, Exported))
        return std::nullopt;
    } else if (match(Tok::KwFunc)) {
      if (!parseFunction(M, Exported))
        return std::nullopt;
    } else {
      error(formatString("expected 'var' or 'func', found %s",
                         tokenName(peek().Kind)));
      return std::nullopt;
    }
  }
  if (Failed)
    return std::nullopt;
  return M;
}

std::optional<Module> om64::lang::parseModule(const std::string &BufferName,
                                              const std::string &Src,
                                              DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = lex(BufferName, Src, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  Parser P(BufferName, std::move(Tokens), Diags);
  return P.parseModuleDecl();
}

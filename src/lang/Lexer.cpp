//===- lang/Lexer.cpp ------------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace om64;
using namespace om64::lang;

const char *om64::lang::tokenName(Tok Kind) {
  switch (Kind) {
  case Tok::EndOfFile:   return "end of file";
  case Tok::Identifier:  return "identifier";
  case Tok::IntLiteral:  return "integer literal";
  case Tok::RealLiteral: return "real literal";
  case Tok::KwModule:    return "'module'";
  case Tok::KwImport:    return "'import'";
  case Tok::KwExport:    return "'export'";
  case Tok::KwVar:       return "'var'";
  case Tok::KwFunc:      return "'func'";
  case Tok::KwIf:        return "'if'";
  case Tok::KwElse:      return "'else'";
  case Tok::KwWhile:     return "'while'";
  case Tok::KwReturn:    return "'return'";
  case Tok::KwInt:       return "'int'";
  case Tok::KwReal:      return "'real'";
  case Tok::KwFuncPtr:   return "'funcptr'";
  case Tok::KwAnd:       return "'and'";
  case Tok::KwOr:        return "'or'";
  case Tok::KwNot:       return "'not'";
  case Tok::LParen:      return "'('";
  case Tok::RParen:      return "')'";
  case Tok::LBrace:      return "'{'";
  case Tok::RBrace:      return "'}'";
  case Tok::LBracket:    return "'['";
  case Tok::RBracket:    return "']'";
  case Tok::Comma:       return "','";
  case Tok::Semicolon:   return "';'";
  case Tok::Colon:       return "':'";
  case Tok::Dot:         return "'.'";
  case Tok::Assign:      return "'='";
  case Tok::Amp:         return "'&'";
  case Tok::Plus:        return "'+'";
  case Tok::Minus:       return "'-'";
  case Tok::Star:        return "'*'";
  case Tok::Slash:       return "'/'";
  case Tok::Percent:     return "'%'";
  case Tok::Shl:         return "'<<'";
  case Tok::Shr:         return "'>>'";
  case Tok::BitAnd:      return "'&'";
  case Tok::BitOr:       return "'|'";
  case Tok::BitXor:      return "'^'";
  case Tok::EqEq:        return "'=='";
  case Tok::NotEq:       return "'!='";
  case Tok::Less:        return "'<'";
  case Tok::LessEq:      return "'<='";
  case Tok::Greater:     return "'>'";
  case Tok::GreaterEq:   return "'>='";
  case Tok::Invalid:     return "invalid token";
  }
  return "?";
}

static Tok keywordKind(const std::string &Text) {
  static const std::map<std::string, Tok> Keywords = {
      {"module", Tok::KwModule}, {"import", Tok::KwImport},
      {"export", Tok::KwExport}, {"var", Tok::KwVar},
      {"func", Tok::KwFunc},     {"if", Tok::KwIf},
      {"else", Tok::KwElse},     {"while", Tok::KwWhile},
      {"return", Tok::KwReturn}, {"int", Tok::KwInt},
      {"real", Tok::KwReal},     {"funcptr", Tok::KwFuncPtr},
      {"and", Tok::KwAnd},       {"or", Tok::KwOr},
      {"not", Tok::KwNot}};
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? Tok::Identifier : It->second;
}

namespace {
class LexerImpl {
public:
  LexerImpl(const std::string &BufferName, const std::string &Src,
            DiagnosticEngine &Diags)
      : BufferName(BufferName), Src(Src), Diags(Diags) {}

  std::vector<Token> run();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }
  SourceLoc here() const { return {Line, Column}; }

  void lexNumber(std::vector<Token> &Out);
  void lexIdentifier(std::vector<Token> &Out);

  const std::string &BufferName;
  const std::string &Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};
} // namespace

void LexerImpl::lexNumber(std::vector<Token> &Out) {
  Token T;
  T.Loc = here();
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsReal = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsReal = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsReal = true;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save; // not an exponent after all
    }
  }
  std::string Text = Src.substr(Start, Pos - Start);
  if (IsReal) {
    T.Kind = Tok::RealLiteral;
    T.RealValue = std::strtod(Text.c_str(), nullptr);
  } else {
    T.Kind = Tok::IntLiteral;
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
  }
  Out.push_back(std::move(T));
}

void LexerImpl::lexIdentifier(std::vector<Token> &Out) {
  Token T;
  T.Loc = here();
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  T.Text = Src.substr(Start, Pos - Start);
  T.Kind = keywordKind(T.Text);
  Out.push_back(std::move(T));
}

std::vector<Token> LexerImpl::run() {
  std::vector<Token> Out;
  while (Pos < Src.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '#') { // line comment
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber(Out);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      lexIdentifier(Out);
      continue;
    }

    Token T;
    T.Loc = here();
    advance();
    auto two = [&](char Next, Tok IfTwo, Tok IfOne) {
      if (peek() == Next) {
        advance();
        return IfTwo;
      }
      return IfOne;
    };
    switch (C) {
    case '(': T.Kind = Tok::LParen; break;
    case ')': T.Kind = Tok::RParen; break;
    case '{': T.Kind = Tok::LBrace; break;
    case '}': T.Kind = Tok::RBrace; break;
    case '[': T.Kind = Tok::LBracket; break;
    case ']': T.Kind = Tok::RBracket; break;
    case ',': T.Kind = Tok::Comma; break;
    case ';': T.Kind = Tok::Semicolon; break;
    case ':': T.Kind = Tok::Colon; break;
    case '.': T.Kind = Tok::Dot; break;
    case '+': T.Kind = Tok::Plus; break;
    case '-': T.Kind = Tok::Minus; break;
    case '*': T.Kind = Tok::Star; break;
    case '/': T.Kind = Tok::Slash; break;
    case '%': T.Kind = Tok::Percent; break;
    case '|': T.Kind = Tok::BitOr; break;
    case '^': T.Kind = Tok::BitXor; break;
    case '&': T.Kind = Tok::Amp; break;
    case '=': T.Kind = two('=', Tok::EqEq, Tok::Assign); break;
    case '!': T.Kind = two('=', Tok::NotEq, Tok::Invalid); break;
    case '<':
      if (peek() == '<') {
        advance();
        T.Kind = Tok::Shl;
      } else {
        T.Kind = two('=', Tok::LessEq, Tok::Less);
      }
      break;
    case '>':
      if (peek() == '>') {
        advance();
        T.Kind = Tok::Shr;
      } else {
        T.Kind = two('=', Tok::GreaterEq, Tok::Greater);
      }
      break;
    default:
      T.Kind = Tok::Invalid;
      break;
    }
    if (T.Kind == Tok::Invalid)
      Diags.error(BufferName, T.Loc,
                  formatString("unexpected character '%c'", C));
    Out.push_back(std::move(T));
  }
  Token Eof;
  Eof.Kind = Tok::EndOfFile;
  Eof.Loc = here();
  Out.push_back(std::move(Eof));
  return Out;
}

std::vector<Token> om64::lang::lex(const std::string &BufferName,
                                   const std::string &Src,
                                   DiagnosticEngine &Diags) {
  return LexerImpl(BufferName, Src, Diags).run();
}

//===- lang/AST.h - MLang abstract syntax ---------------------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MLang. Nodes are "fat" tagged structs rather than a class
/// hierarchy: the language is small and this keeps the front end compact
/// while still giving sema a place to record resolution results that
/// codegen consumes.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_LANG_AST_H
#define OM64_LANG_AST_H

#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace om64 {
namespace lang {

/// MLang types. Arrays exist only as module-level variables.
enum class TypeKind : uint8_t { Void, Int, Real, FuncPtr, IntArray, RealArray };

struct Type {
  TypeKind Kind = TypeKind::Void;
  uint32_t ArraySize = 0;

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isReal() const { return Kind == TypeKind::Real; }
  bool isFuncPtr() const { return Kind == TypeKind::FuncPtr; }
  bool isArray() const {
    return Kind == TypeKind::IntArray || Kind == TypeKind::RealArray;
  }
  bool isScalar() const { return isInt() || isReal() || isFuncPtr(); }
  /// Element type of an array.
  Type element() const {
    return {Kind == TypeKind::IntArray ? TypeKind::Int : TypeKind::Real, 0};
  }
  /// Size in bytes of a value of this type (arrays: whole storage; every
  /// scalar, including real, is 8 bytes on AAX).
  uint64_t sizeInBytes() const { return isArray() ? ArraySize * 8ull : 8ull; }

  bool operator==(const Type &O) const = default;

  std::string str() const;
};

/// Builtin functions resolved by name.
enum class Builtin : uint8_t {
  None,
  Trunc,     // trunc(real) -> int
  ToReal,    // toreal(int) -> real
  PalPutInt, // pal_putint(int)
  PalPutChar,// pal_putchar(int)
  PalPutReal,// pal_putreal(real)
  PalHalt,   // pal_halt(int)
  PalCycles, // pal_cycles() -> int
};

/// What a name resolved to (filled in by sema).
enum class RefKind : uint8_t { Unresolved, Local, Param, Global, Function };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node.
struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    RealLit,
    VarRef,   // scalar variable (local, param, or global)
    Index,    // global array element: name[Args[0]]
    Unary,    // Op applied to Args[0] (Minus or KwNot)
    Binary,   // Args[0] Op Args[1]
    Call,     // direct call, builtin call, or indirect call via funcptr var
    AddrOf,   // &function
  };

  Kind K = Kind::IntLit;
  SourceLoc Loc;
  Type Ty; // set by sema

  int64_t IntValue = 0;
  double RealValue = 0.0;

  /// VarRef/Index/Call/AddrOf: the (possibly qualified) name as written.
  std::string Qualifier; // module qualifier, empty for unqualified
  std::string Name;

  Tok Op = Tok::Invalid; // Unary/Binary operator
  std::vector<ExprPtr> Args;

  // --- Sema results ---
  RefKind Ref = RefKind::Unresolved;
  std::string TargetModule; // resolved defining module for Global/Function
  uint32_t SlotIndex = 0;   // Local/Param: index within its function
  Builtin BuiltinFunc = Builtin::None;
  bool IsIndirectCall = false; // Call through a funcptr variable
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node.
struct Stmt {
  enum class Kind : uint8_t {
    Assign,   // Target = Value
    ExprStmt, // a call evaluated for effects
    If,
    While,
    Return,
    Block,
  };

  Kind K = Kind::Block;
  SourceLoc Loc;

  ExprPtr Target; // Assign: VarRef or Index
  ExprPtr Value;  // Assign value / ExprStmt expr / If-While cond / Return val
  std::vector<StmtPtr> Body;     // If: then; While/Block: body
  std::vector<StmtPtr> ElseBody; // If: else
};

/// A local variable or parameter.
struct LocalVar {
  std::string Name;
  Type Ty;
  SourceLoc Loc;
};

/// A function definition.
struct Function {
  std::string Name;
  SourceLoc Loc;
  bool Exported = false;
  Type ReturnType;
  std::vector<LocalVar> Params;
  std::vector<LocalVar> Locals; // declared at the top of the body
  std::vector<StmtPtr> Body;
};

/// A module-level variable.
struct GlobalVar {
  std::string Name;
  SourceLoc Loc;
  bool Exported = false;
  Type Ty;
  bool HasInit = false;
  int64_t IntInit = 0;
  double RealInit = 0.0;
};

/// One MLang module.
struct Module {
  std::string Name;
  std::vector<std::string> Imports;
  std::vector<GlobalVar> Globals;
  std::vector<Function> Functions;

  const GlobalVar *findGlobal(const std::string &N) const {
    for (const GlobalVar &G : Globals)
      if (G.Name == N)
        return &G;
    return nullptr;
  }
  const Function *findFunction(const std::string &N) const {
    for (const Function &F : Functions)
      if (F.Name == N)
        return &F;
    return nullptr;
  }
};

/// A whole program: all modules visible to the build.
struct Program {
  std::vector<Module> Modules;

  const Module *findModule(const std::string &N) const {
    for (const Module &M : Modules)
      if (M.Name == N)
        return &M;
    return nullptr;
  }
};

} // namespace lang
} // namespace om64

#endif // OM64_LANG_AST_H

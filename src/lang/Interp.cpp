//===- lang/Interp.cpp - Reference AST interpreter --------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Interp.h"

#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <map>

using namespace om64;
using namespace om64::lang;

namespace {

// All integer arithmetic wraps, exactly like ADDQ/SUBQ/MULQ/SLL.
int64_t addW(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t subW(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t mulW(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t shlW(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) << (B & 63));
}
int64_t sraW(int64_t A, int64_t B) { return A >> (B & 63); }
int64_t negW(int64_t A) { return subW(0, A); }

/// The simulator's CVTTQ clamping.
int64_t truncToInt(double D) {
  if (std::isnan(D))
    return 0;
  if (D >= 9.2233720368547758e18)
    return INT64_MAX;
  if (D <= -9.2233720368547758e18)
    return INT64_MIN;
  return static_cast<int64_t>(D);
}

} // namespace

int64_t om64::lang::emulatedDivq(int64_t A, int64_t B) {
  // Bit-exact transcription of rt.divq (shift-subtract long division with
  // signed intermediate compares), including its divide-by-zero and
  // INT64_MIN behaviour.
  if (B == 0)
    return 0;
  int64_t Ua = A, Ub = B, Neg = 0;
  if (A < 0) {
    Ua = negW(A);
    Neg = Neg + 1;
  }
  if (B < 0) {
    Ub = negW(B);
    Neg = Neg + 1;
  }
  int64_t Q = 0, R = 0;
  for (int64_t I = 63; I >= 0; --I) {
    R = shlW(R, 1) | (sraW(Ua, I) & 1);
    if (R >= Ub) {
      R = subW(R, Ub);
      Q = Q | shlW(1, I);
    }
  }
  if (Neg == 1)
    Q = negW(Q);
  return Q;
}

int64_t om64::lang::emulatedRemq(int64_t A, int64_t B) {
  return subW(A, mulW(emulatedDivq(A, B), B));
}

namespace {

/// One runtime value; the active member follows the expression's static
/// type (funcptr values live in I as 1-based function ids).
struct Value {
  int64_t I = 0;
  double D = 0.0;
};

class Interpreter {
public:
  explicit Interpreter(const Program &P, uint64_t MaxSteps)
      : P(P), StepsLeft(MaxSteps) {}

  InterpResult run();

private:
  struct GlobalSlot {
    Type Ty;
    std::vector<int64_t> I;
    std::vector<double> D;
  };

  struct Frame {
    const Module *M = nullptr;
    std::vector<Value> Params;
    std::vector<Value> Locals;
  };

  enum class Flow { Normal, Return };

  bool step() {
    if (Failed)
      return false;
    if (StepsLeft == 0) {
      fail("step budget exceeded (runaway program?)");
      return false;
    }
    --StepsLeft;
    return true;
  }

  void fail(std::string Message) {
    if (!Failed) {
      Failed = true;
      Err = std::move(Message);
    }
  }

  GlobalSlot &globalSlot(const std::string &Mod, const std::string &Name) {
    return Globals[{Mod, Name}];
  }

  Value callFunction(const Module &M, const Function &F,
                     std::vector<Value> Args);
  Value evalExpr(Frame &Fr, const Expr &E);
  Value evalCall(Frame &Fr, const Expr &E);
  Value evalBinary(Frame &Fr, const Expr &E);
  Flow execStmt(Frame &Fr, const Function &F, const Stmt &S, Value &Ret);

  const Program &P;
  uint64_t StepsLeft;
  unsigned Depth = 0;
  bool Failed = false;
  bool HaltRequested = false;
  int64_t HaltCode = 0;
  std::string Err;
  std::string Output;

  std::map<std::pair<std::string, std::string>, GlobalSlot> Globals;
  std::vector<std::pair<const Module *, const Function *>> Funcs;
  std::map<std::pair<std::string, std::string>, int64_t> FuncIdOf;
};

Value Interpreter::callFunction(const Module &M, const Function &F,
                                std::vector<Value> Args) {
  if (Failed)
    return {};
  // Keep this well under what the native stack can absorb: every
  // interpreted call consumes several C++ frames (evalExpr/evalCall/
  // execStmt), and sanitizer builds fatten each one with redzones.
  if (++Depth > 400) {
    fail("call depth exceeded");
    --Depth;
    return {};
  }
  Frame Fr;
  Fr.M = &M;
  Fr.Params = std::move(Args);
  Fr.Params.resize(F.Params.size()); // indirect calls may under-supply
  Fr.Locals.resize(F.Locals.size());
  Value Ret;
  for (const StmtPtr &S : F.Body) {
    if (execStmt(Fr, F, *S, Ret) == Flow::Return || Failed)
      break;
  }
  --Depth;
  return Ret;
}

Value Interpreter::evalBinary(Frame &Fr, const Expr &E) {
  Value L = evalExpr(Fr, *E.Args[0]);
  Value R = evalExpr(Fr, *E.Args[1]);
  Value Out;
  if (E.Args[0]->Ty.isReal()) {
    switch (E.Op) {
    case Tok::Plus:      Out.D = L.D + R.D; return Out;
    case Tok::Minus:     Out.D = L.D - R.D; return Out;
    case Tok::Star:      Out.D = L.D * R.D; return Out;
    case Tok::Slash:     Out.D = L.D / R.D; return Out;
    case Tok::EqEq:      Out.I = L.D == R.D; return Out;
    case Tok::NotEq:     Out.I = !(L.D == R.D); return Out;
    case Tok::Less:      Out.I = L.D < R.D; return Out;
    case Tok::LessEq:    Out.I = L.D <= R.D; return Out;
    case Tok::Greater:   Out.I = R.D < L.D; return Out;
    case Tok::GreaterEq: Out.I = R.D <= L.D; return Out;
    default:
      fail("internal: bad real operator");
      return Out;
    }
  }
  switch (E.Op) {
  case Tok::Plus:      Out.I = addW(L.I, R.I); break;
  case Tok::Minus:     Out.I = subW(L.I, R.I); break;
  case Tok::Star:      Out.I = mulW(L.I, R.I); break;
  case Tok::Slash:     Out.I = emulatedDivq(L.I, R.I); break;
  case Tok::Percent:   Out.I = emulatedRemq(L.I, R.I); break;
  case Tok::BitAnd:    Out.I = L.I & R.I; break;
  case Tok::BitOr:     Out.I = L.I | R.I; break;
  case Tok::BitXor:    Out.I = L.I ^ R.I; break;
  case Tok::Shl:       Out.I = shlW(L.I, R.I); break;
  case Tok::Shr:       Out.I = sraW(L.I, R.I); break;
  case Tok::EqEq:      Out.I = L.I == R.I; break;
  case Tok::NotEq:     Out.I = L.I != R.I; break;
  case Tok::Less:      Out.I = L.I < R.I; break;
  case Tok::LessEq:    Out.I = L.I <= R.I; break;
  case Tok::Greater:   Out.I = L.I > R.I; break;
  case Tok::GreaterEq: Out.I = L.I >= R.I; break;
  case Tok::KwAnd:     Out.I = (L.I != 0) & (R.I != 0); break;
  case Tok::KwOr:      Out.I = (L.I != 0) | (R.I != 0); break;
  default:
    fail("internal: bad int operator");
    break;
  }
  return Out;
}

Value Interpreter::evalCall(Frame &Fr, const Expr &E) {
  Value Out;
  // Builtins first.
  switch (E.BuiltinFunc) {
  case Builtin::Trunc:
    Out.I = truncToInt(evalExpr(Fr, *E.Args[0]).D);
    return Out;
  case Builtin::ToReal:
    Out.D = static_cast<double>(evalExpr(Fr, *E.Args[0]).I);
    return Out;
  case Builtin::PalPutInt:
    Output += formatString(
        "%lld", static_cast<long long>(evalExpr(Fr, *E.Args[0]).I));
    return Out;
  case Builtin::PalPutChar:
    Output.push_back(
        static_cast<char>(evalExpr(Fr, *E.Args[0]).I & 0xFF));
    return Out;
  case Builtin::PalPutReal:
    Output += formatString("%.6g", evalExpr(Fr, *E.Args[0]).D);
    return Out;
  case Builtin::PalHalt:
    // Modeled as an immediate stop; the caller surfaces the exit code.
    HaltRequested = true;
    HaltCode = evalExpr(Fr, *E.Args[0]).I;
    return Out;
  case Builtin::PalCycles:
    // The interpreter has no cycle counter; programs comparing against
    // the simulator must not print this value (0 here).
    Out.I = 0;
    return Out;
  case Builtin::None:
    break;
  }

  std::vector<Value> Args;
  Args.reserve(E.Args.size());
  for (const ExprPtr &Arg : E.Args)
    Args.push_back(evalExpr(Fr, *Arg));

  if (E.IsIndirectCall) {
    // The funcptr value is the variable named by E.
    Value Ptr;
    Expr Ref;
    Ref.K = Expr::Kind::VarRef;
    Ref.Ref = E.Ref;
    Ref.SlotIndex = E.SlotIndex;
    Ref.TargetModule = E.TargetModule;
    Ref.Name = E.Name;
    Ref.Ty = {TypeKind::FuncPtr, 0};
    Ptr = evalExpr(Fr, Ref);
    if (Ptr.I <= 0 || Ptr.I > static_cast<int64_t>(Funcs.size())) {
      fail("indirect call through a null or corrupt funcptr");
      return Out;
    }
    auto [M, F] = Funcs[static_cast<size_t>(Ptr.I - 1)];
    return callFunction(*M, *F, std::move(Args));
  }

  const Module *Callee = P.findModule(E.TargetModule);
  const Function *F = Callee ? Callee->findFunction(E.Name) : nullptr;
  if (!F) {
    fail("internal: unresolved call to " + E.TargetModule + "." + E.Name);
    return Out;
  }
  return callFunction(*Callee, *F, std::move(Args));
}

Value Interpreter::evalExpr(Frame &Fr, const Expr &E) {
  Value Out;
  if (!step())
    return Out;
  switch (E.K) {
  case Expr::Kind::IntLit:
    Out.I = E.IntValue;
    return Out;
  case Expr::Kind::RealLit:
    Out.D = E.RealValue;
    return Out;
  case Expr::Kind::VarRef: {
    if (E.Ref == RefKind::Param)
      return Fr.Params[E.SlotIndex];
    if (E.Ref == RefKind::Local)
      return Fr.Locals[E.SlotIndex];
    GlobalSlot &G = globalSlot(E.TargetModule, E.Name);
    if (E.Ty.isReal())
      Out.D = G.D.empty() ? 0.0 : G.D[0];
    else
      Out.I = G.I.empty() ? 0 : G.I[0];
    return Out;
  }
  case Expr::Kind::Index: {
    Value Idx = evalExpr(Fr, *E.Args[0]);
    GlobalSlot &G = globalSlot(E.TargetModule, E.Name);
    uint64_t N = G.Ty.ArraySize;
    if (static_cast<uint64_t>(Idx.I) >= N) {
      fail(formatString("array index %lld out of bounds for %s.%s[%llu]",
                        static_cast<long long>(Idx.I),
                        E.TargetModule.c_str(), E.Name.c_str(),
                        static_cast<unsigned long long>(N)));
      return Out;
    }
    if (E.Ty.isReal())
      Out.D = G.D[static_cast<size_t>(Idx.I)];
    else
      Out.I = G.I[static_cast<size_t>(Idx.I)];
    return Out;
  }
  case Expr::Kind::Unary: {
    Value V = evalExpr(Fr, *E.Args[0]);
    if (E.Args[0]->Ty.isReal()) {
      // Matches the compiled SUBT fzero, x (so -(+0.0) is +0.0).
      Out.D = 0.0 - V.D;
      return Out;
    }
    if (E.Op == Tok::Minus)
      Out.I = negW(V.I);
    else
      Out.I = V.I == 0;
    return Out;
  }
  case Expr::Kind::Binary:
    return evalBinary(Fr, E);
  case Expr::Kind::Call:
    return evalCall(Fr, E);
  case Expr::Kind::AddrOf: {
    auto It = FuncIdOf.find({E.TargetModule, E.Name});
    if (It == FuncIdOf.end())
      fail("internal: &unknown function");
    else
      Out.I = It->second;
    return Out;
  }
  }
  fail("internal: unknown expression kind");
  return Out;
}

Interpreter::Flow Interpreter::execStmt(Frame &Fr, const Function &F,
                                        const Stmt &S, Value &Ret) {
  if (!step())
    return Flow::Return;
  if (HaltRequested)
    return Flow::Return;
  switch (S.K) {
  case Stmt::Kind::Assign: {
    Value V = evalExpr(Fr, *S.Value);
    const Expr &T = *S.Target;
    if (T.K == Expr::Kind::VarRef) {
      if (T.Ref == RefKind::Param) {
        Fr.Params[T.SlotIndex] = V;
      } else if (T.Ref == RefKind::Local) {
        Fr.Locals[T.SlotIndex] = V;
      } else {
        GlobalSlot &G = globalSlot(T.TargetModule, T.Name);
        if (T.Ty.isReal())
          G.D[0] = V.D;
        else
          G.I[0] = V.I;
      }
      return Flow::Normal;
    }
    Value Idx = evalExpr(Fr, *T.Args[0]);
    GlobalSlot &G = globalSlot(T.TargetModule, T.Name);
    uint64_t N = G.Ty.ArraySize;
    if (static_cast<uint64_t>(Idx.I) >= N) {
      fail(formatString("array store index %lld out of bounds for "
                        "%s.%s[%llu]",
                        static_cast<long long>(Idx.I),
                        T.TargetModule.c_str(), T.Name.c_str(),
                        static_cast<unsigned long long>(N)));
      return Flow::Return;
    }
    if (T.Ty.isReal())
      G.D[static_cast<size_t>(Idx.I)] = V.D;
    else
      G.I[static_cast<size_t>(Idx.I)] = V.I;
    return Flow::Normal;
  }
  case Stmt::Kind::ExprStmt:
    evalExpr(Fr, *S.Value);
    return HaltRequested ? Flow::Return : Flow::Normal;
  case Stmt::Kind::If: {
    Value C = evalExpr(Fr, *S.Value);
    const std::vector<StmtPtr> &Body = C.I != 0 ? S.Body : S.ElseBody;
    for (const StmtPtr &Child : Body) {
      Flow FlowOut = execStmt(Fr, F, *Child, Ret);
      if (FlowOut == Flow::Return || Failed)
        return FlowOut;
    }
    return Flow::Normal;
  }
  case Stmt::Kind::While:
    while (!Failed && !HaltRequested) {
      if (!step())
        return Flow::Return;
      Value C = evalExpr(Fr, *S.Value);
      if (C.I == 0)
        break;
      for (const StmtPtr &Child : S.Body) {
        Flow FlowOut = execStmt(Fr, F, *Child, Ret);
        if (FlowOut == Flow::Return || Failed)
          return FlowOut;
      }
    }
    return Flow::Normal;
  case Stmt::Kind::Return:
    if (S.Value)
      Ret = evalExpr(Fr, *S.Value);
    return Flow::Return;
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : S.Body) {
      Flow FlowOut = execStmt(Fr, F, *Child, Ret);
      if (FlowOut == Flow::Return || Failed)
        return FlowOut;
    }
    return Flow::Normal;
  }
  fail("internal: unknown statement kind");
  return Flow::Return;
}

InterpResult Interpreter::run() {
  // Initialize globals and the function table.
  for (const Module &M : P.Modules) {
    for (const GlobalVar &G : M.Globals) {
      GlobalSlot Slot;
      Slot.Ty = G.Ty;
      size_t N = G.Ty.isArray() ? G.Ty.ArraySize : 1;
      if (G.Ty.isReal() || G.Ty.Kind == TypeKind::RealArray)
        Slot.D.assign(N, 0.0);
      else
        Slot.I.assign(N, 0);
      if (G.HasInit) {
        if (G.Ty.isReal())
          Slot.D[0] = G.RealInit;
        else
          Slot.I[0] = G.IntInit;
      }
      Globals[{M.Name, G.Name}] = std::move(Slot);
    }
    for (const Function &F : M.Functions) {
      Funcs.push_back({&M, &F});
      FuncIdOf[{M.Name, F.Name}] = static_cast<int64_t>(Funcs.size());
    }
  }

  // Find main.
  const Module *MainModule = nullptr;
  const Function *Main = nullptr;
  for (const Module &M : P.Modules)
    if (const Function *F = M.findFunction("main")) {
      MainModule = &M;
      Main = F;
    }
  InterpResult Res;
  if (!Main) {
    Res.Error = "no main function";
    return Res;
  }

  Value Ret = callFunction(*MainModule, *Main, {});
  Res.Ok = !Failed;
  Res.Error = Err;
  Res.ExitCode = HaltRequested ? HaltCode : Ret.I;
  Res.Output = std::move(Output);
  return Res;
}

} // namespace

InterpResult om64::lang::interpret(const Program &P, uint64_t MaxSteps) {
  Interpreter I(P, MaxSteps);
  return I.run();
}

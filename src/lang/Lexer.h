//===- lang/Lexer.h - MLang tokenizer --------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MLang, the small imperative language whose compiled form
/// exhibits the 64-bit global-addressing patterns the paper optimizes.
/// See docs/LANGUAGE.md for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_LANG_LEXER_H
#define OM64_LANG_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace lang {

/// Token kinds. Keywords are distinct kinds; punctuation is named.
enum class Tok : uint8_t {
  EndOfFile,
  Identifier,
  IntLiteral,
  RealLiteral,
  // Keywords.
  KwModule, KwImport, KwExport, KwVar, KwFunc, KwIf, KwElse, KwWhile,
  KwReturn, KwInt, KwReal, KwFuncPtr, KwAnd, KwOr, KwNot,
  // Punctuation and operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Colon, Dot, Assign, Amp,
  Plus, Minus, Star, Slash, Percent, Shl, Shr, BitAnd, BitOr, BitXor,
  EqEq, NotEq, Less, LessEq, Greater, GreaterEq,
  Invalid,
};

/// Returns a printable spelling for diagnostics ("'while'", "'<='", ...).
const char *tokenName(Tok Kind);

/// One lexed token.
struct Token {
  Tok Kind = Tok::Invalid;
  SourceLoc Loc;
  std::string Text;    // identifier spelling
  int64_t IntValue = 0;
  double RealValue = 0.0;
};

/// Lexes an entire buffer. Errors (bad characters, malformed numbers) are
/// reported to \p Diags and produce Invalid tokens that the parser treats
/// as fatal.
std::vector<Token> lex(const std::string &BufferName, const std::string &Src,
                       DiagnosticEngine &Diags);

} // namespace lang
} // namespace om64

#endif // OM64_LANG_LEXER_H

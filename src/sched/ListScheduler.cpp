//===- sched/ListScheduler.cpp ---------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"

#include <algorithm>
#include <cassert>

using namespace om64;
using namespace om64::sched;
using namespace om64::isa;

bool om64::sched::isSchedulingBarrier(const Inst &I) {
  switch (classOf(I.Op)) {
  case InstClass::Jump:
  case InstClass::Branch:
  case InstClass::Pal:
    return true;
  default:
    return false;
  }
}

namespace {

/// Dependence DAG over a barrier-free region.
struct DepGraph {
  std::vector<std::vector<size_t>> Succs;
  std::vector<std::vector<size_t>> Preds;
  /// Latency[i]: cycles before a successor of i may issue.
  std::vector<unsigned> Latency;
  /// Height[i]: critical-path length from i to any leaf (priority).
  std::vector<unsigned> Height;

  explicit DepGraph(const std::vector<Inst> &Region,
                    const std::vector<MemRegion> *Bases = nullptr,
                    SchedStats *Stats = nullptr);
};

/// True when the two classified bases provably never alias: one points
/// into the global (GAT/data) segment and the other into the stack
/// segment, which are disjoint address ranges in the AAX layout.
bool disjointRegions(MemRegion A, MemRegion B) {
  return (A == MemRegion::Global && B == MemRegion::Stack) ||
         (A == MemRegion::Stack && B == MemRegion::Global);
}

void addEdge(DepGraph &G, size_t From, size_t To) {
  G.Succs[From].push_back(To);
  G.Preds[To].push_back(From);
}

DepGraph::DepGraph(const std::vector<Inst> &Region,
                   const std::vector<MemRegion> *Bases, SchedStats *Stats) {
  size_t N = Region.size();
  Succs.resize(N);
  Preds.resize(N);
  Latency.resize(N);
  Height.assign(N, 0);

  for (size_t I = 0; I < N; ++I)
    Latency[I] = latencyOf(Region[I].Op);

  // Register dependences. LastWriter/LastReaders track, per register unit,
  // the most recent producer and the readers since then.
  std::vector<int> LastWriter(NumRegUnits, -1);
  std::vector<std::vector<size_t>> ReadersSince(NumRegUnits);

  // Memory dependences. Without alias info (Bases == nullptr), stores
  // order against every other memory access and loads reorder freely among
  // themselves — the chain through LastStore/LoadsSinceStore encodes the
  // full ordering transitively. With base classification, a disjoint pair
  // carries no edge, which breaks that transitivity; the classified path
  // therefore orders pairwise against every prior memory operation
  // (redundant transitive edges change neither the feasible orders nor the
  // greedy schedule's choices). Regions are basic-block-sized, so the
  // pairwise walk stays cheap.
  int LastStore = -1;
  std::vector<size_t> LoadsSinceStore;
  std::vector<size_t> PriorMemOps;

  for (size_t I = 0; I < N; ++I) {
    const Inst &In = Region[I];
    assert(!isSchedulingBarrier(In) && "barrier inside region");

    unsigned Reads[3];
    unsigned NumReads = regUnitsRead(In, Reads);
    for (unsigned R = 0; R < NumReads; ++R) {
      unsigned Unit = Reads[R];
      if (LastWriter[Unit] >= 0)
        addEdge(*this, static_cast<size_t>(LastWriter[Unit]), I); // RAW
      ReadersSince[Unit].push_back(I);
    }
    unsigned Written = regUnitWritten(In);
    if (Written != ~0u) {
      if (LastWriter[Written] >= 0)
        addEdge(*this, static_cast<size_t>(LastWriter[Written]), I); // WAW
      for (size_t Reader : ReadersSince[Written])
        if (Reader != I)
          addEdge(*this, Reader, I); // WAR
      LastWriter[Written] = static_cast<int>(I);
      ReadersSince[Written].clear();
    }

    if (Bases) {
      if (isStore(In.Op) || isLoad(In.Op)) {
        bool IsStoreI = isStore(In.Op);
        for (size_t J : PriorMemOps) {
          if (!IsStoreI && !isStore(Region[J].Op))
            continue; // load/load pairs never need ordering
          if (disjointRegions((*Bases)[J], (*Bases)[I])) {
            if (Stats)
              ++Stats->MemDepPairsFreed;
            continue;
          }
          addEdge(*this, J, I);
        }
        PriorMemOps.push_back(I);
      }
    } else if (isStore(In.Op)) {
      if (LastStore >= 0)
        addEdge(*this, static_cast<size_t>(LastStore), I);
      for (size_t L : LoadsSinceStore)
        addEdge(*this, L, I);
      LastStore = static_cast<int>(I);
      LoadsSinceStore.clear();
    } else if (isLoad(In.Op)) {
      if (LastStore >= 0)
        addEdge(*this, static_cast<size_t>(LastStore), I);
      LoadsSinceStore.push_back(I);
    }
  }

  // Heights by reverse topological sweep (indices are already topological
  // because edges always point from lower to higher index).
  for (size_t I = N; I-- > 0;) {
    unsigned H = 0;
    for (size_t S : Succs[I])
      H = std::max(H, Latency[I] + Height[S]);
    Height[I] = H;
  }
}

/// Issue-slot classification for the dual-issue model.
bool isMemoryOp(const Inst &I) {
  InstClass C = classOf(I.Op);
  return C == InstClass::IntLoad || C == InstClass::IntStore ||
         C == InstClass::FpLoad || C == InstClass::FpStore;
}

} // namespace

std::vector<size_t>
om64::sched::scheduleRegion(const std::vector<Inst> &Region,
                            const std::vector<MemRegion> *Bases,
                            SchedStats *Stats) {
  assert((!Bases || Bases->size() == Region.size()) &&
         "base classification must parallel the region");
  size_t N = Region.size();
  std::vector<size_t> Order;
  Order.reserve(N);
  if (N == 0)
    return Order;

  DepGraph G(Region, Bases, Stats);

  std::vector<unsigned> PredsLeft(N);
  for (size_t I = 0; I < N; ++I)
    PredsLeft[I] = static_cast<unsigned>(G.Preds[I].size());

  // EarliestCycle[i]: first cycle i may issue given issued predecessors.
  std::vector<unsigned> EarliestCycle(N, 0);
  std::vector<bool> Issued(N, false);

  unsigned Cycle = 0;
  size_t NumIssued = 0;
  while (NumIssued < N) {
    unsigned SlotsLeft = 2;
    bool MemUsed = false;
    bool IssuedThisCycle = true;
    while (SlotsLeft > 0 && IssuedThisCycle) {
      IssuedThisCycle = false;
      // Pick the ready instruction with the greatest height; ties toward
      // original order for determinism and stability.
      size_t Best = N;
      for (size_t I = 0; I < N; ++I) {
        if (Issued[I] || PredsLeft[I] != 0 || EarliestCycle[I] > Cycle)
          continue;
        if (MemUsed && isMemoryOp(Region[I]))
          continue;
        if (Best == N || G.Height[I] > G.Height[Best])
          Best = I;
      }
      if (Best == N)
        break;
      Issued[Best] = true;
      Order.push_back(Best);
      ++NumIssued;
      --SlotsLeft;
      IssuedThisCycle = true;
      if (isMemoryOp(Region[Best]))
        MemUsed = true;
      for (size_t S : G.Succs[Best]) {
        --PredsLeft[S];
        EarliestCycle[S] =
            std::max(EarliestCycle[S], Cycle + G.Latency[Best]);
      }
    }
    ++Cycle;
  }
  return Order;
}

std::vector<size_t>
om64::sched::scheduleWithBarriers(const std::vector<Inst> &Insts) {
  std::vector<size_t> Order;
  Order.reserve(Insts.size());
  size_t RegionStart = 0;
  auto flushRegion = [&](size_t End) {
    if (End == RegionStart)
      return;
    std::vector<Inst> Region(Insts.begin() + RegionStart,
                             Insts.begin() + End);
    for (size_t Local : scheduleRegion(Region))
      Order.push_back(RegionStart + Local);
    RegionStart = End;
  };
  for (size_t I = 0; I < Insts.size(); ++I) {
    if (isSchedulingBarrier(Insts[I])) {
      flushRegion(I);
      Order.push_back(I);
      RegionStart = I + 1;
    }
  }
  flushRegion(Insts.size());
  return Order;
}

unsigned om64::sched::estimateRegionCycles(const std::vector<Inst> &Region) {
  // Re-run the greedy schedule and count cycles consumed.
  size_t N = Region.size();
  if (N == 0)
    return 0;
  DepGraph G(Region);
  std::vector<unsigned> PredsLeft(N);
  for (size_t I = 0; I < N; ++I)
    PredsLeft[I] = static_cast<unsigned>(G.Preds[I].size());
  std::vector<unsigned> EarliestCycle(N, 0);
  std::vector<bool> Issued(N, false);
  unsigned Cycle = 0;
  size_t NumIssued = 0;
  while (NumIssued < N) {
    unsigned SlotsLeft = 2;
    bool MemUsed = false;
    bool Progress = true;
    while (SlotsLeft > 0 && Progress) {
      Progress = false;
      size_t Best = N;
      for (size_t I = 0; I < N; ++I) {
        if (Issued[I] || PredsLeft[I] != 0 || EarliestCycle[I] > Cycle)
          continue;
        if (MemUsed && isMemoryOp(Region[I]))
          continue;
        if (Best == N || G.Height[I] > G.Height[Best])
          Best = I;
      }
      if (Best == N)
        break;
      Issued[Best] = true;
      ++NumIssued;
      --SlotsLeft;
      Progress = true;
      if (isMemoryOp(Region[Best]))
        MemUsed = true;
      for (size_t S : G.Succs[Best]) {
        --PredsLeft[S];
        EarliestCycle[S] =
            std::max(EarliestCycle[S], Cycle + G.Latency[Best]);
      }
    }
    ++Cycle;
  }
  return Cycle;
}

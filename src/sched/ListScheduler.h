//===- sched/ListScheduler.h - Shared basic-block list scheduler ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence-preserving list scheduling of straight-line AAX code, shared
/// by the compile-time pipeline scheduler in codegen and by OM-full's
/// optional link-time rescheduler ("a version of the standard AXP/OSF
/// scheduler", section 5.2).
///
/// The scheduler returns a *permutation of indices* rather than permuted
/// instructions, so callers can permute their parallel annotation arrays
/// (relocation notes, label attachments) alongside the code.
///
/// Modelled machine: dual-issue in-order; at most one memory operation and
/// one branch per cycle; producer latencies from isa::latencyOf. Without
/// memory alias information every store orders against every other memory
/// operation (the paper notes OM's scheduler lacks the compiler's alias
/// information; so does the compile-time scheduler here, keeping the two
/// comparable).
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SCHED_LISTSCHEDULER_H
#define OM64_SCHED_LISTSCHEDULER_H

#include "isa/Inst.h"

#include <cstddef>
#include <vector>

namespace om64 {
namespace sched {

/// Returns true if \p I must not move relative to any other instruction:
/// calls and other control transfers, and PAL calls. (Conditional branches
/// only appear last in a region and are barriers too.)
bool isSchedulingBarrier(const isa::Inst &I);

/// Provenance of a memory operation's base register, supplied by a caller
/// with dataflow information (OM's Analysis layer classifies GP- and
/// SP-derived bases). Global and Stack accesses land in disjoint segments
/// of the AAX address space, so a pair with one of each never aliases;
/// Unknown aliases everything.
enum class MemRegion : uint8_t { Unknown, Global, Stack };

/// Scheduling observability: how much the optional alias information
/// bought.
struct SchedStats {
  /// Ordered pairs of memory operations (at least one a store) that the
  /// conservative model would have serialized but whose base regions are
  /// proven disjoint.
  uint64_t MemDepPairsFreed = 0;
};

/// Computes a dependence-preserving issue order for the straight-line
/// region \p Region (which must contain no barriers). Returns a
/// permutation P such that the scheduled code is Region[P[0]],
/// Region[P[1]], ... Deterministic: ties break toward original order.
///
/// \p Bases, when non-null, classifies each instruction's memory base
/// register (parallel to \p Region; entries for non-memory instructions
/// are ignored): memory-ordering edges between accesses in provably
/// disjoint regions are skipped, and \p Stats (when non-null) counts the
/// pairs freed. A null \p Bases reproduces the conservative ordering
/// byte-identically.
std::vector<size_t>
scheduleRegion(const std::vector<isa::Inst> &Region,
               const std::vector<MemRegion> *Bases = nullptr,
               SchedStats *Stats = nullptr);

/// Schedules a whole instruction sequence, leaving barriers (calls, PAL,
/// branches, jumps) fixed in place and scheduling each barrier-free
/// region independently. Returns a permutation of [0, Insts.size()).
std::vector<size_t>
scheduleWithBarriers(const std::vector<isa::Inst> &Insts);

/// Estimated cycle count of the region in the scheduler's machine model;
/// exposed for tests and the scheduling-ablation bench.
unsigned estimateRegionCycles(const std::vector<isa::Inst> &Region);

} // namespace sched
} // namespace om64

#endif // OM64_SCHED_LISTSCHEDULER_H

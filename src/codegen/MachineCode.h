//===- codegen/MachineCode.h - Pre-layout machine code representation -----===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's internal representation of generated code before offsets
/// are assigned: instructions annotated with the facts that later become
/// relocations (GAT literal loads, lituse links, GP-disp pairs) plus local
/// labels and intra-unit direct calls. The compile-time scheduler permutes
/// MInst records wholesale, so annotations travel with their instructions.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_CODEGEN_MACHINECODE_H
#define OM64_CODEGEN_MACHINECODE_H

#include "isa/Inst.h"
#include "objfile/ObjectFile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace cg {

/// Annotation kinds on a machine instruction.
enum class Note : uint8_t {
  None,
  Literal,     // GAT address load; GatIndex + LiteralId valid
  LituseBase,  // memory op whose base reg came from literal LiteralId
  LituseJsr,   // JSR through the register loaded by literal LiteralId
  LituseAddr,  // scaled add deriving a pointer from literal LiteralId
  LituseDeref, // memory op through the pointer derived by LituseAddr
  GpLdah,      // first half of a GP-disp pair; GpPairId + GpKind valid
  GpLda,       // second half of a GP-disp pair; GpPairId valid
  LocalBranch, // branch/BR whose Disp is filled from Label at emission
  LocalCall,   // BSR to procedure index Callee within this unit
};

/// One machine instruction plus its annotation.
struct MInst {
  isa::Inst I;
  Note N = Note::None;
  uint32_t GatIndex = 0;
  uint32_t LiteralId = 0;
  uint32_t GpPairId = 0;
  obj::GpDispKind GpKind = obj::GpDispKind::Prologue;
  uint32_t Label = 0;  // LocalBranch target label
  uint32_t Callee = 0; // LocalCall target procedure index
  /// Labels bound immediately before this instruction.
  std::vector<uint32_t> LabelsHere;
};

/// A generated procedure before layout.
struct MProc {
  std::string FullName; // "module.function"
  bool Exported = false;
  bool UsesGp = false;
  bool HasGpPrologue = false;
  std::vector<MInst> Insts;
};

} // namespace cg
} // namespace om64

#endif // OM64_CODEGEN_MACHINECODE_H

//===- codegen/Codegen.cpp - Unit building and object emission ------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "codegen/CodegenImpl.h"
#include "sched/ListScheduler.h"
#include "support/Format.h"

#include <cassert>
#include <cstring>
#include <functional>

using namespace om64;
using namespace om64::cg;
using namespace om64::isa;

UnitBuilder::UnitBuilder(const lang::Program &P,
                         const std::vector<std::string> &ModuleNames,
                         const CompileOptions &Opts)
    : P(P), Opts(Opts) {
  for (const std::string &Name : ModuleNames) {
    const lang::Module *M = P.findModule(Name);
    assert(M && "unit module not in program");
    UnitModules.push_back(M);
  }
}

uint32_t UnitBuilder::internSymbol(const std::string &FullName) {
  auto It = SymIndexByName.find(FullName);
  if (It != SymIndexByName.end())
    return It->second;
  obj::Symbol S;
  S.Name = FullName;
  S.IsDefined = false;
  uint32_t Idx = static_cast<uint32_t>(Obj.Symbols.size());
  Obj.Symbols.push_back(std::move(S));
  SymIndexByName.emplace(FullName, Idx);
  return Idx;
}

uint32_t UnitBuilder::gatSlot(uint32_t SymIdx) {
  auto Key = std::make_pair(SymIdx, int64_t{0});
  auto It = GatIndexBySym.find(Key);
  if (It != GatIndexBySym.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(Obj.Gat.size());
  Obj.Gat.push_back({SymIdx, 0});
  GatIndexBySym.emplace(Key, Idx);
  return Idx;
}

uint32_t UnitBuilder::poolConstant(uint64_t Bits) {
  auto It = ConstSymByBits.find(Bits);
  if (It != ConstSymByBits.end())
    return It->second;
  std::string Name = formatString("%s.$const%u", Obj.ModuleName.c_str(),
                                  ++ConstCounter);
  uint32_t Idx = internSymbol(Name);
  obj::Symbol &S = Obj.Symbols[Idx];
  S.Section = obj::SectionKind::Data;
  S.Offset = Obj.Data.size();
  S.Size = 8;
  S.IsDefined = true;
  for (unsigned Byte = 0; Byte < 8; ++Byte)
    Obj.Data.push_back(static_cast<uint8_t>(Bits >> (8 * Byte)));
  ConstSymByBits.emplace(Bits, Idx);
  return Idx;
}

bool UnitBuilder::isDirectCallee(const std::string &FullName) const {
  auto It = ProcIndexByName.find(FullName);
  if (It == ProcIndexByName.end())
    return false;
  if (AddressTaken.count(FullName))
    return false;
  const MProc &Proc = Procs[It->second];
  // "main" is entered from outside the program; it always keeps the full
  // conventions. Exported procedures can only be optimized when the unit is
  // known to be the whole statically linked user program (compile-all).
  if (FullName.size() >= 5 &&
      FullName.compare(FullName.size() - 5, 5, ".main") == 0)
    return false;
  if (Proc.Exported && !Opts.InterUnit)
    return false;
  return true;
}

uint32_t UnitBuilder::procIndex(const std::string &FullName) const {
  auto It = ProcIndexByName.find(FullName);
  return It == ProcIndexByName.end() ? ~0u : It->second;
}

void UnitBuilder::collectAddressTakenExpr(const lang::Expr &E) {
  if (E.K == lang::Expr::Kind::AddrOf)
    AddressTaken.insert(E.TargetModule + "." + E.Name);
  for (const lang::ExprPtr &Child : E.Args)
    collectAddressTakenExpr(*Child);
}

void UnitBuilder::collectAddressTaken() {
  // Walk every statement of every function in the unit.
  std::function<void(const lang::Stmt &)> WalkStmt =
      [&](const lang::Stmt &S) {
        if (S.Target)
          collectAddressTakenExpr(*S.Target);
        if (S.Value)
          collectAddressTakenExpr(*S.Value);
        for (const lang::StmtPtr &Child : S.Body)
          WalkStmt(*Child);
        for (const lang::StmtPtr &Child : S.ElseBody)
          WalkStmt(*Child);
      };
  for (const lang::Module *M : UnitModules)
    for (const lang::Function &F : M->Functions)
      for (const lang::StmtPtr &S : F.Body)
        WalkStmt(*S);
}

void UnitBuilder::layoutGlobals() {
  for (const lang::Module *M : UnitModules) {
    for (const lang::GlobalVar &G : M->Globals) {
      uint32_t Idx = internSymbol(M->Name + "." + G.Name);
      obj::Symbol &S = Obj.Symbols[Idx];
      S.IsDefined = true;
      S.IsExported = G.Exported;
      S.Size = G.Ty.sizeInBytes();
      if (G.HasInit) {
        S.Section = obj::SectionKind::Data;
        S.Offset = Obj.Data.size();
        uint64_t Bits;
        if (G.Ty.isReal()) {
          double V = G.RealInit;
          std::memcpy(&Bits, &V, 8);
        } else {
          Bits = static_cast<uint64_t>(G.IntInit);
        }
        for (unsigned Byte = 0; Byte < 8; ++Byte)
          Obj.Data.push_back(static_cast<uint8_t>(Bits >> (8 * Byte)));
      } else {
        S.Section = obj::SectionKind::Bss;
        S.Offset = Obj.BssSize;
        Obj.BssSize += (S.Size + 7) & ~7ull;
      }
    }
  }
}

Error UnitBuilder::generateProcs() {
  // Pre-register every in-unit procedure so call sites can classify their
  // callees before bodies exist.
  for (const lang::Module *M : UnitModules) {
    for (const lang::Function &F : M->Functions) {
      std::string Full = M->Name + "." + F.Name;
      uint32_t Idx = static_cast<uint32_t>(Procs.size());
      ProcIndexByName.emplace(Full, Idx);
      MProc Proc;
      Proc.FullName = Full;
      Proc.Exported = F.Exported;
      Procs.push_back(std::move(Proc));

      uint32_t SymIdx = internSymbol(Full);
      obj::Symbol &S = Obj.Symbols[SymIdx];
      S.IsDefined = true;
      S.IsProcedure = true;
      S.IsExported = F.Exported;
      S.Section = obj::SectionKind::Text;
    }
  }
  for (const lang::Module *M : UnitModules) {
    for (const lang::Function &F : M->Functions) {
      MProc &Proc = Procs[ProcIndexByName[M->Name + "." + F.Name]];
      ProcGen Gen(*this, *M, F, Proc);
      if (Error E = Gen.run())
        return E;
      if (Opts.Schedule)
        scheduleProc(Proc);
    }
  }
  return Error::success();
}

void UnitBuilder::scheduleProc(MProc &Proc) const {
  std::vector<MInst> &Insts = Proc.Insts;
  std::vector<MInst> NewInsts;
  NewInsts.reserve(Insts.size());
  size_t RegionStart = 0;

  auto flushRegion = [&](size_t End) {
    if (End == RegionStart)
      return;
    std::vector<Inst> Region;
    Region.reserve(End - RegionStart);
    for (size_t I = RegionStart; I < End; ++I)
      Region.push_back(Insts[I].I);
    std::vector<size_t> Perm = sched::scheduleRegion(Region);
    // Labels bound to the region head must stay at the head.
    std::vector<uint32_t> HeadLabels =
        std::move(Insts[RegionStart].LabelsHere);
    Insts[RegionStart].LabelsHere.clear();
    size_t Base = NewInsts.size();
    for (size_t Local : Perm)
      NewInsts.push_back(std::move(Insts[RegionStart + Local]));
    NewInsts[Base].LabelsHere.insert(NewInsts[Base].LabelsHere.begin(),
                                     HeadLabels.begin(), HeadLabels.end());
    RegionStart = End;
  };

  for (size_t I = 0; I < Insts.size(); ++I) {
    if (!Insts[I].LabelsHere.empty() && I != RegionStart)
      flushRegion(I);
    if (sched::isSchedulingBarrier(Insts[I].I)) {
      flushRegion(I);
      NewInsts.push_back(std::move(Insts[I]));
      RegionStart = I + 1;
    }
  }
  flushRegion(Insts.size());
  Insts = std::move(NewInsts);
}

void UnitBuilder::emitProcCode(uint32_t ProcIdx, uint64_t Base) {
  MProc &Proc = Procs[ProcIdx];

  // First pass: instruction offsets, label table, GP-pair positions.
  std::map<uint32_t, uint64_t> LabelOffset;
  std::map<uint32_t, uint64_t> GpLdahOffset;
  std::map<uint32_t, uint64_t> GpLdaOffset;
  for (size_t I = 0; I < Proc.Insts.size(); ++I) {
    uint64_t Off = Base + I * 4;
    for (uint32_t L : Proc.Insts[I].LabelsHere)
      LabelOffset[L] = Off;
    if (Proc.Insts[I].N == Note::GpLdah)
      GpLdahOffset[Proc.Insts[I].GpPairId] = Off;
    else if (Proc.Insts[I].N == Note::GpLda)
      GpLdaOffset[Proc.Insts[I].GpPairId] = Off;
  }

  // Second pass: patch local control flow, create relocations, encode.
  uint64_t LastJsrOffset = 0;
  for (size_t I = 0; I < Proc.Insts.size(); ++I) {
    MInst &MI = Proc.Insts[I];
    uint64_t Off = Base + I * 4;
    switch (MI.N) {
    case Note::None:
      break;
    case Note::Literal: {
      obj::Reloc R;
      R.Kind = obj::RelocKind::Literal;
      R.Offset = Off;
      R.GatIndex = MI.GatIndex;
      R.LiteralId = MI.LiteralId;
      Obj.Relocs.push_back(R);
      break;
    }
    case Note::LituseBase:
    case Note::LituseJsr:
    case Note::LituseAddr:
    case Note::LituseDeref: {
      obj::Reloc R;
      R.Kind = MI.N == Note::LituseBase ? obj::RelocKind::LituseBase
               : MI.N == Note::LituseJsr ? obj::RelocKind::LituseJsr
               : MI.N == Note::LituseAddr ? obj::RelocKind::LituseAddr
                                          : obj::RelocKind::LituseDeref;
      R.Offset = Off;
      R.LiteralId = MI.LiteralId;
      Obj.Relocs.push_back(R);
      break;
    }
    case Note::GpLdah: {
      obj::Reloc R;
      R.Kind = obj::RelocKind::GpDisp;
      R.Offset = Off;
      R.GpKind = MI.GpKind == obj::GpDispKind::Prologue ? 0 : 1;
      R.AnchorOffset = MI.GpKind == obj::GpDispKind::Prologue
                           ? Base
                           : LastJsrOffset + 4;
      assert(GpLdaOffset.count(MI.GpPairId) && "unpaired GP ldah");
      R.PairOffset = GpLdaOffset[MI.GpPairId] - Off;
      Obj.Relocs.push_back(R);
      break;
    }
    case Note::GpLda:
      break; // covered by its GpLdah's PairOffset
    case Note::LocalBranch: {
      assert(LabelOffset.count(MI.Label) && "branch to unbound label");
      int64_t Disp =
          (static_cast<int64_t>(LabelOffset[MI.Label]) -
           static_cast<int64_t>(Off) - 4) / 4;
      MI.I.Disp = static_cast<int32_t>(Disp);
      break;
    }
    case Note::LocalCall: {
      int64_t Disp = (static_cast<int64_t>(ProcBase[MI.Callee]) -
                      static_cast<int64_t>(Off) - 4) / 4;
      MI.I.Disp = static_cast<int32_t>(Disp);
      break;
    }
    }
    if (MI.I.Op == Opcode::Jsr)
      LastJsrOffset = Off;
    uint32_t Word = encode(MI.I);
    for (unsigned Byte = 0; Byte < 4; ++Byte)
      Obj.Text.push_back(static_cast<uint8_t>(Word >> (8 * Byte)));
  }
}

void UnitBuilder::emitObject() {
  // Procedure layout: 16-byte aligned entries, nop padding between.
  ProcBase.resize(Procs.size());
  uint64_t Cur = 0;
  for (size_t Idx = 0; Idx < Procs.size(); ++Idx) {
    Cur = (Cur + 15) & ~15ull;
    ProcBase[Idx] = Cur;
    Cur += Procs[Idx].Insts.size() * 4;
  }

  uint32_t NopWord = encode(Inst::nop());
  for (size_t Idx = 0; Idx < Procs.size(); ++Idx) {
    while (Obj.Text.size() < ProcBase[Idx])
      for (unsigned Byte = 0; Byte < 4; ++Byte)
        Obj.Text.push_back(static_cast<uint8_t>(NopWord >> (8 * Byte)));

    MProc &Proc = Procs[Idx];
    uint32_t SymIdx = SymIndexByName[Proc.FullName];
    obj::Symbol &S = Obj.Symbols[SymIdx];
    S.Offset = ProcBase[Idx];
    S.Size = Proc.Insts.size() * 4;

    obj::ProcDesc Desc;
    Desc.SymbolIndex = SymIdx;
    Desc.TextOffset = ProcBase[Idx];
    Desc.TextSize = Proc.Insts.size() * 4;
    Desc.UsesGp = Proc.UsesGp;
    Obj.Procs.push_back(Desc);

    emitProcCode(static_cast<uint32_t>(Idx), ProcBase[Idx]);
  }
}

Result<obj::ObjectFile> UnitBuilder::build() {
  if (UnitModules.empty())
    return Result<obj::ObjectFile>::failure("empty compilation unit");
  Obj.ModuleName = UnitModules.front()->Name;
  for (size_t Idx = 1; Idx < UnitModules.size(); ++Idx)
    Obj.ModuleName += "+" + UnitModules[Idx]->Name;

  collectAddressTaken();
  layoutGlobals();
  if (Error E = generateProcs())
    return Result<obj::ObjectFile>::failure(E.message());
  emitObject();
  if (Error E = Obj.verify())
    return Result<obj::ObjectFile>::failure("codegen produced invalid "
                                            "object: " +
                                            E.message());
  return std::move(Obj);
}

Result<obj::ObjectFile>
om64::cg::compileUnit(const lang::Program &P,
                      const std::vector<std::string> &Modules,
                      const CompileOptions &Opts) {
  UnitBuilder Builder(P, Modules, Opts);
  return Builder.build();
}

Result<std::vector<obj::ObjectFile>>
om64::cg::compileEach(const lang::Program &P,
                      const std::vector<std::string> &Modules,
                      const CompileOptions &Opts) {
  std::vector<obj::ObjectFile> Objects;
  CompileOptions EachOpts = Opts;
  EachOpts.InterUnit = false;
  for (const std::string &Name : Modules) {
    Result<obj::ObjectFile> Obj = compileUnit(P, {Name}, EachOpts);
    if (!Obj)
      return Result<std::vector<obj::ObjectFile>>::failure(Obj.message());
    Objects.push_back(Obj.take());
  }
  return Objects;
}

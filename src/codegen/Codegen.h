//===- codegen/Codegen.h - MLang to AAX code generation -------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation with the paper's conservative 64-bit conventions:
///
///   * every global access goes through an address load from the unit's
///     global address table (GAT) via GP (Figure 2),
///   * every procedure establishes its own GP from PV on entry and
///     re-establishes it from RA after every call (Figure 1),
///   * calls load the destination into PV from the GAT and use JSR.
///
/// Two compilation granularities mirror the paper's section 5 setup:
///
///   * compile-each: each module is its own unit with its own GAT; only
///     same-module calls to unexported, non-address-taken procedures are
///     optimized to BSR at compile time (the footnote-2 case).
///   * compile-all ("monolithic with interprocedural optimization"): all
///     user modules form one unit sharing one GAT; calls to any in-unit,
///     non-address-taken procedure become BSRs and such callees drop their
///     GP prologue. Library modules stay pre-compiled, so calls into them
///     keep the full bookkeeping — the effect section 5.1 highlights.
///
/// A compile-time pipeline scheduler (shared with OM) reorders each
/// straight-line region; this is what disperses prologue GP-setting away
/// from procedure entry and blocks OM-simple's BSR-past-prologue trick.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_CODEGEN_CODEGEN_H
#define OM64_CODEGEN_CODEGEN_H

#include "lang/AST.h"
#include "objfile/ObjectFile.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace om64 {
namespace cg {

/// Code generation options.
struct CompileOptions {
  /// Treat the listed modules as one compilation unit with a shared GAT
  /// and intra-unit call optimization (the paper's compile-all mode).
  bool InterUnit = false;
  /// Run the compile-time pipeline scheduler (on for the paper's setup).
  bool Schedule = true;
  /// Fold constant subexpressions (the -O2 stand-in).
  bool FoldConstants = true;
};

/// Compiles the named modules of \p P as a single unit, producing one
/// relocatable object. \p P must have passed lang::analyzeProgram.
Result<obj::ObjectFile> compileUnit(const lang::Program &P,
                                    const std::vector<std::string> &Modules,
                                    const CompileOptions &Opts);

/// Compiles each named module as its own unit (the compile-each mode).
Result<std::vector<obj::ObjectFile>>
compileEach(const lang::Program &P, const std::vector<std::string> &Modules,
            const CompileOptions &Opts);

} // namespace cg
} // namespace om64

#endif // OM64_CODEGEN_CODEGEN_H

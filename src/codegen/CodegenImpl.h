//===- codegen/CodegenImpl.h - Private codegen internals -------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal interfaces between the unit builder (symbols, GAT, data layout,
/// emission) and the per-procedure generator. Not installed; include only
/// from codegen .cpp files.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_CODEGEN_CODEGENIMPL_H
#define OM64_CODEGEN_CODEGENIMPL_H

#include "codegen/Codegen.h"
#include "codegen/MachineCode.h"
#include "lang/AST.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace om64 {
namespace cg {

/// Builds one compilation unit: owns the symbol table, GAT literal pool,
/// constant pool, data layout, and final object emission.
class UnitBuilder {
public:
  UnitBuilder(const lang::Program &P,
              const std::vector<std::string> &ModuleNames,
              const CompileOptions &Opts);

  /// Runs the whole pipeline; returns the object or a message.
  Result<obj::ObjectFile> build();

  // --- services for ProcGen ---

  const CompileOptions &options() const { return Opts; }

  /// Interns a (possibly external) symbol by full name, creating an
  /// undefined placeholder when new. Definitions refine placeholders.
  uint32_t internSymbol(const std::string &FullName);

  /// Returns the GAT slot index holding the address of symbol \p SymIdx.
  uint32_t gatSlot(uint32_t SymIdx);

  /// Returns the symbol of a pooled 8-byte constant with the given bit
  /// pattern, creating it in .data on first use.
  uint32_t poolConstant(uint64_t Bits);

  uint32_t nextLiteralId() { return ++LiteralIdCounter; }
  uint32_t nextGpPairId() { return ++GpPairIdCounter; }

  /// True if \p FullName is a procedure defined in this unit that call
  /// sites may reach with a direct BSR and no GP bookkeeping.
  bool isDirectCallee(const std::string &FullName) const;

  /// Index of an in-unit procedure in the MProc array, or ~0u.
  uint32_t procIndex(const std::string &FullName) const;

  /// Full name of the runtime division helpers' module.
  static constexpr const char *RuntimeModule = "rt";

private:
  friend class ProcGen;

  void collectAddressTaken();
  void collectAddressTakenExpr(const lang::Expr &E);
  void layoutGlobals();
  Error generateProcs();
  void scheduleProc(MProc &Proc) const;
  void emitObject();
  void emitProcCode(uint32_t ProcIdx, uint64_t Base);

  const lang::Program &P;
  CompileOptions Opts;
  std::vector<const lang::Module *> UnitModules;
  obj::ObjectFile Obj;

  std::map<std::string, uint32_t> SymIndexByName;
  std::map<std::pair<uint32_t, int64_t>, uint32_t> GatIndexBySym;
  std::map<uint64_t, uint32_t> ConstSymByBits;
  std::set<std::string> AddressTaken;
  std::map<std::string, uint32_t> ProcIndexByName;
  std::vector<MProc> Procs;
  std::vector<uint64_t> ProcBase; // text offsets after layout

  uint32_t LiteralIdCounter = 0;
  uint32_t GpPairIdCounter = 0;
  uint32_t ConstCounter = 0;
};

/// Generates machine code for one function into an MProc.
class ProcGen {
public:
  ProcGen(UnitBuilder &Unit, const lang::Module &M, const lang::Function &F,
          MProc &Out);

  /// Generates prologue+body+epilogue. Returns an error message on
  /// resource-limit violations (e.g. over-deep expressions).
  Error run();

private:
  // -- Value stack ------------------------------------------------------
  struct TempVal {
    enum class K : uint8_t {
      IntReg,  // lives in temp register Reg (t0..t7)
      FpReg,   // lives in fp temp register Reg (f10..f15)
      IntImm,  // literal integer Imm
      RealImm, // literal real RealVal
      HomeInt, // aliases callee-saved home register Reg (read-only)
      HomeFp,  // aliases callee-saved fp home register Reg (read-only)
      SpillInt,// spilled to int temp slot Slot
      SpillFp, // spilled to fp temp slot Slot
    };
    K Kind;
    uint8_t Reg = 0;
    uint32_t Slot = 0;
    int64_t Imm = 0;
    double RealVal = 0.0;
  };

  /// A popped integer operand: either a register or an 8-bit literal
  /// usable in operate-format instructions. Owned registers must be
  /// released via releaseIntOperand.
  struct IntOperand {
    bool IsLit = false;
    bool Owned = false;
    uint8_t Reg = 0;
    uint8_t Lit = 0;
  };

  /// A popped floating-point operand (always a register).
  struct FpOperand {
    bool Owned = false;
    uint8_t Reg = 0;
  };

  // -- Variable homes ---------------------------------------------------
  struct Home {
    enum class K : uint8_t { IntReg, FpReg, Stack };
    K Kind;
    uint8_t Reg = 0;
    int32_t SpOffset = 0;
    bool IsReal = false;
  };

  /// Appends an instruction record, attaching any pending label binds.
  void append(MInst MI);
  void emit(isa::Inst I, Note N = Note::None);
  /// Binds \p Label to the position of the next appended instruction.
  void bindLabel(uint32_t Label);
  uint32_t newLabel() { return ++LabelCounter; }

  // Temp register pool.
  uint8_t allocIntReg();
  uint8_t allocFpReg();
  void freeIntReg(uint8_t R);
  void freeFpReg(uint8_t R);
  uint32_t allocIntSlot();
  uint32_t allocFpSlot();
  int32_t intSlotOffset(uint32_t Slot) const;
  int32_t fpSlotOffset(uint32_t Slot) const;

  void pushIntReg(uint8_t R);
  void pushFpReg(uint8_t R);
  void pushIntImm(int64_t V);
  void pushRealImm(double V);

  /// Pops the top (int) entry into an operand; materializes immediates
  /// and spilled values. If \p AllowLit, small immediates become literals.
  IntOperand popIntOperand(bool AllowLit);
  void releaseIntOperand(const IntOperand &Op);
  FpOperand popFpOperand();
  void releaseFpOperand(const FpOperand &Op);
  /// Pops the top entry into a specific architectural register (argument
  /// registers, PV, V0/F0).
  void popIntIntoFixed(uint8_t Dest);
  void popFpIntoFixed(uint8_t Dest);
  /// Pops and drops the top entry, releasing its resources.
  void discardTop();

  /// Spills live temp registers (both files) to their slots, except the
  /// top \p KeepTop entries; used around calls since temp registers are
  /// caller-saved.
  void spillAcrossCall(size_t KeepTop);

  /// Loads the 64-bit address of GAT slot for \p SymIdx into a fresh
  /// register (the paper's "address load"). Marks the load with a Literal
  /// note; if \p AttachUses, subsequent uses must add Lituse notes with
  /// the returned literal id.
  uint8_t emitAddressLoad(uint32_t SymIdx, uint32_t &LiteralIdOut);

  void materializeIntImm(int64_t V, uint8_t Dest);
  uint8_t materializeReal(double V);

  // Expression generation. Results are pushed on the value stack; void
  // calls push nothing.
  Error genExpr(const lang::Expr &E);
  Error genCall(const lang::Expr &E);
  Error genBuiltin(const lang::Expr &E);
  Error genBinary(const lang::Expr &E);
  Error genIndexAddress(const lang::Expr &E, uint8_t &AddrReg,
                        uint32_t &LitOut);
  Error emitRuntimeCall(const std::string &FullName, unsigned NumArgs);
  void emitConservativeCallTo(uint32_t SymIdx);
  void emitGpReset();

  Error genStmt(const lang::Stmt &S);
  Error genAssign(const lang::Stmt &S);

  /// Constant folding: returns true and the folded literal when \p E is a
  /// compile-time constant (guarded by CompileOptions::FoldConstants).
  bool foldInt(const lang::Expr &E, int64_t &Out) const;
  bool foldReal(const lang::Expr &E, double &Out) const;

  void assignHomes();
  void scanForCalls(const std::vector<lang::StmtPtr> &Body);
  void scanStmtForCalls(const lang::Stmt &S);
  void scanExprForCalls(const lang::Expr &E);
  void buildPrologue(std::vector<MInst> &Prologue);
  void buildEpilogue();

  UnitBuilder &Unit;
  const lang::Module &M;
  const lang::Function &F;
  MProc &Out;

  std::vector<Home> ParamHomes;
  std::vector<Home> LocalHomes;
  std::vector<uint8_t> SavedSRegs; // s0..s5 subset, in save order
  std::vector<uint8_t> SavedFRegs; // f2..f9 subset
  bool MakesCalls = false;
  bool NeedsGp = false;

  std::vector<TempVal> Stack;
  bool IntRegBusy[8] = {};   // t0..t7
  bool FpRegBusy[6] = {};    // f10..f15
  bool IntSlotBusy[10] = {};
  bool FpSlotBusy[8] = {};

  // Frame layout (offsets from SP).
  int32_t RaSaveOffset = 0;
  int32_t FirstSRegSave = 0;
  int32_t FirstFRegSave = 0;
  int32_t FirstStackLocal = 0;
  int32_t IntSlotBase = 0;
  int32_t FpSlotBase = 0;
  int32_t FrameSize = 0;
  uint32_t NumStackLocals = 0;

  uint32_t LabelCounter = 0;
  uint32_t EpilogueLabel = 0;
  std::vector<uint32_t> PendingBinds;
  Error DeferredError;
};

} // namespace cg
} // namespace om64

#endif // OM64_CODEGEN_CODEGENIMPL_H

//===- codegen/ProcGen.cpp - Per-procedure code generation ----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates AAX code for one MLang function with the conservative 64-bit
/// conventions of the paper's Figures 1 and 2: GP established from PV on
/// entry, GP recomputed from RA after every JSR, every global reached
/// through an address load from the GAT.
///
//===----------------------------------------------------------------------===//

#include "codegen/CodegenImpl.h"

#include "support/Format.h"

#include <cassert>
#include <cstring>

using namespace om64;
using namespace om64::cg;
using namespace om64::isa;
using namespace om64::lang;

namespace {
/// Number of temp registers/slots in each file.
constexpr unsigned NumIntTemps = 8;  // t0..t7
constexpr unsigned NumFpTemps = 6;   // f10..f15
constexpr unsigned NumIntSlots = 10;
constexpr unsigned NumFpSlots = 8;
constexpr uint8_t FirstFpTemp = 10;
constexpr uint8_t FirstFpSave = 2; // f2..f9 callee-saved

uint64_t bitsOfDouble(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  return Bits;
}
} // namespace

ProcGen::ProcGen(UnitBuilder &Unit, const lang::Module &M,
                 const lang::Function &F, MProc &Out)
    : Unit(Unit), M(M), F(F), Out(Out) {}

//===----------------------------------------------------------------------===//
// Emission primitives.
//===----------------------------------------------------------------------===//

void ProcGen::append(MInst MI) {
  if (!PendingBinds.empty()) {
    MI.LabelsHere.insert(MI.LabelsHere.end(), PendingBinds.begin(),
                         PendingBinds.end());
    PendingBinds.clear();
  }
  Out.Insts.push_back(std::move(MI));
}

void ProcGen::emit(Inst I, Note N) {
  MInst MI;
  MI.I = I;
  MI.N = N;
  append(std::move(MI));
}

void ProcGen::bindLabel(uint32_t Label) { PendingBinds.push_back(Label); }

//===----------------------------------------------------------------------===//
// Register and slot pools.
//===----------------------------------------------------------------------===//

uint8_t ProcGen::allocIntReg() {
  for (unsigned I = 0; I < NumIntTemps; ++I)
    if (!IntRegBusy[I]) {
      IntRegBusy[I] = true;
      return static_cast<uint8_t>(T0 + I);
    }
  // Spill the deepest live int temp to free a register.
  for (TempVal &V : Stack)
    if (V.Kind == TempVal::K::IntReg) {
      uint32_t Slot = allocIntSlot();
      emit(makeMem(Opcode::Stq, V.Reg, intSlotOffset(Slot), SP));
      uint8_t Reg = V.Reg;
      V.Kind = TempVal::K::SpillInt;
      V.Slot = Slot;
      return Reg; // still marked busy; ownership transfers
    }
  DeferredError = Error::failure(Out.FullName + ": integer expression too "
                                               "deep");
  return T0;
}

uint8_t ProcGen::allocFpReg() {
  for (unsigned I = 0; I < NumFpTemps; ++I)
    if (!FpRegBusy[I]) {
      FpRegBusy[I] = true;
      return static_cast<uint8_t>(FirstFpTemp + I);
    }
  for (TempVal &V : Stack)
    if (V.Kind == TempVal::K::FpReg) {
      uint32_t Slot = allocFpSlot();
      emit(makeMem(Opcode::Stt, V.Reg, fpSlotOffset(Slot), SP));
      uint8_t Reg = V.Reg;
      V.Kind = TempVal::K::SpillFp;
      V.Slot = Slot;
      return Reg;
    }
  DeferredError = Error::failure(Out.FullName + ": fp expression too deep");
  return FirstFpTemp;
}

void ProcGen::freeIntReg(uint8_t R) {
  if (R >= T0 && R < T0 + NumIntTemps)
    IntRegBusy[R - T0] = false;
}

void ProcGen::freeFpReg(uint8_t R) {
  if (R >= FirstFpTemp && R < FirstFpTemp + NumFpTemps)
    FpRegBusy[R - FirstFpTemp] = false;
}

uint32_t ProcGen::allocIntSlot() {
  for (unsigned I = 0; I < NumIntSlots; ++I)
    if (!IntSlotBusy[I]) {
      IntSlotBusy[I] = true;
      return I;
    }
  DeferredError = Error::failure(Out.FullName + ": out of int spill slots");
  return 0;
}

uint32_t ProcGen::allocFpSlot() {
  for (unsigned I = 0; I < NumFpSlots; ++I)
    if (!FpSlotBusy[I]) {
      FpSlotBusy[I] = true;
      return I;
    }
  DeferredError = Error::failure(Out.FullName + ": out of fp spill slots");
  return 0;
}

int32_t ProcGen::intSlotOffset(uint32_t Slot) const {
  return IntSlotBase + static_cast<int32_t>(Slot) * 8;
}

int32_t ProcGen::fpSlotOffset(uint32_t Slot) const {
  return FpSlotBase + static_cast<int32_t>(Slot) * 8;
}

void ProcGen::pushIntReg(uint8_t R) {
  TempVal V;
  V.Kind = TempVal::K::IntReg;
  V.Reg = R;
  Stack.push_back(V);
}

void ProcGen::pushFpReg(uint8_t R) {
  TempVal V;
  V.Kind = TempVal::K::FpReg;
  V.Reg = R;
  Stack.push_back(V);
}

void ProcGen::pushIntImm(int64_t Value) {
  TempVal V;
  V.Kind = TempVal::K::IntImm;
  V.Imm = Value;
  Stack.push_back(V);
}

void ProcGen::pushRealImm(double Value) {
  TempVal V;
  V.Kind = TempVal::K::RealImm;
  V.RealVal = Value;
  Stack.push_back(V);
}

//===----------------------------------------------------------------------===//
// Materialization.
//===----------------------------------------------------------------------===//

uint8_t ProcGen::emitAddressLoad(uint32_t SymIdx, uint32_t &LiteralIdOut) {
  uint8_t R = allocIntReg();
  LiteralIdOut = Unit.nextLiteralId();
  MInst MI;
  MI.I = makeMem(Opcode::Ldq, R, 0, GP);
  MI.N = Note::Literal;
  MI.GatIndex = Unit.gatSlot(SymIdx);
  MI.LiteralId = LiteralIdOut;
  append(std::move(MI));
  NeedsGp = true;
  return R;
}

void ProcGen::materializeIntImm(int64_t V, uint8_t Dest) {
  if (fitsDisp16(V)) {
    emit(makeMem(Opcode::Lda, Dest, static_cast<int32_t>(V), Zero));
    return;
  }
  if (fitsDisp32(V)) {
    int32_t High, Low;
    splitDisp32(V, High, Low);
    emit(makeMem(Opcode::Ldah, Dest, High, Zero));
    if (Low != 0)
      emit(makeMem(Opcode::Lda, Dest, Low, Dest));
    return;
  }
  // Wide constants live in the constant pool, reached through the GAT like
  // any other datum (an address load plus a value load).
  uint32_t Lit;
  uint8_t Addr = emitAddressLoad(
      Unit.poolConstant(static_cast<uint64_t>(V)), Lit);
  MInst MI;
  MI.I = makeMem(Opcode::Ldq, Dest, 0, Addr);
  MI.N = Note::LituseBase;
  MI.LiteralId = Lit;
  append(std::move(MI));
  freeIntReg(Addr);
}

uint8_t ProcGen::materializeReal(double V) {
  uint32_t Lit;
  uint8_t Addr = emitAddressLoad(Unit.poolConstant(bitsOfDouble(V)), Lit);
  uint8_t D = allocFpReg();
  MInst MI;
  MI.I = makeMem(Opcode::Ldt, D, 0, Addr);
  MI.N = Note::LituseBase;
  MI.LiteralId = Lit;
  append(std::move(MI));
  freeIntReg(Addr);
  return D;
}

//===----------------------------------------------------------------------===//
// Value-stack pops.
//===----------------------------------------------------------------------===//

ProcGen::IntOperand ProcGen::popIntOperand(bool AllowLit) {
  assert(!Stack.empty() && "pop from empty value stack");
  TempVal V = Stack.back();
  Stack.pop_back();
  IntOperand Op;
  switch (V.Kind) {
  case TempVal::K::IntImm:
    if (AllowLit && V.Imm >= 0 && V.Imm <= 255) {
      Op.IsLit = true;
      Op.Lit = static_cast<uint8_t>(V.Imm);
      return Op;
    }
    Op.Reg = allocIntReg();
    Op.Owned = true;
    materializeIntImm(V.Imm, Op.Reg);
    return Op;
  case TempVal::K::IntReg:
    Op.Reg = V.Reg;
    Op.Owned = true;
    return Op;
  case TempVal::K::HomeInt:
    Op.Reg = V.Reg;
    Op.Owned = false;
    return Op;
  case TempVal::K::SpillInt:
    Op.Reg = allocIntReg();
    Op.Owned = true;
    emit(makeMem(Opcode::Ldq, Op.Reg, intSlotOffset(V.Slot), SP));
    IntSlotBusy[V.Slot] = false;
    return Op;
  default:
    assert(false && "popIntOperand on a non-integer value");
    return Op;
  }
}

void ProcGen::releaseIntOperand(const IntOperand &Op) {
  if (Op.Owned)
    freeIntReg(Op.Reg);
}

ProcGen::FpOperand ProcGen::popFpOperand() {
  assert(!Stack.empty() && "pop from empty value stack");
  TempVal V = Stack.back();
  Stack.pop_back();
  FpOperand Op;
  switch (V.Kind) {
  case TempVal::K::RealImm:
    Op.Reg = materializeReal(V.RealVal);
    Op.Owned = true;
    return Op;
  case TempVal::K::FpReg:
    Op.Reg = V.Reg;
    Op.Owned = true;
    return Op;
  case TempVal::K::HomeFp:
    Op.Reg = V.Reg;
    Op.Owned = false;
    return Op;
  case TempVal::K::SpillFp:
    Op.Reg = allocFpReg();
    Op.Owned = true;
    emit(makeMem(Opcode::Ldt, Op.Reg, fpSlotOffset(V.Slot), SP));
    FpSlotBusy[V.Slot] = false;
    return Op;
  default:
    assert(false && "popFpOperand on a non-fp value");
    return Op;
  }
}

void ProcGen::releaseFpOperand(const FpOperand &Op) {
  if (Op.Owned)
    freeFpReg(Op.Reg);
}

void ProcGen::popIntIntoFixed(uint8_t Dest) {
  assert(!Stack.empty() && "pop from empty value stack");
  TempVal V = Stack.back();
  Stack.pop_back();
  switch (V.Kind) {
  case TempVal::K::IntImm:
    materializeIntImm(V.Imm, Dest);
    return;
  case TempVal::K::IntReg:
    emit(makeOp(Opcode::Bis, V.Reg, V.Reg, Dest));
    freeIntReg(V.Reg);
    return;
  case TempVal::K::HomeInt:
    emit(makeOp(Opcode::Bis, V.Reg, V.Reg, Dest));
    return;
  case TempVal::K::SpillInt:
    emit(makeMem(Opcode::Ldq, Dest, intSlotOffset(V.Slot), SP));
    IntSlotBusy[V.Slot] = false;
    return;
  default:
    assert(false && "popIntIntoFixed on a non-integer value");
  }
}

void ProcGen::popFpIntoFixed(uint8_t Dest) {
  assert(!Stack.empty() && "pop from empty value stack");
  TempVal V = Stack.back();
  Stack.pop_back();
  switch (V.Kind) {
  case TempVal::K::RealImm: {
    uint32_t Lit;
    uint8_t Addr =
        emitAddressLoad(Unit.poolConstant(bitsOfDouble(V.RealVal)), Lit);
    MInst MI;
    MI.I = makeMem(Opcode::Ldt, Dest, 0, Addr);
    MI.N = Note::LituseBase;
    MI.LiteralId = Lit;
    append(std::move(MI));
    freeIntReg(Addr);
    return;
  }
  case TempVal::K::FpReg:
    emit(makeOp(Opcode::Cpys, V.Reg, V.Reg, Dest));
    freeFpReg(V.Reg);
    return;
  case TempVal::K::HomeFp:
    emit(makeOp(Opcode::Cpys, V.Reg, V.Reg, Dest));
    return;
  case TempVal::K::SpillFp:
    emit(makeMem(Opcode::Ldt, Dest, fpSlotOffset(V.Slot), SP));
    FpSlotBusy[V.Slot] = false;
    return;
  default:
    assert(false && "popFpIntoFixed on a non-fp value");
  }
}

void ProcGen::discardTop() {
  assert(!Stack.empty() && "discard from empty value stack");
  TempVal V = Stack.back();
  Stack.pop_back();
  switch (V.Kind) {
  case TempVal::K::IntReg:
    freeIntReg(V.Reg);
    break;
  case TempVal::K::FpReg:
    freeFpReg(V.Reg);
    break;
  case TempVal::K::SpillInt:
    IntSlotBusy[V.Slot] = false;
    break;
  case TempVal::K::SpillFp:
    FpSlotBusy[V.Slot] = false;
    break;
  default:
    break;
  }
}

void ProcGen::spillAcrossCall(size_t KeepTop) {
  assert(KeepTop <= Stack.size() && "keeping more entries than exist");
  size_t Limit = Stack.size() - KeepTop;
  for (size_t I = 0; I < Limit; ++I) {
    TempVal &V = Stack[I];
    if (V.Kind == TempVal::K::IntReg) {
      uint32_t Slot = allocIntSlot();
      emit(makeMem(Opcode::Stq, V.Reg, intSlotOffset(Slot), SP));
      freeIntReg(V.Reg);
      V.Kind = TempVal::K::SpillInt;
      V.Slot = Slot;
    } else if (V.Kind == TempVal::K::FpReg) {
      uint32_t Slot = allocFpSlot();
      emit(makeMem(Opcode::Stt, V.Reg, fpSlotOffset(Slot), SP));
      freeFpReg(V.Reg);
      V.Kind = TempVal::K::SpillFp;
      V.Slot = Slot;
    }
  }
}

//===----------------------------------------------------------------------===//
// Calls.
//===----------------------------------------------------------------------===//

void ProcGen::emitGpReset() {
  // After any JSR the callee may have changed GP; recompute it from the
  // return address (Figure 1's post-call LDAH/LDA pair). Any procedure
  // that calls through PV establishes GP, so it is GP-using.
  NeedsGp = true;
  uint32_t PairId = Unit.nextGpPairId();
  MInst Hi;
  Hi.I = makeMem(Opcode::Ldah, GP, 0, RA);
  Hi.N = Note::GpLdah;
  Hi.GpKind = obj::GpDispKind::PostCall;
  Hi.GpPairId = PairId;
  append(std::move(Hi));
  MInst Lo;
  Lo.I = makeMem(Opcode::Lda, GP, 0, GP);
  Lo.N = Note::GpLda;
  Lo.GpPairId = PairId;
  append(std::move(Lo));
}

void ProcGen::emitConservativeCallTo(uint32_t SymIdx) {
  // Load the destination's address into PV from the GAT, call through it,
  // and re-establish GP afterwards (Figure 1).
  uint32_t Lit = Unit.nextLiteralId();
  MInst Load;
  Load.I = makeMem(Opcode::Ldq, PV, 0, GP);
  Load.N = Note::Literal;
  Load.GatIndex = Unit.gatSlot(SymIdx);
  Load.LiteralId = Lit;
  append(std::move(Load));
  NeedsGp = true;

  MInst Call;
  Call.I = makeJump(Opcode::Jsr, RA, PV);
  Call.N = Note::LituseJsr;
  Call.LiteralId = Lit;
  append(std::move(Call));

  emitGpReset();
}

Error ProcGen::emitRuntimeCall(const std::string &FullName,
                               unsigned NumArgs) {
  // The operands are already on the value stack (deepest = first arg).
  spillAcrossCall(NumArgs);
  for (unsigned I = NumArgs; I-- > 0;)
    popIntIntoFixed(static_cast<uint8_t>(A0 + I));
  emitConservativeCallTo(Unit.internSymbol(FullName));
  uint8_t R = allocIntReg();
  emit(makeOp(Opcode::Bis, V0, V0, R));
  pushIntReg(R);
  return DeferredError;
}

Error ProcGen::genCall(const Expr &E) {
  if (E.BuiltinFunc != Builtin::None)
    return genBuiltin(E);

  for (const ExprPtr &Arg : E.Args)
    if (Error Err = genExpr(*Arg))
      return Err;

  if (E.IsIndirectCall) {
    // Push the funcptr value last, then move it to PV.
    Expr Ptr;
    Ptr.K = Expr::Kind::VarRef;
    Ptr.Name = E.Name;
    Ptr.Qualifier = E.Qualifier;
    Ptr.Ref = E.Ref;
    Ptr.SlotIndex = E.SlotIndex;
    Ptr.TargetModule = E.TargetModule;
    Ptr.Ty = {TypeKind::FuncPtr, 0};
    if (Error Err = genExpr(Ptr))
      return Err;
    spillAcrossCall(E.Args.size() + 1);
    popIntIntoFixed(PV);
    for (size_t I = E.Args.size(); I-- > 0;)
      popIntIntoFixed(static_cast<uint8_t>(A0 + I));
    // No lituse: the destination is a computed value; OM cannot examine it
    // (section 5.1: remaining PV loads are calls through procedure
    // variables).
    emit(makeJump(Opcode::Jsr, RA, PV));
    emitGpReset();
    uint8_t R = allocIntReg();
    emit(makeOp(Opcode::Bis, V0, V0, R));
    pushIntReg(R);
    return DeferredError;
  }

  std::string CalleeFull = E.TargetModule + "." + E.Name;
  spillAcrossCall(E.Args.size());
  // Move arguments into their registers, last first. Position i goes to
  // a<i> for int/funcptr arguments and f<16+i> for real arguments.
  for (size_t I = E.Args.size(); I-- > 0;) {
    if (E.Args[I]->Ty.isReal())
      popFpIntoFixed(static_cast<uint8_t>(FA0 + I));
    else
      popIntIntoFixed(static_cast<uint8_t>(A0 + I));
  }

  if (Unit.isDirectCallee(CalleeFull)) {
    // Compile-time optimized call: direct BSR, no PV load, no GP reset
    // (same unit, same GAT; the callee has no GP prologue). The callee
    // inherits GP from here, so this procedure must have established it.
    NeedsGp = true;
    MInst Call;
    Call.I = makeBranch(Opcode::Bsr, RA, 0);
    Call.N = Note::LocalCall;
    Call.Callee = Unit.procIndex(CalleeFull);
    append(std::move(Call));
  } else {
    emitConservativeCallTo(Unit.internSymbol(CalleeFull));
  }

  if (E.Ty.Kind == TypeKind::Void)
    return DeferredError;
  if (E.Ty.isReal()) {
    uint8_t FR = allocFpReg();
    emit(makeOp(Opcode::Cpys, F0, F0, FR));
    pushFpReg(FR);
  } else {
    uint8_t R = allocIntReg();
    emit(makeOp(Opcode::Bis, V0, V0, R));
    pushIntReg(R);
  }
  return DeferredError;
}

Error ProcGen::genBuiltin(const Expr &E) {
  for (const ExprPtr &Arg : E.Args)
    if (Error Err = genExpr(*Arg))
      return Err;
  switch (E.BuiltinFunc) {
  case Builtin::Trunc: {
    FpOperand Src = popFpOperand();
    uint8_t Tmp = allocFpReg();
    emit(makeOp(Opcode::Cvttq, FZero, Src.Reg, Tmp));
    releaseFpOperand(Src);
    uint8_t R = allocIntReg();
    emit(makeOp(Opcode::Ftoit, Tmp, Zero, R));
    freeFpReg(Tmp);
    pushIntReg(R);
    return DeferredError;
  }
  case Builtin::ToReal: {
    IntOperand Src = popIntOperand(/*AllowLit=*/false);
    uint8_t Bits = allocFpReg();
    emit(makeOp(Opcode::Itoft, Src.Reg, Zero, Bits));
    releaseIntOperand(Src);
    uint8_t R = allocFpReg();
    emit(makeOp(Opcode::Cvtqt, FZero, Bits, R));
    freeFpReg(Bits);
    pushFpReg(R);
    return DeferredError;
  }
  case Builtin::PalPutInt:
  case Builtin::PalPutChar:
  case Builtin::PalHalt: {
    popIntIntoFixed(A0);
    PalFunc Func = E.BuiltinFunc == Builtin::PalPutInt ? PalFunc::PutInt
                   : E.BuiltinFunc == Builtin::PalPutChar
                       ? PalFunc::PutChar
                       : PalFunc::Halt;
    emit(makePal(Func));
    return DeferredError;
  }
  case Builtin::PalPutReal:
    popFpIntoFixed(FA0);
    emit(makePal(PalFunc::PutReal));
    return DeferredError;
  case Builtin::PalCycles: {
    emit(makePal(PalFunc::CycleCount));
    uint8_t R = allocIntReg();
    emit(makeOp(Opcode::Bis, V0, V0, R));
    pushIntReg(R);
    return DeferredError;
  }
  case Builtin::None:
    break;
  }
  assert(false && "not a builtin");
  return Error::failure("internal: not a builtin");
}

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

bool ProcGen::foldInt(const Expr &E, int64_t &Folded) const {
  if (!Unit.options().FoldConstants)
    return false;
  switch (E.K) {
  case Expr::Kind::IntLit:
    Folded = E.IntValue;
    return true;
  case Expr::Kind::Unary: {
    int64_t V;
    if (!foldInt(*E.Args[0], V))
      return false;
    if (E.Op == Tok::Minus) {
      // Wrapping negation, like SUBQ zero, x (and the interpreter).
      Folded = static_cast<int64_t>(0 - static_cast<uint64_t>(V));
      return true;
    }
    Folded = V == 0 ? 1 : 0;
    return true;
  }
  case Expr::Kind::Binary: {
    if (!E.Args[0]->Ty.isInt())
      return false;
    int64_t L, R;
    if (!foldInt(*E.Args[0], L) || !foldInt(*E.Args[1], R))
      return false;
    switch (E.Op) {
    case Tok::Plus:
      Folded = static_cast<int64_t>(static_cast<uint64_t>(L) +
                                    static_cast<uint64_t>(R));
      return true;
    case Tok::Minus:
      Folded = static_cast<int64_t>(static_cast<uint64_t>(L) -
                                    static_cast<uint64_t>(R));
      return true;
    case Tok::Star:
      Folded = static_cast<int64_t>(static_cast<uint64_t>(L) *
                                    static_cast<uint64_t>(R));
      return true;
    case Tok::BitAnd:    Folded = L & R; return true;
    case Tok::BitOr:     Folded = L | R; return true;
    case Tok::BitXor:    Folded = L ^ R; return true;
    case Tok::Shl:       Folded = static_cast<int64_t>(
                             static_cast<uint64_t>(L) << (R & 63));
                         return true;
    case Tok::Shr:       Folded = L >> (R & 63); return true;
    case Tok::EqEq:      Folded = L == R; return true;
    case Tok::NotEq:     Folded = L != R; return true;
    case Tok::Less:      Folded = L < R; return true;
    case Tok::LessEq:    Folded = L <= R; return true;
    case Tok::Greater:   Folded = L > R; return true;
    case Tok::GreaterEq: Folded = L >= R; return true;
    case Tok::KwAnd:     Folded = (L != 0) && (R != 0); return true;
    case Tok::KwOr:      Folded = (L != 0) || (R != 0); return true;
    default:
      return false; // division is a runtime call; do not fold
    }
  }
  default:
    return false;
  }
}

bool ProcGen::foldReal(const Expr &E, double &Folded) const {
  if (!Unit.options().FoldConstants)
    return false;
  switch (E.K) {
  case Expr::Kind::RealLit:
    Folded = E.RealValue;
    return true;
  case Expr::Kind::Unary: {
    double V;
    if (E.Op != Tok::Minus || !foldReal(*E.Args[0], V))
      return false;
    // 0.0 - V, exactly like the unfolded SUBT fzero, x.
    Folded = 0.0 - V;
    return true;
  }
  case Expr::Kind::Binary: {
    double L, R;
    if (!E.Args[0]->Ty.isReal() || !foldReal(*E.Args[0], L) ||
        !foldReal(*E.Args[1], R))
      return false;
    switch (E.Op) {
    case Tok::Plus:  Folded = L + R; return true;
    case Tok::Minus: Folded = L - R; return true;
    case Tok::Star:  Folded = L * R; return true;
    default:
      return false; // fp divide folds would change rounding traps
    }
  }
  default:
    return false;
  }
}

Error ProcGen::genIndexAddress(const Expr &E, uint8_t &AddrReg,
                               uint32_t &LitOut) {
  // Element address = GAT-loaded base + index*8. The scaled add carries a
  // LituseAddr link and the eventual memory operation a LituseDeref link,
  // so the linker can retarget the whole chain to GP-relative form (the
  // paper's "references within reach only via a 32-bit displacement").
  if (Error Err = genExpr(*E.Args[0]))
    return Err;
  IntOperand Idx = popIntOperand(/*AllowLit=*/false);
  uint8_t Base = emitAddressLoad(
      Unit.internSymbol(E.TargetModule + "." + E.Name), LitOut);
  MInst Add;
  Add.I = makeOp(Opcode::S8addq, Idx.Reg, Base, Base);
  Add.N = Note::LituseAddr;
  Add.LiteralId = LitOut;
  append(std::move(Add));
  releaseIntOperand(Idx);
  AddrReg = Base;
  return DeferredError;
}

Error ProcGen::genBinary(const Expr &E) {
  const Expr &LHS = *E.Args[0];
  bool IsRealOperands = LHS.Ty.isReal();

  if (!IsRealOperands) {
    // Integer division and remainder are runtime-library calls (AAX, like
    // the Alpha, has no integer divide instruction).
    if (E.Op == Tok::Slash || E.Op == Tok::Percent) {
      if (Error Err = genExpr(*E.Args[0]))
        return Err;
      if (Error Err = genExpr(*E.Args[1]))
        return Err;
      const char *Helper = E.Op == Tok::Slash ? "divq" : "remq";
      return emitRuntimeCall(
          std::string(UnitBuilder::RuntimeModule) + "." + Helper, 2);
    }
    if (Error Err = genExpr(*E.Args[0]))
      return Err;
    if (Error Err = genExpr(*E.Args[1]))
      return Err;

    // Logical and/or normalize both operands to 0/1 first.
    if (E.Op == Tok::KwAnd || E.Op == Tok::KwOr) {
      IntOperand R = popIntOperand(/*AllowLit=*/false);
      IntOperand L = popIntOperand(/*AllowLit=*/false);
      releaseIntOperand(L);
      releaseIntOperand(R);
      uint8_t NL = allocIntReg();
      emit(makeOpLit(Opcode::Cmpeq, L.Reg, 0, NL));
      emit(makeOpLit(Opcode::Xor, NL, 1, NL));
      uint8_t NR = allocIntReg();
      emit(makeOpLit(Opcode::Cmpeq, R.Reg, 0, NR));
      emit(makeOpLit(Opcode::Xor, NR, 1, NR));
      freeIntReg(NL);
      freeIntReg(NR);
      uint8_t D = allocIntReg();
      emit(makeOp(E.Op == Tok::KwAnd ? Opcode::And : Opcode::Bis, NL, NR,
                  D));
      pushIntReg(D);
      return DeferredError;
    }

    bool Swap = E.Op == Tok::Greater || E.Op == Tok::GreaterEq;
    bool NeedNotEqFixup = E.Op == Tok::NotEq;
    Opcode Op;
    switch (E.Op) {
    case Tok::Plus:      Op = Opcode::Addq; break;
    case Tok::Minus:     Op = Opcode::Subq; break;
    case Tok::Star:      Op = Opcode::Mulq; break;
    case Tok::BitAnd:    Op = Opcode::And; break;
    case Tok::BitOr:     Op = Opcode::Bis; break;
    case Tok::BitXor:    Op = Opcode::Xor; break;
    case Tok::Shl:       Op = Opcode::Sll; break;
    case Tok::Shr:       Op = Opcode::Sra; break;
    case Tok::EqEq:
    case Tok::NotEq:     Op = Opcode::Cmpeq; break;
    case Tok::Less:      Op = Opcode::Cmplt; break;
    case Tok::LessEq:    Op = Opcode::Cmple; break;
    case Tok::Greater:   Op = Opcode::Cmplt; break;
    case Tok::GreaterEq: Op = Opcode::Cmple; break;
    default:
      assert(false && "unhandled int binary op");
      Op = Opcode::Addq;
    }

    if (Swap) {
      // a > b computes b < a; both operands must be registers.
      IntOperand R = popIntOperand(/*AllowLit=*/false);
      IntOperand L = popIntOperand(/*AllowLit=*/false);
      releaseIntOperand(L);
      releaseIntOperand(R);
      uint8_t D = allocIntReg();
      emit(makeOp(Op, R.Reg, L.Reg, D));
      pushIntReg(D);
      return DeferredError;
    }

    IntOperand R = popIntOperand(/*AllowLit=*/true);
    IntOperand L = popIntOperand(/*AllowLit=*/false);
    releaseIntOperand(L);
    releaseIntOperand(R);
    uint8_t D = allocIntReg();
    if (R.IsLit)
      emit(makeOpLit(Op, L.Reg, R.Lit, D));
    else
      emit(makeOp(Op, L.Reg, R.Reg, D));
    if (NeedNotEqFixup)
      emit(makeOpLit(Opcode::Xor, D, 1, D));
    pushIntReg(D);
    return DeferredError;
  }

  // Real operands.
  if (Error Err = genExpr(*E.Args[0]))
    return Err;
  if (Error Err = genExpr(*E.Args[1]))
    return Err;

  bool IsCompare = E.Op == Tok::EqEq || E.Op == Tok::NotEq ||
                   E.Op == Tok::Less || E.Op == Tok::LessEq ||
                   E.Op == Tok::Greater || E.Op == Tok::GreaterEq;
  FpOperand R = popFpOperand();
  FpOperand L = popFpOperand();
  releaseFpOperand(L);
  releaseFpOperand(R);

  if (!IsCompare) {
    Opcode Op;
    switch (E.Op) {
    case Tok::Plus:  Op = Opcode::Addt; break;
    case Tok::Minus: Op = Opcode::Subt; break;
    case Tok::Star:  Op = Opcode::Mult; break;
    case Tok::Slash: Op = Opcode::Divt; break;
    default:
      assert(false && "unhandled real binary op");
      Op = Opcode::Addt;
    }
    uint8_t D = allocFpReg();
    emit(makeOp(Op, L.Reg, R.Reg, D));
    pushFpReg(D);
    return DeferredError;
  }

  // Real comparisons: CMPTxx yields 2.0/0.0 in an fp register; transfer to
  // the integer file and normalize to 0/1.
  bool Swap = E.Op == Tok::Greater || E.Op == Tok::GreaterEq;
  Opcode Op = (E.Op == Tok::EqEq || E.Op == Tok::NotEq) ? Opcode::Cmpteq
              : (E.Op == Tok::Less || E.Op == Tok::Greater)
                  ? Opcode::Cmptlt
                  : Opcode::Cmptle;
  uint8_t FD = allocFpReg();
  if (Swap)
    emit(makeOp(Op, R.Reg, L.Reg, FD));
  else
    emit(makeOp(Op, L.Reg, R.Reg, FD));
  uint8_t D = allocIntReg();
  emit(makeOp(Opcode::Ftoit, FD, Zero, D));
  freeFpReg(FD);
  emit(makeOpLit(Opcode::Cmpeq, D, 0, D));
  if (E.Op != Tok::NotEq)
    emit(makeOpLit(Opcode::Xor, D, 1, D));
  pushIntReg(D);
  return DeferredError;
}

Error ProcGen::genExpr(const Expr &E) {
  if (DeferredError)
    return DeferredError;

  // Constant folding first (the -O2 stand-in).
  if (E.K != Expr::Kind::IntLit && E.K != Expr::Kind::RealLit) {
    int64_t IV;
    double RV;
    if (E.Ty.isInt() && foldInt(E, IV)) {
      pushIntImm(IV);
      return DeferredError;
    }
    if (E.Ty.isReal() && foldReal(E, RV)) {
      pushRealImm(RV);
      return DeferredError;
    }
  }

  switch (E.K) {
  case Expr::Kind::IntLit:
    pushIntImm(E.IntValue);
    return DeferredError;
  case Expr::Kind::RealLit:
    pushRealImm(E.RealValue);
    return DeferredError;
  case Expr::Kind::VarRef: {
    if (E.Ref == RefKind::Param || E.Ref == RefKind::Local) {
      const Home &H = E.Ref == RefKind::Param ? ParamHomes[E.SlotIndex]
                                              : LocalHomes[E.SlotIndex];
      if (H.Kind == Home::K::IntReg) {
        TempVal V;
        V.Kind = TempVal::K::HomeInt;
        V.Reg = H.Reg;
        Stack.push_back(V);
      } else if (H.Kind == Home::K::FpReg) {
        TempVal V;
        V.Kind = TempVal::K::HomeFp;
        V.Reg = H.Reg;
        Stack.push_back(V);
      } else if (E.Ty.isReal()) {
        uint8_t R = allocFpReg();
        emit(makeMem(Opcode::Ldt, R, H.SpOffset, SP));
        pushFpReg(R);
      } else {
        uint8_t R = allocIntReg();
        emit(makeMem(Opcode::Ldq, R, H.SpOffset, SP));
        pushIntReg(R);
      }
      return DeferredError;
    }
    // Global scalar: address load from the GAT, then the value load
    // through the pointer (Figure 2b).
    uint32_t Lit;
    uint8_t Addr = emitAddressLoad(
        Unit.internSymbol(E.TargetModule + "." + E.Name), Lit);
    if (E.Ty.isReal()) {
      uint8_t R = allocFpReg();
      MInst MI;
      MI.I = makeMem(Opcode::Ldt, R, 0, Addr);
      MI.N = Note::LituseBase;
      MI.LiteralId = Lit;
      append(std::move(MI));
      freeIntReg(Addr);
      pushFpReg(R);
    } else {
      MInst MI;
      MI.I = makeMem(Opcode::Ldq, Addr, 0, Addr);
      MI.N = Note::LituseBase;
      MI.LiteralId = Lit;
      append(std::move(MI));
      pushIntReg(Addr);
    }
    return DeferredError;
  }
  case Expr::Kind::Index: {
    uint8_t Addr;
    uint32_t Lit;
    if (Error Err = genIndexAddress(E, Addr, Lit))
      return Err;
    MInst MI;
    MI.N = Note::LituseDeref;
    MI.LiteralId = Lit;
    if (E.Ty.isReal()) {
      uint8_t R = allocFpReg();
      MI.I = makeMem(Opcode::Ldt, R, 0, Addr);
      append(std::move(MI));
      freeIntReg(Addr);
      pushFpReg(R);
    } else {
      MI.I = makeMem(Opcode::Ldq, Addr, 0, Addr);
      append(std::move(MI));
      pushIntReg(Addr);
    }
    return DeferredError;
  }
  case Expr::Kind::Unary: {
    if (Error Err = genExpr(*E.Args[0]))
      return Err;
    if (E.Args[0]->Ty.isReal()) {
      FpOperand Src = popFpOperand();
      releaseFpOperand(Src);
      uint8_t D = allocFpReg();
      emit(makeOp(Opcode::Subt, FZero, Src.Reg, D));
      pushFpReg(D);
      return DeferredError;
    }
    IntOperand Src = popIntOperand(E.Op == Tok::Minus);
    releaseIntOperand(Src);
    uint8_t D = allocIntReg();
    if (E.Op == Tok::Minus) {
      if (Src.IsLit)
        emit(makeOpLit(Opcode::Subq, Zero, Src.Lit, D));
      else
        emit(makeOp(Opcode::Subq, Zero, Src.Reg, D));
    } else {
      emit(makeOpLit(Opcode::Cmpeq, Src.Reg, 0, D));
    }
    pushIntReg(D);
    return DeferredError;
  }
  case Expr::Kind::Binary:
    return genBinary(E);
  case Expr::Kind::Call:
    return genCall(E);
  case Expr::Kind::AddrOf: {
    // The procedure's address comes from the GAT with no lituse link: the
    // value escapes, making the target an address-taken procedure.
    uint32_t Lit;
    uint8_t Addr = emitAddressLoad(
        Unit.internSymbol(E.TargetModule + "." + E.Name), Lit);
    pushIntReg(Addr);
    return DeferredError;
  }
  }
  return Error::failure("internal: unhandled expression kind");
}

//===----------------------------------------------------------------------===//
// Statements.
//===----------------------------------------------------------------------===//

Error ProcGen::genAssign(const Stmt &S) {
  const Expr &Target = *S.Target;
  if (Target.K == Expr::Kind::VarRef &&
      (Target.Ref == RefKind::Param || Target.Ref == RefKind::Local)) {
    if (Error Err = genExpr(*S.Value))
      return Err;
    const Home &H = Target.Ref == RefKind::Param
                        ? ParamHomes[Target.SlotIndex]
                        : LocalHomes[Target.SlotIndex];
    if (H.Kind == Home::K::IntReg) {
      popIntIntoFixed(H.Reg);
    } else if (H.Kind == Home::K::FpReg) {
      popFpIntoFixed(H.Reg);
    } else if (Target.Ty.isReal()) {
      FpOperand V = popFpOperand();
      emit(makeMem(Opcode::Stt, V.Reg, H.SpOffset, SP));
      releaseFpOperand(V);
    } else {
      IntOperand V = popIntOperand(/*AllowLit=*/false);
      emit(makeMem(Opcode::Stq, V.Reg, H.SpOffset, SP));
      releaseIntOperand(V);
    }
    return DeferredError;
  }

  if (Target.K == Expr::Kind::VarRef) {
    // Global scalar (Figure 2c): value, then address load, then store.
    if (Error Err = genExpr(*S.Value))
      return Err;
    uint32_t Lit;
    uint8_t Addr = emitAddressLoad(
        Unit.internSymbol(Target.TargetModule + "." + Target.Name), Lit);
    if (Target.Ty.isReal()) {
      FpOperand V = popFpOperand();
      MInst MI;
      MI.I = makeMem(Opcode::Stt, V.Reg, 0, Addr);
      MI.N = Note::LituseBase;
      MI.LiteralId = Lit;
      append(std::move(MI));
      releaseFpOperand(V);
    } else {
      IntOperand V = popIntOperand(/*AllowLit=*/false);
      MInst MI;
      MI.I = makeMem(Opcode::Stq, V.Reg, 0, Addr);
      MI.N = Note::LituseBase;
      MI.LiteralId = Lit;
      append(std::move(MI));
      releaseIntOperand(V);
    }
    freeIntReg(Addr);
    return DeferredError;
  }

  // Array element.
  assert(Target.K == Expr::Kind::Index && "bad assignment target");
  if (Error Err = genExpr(*S.Value))
    return Err;
  uint8_t Addr;
  uint32_t Lit;
  if (Error Err = genIndexAddress(Target, Addr, Lit))
    return Err;
  MInst MI;
  MI.N = Note::LituseDeref;
  MI.LiteralId = Lit;
  if (Target.Ty.isReal()) {
    FpOperand V = popFpOperand();
    MI.I = makeMem(Opcode::Stt, V.Reg, 0, Addr);
    append(std::move(MI));
    releaseFpOperand(V);
  } else {
    IntOperand V = popIntOperand(/*AllowLit=*/false);
    MI.I = makeMem(Opcode::Stq, V.Reg, 0, Addr);
    append(std::move(MI));
    releaseIntOperand(V);
  }
  freeIntReg(Addr);
  return DeferredError;
}

Error ProcGen::genStmt(const Stmt &S) {
  if (DeferredError)
    return DeferredError;
  switch (S.K) {
  case Stmt::Kind::Assign:
    if (Error Err = genAssign(S))
      return Err;
    break;
  case Stmt::Kind::ExprStmt:
    if (Error Err = genExpr(*S.Value))
      return Err;
    if (S.Value->Ty.Kind != TypeKind::Void)
      discardTop();
    break;
  case Stmt::Kind::If: {
    int64_t Folded;
    if (foldInt(*S.Value, Folded)) {
      const std::vector<StmtPtr> &Taken = Folded ? S.Body : S.ElseBody;
      for (const StmtPtr &Child : Taken)
        if (Error Err = genStmt(*Child))
          return Err;
      break;
    }
    if (Error Err = genExpr(*S.Value))
      return Err;
    IntOperand Cond = popIntOperand(/*AllowLit=*/false);
    releaseIntOperand(Cond);
    uint32_t ElseLabel = newLabel();
    uint32_t EndLabel = S.ElseBody.empty() ? ElseLabel : newLabel();
    {
      MInst Br;
      Br.I = makeBranch(Opcode::Beq, Cond.Reg, 0);
      Br.N = Note::LocalBranch;
      Br.Label = ElseLabel;
      append(std::move(Br));
    }
    for (const StmtPtr &Child : S.Body)
      if (Error Err = genStmt(*Child))
        return Err;
    if (!S.ElseBody.empty()) {
      MInst Br;
      Br.I = makeBranch(Opcode::Br, Zero, 0);
      Br.N = Note::LocalBranch;
      Br.Label = EndLabel;
      append(std::move(Br));
      bindLabel(ElseLabel);
      for (const StmtPtr &Child : S.ElseBody)
        if (Error Err = genStmt(*Child))
          return Err;
    }
    bindLabel(EndLabel);
    break;
  }
  case Stmt::Kind::While: {
    uint32_t BodyLabel = newLabel();
    uint32_t TestLabel = newLabel();
    {
      MInst Br;
      Br.I = makeBranch(Opcode::Br, Zero, 0);
      Br.N = Note::LocalBranch;
      Br.Label = TestLabel;
      append(std::move(Br));
    }
    bindLabel(BodyLabel);
    for (const StmtPtr &Child : S.Body)
      if (Error Err = genStmt(*Child))
        return Err;
    bindLabel(TestLabel);
    if (Error Err = genExpr(*S.Value))
      return Err;
    IntOperand Cond = popIntOperand(/*AllowLit=*/false);
    releaseIntOperand(Cond);
    MInst Br;
    Br.I = makeBranch(Opcode::Bne, Cond.Reg, 0);
    Br.N = Note::LocalBranch;
    Br.Label = BodyLabel; // the backward branch OM-full aligns
    append(std::move(Br));
    break;
  }
  case Stmt::Kind::Return: {
    if (S.Value) {
      if (Error Err = genExpr(*S.Value))
        return Err;
      if (S.Value->Ty.isReal())
        popFpIntoFixed(F0);
      else
        popIntIntoFixed(V0);
    }
    MInst Br;
    Br.I = makeBranch(Opcode::Br, Zero, 0);
    Br.N = Note::LocalBranch;
    Br.Label = EpilogueLabel;
    append(std::move(Br));
    break;
  }
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : S.Body)
      if (Error Err = genStmt(*Child))
        return Err;
    break;
  }
  assert(Stack.empty() && "value stack not empty at statement end");
  return DeferredError;
}

//===----------------------------------------------------------------------===//
// Homes, frame, prologue, epilogue.
//===----------------------------------------------------------------------===//

void ProcGen::scanExprForCalls(const Expr &E) {
  if (E.K == Expr::Kind::Call && E.BuiltinFunc == Builtin::None)
    MakesCalls = true;
  if (E.K == Expr::Kind::Binary && E.Args[0]->Ty.isInt() &&
      (E.Op == Tok::Slash || E.Op == Tok::Percent))
    MakesCalls = true;
  for (const ExprPtr &Child : E.Args)
    scanExprForCalls(*Child);
}

void ProcGen::scanStmtForCalls(const Stmt &S) {
  if (S.Target)
    scanExprForCalls(*S.Target);
  if (S.Value)
    scanExprForCalls(*S.Value);
  for (const StmtPtr &Child : S.Body)
    scanStmtForCalls(*Child);
  for (const StmtPtr &Child : S.ElseBody)
    scanStmtForCalls(*Child);
}

void ProcGen::scanForCalls(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body)
    scanStmtForCalls(*S);
}

void ProcGen::assignHomes() {
  uint8_t NextS = S0;                 // s0..s5
  uint8_t NextF = FirstFpSave;        // f2..f9
  uint32_t StackOrdinal = 0;

  auto assignOne = [&](const LocalVar &V) {
    Home H;
    H.IsReal = V.Ty.isReal();
    if (!H.IsReal && NextS <= S5) {
      H.Kind = Home::K::IntReg;
      H.Reg = NextS++;
      SavedSRegs.push_back(H.Reg);
    } else if (H.IsReal && NextF < FirstFpSave + 8) {
      H.Kind = Home::K::FpReg;
      H.Reg = NextF++;
      SavedFRegs.push_back(H.Reg);
    } else {
      H.Kind = Home::K::Stack;
      H.SpOffset = static_cast<int32_t>(StackOrdinal++); // ordinal for now
    }
    return H;
  };

  for (const LocalVar &P : F.Params)
    ParamHomes.push_back(assignOne(P));
  for (const LocalVar &L : F.Locals)
    LocalHomes.push_back(assignOne(L));
  NumStackLocals = StackOrdinal;

  // Frame layout, offsets from the post-decrement SP.
  int32_t Off = 0;
  if (MakesCalls) {
    RaSaveOffset = 0;
    Off = 8;
  }
  FirstSRegSave = Off;
  Off += 8 * static_cast<int32_t>(SavedSRegs.size());
  FirstFRegSave = Off;
  Off += 8 * static_cast<int32_t>(SavedFRegs.size());
  FirstStackLocal = Off;
  Off += 8 * static_cast<int32_t>(NumStackLocals);
  IntSlotBase = Off;
  Off += 8 * NumIntSlots;
  FpSlotBase = Off;
  Off += 8 * NumFpSlots;
  FrameSize = (Off + 15) & ~15;

  // Replace stack ordinals with real offsets.
  auto fixup = [&](Home &H) {
    if (H.Kind == Home::K::Stack)
      H.SpOffset = FirstStackLocal + 8 * H.SpOffset;
  };
  for (Home &H : ParamHomes)
    fixup(H);
  for (Home &H : LocalHomes)
    fixup(H);
}

void ProcGen::buildPrologue(std::vector<MInst> &Prologue) {
  bool WantGpSet = NeedsGp && !Unit.isDirectCallee(Out.FullName);
  if (WantGpSet) {
    // Figure 1: GP = PV + 32-bit displacement, in an LDAH/LDA pair whose
    // displacement the linker fills (GPDISP relocation, anchor = entry).
    uint32_t PairId = Unit.nextGpPairId();
    MInst Hi;
    Hi.I = makeMem(Opcode::Ldah, GP, 0, PV);
    Hi.N = Note::GpLdah;
    Hi.GpKind = obj::GpDispKind::Prologue;
    Hi.GpPairId = PairId;
    Prologue.push_back(std::move(Hi));
    MInst Lo;
    Lo.I = makeMem(Opcode::Lda, GP, 0, GP);
    Lo.N = Note::GpLda;
    Lo.GpPairId = PairId;
    Prologue.push_back(std::move(Lo));
  }
  auto plain = [&Prologue](Inst I) {
    MInst MI;
    MI.I = I;
    Prologue.push_back(std::move(MI));
  };
  plain(makeMem(Opcode::Lda, SP, -FrameSize, SP));
  if (MakesCalls)
    plain(makeMem(Opcode::Stq, RA, RaSaveOffset, SP));
  for (size_t I = 0; I < SavedSRegs.size(); ++I)
    plain(makeMem(Opcode::Stq, SavedSRegs[I],
                  FirstSRegSave + 8 * static_cast<int32_t>(I), SP));
  for (size_t I = 0; I < SavedFRegs.size(); ++I)
    plain(makeMem(Opcode::Stt, SavedFRegs[I],
                  FirstFRegSave + 8 * static_cast<int32_t>(I), SP));
  // Home the incoming arguments.
  for (size_t I = 0; I < ParamHomes.size(); ++I) {
    const Home &H = ParamHomes[I];
    uint8_t ArgReg = static_cast<uint8_t>(
        (H.IsReal ? unsigned(FA0) : unsigned(A0)) + I);
    if (H.Kind == Home::K::IntReg)
      plain(makeOp(Opcode::Bis, ArgReg, ArgReg, H.Reg));
    else if (H.Kind == Home::K::FpReg)
      plain(makeOp(Opcode::Cpys, ArgReg, ArgReg, H.Reg));
    else if (H.IsReal)
      plain(makeMem(Opcode::Stt, ArgReg, H.SpOffset, SP));
    else
      plain(makeMem(Opcode::Stq, ArgReg, H.SpOffset, SP));
  }
}

void ProcGen::buildEpilogue() {
  // Fallthrough default return value for value-returning functions.
  if (F.ReturnType.Kind == TypeKind::Int ||
      F.ReturnType.Kind == TypeKind::FuncPtr)
    emit(makeOp(Opcode::Bis, Zero, Zero, V0));
  else if (F.ReturnType.Kind == TypeKind::Real)
    emit(makeOp(Opcode::Cpys, FZero, FZero, F0));

  bindLabel(EpilogueLabel);
  if (MakesCalls)
    emit(makeMem(Opcode::Ldq, RA, RaSaveOffset, SP));
  for (size_t I = 0; I < SavedSRegs.size(); ++I)
    emit(makeMem(Opcode::Ldq, SavedSRegs[I],
                 FirstSRegSave + 8 * static_cast<int32_t>(I), SP));
  for (size_t I = 0; I < SavedFRegs.size(); ++I)
    emit(makeMem(Opcode::Ldt, SavedFRegs[I],
                 FirstFRegSave + 8 * static_cast<int32_t>(I), SP));
  emit(makeMem(Opcode::Lda, SP, FrameSize, SP));
  emit(makeJump(Opcode::Ret, Zero, RA));
}

Error ProcGen::run() {
  scanForCalls(F.Body);
  assignHomes();
  EpilogueLabel = newLabel();

  for (const StmtPtr &S : F.Body)
    if (Error Err = genStmt(*S))
      return Err;
  buildEpilogue();

  std::vector<MInst> Prologue;
  buildPrologue(Prologue);
  Out.Insts.insert(Out.Insts.begin(),
                   std::make_move_iterator(Prologue.begin()),
                   std::make_move_iterator(Prologue.end()));

  // Drain any labels still pending (can only be the epilogue label when
  // the body was empty and the epilogue bound it before emitting).
  Out.UsesGp = NeedsGp;
  Out.HasGpPrologue = NeedsGp && !Unit.isDirectCallee(Out.FullName);
  return DeferredError;
}

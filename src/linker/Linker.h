//===- linker/Linker.h - Traditional (non-optimizing) linker ---------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline linker the paper compares OM against: resolves symbols,
/// merges the per-module GATs as literal pools ("removing duplicate
/// addresses and merging the individual GATs into a single large GAT if
/// possible", section 2), lays out text/data in module order, assigns GP
/// values (splitting into multiple GP groups when a merged GAT would
/// exceed the 16-bit displacement reach), and applies relocations. It
/// performs no code modification whatsoever.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_LINKER_LINKER_H
#define OM64_LINKER_LINKER_H

#include "objfile/Image.h"
#include "objfile/ObjectFile.h"
#include "support/Result.h"

#include <vector>

namespace om64 {
namespace lnk {

/// Linking options.
struct LinkOptions {
  /// Maximum number of 8-byte entries in one GAT group (the 16-bit
  /// GP displacement reaches 64 KiB; half below GP, half above). Tests
  /// lower this to exercise multi-GAT splitting.
  unsigned MaxGatEntriesPerGroup = 4096;
  /// Name of the entry procedure.
  std::string EntryName = "main";
};

/// Links the objects into an executable image.
Result<obj::Image> link(const std::vector<obj::ObjectFile> &Objects,
                        const LinkOptions &Opts = LinkOptions());

} // namespace lnk
} // namespace om64

#endif // OM64_LINKER_LINKER_H

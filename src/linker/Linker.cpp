//===- linker/Linker.cpp ---------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"

#include "isa/Inst.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace om64;
using namespace om64::lnk;
using namespace om64::obj;

namespace {

/// Where a symbol definition lives.
struct DefSite {
  size_t ObjIdx;
  uint32_t SymIdx;
};

/// One merged GAT slot.
struct MergedSlot {
  uint32_t Group;
  uint32_t Slot; // within the group
};

/// Linker working state.
class LinkContext {
public:
  LinkContext(const std::vector<ObjectFile> &Objects,
              const LinkOptions &Opts)
      : Objects(Objects), Opts(Opts) {}

  Result<Image> run();

private:
  Error resolveSymbols();
  Error mergeGats();
  void layout();
  Error resolveRef(size_t ObjIdx, uint32_t SymIdx, DefSite &Out) const;
  uint64_t symbolAddress(const DefSite &Site) const;
  Error applyRelocations(Image &Img);
  void patchDisp16(Image &Img, uint64_t TextAddr, int32_t Disp);

  const std::vector<ObjectFile> &Objects;
  const LinkOptions &Opts;

  std::map<std::string, DefSite> ExportedDefs;
  // Per-object bases.
  std::vector<uint64_t> TextBaseOf;
  std::vector<uint64_t> DataOffsetOf; // within initialized data region
  std::vector<uint64_t> BssOffsetOf;  // within bss region
  uint64_t TotalText = 0;
  uint64_t TotalData = 0; // excluding GAT
  uint64_t TotalBss = 0;

  // GAT merging.
  std::vector<uint32_t> GroupOf;               // object -> group
  std::vector<std::vector<std::pair<DefSite, int64_t>>> GroupSlots;
  std::map<std::pair<uint64_t, int64_t>, MergedSlot> SlotByKey;
  std::vector<std::vector<MergedSlot>> LocalToMerged; // [obj][localGatIdx]
  std::vector<uint64_t> GroupBase; // address of each group's GAT
  std::vector<uint64_t> GpValue;   // per group
  uint64_t DataRegionBase = 0;     // address of first object data byte
  uint64_t BssBase = 0;
};

} // namespace

Error LinkContext::resolveSymbols() {
  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx) {
    const ObjectFile &O = Objects[ObjIdx];
    for (uint32_t SymIdx = 0; SymIdx < O.Symbols.size(); ++SymIdx) {
      const Symbol &S = O.Symbols[SymIdx];
      if (!S.IsDefined || !S.IsExported)
        continue;
      auto [It, Inserted] =
          ExportedDefs.emplace(S.Name, DefSite{ObjIdx, SymIdx});
      if (!Inserted)
        return Error::failure("multiply-defined symbol '" + S.Name + "' in " +
                              O.ModuleName + " and " +
                              Objects[It->second.ObjIdx].ModuleName);
    }
  }
  // Every undefined reference must resolve.
  for (const ObjectFile &O : Objects)
    for (const Symbol &S : O.Symbols)
      if (!S.IsDefined && !ExportedDefs.count(S.Name))
        return Error::failure("undefined symbol '" + S.Name +
                              "' referenced from " + O.ModuleName);
  return Error::success();
}

Error LinkContext::resolveRef(size_t ObjIdx, uint32_t SymIdx,
                              DefSite &Out) const {
  const Symbol &S = Objects[ObjIdx].Symbols[SymIdx];
  if (S.IsDefined) {
    Out = DefSite{ObjIdx, SymIdx};
    return Error::success();
  }
  auto It = ExportedDefs.find(S.Name);
  if (It == ExportedDefs.end())
    return Error::failure("undefined symbol '" + S.Name + "'");
  Out = It->second;
  return Error::success();
}

Error LinkContext::mergeGats() {
  GroupOf.resize(Objects.size());
  LocalToMerged.resize(Objects.size());
  uint32_t Group = 0;
  GroupSlots.emplace_back();

  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx) {
    const ObjectFile &O = Objects[ObjIdx];
    // Count how many new (deduplicated) entries this object adds.
    std::vector<std::pair<std::pair<uint64_t, int64_t>, DefSite>> Keys;
    unsigned NewEntries = 0;
    for (const GatEntry &E : O.Gat) {
      DefSite Site;
      if (Error Err = resolveRef(ObjIdx, E.SymbolIndex, Site))
        return Err;
      // Key on the resolved definition identity plus addend.
      auto Key = std::make_pair(
          (static_cast<uint64_t>(Site.ObjIdx) << 32) | Site.SymIdx,
          E.Addend);
      Keys.push_back({Key, Site});
      if (!SlotByKey.count(Key))
        ++NewEntries; // approximate: duplicates inside O counted once below
    }
    // A module's whole GAT must live in one group: start a new group when
    // it no longer fits ("merging into one large GAT will not always be
    // possible", section 2).
    if (GroupSlots[Group].size() + NewEntries > Opts.MaxGatEntriesPerGroup &&
        !GroupSlots[Group].empty()) {
      ++Group;
      GroupSlots.emplace_back();
      // Keys cached in SlotByKey belong to earlier groups; entries shared
      // with them must be re-added to this group, so forget cross-group
      // sharing for this object by re-keying below.
    }
    GroupOf[ObjIdx] = Group;
    LocalToMerged[ObjIdx].reserve(O.Gat.size());
    for (size_t GI = 0; GI < O.Gat.size(); ++GI) {
      auto &KeySite = Keys[GI];
      auto It = SlotByKey.find(KeySite.first);
      if (It != SlotByKey.end() && It->second.Group == Group) {
        LocalToMerged[ObjIdx].push_back(It->second);
        continue;
      }
      MergedSlot Slot{Group,
                      static_cast<uint32_t>(GroupSlots[Group].size())};
      GroupSlots[Group].push_back({KeySite.second, O.Gat[GI].Addend});
      SlotByKey[KeySite.first] = Slot;
      LocalToMerged[ObjIdx].push_back(Slot);
    }
  }
  return Error::success();
}

void LinkContext::layout() {
  // Text: objects in command-line order, 16-byte aligned.
  TextBaseOf.resize(Objects.size());
  uint64_t Cur = 0;
  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx) {
    Cur = (Cur + 15) & ~15ull;
    TextBaseOf[ObjIdx] = Layout::TextBase + Cur;
    Cur += Objects[ObjIdx].Text.size();
  }
  TotalText = Cur;

  // Data region: the merged GAT groups first, then each object's data in
  // module order (the traditional linker does not sort by size; that is
  // OM's improvement), then bss.
  uint64_t DataCur = 0;
  GroupBase.resize(GroupSlots.size());
  GpValue.resize(GroupSlots.size());
  for (size_t G = 0; G < GroupSlots.size(); ++G) {
    GroupBase[G] = Layout::DataBase + DataCur;
    GpValue[G] = GroupBase[G] + 32768;
    DataCur += GroupSlots[G].size() * 8;
  }
  DataRegionBase = Layout::DataBase + DataCur;
  DataOffsetOf.resize(Objects.size());
  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx) {
    DataOffsetOf[ObjIdx] = DataCur;
    DataCur += (Objects[ObjIdx].Data.size() + 7) & ~7ull;
  }
  TotalData = DataCur;

  BssBase = Layout::DataBase + TotalData;
  uint64_t BssCur = 0;
  BssOffsetOf.resize(Objects.size());
  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx) {
    BssOffsetOf[ObjIdx] = BssCur;
    BssCur += (Objects[ObjIdx].BssSize + 7) & ~7ull;
  }
  TotalBss = BssCur;
}

uint64_t LinkContext::symbolAddress(const DefSite &Site) const {
  const Symbol &S = Objects[Site.ObjIdx].Symbols[Site.SymIdx];
  assert(S.IsDefined && "address of undefined symbol");
  switch (S.Section) {
  case SectionKind::Text:
    return TextBaseOf[Site.ObjIdx] + S.Offset;
  case SectionKind::Data:
    return Layout::DataBase + DataOffsetOf[Site.ObjIdx] + S.Offset;
  case SectionKind::Bss:
    return BssBase + BssOffsetOf[Site.ObjIdx] + S.Offset;
  case SectionKind::Lita:
    break;
  }
  assert(false && "symbol in unexpected section");
  return 0;
}

void LinkContext::patchDisp16(Image &Img, uint64_t TextAddr, int32_t Disp) {
  assert(isa::fitsDisp16(Disp) && "patched displacement out of range");
  size_t Off = static_cast<size_t>(TextAddr - Img.TextBase);
  Img.Text[Off] = static_cast<uint8_t>(Disp & 0xFF);
  Img.Text[Off + 1] = static_cast<uint8_t>((Disp >> 8) & 0xFF);
}

Error LinkContext::applyRelocations(Image &Img) {
  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx) {
    const ObjectFile &O = Objects[ObjIdx];
    uint32_t Group = GroupOf[ObjIdx];
    for (const Reloc &R : O.Relocs) {
      switch (R.Kind) {
      case RelocKind::Literal: {
        MergedSlot Slot = LocalToMerged[ObjIdx][R.GatIndex];
        uint64_t SlotAddr = GroupBase[Slot.Group] + Slot.Slot * 8ull;
        int64_t Disp = static_cast<int64_t>(SlotAddr) -
                       static_cast<int64_t>(GpValue[Group]);
        if (!isa::fitsDisp16(Disp))
          return Error::failure(
              formatString("%s: GAT slot out of GP reach (disp %lld)",
                           O.ModuleName.c_str(),
                           static_cast<long long>(Disp)));
        patchDisp16(Img, TextBaseOf[ObjIdx] + R.Offset,
                    static_cast<int32_t>(Disp));
        break;
      }
      case RelocKind::LituseBase:
      case RelocKind::LituseJsr:
      case RelocKind::LituseAddr:
      case RelocKind::LituseDeref:
        break; // analysis hints only
      case RelocKind::GpDisp: {
        uint64_t AnchorAddr = TextBaseOf[ObjIdx] + R.AnchorOffset;
        int64_t Value = static_cast<int64_t>(GpValue[Group]) -
                        static_cast<int64_t>(AnchorAddr);
        if (!isa::fitsDisp32(Value))
          return Error::failure(O.ModuleName +
                                ": GP displacement exceeds 32 bits");
        int32_t High, Low;
        isa::splitDisp32(Value, High, Low);
        patchDisp16(Img, TextBaseOf[ObjIdx] + R.Offset, High);
        patchDisp16(Img, TextBaseOf[ObjIdx] + R.Offset + R.PairOffset, Low);
        break;
      }
      case RelocKind::RefQuad: {
        DefSite Site;
        if (Error Err = resolveRef(ObjIdx, R.SymbolIndex, Site))
          return Err;
        uint64_t Value = symbolAddress(Site) + R.Addend;
        size_t Off = static_cast<size_t>(DataOffsetOf[ObjIdx] + R.Offset);
        for (unsigned Byte = 0; Byte < 8; ++Byte)
          Img.Data[Off + Byte] = static_cast<uint8_t>(Value >> (8 * Byte));
        break;
      }
      }
    }
  }
  return Error::success();
}

Result<Image> LinkContext::run() {
  if (Error Err = resolveSymbols())
    return Result<Image>::failure(Err.message());
  if (Error Err = mergeGats())
    return Result<Image>::failure(Err.message());
  layout();

  Image Img;
  Img.TextBase = Layout::TextBase;
  Img.DataBase = Layout::DataBase;
  Img.BssSize = TotalBss;

  // Text bytes, nop padding between objects.
  Img.Text.assign(TotalText, 0);
  {
    uint32_t NopWord = isa::encode(isa::Inst::nop());
    for (size_t Off = 0; Off + 4 <= Img.Text.size(); Off += 4)
      for (unsigned Byte = 0; Byte < 4; ++Byte)
        Img.Text[Off + Byte] = static_cast<uint8_t>(NopWord >> (8 * Byte));
    for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx)
      std::copy(Objects[ObjIdx].Text.begin(), Objects[ObjIdx].Text.end(),
                Img.Text.begin() +
                    static_cast<ptrdiff_t>(TextBaseOf[ObjIdx] -
                                           Layout::TextBase));
  }

  // Data bytes: GAT groups then object data.
  Img.Data.assign(TotalData, 0);
  for (size_t G = 0; G < GroupSlots.size(); ++G) {
    uint64_t Base = GroupBase[G] - Layout::DataBase;
    for (size_t Slot = 0; Slot < GroupSlots[G].size(); ++Slot) {
      uint64_t Value = symbolAddress(GroupSlots[G][Slot].first) +
                       GroupSlots[G][Slot].second;
      for (unsigned Byte = 0; Byte < 8; ++Byte)
        Img.Data[Base + Slot * 8 + Byte] =
            static_cast<uint8_t>(Value >> (8 * Byte));
    }
  }
  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx)
    std::copy(Objects[ObjIdx].Data.begin(), Objects[ObjIdx].Data.end(),
              Img.Data.begin() + static_cast<ptrdiff_t>(DataOffsetOf[ObjIdx]));

  Img.GatBase = GroupBase.empty() ? Layout::DataBase : GroupBase[0];
  Img.GatSize = 0;
  for (const auto &Slots : GroupSlots)
    Img.GatSize += Slots.size() * 8;

  // Symbols and procedures.
  for (size_t ObjIdx = 0; ObjIdx < Objects.size(); ++ObjIdx) {
    const ObjectFile &O = Objects[ObjIdx];
    for (uint32_t SymIdx = 0; SymIdx < O.Symbols.size(); ++SymIdx) {
      const Symbol &S = O.Symbols[SymIdx];
      if (!S.IsDefined)
        continue;
      ImageSymbol IS;
      IS.Name = S.Name;
      IS.Addr = symbolAddress(DefSite{ObjIdx, SymIdx});
      IS.Size = S.Size;
      IS.IsProcedure = S.IsProcedure;
      Img.Symbols.push_back(std::move(IS));
    }
    for (const ProcDesc &P : O.Procs) {
      ImageProc IP;
      IP.Name = O.Symbols[P.SymbolIndex].Name;
      IP.Entry = TextBaseOf[ObjIdx] + P.TextOffset;
      IP.Size = P.TextSize;
      IP.GpGroup = GroupOf[ObjIdx];
      IP.GpValue = GpValue.empty() ? 0 : GpValue[GroupOf[ObjIdx]];
      Img.Procs.push_back(std::move(IP));
    }
  }

  if (Error Err = applyRelocations(Img))
    return Result<Image>::failure(Err.message());

  // Entry point.
  bool FoundEntry = false;
  for (const ImageProc &P : Img.Procs) {
    size_t Dot = P.Name.rfind('.');
    if (Dot != std::string::npos &&
        P.Name.compare(Dot + 1, std::string::npos, Opts.EntryName) == 0) {
      if (FoundEntry)
        return Result<Image>::failure("multiple '" + Opts.EntryName +
                                      "' procedures");
      Img.Entry = P.Entry;
      Img.InitialGp = P.GpValue;
      FoundEntry = true;
    }
  }
  if (!FoundEntry)
    return Result<Image>::failure("no '" + Opts.EntryName +
                                  "' procedure to use as entry point");
  return Img;
}

Result<Image> om64::lnk::link(const std::vector<ObjectFile> &Objects,
                              const LinkOptions &Opts) {
  LinkContext Ctx(Objects, Opts);
  return Ctx.run();
}

//===- workloads/ProgramsImpl.h - Per-program source factories ------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_WORKLOADS_PROGRAMSIMPL_H
#define OM64_WORKLOADS_PROGRAMSIMPL_H

#include "workloads/Workloads.h"

namespace om64 {
namespace wl {
namespace detail {

std::vector<SourceModule> progAlvinn();
std::vector<SourceModule> progCompress();
std::vector<SourceModule> progDoduc();
std::vector<SourceModule> progEar();
std::vector<SourceModule> progEqntott();
std::vector<SourceModule> progEspresso();
std::vector<SourceModule> progFpppp();
std::vector<SourceModule> progHydro2d();
std::vector<SourceModule> progLi();
std::vector<SourceModule> progMdljdp2();
std::vector<SourceModule> progMdljsp2();
std::vector<SourceModule> progNasa7();
std::vector<SourceModule> progOra();
std::vector<SourceModule> progSc();
std::vector<SourceModule> progSpice();
std::vector<SourceModule> progSu2cor();
std::vector<SourceModule> progSwm256();
std::vector<SourceModule> progTomcatv();
std::vector<SourceModule> progWave5();

} // namespace detail
} // namespace wl
} // namespace om64

#endif // OM64_WORKLOADS_PROGRAMSIMPL_H

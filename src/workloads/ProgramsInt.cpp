//===- workloads/ProgramsInt.cpp - Integer-profile SPEC92-shaped programs -===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integer workloads: compress (hashing and bit manipulation), eqntott
/// (sort/compare over truth-table vectors), espresso (cube operations
/// across many small procedures), li (an interpreter dispatching through
/// procedure variables, whose PV loads OM cannot remove), sc (spreadsheet
/// recalculation with formula dispatch), and spice (fixed-point device
/// evaluation dominated by library-to-library call chains, the section-5.1
/// observation).
///
//===----------------------------------------------------------------------===//

#include "workloads/ProgramsImpl.h"

using namespace om64;
using namespace om64::wl;

std::vector<SourceModule> om64::wl::detail::progCompress() {
  return {{"compress", R"(
module compress;
import prng;
import bits;
import io;

var data: int[16384];
var table: int[512];
var codes: int[512];

export func init_data() {
  var i: int;
  prng.seed(90210);
  i = 0;
  while (i < 16384) {
    data[i] = (i * 2654435761 >> 7) & 255;
    i = i + 1;
  }
  i = 0;
  while (i < 512) {
    table[i] = -1;
    codes[i] = 0;
    i = i + 1;
  }
}

export func hash_pair(prev: int, cur: int): int {
  return ((prev * 2654435761 + cur * 40503) >> 7) & 511;
}

export func encode_pass(): int {
  var i: int;
  var prev: int;
  var h: int;
  var emitted: int;
  var code: int;
  emitted = 0;
  code = 256;
  prev = data[0];
  i = 1;
  while (i < 16384) {
    h = hash_pair(prev, data[i]);
    if (table[h] == (prev << 8 | data[i])) {
      prev = codes[h];
    } else {
      table[h] = prev << 8 | data[i];
      codes[h] = code & 4095;
      code = code + 1;
      emitted = emitted + 1;
      prev = data[i];
    }
    i = i + 1;
  }
  return emitted;
}

export func entropy_proxy(): int {
  var i: int;
  var acc: int;
  acc = 0;
  i = 0;
  while (i < 512) {
    if (table[i] != -1) {
      acc = acc + bits.popcount(table[i]) + bits.ilog2(i + 1);
    }
    i = i + 1;
  }
  return acc;
}

export func main(): int {
  var pass: int;
  var emitted: int;
  init_data();
  pass = 0;
  emitted = 0;
  while (pass < 2) {
    emitted = emitted + encode_pass();
    pass = pass + 1;
  }
  io.print_kv(101, emitted);
  io.print_kv(112, entropy_proxy());
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progEqntott() {
  return {{"eqntott", R"(
module eqntott;
import prng;
import io;

# Truth-table canonicalization: generate product terms, sort them with a
# comparison function (cmppt is where eqntott spent its time), and count
# distinct terms.
var terms: int[256];

export func cmppt(a: int, b: int): int {
  var xa: int;
  var xb: int;
  var i: int;
  i = 0;
  while (i < 8) {
    xa = (a >> (i * 4)) & 15;
    xb = (b >> (i * 4)) & 15;
    if (xa < xb) { return -1; }
    if (xa > xb) { return 1; }
    i = i + 1;
  }
  return 0;
}

export func sort_terms(n: int) {
  var i: int;
  var j: int;
  var key: int;
  var moving: int;
  i = 1;
  while (i < n) {
    key = terms[i];
    j = i - 1;
    moving = 1;
    while (moving == 1 and j >= 0) {
      if (cmppt(terms[j], key) > 0) {
        terms[j + 1] = terms[j];
        j = j - 1;
      } else {
        moving = 0;
      }
    }
    terms[j + 1] = key;
    i = i + 1;
  }
}

export func count_unique(n: int): int {
  var i: int;
  var uniq: int;
  uniq = 1;
  i = 1;
  while (i < n) {
    if (cmppt(terms[i], terms[i - 1]) != 0) {
      uniq = uniq + 1;
    }
    i = i + 1;
  }
  return uniq;
}

export func main(): int {
  var i: int;
  var round: int;
  var total: int;
  prng.seed(55501);
  total = 0;
  round = 0;
  while (round < 3) {
    i = 0;
    while (i < 256) {
      terms[i] = prng.next() & 268435455;
      i = i + 1;
    }
    sort_terms(256);
    total = total + count_unique(256);
    round = round + 1;
  }
  io.print_kv(117, total);
  io.print_int_ln(terms[128]);
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progEspresso() {
  return {
      {"espresso", R"(
module espresso;
import cubes;
import io;

# Two-level logic minimization sketch: expand/reduce passes over a cover
# of cubes, with the cube primitives in their own module (espresso's
# set-operation call pattern).
export func main(): int {
  var pass: int;
  var size: int;
  cubes.init_cover();
  pass = 0;
  size = 0;
  while (pass < 6) {
    cubes.expand_pass();
    size = cubes.reduce_pass();
    pass = pass + 1;
  }
  io.print_kv(115, size);
  io.print_kv(99, cubes.cover_checksum());
  return 0;
}
)"},
      {"cubes", R"(
module cubes;
import bits;
import prng;

var cover: int[128];
var ncubes: int;

export func init_cover() {
  var i: int;
  prng.seed(60035);
  ncubes = 96;
  i = 0;
  while (i < 96) {
    cover[i] = prng.next() & 16777215;
    i = i + 1;
  }
}

export func cube_and(a: int, b: int): int {
  return a & b;
}

export func cube_or(a: int, b: int): int {
  return a | b;
}

export func cube_dist(a: int, b: int): int {
  return bits.popcount(a ^ b);
}

export func covers(a: int, b: int): int {
  if (cube_and(a, b) == b) { return 1; }
  return 0;
}

export func expand_pass() {
  var i: int;
  var j: int;
  i = 0;
  while (i < ncubes) {
    j = 0;
    while (j < ncubes) {
      if (j != i) {
        if (cube_dist(cover[i], cover[j]) <= 2) {
          cover[i] = cube_or(cover[i], cover[j]);
        }
      }
      j = j + 1;
    }
    i = i + 1;
  }
}

export func reduce_pass(): int {
  var i: int;
  var j: int;
  var kept: int;
  var dominated: int;
  kept = 0;
  i = 0;
  while (i < ncubes) {
    dominated = 0;
    j = 0;
    while (j < ncubes) {
      if (j != i and dominated == 0) {
        if (covers(cover[j], cover[i]) == 1 and cover[j] != cover[i]) {
          dominated = 1;
        }
      }
      j = j + 1;
    }
    if (dominated == 0) {
      cover[kept] = cover[i];
      kept = kept + 1;
    }
    i = i + 1;
  }
  ncubes = kept;
  return kept;
}

export func cover_checksum(): int {
  var i: int;
  var acc: int;
  acc = 0;
  i = 0;
  while (i < ncubes) {
    acc = acc ^ (cover[i] * 2654435761);
    i = i + 1;
  }
  return acc & 1048575;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progLi() {
  return {{"li", R"(
module li;
import io;
import prng;

# A bytecode interpreter in the style of xlisp's eval loop: operations
# dispatched through procedure variables. These indirect calls are exactly
# the PV loads OM-full cannot remove (section 5.1).
var stack: int[64];
var sp: int;
var op_add: funcptr;
var op_sub: funcptr;
var op_mul: funcptr;
var op_mod: funcptr;

export func push_val(x: int): int {
  stack[sp & 63] = x;
  sp = sp + 1;
  return sp;
}

export func pop_val(): int {
  sp = sp - 1;
  return stack[sp & 63];
}

export func prim_add(a: int, b: int): int { return a + b; }
export func prim_sub(a: int, b: int): int { return a - b; }
export func prim_mul(a: int, b: int): int { return (a * b) & 1073741823; }
export func prim_mod(a: int, b: int): int {
  if (b == 0) { return 0; }
  return a % b;
}

export func dispatch(opcode: int, a: int, b: int): int {
  if (opcode == 0) { return op_add(a, b); }
  if (opcode == 1) { return op_sub(a, b); }
  if (opcode == 2) { return op_mul(a, b); }
  return op_mod(a, b);
}

export func main(): int {
  var i: int;
  var opcode: int;
  var a: int;
  var b: int;
  var r: int;
  op_add = &prim_add;
  op_sub = &prim_sub;
  op_mul = &prim_mul;
  op_mod = &prim_mod;
  prng.seed(12001);
  sp = 0;
  push_val(7);
  push_val(13);
  i = 0;
  while (i < 6000) {
    opcode = prng.next() & 3;
    b = pop_val();
    a = pop_val();
    r = dispatch(opcode, a, b);
    push_val(r & 65535);
    push_val((a ^ b) & 255 | 1);
    if (sp > 48) { sp = 2; }
    i = i + 1;
  }
  io.print_kv(114, pop_val());
  io.print_kv(115, sp);
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progSc() {
  return {{"sc", R"(
module sc;
import io;
import rt;

# Spreadsheet recalculation: a 16x16 sheet of cells, each with a formula
# kind; formula evaluators are reached through procedure variables held in
# the recalc engine (sc's expression-interpreter pattern).
var cells: int[256];
var kinds: int[256];
var f_sum: funcptr;
var f_diff: funcptr;
var f_scale: funcptr;

export func eval_sum(l: int, u: int): int { return l + u; }
export func eval_diff(l: int, u: int): int { return l - u; }
export func eval_scale(l: int, u: int): int { return (l * 3 + u) / 4; }

export func recalc(): int {
  var r: int;
  var c: int;
  var i: int;
  var left: int;
  var up: int;
  var k: int;
  var changes: int;
  var v: int;
  changes = 0;
  r = 1;
  while (r < 16) {
    c = 1;
    while (c < 16) {
      i = r * 16 + c;
      left = cells[i - 1];
      up = cells[i - 16];
      k = kinds[i];
      if (k == 0) { v = f_sum(left, up); }
      else if (k == 1) { v = f_diff(left, up); }
      else { v = f_scale(left, up); }
      v = v & 1048575;
      if (v != cells[i]) {
        cells[i] = v;
        changes = changes + 1;
      }
      c = c + 1;
    }
    r = r + 1;
  }
  return changes;
}

export func main(): int {
  var i: int;
  var round: int;
  var changes: int;
  f_sum = &eval_sum;
  f_diff = &eval_diff;
  f_scale = &eval_scale;
  i = 0;
  while (i < 256) {
    cells[i] = (i * 37) & 1023;
    kinds[i] = rt.remq(i * 7, 3);
    i = i + 1;
  }
  round = 0;
  changes = 0;
  while (round < 12) {
    changes = changes + recalc();
    round = round + 1;
  }
  io.print_kv(110, changes);
  io.print_int_ln(cells[255]);
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progSpice() {
  return {{"spice", R"(
module spice;
import fixed;
import io;
import rt;

# Circuit simulation in Q16.16 fixed point: Newton iteration on a diode
# network. Nearly every arithmetic step is a library call, and the fixed
# module itself calls rt -- reproducing spice's profile where half the
# static calls are library-to-library (section 5.1).
var vnode: int[32];
var isrc: int[32];

export func diode_current(v: int): int {
  # i = v + v^2/2 + v^3/6 in fixed point (a truncated exponential).
  var v2: int;
  var v3: int;
  v2 = fixed.fmul(v, v);
  v3 = fixed.fmul(v2, v);
  return v + fixed.fdiv(v2, fixed.ffrom(2)) + fixed.fdiv(v3, fixed.ffrom(6));
}

export func conductance(v: int): int {
  # g = d(i)/d(v) = 1 + v + v^2/2.
  var v2: int;
  v2 = fixed.fmul(v, v);
  return fixed.ffrom(1) + v + fixed.fdiv(v2, fixed.ffrom(2));
}

export func newton_node(n: int): int {
  var v: int;
  var i: int;
  var g: int;
  var dv: int;
  v = vnode[n];
  i = diode_current(v) - isrc[n];
  g = conductance(v);
  if (g == 0) { return 0; }
  dv = fixed.fdiv(i, g);
  vnode[n] = v - dv;
  return rt.iabs(dv);
}

export func main(): int {
  var n: int;
  var iter: int;
  var worst: int;
  n = 0;
  while (n < 32) {
    vnode[n] = fixed.fdiv(fixed.ffrom(n & 7), fixed.ffrom(10));
    isrc[n] = fixed.fdiv(fixed.ffrom((n * 3) & 15), fixed.ffrom(20));
    n = n + 1;
  }
  iter = 0;
  worst = 0;
  while (iter < 30) {
    worst = 0;
    n = 0;
    while (n < 32) {
      worst = rt.imax(worst, newton_node(n));
      n = n + 1;
    }
    iter = iter + 1;
  }
  io.print_kv(119, worst);
  io.print_int_ln(vnode[9]);
  return 0;
}
)"}};
}

//===- workloads/Workloads.h - SPEC92-shaped synthetic suite --------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates OM on the SPEC92 suite minus gcc (19 programs).
/// SPEC92 sources and 1994 DEC toolchains are unavailable, so this module
/// provides 19 deterministic MLang programs named after the originals,
/// each with a workload profile shaped like its namesake (FP loop kernels,
/// call-heavy integer code, large basic blocks, interpreter-style indirect
/// dispatch, library-call-heavy code, ...). See DESIGN.md's substitution
/// table.
///
/// A pre-compiled runtime library (modules rt/io/mathlib/prng/accum/workq/
/// bits/fixed) is linked into every program, preserving the paper's key
/// claim that monolithic interprocedural compilation cannot optimize calls
/// into previously compiled libraries but OM can.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_WORKLOADS_WORKLOADS_H
#define OM64_WORKLOADS_WORKLOADS_H

#include "codegen/Codegen.h"
#include "lang/AST.h"
#include "objfile/Image.h"
#include "objfile/ObjectFile.h"
#include "om/Om.h"
#include "support/Result.h"

#include <string>
#include <utility>
#include <vector>

namespace om64 {
namespace wl {

/// A named MLang source buffer.
struct SourceModule {
  std::string Name;
  std::string Source;
};

/// The always-linked runtime library modules, in link order.
std::vector<SourceModule> runtimeModules();

/// Names of the 19 SPEC92-shaped programs (gcc excluded, as in the paper).
const std::vector<std::string> &workloadNames();

/// User-module sources of one workload; empty vector if unknown.
std::vector<SourceModule> workloadSources(const std::string &Name);

/// A parsed+checked workload with its user and runtime module names.
struct ParsedWorkload {
  lang::Program AST;
  std::vector<std::string> UserModules;
  std::vector<std::string> RuntimeModuleNames;
};

/// Parses and semantically checks a workload (user + runtime modules).
Result<ParsedWorkload> parseWorkload(const std::string &Name);

/// The two compilation granularities of section 5.
enum class CompileMode { Each, All };

/// A workload compiled in both modes, with the pre-compiled library.
struct BuiltWorkload {
  std::string Name;
  std::vector<obj::ObjectFile> UserEach; // one object per user module
  obj::ObjectFile UserAll;               // one interprocedural unit
  std::vector<obj::ObjectFile> Library;  // runtime, always compile-each

  /// Objects to link for the given mode (user objects then library).
  std::vector<obj::ObjectFile> linkSet(CompileMode Mode) const;
};

/// Compiles a workload in both modes. \p SchedOn controls the compile-time
/// pipeline scheduler (the paper's compilers schedule; tests turn it off).
Result<BuiltWorkload> buildWorkload(const std::string &Name,
                                    bool SchedOn = true);

/// Links with the traditional linker (the "no link-time optimization"
/// baseline of section 5).
Result<obj::Image> linkBaseline(const BuiltWorkload &W, CompileMode Mode);

/// Links with OM at the given level.
Result<om::OmResult> linkWithOm(const BuiltWorkload &W, CompileMode Mode,
                                const om::OmOptions &Opts);

} // namespace wl
} // namespace om64

#endif // OM64_WORKLOADS_WORKLOADS_H

//===- workloads/Runtime.cpp - The pre-compiled runtime library -----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MLang sources of the runtime library. These modules are always compiled
/// separately (the paper's statically-linked pre-compiled library code):
/// even compile-all builds link them as objects, so calls into them keep
/// the conservative bookkeeping until OM removes it.
///
/// AAX, like the Alpha, has no integer divide instruction; the compiler
/// lowers / and % on int to rt.divq / rt.remq. rt.remq calls rt.divq, one
/// of many library-to-library calls (the spice observation in section 5.1).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace om64;
using namespace om64::wl;

std::vector<SourceModule> om64::wl::runtimeModules() {
  std::vector<SourceModule> Mods;

  Mods.push_back({"rt", R"(
module rt;

# Software integer division (truncating toward zero). AAX has no divide
# instruction. Behaviour for INT64_MIN inputs is unspecified.
export func divq(a: int, b: int): int {
  var ua: int;
  var ub: int;
  var q: int;
  var r: int;
  var i: int;
  var neg: int;
  if (b == 0) { return 0; }
  neg = 0;
  ua = a;
  if (a < 0) { ua = -a; neg = neg + 1; }
  ub = b;
  if (b < 0) { ub = -b; neg = neg + 1; }
  q = 0;
  r = 0;
  i = 63;
  while (i >= 0) {
    r = (r << 1) | ((ua >> i) & 1);
    if (r >= ub) {
      r = r - ub;
      q = q | (1 << i);
    }
    i = i - 1;
  }
  if (neg == 1) { q = -q; }
  return q;
}

export func remq(a: int, b: int): int {
  return a - divq(a, b) * b;
}

export func iabs(x: int): int {
  if (x < 0) { return -x; }
  return x;
}

export func imin(a: int, b: int): int {
  if (a < b) { return a; }
  return b;
}

export func imax(a: int, b: int): int {
  if (a > b) { return a; }
  return b;
}
)"});

  Mods.push_back({"io", R"(
module io;

export func print_int(x: int) { pal_putint(x); }
export func print_char(c: int) { pal_putchar(c); }
export func print_real(x: real) { pal_putreal(x); }
export func newline() { pal_putchar(10); }

export func print_int_ln(x: int) {
  print_int(x);
  newline();
}

export func print_real_ln(x: real) {
  print_real(x);
  newline();
}

# Prints "name=value" where name is a single character.
export func print_kv(name: int, value: int) {
  pal_putchar(name);
  pal_putchar(61);
  print_int(value);
  newline();
}
)"});

  Mods.push_back({"mathlib", R"(
module mathlib;

export func fabs(x: real): real {
  if (x < 0.0) { return -x; }
  return x;
}

export func fmin(a: real, b: real): real {
  if (a < b) { return a; }
  return b;
}

export func fmax(a: real, b: real): real {
  if (a > b) { return a; }
  return b;
}

# Newton-Raphson square root; 24 iterations converge for the magnitudes
# the workloads use.
export func sqrt(x: real): real {
  var g: real;
  var i: int;
  if (x <= 0.0) { return 0.0; }
  g = x;
  if (g > 1.0) { g = g * 0.5 + 0.5; }
  i = 0;
  while (i < 24) {
    g = 0.5 * (g + x / g);
    i = i + 1;
  }
  return g;
}

# Taylor sine for |x| <= pi (callers reduce their own arguments).
export func sin(x: real): real {
  var x2: real;
  var term: real;
  var acc: real;
  x2 = x * x;
  term = x;
  acc = x;
  term = -term * x2 * 0.16666666666666666;
  acc = acc + term;
  term = -term * x2 * 0.05;
  acc = acc + term;
  term = -term * x2 * 0.023809523809523808;
  acc = acc + term;
  term = -term * x2 * 0.013888888888888888;
  acc = acc + term;
  return acc;
}

export func cos(x: real): real {
  var x2: real;
  var term: real;
  var acc: real;
  x2 = x * x;
  term = 1.0;
  acc = 1.0;
  term = -term * x2 * 0.5;
  acc = acc + term;
  term = -term * x2 * 0.08333333333333333;
  acc = acc + term;
  term = -term * x2 * 0.03333333333333333;
  acc = acc + term;
  term = -term * x2 * 0.017857142857142856;
  acc = acc + term;
  return acc;
}

# exp via 12-term Taylor series; adequate for |x| <= 4.
export func exp(x: real): real {
  var term: real;
  var acc: real;
  var i: int;
  term = 1.0;
  acc = 1.0;
  i = 1;
  while (i <= 12) {
    term = term * x / toreal(i);
    acc = acc + term;
    i = i + 1;
  }
  return acc;
}

export func sigmoid(x: real): real {
  return 1.0 / (1.0 + exp(-x));
}

export func pow_int(base: real, n: int): real {
  var acc: real;
  var i: int;
  acc = 1.0;
  i = 0;
  while (i < n) {
    acc = acc * base;
    i = i + 1;
  }
  return acc;
}
)"});

  Mods.push_back({"prng", R"(
module prng;

var state: int = 88172645463325252;

export func seed(s: int) {
  state = s | 1;
}

# xorshift64
export func next(): int {
  var x: int;
  x = state;
  x = x ^ (x << 13);
  x = x ^ ((x >> 7) & 144115188075855871);
  x = x ^ (x << 17);
  state = x;
  return x & 4611686018427387903;
}

export func next_below(n: int): int {
  return next() % n;
}

export func next_real(): real {
  return toreal(next() & 1048575) * 0.00000095367431640625;
}
)"});

  Mods.push_back({"accum", R"(
module accum;
import rt;

var sum: int;
var count: int;
var rsum: real;
var lo: int;
var hi: int;

export func reset() {
  sum = 0;
  count = 0;
  rsum = 0.0;
  lo = 4611686018427387903;
  hi = -4611686018427387903;
}

export func add(x: int) {
  sum = sum + x;
  count = count + 1;
  lo = rt.imin(lo, x);
  hi = rt.imax(hi, x);
}

export func add_real(x: real) {
  rsum = rsum + x;
  count = count + 1;
}

export func mean(): int {
  if (count == 0) { return 0; }
  return sum / count;
}

export func checksum(): int {
  return (sum ^ (count * 2654435761)) ^ (hi - lo);
}

export func real_sum_scaled(): int {
  return trunc(rsum * 1000.0);
}
)"});

  Mods.push_back({"workq", R"(
module workq;

var buf: int[512];
var head: int;
var tail: int;

export func clear() {
  head = 0;
  tail = 0;
}

export func size(): int {
  return tail - head;
}

export func push(x: int): int {
  if (tail - head >= 512) { return 0; }
  buf[tail & 511] = x;
  tail = tail + 1;
  return 1;
}

export func pop(): int {
  var v: int;
  if (head == tail) { return -1; }
  v = buf[head & 511];
  head = head + 1;
  return v;
}
)"});

  Mods.push_back({"bits", R"(
module bits;

export func popcount(x: int): int {
  var n: int;
  var v: int;
  n = 0;
  v = x;
  while (v != 0) {
    v = v & (v - 1);
    n = n + 1;
  }
  return n;
}

export func parity(x: int): int {
  return popcount(x) & 1;
}

export func ilog2(x: int): int {
  var n: int;
  var v: int;
  n = -1;
  v = x;
  while (v > 0) {
    v = v >> 1;
    n = n + 1;
  }
  return n;
}

export func reverse16(x: int): int {
  var v: int;
  var out: int;
  var i: int;
  v = x & 65535;
  out = 0;
  i = 0;
  while (i < 16) {
    out = (out << 1) | (v & 1);
    v = v >> 1;
    i = i + 1;
  }
  return out;
}
)"});

  Mods.push_back({"fixed", R"(
module fixed;
import rt;

# Q16.16 fixed point. fdiv calls into rt: a library-to-library call chain
# like the ones that make half of spice's static call sites (section 5.1).
export func ffrom(x: int): int { return x << 16; }
export func fto(x: int): int { return x >> 16; }

export func fmul(a: int, b: int): int {
  return (a * b) >> 16;
}

export func fdiv(a: int, b: int): int {
  if (b == 0) { return 0; }
  return rt.divq(a << 16, b);
}

export func fsqrt(x: int): int {
  var g: int;
  var i: int;
  if (x <= 0) { return 0; }
  g = x;
  if (g < 65536) { g = 65536; }
  i = 0;
  while (i < 20) {
    g = (g + fdiv(x, g)) >> 1;
    i = i + 1;
  }
  return g;
}
)"});

  return Mods;
}

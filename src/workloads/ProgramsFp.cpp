//===- workloads/ProgramsFp.cpp - FP-profile SPEC92-shaped programs -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The floating-point-heavy workloads. Each is shaped after its SPEC92
/// namesake's published profile: alvinn is a back-propagation network with
/// sigmoid library calls, doduc and fpppp carry large straight-line basic
/// blocks, hydro2d/swm256/tomcatv are grid stencils, mdljdp2/mdljsp2 are
/// pairwise-force N-body kernels, ora is intersection geometry dominated
/// by square roots, su2cor multiplies small matrices over a lattice, ear
/// is a sin/cos filterbank, nasa7 runs seven small numeric kernels, wave5
/// is a particle-in-cell mix of integer and fp work.
///
//===----------------------------------------------------------------------===//

#include "workloads/ProgramsImpl.h"

using namespace om64;
using namespace om64::wl;

std::vector<SourceModule> om64::wl::detail::progAlvinn() {
  return {{"alvinn", R"(
module alvinn;
import mathlib;
import prng;
import io;

var weights: real[8192];
var hidden: real[32];
var input: real[64];
var target: real;

export func init_net() {
  var i: int;
  prng.seed(4242);
  i = 0;
  while (i < 8192) {
    weights[i] = toreal((i * 37 & 255) - 128) * 0.003;
    i = i + 1;
  }
  i = 0;
  while (i < 64) {
    input[i] = prng.next_real();
    i = i + 1;
  }
  target = 0.75;
}

export func forward(): real {
  var h: int;
  var i: int;
  var s: real;
  var out: real;
  h = 0;
  out = 0.0;
  while (h < 32) {
    s = 0.0;
    i = 0;
    while (i < 8) {
      s = s + weights[(h * 256 + i * 33) & 8191] * input[(h + i) & 63];
      i = i + 1;
    }
    hidden[h] = mathlib.sigmoid(s);
    out = out + hidden[h];
    h = h + 1;
  }
  return out * 0.03125;
}

export func train_step(rate: real): real {
  var out: real;
  var err: real;
  var h: int;
  var i: int;
  var g: real;
  out = forward();
  err = target - out;
  h = 0;
  while (h < 32) {
    g = err * hidden[h] * (1.0 - hidden[h]);
    i = 0;
    while (i < 8) {
      weights[(h * 256 + i * 33) & 8191] = weights[(h * 256 + i * 33) & 8191]
                  + rate * g * input[(h + i) & 63];
      i = i + 1;
    }
    h = h + 1;
  }
  return err;
}

export func main(): int {
  var epoch: int;
  var err: real;
  init_net();
  epoch = 0;
  err = 0.0;
  while (epoch < 12) {
    err = train_step(0.08);
    epoch = epoch + 1;
  }
  io.print_int_ln(trunc(err * 1000000.0));
  io.print_int_ln(trunc(forward() * 1000000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progDoduc() {
  return {{"doduc", R"(
module doduc;
import io;
import mathlib;

# Monte-Carlo-free thermohydraulics-style state advance: long basic
# blocks of scalar fp updates with occasional branching, like doduc's
# profile (few loops, big blocks).
var rho: real;
var tm: real;
var pr: real;
var en: real;
var fl: real;
var qual: real;
var vel: real;
var acc: real;

export func advance(dt: real): real {
  var drho: real;
  var dtm: real;
  var dpr: real;
  var den: real;
  var k1: real;
  var k2: real;
  var k3: real;
  var k4: real;
  k1 = rho * vel * 0.125 + pr * 0.001;
  k2 = tm * 0.0625 - en * 0.002 + fl * 0.25;
  k3 = qual * vel - acc * tm * 0.001;
  k4 = pr * rho * 0.0001 + en * 0.03;
  drho = dt * (k1 - k3 * 0.5);
  dtm = dt * (k2 + k4 * 0.25);
  dpr = dt * (k3 - k1 * 0.125 + k2 * 0.0625);
  den = dt * (k4 - k2 * 0.5 + k1 * 0.03125);
  rho = rho + drho;
  tm = tm + dtm;
  pr = pr + dpr;
  en = en + den;
  fl = fl + dt * (vel * 0.01 - fl * 0.02);
  qual = qual + dt * (en * 0.0001 - qual * 0.01);
  vel = vel + dt * (acc * 0.5 - vel * 0.001);
  acc = acc * (1.0 - dt * 0.01) + dt * pr * 0.0001;
  if (rho > 100.0) { rho = rho * 0.5; }
  if (tm > 500.0) { tm = tm - 250.0; }
  if (pr < 0.0) { pr = -pr; }
  return rho + tm + pr + en;
}

export func main(): int {
  var step: int;
  var sum: real;
  rho = 1.2;
  tm = 300.0;
  pr = 14.7;
  en = 2.5;
  fl = 0.8;
  qual = 0.1;
  vel = 3.0;
  acc = 0.05;
  step = 0;
  sum = 0.0;
  while (step < 4000) {
    sum = sum + advance(0.01);
    step = step + 1;
  }
  io.print_int_ln(trunc(sum));
  io.print_int_ln(trunc(mathlib.fabs(vel) * 1000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progEar() {
  return {{"ear", R"(
module ear;
import mathlib;
import io;

# Cochlea-model-style filterbank: banks of resonators driven by a
# synthesized signal; dominated by sin/cos library calls and fp
# multiply-adds.
var bank_re: real[32];
var bank_im: real[32];
var energy: real[32];

export func excite(t: int): real {
  var phase: real;
  var s: real;
  phase = toreal(t & 63) * 0.0981747704;
  s = mathlib.sin(phase) + 0.5 * mathlib.cos(phase * 2.0 - 3.0);
  return s;
}

export func filter_step(x: real) {
  var k: int;
  var w: real;
  var c: real;
  var s: real;
  var re: real;
  var im: real;
  k = 0;
  while (k < 32) {
    w = 0.05 + toreal(k) * 0.01;
    c = 1.0 - w * w * 0.5;
    s = w;
    re = bank_re[k];
    im = bank_im[k];
    bank_re[k] = c * re - s * im + x * 0.1;
    bank_im[k] = s * re + c * im;
    energy[k] = energy[k] * 0.999 + bank_re[k] * bank_re[k];
    k = k + 1;
  }
}

export func main(): int {
  var t: int;
  var k: int;
  var total: real;
  t = 0;
  while (t < 1500) {
    filter_step(excite(t));
    t = t + 1;
  }
  total = 0.0;
  k = 0;
  while (k < 32) {
    total = total + energy[k];
    k = k + 1;
  }
  io.print_int_ln(trunc(total * 100.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progFpppp() {
  // fpppp is famous for very large basic blocks (two-electron integral
  // evaluation); the kernel below is one enormous straight-line block,
  // which is also what makes link-time scheduling superlinearly expensive
  // in Figure 7.
  return {{"fpppp", R"(
module fpppp;
import io;

var g: real[64];

export func twoel(a: real, b: real): real {
  var t0: real;
  var t1: real;
  var t2: real;
  var t3: real;
  var t4: real;
  var t5: real;
  var t6: real;
  var t7: real;
  t0 = a * b + g[0];
  t1 = a - b * g[1];
  t2 = t0 * t1 + g[2];
  t3 = t0 - t1 * g[3];
  t4 = t2 * t3 + g[4];
  t5 = t2 - t3 * g[5];
  t6 = t4 * t5 * 0.05 + g[6];
  t7 = t4 - t5 * g[7];
  t0 = t6 * 0.5 + t7 * 0.25 + g[8];
  t1 = t6 * 0.125 - t7 * 0.0625 + g[9];
  t2 = t0 * t1 * 0.01 + g[10];
  t3 = t0 - t1 + g[11];
  t4 = t2 * 0.5 + t3 * 0.25 + g[12];
  t5 = t2 * 0.125 - t3 * 0.0625 + g[13];
  t6 = t4 * t5 * 0.01 + g[14];
  t7 = t4 - t5 + g[15];
  t0 = t6 * 0.903 + t7 * 0.1 + g[16];
  t1 = t6 * 0.05 - t7 * 0.02 + g[17];
  t2 = t0 * t1 * 0.01 + g[18];
  t3 = t0 - t1 + g[19];
  t4 = t2 * 0.33 + t3 * 0.66 + g[20];
  t5 = t2 * 0.25 - t3 * 0.75 + g[21];
  t6 = t4 * t5 * 0.01 + g[22];
  t7 = t4 - t5 + g[23];
  t0 = t6 + t7 * 0.5 + g[24];
  t1 = t6 - t7 * 0.5 + g[25];
  t2 = t0 * t1 * 0.001 + g[26];
  t3 = t0 - t1 * 0.001 + g[27];
  t4 = t2 + t3 + g[28];
  t5 = t2 - t3 + g[29];
  t6 = t4 * 0.5 + t5 * 0.125 + g[30];
  t7 = t4 * 0.25 - t5 * 0.0625 + g[31];
  return t6 * 1.0001 + t7 * 0.9999;
}

export func setup() {
  var i: int;
  i = 0;
  while (i < 64) {
    g[i] = toreal(i * 7 & 31) * 0.0625 - 0.9;
    i = i + 1;
  }
}

export func main(): int {
  var i: int;
  var acc: real;
  var a: real;
  var b: real;
  setup();
  acc = 0.0;
  a = 0.5;
  b = 1.25;
  i = 0;
  while (i < 3000) {
    acc = acc + twoel(a, b);
    a = a + 0.001;
    b = b - 0.0005;
    if (acc > 1000000.0) { acc = acc * 0.0001; }
    i = i + 1;
  }
  io.print_int_ln(trunc(acc * 10.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progHydro2d() {
  return {{"hydro2d", R"(
module hydro2d;
import io;

# Navier-Stokes-style red-black relaxation over a 32x32 grid.
var grid: real[9216];
var source: real[9216];

export func init_grid() {
  var i: int;
  i = 0;
  while (i < 9216) {
    grid[i] = 0.0;
    source[i] = toreal((i * 31 & 127) - 64) * 0.01;
    i = i + 1;
  }
}

export func sweep(omega: real): real {
  var r: int;
  var c: int;
  var idx: int;
  var v: real;
  var resid: real;
  resid = 0.0;
  r = 1;
  while (r < 95) {
    c = 1;
    while (c < 95) {
      idx = r * 96 + c;
      v = 0.25 * (grid[idx - 1] + grid[idx + 1] + grid[idx - 96]
                  + grid[idx + 96]) - source[idx];
      grid[idx] = grid[idx] + omega * (v - grid[idx]);
      resid = resid + (v - grid[idx]) * (v - grid[idx]);
      c = c + 1;
    }
    r = r + 1;
  }
  return resid;
}

export func main(): int {
  var iter: int;
  var resid: real;
  init_grid();
  iter = 0;
  resid = 0.0;
  while (iter < 6) {
    resid = sweep(1.5);
    iter = iter + 1;
  }
  io.print_int_ln(trunc(resid * 1000000.0));
  io.print_int_ln(trunc(grid[4656] * 1000000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progMdljdp2() {
  return {{"mdljdp2", R"(
module mdljdp2;
import io;

# Lennard-Jones-style molecular dynamics, double precision: pairwise
# forces with 1/r^2 kernels, velocity-Verlet-ish integration.
var px: real[32];
var py: real[32];
var vx: real[32];
var vy: real[32];
var fx: real[32];
var fy: real[32];

export func init_sys() {
  var i: int;
  i = 0;
  while (i < 32) {
    px[i] = toreal(i & 7) * 1.1;
    py[i] = toreal(i >> 3) * 1.1;
    vx[i] = toreal((i * 13 & 15) - 8) * 0.01;
    vy[i] = toreal((i * 29 & 15) - 8) * 0.01;
    i = i + 1;
  }
}

export func forces() {
  var i: int;
  var j: int;
  var dx: real;
  var dy: real;
  var r2: real;
  var inv2: real;
  var inv6: real;
  var f: real;
  i = 0;
  while (i < 32) {
    fx[i] = 0.0;
    fy[i] = 0.0;
    i = i + 1;
  }
  i = 0;
  while (i < 32) {
    j = i + 1;
    while (j < 32) {
      dx = px[i] - px[j];
      dy = py[i] - py[j];
      r2 = dx * dx + dy * dy + 0.01;
      inv2 = 1.0 / r2;
      inv6 = inv2 * inv2 * inv2;
      f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
      fx[i] = fx[i] + f * dx;
      fy[i] = fy[i] + f * dy;
      fx[j] = fx[j] - f * dx;
      fy[j] = fy[j] - f * dy;
      j = j + 1;
    }
    i = i + 1;
  }
}

export func integrate(dt: real): real {
  var i: int;
  var ke: real;
  ke = 0.0;
  i = 0;
  while (i < 32) {
    vx[i] = vx[i] + fx[i] * dt;
    vy[i] = vy[i] + fy[i] * dt;
    px[i] = px[i] + vx[i] * dt;
    py[i] = py[i] + vy[i] * dt;
    ke = ke + vx[i] * vx[i] + vy[i] * vy[i];
    i = i + 1;
  }
  return ke;
}

export func main(): int {
  var step: int;
  var ke: real;
  init_sys();
  step = 0;
  ke = 0.0;
  while (step < 25) {
    forces();
    ke = integrate(0.002);
    step = step + 1;
  }
  io.print_int_ln(trunc(ke * 100000.0));
  io.print_int_ln(trunc(px[17] * 100000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progMdljsp2() {
  return {{"mdljsp2", R"(
module mdljsp2;
import io;
import mathlib;

# The single-precision variant of the MD benchmark: a different force law
# with explicit square roots and a neighbor cutoff.
var px: real[24];
var py: real[24];
var vx: real[24];
var vy: real[24];

export func init_sys() {
  var i: int;
  i = 0;
  while (i < 24) {
    px[i] = toreal(i * 17 & 31) * 0.4;
    py[i] = toreal(i * 5 & 31) * 0.4;
    vx[i] = 0.0;
    vy[i] = 0.0;
    i = i + 1;
  }
}

export func step_sys(dt: real): real {
  var i: int;
  var j: int;
  var dx: real;
  var dy: real;
  var r: real;
  var f: real;
  var pot: real;
  pot = 0.0;
  i = 0;
  while (i < 24) {
    j = 0;
    while (j < 24) {
      if (j != i) {
        dx = px[i] - px[j];
        dy = py[i] - py[j];
        r = mathlib.sqrt(dx * dx + dy * dy + 0.05);
        if (r < 3.0) {
          f = (1.0 - r * 0.333333) / (r * r);
          vx[i] = vx[i] + f * dx * dt;
          vy[i] = vy[i] + f * dy * dt;
          pot = pot + f;
        }
      }
      j = j + 1;
    }
    i = i + 1;
  }
  i = 0;
  while (i < 24) {
    px[i] = px[i] + vx[i] * dt;
    py[i] = py[i] + vy[i] * dt;
    i = i + 1;
  }
  return pot;
}

export func main(): int {
  var step: int;
  var pot: real;
  init_sys();
  step = 0;
  pot = 0.0;
  while (step < 6) {
    pot = pot + step_sys(0.01);
    step = step + 1;
  }
  io.print_int_ln(trunc(pot * 1000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progNasa7() {
  return {
      {"nasa7", R"(
module nasa7;
import kernels;
import io;

# Seven small numeric kernels, each reporting its own checksum, like the
# NASA7 composite benchmark.
export func main(): int {
  kernels.setup();
  io.print_int_ln(kernels.mxm());
  io.print_int_ln(kernels.cholesky_like());
  io.print_int_ln(kernels.butterfly());
  io.print_int_ln(kernels.gauss_step());
  io.print_int_ln(kernels.tridiag());
  io.print_int_ln(kernels.emit());
  io.print_int_ln(kernels.vpenta_like());
  return 0;
}
)"},
      {"kernels", R"(
module kernels;

var a: real[256];
var b: real[256];
var c: real[256];

export func setup() {
  var i: int;
  i = 0;
  while (i < 256) {
    a[i] = toreal((i * 37 & 255) - 128) * 0.01;
    b[i] = toreal((i * 101 & 255) - 128) * 0.005;
    c[i] = 0.0;
    i = i + 1;
  }
}

# 16x16 matrix multiply.
export func mxm(): int {
  var i: int;
  var j: int;
  var k: int;
  var s: real;
  i = 0;
  while (i < 16) {
    j = 0;
    while (j < 16) {
      s = 0.0;
      k = 0;
      while (k < 16) {
        s = s + a[i * 16 + k] * b[k * 16 + j];
        k = k + 1;
      }
      c[i * 16 + j] = s;
      j = j + 1;
    }
    i = i + 1;
  }
  return trunc(c[85] * 100000.0);
}

export func cholesky_like(): int {
  var i: int;
  var j: int;
  var s: real;
  i = 1;
  while (i < 256) {
    s = c[i - 1];
    j = i & 15;
    c[i] = (a[i] - s * 0.125) * (1.0 + toreal(j) * 0.01);
    i = i + 1;
  }
  return trunc(c[200] * 100000.0);
}

export func butterfly(): int {
  var stride: int;
  var i: int;
  var t: real;
  stride = 1;
  while (stride < 128) {
    i = 0;
    while (i + stride < 256) {
      t = a[i] - a[i + stride];
      a[i] = a[i] + a[i + stride];
      a[i + stride] = t * 0.7071;
      i = i + stride * 2;
    }
    stride = stride * 2;
  }
  return trunc(a[64] * 1000.0);
}

export func gauss_step(): int {
  var r: int;
  var k: int;
  var piv: real;
  r = 1;
  while (r < 16) {
    piv = b[r * 16 + r - 1] + 2.0;
    k = 0;
    while (k < 16) {
      b[r * 16 + k] = b[r * 16 + k] - b[(r - 1) * 16 + k] / piv;
      k = k + 1;
    }
    r = r + 1;
  }
  return trunc(b[250] * 100000.0);
}

export func tridiag(): int {
  var i: int;
  i = 1;
  while (i < 255) {
    c[i] = (c[i - 1] + c[i + 1]) * 0.5 + b[i] * 0.1;
    i = i + 1;
  }
  return trunc(c[128] * 100000.0);
}

export func emit(): int {
  var i: int;
  var s: real;
  s = 0.0;
  i = 0;
  while (i < 256) {
    s = s + a[i] * c[i];
    i = i + 1;
  }
  return trunc(s * 1000.0);
}

export func vpenta_like(): int {
  var i: int;
  i = 2;
  while (i < 254) {
    b[i] = b[i] - 0.2 * b[i - 1] - 0.1 * b[i - 2]
           + 0.05 * b[i + 1] + 0.025 * b[i + 2];
    i = i + 1;
  }
  return trunc(b[99] * 100000.0);
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progOra() {
  return {{"ora", R"(
module ora;
import mathlib;
import io;

# Optical ray tracing through spherical surfaces: dominated by square
# roots, like ora.
var hits: int;
var misses: int;

export func trace_ray(ox: real, oy: real, dx: real, dy: real): real {
  var bq: real;
  var cq: real;
  var disc: real;
  var t: real;
  bq = ox * dx + oy * dy;
  cq = ox * ox + oy * oy - 4.0;
  disc = bq * bq - cq;
  if (disc < 0.0) {
    misses = misses + 1;
    return 0.0;
  }
  t = -bq - mathlib.sqrt(disc);
  hits = hits + 1;
  if (t < 0.0) { t = -t; }
  return t;
}

export func main(): int {
  var i: int;
  var acc: real;
  var ox: real;
  var oy: real;
  var dx: real;
  var dy: real;
  var norm: real;
  hits = 0;
  misses = 0;
  acc = 0.0;
  i = 0;
  while (i < 1200) {
    ox = toreal((i * 7 & 127) - 64) * 0.05;
    oy = toreal((i * 13 & 127) - 64) * 0.05;
    dx = toreal((i & 31) - 16) * 0.1 + 0.05;
    dy = 1.0 - dx * 0.5;
    norm = mathlib.sqrt(dx * dx + dy * dy);
    acc = acc + trace_ray(ox, oy, dx / norm, dy / norm);
    i = i + 1;
  }
  io.print_kv(104, hits);
  io.print_kv(109, misses);
  io.print_int_ln(trunc(acc * 1000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progSu2cor() {
  return {{"su2cor", R"(
module su2cor;
import io;
import prng;

# SU(2) lattice-gauge-style 2x2 complex matrix products over a lattice
# (stored as quaternions: 4 reals per link).
var links: real[8192];

export func init_links() {
  var i: int;
  i = 0;
  while (i < 8192) {
    links[i] = toreal((i * 97 & 255) - 128) * 0.003;
    i = i + 1;
  }
}

# Quaternion product of links[4a..] and links[4b..] accumulated into a
# plaquette trace.
export func plaquette(a: int, b: int): real {
  var w1: real;
  var x1: real;
  var y1: real;
  var z1: real;
  var w2: real;
  var x2: real;
  var y2: real;
  var z2: real;
  var w: real;
  w1 = links[a * 4];
  x1 = links[a * 4 + 1];
  y1 = links[a * 4 + 2];
  z1 = links[a * 4 + 3];
  w2 = links[b * 4];
  x2 = links[b * 4 + 1];
  y2 = links[b * 4 + 2];
  z2 = links[b * 4 + 3];
  w = w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2;
  return w;
}

export func main(): int {
  var sweepn: int;
  var s: int;
  var t: real;
  init_links();
  t = 0.0;
  sweepn = 0;
  while (sweepn < 6) {
    s = 0;
    while (s < 2000) {
      t = t + plaquette(s, s + 1);
      links[s * 4] = links[s * 4] * 0.999 + t * 0.00001;
      s = s + 1;
    }
    sweepn = sweepn + 1;
  }
  io.print_int_ln(trunc(t * 10000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progSwm256() {
  return {{"swm256", R"(
module swm256;
import io;

# Shallow-water model: three 24x24 grids updated with neighbor stencils.
var u: real[6400];
var v: real[6400];
var h: real[6400];

export func init_fields() {
  var i: int;
  i = 0;
  while (i < 6400) {
    u[i] = 0.0;
    v[i] = 0.0;
    h[i] = 10.0 + toreal((i * 11 & 63) - 32) * 0.05;
    i = i + 1;
  }
}

export func timestep(dt: real) {
  var r: int;
  var c: int;
  var idx: int;
  var dhdx: real;
  var dhdy: real;
  r = 1;
  while (r < 79) {
    c = 1;
    while (c < 79) {
      idx = r * 80 + c;
      dhdx = (h[idx + 1] - h[idx - 1]) * 0.5;
      dhdy = (h[idx + 80] - h[idx - 80]) * 0.5;
      u[idx] = u[idx] - dt * 9.8 * dhdx;
      v[idx] = v[idx] - dt * 9.8 * dhdy;
      c = c + 1;
    }
    r = r + 1;
  }
  r = 1;
  while (r < 79) {
    c = 1;
    while (c < 79) {
      idx = r * 80 + c;
      h[idx] = h[idx] - dt * 10.0 *
               ((u[idx + 1] - u[idx - 1]) * 0.5 +
                (v[idx + 80] - v[idx - 80]) * 0.5);
      c = c + 1;
    }
    r = r + 1;
  }
}

export func main(): int {
  var step: int;
  var i: int;
  var s: real;
  init_fields();
  step = 0;
  while (step < 5) {
    timestep(0.01);
    step = step + 1;
  }
  s = 0.0;
  i = 0;
  while (i < 6400) {
    s = s + h[i];
    i = i + 1;
  }
  io.print_int_ln(trunc(s * 1000.0));
  io.print_int_ln(trunc(u[3240] * 1000000.0));
  return 0;
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progTomcatv() {
  return {
      {"tomcatv", R"(
module tomcatv;
import mesh;
import io;

# Vectorized mesh generation: iterative smoothing with residual tracking,
# split across two source modules like the original's multi-file build.
export func main(): int {
  var iter: int;
  var rx: int;
  mesh.init_mesh();
  iter = 0;
  rx = 0;
  while (iter < 5) {
    rx = mesh.relax();
    iter = iter + 1;
  }
  io.print_int_ln(rx);
  io.print_int_ln(mesh.corner_sum());
  return 0;
}
)"},
      {"mesh", R"(
module mesh;

var x: real[9216];
var y: real[9216];

export func init_mesh() {
  var r: int;
  var c: int;
  r = 0;
  while (r < 96) {
    c = 0;
    while (c < 96) {
      x[r * 96 + c] = toreal(c) + toreal(r) * 0.05;
      y[r * 96 + c] = toreal(r) + toreal(c * c) * 0.002;
      c = c + 1;
    }
    r = r + 1;
  }
}

export func relax(): int {
  var r: int;
  var c: int;
  var i: int;
  var nx: real;
  var ny: real;
  var res: real;
  res = 0.0;
  r = 1;
  while (r < 95) {
    c = 1;
    while (c < 95) {
      i = r * 96 + c;
      nx = (x[i - 1] + x[i + 1] + x[i - 96] + x[i + 96]) * 0.25;
      ny = (y[i - 1] + y[i + 1] + y[i - 96] + y[i + 96]) * 0.25;
      res = res + (nx - x[i]) * (nx - x[i]) + (ny - y[i]) * (ny - y[i]);
      x[i] = x[i] + (nx - x[i]) * 0.8;
      y[i] = y[i] + (ny - y[i]) * 0.8;
      c = c + 1;
    }
    r = r + 1;
  }
  return trunc(res * 1000000.0);
}

export func corner_sum(): int {
  return trunc((x[97] + y[97] + x[9020] + y[9020]) * 1000.0);
}
)"}};
}

std::vector<SourceModule> om64::wl::detail::progWave5() {
  return {{"wave5", R"(
module wave5;
import io;
import prng;

# Particle-in-cell plasma step: integer particle bookkeeping mixed with
# fp field arithmetic.
var cellq: int[1024];
var efield: real[1024];
var ppos: int[1024];
var pvel: real[1024];

export func deposit() {
  var i: int;
  i = 0;
  while (i < 1024) {
    cellq[i] = 0;
    i = i + 1;
  }
  i = 0;
  while (i < 1024) {
    cellq[ppos[i] & 1023] = cellq[ppos[i] & 1023] + 1;
    i = i + 1;
  }
}

export func solve_field() {
  var i: int;
  var acc: real;
  acc = 0.0;
  i = 0;
  while (i < 1024) {
    acc = acc + toreal(cellq[i] - 1) * 0.125;
    efield[i] = acc;
    i = i + 1;
  }
}

export func push(dt: real) {
  var i: int;
  var c: int;
  i = 0;
  while (i < 1024) {
    c = ppos[i] & 1023;
    pvel[i] = pvel[i] + efield[c] * dt;
    ppos[i] = ppos[i] + trunc(pvel[i]) + 1;
    if (ppos[i] < 0) { ppos[i] = ppos[i] + 1024; }
    i = i + 1;
  }
}

export func main(): int {
  var step: int;
  var i: int;
  var qsum: int;
  var vsum: real;
  prng.seed(31337);
  i = 0;
  while (i < 1024) {
    ppos[i] = prng.next() & 1023;
    pvel[i] = prng.next_real() - 0.5;
    i = i + 1;
  }
  step = 0;
  while (step < 12) {
    deposit();
    solve_field();
    push(0.05);
    step = step + 1;
  }
  qsum = 0;
  i = 0;
  while (i < 1024) {
    qsum = qsum + cellq[i] * i;
    i = i + 1;
  }
  vsum = 0.0;
  i = 0;
  while (i < 1024) {
    vsum = vsum + pvel[i];
    i = i + 1;
  }
  io.print_kv(113, qsum);
  io.print_int_ln(trunc(vsum * 1000.0));
  return 0;
}
)"}};
}

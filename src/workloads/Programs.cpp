//===- workloads/Programs.cpp - Workload registry --------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/ProgramsImpl.h"

using namespace om64;
using namespace om64::wl;

const std::vector<std::string> &om64::wl::workloadNames() {
  // SPEC92 minus gcc, in the paper's figure order.
  static const std::vector<std::string> Names = {
      "alvinn",  "compress", "doduc",   "ear",     "eqntott",
      "espresso", "fpppp",   "hydro2d", "li",      "mdljdp2",
      "mdljsp2", "nasa7",    "ora",     "sc",      "spice",
      "su2cor",  "swm256",   "tomcatv", "wave5"};
  return Names;
}

std::vector<SourceModule>
om64::wl::workloadSources(const std::string &Name) {
  if (Name == "alvinn")   return detail::progAlvinn();
  if (Name == "compress") return detail::progCompress();
  if (Name == "doduc")    return detail::progDoduc();
  if (Name == "ear")      return detail::progEar();
  if (Name == "eqntott")  return detail::progEqntott();
  if (Name == "espresso") return detail::progEspresso();
  if (Name == "fpppp")    return detail::progFpppp();
  if (Name == "hydro2d")  return detail::progHydro2d();
  if (Name == "li")       return detail::progLi();
  if (Name == "mdljdp2")  return detail::progMdljdp2();
  if (Name == "mdljsp2")  return detail::progMdljsp2();
  if (Name == "nasa7")    return detail::progNasa7();
  if (Name == "ora")      return detail::progOra();
  if (Name == "sc")       return detail::progSc();
  if (Name == "spice")    return detail::progSpice();
  if (Name == "su2cor")   return detail::progSu2cor();
  if (Name == "swm256")   return detail::progSwm256();
  if (Name == "tomcatv")  return detail::progTomcatv();
  if (Name == "wave5")    return detail::progWave5();
  return {};
}

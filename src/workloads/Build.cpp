//===- workloads/Build.cpp - Parse/compile/link pipeline ------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "lang/Parser.h"
#include "lang/Sema.h"
#include "linker/Linker.h"

using namespace om64;
using namespace om64::wl;

std::vector<obj::ObjectFile>
BuiltWorkload::linkSet(CompileMode Mode) const {
  std::vector<obj::ObjectFile> Objs;
  if (Mode == CompileMode::Each)
    Objs = UserEach;
  else
    Objs.push_back(UserAll);
  Objs.insert(Objs.end(), Library.begin(), Library.end());
  return Objs;
}

Result<ParsedWorkload> om64::wl::parseWorkload(const std::string &Name) {
  std::vector<SourceModule> User = workloadSources(Name);
  if (User.empty())
    return Result<ParsedWorkload>::failure("unknown workload '" + Name +
                                           "'");
  ParsedWorkload PW;
  DiagnosticEngine Diags;
  for (const SourceModule &SM : User) {
    std::optional<lang::Module> M =
        lang::parseModule(SM.Name, SM.Source, Diags);
    if (!M)
      return Result<ParsedWorkload>::failure("parse error in " + SM.Name +
                                             ":\n" + Diags.render());
    PW.UserModules.push_back(M->Name);
    PW.AST.Modules.push_back(std::move(*M));
  }
  for (const SourceModule &SM : runtimeModules()) {
    std::optional<lang::Module> M =
        lang::parseModule(SM.Name, SM.Source, Diags);
    if (!M)
      return Result<ParsedWorkload>::failure("parse error in runtime " +
                                             SM.Name + ":\n" +
                                             Diags.render());
    PW.RuntimeModuleNames.push_back(M->Name);
    PW.AST.Modules.push_back(std::move(*M));
  }
  if (!lang::analyzeProgram(PW.AST, Diags) ||
      !lang::checkEntryPoint(PW.AST, Diags))
    return Result<ParsedWorkload>::failure("semantic errors in '" + Name +
                                           "':\n" + Diags.render());
  return PW;
}

Result<BuiltWorkload> om64::wl::buildWorkload(const std::string &Name,
                                              bool SchedOn) {
  Result<ParsedWorkload> PW = parseWorkload(Name);
  if (!PW)
    return Result<BuiltWorkload>::failure(PW.message());

  BuiltWorkload W;
  W.Name = Name;

  cg::CompileOptions EachOpts;
  EachOpts.InterUnit = false;
  EachOpts.Schedule = SchedOn;

  // The library is always pre-compiled module-by-module.
  Result<std::vector<obj::ObjectFile>> Lib =
      cg::compileEach(PW->AST, PW->RuntimeModuleNames, EachOpts);
  if (!Lib)
    return Result<BuiltWorkload>::failure(Lib.message());
  W.Library = Lib.take();

  Result<std::vector<obj::ObjectFile>> Each =
      cg::compileEach(PW->AST, PW->UserModules, EachOpts);
  if (!Each)
    return Result<BuiltWorkload>::failure(Each.message());
  W.UserEach = Each.take();

  cg::CompileOptions AllOpts = EachOpts;
  AllOpts.InterUnit = true;
  Result<obj::ObjectFile> All =
      cg::compileUnit(PW->AST, PW->UserModules, AllOpts);
  if (!All)
    return Result<BuiltWorkload>::failure(All.message());
  W.UserAll = All.take();
  return W;
}

Result<obj::Image> om64::wl::linkBaseline(const BuiltWorkload &W,
                                          CompileMode Mode) {
  return lnk::link(W.linkSet(Mode));
}

Result<om::OmResult> om64::wl::linkWithOm(const BuiltWorkload &W,
                                          CompileMode Mode,
                                          const om::OmOptions &Opts) {
  return om::optimize(W.linkSet(Mode), Opts);
}

//===- support/Profile.cpp -------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Profile.h"

#include "support/ByteStream.h"
#include "support/Format.h"

using namespace om64;
using namespace om64::prof;

namespace {

constexpr uint32_t Magic = 0x50584141; // "AAXP" little-endian
constexpr uint32_t Version = 1;

/// Upper bounds on declared counts: a corrupt or hostile length field must
/// not drive a multi-gigabyte allocation before the truncation check can
/// fire. Generous versus anything the 19-workload suite produces.
constexpr uint64_t MaxProcs = 1u << 22;
constexpr uint64_t MaxBranchesPerProc = 1u << 22;
constexpr uint64_t MaxEdges = 1u << 24;
constexpr uint64_t MaxNameBytes = 1u << 12;

} // namespace

bool Profile::empty() const {
  for (const ProcProfile &P : Procs)
    if (P.InstsExecuted != 0)
      return false;
  return true;
}

uint64_t Profile::totalInstructions() const {
  uint64_t Total = 0;
  for (const ProcProfile &P : Procs)
    Total += P.InstsExecuted;
  return Total;
}

std::vector<uint8_t> Profile::serialize() const {
  ByteWriter W;
  W.writeU32(Magic);
  W.writeU32(Version);
  W.writeU32(static_cast<uint32_t>(Procs.size()));
  for (const ProcProfile &P : Procs) {
    W.writeString(P.Name);
    W.writeU64(P.InstsExecuted);
    W.writeU32(static_cast<uint32_t>(P.Branches.size()));
    for (const BranchCounts &B : P.Branches) {
      W.writeU64(B.Executed);
      W.writeU64(B.Taken);
    }
  }
  W.writeU32(static_cast<uint32_t>(Edges.size()));
  for (const CallEdge &E : Edges) {
    W.writeU32(E.Caller);
    W.writeU32(E.Callee);
    W.writeU64(E.Count);
  }
  return W.take();
}

Result<Profile> Profile::deserialize(const std::vector<uint8_t> &Bytes) {
  auto fail = [](const std::string &Msg) {
    return Result<Profile>::failure("invalid profile: " + Msg);
  };
  ByteReader R(Bytes);
  if (R.readU32() != Magic || R.hadError())
    return fail("bad magic (not an AAXP profile)");
  uint32_t V = R.readU32();
  if (R.hadError())
    return fail("truncated header");
  if (V != Version)
    return fail(formatString("version %u, this tool reads version %u", V,
                             Version));

  Profile P;
  uint32_t NumProcs = R.readU32();
  if (R.hadError() || NumProcs > MaxProcs)
    return fail(formatString("implausible procedure count %u", NumProcs));
  P.Procs.reserve(NumProcs);
  for (uint32_t Idx = 0; Idx < NumProcs; ++Idx) {
    ProcProfile Proc;
    Proc.Name = R.readString();
    if (R.hadError() || Proc.Name.empty() ||
        Proc.Name.size() > MaxNameBytes)
      return fail(formatString("bad name for procedure %u", Idx));
    Proc.InstsExecuted = R.readU64();
    uint32_t NumBranches = R.readU32();
    if (R.hadError() || NumBranches > MaxBranchesPerProc)
      return fail(formatString("implausible branch count in %s",
                               Proc.Name.c_str()));
    // 16 bytes per branch record must still be present; checking before
    // the reserve keeps a lying count from allocating unbounded memory.
    if (NumBranches > (Bytes.size() - R.position()) / 16)
      return fail(formatString("truncated branch records in %s",
                               Proc.Name.c_str()));
    Proc.Branches.reserve(NumBranches);
    for (uint32_t B = 0; B < NumBranches; ++B) {
      BranchCounts C;
      C.Executed = R.readU64();
      C.Taken = R.readU64();
      if (C.Taken > C.Executed)
        return fail(formatString(
            "%s branch %u: taken count %llu exceeds executed %llu",
            Proc.Name.c_str(), B, (unsigned long long)C.Taken,
            (unsigned long long)C.Executed));
      Proc.Branches.push_back(C);
    }
    if (R.hadError())
      return fail(formatString("truncated inside procedure %s",
                               Proc.Name.c_str()));
    P.Procs.push_back(std::move(Proc));
  }

  uint32_t NumEdges = R.readU32();
  if (R.hadError() || NumEdges > MaxEdges)
    return fail(formatString("implausible call-edge count %u", NumEdges));
  if (NumEdges > (Bytes.size() - R.position()) / 16)
    return fail("truncated call-edge records");
  P.Edges.reserve(NumEdges);
  for (uint32_t Idx = 0; Idx < NumEdges; ++Idx) {
    CallEdge E;
    E.Caller = R.readU32();
    E.Callee = R.readU32();
    E.Count = R.readU64();
    if (!R.hadError() &&
        (E.Caller >= P.Procs.size() || E.Callee >= P.Procs.size()))
      return fail(formatString("call edge %u references procedure out of "
                               "range (%u -> %u of %zu)",
                               Idx, E.Caller, E.Callee, P.Procs.size()));
    P.Edges.push_back(E);
  }
  if (R.hadError())
    return fail("truncated call-edge records");
  if (!R.atEnd())
    return fail(formatString("%zu trailing bytes after the edge section",
                             Bytes.size() - R.position()));
  return P;
}

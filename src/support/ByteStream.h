//===- support/ByteStream.h - Little-endian byte (de)serialization -------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ByteWriter/ByteReader serialize the object-file and executable formats.
/// All multi-byte values are little-endian, matching the Alpha AXP.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_BYTESTREAM_H
#define OM64_SUPPORT_BYTESTREAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {

/// Appends little-endian scalar values and strings to a growing byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Bytes.push_back(V); }
  void writeU16(uint16_t V);
  void writeU32(uint32_t V);
  void writeU64(uint64_t V);
  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }

  /// Writes a length-prefixed (u32) string.
  void writeString(const std::string &S);

  /// Writes raw bytes with a u64 length prefix.
  void writeBlob(const std::vector<uint8_t> &Blob);

  /// Overwrites 4 bytes at \p Offset; used to patch size fields.
  void patchU32At(size_t Offset, uint32_t V);

  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Reads little-endian scalar values back out of a byte buffer. Reads past
/// the end set a sticky error flag and return zeros rather than trapping, so
/// callers can batch reads and check once.
class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  uint8_t readU8();
  uint16_t readU16();
  uint32_t readU32();
  uint64_t readU64();
  int64_t readI64() { return static_cast<int64_t>(readU64()); }
  std::string readString();
  std::vector<uint8_t> readBlob();

  bool hadError() const { return Failed; }
  bool atEnd() const { return Pos == Bytes.size(); }
  size_t position() const { return Pos; }

private:
  bool ensure(size_t N);

  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace om64

#endif // OM64_SUPPORT_BYTESTREAM_H

//===- support/Profile.h - Execution profiles for layout feedback ---------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact execution-profile format that closes the loop between the
/// timing simulator and OM's profile-guided code layout (the BOLT /
/// Codestitcher direction named in PAPERS.md): `aaxrun --profile-out`
/// serializes one of these from a run, and `omlink --profile-in` consumes
/// it to drive hot/cold basic-block chaining and procedure ordering.
///
/// The profile is keyed *symbolically*, not by address, so it survives the
/// relink it exists to steer: per procedure (by name), the execution and
/// taken counts of every local branch in address order ("the k-th local
/// branch of mod.proc"), plus per-procedure instruction heat and the
/// dynamic call-edge multigraph. Local-branch ordinals are stable between
/// the profiled link and the relink because both run the identical
/// pre-layout pipeline: deletion never removes branches, rescheduling
/// treats branches as barriers (order preserved), and alignment nops /
/// instrumentation counters are not branches.
///
/// On-disk format (ByteWriter little-endian): magic "AAXP", a version
/// word, then length-prefixed sections. Deserialization rejects bad magic,
/// unknown versions, truncation, oversized declared counts, and trailing
/// bytes with a diagnostic rather than trusting any length field.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_PROFILE_H
#define OM64_SUPPORT_PROFILE_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace prof {

/// Dynamic counts of one local branch site (conditional or unconditional
/// BR; never BSR), identified by its ordinal among the procedure's local
/// branches in address order.
struct BranchCounts {
  uint64_t Executed = 0;
  uint64_t Taken = 0; // <= Executed; unconditional BR is always taken
};

/// One procedure's profile.
struct ProcProfile {
  std::string Name;          // "mod.proc", as in Image::Procs
  uint64_t InstsExecuted = 0; // retired instructions attributed to it
  std::vector<BranchCounts> Branches; // by local-branch ordinal
};

/// One dynamic call edge: Caller and Callee index Profile::Procs.
struct CallEdge {
  uint32_t Caller = 0;
  uint32_t Callee = 0;
  uint64_t Count = 0;
};

/// A whole-run execution profile.
struct Profile {
  std::vector<ProcProfile> Procs;
  std::vector<CallEdge> Edges;

  /// True when no procedure recorded any executed instruction (e.g. a
  /// freshly default-constructed profile). OM's layout pass leaves the
  /// image untouched for such profiles.
  bool empty() const;

  /// Total retired instructions across all procedures.
  uint64_t totalInstructions() const;

  /// On-disk representation (magic "AAXP", version 1).
  std::vector<uint8_t> serialize() const;

  /// Parses the on-disk representation. Fails with a diagnostic on bad
  /// magic, version mismatch, truncation, implausible declared counts,
  /// inconsistent counts (Taken > Executed, edge endpoints out of range),
  /// and trailing bytes.
  static Result<Profile> deserialize(const std::vector<uint8_t> &Bytes);
};

} // namespace prof
} // namespace om64

#endif // OM64_SUPPORT_PROFILE_H

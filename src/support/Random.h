//===- support/Random.h - Deterministic PRNG for workload synthesis ------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic pseudo-random generator. The synthetic
/// SPEC92-shaped workloads must be bit-identical across runs and platforms,
/// so no std::random_device / std::mt19937 (whose distributions are not
/// pinned across library versions) is used.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_RANDOM_H
#define OM64_SUPPORT_RANDOM_H

#include <cstdint>

namespace om64 {

/// Deterministic 64-bit PRNG (SplitMix64).
class DetRandom {
public:
  explicit DetRandom(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a value uniformly in [0, Bound); Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a value uniformly in [Lo, Hi] inclusive; requires Lo <= Hi.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a double uniformly in [0, 1).
  double nextUnit();

  /// Returns true with probability Numer/Denom.
  bool chance(uint64_t Numer, uint64_t Denom);

private:
  uint64_t State;
};

} // namespace om64

#endif // OM64_SUPPORT_RANDOM_H

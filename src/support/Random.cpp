//===- support/Random.cpp --------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cassert>

using namespace om64;

uint64_t DetRandom::next() {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

uint64_t DetRandom::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Modulo bias is irrelevant for workload synthesis purposes.
  return next() % Bound;
}

int64_t DetRandom::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

double DetRandom::nextUnit() {
  // 53 bits of mantissa.
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool DetRandom::chance(uint64_t Numer, uint64_t Denom) {
  assert(Denom != 0 && "zero denominator");
  return nextBelow(Denom) < Numer;
}

//===- support/ThreadPool.h - Fixed-size worker pool ----------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for OM's per-procedure pipeline stages.
/// The only primitive is parallelFor: run a body over an index range,
/// distributing indices across the pool (the calling thread participates).
///
/// Design constraints, in order:
///
///   * Determinism. parallelFor makes no promise about which thread runs
///     which index, so callers must write only into per-index slots (and
///     reduce them in index order afterwards). Under that discipline the
///     result is bit-identical for any thread count, which is what lets
///     `omlink -jN` promise byte-identical images to `-j1`.
///   * Zero overhead when serial. A pool of one thread (or a one-element
///     range) runs the body inline on the caller with no locking, so the
///     `-j1` path is exactly the pre-pool serial code.
///   * No exceptions across threads. Library code reports failure through
///     Result/Error values; bodies must store errors into their own slot.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_THREADPOOL_H
#define OM64_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace om64 {

class ThreadPool {
public:
  /// Creates a pool that runs parallelFor bodies on \p ThreadCount threads
  /// in total (the caller plus ThreadCount-1 workers). 0 means
  /// defaultConcurrency(); 1 spawns no workers at all.
  explicit ThreadPool(unsigned ThreadCount = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads that execute a parallelFor, including the caller.
  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs Body(I) for every I in [0, N), on the pool's threads plus the
  /// calling thread, and returns when all N calls have finished. Indices
  /// are claimed dynamically in contiguous chunks of ~N/(threads*8): large
  /// mega-workload ranges amortize the atomic claim to noise while small
  /// ranges still spread across every thread, and because each index runs
  /// exactly once regardless of which thread claims it, chunking cannot
  /// affect results under the per-index-slot discipline above. Not
  /// reentrant: a body must not call parallelFor on the same pool.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// The pool size used for ThreadCount == 0: the hardware concurrency,
  /// clamped to at least 1.
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  const std::function<void(size_t)> *Body = nullptr; // current task
  std::atomic<size_t> NextIndex{0};
  size_t EndIndex = 0;
  size_t ChunkSize = 1; // indices claimed per fetch_add
  uint64_t Generation = 0;  // bumped per parallelFor; wakes workers
  size_t PendingWorkers = 0; // workers yet to finish the current generation
  bool ShuttingDown = false;
};

} // namespace om64

#endif // OM64_SUPPORT_THREADPOOL_H

//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace om64;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = defaultConcurrency();
  Workers.reserve(ThreadCount - 1);
  for (unsigned I = 1; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  while (true) {
    const std::function<void(size_t)> *Task;
    size_t End;
    size_t Chunk;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      Task = Body;
      End = EndIndex;
      Chunk = ChunkSize;
    }
    for (size_t Base; (Base = NextIndex.fetch_add(Chunk)) < End;) {
      size_t Hi = std::min(Base + Chunk, End);
      for (size_t Index = Base; Index < Hi; ++Index)
        (*Task)(Index);
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--PendingWorkers == 0)
        WorkDone.notify_one();
    }
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  // Serial pool, or nothing to share out: run inline, lock-free. This is
  // the -j1 path and must behave exactly like a plain for loop.
  if (Workers.empty() || N == 1) {
    for (size_t Index = 0; Index < N; ++Index)
      Fn(Index);
    return;
  }
  size_t Chunk;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Body = &Fn;
    EndIndex = N;
    NextIndex.store(0, std::memory_order_relaxed);
    // Coarse dynamic chunks: ~8 claims per thread keeps load balance while
    // making the shared fetch_add negligible even at millions of indices.
    ChunkSize = Chunk = std::max<size_t>(1, N / (threadCount() * 8));
    PendingWorkers = Workers.size();
    ++Generation;
  }
  WorkReady.notify_all();
  for (size_t Base; (Base = NextIndex.fetch_add(Chunk)) < N;) {
    size_t Hi = std::min(Base + Chunk, N);
    for (size_t Index = Base; Index < Hi; ++Index)
      Fn(Index);
  }
  std::unique_lock<std::mutex> Lock(Mutex);
  WorkDone.wait(Lock, [&] { return PendingWorkers == 0; });
  Body = nullptr;
}

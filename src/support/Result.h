//===- support/Result.h - Lightweight error propagation ------------------===//
//
// Part of the om64 project: a reproduction of Srivastava & Wall,
// "Link-Time Optimization of Address Calculation on a 64-bit Architecture"
// (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Expected-style result type. The project does not use exceptions
/// (per the compilers-domain coding guide), so fallible operations return
/// Result<T> carrying either a value or a human-readable error message.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_RESULT_H
#define OM64_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace om64 {

/// An error described by a message, or success. Converts to true on error,
/// mirroring llvm::Error's convention.
class Error {
public:
  /// Builds the success value.
  Error() = default;

  /// Builds a failure carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Message = std::move(Message);
    return E;
  }

  /// Builds the success value explicitly.
  static Error success() { return Error(); }

  explicit operator bool() const { return Message.has_value(); }

  /// Returns the message; only valid on failures.
  const std::string &message() const {
    assert(Message && "no message on a success value");
    return *Message;
  }

private:
  std::optional<std::string> Message;
};

/// Holds either a T or an error message. Converts to true on success,
/// mirroring llvm::Expected's convention.
template <typename T> class Result {
public:
  /// Implicitly constructs a success result from a value.
  Result(T Value) : Value(std::move(Value)) {}

  /// Implicitly constructs a failure from an Error.
  Result(Error E) : Message(E.message()) {
    assert(E && "constructing Result failure from a success Error");
  }

  /// Builds a failure carrying \p Message.
  static Result<T> failure(std::string Message) {
    return Result<T>(Error::failure(std::move(Message)));
  }

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing a failed Result");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing a failed Result");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing a failed Result");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing a failed Result");
    return &*Value;
  }

  /// Returns the error message; only valid on failures.
  const std::string &message() const {
    assert(!Value && "no message on a success Result");
    return Message;
  }

  /// Moves the value out of a success result.
  T take() {
    assert(Value && "taking from a failed Result");
    return std::move(*Value);
  }

  /// Converts the failure state into an Error.
  Error takeError() const {
    if (Value)
      return Error::success();
    return Error::failure(Message);
  }

private:
  std::optional<T> Value;
  std::string Message;
};

} // namespace om64

#endif // OM64_SUPPORT_RESULT_H

//===- support/ShardedMap.h - Sharded concurrent string interning ---------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mutex-sharded string-to-id map for concurrent symbol interning, the
/// mold-style alternative to guarding one global symbol table: writers
/// contend only within a shard (picked by the name's hash), so parallel
/// object parsing scales while lookups stay exact.
///
/// Determinism caveat, by design: when two threads insert the *same* key
/// with different values, which value wins is a race. Callers that need a
/// deterministic winner (OM's multiply-defined-symbol diagnosis) must
/// follow the parallel insert phase with a serial input-order scan that
/// compares each insertion's id against the resident one — the map makes
/// that cheap, it does not make it unnecessary.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_SHARDEDMAP_H
#define OM64_SUPPORT_SHARDEDMAP_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace om64 {

/// String keys to 32-bit ids, sharded 16 ways.
class ShardedStringMap {
public:
  /// Inserts Name -> Id if absent and returns the resident id (the already
  /// present one on collision). Thread-safe.
  uint32_t insert(const std::string &Name, uint32_t Id) {
    Shard &S = shardOf(Name);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    return S.Map.emplace(Name, Id).first->second;
  }

  /// Returns the id mapped to Name, or ~0u when absent. Thread-safe.
  uint32_t lookup(const std::string &Name) const {
    const Shard &S = shardOf(Name);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Name);
    return It == S.Map.end() ? ~0u : It->second;
  }

private:
  static constexpr unsigned NumShards = 16;

  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<std::string, uint32_t> Map;
  };

  Shard &shardOf(const std::string &Name) {
    return Shards[std::hash<std::string>{}(Name) % NumShards];
  }
  const Shard &shardOf(const std::string &Name) const {
    return Shards[std::hash<std::string>{}(Name) % NumShards];
  }

  Shard Shards[NumShards];
};

} // namespace om64

#endif // OM64_SUPPORT_SHARDEDMAP_H

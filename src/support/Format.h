//===- support/Format.h - printf-style std::string formatting ------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers. The project avoids <iostream> in library code
/// (per the coding guide); formatted text is built with these helpers and
/// written with stdio at the tool boundary.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_FORMAT_H
#define OM64_SUPPORT_FORMAT_H

#include "support/Result.h"

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace om64 {

/// Returns the printf-style formatting of the arguments as a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Returns \p Value formatted as a 0x-prefixed, zero-padded 64-bit hex
/// number, e.g. "0x0000000120000040".
std::string formatHex64(uint64_t Value);

/// Returns \p S padded with spaces on the right to at least \p Width.
std::string padRight(std::string S, size_t Width);

/// Returns \p S padded with spaces on the left to at least \p Width.
std::string padLeft(std::string S, size_t Width);

/// Splits \p S on \p Sep; keeps empty fields.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// Strict decimal parse for CLI numeric arguments. Accepts only a
/// non-empty, all-digit string whose value fits in uint64_t and is at most
/// \p Max; anything else ("abc", "4x", "", "-1", overflow) fails with a
/// message quoting the input. Unlike strtoul, trailing garbage and
/// wraparound are errors, never silent truncation.
Result<uint64_t> parseUnsigned(const std::string &S, uint64_t Max = ~0ull);

} // namespace om64

#endif // OM64_SUPPORT_FORMAT_H

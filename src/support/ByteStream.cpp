//===- support/ByteStream.cpp ---------------------------------------------==//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"

#include <cassert>
#include <cstddef>
#include <cstring>

using namespace om64;

void ByteWriter::writeU16(uint16_t V) {
  writeU8(static_cast<uint8_t>(V & 0xFF));
  writeU8(static_cast<uint8_t>(V >> 8));
}

void ByteWriter::writeU32(uint32_t V) {
  writeU16(static_cast<uint16_t>(V & 0xFFFF));
  writeU16(static_cast<uint16_t>(V >> 16));
}

void ByteWriter::writeU64(uint64_t V) {
  writeU32(static_cast<uint32_t>(V & 0xFFFFFFFFu));
  writeU32(static_cast<uint32_t>(V >> 32));
}

void ByteWriter::writeString(const std::string &S) {
  writeU32(static_cast<uint32_t>(S.size()));
  Bytes.insert(Bytes.end(), S.begin(), S.end());
}

void ByteWriter::writeBlob(const std::vector<uint8_t> &Blob) {
  writeU64(Blob.size());
  Bytes.insert(Bytes.end(), Blob.begin(), Blob.end());
}

void ByteWriter::patchU32At(size_t Offset, uint32_t V) {
  assert(Offset + 4 <= Bytes.size() && "patch out of range");
  Bytes[Offset] = static_cast<uint8_t>(V & 0xFF);
  Bytes[Offset + 1] = static_cast<uint8_t>((V >> 8) & 0xFF);
  Bytes[Offset + 2] = static_cast<uint8_t>((V >> 16) & 0xFF);
  Bytes[Offset + 3] = static_cast<uint8_t>((V >> 24) & 0xFF);
}

bool ByteReader::ensure(size_t N) {
  if (Failed || Pos + N > Bytes.size()) {
    Failed = true;
    return false;
  }
  return true;
}

uint8_t ByteReader::readU8() {
  if (!ensure(1))
    return 0;
  return Bytes[Pos++];
}

uint16_t ByteReader::readU16() {
  uint16_t Lo = readU8();
  uint16_t Hi = readU8();
  return static_cast<uint16_t>(Lo | (Hi << 8));
}

uint32_t ByteReader::readU32() {
  uint32_t Lo = readU16();
  uint32_t Hi = readU16();
  return Lo | (Hi << 16);
}

uint64_t ByteReader::readU64() {
  uint64_t Lo = readU32();
  uint64_t Hi = readU32();
  return Lo | (Hi << 32);
}

std::string ByteReader::readString() {
  uint32_t N = readU32();
  if (!ensure(N))
    return std::string();
  std::string S(reinterpret_cast<const char *>(&Bytes[Pos]), N);
  Pos += N;
  return S;
}

std::vector<uint8_t> ByteReader::readBlob() {
  uint64_t N = readU64();
  if (!ensure(N))
    return {};
  std::vector<uint8_t> Blob(Bytes.begin() + static_cast<ptrdiff_t>(Pos),
                            Bytes.begin() + static_cast<ptrdiff_t>(Pos + N));
  Pos += N;
  return Blob;
}

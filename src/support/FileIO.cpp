//===- support/FileIO.cpp ---------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"

#include "support/Format.h"

#include <cstdio>

#include <unistd.h>

using namespace om64;

Result<std::vector<uint8_t>> om64::readFileBytes(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Result<std::vector<uint8_t>>::failure("cannot open '" + Path +
                                                 "' for reading");
  std::vector<uint8_t> Bytes;
  uint8_t Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return Result<std::vector<uint8_t>>::failure("read error on '" + Path +
                                                 "'");
  return Bytes;
}

Result<std::string> om64::readFileText(const std::string &Path) {
  Result<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (!Bytes)
    return Result<std::string>::failure(Bytes.message());
  return std::string(Bytes->begin(), Bytes->end());
}

Error om64::writeFileBytes(const std::string &Path,
                           const std::vector<uint8_t> &Bytes) {
  // Write to a sibling temp file and rename over the target: a crash or
  // kill mid-write leaves either the old content or the complete new
  // content at Path, never a truncated image a downstream aaxrun would
  // consume. The pid suffix keeps concurrent writers (omlinkd serves
  // multiple images) off each other's temp files.
  std::string Tmp = Path + formatString(".tmp.%ld", static_cast<long>(getpid()));
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Error::failure("cannot open '" + Tmp + "' for writing");
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Bad = Written != Bytes.size();
  Bad |= std::fflush(F) != 0;
  Bad |= fsync(fileno(F)) != 0;
  Bad |= std::fclose(F) != 0;
  if (Bad) {
    std::remove(Tmp.c_str());
    return Error::failure("write error on '" + Tmp + "'");
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Error::failure("cannot rename '" + Tmp + "' to '" + Path + "'");
  }
  return Error::success();
}

//===- support/ContentHash.cpp ---------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ContentHash.h"

#include <cstring>

using namespace om64;

void Hasher::add(const void *Data, size_t Len) {
  addU64(Len);
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  size_t Whole = Len / 8;
  for (size_t I = 0; I < Whole; ++I) {
    uint64_t Lane;
    std::memcpy(&Lane, P + I * 8, 8); // little-endian hosts only (the
                                      // project already assumes LE I/O)
    addU64(Lane);
  }
  uint64_t Tail = 0;
  size_t Rest = Len % 8;
  if (Rest != 0) {
    std::memcpy(&Tail, P + Whole * 8, Rest);
    addU64(Tail);
  }
}

uint64_t om64::hashBytes(const void *Data, size_t Len) {
  Hasher H;
  H.add(Data, Len);
  return H.digest();
}

uint64_t om64::hashBytes(const std::vector<uint8_t> &Bytes) {
  return hashBytes(Bytes.data(), Bytes.size());
}

//===- support/Diagnostics.cpp ---------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/Format.h"

using namespace om64;

std::string SourceLoc::str() const {
  return formatString("%u:%u", Line, Column);
}

std::string Diagnostic::str() const {
  const char *KindStr = "error";
  if (Kind == DiagKind::Warning)
    KindStr = "warning";
  else if (Kind == DiagKind::Note)
    KindStr = "note";
  return formatString("%s:%u:%u: %s: %s", BufferName.c_str(), Loc.Line,
                      Loc.Column, KindStr, Message.c_str());
}

void DiagnosticEngine::error(const std::string &BufferName, SourceLoc Loc,
                             std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, BufferName, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(const std::string &BufferName, SourceLoc Loc,
                               std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, BufferName, std::move(Message)});
}

void DiagnosticEngine::append(DiagnosticEngine &&Other) {
  NumErrors += Other.NumErrors;
  for (Diagnostic &D : Other.Diags)
    Diags.push_back(std::move(D));
  Other.Diags.clear();
  Other.NumErrors = 0;
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

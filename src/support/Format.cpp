//===- support/Format.cpp -------------------------------------------------==//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>

using namespace om64;

std::string om64::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Out;
}

std::string om64::formatHex64(uint64_t Value) {
  return formatString("0x%016llx", static_cast<unsigned long long>(Value));
}

std::string om64::padRight(std::string S, size_t Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

std::string om64::padLeft(std::string S, size_t Width) {
  if (S.size() < Width)
    S.insert(S.begin(), Width - S.size(), ' ');
  return S;
}

Result<uint64_t> om64::parseUnsigned(const std::string &S, uint64_t Max) {
  if (S.empty())
    return Result<uint64_t>::failure("expected a number, got an empty string");
  uint64_t Value = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return Result<uint64_t>::failure("invalid number '" + S + "'");
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (~0ull - Digit) / 10)
      return Result<uint64_t>::failure("number '" + S + "' is out of range");
    Value = Value * 10 + Digit;
  }
  if (Value > Max)
    return Result<uint64_t>::failure(
        formatString("number '%s' is out of range (max %llu)", S.c_str(),
                     static_cast<unsigned long long>(Max)));
  return Value;
}

std::vector<std::string> om64::splitString(const std::string &S, char Sep) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Fields.push_back(S.substr(Start));
      return Fields;
    }
    Fields.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

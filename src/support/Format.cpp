//===- support/Format.cpp -------------------------------------------------==//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>

using namespace om64;

std::string om64::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Out;
}

std::string om64::formatHex64(uint64_t Value) {
  return formatString("0x%016llx", static_cast<unsigned long long>(Value));
}

std::string om64::padRight(std::string S, size_t Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

std::string om64::padLeft(std::string S, size_t Width) {
  if (S.size() < Width)
    S.insert(S.begin(), Width - S.size(), ' ');
  return S;
}

std::vector<std::string> om64::splitString(const std::string &S, char Sep) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Fields.push_back(S.substr(Start));
      return Fields;
    }
    Fields.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

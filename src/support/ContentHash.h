//===- support/ContentHash.h - Fast 64-bit content hashing ----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic 64-bit content hasher for the incremental-relink
/// caches (module bytes, per-procedure analysis inputs). FNV-1a widened to
/// one 64-bit lane per step — byte-at-a-time FNV tops out well under
/// 1 GB/s, which would eat the warm-relink budget on megabyte module sets,
/// so add() consumes 8 bytes per multiply — with a splitmix64 finalizer so
/// single-bit differences avalanche across the digest.
///
/// This is a cache key, not a cryptographic hash: collisions are
/// astronomically unlikely for the entry counts involved, and every
/// consumer sits behind the warm-vs-cold byte-identity oracle that would
/// surface one as a test failure, not a miscompile shipped silently.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_CONTENTHASH_H
#define OM64_SUPPORT_CONTENTHASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace om64 {

/// Accumulates typed values into a 64-bit digest. Equal sequences of add
/// calls produce equal digests on every platform; differently typed or
/// ordered sequences are (practically) guaranteed to differ.
class Hasher {
public:
  /// Mixes one 64-bit lane (FNV-1a step widened to 64-bit XOR+multiply).
  void addU64(uint64_t V) {
    State = (State ^ V) * 0x00000100000001b3ull; // FNV-1a 64 prime
  }

  void addU32(uint32_t V) { addU64(V); }
  void addU8(uint8_t V) { addU64(V); }
  void addBool(bool V) { addU64(V ? 1 : 0); }
  void addI64(int64_t V) { addU64(static_cast<uint64_t>(V)); }
  void addI32(int32_t V) { addU64(static_cast<uint64_t>(static_cast<uint32_t>(V))); }

  /// Mixes raw bytes, 8 at a time; the length is mixed first so
  /// concatenations cannot alias ("ab"+"c" vs "a"+"bc").
  void add(const void *Data, size_t Len);

  void addString(const std::string &S) { add(S.data(), S.size()); }

  /// The finalized digest. Non-destructive; more adds may follow.
  uint64_t digest() const {
    // splitmix64 finalizer: avalanche the lane state.
    uint64_t Z = State + 0x9e3779b97f4a7c15ull;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State = 0xcbf29ce484222325ull; // FNV-1a 64 offset basis
};

/// Digest of one byte buffer (module contents, serialized options).
uint64_t hashBytes(const void *Data, size_t Len);
uint64_t hashBytes(const std::vector<uint8_t> &Bytes);

} // namespace om64

#endif // OM64_SUPPORT_CONTENTHASH_H

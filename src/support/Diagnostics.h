//===- support/Diagnostics.h - Source locations and diagnostics ----------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the MLang front end. Diagnostics are collected
/// into an engine rather than printed eagerly so library code stays free of
/// stdio; tools render them at the boundary.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_DIAGNOSTICS_H
#define OM64_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {

/// A position in an MLang source buffer (1-based line and column).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string BufferName;
  std::string Message;

  /// Renders "name:line:col: error: message".
  std::string str() const;
};

/// Accumulates diagnostics from a front-end run.
class DiagnosticEngine {
public:
  void error(const std::string &BufferName, SourceLoc Loc,
             std::string Message);
  void warning(const std::string &BufferName, SourceLoc Loc,
               std::string Message);

  /// Appends every diagnostic of \p Other, preserving order. Used to merge
  /// per-worker engines back into one in a deterministic (caller-chosen)
  /// order after a parallel checking pass.
  void append(DiagnosticEngine &&Other);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string render() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace om64

#endif // OM64_SUPPORT_DIAGNOSTICS_H

//===- support/FileIO.h - Whole-file reads and writes ---------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_FILEIO_H
#define OM64_SUPPORT_FILEIO_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {

/// Reads an entire file; fails with a message naming the path.
Result<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Reads an entire file as text.
Result<std::string> readFileText(const std::string &Path);

/// Writes (truncating) the bytes to the path.
Error writeFileBytes(const std::string &Path,
                     const std::vector<uint8_t> &Bytes);

} // namespace om64

#endif // OM64_SUPPORT_FILEIO_H

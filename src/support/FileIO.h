//===- support/FileIO.h - Whole-file reads and writes ---------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_SUPPORT_FILEIO_H
#define OM64_SUPPORT_FILEIO_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {

/// Reads an entire file; fails with a message naming the path.
Result<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Reads an entire file as text.
Result<std::string> readFileText(const std::string &Path);

/// Writes the bytes to the path atomically: the data lands in a sibling
/// temp file first and is renamed over the target only after a clean
/// flush+fsync+close, so an interrupted write never leaves a truncated
/// file at \p Path.
Error writeFileBytes(const std::string &Path,
                     const std::vector<uint8_t> &Bytes);

} // namespace om64

#endif // OM64_SUPPORT_FILEIO_H

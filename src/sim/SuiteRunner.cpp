//===- sim/SuiteRunner.cpp -------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SuiteRunner.h"

#include "support/ThreadPool.h"

#include <algorithm>

using namespace om64;
using namespace om64::sim;

std::vector<SuiteJobResult> om64::sim::runSuite(
    const std::vector<SuiteJob> &Jobs, unsigned Threads) {
  std::vector<SuiteJobResult> Out(Jobs.size());
  if (Jobs.empty())
    return Out;
  // More threads than jobs would only spawn idle workers; clamp so a
  // two-job suite on a 16-way host builds a two-thread pool.
  unsigned Want = Threads == 0 ? ThreadPool::defaultConcurrency() : Threads;
  Want = std::min<unsigned>(Want,
                            static_cast<unsigned>(Jobs.size()));
  ThreadPool Pool(std::max(1u, Want));
  // Each index writes only its own slot, so results are bit-identical for
  // any thread count (the ThreadPool per-index-slot discipline).
  Pool.parallelFor(Jobs.size(), [&](size_t I) {
    const SuiteJob &Job = Jobs[I];
    SuiteJobResult &Slot = Out[I];
    Slot.Name = Job.Name;
    Result<SimResult> R = run(*Job.Image, Job.Config);
    if (R) {
      Slot.Ok = true;
      Slot.Result = std::move(*R);
    } else {
      Slot.Ok = false;
      Slot.Error = R.message();
    }
  });
  return Out;
}

//===- sim/SimStats.h - Per-run simulator observability -------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a SimResult's observability data — instruction-class histogram,
/// branch/load/store mix, cache hit rates, and simulated MIPS — as either a
/// human-readable block (aaxrun --stats) or a machine-readable JSON object
/// (aaxrun --stats-json, bench/sim_throughput). Keeping the rendering out
/// of the simulator keeps the hot loops free of presentation concerns.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SIM_SIMSTATS_H
#define OM64_SIM_SIMSTATS_H

#include "sim/Simulator.h"

#include <string>

namespace om64 {
namespace sim {

/// Multi-line human-readable statistics block. \p Timing selects whether
/// the cycle/cache section is rendered (functional runs have no timing
/// data). Lines are newline-terminated and unprefixed; callers add their
/// own tool prefix if desired.
std::string statsText(const SimResult &R, bool Timing);

/// The same data as a single JSON object (newline-terminated). Keys are
/// stable; class_counts maps isa::instClassName -> executed count.
std::string statsJson(const SimResult &R, bool Timing);

/// Simulated MIPS of a finished run (0 when the run was too fast for the
/// host clock to resolve).
double simulatedMips(const SimResult &R);

} // namespace sim
} // namespace om64

#endif // OM64_SIM_SIMSTATS_H

//===- sim/SimStats.cpp - Per-run simulator observability -----------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SimStats.h"

#include "isa/Inst.h"
#include "support/Format.h"

using namespace om64;
using namespace om64::sim;
using namespace om64::isa;

namespace {

double pctOf(uint64_t Part, uint64_t Whole) {
  return Whole ? 100.0 * static_cast<double>(Part) /
                     static_cast<double>(Whole)
               : 0.0;
}

/// Cache accesses per run: the I-cache is probed once per instruction, the
/// D-cache once per load or store.
uint64_t icacheAccesses(const SimResult &R) { return R.Instructions; }
uint64_t dcacheAccesses(const SimResult &R) { return R.Loads + R.Stores; }

double hitRate(uint64_t Misses, uint64_t Accesses) {
  return Accesses
             ? 100.0 * static_cast<double>(Accesses - Misses) /
                   static_cast<double>(Accesses)
             : 0.0;
}

} // namespace

double om64::sim::simulatedMips(const SimResult &R) {
  return R.HostSeconds > 0
             ? static_cast<double>(R.Instructions) / R.HostSeconds / 1e6
             : 0.0;
}

std::string om64::sim::statsText(const SimResult &R, bool Timing) {
  std::string S;
  S += formatString("instructions     %llu (%llu nops)\n",
                    (unsigned long long)R.Instructions,
                    (unsigned long long)R.Nops);
  S += formatString("host time        %.6f s (%.1f simulated MIPS)\n",
                    R.HostSeconds, simulatedMips(R));
  S += formatString(
      "mix              loads %.1f%%, stores %.1f%%, taken branches "
      "%.1f%%\n",
      pctOf(R.Loads, R.Instructions), pctOf(R.Stores, R.Instructions),
      pctOf(R.TakenBranches, R.Instructions));
  S += "class histogram\n";
  for (unsigned C = 0; C < NumInstClasses; ++C) {
    if (!R.ClassCounts[C])
      continue;
    S += formatString("  %-14s %12llu (%.1f%%)\n",
                      instClassName(static_cast<InstClass>(C)),
                      (unsigned long long)R.ClassCounts[C],
                      pctOf(R.ClassCounts[C], R.Instructions));
  }
  if (Timing) {
    double Cpi = R.Instructions
                     ? static_cast<double>(R.Cycles) /
                           static_cast<double>(R.Instructions)
                     : 0.0;
    S += formatString("cycles           %llu (CPI %.2f, %llu dual-issue "
                      "pairs)\n",
                      (unsigned long long)R.Cycles, Cpi,
                      (unsigned long long)R.DualIssuePairs);
    S += formatString("I-cache          %llu misses / %llu accesses "
                      "(%.2f%% hit)\n",
                      (unsigned long long)R.ICacheMisses,
                      (unsigned long long)icacheAccesses(R),
                      hitRate(R.ICacheMisses, icacheAccesses(R)));
    S += formatString("D-cache          %llu misses / %llu accesses "
                      "(%.2f%% hit)\n",
                      (unsigned long long)R.DCacheMisses,
                      (unsigned long long)dcacheAccesses(R),
                      hitRate(R.DCacheMisses, dcacheAccesses(R)));
  }
  return S;
}

std::string om64::sim::statsJson(const SimResult &R, bool Timing) {
  std::string S = "{\n";
  S += formatString("  \"exit_code\": %lld,\n", (long long)R.ExitCode);
  S += formatString("  \"instructions\": %llu,\n",
                    (unsigned long long)R.Instructions);
  S += formatString("  \"nops\": %llu,\n", (unsigned long long)R.Nops);
  S += formatString("  \"loads\": %llu,\n", (unsigned long long)R.Loads);
  S += formatString("  \"stores\": %llu,\n", (unsigned long long)R.Stores);
  S += formatString("  \"taken_branches\": %llu,\n",
                    (unsigned long long)R.TakenBranches);
  S += formatString("  \"host_seconds\": %.6f,\n", R.HostSeconds);
  S += formatString("  \"simulated_mips\": %.2f,\n", simulatedMips(R));
  S += "  \"class_counts\": {";
  bool First = true;
  for (unsigned C = 0; C < NumInstClasses; ++C) {
    if (!R.ClassCounts[C])
      continue;
    S += formatString("%s\"%s\": %llu", First ? "" : ", ",
                      instClassName(static_cast<InstClass>(C)),
                      (unsigned long long)R.ClassCounts[C]);
    First = false;
  }
  S += "},\n";
  S += formatString("  \"timing\": %s", Timing ? "{\n" : "null\n");
  if (Timing) {
    S += formatString("    \"cycles\": %llu,\n",
                      (unsigned long long)R.Cycles);
    S += formatString("    \"dual_issue_pairs\": %llu,\n",
                      (unsigned long long)R.DualIssuePairs);
    S += formatString("    \"icache_misses\": %llu,\n",
                      (unsigned long long)R.ICacheMisses);
    S += formatString("    \"icache_accesses\": %llu,\n",
                      (unsigned long long)icacheAccesses(R));
    S += formatString("    \"icache_hit_pct\": %.2f,\n",
                      hitRate(R.ICacheMisses, icacheAccesses(R)));
    S += formatString("    \"dcache_misses\": %llu,\n",
                      (unsigned long long)R.DCacheMisses);
    S += formatString("    \"dcache_accesses\": %llu,\n",
                      (unsigned long long)dcacheAccesses(R));
    S += formatString("    \"dcache_hit_pct\": %.2f\n",
                      hitRate(R.DCacheMisses, dcacheAccesses(R)));
    S += "  }\n";
  }
  S += "}\n";
  return S;
}

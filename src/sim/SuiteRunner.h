//===- sim/SuiteRunner.h - Parallel multi-workload simulation driver ------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a batch of independent simulations concurrently on a ThreadPool.
///
/// The slow test label's differential sweeps run 19 workloads × 4 OM levels
/// through the simulator; each run is independent, so they parallelize
/// perfectly. runSuite is the one shared driver for that shape — used by
/// aaxrun --suite, om::runDifferential, tests/endtoend_test.cpp, and
/// bench/sim_throughput — so every consumer gets the same determinism
/// contract:
///
///   * results come back indexed exactly like the job list (per-index
///     slots, the ThreadPool discipline), so aggregation in job order is
///     bit-identical for any thread count, including 1;
///   * a failed run carries its failure message in its own slot instead of
///     aborting the batch — callers decide how to surface partial failure.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SIM_SUITERUNNER_H
#define OM64_SIM_SUITERUNNER_H

#include "objfile/Image.h"
#include "sim/Simulator.h"

#include <string>
#include <vector>

namespace om64 {
namespace sim {

/// One simulation to run: a label for reporting, the image (not owned;
/// must outlive runSuite), and the full per-run configuration.
struct SuiteJob {
  std::string Name;
  const obj::Image *Image = nullptr;
  SimConfig Config;
};

/// Outcome slot for one SuiteJob, in job order.
struct SuiteJobResult {
  std::string Name;
  bool Ok = false;
  std::string Error; // failure message when !Ok
  SimResult Result;  // valid when Ok
};

/// Runs every job, distributing them across \p Threads pool threads
/// (0 = hardware concurrency, clamped to the job count; 1 = serial on the
/// caller). Returns one result per job, in job order.
std::vector<SuiteJobResult> runSuite(const std::vector<SuiteJob> &Jobs,
                                     unsigned Threads = 0);

} // namespace sim
} // namespace om64

#endif // OM64_SIM_SUITERUNNER_H

//===- sim/Simulator.cpp ---------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "isa/Disassembler.h"
#include "isa/Inst.h"
#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

using namespace om64;
using namespace om64::sim;
using namespace om64::isa;
using namespace om64::obj;

namespace {

/// Direct-mapped cache tag store.
class Cache {
public:
  explicit Cache(const CacheConfig &Cfg)
      : LineBytes(Cfg.LineBytes), NumLines(Cfg.SizeBytes / Cfg.LineBytes),
        Penalty(Cfg.MissPenalty), Tags(NumLines, ~0ull) {}

  /// Returns the miss penalty (0 on hit) and updates the tag store.
  unsigned access(uint64_t Addr) {
    uint64_t Line = Addr / LineBytes;
    uint64_t Index = Line % NumLines;
    if (Tags[Index] == Line)
      return 0;
    Tags[Index] = Line;
    return Penalty;
  }

private:
  uint64_t LineBytes;
  uint64_t NumLines;
  unsigned Penalty;
  std::vector<uint64_t> Tags;
};

/// Full machine state and execution engine.
class Machine {
public:
  Machine(const Image &Img, const SimConfig &Cfg)
      : Img(Img), Cfg(Cfg), ICache(Cfg.ICache), DCache(Cfg.DCache) {
    DataSegment.assign(Img.Data.begin(), Img.Data.end());
    DataSegment.resize(Img.Data.size() + Img.BssSize, 0);
    StackSegment.assign(Layout::StackSize, 0);
    // Pre-decode text once.
    Decoded.reserve(Img.Text.size() / 4);
    for (size_t Off = 0; Off + 4 <= Img.Text.size(); Off += 4) {
      uint32_t Word = Img.fetch(Img.TextBase + Off);
      Decoded.push_back(decode(Word));
    }
  }

  Result<SimResult> run();

private:
  int64_t readInt(uint8_t R) const { return R == Zero ? 0 : IntRegs[R]; }
  void writeInt(uint8_t R, int64_t V) {
    if (R != Zero)
      IntRegs[R] = V;
  }
  double readFp(uint8_t R) const { return R == FZero ? 0.0 : FpRegs[R]; }
  void writeFp(uint8_t R, double V) {
    if (R != FZero)
      FpRegs[R] = V;
  }

  /// Resolves an address to backing storage; null on fault.
  uint8_t *memPtr(uint64_t Addr, unsigned Size);

  Error load(uint64_t Addr, unsigned Size, uint64_t &Out);
  Error store(uint64_t Addr, unsigned Size, uint64_t Value);

  /// Applies one instruction's architectural effects. Sets NextPc.
  Error step(const Inst &I, uint64_t Pc, uint64_t &NextPc, bool &Halt);

  /// Timing helpers.
  unsigned unitsRead(const Inst &I, unsigned Units[3]) const {
    return regUnitsRead(I, const_cast<unsigned *>(Units));
  }
  bool pairable(const Inst &A, const Inst &B) const;

  const Image &Img;
  const SimConfig &Cfg;
  Cache ICache;
  Cache DCache;

  int64_t IntRegs[32] = {};
  double FpRegs[32] = {};
  std::vector<uint8_t> DataSegment;
  std::vector<uint8_t> StackSegment;
  std::vector<std::optional<Inst>> Decoded;

  SimResult Res;
  uint64_t RegReady[NumRegUnits] = {}; // cycle each unit's value is ready
  uint64_t PendingLoadExtra = 0;       // miss penalty for the current load
};

} // namespace

uint8_t *Machine::memPtr(uint64_t Addr, unsigned Size) {
  if (Addr % Size != 0)
    return nullptr;
  if (Addr >= Img.DataBase &&
      Addr + Size <= Img.DataBase + DataSegment.size())
    return &DataSegment[Addr - Img.DataBase];
  uint64_t StackBase = Layout::StackTop - Layout::StackSize;
  if (Addr >= StackBase && Addr + Size <= Layout::StackTop)
    return &StackSegment[Addr - StackBase];
  // Reading text as data is legal (constants are not stored there by our
  // compiler, but be permissive for tools).
  if (Addr >= Img.TextBase && Addr + Size <= Img.TextBase + Img.Text.size())
    return const_cast<uint8_t *>(&Img.Text[Addr - Img.TextBase]);
  return nullptr;
}

Error Machine::load(uint64_t Addr, unsigned Size, uint64_t &Out) {
  uint8_t *P = memPtr(Addr, Size);
  if (!P)
    return Error::failure(formatString("bad %u-byte load at %s", Size,
                                       formatHex64(Addr).c_str()));
  Out = 0;
  std::memcpy(&Out, P, Size);
  return Error::success();
}

Error Machine::store(uint64_t Addr, unsigned Size, uint64_t Value) {
  uint8_t *P = memPtr(Addr, Size);
  if (!P || (Addr >= Img.TextBase &&
             Addr < Img.TextBase + Img.Text.size()))
    return Error::failure(formatString("bad %u-byte store at %s", Size,
                                       formatHex64(Addr).c_str()));
  std::memcpy(P, &Value, Size);
  return Error::success();
}

Error Machine::step(const Inst &I, uint64_t Pc, uint64_t &NextPc,
                    bool &Halt) {
  NextPc = Pc + 4;
  PendingLoadExtra = 0;

  auto intOperandB = [&]() -> int64_t {
    return I.IsLit ? static_cast<int64_t>(I.Lit) : readInt(I.Rb);
  };
  auto branchTarget = [&]() {
    return Pc + 4 + static_cast<int64_t>(I.Disp) * 4;
  };
  auto takeBranch = [&]() {
    NextPc = branchTarget();
    ++Res.TakenBranches;
  };

  switch (I.Op) {
  case Opcode::CallPal:
    switch (static_cast<PalFunc>(I.Disp & 0xFF)) {
    case PalFunc::Halt:
      Halt = true;
      Res.ExitCode = readInt(A0);
      return Error::success();
    case PalFunc::PutChar:
      Res.Output.push_back(static_cast<char>(readInt(A0) & 0xFF));
      return Error::success();
    case PalFunc::PutInt:
      Res.Output += formatString(
          "%lld", static_cast<long long>(readInt(A0)));
      return Error::success();
    case PalFunc::PutReal:
      Res.Output += formatString("%.6g", readFp(FA0));
      return Error::success();
    case PalFunc::CycleCount:
      writeInt(V0, static_cast<int64_t>(Cfg.Timing ? Res.Cycles
                                                   : Res.Instructions));
      return Error::success();
    case PalFunc::Count: {
      uint32_t Index = static_cast<uint32_t>(I.Disp) >> 8;
      if (Res.ProfileCounts.size() <= Index)
        Res.ProfileCounts.resize(Index + 1, 0);
      ++Res.ProfileCounts[Index];
      return Error::success();
    }
    }
    return Error::failure(formatString("unknown PAL function %d", I.Disp));

  case Opcode::Lda:
    writeInt(I.Ra, readInt(I.Rb) + I.Disp);
    return Error::success();
  case Opcode::Ldah:
    writeInt(I.Ra, readInt(I.Rb) + (static_cast<int64_t>(I.Disp) << 16));
    return Error::success();

  case Opcode::Ldl: {
    uint64_t V;
    if (Error E = load(readInt(I.Rb) + I.Disp, 4, V))
      return E;
    writeInt(I.Ra, static_cast<int32_t>(V));
    ++Res.Loads;
    return Error::success();
  }
  case Opcode::Ldq: {
    uint64_t V;
    if (Error E = load(readInt(I.Rb) + I.Disp, 8, V))
      return E;
    writeInt(I.Ra, static_cast<int64_t>(V));
    ++Res.Loads;
    return Error::success();
  }
  case Opcode::Ldt: {
    uint64_t V;
    if (Error E = load(readInt(I.Rb) + I.Disp, 8, V))
      return E;
    double D;
    std::memcpy(&D, &V, 8);
    writeFp(I.Ra, D);
    ++Res.Loads;
    return Error::success();
  }
  case Opcode::Stl:
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 4,
                 static_cast<uint64_t>(readInt(I.Ra)) & 0xFFFFFFFFull);
  case Opcode::Stq:
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 8,
                 static_cast<uint64_t>(readInt(I.Ra)));
  case Opcode::Stt: {
    double D = readFp(I.Ra);
    uint64_t V;
    std::memcpy(&V, &D, 8);
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 8, V);
  }

  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret: {
    uint64_t Target = static_cast<uint64_t>(readInt(I.Rb)) & ~3ull;
    writeInt(I.Ra, static_cast<int64_t>(Pc + 4));
    NextPc = Target;
    ++Res.TakenBranches;
    return Error::success();
  }

  case Opcode::Br:
  case Opcode::Bsr:
    writeInt(I.Ra, static_cast<int64_t>(Pc + 4));
    takeBranch();
    return Error::success();
  case Opcode::Beq:
    if (readInt(I.Ra) == 0)
      takeBranch();
    return Error::success();
  case Opcode::Bne:
    if (readInt(I.Ra) != 0)
      takeBranch();
    return Error::success();
  case Opcode::Blt:
    if (readInt(I.Ra) < 0)
      takeBranch();
    return Error::success();
  case Opcode::Ble:
    if (readInt(I.Ra) <= 0)
      takeBranch();
    return Error::success();
  case Opcode::Bgt:
    if (readInt(I.Ra) > 0)
      takeBranch();
    return Error::success();
  case Opcode::Bge:
    if (readInt(I.Ra) >= 0)
      takeBranch();
    return Error::success();
  case Opcode::Fbeq:
    if (readFp(I.Ra) == 0.0)
      takeBranch();
    return Error::success();
  case Opcode::Fbne:
    if (readFp(I.Ra) != 0.0)
      takeBranch();
    return Error::success();

  case Opcode::Addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) +
                       static_cast<uint64_t>(intOperandB())));
    return Error::success();
  case Opcode::Subq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) -
                       static_cast<uint64_t>(intOperandB())));
    return Error::success();
  case Opcode::Mulq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) *
                       static_cast<uint64_t>(intOperandB())));
    return Error::success();
  case Opcode::S4addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       (static_cast<uint64_t>(readInt(I.Ra)) << 2) +
                       static_cast<uint64_t>(intOperandB())));
    return Error::success();
  case Opcode::S8addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       (static_cast<uint64_t>(readInt(I.Ra)) << 3) +
                       static_cast<uint64_t>(intOperandB())));
    return Error::success();
  case Opcode::Cmpeq:
    writeInt(I.Rc, readInt(I.Ra) == intOperandB() ? 1 : 0);
    return Error::success();
  case Opcode::Cmplt:
    writeInt(I.Rc, readInt(I.Ra) < intOperandB() ? 1 : 0);
    return Error::success();
  case Opcode::Cmple:
    writeInt(I.Rc, readInt(I.Ra) <= intOperandB() ? 1 : 0);
    return Error::success();
  case Opcode::Cmpult:
    writeInt(I.Rc, static_cast<uint64_t>(readInt(I.Ra)) <
                           static_cast<uint64_t>(intOperandB())
                       ? 1
                       : 0);
    return Error::success();
  case Opcode::And:
    writeInt(I.Rc, readInt(I.Ra) & intOperandB());
    return Error::success();
  case Opcode::Bic:
    writeInt(I.Rc, readInt(I.Ra) & ~intOperandB());
    return Error::success();
  case Opcode::Bis:
    writeInt(I.Rc, readInt(I.Ra) | intOperandB());
    return Error::success();
  case Opcode::Ornot:
    writeInt(I.Rc, readInt(I.Ra) | ~intOperandB());
    return Error::success();
  case Opcode::Xor:
    writeInt(I.Rc, readInt(I.Ra) ^ intOperandB());
    return Error::success();
  case Opcode::Sll:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra))
                       << (intOperandB() & 63)));
    return Error::success();
  case Opcode::Srl:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) >>
                       (intOperandB() & 63)));
    return Error::success();
  case Opcode::Sra:
    writeInt(I.Rc, readInt(I.Ra) >> (intOperandB() & 63));
    return Error::success();

  case Opcode::Addt:
    writeFp(I.Rc, readFp(I.Ra) + readFp(I.Rb));
    return Error::success();
  case Opcode::Subt:
    writeFp(I.Rc, readFp(I.Ra) - readFp(I.Rb));
    return Error::success();
  case Opcode::Mult:
    writeFp(I.Rc, readFp(I.Ra) * readFp(I.Rb));
    return Error::success();
  case Opcode::Divt:
    writeFp(I.Rc, readFp(I.Ra) / readFp(I.Rb));
    return Error::success();
  case Opcode::Cmpteq:
    writeFp(I.Rc, readFp(I.Ra) == readFp(I.Rb) ? 2.0 : 0.0);
    return Error::success();
  case Opcode::Cmptlt:
    writeFp(I.Rc, readFp(I.Ra) < readFp(I.Rb) ? 2.0 : 0.0);
    return Error::success();
  case Opcode::Cmptle:
    writeFp(I.Rc, readFp(I.Ra) <= readFp(I.Rb) ? 2.0 : 0.0);
    return Error::success();
  case Opcode::Cpys:
    writeFp(I.Rc, std::copysign(readFp(I.Rb), readFp(I.Ra)));
    return Error::success();
  case Opcode::Cvtqt: {
    double D = readFp(I.Rb);
    uint64_t Bits;
    std::memcpy(&Bits, &D, 8);
    writeFp(I.Rc, static_cast<double>(static_cast<int64_t>(Bits)));
    return Error::success();
  }
  case Opcode::Cvttq: {
    double D = readFp(I.Rb);
    int64_t V;
    if (std::isnan(D))
      V = 0;
    else if (D >= 9.2233720368547758e18)
      V = INT64_MAX;
    else if (D <= -9.2233720368547758e18)
      V = INT64_MIN;
    else
      V = static_cast<int64_t>(D);
    uint64_t Bits = static_cast<uint64_t>(V);
    double Out;
    std::memcpy(&Out, &Bits, 8);
    writeFp(I.Rc, Out);
    return Error::success();
  }
  case Opcode::Itoft: {
    uint64_t Bits = static_cast<uint64_t>(readInt(I.Ra));
    double Out;
    std::memcpy(&Out, &Bits, 8);
    writeFp(I.Rc, Out);
    return Error::success();
  }
  case Opcode::Ftoit: {
    double D = readFp(I.Ra);
    uint64_t Bits;
    std::memcpy(&Bits, &D, 8);
    writeInt(I.Rc, static_cast<int64_t>(Bits));
    return Error::success();
  }
  }
  return Error::failure("unhandled opcode in simulator");
}

bool Machine::pairable(const Inst &A, const Inst &B) const {
  // Dual issue requires: A is not a control transfer, at most one memory
  // operation, at most one branch/jump/PAL, and no data dependence of B on
  // A (RAW or WAW).
  InstClass CA = classOf(A.Op);
  if (CA == InstClass::Branch || CA == InstClass::Jump ||
      CA == InstClass::Pal)
    return false;
  auto isMem = [](const Inst &I) {
    InstClass C = classOf(I.Op);
    return C == InstClass::IntLoad || C == InstClass::IntStore ||
           C == InstClass::FpLoad || C == InstClass::FpStore;
  };
  if (isMem(A) && isMem(B))
    return false;
  unsigned AW = regUnitWritten(A);
  if (AW != ~0u) {
    unsigned Reads[3];
    unsigned N = regUnitsRead(B, Reads);
    for (unsigned I = 0; I < N; ++I)
      if (Reads[I] == AW)
        return false;
    if (regUnitWritten(B) == AW)
      return false;
  }
  return true;
}

Result<SimResult> Machine::run() {
  uint64_t Pc = Img.Entry;
  writeInt(PV, static_cast<int64_t>(Img.Entry));
  writeInt(RA, static_cast<int64_t>(Layout::HaltReturnAddress));
  writeInt(SP, static_cast<int64_t>(Layout::StackTop - 512));
  writeInt(GP, static_cast<int64_t>(Img.InitialGp)); // prologue resets it

  // Timing state. Cycle is the cycle at which the next instruction issues
  // absent stalls; SlotAvail means the previous instruction issued into
  // slot 0 of Cycle and offered its second issue slot to us.
  uint64_t Cycle = 0;
  bool SlotAvail = false;

  while (true) {
    if (Pc == Layout::HaltReturnAddress) {
      Res.ExitCode = readInt(V0);
      break;
    }
    if (Pc < Img.TextBase || Pc >= Img.TextBase + Img.Text.size() ||
        Pc % 4 != 0)
      return Result<SimResult>::failure(
          formatString("PC out of text: %s", formatHex64(Pc).c_str()));
    const std::optional<Inst> &DecodedInst =
        Decoded[(Pc - Img.TextBase) / 4];
    if (!DecodedInst)
      return Result<SimResult>::failure(
          formatString("undecodable instruction at %s",
                       formatHex64(Pc).c_str()));
    const Inst &I = *DecodedInst;

    if (Res.Instructions >= Cfg.MaxInstructions)
      return Result<SimResult>::failure("instruction budget exceeded "
                                        "(runaway program?)");

    // ----- timing: issue -----
    uint64_t IssueCycle = Cycle;
    bool IssuedAsPair = false;
    uint64_t EffAddr = 0;
    bool IsMem = isLoad(I.Op) || isStore(I.Op);
    if (IsMem)
      EffAddr = static_cast<uint64_t>(readInt(I.Rb) +
                                      static_cast<int64_t>(I.Disp));
    if (Cfg.Timing) {
      unsigned IMiss = ICache.access(Pc);
      if (IMiss) {
        ++Res.ICacheMisses;
        if (SlotAvail) {
          SlotAvail = false;
          ++Cycle;
        }
        Cycle += IMiss;
      }
      unsigned Reads[3];
      unsigned N = regUnitsRead(I, Reads);
      uint64_t ReadyAt = Cycle;
      for (unsigned R = 0; R < N; ++R)
        ReadyAt = std::max(ReadyAt, RegReady[Reads[R]]);

      if (SlotAvail && ReadyAt <= Cycle) {
        // Dual-issue with the previous instruction, same cycle.
        IssueCycle = Cycle;
        IssuedAsPair = true;
        ++Res.DualIssuePairs;
        SlotAvail = false;
      } else {
        if (SlotAvail) {
          // The offered slot goes unused; the previous group ends.
          SlotAvail = false;
          ++Cycle;
        }
        Cycle = std::max(Cycle, ReadyAt);
        IssueCycle = Cycle;
      }
    }

    uint64_t NextPc = Pc;
    bool Halt = false;
    if (Error E = step(I, Pc, NextPc, Halt))
      return Result<SimResult>::failure(
          E.message() + formatString(" (pc=%s, inst='%s')",
                                     formatHex64(Pc).c_str(),
                                     disassemble(I).c_str()));
    ++Res.Instructions;
    if (I.isNop())
      ++Res.Nops;

    if (Cfg.Timing) {
      unsigned Written = regUnitWritten(I);
      unsigned Lat = latencyOf(I.Op);
      if (isLoad(I.Op)) {
        unsigned DMiss = DCache.access(EffAddr);
        if (DMiss) {
          ++Res.DCacheMisses;
          Lat += DMiss;
        }
      } else if (isStore(I.Op)) {
        if (DCache.access(EffAddr))
          ++Res.DCacheMisses; // write buffer absorbs the latency
      }
      if (Written != ~0u)
        RegReady[Written] = IssueCycle + Lat;

      bool Redirected = NextPc != Pc + 4;
      if (Redirected) {
        Cycle = IssueCycle + 1 + 2; // group ends plus taken-branch bubble
        SlotAvail = false;
      } else if (IssuedAsPair) {
        Cycle = IssueCycle + 1; // both slots of the pair consumed
      } else {
        // This instruction sits in slot 0 of IssueCycle; offer slot 1 to
        // the next instruction when the pair shares an aligned quadword
        // and has no hazards (the alignment rule OM-full's quadword loop
        // alignment exists to satisfy).
        bool NextInText = NextPc + 4 <= Img.TextBase + Img.Text.size();
        SlotAvail = false;
        if (NextInText && Pc % 8 == 0) {
          const std::optional<Inst> &NextInst =
              Decoded[(NextPc - Img.TextBase) / 4];
          if (NextInst && pairable(I, *NextInst))
            SlotAvail = true;
        }
        Cycle = SlotAvail ? IssueCycle : IssueCycle + 1;
      }
      Res.Cycles = Cycle;
    }

    if (Halt)
      break;
    Pc = NextPc;
  }
  if (!Cfg.Timing)
    Res.Cycles = 0;
  Res.FinalData = std::move(DataSegment);
  return std::move(Res);
}

Result<SimResult> om64::sim::run(const Image &Img, const SimConfig &Cfg) {
  if (Img.Text.empty() || Img.Entry < Img.TextBase ||
      Img.Entry >= Img.TextBase + Img.Text.size())
    return Result<SimResult>::failure("image has no valid entry point");
  Machine M(Img, Cfg);
  return M.run();
}

//===- sim/Simulator.cpp ---------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "isa/Disassembler.h"
#include "isa/Inst.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <vector>

using namespace om64;
using namespace om64::sim;
using namespace om64::isa;
using namespace om64::obj;

namespace {

/// Direct-mapped cache tag store. Geometry is validated by sim::run before
/// construction (NumLines must be nonzero).
class Cache {
public:
  explicit Cache(const CacheConfig &Cfg)
      : LineBytes(Cfg.LineBytes), NumLines(Cfg.SizeBytes / Cfg.LineBytes),
        Penalty(Cfg.MissPenalty), Tags(NumLines, ~0ull) {}

  /// Returns the miss penalty (0 on hit) and updates the tag store.
  unsigned access(uint64_t Addr) {
    uint64_t Line = Addr / LineBytes;
    uint64_t Index = Line % NumLines;
    if (Tags[Index] == Line)
      return 0;
    Tags[Index] = Line;
    return Penalty;
  }

private:
  uint64_t LineBytes;
  uint64_t NumLines;
  unsigned Penalty;
  std::vector<uint64_t> Tags;
};

/// Per-instruction properties the timing model and statistics need,
/// precomputed once at startup so neither interpreter loop recomputes
/// register units, latencies, or classes per executed instruction.
struct InstMeta {
  uint8_t Cls;      // InstClass
  uint8_t IsNop;    // counts toward SimResult::Nops
  uint8_t IsLoad;
  uint8_t IsStore;
  uint8_t NumReads; // entries of Reads[] that are valid
  uint8_t Reads[3]; // RegUnits read
  uint8_t Written;  // RegUnit written, 0xFF if none
  uint8_t Latency;
};

constexpr uint8_t NoWrittenUnit = 0xFF;

/// Full machine state and execution engine.
class Machine {
public:
  Machine(const Image &Img, const SimConfig &Cfg) : Img(Img), Cfg(Cfg) {
    DataSegment.assign(Img.Data.begin(), Img.Data.end());
    DataSegment.resize(Img.Data.size() + Img.BssSize, 0);
    StackSegment.assign(Layout::StackSize, 0);
  }

  /// Decodes the whole text segment into the dense instruction array and
  /// builds the per-instruction metadata; fails on the first undecodable
  /// word. Also sizes the profile-counter vector from the counters the
  /// image actually declares, bounding CALL_PAL count's reach up front.
  Error predecode();

  Result<SimResult> run();

private:
  int64_t readInt(uint8_t R) const { return R == Zero ? 0 : IntRegs[R]; }
  void writeInt(uint8_t R, int64_t V) {
    if (R != Zero)
      IntRegs[R] = V;
  }
  double readFp(uint8_t R) const { return R == FZero ? 0.0 : FpRegs[R]; }
  void writeFp(uint8_t R, double V) {
    if (R != FZero)
      FpRegs[R] = V;
  }

  /// Resolves an address to backing storage; null on fault. Overflow-safe:
  /// addresses near 2^64 whose Addr + Size wraps must not pass.
  uint8_t *memPtr(uint64_t Addr, unsigned Size);

  /// load/store/step return false on fault with the message in FaultMsg;
  /// keeping the hot path free of Error construction (an optional<string>
  /// built and destroyed per retired instruction) is worth ~10% of
  /// functional-simulation throughput.
  bool load(uint64_t Addr, unsigned Size, uint64_t &Out);
  bool store(uint64_t Addr, unsigned Size, uint64_t Value);

  /// Applies one instruction's architectural effects. Sets NextPc.
  bool step(const Inst &I, uint64_t Pc, uint64_t &NextPc, bool &Halt);

  /// The two interpreter loops. Both iterate over Code/Meta by dense
  /// index; only the timing loop touches caches, register-ready times,
  /// and dual-issue state. Flattened so that step/load/store/memPtr
  /// inline into each loop and get specialized for it. Each is a template
  /// over profile collection, so the Prof=false instantiations are
  /// bit-for-bit the old hot loops and runs without --profile-out pay
  /// nothing for the feature.
  template <bool Prof>
#if defined(__GNUC__)
  __attribute__((flatten))
#endif
  Result<SimResult> runFunctional();
  template <bool Prof>
#if defined(__GNUC__)
  __attribute__((flatten))
#endif
  Result<SimResult> runTiming();

  /// The computed-goto functional core (DispatchMode::Threaded). Translates
  /// Code/Meta into a handler-address + operand array once, then runs one
  /// indirect goto per instruction. Compiled to the switch core's loop on
  /// compilers without the `&&label` extension. Behaviour (including every
  /// fault message) is identical to runFunctional<false>; sim_test's parity
  /// sweep and om::runDifferential enforce that.
  Result<SimResult> runFunctionalThreaded();

  /// Builds the profiling side tables (ProcOfIdx, SiteOfIdx, and the
  /// per-site/per-procedure count arrays) from the image's procedure
  /// table. Only called when Cfg.Profile is set.
  void buildProfileTables();

  /// Procedure ordinal (index into Img.Procs) owning \p Pc, or ~0u.
  uint32_t procOfPc(uint64_t Pc) const {
    if (Pc < Img.TextBase)
      return ~0u;
    uint64_t Idx = (Pc - Img.TextBase) / 4;
    return Idx < ProcOfIdx.size() ? ProcOfIdx[Idx] : ~0u;
  }

  /// Per-retired-instruction profile hook (Prof instantiations only).
  /// \p Idx is the executed instruction's dense index, \p NextPc the
  /// resolved successor.
  void profileRetire(size_t Idx, const Inst &I, uint64_t Pc,
                     uint64_t NextPc) {
    uint32_t P = ProcOfIdx[Idx];
    if (P == ~0u)
      return;
    ++ProcInstCounts[P];
    uint32_t S = SiteOfIdx[Idx];
    if (S != ~0u) {
      ++SiteExec[S];
      SiteTaken[S] += NextPc != Pc + 4;
    }
    if (I.Op == Opcode::Bsr || I.Op == Opcode::Jsr) {
      uint32_t Callee = procOfPc(NextPc);
      if (Callee != ~0u)
        ++CallEdgeCounts[(static_cast<uint64_t>(P) << 32) | Callee];
    }
  }

  /// Converts the raw count arrays into SimResult::Profile.
  void finishProfile();

  /// Common accounting after a successfully stepped instruction.
  void retire(const InstMeta &M) {
    ++Res.Instructions;
    ++Res.ClassCounts[M.Cls];
    Res.Nops += M.IsNop;
  }

  /// Builds the failure for a step() fault (FaultMsg), with pc and
  /// disassembly.
  Result<SimResult> stepFault(uint64_t Pc, const Inst &I) {
    return Result<SimResult>::failure(
        FaultMsg + formatString(" (pc=%s, inst='%s')",
                                formatHex64(Pc).c_str(),
                                disassemble(I).c_str()));
  }

  Result<SimResult> pcFault(uint64_t Pc) {
    return Result<SimResult>::failure(
        formatString("PC out of text: %s", formatHex64(Pc).c_str()));
  }

  Result<SimResult> budgetFault() {
    return Result<SimResult>::failure("instruction budget exceeded "
                                      "(runaway program?)");
  }

  /// Redirect handling shared by both loops: translates a non-sequential
  /// NextPc into an instruction index, detecting the halt address and
  /// out-of-text targets. Returns false when execution ends or faults
  /// (Out is then the final result).
  bool redirect(uint64_t NextPc, size_t &Idx, bool &Done,
                Result<SimResult> &Out) {
    if (NextPc == Layout::HaltReturnAddress) {
      Res.ExitCode = readInt(V0);
      Done = true;
      return false;
    }
    if (NextPc < Img.TextBase || (NextPc - Img.TextBase) % 4 != 0 ||
        (NextPc - Img.TextBase) / 4 >= Code.size()) {
      Out = pcFault(NextPc);
      return false;
    }
    Idx = (NextPc - Img.TextBase) / 4;
    return true;
  }

  bool pairable(const InstMeta &A, const InstMeta &B) const;

  const Image &Img;
  const SimConfig &Cfg;

  int64_t IntRegs[32] = {};
  double FpRegs[32] = {};
  std::vector<uint8_t> DataSegment;
  std::vector<uint8_t> StackSegment;
  std::vector<Inst> Code;     // dense pre-validated text
  std::vector<InstMeta> Meta; // parallel to Code

  SimResult Res;
  std::string FaultMsg; // set when load/store/step return false
  uint64_t RegReady[NumRegUnits] = {}; // cycle each unit's value is ready

  // Profiling side tables (built only when Cfg.Profile). SiteProc and
  // SiteOrdinal identify each local-branch site; SiteOfIdx/ProcOfIdx map
  // dense instruction indices to sites/procedures.
  std::vector<uint32_t> ProcOfIdx;
  std::vector<uint32_t> SiteOfIdx;
  std::vector<uint32_t> SiteProc;
  std::vector<uint32_t> SiteOrdinal;
  std::vector<uint64_t> SiteExec;
  std::vector<uint64_t> SiteTaken;
  std::vector<uint64_t> ProcInstCounts;
  std::map<uint64_t, uint64_t> CallEdgeCounts; // (caller<<32|callee)
};

} // namespace

Error Machine::predecode() {
  size_t NumWords = Img.Text.size() / 4;
  Code.reserve(NumWords);
  Meta.reserve(NumWords);
  uint32_t DeclaredCounters = 0;
  for (size_t Off = 0; Off + 4 <= Img.Text.size(); Off += 4) {
    uint32_t Word = Img.fetch(Img.TextBase + Off);
    std::optional<Inst> D = decode(Word);
    if (!D)
      return Error::failure(
          formatString("undecodable instruction at %s",
                       formatHex64(Img.TextBase + Off).c_str()));
    const Inst &I = *D;
    InstMeta M;
    M.Cls = static_cast<uint8_t>(classOf(I.Op));
    M.IsNop = I.isNop();
    M.IsLoad = isLoad(I.Op);
    M.IsStore = isStore(I.Op);
    unsigned Reads[3];
    M.NumReads = static_cast<uint8_t>(regUnitsRead(I, Reads));
    for (unsigned R = 0; R < 3; ++R)
      M.Reads[R] = R < M.NumReads ? static_cast<uint8_t>(Reads[R]) : 0;
    unsigned W = regUnitWritten(I);
    M.Written = W == ~0u ? NoWrittenUnit : static_cast<uint8_t>(W);
    M.Latency = static_cast<uint8_t>(latencyOf(I.Op));

    if (I.Op == Opcode::CallPal &&
        static_cast<PalFunc>(I.Disp & 0xFF) == PalFunc::Count) {
      uint32_t Index = static_cast<uint32_t>(I.Disp) >> 8;
      DeclaredCounters = std::max(DeclaredCounters, Index + 1);
    }

    Code.push_back(I);
    Meta.push_back(M);
  }
  // Profile counters get their full declared extent now; the CALL_PAL
  // count handler only indexes, so a corrupt or hostile image can never
  // force an unbounded mid-run resize.
  Res.ProfileCounts.assign(DeclaredCounters, 0);
  if (Cfg.Profile)
    buildProfileTables();
  return Error::success();
}

void Machine::buildProfileTables() {
  // Procedure extents: ImageProc::Size excludes intra-procedure alignment
  // nops, so the reliable extent of procedure i is [Entry_i, Entry_{i+1})
  // in address order (text end for the last). Padding nops between
  // procedures attribute to the preceding procedure; they are never
  // branch sites and only executed as straight-line filler, so the small
  // heat misattribution is harmless.
  ProcOfIdx.assign(Code.size(), ~0u);
  std::vector<uint32_t> ByEntry(Img.Procs.size());
  for (uint32_t P = 0; P < Img.Procs.size(); ++P)
    ByEntry[P] = P;
  std::sort(ByEntry.begin(), ByEntry.end(), [&](uint32_t A, uint32_t B) {
    return Img.Procs[A].Entry < Img.Procs[B].Entry;
  });
  for (size_t Pos = 0; Pos < ByEntry.size(); ++Pos) {
    const ImageProc &IP = Img.Procs[ByEntry[Pos]];
    if (IP.Entry < Img.TextBase)
      continue;
    uint64_t Begin = (IP.Entry - Img.TextBase) / 4;
    uint64_t End = Pos + 1 < ByEntry.size()
                       ? (Img.Procs[ByEntry[Pos + 1]].Entry - Img.TextBase) / 4
                       : Code.size();
    End = std::min<uint64_t>(End, Code.size());
    for (uint64_t Idx = Begin; Idx < End; ++Idx)
      ProcOfIdx[Idx] = ByEntry[Pos];
  }

  // Local-branch sites in address order: every Branch-class instruction
  // except BSR (a call). This ordinal assignment matches the order of
  // LocalBranch instructions in OM's symbolic form for an identically
  // optioned link (see support/Profile.h).
  SiteOfIdx.assign(Code.size(), ~0u);
  std::vector<uint32_t> BranchesInProc(Img.Procs.size(), 0);
  for (size_t Idx = 0; Idx < Code.size(); ++Idx) {
    uint32_t P = ProcOfIdx[Idx];
    if (P == ~0u || classOf(Code[Idx].Op) != InstClass::Branch ||
        Code[Idx].Op == Opcode::Bsr)
      continue;
    SiteOfIdx[Idx] = static_cast<uint32_t>(SiteProc.size());
    SiteProc.push_back(P);
    SiteOrdinal.push_back(BranchesInProc[P]++);
  }
  SiteExec.assign(SiteProc.size(), 0);
  SiteTaken.assign(SiteProc.size(), 0);
  ProcInstCounts.assign(Img.Procs.size(), 0);
}

void Machine::finishProfile() {
  prof::Profile &P = Res.Profile;
  P.Procs.resize(Img.Procs.size());
  std::vector<uint32_t> BranchesInProc(Img.Procs.size(), 0);
  for (uint32_t S = 0; S < SiteProc.size(); ++S)
    BranchesInProc[SiteProc[S]] =
        std::max(BranchesInProc[SiteProc[S]], SiteOrdinal[S] + 1);
  for (uint32_t Idx = 0; Idx < Img.Procs.size(); ++Idx) {
    P.Procs[Idx].Name = Img.Procs[Idx].Name;
    P.Procs[Idx].InstsExecuted = ProcInstCounts[Idx];
    P.Procs[Idx].Branches.resize(BranchesInProc[Idx]);
  }
  for (uint32_t S = 0; S < SiteProc.size(); ++S) {
    prof::BranchCounts &B = P.Procs[SiteProc[S]].Branches[SiteOrdinal[S]];
    B.Executed = SiteExec[S];
    B.Taken = SiteTaken[S];
  }
  for (const auto &[Key, Count] : CallEdgeCounts) {
    prof::CallEdge E;
    E.Caller = static_cast<uint32_t>(Key >> 32);
    E.Callee = static_cast<uint32_t>(Key & 0xFFFFFFFFu);
    E.Count = Count;
    P.Edges.push_back(E);
  }
}

uint8_t *Machine::memPtr(uint64_t Addr, unsigned Size) {
  if (Addr % Size != 0)
    return nullptr;
  // Range checks are phrased on offsets so that Addr + Size cannot wrap:
  // e.g. LDQ r,-8(zero) produces Addr = 2^64 - 8, where the naive
  // "Addr + Size <= end" test wraps to 0 and passes.
  auto contains = [&](uint64_t Base, uint64_t SegSize) {
    if (Addr < Base)
      return false;
    uint64_t Off = Addr - Base;
    return Off <= SegSize && SegSize - Off >= Size;
  };
  if (contains(Img.DataBase, DataSegment.size()))
    return &DataSegment[Addr - Img.DataBase];
  uint64_t StackBase = Layout::StackTop - Layout::StackSize;
  if (contains(StackBase, Layout::StackSize))
    return &StackSegment[Addr - StackBase];
  // Reading text as data is legal (constants are not stored there by our
  // compiler, but be permissive for tools).
  if (contains(Img.TextBase, Img.Text.size()))
    return const_cast<uint8_t *>(&Img.Text[Addr - Img.TextBase]);
  return nullptr;
}

bool Machine::load(uint64_t Addr, unsigned Size, uint64_t &Out) {
  uint8_t *P = memPtr(Addr, Size);
  if (!P) {
    FaultMsg = formatString("bad %u-byte load at %s", Size,
                            formatHex64(Addr).c_str());
    return false;
  }
  Out = 0;
  std::memcpy(&Out, P, Size);
  return true;
}

bool Machine::store(uint64_t Addr, unsigned Size, uint64_t Value) {
  uint8_t *P = memPtr(Addr, Size);
  if (!P || (Addr >= Img.TextBase &&
             Addr < Img.TextBase + Img.Text.size())) {
    FaultMsg = formatString("bad %u-byte store at %s", Size,
                            formatHex64(Addr).c_str());
    return false;
  }
  std::memcpy(P, &Value, Size);
  return true;
}

bool Machine::step(const Inst &I, uint64_t Pc, uint64_t &NextPc,
                   bool &Halt) {
  NextPc = Pc + 4;

  auto intOperandB = [&]() -> int64_t {
    return I.IsLit ? static_cast<int64_t>(I.Lit) : readInt(I.Rb);
  };
  auto branchTarget = [&]() {
    return Pc + 4 + static_cast<int64_t>(I.Disp) * 4;
  };
  auto takeBranch = [&]() {
    NextPc = branchTarget();
    ++Res.TakenBranches;
  };

  switch (I.Op) {
  case Opcode::CallPal:
    switch (static_cast<PalFunc>(I.Disp & 0xFF)) {
    case PalFunc::Halt:
      Halt = true;
      Res.ExitCode = readInt(A0);
      return true;
    case PalFunc::PutChar:
      Res.Output.push_back(static_cast<char>(readInt(A0) & 0xFF));
      return true;
    case PalFunc::PutInt:
      Res.Output += formatString(
          "%lld", static_cast<long long>(readInt(A0)));
      return true;
    case PalFunc::PutReal:
      Res.Output += formatString("%.6g", readFp(FA0));
      return true;
    case PalFunc::CycleCount:
      writeInt(V0, static_cast<int64_t>(Cfg.Timing ? Res.Cycles
                                                   : Res.Instructions));
      return true;
    case PalFunc::Count: {
      uint32_t Index = static_cast<uint32_t>(I.Disp) >> 8;
      // Predecode sized ProfileCounts to the image's declared counter
      // count, so in-bounds is guaranteed for decoded text; the check
      // stays as defense in depth against future divergence.
      if (Index >= Res.ProfileCounts.size()) {
        FaultMsg = formatString(
            "profile counter %u out of range (image declares %u)", Index,
            static_cast<unsigned>(Res.ProfileCounts.size()));
        return false;
      }
      ++Res.ProfileCounts[Index];
      return true;
    }
    }
    FaultMsg = formatString("unknown PAL function %d", I.Disp);
    return false;

  case Opcode::Lda:
    writeInt(I.Ra, readInt(I.Rb) + I.Disp);
    return true;
  case Opcode::Ldah:
    writeInt(I.Ra, readInt(I.Rb) + (static_cast<int64_t>(I.Disp) << 16));
    return true;

  case Opcode::Ldl: {
    uint64_t V;
    if (!load(readInt(I.Rb) + I.Disp, 4, V))
      return false;
    writeInt(I.Ra, static_cast<int32_t>(V));
    ++Res.Loads;
    return true;
  }
  case Opcode::Ldq: {
    uint64_t V;
    if (!load(readInt(I.Rb) + I.Disp, 8, V))
      return false;
    writeInt(I.Ra, static_cast<int64_t>(V));
    ++Res.Loads;
    return true;
  }
  case Opcode::Ldt: {
    uint64_t V;
    if (!load(readInt(I.Rb) + I.Disp, 8, V))
      return false;
    double D;
    std::memcpy(&D, &V, 8);
    writeFp(I.Ra, D);
    ++Res.Loads;
    return true;
  }
  case Opcode::Stl:
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 4,
                 static_cast<uint64_t>(readInt(I.Ra)) & 0xFFFFFFFFull);
  case Opcode::Stq:
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 8,
                 static_cast<uint64_t>(readInt(I.Ra)));
  case Opcode::Stt: {
    double D = readFp(I.Ra);
    uint64_t V;
    std::memcpy(&V, &D, 8);
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 8, V);
  }

  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret: {
    uint64_t Target = static_cast<uint64_t>(readInt(I.Rb)) & ~3ull;
    writeInt(I.Ra, static_cast<int64_t>(Pc + 4));
    NextPc = Target;
    ++Res.TakenBranches;
    return true;
  }

  case Opcode::Br:
  case Opcode::Bsr:
    writeInt(I.Ra, static_cast<int64_t>(Pc + 4));
    takeBranch();
    return true;
  case Opcode::Beq:
    if (readInt(I.Ra) == 0)
      takeBranch();
    return true;
  case Opcode::Bne:
    if (readInt(I.Ra) != 0)
      takeBranch();
    return true;
  case Opcode::Blt:
    if (readInt(I.Ra) < 0)
      takeBranch();
    return true;
  case Opcode::Ble:
    if (readInt(I.Ra) <= 0)
      takeBranch();
    return true;
  case Opcode::Bgt:
    if (readInt(I.Ra) > 0)
      takeBranch();
    return true;
  case Opcode::Bge:
    if (readInt(I.Ra) >= 0)
      takeBranch();
    return true;
  case Opcode::Fbeq:
    if (readFp(I.Ra) == 0.0)
      takeBranch();
    return true;
  case Opcode::Fbne:
    if (readFp(I.Ra) != 0.0)
      takeBranch();
    return true;

  case Opcode::Addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) +
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::Subq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) -
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::Mulq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) *
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::S4addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       (static_cast<uint64_t>(readInt(I.Ra)) << 2) +
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::S8addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       (static_cast<uint64_t>(readInt(I.Ra)) << 3) +
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::Cmpeq:
    writeInt(I.Rc, readInt(I.Ra) == intOperandB() ? 1 : 0);
    return true;
  case Opcode::Cmplt:
    writeInt(I.Rc, readInt(I.Ra) < intOperandB() ? 1 : 0);
    return true;
  case Opcode::Cmple:
    writeInt(I.Rc, readInt(I.Ra) <= intOperandB() ? 1 : 0);
    return true;
  case Opcode::Cmpult:
    writeInt(I.Rc, static_cast<uint64_t>(readInt(I.Ra)) <
                           static_cast<uint64_t>(intOperandB())
                       ? 1
                       : 0);
    return true;
  case Opcode::And:
    writeInt(I.Rc, readInt(I.Ra) & intOperandB());
    return true;
  case Opcode::Bic:
    writeInt(I.Rc, readInt(I.Ra) & ~intOperandB());
    return true;
  case Opcode::Bis:
    writeInt(I.Rc, readInt(I.Ra) | intOperandB());
    return true;
  case Opcode::Ornot:
    writeInt(I.Rc, readInt(I.Ra) | ~intOperandB());
    return true;
  case Opcode::Xor:
    writeInt(I.Rc, readInt(I.Ra) ^ intOperandB());
    return true;
  case Opcode::Sll:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra))
                       << (intOperandB() & 63)));
    return true;
  case Opcode::Srl:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) >>
                       (intOperandB() & 63)));
    return true;
  case Opcode::Sra:
    writeInt(I.Rc, readInt(I.Ra) >> (intOperandB() & 63));
    return true;

  case Opcode::Addt:
    writeFp(I.Rc, readFp(I.Ra) + readFp(I.Rb));
    return true;
  case Opcode::Subt:
    writeFp(I.Rc, readFp(I.Ra) - readFp(I.Rb));
    return true;
  case Opcode::Mult:
    writeFp(I.Rc, readFp(I.Ra) * readFp(I.Rb));
    return true;
  case Opcode::Divt:
    writeFp(I.Rc, readFp(I.Ra) / readFp(I.Rb));
    return true;
  case Opcode::Cmpteq:
    writeFp(I.Rc, readFp(I.Ra) == readFp(I.Rb) ? 2.0 : 0.0);
    return true;
  case Opcode::Cmptlt:
    writeFp(I.Rc, readFp(I.Ra) < readFp(I.Rb) ? 2.0 : 0.0);
    return true;
  case Opcode::Cmptle:
    writeFp(I.Rc, readFp(I.Ra) <= readFp(I.Rb) ? 2.0 : 0.0);
    return true;
  case Opcode::Cpys:
    writeFp(I.Rc, std::copysign(readFp(I.Rb), readFp(I.Ra)));
    return true;
  case Opcode::Cvtqt: {
    double D = readFp(I.Rb);
    uint64_t Bits;
    std::memcpy(&Bits, &D, 8);
    writeFp(I.Rc, static_cast<double>(static_cast<int64_t>(Bits)));
    return true;
  }
  case Opcode::Cvttq: {
    double D = readFp(I.Rb);
    int64_t V;
    if (std::isnan(D))
      V = 0;
    else if (D >= 9.2233720368547758e18)
      V = INT64_MAX;
    else if (D <= -9.2233720368547758e18)
      V = INT64_MIN;
    else
      V = static_cast<int64_t>(D);
    uint64_t Bits = static_cast<uint64_t>(V);
    double Out;
    std::memcpy(&Out, &Bits, 8);
    writeFp(I.Rc, Out);
    return true;
  }
  case Opcode::Itoft: {
    uint64_t Bits = static_cast<uint64_t>(readInt(I.Ra));
    double Out;
    std::memcpy(&Out, &Bits, 8);
    writeFp(I.Rc, Out);
    return true;
  }
  case Opcode::Ftoit: {
    double D = readFp(I.Ra);
    uint64_t Bits;
    std::memcpy(&Bits, &D, 8);
    writeInt(I.Rc, static_cast<int64_t>(Bits));
    return true;
  }
  }
  FaultMsg = "unhandled opcode in simulator";
  return false;
}

bool Machine::pairable(const InstMeta &A, const InstMeta &B) const {
  // Dual issue requires: A is not a control transfer, at most one memory
  // operation, at most one branch/jump/PAL, and no data dependence of B on
  // A (RAW or WAW).
  InstClass CA = static_cast<InstClass>(A.Cls);
  if (CA == InstClass::Branch || CA == InstClass::Jump ||
      CA == InstClass::Pal)
    return false;
  if ((A.IsLoad || A.IsStore) && (B.IsLoad || B.IsStore))
    return false;
  if (A.Written != NoWrittenUnit) {
    for (unsigned I = 0; I < B.NumReads; ++I)
      if (B.Reads[I] == A.Written)
        return false;
    if (B.Written == A.Written)
      return false;
  }
  return true;
}

template <bool Prof> Result<SimResult> Machine::runFunctional() {
  const Inst *C = Code.data();
  const InstMeta *M = Meta.data();
  const size_t N = Code.size();
  const uint64_t TextBase = Img.TextBase;
  const uint64_t MaxInsts = Cfg.MaxInstructions;
  size_t Idx = (Img.Entry - TextBase) / 4;

  Result<SimResult> Fault = Result<SimResult>::failure("");
  bool Done = false;
  while (true) {
    if (Res.Instructions >= MaxInsts)
      return budgetFault();
    const Inst &I = C[Idx];
    uint64_t Pc = TextBase + Idx * 4;
    uint64_t NextPc;
    bool Halt = false;
    if (!step(I, Pc, NextPc, Halt))
      return stepFault(Pc, I);
    retire(M[Idx]);
    if constexpr (Prof)
      profileRetire(Idx, I, Pc, NextPc);
    if (Halt)
      break;
    ++Idx;
    if (NextPc != Pc + 4) {
      if (!redirect(NextPc, Idx, Done, Fault)) {
        if (Done)
          break;
        return Fault;
      }
    } else if (Idx >= N) {
      return pcFault(NextPc);
    }
  }
  Res.Cycles = 0;
  if constexpr (Prof)
    finishProfile();
  Res.FinalData = std::move(DataSegment);
  return std::move(Res);
}

//===----------------------------------------------------------------------===//
// Threaded dispatch (DispatchMode::Threaded).
//
// The switch core pays, per executed instruction: one indirect branch that
// every opcode funnels through (so the host predictor sees one maximally
// polluted target), zero-register guards on every operand, an IsLit test on
// every operate, and four member-field counter updates in retire(). The
// threaded core removes all of that at translation time:
//
//   * each instruction becomes { handler label address, resolved operands },
//     so dispatch is `goto *PP->H` — one indirect jump *per handler copy*,
//     giving the predictor per-opcode history (the classic token-threading
//     win), and integer operates are split into register/literal handlers;
//   * the register files grow a 33rd slot that absorbs writes to the
//     hardwired zero registers, so handlers write unconditionally;
//   * the instruction budget is a countdown ("fuel") decremented at handler
//     entry, and all statistics accumulate in locals folded into SimResult
//     once at exit;
//   * loads/stores take an inline aligned-and-in-segment fast path and fall
//     back to Machine::load/store for everything else, so every fault keeps
//     the switch core's exact message.
//
// Faults discard the in-flight result, so only fault *messages* must match
// the switch core, which is why the fast paths may count before checking.
//===----------------------------------------------------------------------===//

// The computed-goto core needs the GNU/Clang `&&label` extension; elsewhere
// (or under -DOM64_SIM_FORCE_SWITCH, the build's escape hatch for exercising
// the portable path) DispatchMode::Threaded silently runs the switch loop.
#if !defined(OM64_SIM_FORCE_SWITCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define OM64_SIM_THREADED_DISPATCH 1
#else
#define OM64_SIM_THREADED_DISPATCH 0
#endif

#if OM64_SIM_THREADED_DISPATCH

namespace {

/// Write-sink slot of the threaded core's 33-entry register files.
constexpr uint8_t ThSink = 32;

constexpr unsigned ThClsPal = static_cast<unsigned>(InstClass::Pal);
constexpr unsigned ThClsLoadAddress =
    static_cast<unsigned>(InstClass::LoadAddress);
constexpr unsigned ThClsIntLoad = static_cast<unsigned>(InstClass::IntLoad);
constexpr unsigned ThClsIntStore =
    static_cast<unsigned>(InstClass::IntStore);
constexpr unsigned ThClsFpLoad = static_cast<unsigned>(InstClass::FpLoad);
constexpr unsigned ThClsFpStore = static_cast<unsigned>(InstClass::FpStore);
constexpr unsigned ThClsJump = static_cast<unsigned>(InstClass::Jump);
constexpr unsigned ThClsBranch = static_cast<unsigned>(InstClass::Branch);
constexpr unsigned ThClsIntOp = static_cast<unsigned>(InstClass::IntOp);
constexpr unsigned ThClsFpOp = static_cast<unsigned>(InstClass::FpOp);
constexpr unsigned ThClsTransfer =
    static_cast<unsigned>(InstClass::Transfer);

/// Handler ids of the threaded core. R/L suffixes are the register/literal
/// operand variants of the integer operates, split at translation time so
/// handlers never test Inst::IsLit.
enum ThHandler : uint8_t {
  TH_Nop,
  TH_PalHalt,
  TH_PalPutChar,
  TH_PalPutInt,
  TH_PalPutReal,
  TH_PalCycle,
  TH_PalCount,
  TH_PalUnknown,
  TH_Lda,
  TH_Ldah,
  TH_Ldl,
  TH_Ldq,
  TH_Ldt,
  TH_Stl,
  TH_Stq,
  TH_Stt,
  TH_Jump,
  TH_BrBsr,
  TH_Beq,
  TH_Bne,
  TH_Blt,
  TH_Ble,
  TH_Bgt,
  TH_Bge,
  TH_Fbeq,
  TH_Fbne,
  TH_AddqR,
  TH_AddqL,
  TH_SubqR,
  TH_SubqL,
  TH_MulqR,
  TH_MulqL,
  TH_S4addqR,
  TH_S4addqL,
  TH_S8addqR,
  TH_S8addqL,
  TH_CmpeqR,
  TH_CmpeqL,
  TH_CmpltR,
  TH_CmpltL,
  TH_CmpleR,
  TH_CmpleL,
  TH_CmpultR,
  TH_CmpultL,
  TH_AndR,
  TH_AndL,
  TH_BicR,
  TH_BicL,
  TH_BisR,
  TH_BisL,
  TH_OrnotR,
  TH_OrnotL,
  TH_XorR,
  TH_XorL,
  TH_SllR,
  TH_SllL,
  TH_SrlR,
  TH_SrlL,
  TH_SraR,
  TH_SraL,
  TH_Addt,
  TH_Subt,
  TH_Mult,
  TH_Divt,
  TH_Cmpteq,
  TH_Cmptlt,
  TH_Cmptle,
  TH_Cvtqt,
  TH_Cvttq,
  TH_Cpys,
  TH_Itoft,
  TH_Ftoit,
  TH_OffEnd,
  NumThHandlers,
};

/// One translated instruction: the handler's label address plus operands
/// resolved to direct register-file indices. Exactly 16 bytes, so the
/// operand stream stays dense. Two merges make that fit:
///
///   * W is the one write index a handler needs — Ra for loads/LDA/link
///     writes, Rc for operates — sink-remapped (zero register -> ThSink);
///   * B doubles as the 8-bit literal for the *L operate handlers, which
///     were split from the register forms at translation precisely so each
///     reads the field one way unconditionally.
struct ThInst {
  const void *H;
  int32_t Disp;
  uint8_t A;   // Ra as a read index (int file; fp file for fp handlers)
  uint8_t B;   // Rb as a read index, or the operate literal (*L handlers)
  uint8_t W;   // write index, sink-remapped
  uint8_t Cls; // InstClass (the nop handler's histogram index)
};
static_assert(sizeof(ThInst) == 16, "threaded operand record grew");

ThHandler thHandlerFor(const Inst &I, bool IsNop) {
  // Nops (any side-effect-free write to a zero register, Inst::isNop) get
  // a dedicated handler: the write would be sunk anyway, so only the nop
  // and class counters remain.
  if (IsNop)
    return TH_Nop;
  switch (I.Op) {
  case Opcode::CallPal:
    switch (static_cast<PalFunc>(I.Disp & 0xFF)) {
    case PalFunc::Halt:
      return TH_PalHalt;
    case PalFunc::PutChar:
      return TH_PalPutChar;
    case PalFunc::PutInt:
      return TH_PalPutInt;
    case PalFunc::PutReal:
      return TH_PalPutReal;
    case PalFunc::CycleCount:
      return TH_PalCycle;
    case PalFunc::Count:
      return TH_PalCount;
    }
    return TH_PalUnknown;
  case Opcode::Lda:
    return TH_Lda;
  case Opcode::Ldah:
    return TH_Ldah;
  case Opcode::Ldl:
    return TH_Ldl;
  case Opcode::Ldq:
    return TH_Ldq;
  case Opcode::Ldt:
    return TH_Ldt;
  case Opcode::Stl:
    return TH_Stl;
  case Opcode::Stq:
    return TH_Stq;
  case Opcode::Stt:
    return TH_Stt;
  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret:
    return TH_Jump;
  case Opcode::Br:
  case Opcode::Bsr:
    return TH_BrBsr;
  case Opcode::Beq:
    return TH_Beq;
  case Opcode::Bne:
    return TH_Bne;
  case Opcode::Blt:
    return TH_Blt;
  case Opcode::Ble:
    return TH_Ble;
  case Opcode::Bgt:
    return TH_Bgt;
  case Opcode::Bge:
    return TH_Bge;
  case Opcode::Fbeq:
    return TH_Fbeq;
  case Opcode::Fbne:
    return TH_Fbne;
  case Opcode::Addq:
    return I.IsLit ? TH_AddqL : TH_AddqR;
  case Opcode::Subq:
    return I.IsLit ? TH_SubqL : TH_SubqR;
  case Opcode::Mulq:
    return I.IsLit ? TH_MulqL : TH_MulqR;
  case Opcode::S4addq:
    return I.IsLit ? TH_S4addqL : TH_S4addqR;
  case Opcode::S8addq:
    return I.IsLit ? TH_S8addqL : TH_S8addqR;
  case Opcode::Cmpeq:
    return I.IsLit ? TH_CmpeqL : TH_CmpeqR;
  case Opcode::Cmplt:
    return I.IsLit ? TH_CmpltL : TH_CmpltR;
  case Opcode::Cmple:
    return I.IsLit ? TH_CmpleL : TH_CmpleR;
  case Opcode::Cmpult:
    return I.IsLit ? TH_CmpultL : TH_CmpultR;
  case Opcode::And:
    return I.IsLit ? TH_AndL : TH_AndR;
  case Opcode::Bic:
    return I.IsLit ? TH_BicL : TH_BicR;
  case Opcode::Bis:
    return I.IsLit ? TH_BisL : TH_BisR;
  case Opcode::Ornot:
    return I.IsLit ? TH_OrnotL : TH_OrnotR;
  case Opcode::Xor:
    return I.IsLit ? TH_XorL : TH_XorR;
  case Opcode::Sll:
    return I.IsLit ? TH_SllL : TH_SllR;
  case Opcode::Srl:
    return I.IsLit ? TH_SrlL : TH_SrlR;
  case Opcode::Sra:
    return I.IsLit ? TH_SraL : TH_SraR;
  case Opcode::Addt:
    return TH_Addt;
  case Opcode::Subt:
    return TH_Subt;
  case Opcode::Mult:
    return TH_Mult;
  case Opcode::Divt:
    return TH_Divt;
  case Opcode::Cmpteq:
    return TH_Cmpteq;
  case Opcode::Cmptlt:
    return TH_Cmptlt;
  case Opcode::Cmptle:
    return TH_Cmptle;
  case Opcode::Cvtqt:
    return TH_Cvtqt;
  case Opcode::Cvttq:
    return TH_Cvttq;
  case Opcode::Cpys:
    return TH_Cpys;
  case Opcode::Itoft:
    return TH_Itoft;
  case Opcode::Ftoit:
    return TH_Ftoit;
  }
  return TH_PalUnknown; // unreachable: predecode validated every opcode
}

} // namespace

#endif // OM64_SIM_THREADED_DISPATCH

Result<SimResult> Machine::runFunctionalThreaded() {
#if !OM64_SIM_THREADED_DISPATCH
  return runFunctional<false>();
#else
  // Label addresses, indexed by ThHandler. Filled by assignment (not an
  // initializer list) so an ordering slip between the enum and the table
  // is impossible.
  const void *Lab[NumThHandlers];
  Lab[TH_Nop] = &&L_Nop;
  Lab[TH_PalHalt] = &&L_PalHalt;
  Lab[TH_PalPutChar] = &&L_PalPutChar;
  Lab[TH_PalPutInt] = &&L_PalPutInt;
  Lab[TH_PalPutReal] = &&L_PalPutReal;
  Lab[TH_PalCycle] = &&L_PalCycle;
  Lab[TH_PalCount] = &&L_PalCount;
  Lab[TH_PalUnknown] = &&L_PalUnknown;
  Lab[TH_Lda] = &&L_Lda;
  Lab[TH_Ldah] = &&L_Ldah;
  Lab[TH_Ldl] = &&L_Ldl;
  Lab[TH_Ldq] = &&L_Ldq;
  Lab[TH_Ldt] = &&L_Ldt;
  Lab[TH_Stl] = &&L_Stl;
  Lab[TH_Stq] = &&L_Stq;
  Lab[TH_Stt] = &&L_Stt;
  Lab[TH_Jump] = &&L_Jump;
  Lab[TH_BrBsr] = &&L_BrBsr;
  Lab[TH_Beq] = &&L_Beq;
  Lab[TH_Bne] = &&L_Bne;
  Lab[TH_Blt] = &&L_Blt;
  Lab[TH_Ble] = &&L_Ble;
  Lab[TH_Bgt] = &&L_Bgt;
  Lab[TH_Bge] = &&L_Bge;
  Lab[TH_Fbeq] = &&L_Fbeq;
  Lab[TH_Fbne] = &&L_Fbne;
  Lab[TH_AddqR] = &&L_AddqR;
  Lab[TH_AddqL] = &&L_AddqL;
  Lab[TH_SubqR] = &&L_SubqR;
  Lab[TH_SubqL] = &&L_SubqL;
  Lab[TH_MulqR] = &&L_MulqR;
  Lab[TH_MulqL] = &&L_MulqL;
  Lab[TH_S4addqR] = &&L_S4addqR;
  Lab[TH_S4addqL] = &&L_S4addqL;
  Lab[TH_S8addqR] = &&L_S8addqR;
  Lab[TH_S8addqL] = &&L_S8addqL;
  Lab[TH_CmpeqR] = &&L_CmpeqR;
  Lab[TH_CmpeqL] = &&L_CmpeqL;
  Lab[TH_CmpltR] = &&L_CmpltR;
  Lab[TH_CmpltL] = &&L_CmpltL;
  Lab[TH_CmpleR] = &&L_CmpleR;
  Lab[TH_CmpleL] = &&L_CmpleL;
  Lab[TH_CmpultR] = &&L_CmpultR;
  Lab[TH_CmpultL] = &&L_CmpultL;
  Lab[TH_AndR] = &&L_AndR;
  Lab[TH_AndL] = &&L_AndL;
  Lab[TH_BicR] = &&L_BicR;
  Lab[TH_BicL] = &&L_BicL;
  Lab[TH_BisR] = &&L_BisR;
  Lab[TH_BisL] = &&L_BisL;
  Lab[TH_OrnotR] = &&L_OrnotR;
  Lab[TH_OrnotL] = &&L_OrnotL;
  Lab[TH_XorR] = &&L_XorR;
  Lab[TH_XorL] = &&L_XorL;
  Lab[TH_SllR] = &&L_SllR;
  Lab[TH_SllL] = &&L_SllL;
  Lab[TH_SrlR] = &&L_SrlR;
  Lab[TH_SrlL] = &&L_SrlL;
  Lab[TH_SraR] = &&L_SraR;
  Lab[TH_SraL] = &&L_SraL;
  Lab[TH_Addt] = &&L_Addt;
  Lab[TH_Subt] = &&L_Subt;
  Lab[TH_Mult] = &&L_Mult;
  Lab[TH_Divt] = &&L_Divt;
  Lab[TH_Cmpteq] = &&L_Cmpteq;
  Lab[TH_Cmptlt] = &&L_Cmptlt;
  Lab[TH_Cmptle] = &&L_Cmptle;
  Lab[TH_Cvtqt] = &&L_Cvtqt;
  Lab[TH_Cvttq] = &&L_Cvttq;
  Lab[TH_Cpys] = &&L_Cpys;
  Lab[TH_Itoft] = &&L_Itoft;
  Lab[TH_Ftoit] = &&L_Ftoit;
  Lab[TH_OffEnd] = &&L_OffEnd;

  const size_t N = Code.size();
  std::vector<ThInst> Prog(N + 1);
  for (size_t I = 0; I < N; ++I) {
    const Inst &In = Code[I];
    ThInst &T = Prog[I];
    T.H = Lab[thHandlerFor(In, Meta[I].IsNop != 0)];
    T.Disp = In.Disp;
    T.A = In.Ra;
    const InstClass C = classOf(In.Op);
    // Only integer operates dispatch to *L handlers; a literal-form fp
    // operate decodes with Rb = Zero, and its handler must read F[31]
    // (+0.0) exactly like the switch core's readFp.
    T.B = C == InstClass::IntOp && In.IsLit ? In.Lit : In.Rb;
    const uint8_t Dest =
        C == InstClass::IntOp || C == InstClass::FpOp ||
                C == InstClass::Transfer
            ? In.Rc
            : In.Ra;
    T.W = Dest == Zero ? ThSink : Dest;
    T.Cls = Meta[I].Cls;
    // Branch-class instructions never use Disp as data, so translation
    // stores the resolved target *index* (fall-through index + word
    // displacement) instead — the taken path is one sign-extend away from
    // the next handler. Indices and 21-bit displacements both fit int32.
    if (C == InstClass::Branch)
      T.Disp = static_cast<int32_t>(static_cast<int64_t>(I) + 1 + In.Disp);
  }
  // Sentinel at index N: sequential fall-through past the last instruction
  // lands here (the switch loop's `Idx >= N` check, without a per-
  // instruction compare).
  Prog[N].H = &&L_OffEnd;

  // 33-slot register files: slot ThSink absorbs writes whose architectural
  // destination is the hardwired zero register, so handlers store
  // unconditionally. Slots 31 hold zero and are never written (translation
  // redirected every write), so reads need no guard either.
  int64_t R[ThSink + 1];
  double F[ThSink + 1];
  for (unsigned I = 0; I < NumIntRegs; ++I) {
    R[I] = IntRegs[I];
    F[I] = FpRegs[I];
  }
  R[ThSink] = 0;
  F[ThSink] = 0.0;

  const uint64_t TextBase = Img.TextBase;
  const uint64_t DataBase = Img.DataBase;
  const uint64_t StackBase = Layout::StackTop - Layout::StackSize;
  uint8_t *const DataPtr = DataSegment.data();
  uint8_t *const StackPtr = StackSegment.data();

  // Inline fast-path extents. A segment only qualifies if it cannot alias
  // text (store() faults on text addresses, which the fast path skips
  // checking); real layouts never overlap, so this is a translation-time
  // constant, not a hot-path test. The *4/*8 extents are pre-shrunk by the
  // access size so the hot test is one subtraction-free compare.
  const uint64_t TextEnd = TextBase + Img.Text.size();
  const bool DataAliasesText =
      DataBase < TextEnd && TextBase < DataBase + DataSegment.size();
  const bool StackAliasesText =
      StackBase < TextEnd && TextBase < StackBase + Layout::StackSize;
  const uint64_t DSz = DataAliasesText ? 0 : DataSegment.size();
  const uint64_t SSz = StackAliasesText ? 0 : Layout::StackSize;
  const uint64_t Data4 = DSz >= 4 ? DSz - 3 : 0;
  const uint64_t Data8 = DSz >= 8 ? DSz - 7 : 0;
  const uint64_t Stack4 = SSz >= 4 ? SSz - 3 : 0;
  const uint64_t Stack8 = SSz >= 8 ? SSz - 7 : 0;

  // Instruction budget as countdown fuel: decremented at every handler
  // entry, budget-faulting when it reaches zero. Starting at MaxInsts + 1
  // makes "executed so far" = MaxInsts + 1 - Fuel (modular arithmetic keeps
  // that correct even for MaxInsts == UINT64_MAX, where the budget is
  // unreachable exactly as in the switch core).
  const uint64_t MaxInsts = Cfg.MaxInstructions;
  uint64_t Fuel = MaxInsts + 1;
  uint64_t NNops = 0;
  uint64_t NTaken = 0;
  uint64_t Cls[NumInstClasses] = {};

  const ThInst *const PB = Prog.data();
  const ThInst *PP = PB + (Img.Entry - TextBase) / 4;

// Every real handler starts with the fuel check (the switch loop's
// pre-execution budget test); the sentinel and fault labels do not, which
// preserves the switch core's check ordering at text edges.
#define OM64_TH_ENTER()                                                    \
  const void *NH_ __attribute__((unused)) = PP[1].H;                       \
  if (--Fuel == 0)                                                         \
  goto L_Budget
#define OM64_TH_NEXT()                                                     \
  do {                                                                     \
    ++PP;                                                                  \
    goto *NH_;                                                             \
  } while (0)
// Taken branch to a translation-resolved target index (sign-extended, so
// backward-past-zero targets wrap exactly like the switch core's mod-2^64
// NextPc arithmetic and fault with the same pcFault value).
#define OM64_TH_TAKEN(TIdx)                                                \
  do {                                                                     \
    const uint64_t TI =                                                    \
        static_cast<uint64_t>(static_cast<int64_t>(TIdx));                 \
    ++NTaken;                                                              \
    if (TI >= N)                                                           \
      return pcFault(TextBase + TI * 4);                                   \
    PP = PB + TI;                                                          \
    goto *PP->H;                                                           \
  } while (0)
// Conditional branch on the integer or fp file.
#define OM64_TH_CONDBR(LABEL, FILE, CMP)                                   \
  LABEL : {                                                                \
    OM64_TH_ENTER();                                                       \
    ++Cls[ThClsBranch];                                                    \
    if (FILE[PP->A] CMP 0)                                                 \
      OM64_TH_TAKEN(PP->Disp);                                             \
    OM64_TH_NEXT();                                                        \
  }
// Integer operate, instantiated as register (B = R[rb]) and literal
// (B = zero-extended 8-bit literal) handlers. The dominant class carries
// no histogram increment: Cls[IntOp] is reconstructed at exit as
// Instructions minus every other class (the L_Halt derivation).
#define OM64_TH_INTOP(NAME, EXPR)                                          \
  L_##NAME##R : {                                                          \
    OM64_TH_ENTER();                                                       \
    const int64_t A = R[PP->A];                                            \
    const int64_t B = R[PP->B];                                            \
    R[PP->W] = (EXPR);                                                     \
    OM64_TH_NEXT();                                                        \
  }                                                                        \
  L_##NAME##L : {                                                          \
    OM64_TH_ENTER();                                                       \
    const int64_t A = R[PP->A];                                            \
    const int64_t B = static_cast<int64_t>(PP->B);                         \
    R[PP->W] = (EXPR);                                                     \
    OM64_TH_NEXT();                                                        \
  }
// Floating operate reading both sources.
#define OM64_TH_FPOP(NAME, EXPR)                                           \
  L_##NAME : {                                                             \
    OM64_TH_ENTER();                                                       \
    ++Cls[ThClsFpOp];                                                      \
    const double A = F[PP->A];                                             \
    const double B = F[PP->B];                                             \
    F[PP->W] = (EXPR);                                                    \
    OM64_TH_NEXT();                                                        \
  }

  goto *PP->H;

L_Nop: {
  OM64_TH_ENTER();
  ++NNops;
  ++Cls[PP->Cls];
  OM64_TH_NEXT();
}

L_PalHalt: {
  OM64_TH_ENTER();
  ++Cls[ThClsPal];
  Res.ExitCode = R[A0];
  goto L_Halt;
}
L_PalPutChar: {
  OM64_TH_ENTER();
  ++Cls[ThClsPal];
  Res.Output.push_back(static_cast<char>(R[A0] & 0xFF));
  OM64_TH_NEXT();
}
L_PalPutInt: {
  OM64_TH_ENTER();
  ++Cls[ThClsPal];
  Res.Output += formatString("%lld", static_cast<long long>(R[A0]));
  OM64_TH_NEXT();
}
L_PalPutReal: {
  OM64_TH_ENTER();
  ++Cls[ThClsPal];
  Res.Output += formatString("%.6g", F[FA0]);
  OM64_TH_NEXT();
}
L_PalCycle: {
  OM64_TH_ENTER();
  ++Cls[ThClsPal];
  // Functional runs report instructions executed before this one — the
  // switch core reads Res.Instructions pre-retire.
  R[V0] = static_cast<int64_t>(MaxInsts - Fuel);
  OM64_TH_NEXT();
}
L_PalCount: {
  OM64_TH_ENTER();
  ++Cls[ThClsPal];
  const uint32_t Index = static_cast<uint32_t>(PP->Disp) >> 8;
  if (Index >= Res.ProfileCounts.size()) {
    FaultMsg = formatString(
        "profile counter %u out of range (image declares %u)", Index,
        static_cast<unsigned>(Res.ProfileCounts.size()));
    goto L_Fault;
  }
  ++Res.ProfileCounts[Index];
  OM64_TH_NEXT();
}
L_PalUnknown: {
  OM64_TH_ENTER();
  FaultMsg = formatString("unknown PAL function %d", PP->Disp);
  goto L_Fault;
}

L_Lda: {
  OM64_TH_ENTER();
  ++Cls[ThClsLoadAddress];
  R[PP->W] = R[PP->B] + PP->Disp;
  OM64_TH_NEXT();
}
L_Ldah: {
  OM64_TH_ENTER();
  ++Cls[ThClsLoadAddress];
  R[PP->W] = R[PP->B] + (static_cast<int64_t>(PP->Disp) << 16);
  OM64_TH_NEXT();
}

L_Ldl: {
  OM64_TH_ENTER();
  ++Cls[ThClsIntLoad];
  const uint64_t Addr = static_cast<uint64_t>(R[PP->B] + PP->Disp);
  const uint64_t DOff = Addr - DataBase;
  const uint64_t SOff = Addr - StackBase;
  int64_t V;
  if ((((Addr & 3) == 0) & (DOff < Data4)) != 0) {
    uint32_t W;
    std::memcpy(&W, DataPtr + DOff, 4);
    V = static_cast<int32_t>(W);
  } else if ((((Addr & 3) == 0) & (SOff < Stack4)) != 0) {
    uint32_t W;
    std::memcpy(&W, StackPtr + SOff, 4);
    V = static_cast<int32_t>(W);
  } else {
    uint64_t W;
    if (!load(Addr, 4, W))
      goto L_Fault;
    V = static_cast<int32_t>(W);
  }
  R[PP->W] = V;
  OM64_TH_NEXT();
}
L_Ldq: {
  OM64_TH_ENTER();
  ++Cls[ThClsIntLoad];
  const uint64_t Addr = static_cast<uint64_t>(R[PP->B] + PP->Disp);
  const uint64_t DOff = Addr - DataBase;
  const uint64_t SOff = Addr - StackBase;
  uint64_t W;
  if ((((Addr & 7) == 0) & (DOff < Data8)) != 0) {
    std::memcpy(&W, DataPtr + DOff, 8);
  } else if ((((Addr & 7) == 0) & (SOff < Stack8)) != 0) {
    std::memcpy(&W, StackPtr + SOff, 8);
  } else if (!load(Addr, 8, W)) {
    goto L_Fault;
  }
  R[PP->W] = static_cast<int64_t>(W);
  OM64_TH_NEXT();
}
L_Ldt: {
  OM64_TH_ENTER();
  ++Cls[ThClsFpLoad];
  const uint64_t Addr = static_cast<uint64_t>(R[PP->B] + PP->Disp);
  const uint64_t DOff = Addr - DataBase;
  const uint64_t SOff = Addr - StackBase;
  uint64_t W;
  if ((((Addr & 7) == 0) & (DOff < Data8)) != 0) {
    std::memcpy(&W, DataPtr + DOff, 8);
  } else if ((((Addr & 7) == 0) & (SOff < Stack8)) != 0) {
    std::memcpy(&W, StackPtr + SOff, 8);
  } else if (!load(Addr, 8, W)) {
    goto L_Fault;
  }
  double D;
  std::memcpy(&D, &W, 8);
  F[PP->W] = D;
  OM64_TH_NEXT();
}

L_Stl: {
  OM64_TH_ENTER();
  ++Cls[ThClsIntStore];
  const uint64_t Addr = static_cast<uint64_t>(R[PP->B] + PP->Disp);
  const uint64_t DOff = Addr - DataBase;
  const uint64_t SOff = Addr - StackBase;
  const uint32_t W = static_cast<uint32_t>(R[PP->A]);
  if ((((Addr & 3) == 0) & (DOff < Data4)) != 0)
    std::memcpy(DataPtr + DOff, &W, 4);
  else if ((((Addr & 3) == 0) & (SOff < Stack4)) != 0)
    std::memcpy(StackPtr + SOff, &W, 4);
  else if (!store(Addr, 4, W))
    goto L_Fault;
  OM64_TH_NEXT();
}
L_Stq: {
  OM64_TH_ENTER();
  ++Cls[ThClsIntStore];
  const uint64_t Addr = static_cast<uint64_t>(R[PP->B] + PP->Disp);
  const uint64_t DOff = Addr - DataBase;
  const uint64_t SOff = Addr - StackBase;
  const uint64_t W = static_cast<uint64_t>(R[PP->A]);
  if ((((Addr & 7) == 0) & (DOff < Data8)) != 0)
    std::memcpy(DataPtr + DOff, &W, 8);
  else if ((((Addr & 7) == 0) & (SOff < Stack8)) != 0)
    std::memcpy(StackPtr + SOff, &W, 8);
  else if (!store(Addr, 8, W))
    goto L_Fault;
  OM64_TH_NEXT();
}
L_Stt: {
  OM64_TH_ENTER();
  ++Cls[ThClsFpStore];
  const uint64_t Addr = static_cast<uint64_t>(R[PP->B] + PP->Disp);
  const uint64_t DOff = Addr - DataBase;
  const uint64_t SOff = Addr - StackBase;
  const double D = F[PP->A];
  uint64_t W;
  std::memcpy(&W, &D, 8);
  if ((((Addr & 7) == 0) & (DOff < Data8)) != 0)
    std::memcpy(DataPtr + DOff, &W, 8);
  else if ((((Addr & 7) == 0) & (SOff < Stack8)) != 0)
    std::memcpy(StackPtr + SOff, &W, 8);
  else if (!store(Addr, 8, W))
    goto L_Fault;
  OM64_TH_NEXT();
}

L_Jump: {
  OM64_TH_ENTER();
  ++Cls[ThClsJump];
  ++NTaken;
  // Target reads Rb before the return-address write (jsr ra,(ra) is legal).
  const uint64_t Target = static_cast<uint64_t>(R[PP->B]) & ~3ull;
  R[PP->W] = static_cast<int64_t>(TextBase + (PP - PB) * 4 + 4);
  if (Target == Layout::HaltReturnAddress) {
    Res.ExitCode = R[V0];
    goto L_Halt;
  }
  const uint64_t TI = (Target - TextBase) / 4;
  if (Target < TextBase || TI >= N)
    return pcFault(Target);
  PP = PB + TI;
  goto *PP->H;
}

L_BrBsr: {
  OM64_TH_ENTER();
  ++Cls[ThClsBranch];
  R[PP->W] = static_cast<int64_t>(TextBase + (PP - PB) * 4 + 4);
  OM64_TH_TAKEN(PP->Disp);
}

OM64_TH_CONDBR(L_Beq, R, ==)
OM64_TH_CONDBR(L_Bne, R, !=)
OM64_TH_CONDBR(L_Blt, R, <)
OM64_TH_CONDBR(L_Ble, R, <=)
OM64_TH_CONDBR(L_Bgt, R, >)
OM64_TH_CONDBR(L_Bge, R, >=)
OM64_TH_CONDBR(L_Fbeq, F, ==)
OM64_TH_CONDBR(L_Fbne, F, !=)

OM64_TH_INTOP(Addq, static_cast<int64_t>(static_cast<uint64_t>(A) +
                                         static_cast<uint64_t>(B)))
OM64_TH_INTOP(Subq, static_cast<int64_t>(static_cast<uint64_t>(A) -
                                         static_cast<uint64_t>(B)))
OM64_TH_INTOP(Mulq, static_cast<int64_t>(static_cast<uint64_t>(A) *
                                         static_cast<uint64_t>(B)))
OM64_TH_INTOP(S4addq, static_cast<int64_t>((static_cast<uint64_t>(A) << 2) +
                                           static_cast<uint64_t>(B)))
OM64_TH_INTOP(S8addq, static_cast<int64_t>((static_cast<uint64_t>(A) << 3) +
                                           static_cast<uint64_t>(B)))
OM64_TH_INTOP(Cmpeq, A == B ? 1 : 0)
OM64_TH_INTOP(Cmplt, A < B ? 1 : 0)
OM64_TH_INTOP(Cmple, A <= B ? 1 : 0)
OM64_TH_INTOP(Cmpult,
              static_cast<uint64_t>(A) < static_cast<uint64_t>(B) ? 1 : 0)
OM64_TH_INTOP(And, A &B)
OM64_TH_INTOP(Bic, A & ~B)
OM64_TH_INTOP(Bis, A | B)
OM64_TH_INTOP(Ornot, A | ~B)
OM64_TH_INTOP(Xor, A ^ B)
OM64_TH_INTOP(Sll, static_cast<int64_t>(static_cast<uint64_t>(A)
                                        << (B & 63)))
OM64_TH_INTOP(Srl,
              static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63)))
OM64_TH_INTOP(Sra, A >> (B & 63))

OM64_TH_FPOP(Addt, A + B)
OM64_TH_FPOP(Subt, A - B)
OM64_TH_FPOP(Mult, A *B)
OM64_TH_FPOP(Divt, A / B)
OM64_TH_FPOP(Cmpteq, A == B ? 2.0 : 0.0)
OM64_TH_FPOP(Cmptlt, A < B ? 2.0 : 0.0)
OM64_TH_FPOP(Cmptle, A <= B ? 2.0 : 0.0)

L_Cvtqt: {
  OM64_TH_ENTER();
  ++Cls[ThClsFpOp];
  const double D = F[PP->B];
  uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  F[PP->W] = static_cast<double>(static_cast<int64_t>(Bits));
  OM64_TH_NEXT();
}
L_Cvttq: {
  OM64_TH_ENTER();
  ++Cls[ThClsFpOp];
  const double D = F[PP->B];
  int64_t V;
  if (std::isnan(D))
    V = 0;
  else if (D >= 9.2233720368547758e18)
    V = INT64_MAX;
  else if (D <= -9.2233720368547758e18)
    V = INT64_MIN;
  else
    V = static_cast<int64_t>(D);
  const uint64_t Bits = static_cast<uint64_t>(V);
  double Out;
  std::memcpy(&Out, &Bits, 8);
  F[PP->W] = Out;
  OM64_TH_NEXT();
}
L_Cpys: {
  OM64_TH_ENTER();
  ++Cls[ThClsFpOp];
  F[PP->W] = std::copysign(F[PP->B], F[PP->A]);
  OM64_TH_NEXT();
}
L_Itoft: {
  OM64_TH_ENTER();
  ++Cls[ThClsTransfer];
  const uint64_t Bits = static_cast<uint64_t>(R[PP->A]);
  double D;
  std::memcpy(&D, &Bits, 8);
  F[PP->W] = D;
  OM64_TH_NEXT();
}
L_Ftoit: {
  OM64_TH_ENTER();
  ++Cls[ThClsTransfer];
  const double D = F[PP->A];
  uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  R[PP->W] = static_cast<int64_t>(Bits);
  OM64_TH_NEXT();
}

L_OffEnd:
  // Sequential fall-through past the last instruction; same check order as
  // the switch loop (before the next budget test).
  return pcFault(TextBase + N * 4);

L_Budget:
  return budgetFault();

L_Fault:
  return stepFault(TextBase + (PP - PB) * 4, Code[PP - PB]);

L_Halt:
  Res.Instructions = MaxInsts + 1 - Fuel;
  // Derived counters. Loads/stores: every executed load/store instruction
  // is exactly one IntLoad/FpLoad (IntStore/FpStore) class retirement — a
  // memory op is never a nop, and faulted ones discard the result — so the
  // hot handlers skip those increments. IntOp: the integer-operate
  // handlers carry no histogram update at all; their count is what is left
  // of Instructions after every counted class (including int-op *nops*,
  // which the nop handler did count into Cls[IntOp] — the subtraction
  // yields all integer operates either way, and the slot is overwritten).
  {
    uint64_t Others = 0;
    for (unsigned C = 0; C < NumInstClasses; ++C)
      if (C != ThClsIntOp)
        Others += Cls[C];
    Cls[ThClsIntOp] = Res.Instructions - Others;
  }
  Res.Nops = NNops;
  Res.Loads = Cls[ThClsIntLoad] + Cls[ThClsFpLoad];
  Res.Stores = Cls[ThClsIntStore] + Cls[ThClsFpStore];
  Res.TakenBranches = NTaken;
  for (unsigned C = 0; C < NumInstClasses; ++C)
    Res.ClassCounts[C] = Cls[C];
  Res.Cycles = 0;
  Res.FinalData = std::move(DataSegment);
  return std::move(Res);

#undef OM64_TH_ENTER
#undef OM64_TH_NEXT
#undef OM64_TH_TAKEN
#undef OM64_TH_CONDBR
#undef OM64_TH_INTOP
#undef OM64_TH_FPOP
#endif // OM64_SIM_THREADED_DISPATCH
}

template <bool Prof> Result<SimResult> Machine::runTiming() {
  Cache ICache(Cfg.ICache);
  Cache DCache(Cfg.DCache);
  const Inst *C = Code.data();
  const InstMeta *M = Meta.data();
  const size_t N = Code.size();
  const uint64_t TextBase = Img.TextBase;
  const uint64_t MaxInsts = Cfg.MaxInstructions;
  size_t Idx = (Img.Entry - TextBase) / 4;

  // Cycle is the cycle at which the next instruction issues absent stalls;
  // SlotAvail means the previous instruction issued into slot 0 of Cycle
  // and offered its second issue slot to us.
  uint64_t Cycle = 0;
  bool SlotAvail = false;

  Result<SimResult> Fault = Result<SimResult>::failure("");
  bool Done = false;
  while (true) {
    if (Res.Instructions >= MaxInsts)
      return budgetFault();
    const Inst &I = C[Idx];
    const InstMeta &IM = M[Idx];
    uint64_t Pc = TextBase + Idx * 4;

    // ----- issue -----
    uint64_t EffAddr = 0;
    if (IM.IsLoad || IM.IsStore)
      EffAddr = static_cast<uint64_t>(readInt(I.Rb) +
                                      static_cast<int64_t>(I.Disp));
    unsigned IMiss = ICache.access(Pc);
    if (IMiss) {
      ++Res.ICacheMisses;
      if (SlotAvail) {
        SlotAvail = false;
        ++Cycle;
      }
      Cycle += IMiss;
    }
    uint64_t ReadyAt = Cycle;
    for (unsigned R = 0; R < IM.NumReads; ++R)
      ReadyAt = std::max(ReadyAt, RegReady[IM.Reads[R]]);

    uint64_t IssueCycle;
    bool IssuedAsPair = false;
    if (SlotAvail && ReadyAt <= Cycle) {
      // Dual-issue with the previous instruction, same cycle.
      IssueCycle = Cycle;
      IssuedAsPair = true;
      ++Res.DualIssuePairs;
      SlotAvail = false;
    } else {
      if (SlotAvail) {
        // The offered slot goes unused; the previous group ends.
        SlotAvail = false;
        ++Cycle;
      }
      Cycle = std::max(Cycle, ReadyAt);
      IssueCycle = Cycle;
    }

    // ----- execute -----
    uint64_t NextPc;
    bool Halt = false;
    if (!step(I, Pc, NextPc, Halt))
      return stepFault(Pc, I);
    retire(IM);
    if constexpr (Prof)
      profileRetire(Idx, I, Pc, NextPc);

    // ----- retire timing -----
    unsigned Lat = IM.Latency;
    if (IM.IsLoad) {
      unsigned DMiss = DCache.access(EffAddr);
      if (DMiss) {
        ++Res.DCacheMisses;
        Lat += DMiss;
      }
    } else if (IM.IsStore) {
      if (DCache.access(EffAddr))
        ++Res.DCacheMisses; // write buffer absorbs the latency
    }
    if (IM.Written != NoWrittenUnit)
      RegReady[IM.Written] = IssueCycle + Lat;

    bool Redirected = NextPc != Pc + 4;
    if (Redirected) {
      Cycle = IssueCycle + 1 + 2; // group ends plus taken-branch bubble
      SlotAvail = false;
    } else if (IssuedAsPair) {
      Cycle = IssueCycle + 1; // both slots of the pair consumed
    } else {
      // This instruction sits in slot 0 of IssueCycle; offer slot 1 to
      // the next instruction when the pair shares an aligned quadword
      // and has no hazards (the alignment rule OM-full's quadword loop
      // alignment exists to satisfy).
      SlotAvail = Idx + 1 < N && Pc % 8 == 0 && pairable(IM, M[Idx + 1]);
      Cycle = SlotAvail ? IssueCycle : IssueCycle + 1;
    }
    Res.Cycles = Cycle;

    if (Halt)
      break;
    ++Idx;
    if (Redirected) {
      if (!redirect(NextPc, Idx, Done, Fault)) {
        if (Done)
          break;
        return Fault;
      }
    } else if (Idx >= N) {
      return pcFault(NextPc);
    }
  }
  if constexpr (Prof)
    finishProfile();
  Res.FinalData = std::move(DataSegment);
  return std::move(Res);
}

Result<SimResult> Machine::run() {
  writeInt(PV, static_cast<int64_t>(Img.Entry));
  writeInt(RA, static_cast<int64_t>(Layout::HaltReturnAddress));
  writeInt(SP, static_cast<int64_t>(Layout::StackTop - 512));
  writeInt(GP, static_cast<int64_t>(Img.InitialGp)); // prologue resets it
  // Timing and profiled runs always use the switch-based loops: the
  // timing model needs per-instruction cache/issue state the threaded
  // handlers deliberately do not carry, and profiled runs are rare enough
  // that a third set of handler instantiations is not worth the icache.
  if (Cfg.Profile)
    return Cfg.Timing ? runTiming<true>() : runFunctional<true>();
  if (Cfg.Timing)
    return runTiming<false>();
  if (Cfg.Dispatch == DispatchMode::Threaded)
    return runFunctionalThreaded();
  return runFunctional<false>();
}

Result<SimResult> om64::sim::run(const Image &Img, const SimConfig &Cfg) {
  if (Img.Text.empty() || Img.Entry < Img.TextBase ||
      Img.Entry % 4 != 0 ||
      Img.Entry >= Img.TextBase + Img.Text.size() / 4 * 4)
    return Result<SimResult>::failure("image has no valid entry point");
  if (Cfg.Timing) {
    // Degenerate geometry would divide by zero (LineBytes == 0) or leave
    // the tag store empty (SizeBytes < LineBytes makes NumLines == 0 and
    // `line % NumLines` undefined); reject it before building the caches.
    auto checkCache = [](const char *Which, const CacheConfig &C) {
      if (C.LineBytes == 0 || C.SizeBytes < C.LineBytes)
        return Error::failure(formatString(
            "invalid %s-cache geometry: %u-byte lines, %u-byte size",
            Which, C.LineBytes, C.SizeBytes));
      return Error::success();
    };
    if (Error E = checkCache("I", Cfg.ICache))
      return Result<SimResult>::failure(E.message());
    if (Error E = checkCache("D", Cfg.DCache))
      return Result<SimResult>::failure(E.message());
  }
  auto Start = std::chrono::steady_clock::now();
  Machine M(Img, Cfg);
  if (Error E = M.predecode())
    return Result<SimResult>::failure(E.message());
  Result<SimResult> R = M.run();
  if (R)
    R->HostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
  return R;
}

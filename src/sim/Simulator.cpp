//===- sim/Simulator.cpp ---------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "isa/Disassembler.h"
#include "isa/Inst.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <vector>

using namespace om64;
using namespace om64::sim;
using namespace om64::isa;
using namespace om64::obj;

namespace {

/// Direct-mapped cache tag store. Geometry is validated by sim::run before
/// construction (NumLines must be nonzero).
class Cache {
public:
  explicit Cache(const CacheConfig &Cfg)
      : LineBytes(Cfg.LineBytes), NumLines(Cfg.SizeBytes / Cfg.LineBytes),
        Penalty(Cfg.MissPenalty), Tags(NumLines, ~0ull) {}

  /// Returns the miss penalty (0 on hit) and updates the tag store.
  unsigned access(uint64_t Addr) {
    uint64_t Line = Addr / LineBytes;
    uint64_t Index = Line % NumLines;
    if (Tags[Index] == Line)
      return 0;
    Tags[Index] = Line;
    return Penalty;
  }

private:
  uint64_t LineBytes;
  uint64_t NumLines;
  unsigned Penalty;
  std::vector<uint64_t> Tags;
};

/// Per-instruction properties the timing model and statistics need,
/// precomputed once at startup so neither interpreter loop recomputes
/// register units, latencies, or classes per executed instruction.
struct InstMeta {
  uint8_t Cls;      // InstClass
  uint8_t IsNop;    // counts toward SimResult::Nops
  uint8_t IsLoad;
  uint8_t IsStore;
  uint8_t NumReads; // entries of Reads[] that are valid
  uint8_t Reads[3]; // RegUnits read
  uint8_t Written;  // RegUnit written, 0xFF if none
  uint8_t Latency;
};

constexpr uint8_t NoWrittenUnit = 0xFF;

/// Full machine state and execution engine.
class Machine {
public:
  Machine(const Image &Img, const SimConfig &Cfg) : Img(Img), Cfg(Cfg) {
    DataSegment.assign(Img.Data.begin(), Img.Data.end());
    DataSegment.resize(Img.Data.size() + Img.BssSize, 0);
    StackSegment.assign(Layout::StackSize, 0);
  }

  /// Decodes the whole text segment into the dense instruction array and
  /// builds the per-instruction metadata; fails on the first undecodable
  /// word. Also sizes the profile-counter vector from the counters the
  /// image actually declares, bounding CALL_PAL count's reach up front.
  Error predecode();

  Result<SimResult> run();

private:
  int64_t readInt(uint8_t R) const { return R == Zero ? 0 : IntRegs[R]; }
  void writeInt(uint8_t R, int64_t V) {
    if (R != Zero)
      IntRegs[R] = V;
  }
  double readFp(uint8_t R) const { return R == FZero ? 0.0 : FpRegs[R]; }
  void writeFp(uint8_t R, double V) {
    if (R != FZero)
      FpRegs[R] = V;
  }

  /// Resolves an address to backing storage; null on fault. Overflow-safe:
  /// addresses near 2^64 whose Addr + Size wraps must not pass.
  uint8_t *memPtr(uint64_t Addr, unsigned Size);

  /// load/store/step return false on fault with the message in FaultMsg;
  /// keeping the hot path free of Error construction (an optional<string>
  /// built and destroyed per retired instruction) is worth ~10% of
  /// functional-simulation throughput.
  bool load(uint64_t Addr, unsigned Size, uint64_t &Out);
  bool store(uint64_t Addr, unsigned Size, uint64_t Value);

  /// Applies one instruction's architectural effects. Sets NextPc.
  bool step(const Inst &I, uint64_t Pc, uint64_t &NextPc, bool &Halt);

  /// The two interpreter loops. Both iterate over Code/Meta by dense
  /// index; only the timing loop touches caches, register-ready times,
  /// and dual-issue state. Flattened so that step/load/store/memPtr
  /// inline into each loop and get specialized for it. Each is a template
  /// over profile collection, so the Prof=false instantiations are
  /// bit-for-bit the old hot loops and runs without --profile-out pay
  /// nothing for the feature.
  template <bool Prof>
#if defined(__GNUC__)
  __attribute__((flatten))
#endif
  Result<SimResult> runFunctional();
  template <bool Prof>
#if defined(__GNUC__)
  __attribute__((flatten))
#endif
  Result<SimResult> runTiming();

  /// Builds the profiling side tables (ProcOfIdx, SiteOfIdx, and the
  /// per-site/per-procedure count arrays) from the image's procedure
  /// table. Only called when Cfg.Profile is set.
  void buildProfileTables();

  /// Procedure ordinal (index into Img.Procs) owning \p Pc, or ~0u.
  uint32_t procOfPc(uint64_t Pc) const {
    if (Pc < Img.TextBase)
      return ~0u;
    uint64_t Idx = (Pc - Img.TextBase) / 4;
    return Idx < ProcOfIdx.size() ? ProcOfIdx[Idx] : ~0u;
  }

  /// Per-retired-instruction profile hook (Prof instantiations only).
  /// \p Idx is the executed instruction's dense index, \p NextPc the
  /// resolved successor.
  void profileRetire(size_t Idx, const Inst &I, uint64_t Pc,
                     uint64_t NextPc) {
    uint32_t P = ProcOfIdx[Idx];
    if (P == ~0u)
      return;
    ++ProcInstCounts[P];
    uint32_t S = SiteOfIdx[Idx];
    if (S != ~0u) {
      ++SiteExec[S];
      SiteTaken[S] += NextPc != Pc + 4;
    }
    if (I.Op == Opcode::Bsr || I.Op == Opcode::Jsr) {
      uint32_t Callee = procOfPc(NextPc);
      if (Callee != ~0u)
        ++CallEdgeCounts[(static_cast<uint64_t>(P) << 32) | Callee];
    }
  }

  /// Converts the raw count arrays into SimResult::Profile.
  void finishProfile();

  /// Common accounting after a successfully stepped instruction.
  void retire(const InstMeta &M) {
    ++Res.Instructions;
    ++Res.ClassCounts[M.Cls];
    Res.Nops += M.IsNop;
  }

  /// Builds the failure for a step() fault (FaultMsg), with pc and
  /// disassembly.
  Result<SimResult> stepFault(uint64_t Pc, const Inst &I) {
    return Result<SimResult>::failure(
        FaultMsg + formatString(" (pc=%s, inst='%s')",
                                formatHex64(Pc).c_str(),
                                disassemble(I).c_str()));
  }

  Result<SimResult> pcFault(uint64_t Pc) {
    return Result<SimResult>::failure(
        formatString("PC out of text: %s", formatHex64(Pc).c_str()));
  }

  Result<SimResult> budgetFault() {
    return Result<SimResult>::failure("instruction budget exceeded "
                                      "(runaway program?)");
  }

  /// Redirect handling shared by both loops: translates a non-sequential
  /// NextPc into an instruction index, detecting the halt address and
  /// out-of-text targets. Returns false when execution ends or faults
  /// (Out is then the final result).
  bool redirect(uint64_t NextPc, size_t &Idx, bool &Done,
                Result<SimResult> &Out) {
    if (NextPc == Layout::HaltReturnAddress) {
      Res.ExitCode = readInt(V0);
      Done = true;
      return false;
    }
    if (NextPc < Img.TextBase || (NextPc - Img.TextBase) % 4 != 0 ||
        (NextPc - Img.TextBase) / 4 >= Code.size()) {
      Out = pcFault(NextPc);
      return false;
    }
    Idx = (NextPc - Img.TextBase) / 4;
    return true;
  }

  bool pairable(const InstMeta &A, const InstMeta &B) const;

  const Image &Img;
  const SimConfig &Cfg;

  int64_t IntRegs[32] = {};
  double FpRegs[32] = {};
  std::vector<uint8_t> DataSegment;
  std::vector<uint8_t> StackSegment;
  std::vector<Inst> Code;     // dense pre-validated text
  std::vector<InstMeta> Meta; // parallel to Code

  SimResult Res;
  std::string FaultMsg; // set when load/store/step return false
  uint64_t RegReady[NumRegUnits] = {}; // cycle each unit's value is ready

  // Profiling side tables (built only when Cfg.Profile). SiteProc and
  // SiteOrdinal identify each local-branch site; SiteOfIdx/ProcOfIdx map
  // dense instruction indices to sites/procedures.
  std::vector<uint32_t> ProcOfIdx;
  std::vector<uint32_t> SiteOfIdx;
  std::vector<uint32_t> SiteProc;
  std::vector<uint32_t> SiteOrdinal;
  std::vector<uint64_t> SiteExec;
  std::vector<uint64_t> SiteTaken;
  std::vector<uint64_t> ProcInstCounts;
  std::map<uint64_t, uint64_t> CallEdgeCounts; // (caller<<32|callee)
};

} // namespace

Error Machine::predecode() {
  size_t NumWords = Img.Text.size() / 4;
  Code.reserve(NumWords);
  Meta.reserve(NumWords);
  uint32_t DeclaredCounters = 0;
  for (size_t Off = 0; Off + 4 <= Img.Text.size(); Off += 4) {
    uint32_t Word = Img.fetch(Img.TextBase + Off);
    std::optional<Inst> D = decode(Word);
    if (!D)
      return Error::failure(
          formatString("undecodable instruction at %s",
                       formatHex64(Img.TextBase + Off).c_str()));
    const Inst &I = *D;
    InstMeta M;
    M.Cls = static_cast<uint8_t>(classOf(I.Op));
    M.IsNop = I.isNop();
    M.IsLoad = isLoad(I.Op);
    M.IsStore = isStore(I.Op);
    unsigned Reads[3];
    M.NumReads = static_cast<uint8_t>(regUnitsRead(I, Reads));
    for (unsigned R = 0; R < 3; ++R)
      M.Reads[R] = R < M.NumReads ? static_cast<uint8_t>(Reads[R]) : 0;
    unsigned W = regUnitWritten(I);
    M.Written = W == ~0u ? NoWrittenUnit : static_cast<uint8_t>(W);
    M.Latency = static_cast<uint8_t>(latencyOf(I.Op));

    if (I.Op == Opcode::CallPal &&
        static_cast<PalFunc>(I.Disp & 0xFF) == PalFunc::Count) {
      uint32_t Index = static_cast<uint32_t>(I.Disp) >> 8;
      DeclaredCounters = std::max(DeclaredCounters, Index + 1);
    }

    Code.push_back(I);
    Meta.push_back(M);
  }
  // Profile counters get their full declared extent now; the CALL_PAL
  // count handler only indexes, so a corrupt or hostile image can never
  // force an unbounded mid-run resize.
  Res.ProfileCounts.assign(DeclaredCounters, 0);
  if (Cfg.Profile)
    buildProfileTables();
  return Error::success();
}

void Machine::buildProfileTables() {
  // Procedure extents: ImageProc::Size excludes intra-procedure alignment
  // nops, so the reliable extent of procedure i is [Entry_i, Entry_{i+1})
  // in address order (text end for the last). Padding nops between
  // procedures attribute to the preceding procedure; they are never
  // branch sites and only executed as straight-line filler, so the small
  // heat misattribution is harmless.
  ProcOfIdx.assign(Code.size(), ~0u);
  std::vector<uint32_t> ByEntry(Img.Procs.size());
  for (uint32_t P = 0; P < Img.Procs.size(); ++P)
    ByEntry[P] = P;
  std::sort(ByEntry.begin(), ByEntry.end(), [&](uint32_t A, uint32_t B) {
    return Img.Procs[A].Entry < Img.Procs[B].Entry;
  });
  for (size_t Pos = 0; Pos < ByEntry.size(); ++Pos) {
    const ImageProc &IP = Img.Procs[ByEntry[Pos]];
    if (IP.Entry < Img.TextBase)
      continue;
    uint64_t Begin = (IP.Entry - Img.TextBase) / 4;
    uint64_t End = Pos + 1 < ByEntry.size()
                       ? (Img.Procs[ByEntry[Pos + 1]].Entry - Img.TextBase) / 4
                       : Code.size();
    End = std::min<uint64_t>(End, Code.size());
    for (uint64_t Idx = Begin; Idx < End; ++Idx)
      ProcOfIdx[Idx] = ByEntry[Pos];
  }

  // Local-branch sites in address order: every Branch-class instruction
  // except BSR (a call). This ordinal assignment matches the order of
  // LocalBranch instructions in OM's symbolic form for an identically
  // optioned link (see support/Profile.h).
  SiteOfIdx.assign(Code.size(), ~0u);
  std::vector<uint32_t> BranchesInProc(Img.Procs.size(), 0);
  for (size_t Idx = 0; Idx < Code.size(); ++Idx) {
    uint32_t P = ProcOfIdx[Idx];
    if (P == ~0u || classOf(Code[Idx].Op) != InstClass::Branch ||
        Code[Idx].Op == Opcode::Bsr)
      continue;
    SiteOfIdx[Idx] = static_cast<uint32_t>(SiteProc.size());
    SiteProc.push_back(P);
    SiteOrdinal.push_back(BranchesInProc[P]++);
  }
  SiteExec.assign(SiteProc.size(), 0);
  SiteTaken.assign(SiteProc.size(), 0);
  ProcInstCounts.assign(Img.Procs.size(), 0);
}

void Machine::finishProfile() {
  prof::Profile &P = Res.Profile;
  P.Procs.resize(Img.Procs.size());
  std::vector<uint32_t> BranchesInProc(Img.Procs.size(), 0);
  for (uint32_t S = 0; S < SiteProc.size(); ++S)
    BranchesInProc[SiteProc[S]] =
        std::max(BranchesInProc[SiteProc[S]], SiteOrdinal[S] + 1);
  for (uint32_t Idx = 0; Idx < Img.Procs.size(); ++Idx) {
    P.Procs[Idx].Name = Img.Procs[Idx].Name;
    P.Procs[Idx].InstsExecuted = ProcInstCounts[Idx];
    P.Procs[Idx].Branches.resize(BranchesInProc[Idx]);
  }
  for (uint32_t S = 0; S < SiteProc.size(); ++S) {
    prof::BranchCounts &B = P.Procs[SiteProc[S]].Branches[SiteOrdinal[S]];
    B.Executed = SiteExec[S];
    B.Taken = SiteTaken[S];
  }
  for (const auto &[Key, Count] : CallEdgeCounts) {
    prof::CallEdge E;
    E.Caller = static_cast<uint32_t>(Key >> 32);
    E.Callee = static_cast<uint32_t>(Key & 0xFFFFFFFFu);
    E.Count = Count;
    P.Edges.push_back(E);
  }
}

uint8_t *Machine::memPtr(uint64_t Addr, unsigned Size) {
  if (Addr % Size != 0)
    return nullptr;
  // Range checks are phrased on offsets so that Addr + Size cannot wrap:
  // e.g. LDQ r,-8(zero) produces Addr = 2^64 - 8, where the naive
  // "Addr + Size <= end" test wraps to 0 and passes.
  auto contains = [&](uint64_t Base, uint64_t SegSize) {
    if (Addr < Base)
      return false;
    uint64_t Off = Addr - Base;
    return Off <= SegSize && SegSize - Off >= Size;
  };
  if (contains(Img.DataBase, DataSegment.size()))
    return &DataSegment[Addr - Img.DataBase];
  uint64_t StackBase = Layout::StackTop - Layout::StackSize;
  if (contains(StackBase, Layout::StackSize))
    return &StackSegment[Addr - StackBase];
  // Reading text as data is legal (constants are not stored there by our
  // compiler, but be permissive for tools).
  if (contains(Img.TextBase, Img.Text.size()))
    return const_cast<uint8_t *>(&Img.Text[Addr - Img.TextBase]);
  return nullptr;
}

bool Machine::load(uint64_t Addr, unsigned Size, uint64_t &Out) {
  uint8_t *P = memPtr(Addr, Size);
  if (!P) {
    FaultMsg = formatString("bad %u-byte load at %s", Size,
                            formatHex64(Addr).c_str());
    return false;
  }
  Out = 0;
  std::memcpy(&Out, P, Size);
  return true;
}

bool Machine::store(uint64_t Addr, unsigned Size, uint64_t Value) {
  uint8_t *P = memPtr(Addr, Size);
  if (!P || (Addr >= Img.TextBase &&
             Addr < Img.TextBase + Img.Text.size())) {
    FaultMsg = formatString("bad %u-byte store at %s", Size,
                            formatHex64(Addr).c_str());
    return false;
  }
  std::memcpy(P, &Value, Size);
  return true;
}

bool Machine::step(const Inst &I, uint64_t Pc, uint64_t &NextPc,
                   bool &Halt) {
  NextPc = Pc + 4;

  auto intOperandB = [&]() -> int64_t {
    return I.IsLit ? static_cast<int64_t>(I.Lit) : readInt(I.Rb);
  };
  auto branchTarget = [&]() {
    return Pc + 4 + static_cast<int64_t>(I.Disp) * 4;
  };
  auto takeBranch = [&]() {
    NextPc = branchTarget();
    ++Res.TakenBranches;
  };

  switch (I.Op) {
  case Opcode::CallPal:
    switch (static_cast<PalFunc>(I.Disp & 0xFF)) {
    case PalFunc::Halt:
      Halt = true;
      Res.ExitCode = readInt(A0);
      return true;
    case PalFunc::PutChar:
      Res.Output.push_back(static_cast<char>(readInt(A0) & 0xFF));
      return true;
    case PalFunc::PutInt:
      Res.Output += formatString(
          "%lld", static_cast<long long>(readInt(A0)));
      return true;
    case PalFunc::PutReal:
      Res.Output += formatString("%.6g", readFp(FA0));
      return true;
    case PalFunc::CycleCount:
      writeInt(V0, static_cast<int64_t>(Cfg.Timing ? Res.Cycles
                                                   : Res.Instructions));
      return true;
    case PalFunc::Count: {
      uint32_t Index = static_cast<uint32_t>(I.Disp) >> 8;
      // Predecode sized ProfileCounts to the image's declared counter
      // count, so in-bounds is guaranteed for decoded text; the check
      // stays as defense in depth against future divergence.
      if (Index >= Res.ProfileCounts.size()) {
        FaultMsg = formatString(
            "profile counter %u out of range (image declares %u)", Index,
            static_cast<unsigned>(Res.ProfileCounts.size()));
        return false;
      }
      ++Res.ProfileCounts[Index];
      return true;
    }
    }
    FaultMsg = formatString("unknown PAL function %d", I.Disp);
    return false;

  case Opcode::Lda:
    writeInt(I.Ra, readInt(I.Rb) + I.Disp);
    return true;
  case Opcode::Ldah:
    writeInt(I.Ra, readInt(I.Rb) + (static_cast<int64_t>(I.Disp) << 16));
    return true;

  case Opcode::Ldl: {
    uint64_t V;
    if (!load(readInt(I.Rb) + I.Disp, 4, V))
      return false;
    writeInt(I.Ra, static_cast<int32_t>(V));
    ++Res.Loads;
    return true;
  }
  case Opcode::Ldq: {
    uint64_t V;
    if (!load(readInt(I.Rb) + I.Disp, 8, V))
      return false;
    writeInt(I.Ra, static_cast<int64_t>(V));
    ++Res.Loads;
    return true;
  }
  case Opcode::Ldt: {
    uint64_t V;
    if (!load(readInt(I.Rb) + I.Disp, 8, V))
      return false;
    double D;
    std::memcpy(&D, &V, 8);
    writeFp(I.Ra, D);
    ++Res.Loads;
    return true;
  }
  case Opcode::Stl:
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 4,
                 static_cast<uint64_t>(readInt(I.Ra)) & 0xFFFFFFFFull);
  case Opcode::Stq:
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 8,
                 static_cast<uint64_t>(readInt(I.Ra)));
  case Opcode::Stt: {
    double D = readFp(I.Ra);
    uint64_t V;
    std::memcpy(&V, &D, 8);
    ++Res.Stores;
    return store(readInt(I.Rb) + I.Disp, 8, V);
  }

  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret: {
    uint64_t Target = static_cast<uint64_t>(readInt(I.Rb)) & ~3ull;
    writeInt(I.Ra, static_cast<int64_t>(Pc + 4));
    NextPc = Target;
    ++Res.TakenBranches;
    return true;
  }

  case Opcode::Br:
  case Opcode::Bsr:
    writeInt(I.Ra, static_cast<int64_t>(Pc + 4));
    takeBranch();
    return true;
  case Opcode::Beq:
    if (readInt(I.Ra) == 0)
      takeBranch();
    return true;
  case Opcode::Bne:
    if (readInt(I.Ra) != 0)
      takeBranch();
    return true;
  case Opcode::Blt:
    if (readInt(I.Ra) < 0)
      takeBranch();
    return true;
  case Opcode::Ble:
    if (readInt(I.Ra) <= 0)
      takeBranch();
    return true;
  case Opcode::Bgt:
    if (readInt(I.Ra) > 0)
      takeBranch();
    return true;
  case Opcode::Bge:
    if (readInt(I.Ra) >= 0)
      takeBranch();
    return true;
  case Opcode::Fbeq:
    if (readFp(I.Ra) == 0.0)
      takeBranch();
    return true;
  case Opcode::Fbne:
    if (readFp(I.Ra) != 0.0)
      takeBranch();
    return true;

  case Opcode::Addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) +
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::Subq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) -
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::Mulq:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) *
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::S4addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       (static_cast<uint64_t>(readInt(I.Ra)) << 2) +
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::S8addq:
    writeInt(I.Rc, static_cast<int64_t>(
                       (static_cast<uint64_t>(readInt(I.Ra)) << 3) +
                       static_cast<uint64_t>(intOperandB())));
    return true;
  case Opcode::Cmpeq:
    writeInt(I.Rc, readInt(I.Ra) == intOperandB() ? 1 : 0);
    return true;
  case Opcode::Cmplt:
    writeInt(I.Rc, readInt(I.Ra) < intOperandB() ? 1 : 0);
    return true;
  case Opcode::Cmple:
    writeInt(I.Rc, readInt(I.Ra) <= intOperandB() ? 1 : 0);
    return true;
  case Opcode::Cmpult:
    writeInt(I.Rc, static_cast<uint64_t>(readInt(I.Ra)) <
                           static_cast<uint64_t>(intOperandB())
                       ? 1
                       : 0);
    return true;
  case Opcode::And:
    writeInt(I.Rc, readInt(I.Ra) & intOperandB());
    return true;
  case Opcode::Bic:
    writeInt(I.Rc, readInt(I.Ra) & ~intOperandB());
    return true;
  case Opcode::Bis:
    writeInt(I.Rc, readInt(I.Ra) | intOperandB());
    return true;
  case Opcode::Ornot:
    writeInt(I.Rc, readInt(I.Ra) | ~intOperandB());
    return true;
  case Opcode::Xor:
    writeInt(I.Rc, readInt(I.Ra) ^ intOperandB());
    return true;
  case Opcode::Sll:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra))
                       << (intOperandB() & 63)));
    return true;
  case Opcode::Srl:
    writeInt(I.Rc, static_cast<int64_t>(
                       static_cast<uint64_t>(readInt(I.Ra)) >>
                       (intOperandB() & 63)));
    return true;
  case Opcode::Sra:
    writeInt(I.Rc, readInt(I.Ra) >> (intOperandB() & 63));
    return true;

  case Opcode::Addt:
    writeFp(I.Rc, readFp(I.Ra) + readFp(I.Rb));
    return true;
  case Opcode::Subt:
    writeFp(I.Rc, readFp(I.Ra) - readFp(I.Rb));
    return true;
  case Opcode::Mult:
    writeFp(I.Rc, readFp(I.Ra) * readFp(I.Rb));
    return true;
  case Opcode::Divt:
    writeFp(I.Rc, readFp(I.Ra) / readFp(I.Rb));
    return true;
  case Opcode::Cmpteq:
    writeFp(I.Rc, readFp(I.Ra) == readFp(I.Rb) ? 2.0 : 0.0);
    return true;
  case Opcode::Cmptlt:
    writeFp(I.Rc, readFp(I.Ra) < readFp(I.Rb) ? 2.0 : 0.0);
    return true;
  case Opcode::Cmptle:
    writeFp(I.Rc, readFp(I.Ra) <= readFp(I.Rb) ? 2.0 : 0.0);
    return true;
  case Opcode::Cpys:
    writeFp(I.Rc, std::copysign(readFp(I.Rb), readFp(I.Ra)));
    return true;
  case Opcode::Cvtqt: {
    double D = readFp(I.Rb);
    uint64_t Bits;
    std::memcpy(&Bits, &D, 8);
    writeFp(I.Rc, static_cast<double>(static_cast<int64_t>(Bits)));
    return true;
  }
  case Opcode::Cvttq: {
    double D = readFp(I.Rb);
    int64_t V;
    if (std::isnan(D))
      V = 0;
    else if (D >= 9.2233720368547758e18)
      V = INT64_MAX;
    else if (D <= -9.2233720368547758e18)
      V = INT64_MIN;
    else
      V = static_cast<int64_t>(D);
    uint64_t Bits = static_cast<uint64_t>(V);
    double Out;
    std::memcpy(&Out, &Bits, 8);
    writeFp(I.Rc, Out);
    return true;
  }
  case Opcode::Itoft: {
    uint64_t Bits = static_cast<uint64_t>(readInt(I.Ra));
    double Out;
    std::memcpy(&Out, &Bits, 8);
    writeFp(I.Rc, Out);
    return true;
  }
  case Opcode::Ftoit: {
    double D = readFp(I.Ra);
    uint64_t Bits;
    std::memcpy(&Bits, &D, 8);
    writeInt(I.Rc, static_cast<int64_t>(Bits));
    return true;
  }
  }
  FaultMsg = "unhandled opcode in simulator";
  return false;
}

bool Machine::pairable(const InstMeta &A, const InstMeta &B) const {
  // Dual issue requires: A is not a control transfer, at most one memory
  // operation, at most one branch/jump/PAL, and no data dependence of B on
  // A (RAW or WAW).
  InstClass CA = static_cast<InstClass>(A.Cls);
  if (CA == InstClass::Branch || CA == InstClass::Jump ||
      CA == InstClass::Pal)
    return false;
  if ((A.IsLoad || A.IsStore) && (B.IsLoad || B.IsStore))
    return false;
  if (A.Written != NoWrittenUnit) {
    for (unsigned I = 0; I < B.NumReads; ++I)
      if (B.Reads[I] == A.Written)
        return false;
    if (B.Written == A.Written)
      return false;
  }
  return true;
}

template <bool Prof> Result<SimResult> Machine::runFunctional() {
  const Inst *C = Code.data();
  const InstMeta *M = Meta.data();
  const size_t N = Code.size();
  const uint64_t TextBase = Img.TextBase;
  const uint64_t MaxInsts = Cfg.MaxInstructions;
  size_t Idx = (Img.Entry - TextBase) / 4;

  Result<SimResult> Fault = Result<SimResult>::failure("");
  bool Done = false;
  while (true) {
    if (Res.Instructions >= MaxInsts)
      return budgetFault();
    const Inst &I = C[Idx];
    uint64_t Pc = TextBase + Idx * 4;
    uint64_t NextPc;
    bool Halt = false;
    if (!step(I, Pc, NextPc, Halt))
      return stepFault(Pc, I);
    retire(M[Idx]);
    if constexpr (Prof)
      profileRetire(Idx, I, Pc, NextPc);
    if (Halt)
      break;
    ++Idx;
    if (NextPc != Pc + 4) {
      if (!redirect(NextPc, Idx, Done, Fault)) {
        if (Done)
          break;
        return Fault;
      }
    } else if (Idx >= N) {
      return pcFault(NextPc);
    }
  }
  Res.Cycles = 0;
  if constexpr (Prof)
    finishProfile();
  Res.FinalData = std::move(DataSegment);
  return std::move(Res);
}

template <bool Prof> Result<SimResult> Machine::runTiming() {
  Cache ICache(Cfg.ICache);
  Cache DCache(Cfg.DCache);
  const Inst *C = Code.data();
  const InstMeta *M = Meta.data();
  const size_t N = Code.size();
  const uint64_t TextBase = Img.TextBase;
  const uint64_t MaxInsts = Cfg.MaxInstructions;
  size_t Idx = (Img.Entry - TextBase) / 4;

  // Cycle is the cycle at which the next instruction issues absent stalls;
  // SlotAvail means the previous instruction issued into slot 0 of Cycle
  // and offered its second issue slot to us.
  uint64_t Cycle = 0;
  bool SlotAvail = false;

  Result<SimResult> Fault = Result<SimResult>::failure("");
  bool Done = false;
  while (true) {
    if (Res.Instructions >= MaxInsts)
      return budgetFault();
    const Inst &I = C[Idx];
    const InstMeta &IM = M[Idx];
    uint64_t Pc = TextBase + Idx * 4;

    // ----- issue -----
    uint64_t EffAddr = 0;
    if (IM.IsLoad || IM.IsStore)
      EffAddr = static_cast<uint64_t>(readInt(I.Rb) +
                                      static_cast<int64_t>(I.Disp));
    unsigned IMiss = ICache.access(Pc);
    if (IMiss) {
      ++Res.ICacheMisses;
      if (SlotAvail) {
        SlotAvail = false;
        ++Cycle;
      }
      Cycle += IMiss;
    }
    uint64_t ReadyAt = Cycle;
    for (unsigned R = 0; R < IM.NumReads; ++R)
      ReadyAt = std::max(ReadyAt, RegReady[IM.Reads[R]]);

    uint64_t IssueCycle;
    bool IssuedAsPair = false;
    if (SlotAvail && ReadyAt <= Cycle) {
      // Dual-issue with the previous instruction, same cycle.
      IssueCycle = Cycle;
      IssuedAsPair = true;
      ++Res.DualIssuePairs;
      SlotAvail = false;
    } else {
      if (SlotAvail) {
        // The offered slot goes unused; the previous group ends.
        SlotAvail = false;
        ++Cycle;
      }
      Cycle = std::max(Cycle, ReadyAt);
      IssueCycle = Cycle;
    }

    // ----- execute -----
    uint64_t NextPc;
    bool Halt = false;
    if (!step(I, Pc, NextPc, Halt))
      return stepFault(Pc, I);
    retire(IM);
    if constexpr (Prof)
      profileRetire(Idx, I, Pc, NextPc);

    // ----- retire timing -----
    unsigned Lat = IM.Latency;
    if (IM.IsLoad) {
      unsigned DMiss = DCache.access(EffAddr);
      if (DMiss) {
        ++Res.DCacheMisses;
        Lat += DMiss;
      }
    } else if (IM.IsStore) {
      if (DCache.access(EffAddr))
        ++Res.DCacheMisses; // write buffer absorbs the latency
    }
    if (IM.Written != NoWrittenUnit)
      RegReady[IM.Written] = IssueCycle + Lat;

    bool Redirected = NextPc != Pc + 4;
    if (Redirected) {
      Cycle = IssueCycle + 1 + 2; // group ends plus taken-branch bubble
      SlotAvail = false;
    } else if (IssuedAsPair) {
      Cycle = IssueCycle + 1; // both slots of the pair consumed
    } else {
      // This instruction sits in slot 0 of IssueCycle; offer slot 1 to
      // the next instruction when the pair shares an aligned quadword
      // and has no hazards (the alignment rule OM-full's quadword loop
      // alignment exists to satisfy).
      SlotAvail = Idx + 1 < N && Pc % 8 == 0 && pairable(IM, M[Idx + 1]);
      Cycle = SlotAvail ? IssueCycle : IssueCycle + 1;
    }
    Res.Cycles = Cycle;

    if (Halt)
      break;
    ++Idx;
    if (Redirected) {
      if (!redirect(NextPc, Idx, Done, Fault)) {
        if (Done)
          break;
        return Fault;
      }
    } else if (Idx >= N) {
      return pcFault(NextPc);
    }
  }
  if constexpr (Prof)
    finishProfile();
  Res.FinalData = std::move(DataSegment);
  return std::move(Res);
}

Result<SimResult> Machine::run() {
  writeInt(PV, static_cast<int64_t>(Img.Entry));
  writeInt(RA, static_cast<int64_t>(Layout::HaltReturnAddress));
  writeInt(SP, static_cast<int64_t>(Layout::StackTop - 512));
  writeInt(GP, static_cast<int64_t>(Img.InitialGp)); // prologue resets it
  if (Cfg.Profile)
    return Cfg.Timing ? runTiming<true>() : runFunctional<true>();
  return Cfg.Timing ? runTiming<false>() : runFunctional<false>();
}

Result<SimResult> om64::sim::run(const Image &Img, const SimConfig &Cfg) {
  if (Img.Text.empty() || Img.Entry < Img.TextBase ||
      Img.Entry % 4 != 0 ||
      Img.Entry >= Img.TextBase + Img.Text.size() / 4 * 4)
    return Result<SimResult>::failure("image has no valid entry point");
  if (Cfg.Timing) {
    // Degenerate geometry would divide by zero (LineBytes == 0) or leave
    // the tag store empty (SizeBytes < LineBytes makes NumLines == 0 and
    // `line % NumLines` undefined); reject it before building the caches.
    auto checkCache = [](const char *Which, const CacheConfig &C) {
      if (C.LineBytes == 0 || C.SizeBytes < C.LineBytes)
        return Error::failure(formatString(
            "invalid %s-cache geometry: %u-byte lines, %u-byte size",
            Which, C.LineBytes, C.SizeBytes));
      return Error::success();
    };
    if (Error E = checkCache("I", Cfg.ICache))
      return Result<SimResult>::failure(E.message());
    if (Error E = checkCache("D", Cfg.DCache))
      return Result<SimResult>::failure(E.message());
  }
  auto Start = std::chrono::steady_clock::now();
  Machine M(Img, Cfg);
  if (Error E = M.predecode())
    return Result<SimResult>::failure(E.message());
  Result<SimResult> R = M.run();
  if (R)
    R->HostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
  return R;
}

//===- sim/Simulator.h - AAX functional and timing simulator --------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes linked AAX images. Two modes:
///
///   * functional: architectural semantics only (fast; used to verify that
///     OM's transformations preserve program behaviour),
///   * timing: a DECstation-3000/400-class dual-issue in-order model with
///     load-use latency and direct-mapped I/D caches. This is the measured
///     machine of section 5.2; it reproduces why dynamic improvements are
///     smaller than static ones ("cache misses ... mean that many cycles
///     are spent doing things other than user instructions, and the dual
///     issue ... means that some instructions come free").
///
/// The two modes run as two separate interpreter loops over a dense,
/// pre-validated instruction array (decoded once at startup), so the fast
/// functional path never pays for the timing model and neither path pays
/// for per-instruction decode or optional-engagement checks.
///
/// The simulator enters at Image::Entry with PV = entry (the calling
/// convention main's prologue needs), RA = Layout::HaltReturnAddress, and
/// SP at the top of the stack. Execution ends on a return to the halt
/// address (exit status = v0) or a CALL_PAL halt (exit status = a0).
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SIM_SIMULATOR_H
#define OM64_SIM_SIMULATOR_H

#include "isa/Inst.h"
#include "objfile/Image.h"
#include "support/Profile.h"
#include "support/Result.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace sim {

/// Direct-mapped cache geometry and miss cost.
struct CacheConfig {
  uint32_t SizeBytes = 8192;
  uint32_t LineBytes = 32;
  unsigned MissPenalty = 20;
};

/// Functional-core dispatch strategy.
///
///   * Threaded: the computed-goto core. Predecode translates every
///     instruction into a handler address plus a sink-remapped operand
///     record, so the hot loop is one indirect goto per instruction with
///     no zero-register branches and no per-instruction accounting stores.
///     On compilers without the `&&label` extension (see
///     OM64_SIM_THREADED_DISPATCH in Simulator.cpp) it silently runs the
///     switch core — results are identical either way.
///   * Switch: the legacy template-interpreter loop over step()'s opcode
///     switch.
///
/// Both cores stay selectable forever (aaxrun --dispatch=switch|threaded)
/// so they can be differenced against each other: om::runDifferential runs
/// every leg on both and demands identical results, and sim_test's parity
/// sweep covers every opcode class and fault path. Timing and profiled
/// runs always use the switch-based loops; Dispatch selects the plain
/// functional core only (the differential-harness hot path).
enum class DispatchMode : uint8_t { Threaded, Switch };

/// Simulation options.
struct SimConfig {
  bool Timing = true;
  CacheConfig ICache{8192, 32, 10};
  CacheConfig DCache{8192, 32, 20};
  /// Abort (with an error) after this many instructions.
  uint64_t MaxInstructions = 4000000000ull;
  /// Collect an execution profile (SimResult::Profile): per-procedure
  /// instruction heat, per-local-branch executed/taken counts, and the
  /// dynamic call-edge graph, all keyed against the image's procedure
  /// table. Works in both functional and timing mode; the profiled loops
  /// are separate template instantiations, so runs with Profile off pay
  /// nothing.
  bool Profile = false;
  /// Functional-core selection (see DispatchMode). Ignored by timing and
  /// profiled runs, which always use the switch-based loops.
  DispatchMode Dispatch = DispatchMode::Threaded;
};

/// Outcome of a run.
struct SimResult {
  int64_t ExitCode = 0;
  std::string Output;          // PAL putchar/putint/putreal stream
  uint64_t Instructions = 0;   // executed (includes nops)
  uint64_t Nops = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t TakenBranches = 0;
  uint64_t Cycles = 0;         // timing mode only
  uint64_t DualIssuePairs = 0; // timing mode only
  uint64_t ICacheMisses = 0;   // timing mode only
  uint64_t DCacheMisses = 0;   // timing mode only
  /// Executed-instruction histogram by InstClass (index with
  /// static_cast<unsigned>(isa::InstClass)).
  std::array<uint64_t, isa::NumInstClasses> ClassCounts{};
  /// Host wall-clock seconds the run took; simulated MIPS is
  /// Instructions / HostSeconds / 1e6 (see sim/SimStats.h).
  double HostSeconds = 0;
  /// ATOM-style profile counters (CALL_PAL count[i]); indexed by the
  /// instrumentation tool's counter ids. Empty when uninstrumented.
  std::vector<uint64_t> ProfileCounts;
  /// Execution profile for `omlink --profile-in` (SimConfig::Profile runs
  /// only; empty otherwise). See support/Profile.h for the keying scheme.
  prof::Profile Profile;
  /// Final contents of the data segment (data + bss) at halt. OmVerify's
  /// differential harness hashes this to prove that two OM levels leave
  /// the program's memory in the same architectural state.
  std::vector<uint8_t> FinalData;
};

/// Runs \p Img to completion. Failures (bad memory access, undecodable
/// instruction, bad cache geometry, instruction budget exceeded) return a
/// message. The whole text segment is decoded and validated up front, so
/// an image containing any undecodable word is rejected before the first
/// instruction executes; timing mode additionally rejects cache configs
/// whose geometry would be degenerate (zero or oversized lines).
Result<SimResult> run(const obj::Image &Img, const SimConfig &Cfg = {});

} // namespace sim
} // namespace om64

#endif // OM64_SIM_SIMULATOR_H

//===- megagen/MegaGen.cpp - Mega-scale synthetic workload generator ------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"

#include "isa/Inst.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>

using namespace om64;
using namespace om64::isa;
using namespace om64::obj;
using namespace om64::megagen;

namespace {

/// Maximum generation-time distance (bytes) at which a backward BSR to the
/// module's leaf is emitted. The hardware reach is 21 signed word bits
/// (+-4,194,300 bytes); half of that leaves room for the alignment nops OM
/// may insert between the call site and the leaf.
constexpr uint64_t BsrSafeDistance = 2u << 20;

/// Maximum straight-line run before a `br zero, +0` barrier. Every branch
/// ends a scheduling region, and OM's list scheduler is quadratic per
/// region, so unbounded straight runs would make -O full --sched quadratic
/// in module size.
constexpr unsigned MaxStraightRun = 48;

/// Builds one module. All randomness comes from the single program-wide
/// DetRandom passed in, consumed strictly sequentially, so module contents
/// depend only on the spec seed and on how much entropy earlier modules
/// drew — never on host iteration order.
class ModuleBuilder {
public:
  ModuleBuilder(const MegaSpec &Spec, unsigned ModuleIdx, unsigned Procs,
                unsigned DataSyms, DetRandom &Rng, MegaSummary &Sum)
      : Spec(Spec), M(ModuleIdx), P(Procs), D(DataSyms), Rng(Rng), Sum(Sum) {
    O.ModuleName = moduleName(M);
  }

  static std::string moduleName(unsigned M) { return "mg" + std::to_string(M); }
  static std::string procName(unsigned M, unsigned K) {
    return moduleName(M) + ".p" + std::to_string(K);
  }
  static std::string dataName(unsigned M, unsigned I) {
    return moduleName(M) + ".d" + std::to_string(I);
  }

  /// Emits data symbols, the two leaves, and the body procedures; \p
  /// BudgetFor returns the remaining-instruction budget for the next body
  /// procedure each time one starts.
  template <typename BudgetFn>
  ObjectFile build(bool IsEntryModule, BudgetFn BudgetFor) {
    makeDataSymbols();
    makeBranchLeaf();
    makeGpLeaf();
    for (unsigned K = 2; K < P; ++K) {
      bool IsMain = IsEntryModule && K == P - 1;
      makeBodyProc(K, IsMain, BudgetFor());
    }
    Sum.TotalProcedures += P;
    Sum.TotalDataBytes += O.Data.size() + O.BssSize;
    Sum.GatEntries += O.Gat.size();
    return std::move(O);
  }

private:
  const MegaSpec &Spec;
  const unsigned M, P, D;
  DetRandom &Rng;
  MegaSummary &Sum;
  ObjectFile O;
  uint32_t NextLitId = 0;
  unsigned StraightRun = 0;
  std::map<uint32_t, uint32_t> GatIdxOfSym; // symbol index -> GAT slot
  std::map<std::string, uint32_t> ExternIdx;

  //===--------------------------------------------------------------------===
  // Low-level emission.
  //===--------------------------------------------------------------------===

  uint64_t here() const { return O.Text.size(); }

  void emit(const Inst &I) {
    uint32_t W = encode(I);
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
    ++Sum.TotalInstructions;
    InstClass C = classOf(I.Op);
    if (C == InstClass::Branch || C == InstClass::Jump || C == InstClass::Pal)
      StraightRun = 0;
    else
      ++StraightRun;
  }

  /// Caps scheduling-region size before a straight-line block is emitted.
  void maybeBarrier(unsigned BlockLen) {
    if (StraightRun + BlockLen > MaxStraightRun)
      emit(makeBranch(Opcode::Br, Zero, 0));
  }

  uint32_t addDefinedSym(const std::string &Name, SectionKind Sec,
                         uint64_t Off, uint64_t Size, bool IsProc) {
    Symbol S;
    S.Name = Name;
    S.Section = Sec;
    S.Offset = Off;
    S.Size = Size;
    S.IsProcedure = IsProc;
    S.IsExported = S.IsDefined = true;
    O.Symbols.push_back(S);
    return static_cast<uint32_t>(O.Symbols.size() - 1);
  }

  uint32_t externSym(const std::string &Name, SectionKind Sec, bool IsProc) {
    auto It = ExternIdx.find(Name);
    if (It != ExternIdx.end())
      return It->second;
    Symbol S;
    S.Name = Name;
    S.Section = Sec;
    S.IsProcedure = IsProc;
    O.Symbols.push_back(S);
    uint32_t Idx = static_cast<uint32_t>(O.Symbols.size() - 1);
    ExternIdx.emplace(Name, Idx);
    return Idx;
  }

  uint32_t gatSlotFor(uint32_t SymIdx) {
    auto It = GatIdxOfSym.find(SymIdx);
    if (It != GatIdxOfSym.end())
      return It->second;
    O.Gat.push_back({SymIdx, 0});
    uint32_t Slot = static_cast<uint32_t>(O.Gat.size() - 1);
    GatIdxOfSym.emplace(SymIdx, Slot);
    return Slot;
  }

  /// Emits `ldq Reg, 0(gp)` carrying a Literal reloc for \p SymIdx's GAT
  /// slot and returns the fresh literal id.
  uint32_t emitAddressLoad(uint8_t Reg, uint32_t SymIdx) {
    Reloc R;
    R.Kind = RelocKind::Literal;
    R.Offset = here();
    R.GatIndex = gatSlotFor(SymIdx);
    R.LiteralId = NextLitId++;
    O.Relocs.push_back(R);
    emit(makeMem(Opcode::Ldq, Reg, 0, GP));
    return R.LiteralId;
  }

  void addUse(RelocKind K, uint64_t Off, uint32_t LitId) {
    Reloc R;
    R.Kind = K;
    R.Offset = Off;
    R.LiteralId = LitId;
    O.Relocs.push_back(R);
  }

  void addGpDisp(uint64_t Off, GpDispKind K) {
    Reloc R;
    R.Kind = RelocKind::GpDisp;
    R.Offset = Off;
    R.AnchorOffset = Off;
    R.PairOffset = 4;
    R.GpKind = static_cast<uint8_t>(K);
    O.Relocs.push_back(R);
  }

  /// Emits the two-instruction GP establishment pair (Figure 1 of the
  /// paper): LDAH gp,(base); LDA gp,(gp), plus the pairing reloc.
  void emitGpPair(GpDispKind K) {
    addGpDisp(here(), K);
    emit(makeMem(Opcode::Ldah, GP, 0, K == GpDispKind::Prologue ? PV : RA));
    emit(makeMem(Opcode::Lda, GP, 0, GP));
  }

  //===--------------------------------------------------------------------===
  // Data symbols.
  //===--------------------------------------------------------------------===

  void makeDataSymbols() {
    for (unsigned I = 0; I < D; ++I) {
      uint64_t Size = 8 * (1 + Rng.nextBelow(8)); // 8..64 bytes
      if (I % 2 == 0) {
        uint64_t Off = O.Data.size();
        for (uint64_t B = 0; B < Size; ++B)
          O.Data.push_back(static_cast<uint8_t>((M * 131 + I * 13 + B * 7)));
        addDefinedSym(dataName(M, I), SectionKind::Data, Off, Size, false);
      } else {
        uint64_t Off = O.BssSize;
        O.BssSize += Size;
        addDefinedSym(dataName(M, I), SectionKind::Bss, Off, Size, false);
      }
    }
  }

  /// A random own-module data symbol index (data symbols occupy the first D
  /// slots of the symbol table).
  uint32_t randomLocalData() {
    return static_cast<uint32_t>(Rng.nextBelow(D));
  }

  //===--------------------------------------------------------------------===
  // Straight-line body blocks. Each block writes every temporary it reads
  // before reading it, so OM's load nullification (which leaves a stale
  // value in the old destination register) can never change the program's
  // result; V0 is the only value that flows between blocks.
  //===--------------------------------------------------------------------===

  void blockWork() {
    maybeBarrier(6);
    static const Opcode Fold[] = {Opcode::Addq, Opcode::Subq, Opcode::Xor,
                                  Opcode::And,  Opcode::Bis,  Opcode::Ornot};
    emit(makeMem(Opcode::Lda, T1, static_cast<int32_t>(Rng.nextInRange(1, 255)),
                 Zero));
    emit(makeMem(Opcode::Lda, T2, static_cast<int32_t>(Rng.nextInRange(1, 255)),
                 Zero));
    emit(makeOp(Fold[Rng.nextBelow(6)], T1, T2, T3));
    emit(makeOpLit(Opcode::Sll, T3, static_cast<uint8_t>(Rng.nextBelow(8)),
                   T3));
    emit(makeOp(Fold[Rng.nextBelow(6)], T3, T1, T4));
    emit(makeOp(Opcode::Addq, V0, T4, V0));
  }

  /// Read-modify-write of a data symbol through a GAT address load with
  /// recorded uses: the pattern address-load nullification/conversion
  /// (section 5) targets.
  void blockDataAccess(uint32_t SymIdx) {
    maybeBarrier(5);
    uint32_t Lit = emitAddressLoad(T1, SymIdx);
    addUse(RelocKind::LituseBase, here(), Lit);
    emit(makeMem(Opcode::Ldq, T2, 0, T1));
    emit(makeOpLit(Opcode::Addq, T2, 1, T2));
    addUse(RelocKind::LituseBase, here(), Lit);
    emit(makeMem(Opcode::Stq, T2, 0, T1));
    emit(makeOp(Opcode::Addq, V0, T2, V0));
  }

  void blockDataLocal() { blockDataAccess(randomLocalData()); }

  void blockDataRemote(unsigned Modules) {
    if (Modules < 2)
      return blockDataLocal();
    unsigned Other = static_cast<unsigned>(Rng.nextBelow(Modules - 1));
    if (Other >= M)
      ++Other; // any module but this one
    // Even indices are .data in every module; referencing only those keeps
    // the declared section of the extern accurate.
    unsigned I = 2 * static_cast<unsigned>(Rng.nextBelow((D + 1) / 2));
    uint32_t Sym = externSym(dataName(Other, I), SectionKind::Data, false);
    blockDataAccess(Sym);
  }

  /// An address load with no recorded use: the literal escapes, so OM must
  /// keep the address computation (possibly as an LDA off GP) rather than
  /// deleting it. The unrecorded dereference reads memory whose *contents*
  /// are layout-independent, so the exit code stays comparable across OM
  /// levels even though the address itself differs.
  void blockEscape() {
    maybeBarrier(3);
    emitAddressLoad(T1, randomLocalData());
    emit(makeMem(Opcode::Ldq, T2, 0, T1));
    emit(makeOp(Opcode::Addq, V0, T2, V0));
  }

  /// A bounded counter loop: branch targets for the loop-alignment pass and
  /// a guaranteed scheduling barrier.
  void blockLoop() {
    maybeBarrier(3);
    unsigned Ops = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    emit(makeMem(Opcode::Lda, T4,
                 static_cast<int32_t>(Rng.nextInRange(2, 6)), Zero));
    uint64_t Top = here();
    for (unsigned I = 0; I < Ops; ++I)
      emit(makeOpLit(Opcode::Addq, V0,
                     static_cast<uint8_t>(Rng.nextInRange(1, 9)), V0));
    emit(makeOpLit(Opcode::Subq, T4, 1, T4));
    int64_t WordDisp =
        (static_cast<int64_t>(Top) - static_cast<int64_t>(here() + 4)) / 4;
    emit(makeBranch(Opcode::Bgt, T4, static_cast<int32_t>(WordDisp)));
  }

  //===--------------------------------------------------------------------===
  // Call blocks. V0 is spilled around every call (callees recompute it),
  // then the callee's return value is folded in.
  //===--------------------------------------------------------------------===

  /// BSR to the module's GP-less leaf at text offset 0. The leaf has no
  /// prologue, so reaching it with a stale PV is harmless — the property
  /// that makes compiler BSRs legal without OM's same-group proof.
  void blockBsrLeaf() {
    emit(makeMem(Opcode::Stq, V0, 8, SP));
    int64_t WordDisp = -static_cast<int64_t>(here() + 4) / 4;
    emit(makeBranch(Opcode::Bsr, RA, static_cast<int32_t>(WordDisp)));
    emit(makeMem(Opcode::Ldq, T0, 8, SP));
    emit(makeOp(Opcode::Addq, V0, T0, V0));
    ++Sum.LeafBsrCalls;
  }

  /// Full GAT call sequence: PV load, JSR, post-call GP reset pair.
  void blockJsrCall(uint32_t CalleeSym, bool Cross) {
    emit(makeMem(Opcode::Stq, V0, 8, SP));
    uint32_t Lit = emitAddressLoad(PV, CalleeSym);
    addUse(RelocKind::LituseJsr, here(), Lit);
    emit(makeJump(Opcode::Jsr, RA, PV));
    emitGpPair(GpDispKind::PostCall);
    emit(makeMem(Opcode::Ldq, T0, 8, SP));
    emit(makeOp(Opcode::Addq, V0, T0, V0));
    if (Cross)
      ++Sum.CrossModuleCalls;
    else
      ++Sum.IntraModuleCalls;
  }

  /// A call to the module's own leaves: BSR when the leaf is within safe
  /// branch reach, otherwise through the GAT like any other call.
  void blockLeafCall() {
    if (here() + 4 < BsrSafeDistance)
      blockBsrLeaf();
    else
      blockJsrCall(GpLeafSym, /*Cross=*/false);
  }

  /// Main-only: a counted loop around a GAT call, spilling the counter to
  /// the frame because callees clobber the temporaries.
  void blockLoopedCall(uint32_t CalleeSym, bool Cross) {
    emit(makeMem(Opcode::Lda, T3,
                 static_cast<int32_t>(Rng.nextInRange(4, 8)), Zero));
    uint64_t Top = here();
    emit(makeMem(Opcode::Stq, T3, 16, SP));
    blockJsrCall(CalleeSym, Cross);
    emit(makeMem(Opcode::Ldq, T3, 16, SP));
    emit(makeOpLit(Opcode::Subq, T3, 1, T3));
    int64_t WordDisp =
        (static_cast<int64_t>(Top) - static_cast<int64_t>(here() + 4)) / 4;
    emit(makeBranch(Opcode::Bgt, T3, static_cast<int32_t>(WordDisp)));
  }

  //===--------------------------------------------------------------------===
  // Procedures.
  //===--------------------------------------------------------------------===

  uint32_t GpLeafSym = 0; // symbol index of this module's GP-using leaf

  void beginProc() { StraightRun = 0; }

  void finishProc(const std::string &Name, uint64_t Base, bool UsesGp) {
    uint32_t Sym = addDefinedSym(Name, SectionKind::Text, Base, here() - Base,
                                 /*IsProc=*/true);
    ProcDesc PD;
    PD.SymbolIndex = Sym;
    PD.TextOffset = Base;
    PD.TextSize = here() - Base;
    PD.UsesGp = UsesGp;
    O.Procs.push_back(PD);
    if (Name == moduleName(M) + ".gleaf")
      GpLeafSym = Sym;
  }

  /// Procedure 0, "mgM.bleaf": GP-less arithmetic leaf at text offset 0,
  /// the BSR target. No prologue, no frame, clobbers only V0/T1.
  void makeBranchLeaf() {
    beginProc();
    uint64_t Base = here();
    emit(makeMem(Opcode::Lda, V0,
                 static_cast<int32_t>(Rng.nextInRange(1, 99)), Zero));
    emit(makeMem(Opcode::Lda, T1,
                 static_cast<int32_t>(Rng.nextInRange(1, 99)), Zero));
    emit(makeOp(Opcode::Addq, V0, T1, V0));
    emit(makeJump(Opcode::Ret, Zero, RA));
    finishProc(moduleName(M) + ".bleaf", Base, /*UsesGp=*/false);
  }

  /// Procedure 1, "mgM.gleaf": GP-using leaf. Establishes GP, touches its
  /// own module's data through the GAT, calls nothing — the intra-module
  /// callee whose post-call GP resets OM-full must prove redundant.
  void makeGpLeaf() {
    beginProc();
    uint64_t Base = here();
    emitGpPair(GpDispKind::Prologue);
    emit(makeMem(Opcode::Lda, V0,
                 static_cast<int32_t>(Rng.nextInRange(1, 99)), Zero));
    blockDataLocal();
    emit(makeJump(Opcode::Ret, Zero, RA));
    finishProc(moduleName(M) + ".gleaf", Base, /*UsesGp=*/true);
  }

  struct CallPlan {
    uint32_t Sym = 0;
    bool Cross = false;
    bool Looped = false; // main-only hot loop
    bool Leaf = false;   // own bleaf/gleaf
  };

  /// Cross-module call plan for one body procedure, by shape. All targets
  /// are body procedures of *higher* modules, so the static call graph is
  /// acyclic by construction.
  void planBodyCalls(unsigned K, std::vector<CallPlan> &Plan,
                     unsigned Modules) {
    bool HasNext = M + 1 < Modules;
    auto Target = [&](unsigned Mod, unsigned Proc) {
      CallPlan C;
      C.Sym = externSym(procName(Mod, Proc), SectionKind::Text, true);
      C.Cross = true;
      return C;
    };
    switch (Spec.Shape) {
    case CallShape::DeepChains:
    case CallShape::HotLoops:
      // One chain link per procedure; under HotLoops only the chains rooted
      // at the hot procedures ever execute — the rest is the cold library.
      if (HasNext)
        Plan.push_back(Target(M + 1, K));
      break;
    case CallShape::WideFanout:
      break; // bodies call only their own leaves; main does the fan-out
    case CallShape::Mixed:
      if (HasNext && !Rng.chance(1, 4)) {
        unsigned Proc = Rng.chance(1, 2)
                            ? K
                            : 2 + static_cast<unsigned>(Rng.nextBelow(P - 2));
        Plan.push_back(Target(M + 1, Proc));
      }
      break;
    }
  }

  /// Call plan for "mg0.main", by shape.
  void planMainCalls(std::vector<CallPlan> &Plan, unsigned Modules) {
    auto Target = [&](unsigned Mod, unsigned Proc, bool Looped) {
      CallPlan C;
      C.Sym = externSym(procName(Mod, Proc), SectionKind::Text, true);
      C.Cross = true;
      C.Looped = Looped;
      return C;
    };
    if (Modules < 2)
      return;
    switch (Spec.Shape) {
    case CallShape::DeepChains:
      // Start every chain.
      for (unsigned K = 2; K < P; ++K)
        Plan.push_back(Target(1, K, false));
      break;
    case CallShape::WideFanout:
      for (unsigned Mod = 1; Mod < Modules; ++Mod) {
        unsigned N = 1 + static_cast<unsigned>(Rng.nextBelow(
                             std::min<unsigned>(3, P - 2)));
        for (unsigned I = 0; I < N; ++I)
          Plan.push_back(Target(
              Mod, 2 + static_cast<unsigned>(Rng.nextBelow(P - 2)), false));
      }
      break;
    case CallShape::HotLoops:
      for (unsigned K = 2; K < 2 + std::min<unsigned>(3, P - 2); ++K)
        Plan.push_back(Target(1, K, true));
      break;
    case CallShape::Mixed:
      for (unsigned Mod = 1; Mod < Modules; ++Mod)
        if (Rng.chance(1, 2))
          Plan.push_back(Target(
              Mod, 2 + static_cast<unsigned>(Rng.nextBelow(P - 2)), false));
      break;
    }
  }

  /// Procedures 2..P-1: framed bodies mixing filler blocks with the
  /// planned calls at random positions.
  void makeBodyProc(unsigned K, bool IsMain, uint64_t Budget) {
    beginProc();
    uint64_t Base = here();
    unsigned Modules = std::max(1u, Spec.Modules);

    std::vector<CallPlan> Calls;
    // Leaf coverage from every body: BSR to bleaf and a GAT call to gleaf.
    for (unsigned I = 0, N = 1 + Rng.chance(1, 2); I < N; ++I) {
      CallPlan C;
      C.Leaf = true;
      Calls.push_back(C);
    }
    {
      CallPlan C;
      C.Sym = GpLeafSym;
      Calls.push_back(C); // intra-module GAT call
    }
    if (IsMain)
      planMainCalls(Calls, Modules);
    else
      planBodyCalls(K, Calls, Modules);

    int32_t Frame = IsMain ? 32 : 16;
    emitGpPair(GpDispKind::Prologue);
    emit(makeMem(Opcode::Lda, SP, -Frame, SP));
    emit(makeMem(Opcode::Stq, RA, 0, SP));
    emit(makeMem(Opcode::Lda, V0,
                 static_cast<int32_t>(Rng.nextInRange(1, 99)), Zero));

    size_t NextCall = 0;
    while (here() - Base < Budget * 4 || NextCall < Calls.size()) {
      if (NextCall < Calls.size() &&
          (here() - Base >= Budget * 4 || Rng.chance(1, 5))) {
        const CallPlan &C = Calls[NextCall++];
        if (C.Leaf)
          blockLeafCall();
        else if (C.Looped)
          blockLoopedCall(C.Sym, C.Cross);
        else
          blockJsrCall(C.Sym, C.Cross);
        continue;
      }
      uint64_t Pick = Rng.nextBelow(100);
      if (Pick < 45)
        blockWork();
      else if (Pick < 65)
        blockDataLocal();
      else if (Pick < 72)
        blockDataRemote(Modules);
      else if (Pick < 80)
        blockEscape();
      else
        blockLoop();
    }

    emit(makeMem(Opcode::Ldq, RA, 0, SP));
    emit(makeMem(Opcode::Lda, SP, Frame, SP));
    emit(makeJump(Opcode::Ret, Zero, RA));
    finishProc(IsMain ? moduleName(M) + ".main" : procName(M, K), Base,
               /*UsesGp=*/true);
  }
};

} // namespace

const char *megagen::shapeName(CallShape S) {
  switch (S) {
  case CallShape::DeepChains:
    return "deep-chains";
  case CallShape::WideFanout:
    return "wide-fanout";
  case CallShape::HotLoops:
    return "hot-loops";
  case CallShape::Mixed:
    return "mixed";
  }
  return "mixed";
}

std::optional<CallShape> megagen::parseShape(const std::string &Name) {
  for (CallShape S : {CallShape::DeepChains, CallShape::WideFanout,
                      CallShape::HotLoops, CallShape::Mixed})
    if (Name == shapeName(S))
      return S;
  return std::nullopt;
}

MegaProgram megagen::generate(const MegaSpec &Spec) {
  unsigned Modules = std::max(1u, Spec.Modules);
  unsigned P = std::max(3u, Spec.ProcsPerModule);
  unsigned D = std::max(2u, Spec.DataSymsPerModule);

  MegaProgram Prog;
  DetRandom Rng(Spec.Seed * 0x9E3779B97F4A7C15ull + 1);

  uint64_t TotalBodies = static_cast<uint64_t>(Modules) * (P - 2);
  uint64_t BodiesLeft = TotalBodies;
  Prog.Objects.reserve(Modules);
  for (unsigned M = 0; M < Modules; ++M) {
    ModuleBuilder B(Spec, M, P, D, Rng, Prog.Summary);
    Prog.Objects.push_back(B.build(
        /*IsEntryModule=*/M == 0, [&]() {
          uint64_t Emitted = Prog.Summary.TotalInstructions;
          uint64_t Left = Spec.TargetInstructions > Emitted
                              ? Spec.TargetInstructions - Emitted
                              : 0;
          uint64_t Budget =
              std::max<uint64_t>(32, Left / std::max<uint64_t>(1, BodiesLeft));
          --BodiesLeft;
          return Budget;
        }));
  }
  return Prog;
}

bool megagen::perturbModule(ObjectFile &Obj, uint64_t Seed) {
  // Offsets the edit must avoid: every relocated instruction plus the LDA
  // half of each GP-disp pair (only the LDAH carries the Reloc record).
  std::set<uint64_t> Pinned;
  for (const Reloc &R : Obj.Relocs) {
    Pinned.insert(R.Offset);
    if (R.Kind == RelocKind::GpDisp)
      Pinned.insert(R.Offset + R.PairOffset);
  }

  size_t NumWords = Obj.Text.size() / 4;
  if (NumWords) {
    // Seed-rotated scan: different seeds edit different sites, and the
    // scan is over words so the choice is independent of procedure
    // metadata.
    size_t Start = static_cast<size_t>(Seed % NumWords);
    for (size_t Step = 0; Step < NumWords; ++Step) {
      size_t Word = (Start + Step) % NumWords;
      uint64_t Off = Word * 4;
      if (Pinned.count(Off))
        continue;
      uint32_t Raw = static_cast<uint32_t>(Obj.Text[Off]) |
                     (static_cast<uint32_t>(Obj.Text[Off + 1]) << 8) |
                     (static_cast<uint32_t>(Obj.Text[Off + 2]) << 16) |
                     (static_cast<uint32_t>(Obj.Text[Off + 3]) << 24);
      std::optional<Inst> I = decode(Raw);
      if (!I || classOf(I->Op) != InstClass::IntOp || !I->IsLit)
        continue;
      uint8_t NewLit =
          static_cast<uint8_t>(I->Lit + 1 + (Seed % 7)); // != I->Lit
      I->Lit = NewLit;
      uint32_t NewRaw = encode(*I);
      if (NewRaw == Raw)
        continue;
      Obj.Text[Off] = static_cast<uint8_t>(NewRaw);
      Obj.Text[Off + 1] = static_cast<uint8_t>(NewRaw >> 8);
      Obj.Text[Off + 2] = static_cast<uint8_t>(NewRaw >> 16);
      Obj.Text[Off + 3] = static_cast<uint8_t>(NewRaw >> 24);
      return true;
    }
  }

  if (!Obj.Data.empty()) {
    Obj.Data[static_cast<size_t>(Seed % Obj.Data.size())] ^= 1;
    return true;
  }
  return false;
}

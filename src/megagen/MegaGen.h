//===- megagen/MegaGen.h - Mega-scale synthetic workload generator --------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized generator of million-instruction, thousand-procedure,
/// many-module programs for exercising OM at the scale the paper targets
/// ("the object code of the entire program"). The 19 SPEC-shaped workloads
/// in src/workloads link in milliseconds, which is far too small to observe
/// the parallel pipeline's behaviour; these inputs are built directly as
/// relocatable objects (no compile step) so generating a million
/// instructions takes tens of milliseconds.
///
/// Properties the generator guarantees:
///
///   * Deterministic: the same MegaSpec produces byte-identical modules on
///     every host (DetRandom; no iteration over unordered containers).
///   * Runnable: the call graph is acyclic (all cross-module calls point to
///     higher module indices, intra-module calls target leaf procedures),
///     loops are bounded, every procedure keeps the RA/SP frame discipline,
///     and exactly one procedure is named "<module>.main". Exit codes are
///     compared differentially (OM-full vs OM-none), so generated code
///     never lets a data-layout-dependent value (an address) flow into the
///     result.
///   * Representative: bodies mix GAT address loads with recorded uses,
///     escaping literals, GP prologues and post-call reset pairs, JSRs
///     through the GAT, compiler BSRs to prologue-less leaves, and bounded
///     local loops — every pattern the section-3 transforms act on.
///   * Scheduler-safe: straight-line runs are capped with branch barriers
///     so OM's quadratic-per-region list scheduler never sees a
///     megabyte-scale region.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_MEGAGEN_MEGAGEN_H
#define OM64_MEGAGEN_MEGAGEN_H

#include "objfile/ObjectFile.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace om64 {
namespace megagen {

/// Call-graph shape of a generated program.
enum class CallShape : uint8_t {
  /// Module m's body procedures each make exactly one cross-module call to
  /// the same-index procedure of module m+1: call chains as deep as the
  /// module count.
  DeepChains,
  /// main fans out directly to body procedures of every module; body
  /// procedures call only their module's leaves.
  WideFanout,
  /// main loops over calls into a few hot procedures; everything else is a
  /// cold library that is linked but never executed.
  HotLoops,
  /// Per-procedure random mix of the above behaviours.
  Mixed,
};

/// Returns "deep-chains", "wide-fanout", "hot-loops" or "mixed".
const char *shapeName(CallShape S);

/// Parses a shapeName() string; nullopt on unknown names.
std::optional<CallShape> parseShape(const std::string &Name);

/// All generation parameters. The defaults describe the mega benchmark
/// input: ~1M instructions across 1024 procedures in 64 modules.
struct MegaSpec {
  uint64_t Seed = 1;
  CallShape Shape = CallShape::Mixed;
  /// Number of object modules (clamped to >= 1).
  unsigned Modules = 64;
  /// Procedures per module (clamped to >= 3: two leaves plus bodies).
  unsigned ProcsPerModule = 16;
  /// Total instruction target; generation stops adding body blocks once
  /// met, so the real total overshoots by at most a few blocks per
  /// procedure.
  uint64_t TargetInstructions = 1050000;
  /// Exported 8-byte-aligned data symbols per module (clamped to >= 2).
  unsigned DataSymsPerModule = 8;
};

/// Exact static counts of one generated program, for tests that assert OM
/// stats against ground truth (e.g. every intra-module call's GP reset must
/// be nullified at OM-full).
struct MegaSummary {
  uint64_t TotalInstructions = 0;
  uint64_t TotalProcedures = 0;
  uint64_t TotalDataBytes = 0; // data + bss, all modules
  /// JSR-via-GAT call sites whose callee lives in another module. Each
  /// emits a post-call GP-reset pair.
  uint64_t CrossModuleCalls = 0;
  /// JSR-via-GAT call sites targeting the caller's own module's GP-using
  /// leaf (which calls nothing). Each emits a post-call GP-reset pair that
  /// OM-full must prove redundant — even when the module's GAT group index
  /// exceeds 64.
  uint64_t IntraModuleCalls = 0;
  /// Compiler BSR call sites targeting the GP-less leaf; no reset pairs.
  uint64_t LeafBsrCalls = 0;
  uint64_t GatEntries = 0; // sum of per-module GAT sizes
};

/// A generated program.
struct MegaProgram {
  std::vector<obj::ObjectFile> Objects;
  MegaSummary Summary;
};

/// Generates the program described by \p Spec. Deterministic: equal specs
/// yield byte-identical objects (ObjectFile::serialize) on every platform.
MegaProgram generate(const MegaSpec &Spec);

/// Deterministically edits one instruction of \p Obj in place: picks a
/// procedure and an operate-format instruction with an immediate literal
/// whose text offset carries no relocation (and is not the LDA half of a
/// GP-disp pair), and changes the literal. The result still decodes and
/// links — it models a compiler re-emitting one module after a source
/// edit — but its execution semantics may differ from the original, so
/// it is for relink workloads whose oracle is warm-vs-cold byte identity,
/// not differential execution. Falls back to flipping a data byte when no
/// instruction is eligible. Returns false only when the module has
/// neither an eligible instruction nor data. Different seeds pick
/// different sites; equal (module, seed) pairs make equal edits.
bool perturbModule(obj::ObjectFile &Obj, uint64_t Seed);

} // namespace megagen
} // namespace om64

#endif // OM64_MEGAGEN_MEGAGEN_H

//===- objfile/Image.h - Linked executable image ---------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fully linked executable image produced by the traditional linker and
/// by OM, and executed by the simulator. Layout follows the Alpha/OSF
/// convention of a high text base and a distinct data region, so that all
/// global addresses genuinely require 64-bit address arithmetic (the problem
/// statement of section 1).
///
//===----------------------------------------------------------------------===//

#ifndef OM64_OBJFILE_IMAGE_H
#define OM64_OBJFILE_IMAGE_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace obj {

/// Address-space layout constants.
struct Layout {
  static constexpr uint64_t TextBase = 0x0000000120000000ull;
  static constexpr uint64_t DataBase = 0x0000000140000000ull;
  static constexpr uint64_t StackTop = 0x0000000160000000ull;
  static constexpr uint64_t StackSize = 1ull << 20;
  /// A return to this address terminates execution (the simulator places it
  /// in RA before transferring to the entry procedure).
  static constexpr uint64_t HaltReturnAddress = 0x00000001FFFFFFF0ull;
};

/// A symbol surviving into the executable (for disassembly and statistics).
struct ImageSymbol {
  std::string Name;
  uint64_t Addr = 0;
  uint64_t Size = 0;
  bool IsProcedure = false;
};

/// Per-procedure runtime metadata in the executable: entry address and the
/// GP value the procedure establishes (procedures may be grouped under
/// distinct GP values when the merged GAT exceeds the 16-bit reach).
struct ImageProc {
  std::string Name;
  uint64_t Entry = 0;
  uint64_t Size = 0;
  uint64_t GpValue = 0;
  uint32_t GpGroup = 0;
};

/// A linked executable.
struct Image {
  uint64_t TextBase = Layout::TextBase;
  uint64_t DataBase = Layout::DataBase;
  std::vector<uint8_t> Text;
  std::vector<uint8_t> Data; // initialized data; bss follows, zero-filled
  uint64_t BssSize = 0;
  uint64_t Entry = 0;        // address of the entry procedure (main)
  uint64_t InitialGp = 0;    // GP value of the entry procedure

  /// GAT placement, for statistics (section 5.1's GAT reduction numbers).
  uint64_t GatBase = 0;
  uint64_t GatSize = 0;

  std::vector<ImageSymbol> Symbols;
  std::vector<ImageProc> Procs;

  /// Returns the instruction word at \p Addr (must be in text).
  uint32_t fetch(uint64_t Addr) const;

  /// Returns text as a vector of instruction words.
  std::vector<uint32_t> textWords() const;

  /// Returns the name of the symbol starting exactly at \p Addr, or "".
  std::string symbolAt(uint64_t Addr) const;

  /// Total bytes of the data segment including bss.
  uint64_t dataSegmentSize() const { return Data.size() + BssSize; }

  /// Serializes to the on-disk representation (magic "AAXE").
  std::vector<uint8_t> serialize() const;

  /// Structural verification: every text word decodes, every direct
  /// control transfer lands inside text, the entry point and procedure
  /// table are consistent, GP values sit inside the data segment, and
  /// every GAT slot holds the address of some text or data location.
  /// Returns the first problem found.
  Error verify() const;

  /// Parses the on-disk representation.
  static Result<Image> deserialize(const std::vector<uint8_t> &Bytes);
};

} // namespace obj
} // namespace om64

#endif // OM64_OBJFILE_IMAGE_H

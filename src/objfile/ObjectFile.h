//===- objfile/ObjectFile.h - AAX relocatable object format ---------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relocatable object format produced by the MLang compiler and consumed
/// by both the traditional linker and OM. It deliberately models the loader
/// hints the paper says make link-time analysis tractable (section 3):
///
///   * GAT references are marked for relocation (RelocKind::Literal),
///   * every instruction that *uses* an address loaded from the GAT carries
///     a link back to the loading instruction (RelocKind::LituseBase /
///     LituseJsr, tied together by LiteralId),
///   * the LDAH/LDA pairs that establish GP are marked (RelocKind::GpDisp),
///   * procedure boundaries and each procedure's GP association are recorded
///     in procedure descriptors.
///
/// Each module carries its own global address table as a literal pool
/// (vector of GatEntry); the linker merges the pools, removing duplicates.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_OBJFILE_OBJECTFILE_H
#define OM64_OBJFILE_OBJECTFILE_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace obj {

/// Sections of an object module. The compiler emits all data into Data/Bss;
/// segregating small data near the GAT is a *link-time* policy (section 3:
/// OM sorts common symbols by size and places them near the GAT).
enum class SectionKind : uint8_t { Text, Lita, Data, Bss };

/// Returns ".text", ".lita", ".data" or ".bss".
const char *sectionName(SectionKind K);

/// A defined or referenced symbol. Names are flat, of the form
/// "module.entity"; local (unexported) symbols do not participate in
/// cross-module resolution.
struct Symbol {
  std::string Name;
  SectionKind Section = SectionKind::Data;
  uint64_t Offset = 0;  // within this module's contribution to Section
  uint64_t Size = 0;    // bytes of data, or code bytes for procedures
  bool IsProcedure = false;
  bool IsExported = false; // visible to other modules (and callable late)
  bool IsDefined = false;  // false: external reference to another module
};

/// One slot of a module's global address table: the 64-bit address of
/// Symbol + Addend, loaded by address loads at run time.
struct GatEntry {
  uint32_t SymbolIndex = 0;
  int64_t Addend = 0;

  bool operator==(const GatEntry &O) const = default;
};

/// Relocation kinds. See file comment for their roles.
enum class RelocKind : uint8_t {
  /// The 16-bit displacement of an address load "ldq rx, D(gp)". The linker
  /// sets D so the load reads this module's GAT slot GatIndex. LiteralId
  /// names this literal so Lituse records can refer back to it.
  Literal,
  /// An instruction using the register loaded by literal LiteralId as a
  /// memory base register (load/store through the address).
  LituseBase,
  /// A JSR whose target register was loaded by literal LiteralId.
  LituseJsr,
  /// An address computation (scaled add) whose second operand is the
  /// register loaded by literal LiteralId; paired with a LituseDeref on
  /// the memory operation that consumes the derived pointer. Together
  /// these let the linker retarget array accesses to GP-relative form.
  LituseAddr,
  /// The memory operation dereferencing the pointer derived by this
  /// literal's LituseAddr instruction.
  LituseDeref,
  /// An LDAH at Offset paired with an LDA at Offset+PairOffset computing
  /// GP = anchorAddress + disp32, where the anchor is the text address at
  /// AnchorOffset (the procedure entry for prologues, the return point for
  /// post-call resets; in both conventions the register holding the anchor
  /// is PV or RA respectively).
  GpDisp,
  /// A 64-bit data word holding the address of SymbolIndex + Addend.
  RefQuad,
};

/// Returns a short name like "LITERAL".
const char *relocKindName(RelocKind K);

/// One relocation record.
struct Reloc {
  RelocKind Kind = RelocKind::Literal;
  SectionKind Section = SectionKind::Text; // section holding patched bytes
  uint64_t Offset = 0;                     // byte offset within Section
  uint32_t GatIndex = 0;                   // Literal: which GAT slot
  uint32_t LiteralId = 0;                  // Literal/Lituse*: linkage id
  uint32_t SymbolIndex = 0;                // RefQuad target
  int64_t Addend = 0;                      // RefQuad addend
  uint64_t AnchorOffset = 0;               // GpDisp anchor (text offset)
  uint64_t PairOffset = 0;                 // GpDisp: LDA offset - LDAH offset
  uint8_t GpKind = 0;                      // GpDisp: GpDispKind value
};

/// Kind of a GpDisp site, recorded for OM's analyses and the figures.
enum class GpDispKind : uint8_t {
  Prologue, // procedure entry: GP computed from PV
  PostCall, // after a JSR returns: GP recomputed from RA
};

/// Procedure descriptor: boundaries and GP bookkeeping, as provided by the
/// Alpha/OSF loader format ("the loader format identifies procedure
/// boundaries and specifies the correct value of GP for each procedure").
struct ProcDesc {
  uint32_t SymbolIndex = 0;
  uint64_t TextOffset = 0;
  uint64_t TextSize = 0;
  bool UsesGp = true;
};

/// A relocatable object module.
struct ObjectFile {
  std::string ModuleName;
  std::vector<uint8_t> Text;
  std::vector<uint8_t> Data;
  uint64_t BssSize = 0;
  std::vector<GatEntry> Gat;
  std::vector<Symbol> Symbols;
  std::vector<Reloc> Relocs;
  std::vector<ProcDesc> Procs;

  /// Looks up a symbol index by name; returns ~0u if absent.
  uint32_t findSymbol(const std::string &Name) const;

  /// Serializes to the on-disk representation (magic "AAXO").
  std::vector<uint8_t> serialize() const;

  /// Parses the on-disk representation.
  static Result<ObjectFile> deserialize(const std::vector<uint8_t> &Bytes);

  /// Internal consistency checks (offsets in range, literal links resolve,
  /// GAT indices valid). Returns a failure describing the first problem.
  Error verify() const;
};

} // namespace obj
} // namespace om64

#endif // OM64_OBJFILE_OBJECTFILE_H

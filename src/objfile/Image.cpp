//===- objfile/Image.cpp ---------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "objfile/Image.h"

#include "isa/Inst.h"
#include "support/ByteStream.h"
#include "support/Format.h"

#include <cassert>

using namespace om64;
using namespace om64::obj;

static constexpr uint32_t ImageMagic = 0x45584141; // "AAXE"
static constexpr uint32_t ImageVersion = 1;

uint32_t Image::fetch(uint64_t Addr) const {
  assert(Addr >= TextBase && Addr + 4 <= TextBase + Text.size() &&
         "instruction fetch outside text");
  size_t Off = static_cast<size_t>(Addr - TextBase);
  return static_cast<uint32_t>(Text[Off]) |
         (static_cast<uint32_t>(Text[Off + 1]) << 8) |
         (static_cast<uint32_t>(Text[Off + 2]) << 16) |
         (static_cast<uint32_t>(Text[Off + 3]) << 24);
}

std::vector<uint32_t> Image::textWords() const {
  std::vector<uint32_t> Words;
  Words.reserve(Text.size() / 4);
  for (size_t Off = 0; Off + 4 <= Text.size(); Off += 4)
    Words.push_back(fetch(TextBase + Off));
  return Words;
}

std::string Image::symbolAt(uint64_t Addr) const {
  for (const ImageSymbol &S : Symbols)
    if (S.Addr == Addr)
      return S.Name;
  return std::string();
}

Error Image::verify() const {
  if (Text.size() % 4 != 0)
    return Error::failure("image text size is not a multiple of 4");
  if (Entry < TextBase || Entry >= TextBase + Text.size() || Entry % 4)
    return Error::failure("entry point outside text or misaligned");

  uint64_t TextEnd = TextBase + Text.size();
  for (size_t Off = 0; Off + 4 <= Text.size(); Off += 4) {
    uint64_t Pc = TextBase + Off;
    std::optional<isa::Inst> I = isa::decode(fetch(Pc));
    if (!I)
      return Error::failure(formatString("undecodable instruction at %s",
                                         formatHex64(Pc).c_str()));
    if (isa::classOf(I->Op) == isa::InstClass::Branch) {
      uint64_t Target = Pc + 4 + static_cast<int64_t>(I->Disp) * 4;
      if (Target < TextBase || Target >= TextEnd)
        return Error::failure(
            formatString("branch at %s targets %s outside text",
                         formatHex64(Pc).c_str(),
                         formatHex64(Target).c_str()));
    }
  }

  uint64_t DataEnd = DataBase + dataSegmentSize();
  for (const ImageProc &P : Procs) {
    if (P.Entry < TextBase || P.Entry + P.Size > TextEnd || P.Entry % 4)
      return Error::failure("procedure " + P.Name + " outside text");
    // GP sits 32 KiB past its GAT base; for small programs that is past
    // the end of the data segment (the window is symmetric around GP, so
    // the value itself need not be mapped).
    if (P.GpValue != 0 &&
        (P.GpValue < DataBase || P.GpValue > DataEnd + 65536))
      return Error::failure("procedure " + P.Name +
                            " has an implausible GP value");
  }

  if (GatBase < DataBase || GatBase + GatSize > DataEnd)
    return Error::failure("GAT region outside the data segment");
  for (uint64_t Off = 0; Off + 8 <= GatSize; Off += 8) {
    uint64_t SlotOff = GatBase - DataBase + Off;
    uint64_t Value = 0;
    for (unsigned Byte = 0; Byte < 8; ++Byte)
      Value |= static_cast<uint64_t>(Data[SlotOff + Byte]) << (8 * Byte);
    bool InText = Value >= TextBase && Value < TextEnd;
    bool InData = Value >= DataBase && Value < DataEnd;
    if (!InText && !InData)
      return Error::failure(
          formatString("GAT slot %llu holds %s, outside text and data",
                       static_cast<unsigned long long>(Off / 8),
                       formatHex64(Value).c_str()));
  }
  return Error::success();
}

std::vector<uint8_t> Image::serialize() const {
  ByteWriter W;
  W.writeU32(ImageMagic);
  W.writeU32(ImageVersion);
  W.writeU64(TextBase);
  W.writeU64(DataBase);
  W.writeBlob(Text);
  W.writeBlob(Data);
  W.writeU64(BssSize);
  W.writeU64(Entry);
  W.writeU64(InitialGp);
  W.writeU64(GatBase);
  W.writeU64(GatSize);
  W.writeU32(static_cast<uint32_t>(Symbols.size()));
  for (const ImageSymbol &S : Symbols) {
    W.writeString(S.Name);
    W.writeU64(S.Addr);
    W.writeU64(S.Size);
    W.writeU8(S.IsProcedure);
  }
  W.writeU32(static_cast<uint32_t>(Procs.size()));
  for (const ImageProc &P : Procs) {
    W.writeString(P.Name);
    W.writeU64(P.Entry);
    W.writeU64(P.Size);
    W.writeU64(P.GpValue);
    W.writeU32(P.GpGroup);
  }
  return W.take();
}

Result<Image> Image::deserialize(const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes);
  if (R.readU32() != ImageMagic)
    return Result<Image>::failure("bad image magic");
  if (R.readU32() != ImageVersion)
    return Result<Image>::failure("unsupported image version");
  Image Img;
  Img.TextBase = R.readU64();
  Img.DataBase = R.readU64();
  Img.Text = R.readBlob();
  Img.Data = R.readBlob();
  Img.BssSize = R.readU64();
  Img.Entry = R.readU64();
  Img.InitialGp = R.readU64();
  Img.GatBase = R.readU64();
  Img.GatSize = R.readU64();
  uint32_t NumSyms = R.readU32();
  for (uint32_t Idx = 0; Idx < NumSyms && !R.hadError(); ++Idx) {
    ImageSymbol S;
    S.Name = R.readString();
    S.Addr = R.readU64();
    S.Size = R.readU64();
    S.IsProcedure = R.readU8();
    Img.Symbols.push_back(std::move(S));
  }
  uint32_t NumProcs = R.readU32();
  for (uint32_t Idx = 0; Idx < NumProcs && !R.hadError(); ++Idx) {
    ImageProc P;
    P.Name = R.readString();
    P.Entry = R.readU64();
    P.Size = R.readU64();
    P.GpValue = R.readU64();
    P.GpGroup = R.readU32();
    Img.Procs.push_back(std::move(P));
  }
  if (R.hadError())
    return Result<Image>::failure("truncated image");
  return Img;
}

//===- objfile/ObjectFile.cpp ----------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "objfile/ObjectFile.h"

#include "support/ByteStream.h"
#include "support/Format.h"

#include <set>

using namespace om64;
using namespace om64::obj;

static constexpr uint32_t ObjectMagic = 0x4F584141; // "AAXO"
static constexpr uint32_t ObjectVersion = 1;

const char *om64::obj::sectionName(SectionKind K) {
  switch (K) {
  case SectionKind::Text: return ".text";
  case SectionKind::Lita: return ".lita";
  case SectionKind::Data: return ".data";
  case SectionKind::Bss:  return ".bss";
  }
  return "?";
}

const char *om64::obj::relocKindName(RelocKind K) {
  switch (K) {
  case RelocKind::Literal:    return "LITERAL";
  case RelocKind::LituseBase: return "LITUSE_BASE";
  case RelocKind::LituseJsr:  return "LITUSE_JSR";
  case RelocKind::LituseAddr: return "LITUSE_ADDR";
  case RelocKind::LituseDeref:return "LITUSE_DEREF";
  case RelocKind::GpDisp:     return "GPDISP";
  case RelocKind::RefQuad:    return "REFQUAD";
  }
  return "?";
}

uint32_t ObjectFile::findSymbol(const std::string &Name) const {
  for (uint32_t Idx = 0; Idx < Symbols.size(); ++Idx)
    if (Symbols[Idx].Name == Name)
      return Idx;
  return ~0u;
}

std::vector<uint8_t> ObjectFile::serialize() const {
  ByteWriter W;
  W.writeU32(ObjectMagic);
  W.writeU32(ObjectVersion);
  W.writeString(ModuleName);
  W.writeBlob(Text);
  W.writeBlob(Data);
  W.writeU64(BssSize);

  W.writeU32(static_cast<uint32_t>(Gat.size()));
  for (const GatEntry &E : Gat) {
    W.writeU32(E.SymbolIndex);
    W.writeI64(E.Addend);
  }

  W.writeU32(static_cast<uint32_t>(Symbols.size()));
  for (const Symbol &S : Symbols) {
    W.writeString(S.Name);
    W.writeU8(static_cast<uint8_t>(S.Section));
    W.writeU64(S.Offset);
    W.writeU64(S.Size);
    W.writeU8(S.IsProcedure);
    W.writeU8(S.IsExported);
    W.writeU8(S.IsDefined);
  }

  W.writeU32(static_cast<uint32_t>(Relocs.size()));
  for (const Reloc &R : Relocs) {
    W.writeU8(static_cast<uint8_t>(R.Kind));
    W.writeU8(static_cast<uint8_t>(R.Section));
    W.writeU64(R.Offset);
    W.writeU32(R.GatIndex);
    W.writeU32(R.LiteralId);
    W.writeU32(R.SymbolIndex);
    W.writeI64(R.Addend);
    W.writeU64(R.AnchorOffset);
    W.writeU64(R.PairOffset);
    W.writeU8(R.GpKind);
  }

  W.writeU32(static_cast<uint32_t>(Procs.size()));
  for (const ProcDesc &P : Procs) {
    W.writeU32(P.SymbolIndex);
    W.writeU64(P.TextOffset);
    W.writeU64(P.TextSize);
    W.writeU8(P.UsesGp);
  }
  return W.take();
}

Result<ObjectFile> ObjectFile::deserialize(const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes);
  if (R.readU32() != ObjectMagic)
    return Result<ObjectFile>::failure("bad object magic");
  if (R.readU32() != ObjectVersion)
    return Result<ObjectFile>::failure("unsupported object version");

  ObjectFile O;
  O.ModuleName = R.readString();
  O.Text = R.readBlob();
  O.Data = R.readBlob();
  O.BssSize = R.readU64();

  uint32_t NumGat = R.readU32();
  for (uint32_t Idx = 0; Idx < NumGat && !R.hadError(); ++Idx) {
    GatEntry E;
    E.SymbolIndex = R.readU32();
    E.Addend = R.readI64();
    O.Gat.push_back(E);
  }

  uint32_t NumSyms = R.readU32();
  for (uint32_t Idx = 0; Idx < NumSyms && !R.hadError(); ++Idx) {
    Symbol S;
    S.Name = R.readString();
    S.Section = static_cast<SectionKind>(R.readU8());
    S.Offset = R.readU64();
    S.Size = R.readU64();
    S.IsProcedure = R.readU8();
    S.IsExported = R.readU8();
    S.IsDefined = R.readU8();
    O.Symbols.push_back(std::move(S));
  }

  uint32_t NumRelocs = R.readU32();
  for (uint32_t Idx = 0; Idx < NumRelocs && !R.hadError(); ++Idx) {
    Reloc Rel;
    Rel.Kind = static_cast<RelocKind>(R.readU8());
    Rel.Section = static_cast<SectionKind>(R.readU8());
    Rel.Offset = R.readU64();
    Rel.GatIndex = R.readU32();
    Rel.LiteralId = R.readU32();
    Rel.SymbolIndex = R.readU32();
    Rel.Addend = R.readI64();
    Rel.AnchorOffset = R.readU64();
    Rel.PairOffset = R.readU64();
    Rel.GpKind = R.readU8();
    O.Relocs.push_back(Rel);
  }

  uint32_t NumProcs = R.readU32();
  for (uint32_t Idx = 0; Idx < NumProcs && !R.hadError(); ++Idx) {
    ProcDesc P;
    P.SymbolIndex = R.readU32();
    P.TextOffset = R.readU64();
    P.TextSize = R.readU64();
    P.UsesGp = R.readU8();
    O.Procs.push_back(P);
  }

  if (R.hadError())
    return Result<ObjectFile>::failure("truncated object file");
  if (Error E = O.verify())
    return Result<ObjectFile>::failure(E.message());
  return O;
}

Error ObjectFile::verify() const {
  if (Text.size() % 4 != 0)
    return Error::failure(ModuleName + ": .text size not a multiple of 4");

  for (const GatEntry &E : Gat)
    if (E.SymbolIndex >= Symbols.size())
      return Error::failure(ModuleName + ": GAT entry references symbol " +
                            formatString("%u", E.SymbolIndex) +
                            " out of range");

  std::set<uint32_t> LiteralIds;
  for (const Reloc &R : Relocs) {
    uint64_t SectionSize = R.Section == SectionKind::Text ? Text.size()
                           : R.Section == SectionKind::Data ? Data.size()
                                                            : 0;
    if (R.Offset >= SectionSize && R.Kind != RelocKind::RefQuad)
      return Error::failure(
          formatString("%s: reloc %s at offset %llu is outside %s",
                       ModuleName.c_str(), relocKindName(R.Kind),
                       static_cast<unsigned long long>(R.Offset),
                       sectionName(R.Section)));
    if (R.Kind == RelocKind::Literal) {
      if (R.GatIndex >= Gat.size())
        return Error::failure(ModuleName + ": literal reloc GAT index " +
                              formatString("%u", R.GatIndex) +
                              " out of range");
      LiteralIds.insert(R.LiteralId);
    }
    if (R.Kind == RelocKind::RefQuad && R.SymbolIndex >= Symbols.size())
      return Error::failure(ModuleName + ": refquad symbol out of range");
  }
  for (const Reloc &R : Relocs)
    if ((R.Kind == RelocKind::LituseBase ||
         R.Kind == RelocKind::LituseJsr ||
         R.Kind == RelocKind::LituseAddr ||
         R.Kind == RelocKind::LituseDeref) &&
        !LiteralIds.count(R.LiteralId))
      return Error::failure(
          formatString("%s: %s at offset %llu has no matching literal id %u",
                       ModuleName.c_str(), relocKindName(R.Kind),
                       static_cast<unsigned long long>(R.Offset),
                       R.LiteralId));

  for (const ProcDesc &P : Procs) {
    if (P.SymbolIndex >= Symbols.size())
      return Error::failure(ModuleName + ": proc desc symbol out of range");
    if (P.TextOffset + P.TextSize > Text.size())
      return Error::failure(ModuleName + ": proc " +
                            Symbols[P.SymbolIndex].Name +
                            " extends past .text");
    if (P.TextOffset % 4 != 0 || P.TextSize % 4 != 0)
      return Error::failure(ModuleName + ": proc " +
                            Symbols[P.SymbolIndex].Name + " misaligned");
  }
  return Error::success();
}

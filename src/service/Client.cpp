//===- service/Client.cpp - omlinkd client calls ---------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Format.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace om64;
using namespace om64::service;

Result<Response> om64::service::sendRequest(
    const std::string &SocketPath, MsgType Type,
    const std::vector<uint8_t> &Payload) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return Result<Response>::failure("bad socket path: " + SocketPath);
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Result<Response>::failure(
        formatString("socket: %s", std::strerror(errno)));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Result<Response> E = Result<Response>::failure(
        formatString("cannot connect to %s: %s", SocketPath.c_str(),
                     std::strerror(errno)));
    ::close(Fd);
    return E;
  }

  if (Error E = writeFrame(Fd, Type, Payload)) {
    ::close(Fd);
    return Result<Response>::failure(E.message());
  }
  Result<Frame> F = readFrame(Fd);
  ::close(Fd);
  if (!F)
    return Result<Response>::failure(F.message());
  if (F->Type != MsgType::Response)
    return Result<Response>::failure("daemon sent a non-Response frame");
  return decodeResponse(F->Payload);
}

Result<Response>
om64::service::requestRelink(const std::string &SocketPath,
                             const RelinkRequest &Req) {
  return sendRequest(SocketPath, MsgType::RelinkRequest,
                     encodeRelinkRequest(Req));
}

Result<Response> om64::service::requestPing(const std::string &SocketPath) {
  return sendRequest(SocketPath, MsgType::PingRequest, {});
}

Result<Response>
om64::service::requestShutdown(const std::string &SocketPath) {
  return sendRequest(SocketPath, MsgType::ShutdownRequest, {});
}

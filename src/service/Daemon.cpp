//===- service/Daemon.cpp - The omlinkd relink daemon ----------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include "support/FileIO.h"
#include "support/Format.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace om64;
using namespace om64::service;

Daemon::~Daemon() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

Error Daemon::start() {
  if (Opts.SocketPath.empty())
    return Error::failure("no socket path");
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Error::failure(formatString(
        "socket path longer than %zu bytes: %s", sizeof(Addr.sun_path) - 1,
        Opts.SocketPath.c_str()));
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Error::failure(formatString("socket: %s", std::strerror(errno)));
  ::unlink(Opts.SocketPath.c_str()); // stale socket from a killed daemon
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    Error E = Error::failure(formatString("bind %s: %s",
                                          Opts.SocketPath.c_str(),
                                          std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }
  if (::listen(ListenFd, 16) != 0) {
    Error E = Error::failure(
        formatString("listen: %s", std::strerror(errno)));
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
    ListenFd = -1;
    return E;
  }
  return Error::success();
}

void Daemon::requestStop() {
  Stop.store(true);
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR); // wakes the blocking accept
}

Error Daemon::run() {
  if (ListenFd < 0)
    return Error::failure("daemon not started");
  std::vector<std::thread> Workers;
  while (!Stop.load()) {
    if (Opts.MaxRequests && Served.load() >= Opts.MaxRequests)
      break;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      if (Stop.load())
        break;
      return Error::failure(
          formatString("accept: %s", std::strerror(errno)));
    }
    Workers.emplace_back([this, Fd] { handleConnection(Fd); });
  }
  for (std::thread &T : Workers)
    T.join();
  return Error::success();
}

void Daemon::handleConnection(int Fd) {
  // One request per connection: omlinkc connects, sends one frame, reads
  // one frame. Any protocol error gets an error Response when the stream
  // is still writable, then the connection closes either way.
  Result<Frame> F = readFrame(Fd);
  Response Resp;
  if (!F) {
    Resp.Status = 1;
    Resp.Message = F.message();
    (void)writeFrame(Fd, MsgType::Response, encodeResponse(Resp));
    ::close(Fd);
    return;
  }
  auto Start = std::chrono::steady_clock::now();
  switch (F->Type) {
  case MsgType::PingRequest:
    Resp.Message = "pong";
    break;
  case MsgType::ShutdownRequest:
    Resp.Message = "stopping";
    requestStop();
    break;
  case MsgType::RelinkRequest: {
    Result<RelinkRequest> Req = decodeRelinkRequest(F->Payload);
    if (!Req) {
      Resp.Status = 1;
      Resp.Message = Req.message();
    } else {
      Resp = handleRelink(*Req);
    }
    break;
  }
  case MsgType::Response:
    Resp.Status = 1;
    Resp.Message = "unexpected Response frame from client";
    break;
  }
  Resp.Micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  // Reaching the request bound must wake the accept loop, which is
  // usually already blocked in accept() again by now; without the
  // explicit stop the daemon would idle forever waiting for a request
  // it will never serve.
  if (++Served >= Opts.MaxRequests && Opts.MaxRequests)
    requestStop();
  (void)writeFrame(Fd, MsgType::Response, encodeResponse(Resp));
  ::close(Fd);
}

Response Daemon::handleRelink(const RelinkRequest &Req) {
  Response Resp;

  // Find or create this output path's warm state. Options are part of the
  // state's identity: a request with different options restarts cold
  // (the memos key per-procedure inputs, not option sets).
  ImageState *State;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    std::unique_ptr<ImageState> &Slot = Images[Req.OutputPath];
    if (!Slot)
      Slot = std::make_unique<ImageState>();
    State = Slot.get();
  }

  std::lock_guard<std::mutex> Lock(State->M);
  uint64_t Key = optionsKey(Req.Opts);
  if (!State->Linker || State->OptionsKey != Key) {
    State->Linker = std::make_unique<om::IncrementalLinker>(Req.Opts);
    State->Linker->setCacheBudget(Opts.CacheBudgetBytes);
    State->OptionsKey = Key;
  }

  std::vector<std::vector<uint8_t>> Modules;
  Modules.reserve(Req.InputPaths.size());
  for (const std::string &Path : Req.InputPaths) {
    Result<std::vector<uint8_t>> Bytes = readFileBytes(Path);
    if (!Bytes) {
      Resp.Status = 1;
      Resp.Message = Bytes.message();
      return Resp;
    }
    Modules.push_back(Bytes.take());
  }

  Result<om::RelinkResult> R = State->Linker->relink(Modules);
  if (!R) {
    Resp.Status = 1;
    Resp.Message = R.message();
    return Resp;
  }

  if (Error E = writeFileBytes(Req.OutputPath, R->ImageBytes)) {
    Resp.Status = 1;
    Resp.Message = E.message();
    return Resp;
  }

  const om::RelinkStats &S = R->Stats;
  Resp.Warm = S.Warm;
  Resp.InputUnchanged = S.InputUnchanged;
  Resp.ModulesTotal = S.ModulesTotal;
  Resp.ModulesReparsed = S.ModulesReparsed;
  Resp.ModulesRelifted = S.ModulesRelifted;
  Resp.ProcsTotal = S.ProcsTotal;
  Resp.ProcsRelifted = S.ProcsRelifted;
  Resp.SummaryRoundHits = S.SummaryRoundHits;
  Resp.SummaryRoundMisses = S.SummaryRoundMisses;
  Resp.Message = formatString(
      "%s: %s relink, %llu/%llu modules reparsed, %llu/%llu procs "
      "relifted",
      Req.OutputPath.c_str(), S.InputUnchanged ? "no-op" : (S.Warm ? "warm" : "cold"),
      static_cast<unsigned long long>(S.ModulesReparsed),
      static_cast<unsigned long long>(S.ModulesTotal),
      static_cast<unsigned long long>(S.ProcsRelifted),
      static_cast<unsigned long long>(S.ProcsTotal));
  if (Req.Opts.Lint) {
    // The rendered findings travel in the message so omlinkc can print
    // them; an empty report means the relink is lint-clean.
    Resp.Message += formatString("\nlint: %u finding(s)", R->LintFindings);
    if (!R->LintReport.empty())
      Resp.Message += "\n" + R->LintReport;
  }
  return Resp;
}

//===- service/Protocol.cpp - omlinkd wire protocol ------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "om/Incremental.h"
#include "support/ByteStream.h"
#include "support/ContentHash.h"
#include "support/Format.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

using namespace om64;
using namespace om64::service;

std::vector<uint8_t>
om64::service::encodeFrame(MsgType Type,
                           const std::vector<uint8_t> &Payload) {
  ByteWriter W;
  W.writeU32(FrameMagic);
  W.writeU16(ProtocolVersion);
  W.writeU16(static_cast<uint16_t>(Type));
  W.writeU64(Payload.size());
  std::vector<uint8_t> Out = W.take();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

Result<Frame> om64::service::decodeFrame(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < FrameHeaderSize)
    return Result<Frame>::failure(
        formatString("frame truncated: %zu bytes, header needs %zu",
                     Bytes.size(), FrameHeaderSize));
  ByteReader R(Bytes);
  uint32_t Magic = R.readU32();
  uint16_t Version = R.readU16();
  uint16_t RawType = R.readU16();
  uint64_t Len = R.readU64();
  if (Magic != FrameMagic)
    return Result<Frame>::failure(
        formatString("bad frame magic 0x%08x", Magic));
  if (Version != ProtocolVersion)
    return Result<Frame>::failure(formatString(
        "unsupported protocol version %u (expected %u)", Version,
        ProtocolVersion));
  if (RawType < static_cast<uint16_t>(MsgType::RelinkRequest) ||
      RawType > static_cast<uint16_t>(MsgType::Response))
    return Result<Frame>::failure(
        formatString("unknown message type %u", RawType));
  if (Len > MaxPayloadBytes)
    return Result<Frame>::failure(formatString(
        "payload length %llu exceeds the %llu-byte cap",
        static_cast<unsigned long long>(Len),
        static_cast<unsigned long long>(MaxPayloadBytes)));
  if (Bytes.size() - FrameHeaderSize != Len)
    return Result<Frame>::failure(formatString(
        "frame length mismatch: header says %llu payload bytes, got %zu",
        static_cast<unsigned long long>(Len),
        Bytes.size() - FrameHeaderSize));
  Frame F;
  F.Type = static_cast<MsgType>(RawType);
  F.Payload.assign(Bytes.begin() + FrameHeaderSize, Bytes.end());
  return F;
}

namespace {

/// Option flags packed into one byte on the wire (bit positions are part
/// of protocol version 1).
enum OptFlagBits : uint8_t {
  FlagReschedule = 1 << 0,
  FlagAlignLoopTargets = 1 << 1,
  FlagSortDataBySize = 1 << 2,
  FlagAnalysis = 1 << 3,
  FlagVerify = 1 << 4,
  FlagVerifyEachStage = 1 << 5,
  FlagLint = 1 << 6,
  FlagLintExplain = 1 << 7,
};

void writeOptions(ByteWriter &W, const om::OmOptions &O) {
  W.writeU8(static_cast<uint8_t>(O.Level));
  uint8_t Flags = 0;
  Flags |= O.Reschedule ? FlagReschedule : 0;
  Flags |= O.AlignLoopTargets ? FlagAlignLoopTargets : 0;
  Flags |= O.SortDataBySize ? FlagSortDataBySize : 0;
  Flags |= O.Analysis ? FlagAnalysis : 0;
  Flags |= O.Verify ? FlagVerify : 0;
  Flags |= O.VerifyEachStage ? FlagVerifyEachStage : 0;
  Flags |= O.Lint ? FlagLint : 0;
  Flags |= O.LintExplain ? FlagLintExplain : 0;
  W.writeU8(Flags);
  W.writeU32(O.Jobs);
  W.writeU32(O.MaxGatEntriesPerGroup);
  W.writeU64(O.SerialFallbackInsts);
  W.writeString(O.EntryName);
}

om::OmOptions readOptions(ByteReader &R) {
  om::OmOptions O;
  O.Level = static_cast<om::OmLevel>(R.readU8());
  uint8_t Flags = R.readU8();
  O.Reschedule = Flags & FlagReschedule;
  O.AlignLoopTargets = Flags & FlagAlignLoopTargets;
  O.SortDataBySize = Flags & FlagSortDataBySize;
  O.Analysis = Flags & FlagAnalysis;
  O.Verify = Flags & FlagVerify;
  O.VerifyEachStage = Flags & FlagVerifyEachStage;
  O.Lint = Flags & FlagLint;
  O.LintExplain = Flags & FlagLintExplain;
  O.Jobs = R.readU32();
  O.MaxGatEntriesPerGroup = R.readU32();
  O.SerialFallbackInsts = R.readU64();
  O.EntryName = R.readString();
  return O;
}

} // namespace

std::vector<uint8_t>
om64::service::encodeRelinkRequest(const RelinkRequest &Req) {
  ByteWriter W;
  writeOptions(W, Req.Opts);
  W.writeString(Req.OutputPath);
  W.writeU32(static_cast<uint32_t>(Req.InputPaths.size()));
  for (const std::string &P : Req.InputPaths)
    W.writeString(P);
  return W.take();
}

Result<RelinkRequest>
om64::service::decodeRelinkRequest(const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload);
  RelinkRequest Req;
  Req.Opts = readOptions(R);
  Req.OutputPath = R.readString();
  uint32_t N = R.readU32();
  if (R.hadError())
    return Result<RelinkRequest>::failure("malformed relink request");
  for (uint32_t I = 0; I < N; ++I) {
    Req.InputPaths.push_back(R.readString());
    if (R.hadError())
      return Result<RelinkRequest>::failure("malformed relink request");
  }
  if (!R.atEnd())
    return Result<RelinkRequest>::failure(
        "trailing bytes after relink request");
  if (static_cast<uint8_t>(Req.Opts.Level) >
      static_cast<uint8_t>(om::OmLevel::Full))
    return Result<RelinkRequest>::failure("bad optimization level");
  if (Req.OutputPath.empty())
    return Result<RelinkRequest>::failure("empty output path");
  if (Req.InputPaths.empty())
    return Result<RelinkRequest>::failure("no input modules");
  return Req;
}

std::vector<uint8_t> om64::service::encodeResponse(const Response &Resp) {
  ByteWriter W;
  W.writeU8(Resp.Status);
  W.writeString(Resp.Message);
  W.writeU8(Resp.Warm);
  W.writeU8(Resp.InputUnchanged);
  W.writeU64(Resp.ModulesTotal);
  W.writeU64(Resp.ModulesReparsed);
  W.writeU64(Resp.ModulesRelifted);
  W.writeU64(Resp.ProcsTotal);
  W.writeU64(Resp.ProcsRelifted);
  W.writeU64(Resp.SummaryRoundHits);
  W.writeU64(Resp.SummaryRoundMisses);
  W.writeU64(Resp.Micros);
  return W.take();
}

Result<Response>
om64::service::decodeResponse(const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload);
  Response Resp;
  Resp.Status = R.readU8();
  Resp.Message = R.readString();
  Resp.Warm = R.readU8();
  Resp.InputUnchanged = R.readU8();
  Resp.ModulesTotal = R.readU64();
  Resp.ModulesReparsed = R.readU64();
  Resp.ModulesRelifted = R.readU64();
  Resp.ProcsTotal = R.readU64();
  Resp.ProcsRelifted = R.readU64();
  Resp.SummaryRoundHits = R.readU64();
  Resp.SummaryRoundMisses = R.readU64();
  Resp.Micros = R.readU64();
  if (R.hadError() || !R.atEnd())
    return Result<Response>::failure("malformed response");
  return Resp;
}

uint64_t om64::service::optionsKey(const om::OmOptions &Opts) {
  // The wire encoding (writeOptions) deliberately carries only what the
  // daemon protocol transports; keying warm linker state off it would
  // collide configurations that differ in fields it omits (hot-cold
  // layout, instrumentation, the profile — all BSR-relaxation inputs).
  // Delegate to the pipeline's own exhaustive key.
  return om::linkConfigKey(Opts);
}

Error om64::service::writeFrame(int Fd, MsgType Type,
                                const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Bytes = encodeFrame(Type, Payload);
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error::failure(formatString("socket write failed: %s",
                                         std::strerror(errno)));
    }
    Off += static_cast<size_t>(N);
  }
  return Error::success();
}

namespace {

/// Reads exactly \p Len bytes; fails on EOF mid-object.
Error readExact(int Fd, uint8_t *Buf, size_t Len, bool &SawAnyByte) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::read(Fd, Buf + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error::failure(formatString("socket read failed: %s",
                                         std::strerror(errno)));
    }
    if (N == 0) {
      if (!SawAnyByte && Off == 0)
        return Error::failure("connection closed");
      return Error::failure("connection closed mid-frame");
    }
    SawAnyByte = true;
    Off += static_cast<size_t>(N);
  }
  return Error::success();
}

} // namespace

Result<Frame> om64::service::readFrame(int Fd) {
  std::vector<uint8_t> Bytes(FrameHeaderSize);
  bool SawAnyByte = false;
  if (Error E = readExact(Fd, Bytes.data(), FrameHeaderSize, SawAnyByte))
    return Result<Frame>::failure(E.message());
  // Validate the header before allocating the payload; reuse decodeFrame's
  // checks by decoding a zero-payload view first when the length is zero.
  ByteReader R(Bytes);
  R.readU32(); // magic, rechecked by decodeFrame
  R.readU16();
  R.readU16();
  uint64_t Len = R.readU64();
  if (Len > MaxPayloadBytes)
    return Result<Frame>::failure(formatString(
        "payload length %llu exceeds the %llu-byte cap",
        static_cast<unsigned long long>(Len),
        static_cast<unsigned long long>(MaxPayloadBytes)));
  Bytes.resize(FrameHeaderSize + Len);
  if (Len)
    if (Error E = readExact(Fd, Bytes.data() + FrameHeaderSize, Len,
                            SawAnyByte))
      return Result<Frame>::failure(E.message());
  return decodeFrame(Bytes);
}

//===- service/Protocol.h - omlinkd wire protocol --------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framing and message encoding shared by omlinkd and omlinkc. One
/// frame per message on a Unix-domain stream socket:
///
///   offset  size  field
///        0     4  magic "AXLD" (0x444C5841 little-endian)
///        4     2  protocol version (currently 1)
///        6     2  message type (MsgType)
///        8     8  payload length in bytes
///       16     N  payload (per-type encoding, ByteStream little-endian)
///
/// decodeFrame() is a pure function over a byte vector and requires the
/// vector to be exactly one frame: every truncation and every byte of
/// trailing junk is an error, which is what makes the framing testable
/// without sockets (service_test feeds it every prefix length). The fd
/// variants layer blocking full-read/full-write loops on top.
///
/// Payloads carry module *paths*, not module bytes: omlinkd and omlinkc
/// share a filesystem (the socket is local by construction), and the
/// daemon re-reads inputs itself so a relink always sees the bytes on
/// disk at request time.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SERVICE_PROTOCOL_H
#define OM64_SERVICE_PROTOCOL_H

#include "om/Om.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace om64 {
namespace service {

constexpr uint32_t FrameMagic = 0x444C5841; // "AXLD" little-endian
constexpr uint16_t ProtocolVersion = 1;
constexpr size_t FrameHeaderSize = 16;
/// Upper bound on a payload; a header announcing more is rejected before
/// any allocation (a garbage or hostile length would otherwise turn into
/// an attempted multi-gigabyte resize).
constexpr uint64_t MaxPayloadBytes = 64ull << 20;

enum class MsgType : uint16_t {
  RelinkRequest = 1,
  PingRequest = 2,
  ShutdownRequest = 3,
  Response = 4,
};

/// One decoded frame.
struct Frame {
  MsgType Type = MsgType::Response;
  std::vector<uint8_t> Payload;
};

/// A relink request: link the modules at \p InputPaths (in order) with
/// \p Opts and write the image to \p OutputPath atomically.
struct RelinkRequest {
  om::OmOptions Opts;
  std::string OutputPath;
  std::vector<std::string> InputPaths;
};

/// The daemon's reply to any request.
struct Response {
  uint8_t Status = 0; ///< 0 ok, nonzero error (Message says why)
  std::string Message;
  // Relink observability (zero for ping/shutdown replies).
  bool Warm = false;
  bool InputUnchanged = false;
  uint64_t ModulesTotal = 0;
  uint64_t ModulesReparsed = 0;
  uint64_t ModulesRelifted = 0;
  uint64_t ProcsTotal = 0;
  uint64_t ProcsRelifted = 0;
  uint64_t SummaryRoundHits = 0;
  uint64_t SummaryRoundMisses = 0;
  uint64_t Micros = 0; ///< daemon-side wall time of the request
};

/// Serializes one frame (header + payload).
std::vector<uint8_t> encodeFrame(MsgType Type,
                                 const std::vector<uint8_t> &Payload);

/// Decodes \p Bytes, which must be exactly one frame; any truncation,
/// bad magic/version, oversized length, or trailing junk fails.
Result<Frame> decodeFrame(const std::vector<uint8_t> &Bytes);

// Per-type payload encodings. Decoders reject short and over-long
// payloads.
std::vector<uint8_t> encodeRelinkRequest(const RelinkRequest &Req);
Result<RelinkRequest> decodeRelinkRequest(const std::vector<uint8_t> &Payload);
std::vector<uint8_t> encodeResponse(const Response &R);
Result<Response> decodeResponse(const std::vector<uint8_t> &Payload);

/// A stable hash of the option fields the wire carries; the daemon keys
/// "same options?" decisions on it when reusing an image's warm state.
uint64_t optionsKey(const om::OmOptions &Opts);

/// Blocking full-write of one frame to \p Fd.
Error writeFrame(int Fd, MsgType Type, const std::vector<uint8_t> &Payload);

/// Blocking full-read of one frame from \p Fd. A cleanly closed peer
/// before any byte yields an error with message "connection closed".
Result<Frame> readFrame(int Fd);

} // namespace service
} // namespace om64

#endif // OM64_SERVICE_PROTOCOL_H

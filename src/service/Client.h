//===- service/Client.h - omlinkd client calls -----------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the omlinkd protocol: connect to the daemon's socket,
/// send one request frame, read the Response. Used by tools/omlinkc.cpp
/// and by the in-process service tests.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SERVICE_CLIENT_H
#define OM64_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Result.h"

#include <string>

namespace om64 {
namespace service {

/// Connects to \p SocketPath, sends one frame, reads the Response.
/// Transport and protocol errors fail the Result; a daemon-side failure
/// comes back as a Response with nonzero Status.
Result<Response> sendRequest(const std::string &SocketPath, MsgType Type,
                             const std::vector<uint8_t> &Payload);

Result<Response> requestRelink(const std::string &SocketPath,
                               const RelinkRequest &Req);
Result<Response> requestPing(const std::string &SocketPath);
Result<Response> requestShutdown(const std::string &SocketPath);

} // namespace service
} // namespace om64

#endif // OM64_SERVICE_CLIENT_H

//===- service/Daemon.h - The omlinkd relink daemon ------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon behind tools/omlinkd.cpp, built as a library so tests can
/// run it in-process. It listens on a Unix-domain socket, keeps one
/// om::IncrementalLinker per output path (the warm state: parsed modules,
/// lift memo, analysis memo), and serves RelinkRequests by reading the
/// input files, relinking incrementally, and writing the image atomically
/// (support/FileIO.h writeFileBytes: temp + rename, so a killed daemon
/// never leaves a truncated output).
///
/// Concurrency: one thread per connection; relinks on the same output
/// path serialize on that image's mutex while different images proceed
/// in parallel. Each relink parallelizes internally on its own pool.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_SERVICE_DAEMON_H
#define OM64_SERVICE_DAEMON_H

#include "om/Incremental.h"
#include "service/Protocol.h"
#include "support/Result.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace om64 {
namespace service {

struct DaemonOptions {
  std::string SocketPath;
  /// Stop after serving this many requests; 0 means run until
  /// requestStop() (tests and the CI step use a bound as a safety net).
  uint64_t MaxRequests = 0;
  /// Analysis-memo budget per image (om::IncrementalLinker::setCacheBudget).
  size_t CacheBudgetBytes = om::IncrementalLinker::DefaultCacheBudget;
};

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts) : Opts(std::move(Opts)) {}
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds and listens on Opts.SocketPath (unlinking a stale socket
  /// first). Separate from run() so a caller can start run() on its own
  /// thread only after the socket provably exists.
  Error start();

  /// Accept loop; returns when requestStop() was called or MaxRequests
  /// was reached. Joins every connection thread before returning.
  Error run();

  /// Thread- and signal-safe stop: closes the listening socket, which
  /// wakes the accept loop. In-flight requests finish first.
  void requestStop();

  uint64_t requestsServed() const { return Served.load(); }

private:
  struct ImageState {
    std::mutex M; ///< serializes relinks of this output path
    std::unique_ptr<om::IncrementalLinker> Linker;
    uint64_t OptionsKey = 0;
  };

  void handleConnection(int Fd);
  Response handleRelink(const RelinkRequest &Req);

  DaemonOptions Opts;
  int ListenFd = -1;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Served{0};

  std::mutex RegistryMutex; ///< guards Images (map shape, not relinks)
  std::map<std::string, std::unique_ptr<ImageState>> Images;
};

} // namespace service
} // namespace om64

#endif // OM64_SERVICE_DAEMON_H

//===- isa/Inst.cpp - AAX encode/decode/classify ---------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "isa/Inst.h"

#include <cassert>

using namespace om64;
using namespace om64::isa;

//===----------------------------------------------------------------------===//
// Raw encoding tables.
//===----------------------------------------------------------------------===//

namespace {

/// Raw 6-bit primary opcodes.
enum RawOp : uint32_t {
  RawPal = 0x00,
  RawLda = 0x08,
  RawLdah = 0x09,
  RawIntArith = 0x10,
  RawIntLogic = 0x11,
  RawIntShift = 0x12,
  RawIntMul = 0x13,
  RawTransfer = 0x14,
  RawFpOp = 0x16,
  RawJump = 0x1A,
  RawLdt = 0x23,
  RawStt = 0x27,
  RawLdl = 0x28,
  RawLdq = 0x29,
  RawStl = 0x2C,
  RawStq = 0x2D,
  RawBr = 0x30,
  RawFbeq = 0x31,
  RawBsr = 0x34,
  RawFbne = 0x35,
  RawBeq = 0x39,
  RawBlt = 0x3A,
  RawBle = 0x3B,
  RawBne = 0x3D,
  RawBge = 0x3E,
  RawBgt = 0x3F,
};

struct OperateEncoding {
  uint32_t RawOpcode;
  uint32_t Func;
};

/// Returns the (primary, function) encoding for operate-format opcodes.
OperateEncoding operateEncoding(Opcode Op) {
  switch (Op) {
  case Opcode::Addq:   return {RawIntArith, 0x20};
  case Opcode::S4addq: return {RawIntArith, 0x22};
  case Opcode::Subq:   return {RawIntArith, 0x29};
  case Opcode::S8addq: return {RawIntArith, 0x32};
  case Opcode::Cmpult: return {RawIntArith, 0x1D};
  case Opcode::Cmpeq:  return {RawIntArith, 0x2D};
  case Opcode::Cmplt:  return {RawIntArith, 0x4D};
  case Opcode::Cmple:  return {RawIntArith, 0x6D};
  case Opcode::And:    return {RawIntLogic, 0x00};
  case Opcode::Bic:    return {RawIntLogic, 0x08};
  case Opcode::Bis:    return {RawIntLogic, 0x20};
  case Opcode::Ornot:  return {RawIntLogic, 0x28};
  case Opcode::Xor:    return {RawIntLogic, 0x40};
  case Opcode::Srl:    return {RawIntShift, 0x34};
  case Opcode::Sll:    return {RawIntShift, 0x39};
  case Opcode::Sra:    return {RawIntShift, 0x3C};
  case Opcode::Mulq:   return {RawIntMul, 0x20};
  case Opcode::Itoft:  return {RawTransfer, 0x24};
  case Opcode::Ftoit:  return {RawTransfer, 0x25};
  case Opcode::Addt:   return {RawFpOp, 0x20};
  case Opcode::Subt:   return {RawFpOp, 0x21};
  case Opcode::Mult:   return {RawFpOp, 0x22};
  case Opcode::Divt:   return {RawFpOp, 0x23};
  case Opcode::Cmpteq: return {RawFpOp, 0x25};
  case Opcode::Cmptlt: return {RawFpOp, 0x26};
  case Opcode::Cmptle: return {RawFpOp, 0x27};
  case Opcode::Cpys:   return {RawFpOp, 0x30};
  case Opcode::Cvtqt:  return {RawFpOp, 0x2C};
  case Opcode::Cvttq:  return {RawFpOp, 0x2F};
  default:
    assert(false && "not an operate-format opcode");
    return {0, 0};
  }
}

/// Maps a (primary, function) pair back to an operate opcode, or nullopt.
std::optional<Opcode> decodeOperate(uint32_t Raw, uint32_t Func) {
  // Search the table opcode-by-opcode; the set is small and decode speed is
  // dominated by the simulator's decoded-instruction cache anyway.
  static const Opcode OperateOps[] = {
      Opcode::Addq,   Opcode::S4addq, Opcode::Subq,   Opcode::S8addq,
      Opcode::Cmpult, Opcode::Cmpeq,  Opcode::Cmplt,  Opcode::Cmple,
      Opcode::And,    Opcode::Bic,    Opcode::Bis,    Opcode::Ornot,
      Opcode::Xor,    Opcode::Srl,    Opcode::Sll,    Opcode::Sra,
      Opcode::Mulq,   Opcode::Itoft,  Opcode::Ftoit,  Opcode::Addt,
      Opcode::Subt,   Opcode::Mult,   Opcode::Divt,   Opcode::Cmpteq,
      Opcode::Cmptlt, Opcode::Cmptle, Opcode::Cvtqt,  Opcode::Cvttq,
      Opcode::Cpys};
  for (Opcode Op : OperateOps) {
    OperateEncoding E = operateEncoding(Op);
    if (E.RawOpcode == Raw && E.Func == Func)
      return Op;
  }
  return std::nullopt;
}

int32_t signExtend(uint32_t Value, unsigned Bits) {
  uint32_t Mask = 1u << (Bits - 1);
  uint32_t Field = Value & ((1u << Bits) - 1);
  return static_cast<int32_t>((Field ^ Mask) - Mask);
}

} // namespace

//===----------------------------------------------------------------------===//
// Classification.
//===----------------------------------------------------------------------===//

const char *om64::isa::instClassName(InstClass C) {
  switch (C) {
  case InstClass::Pal:         return "pal";
  case InstClass::LoadAddress: return "load-address";
  case InstClass::IntLoad:     return "int-load";
  case InstClass::IntStore:    return "int-store";
  case InstClass::FpLoad:      return "fp-load";
  case InstClass::FpStore:     return "fp-store";
  case InstClass::Jump:        return "jump";
  case InstClass::Branch:      return "branch";
  case InstClass::IntOp:       return "int-op";
  case InstClass::FpOp:        return "fp-op";
  case InstClass::Transfer:    return "transfer";
  }
  return "???";
}

const char *om64::isa::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::CallPal: return "call_pal";
  case Opcode::Lda:     return "lda";
  case Opcode::Ldah:    return "ldah";
  case Opcode::Ldl:     return "ldl";
  case Opcode::Ldq:     return "ldq";
  case Opcode::Stl:     return "stl";
  case Opcode::Stq:     return "stq";
  case Opcode::Ldt:     return "ldt";
  case Opcode::Stt:     return "stt";
  case Opcode::Jmp:     return "jmp";
  case Opcode::Jsr:     return "jsr";
  case Opcode::Ret:     return "ret";
  case Opcode::Br:      return "br";
  case Opcode::Bsr:     return "bsr";
  case Opcode::Beq:     return "beq";
  case Opcode::Bne:     return "bne";
  case Opcode::Blt:     return "blt";
  case Opcode::Ble:     return "ble";
  case Opcode::Bgt:     return "bgt";
  case Opcode::Bge:     return "bge";
  case Opcode::Fbeq:    return "fbeq";
  case Opcode::Fbne:    return "fbne";
  case Opcode::Addq:    return "addq";
  case Opcode::Subq:    return "subq";
  case Opcode::Mulq:    return "mulq";
  case Opcode::S4addq:  return "s4addq";
  case Opcode::S8addq:  return "s8addq";
  case Opcode::Cmpeq:   return "cmpeq";
  case Opcode::Cmplt:   return "cmplt";
  case Opcode::Cmple:   return "cmple";
  case Opcode::Cmpult:  return "cmpult";
  case Opcode::And:     return "and";
  case Opcode::Bic:     return "bic";
  case Opcode::Bis:     return "bis";
  case Opcode::Ornot:   return "ornot";
  case Opcode::Xor:     return "xor";
  case Opcode::Sll:     return "sll";
  case Opcode::Srl:     return "srl";
  case Opcode::Sra:     return "sra";
  case Opcode::Addt:    return "addt";
  case Opcode::Subt:    return "subt";
  case Opcode::Mult:    return "mult";
  case Opcode::Divt:    return "divt";
  case Opcode::Cmpteq:  return "cmpteq";
  case Opcode::Cmptlt:  return "cmptlt";
  case Opcode::Cmptle:  return "cmptle";
  case Opcode::Cvtqt:   return "cvtqt";
  case Opcode::Cvttq:   return "cvttq";
  case Opcode::Cpys:    return "cpys";
  case Opcode::Itoft:   return "itoft";
  case Opcode::Ftoit:   return "ftoit";
  }
  return "???";
}

//===----------------------------------------------------------------------===//
// Register units.
//===----------------------------------------------------------------------===//

static unsigned pushUnit(unsigned Units[3], unsigned Count, unsigned Unit) {
  if (isZeroUnit(Unit))
    return Count;
  Units[Count] = Unit;
  return Count + 1;
}

unsigned om64::isa::regUnitsRead(const Inst &I, unsigned Units[3]) {
  unsigned N = 0;
  switch (classOf(I.Op)) {
  case InstClass::Pal:
    // PAL calls may consume a0 and f16 (PutChar/PutInt/PutReal arguments).
    N = pushUnit(Units, N, intUnit(A0));
    N = pushUnit(Units, N, fpUnit(FA0));
    break;
  case InstClass::LoadAddress:
  case InstClass::IntLoad:
  case InstClass::FpLoad:
    N = pushUnit(Units, N, intUnit(I.Rb));
    break;
  case InstClass::IntStore:
    N = pushUnit(Units, N, intUnit(I.Ra));
    N = pushUnit(Units, N, intUnit(I.Rb));
    break;
  case InstClass::FpStore:
    N = pushUnit(Units, N, fpUnit(I.Ra));
    N = pushUnit(Units, N, intUnit(I.Rb));
    break;
  case InstClass::Jump:
    N = pushUnit(Units, N, intUnit(I.Rb));
    break;
  case InstClass::Branch:
    if (I.Op == Opcode::Fbeq || I.Op == Opcode::Fbne)
      N = pushUnit(Units, N, fpUnit(I.Ra));
    else if (isCondBranch(I.Op))
      N = pushUnit(Units, N, intUnit(I.Ra));
    break;
  case InstClass::IntOp:
    N = pushUnit(Units, N, intUnit(I.Ra));
    if (!I.IsLit)
      N = pushUnit(Units, N, intUnit(I.Rb));
    break;
  case InstClass::FpOp:
    if (I.Op != Opcode::Cvtqt && I.Op != Opcode::Cvttq)
      N = pushUnit(Units, N, fpUnit(I.Ra));
    N = pushUnit(Units, N, fpUnit(I.Rb));
    break;
  case InstClass::Transfer:
    if (I.Op == Opcode::Itoft)
      N = pushUnit(Units, N, intUnit(I.Ra));
    else
      N = pushUnit(Units, N, fpUnit(I.Ra));
    break;
  }
  return N;
}

unsigned om64::isa::regUnitWritten(const Inst &I) {
  unsigned Unit;
  switch (classOf(I.Op)) {
  case InstClass::Pal:
    // CycleCount writes v0; model all PAL calls as writing v0.
    Unit = intUnit(V0);
    break;
  case InstClass::LoadAddress:
  case InstClass::IntLoad:
    Unit = intUnit(I.Ra);
    break;
  case InstClass::FpLoad:
    Unit = fpUnit(I.Ra);
    break;
  case InstClass::IntStore:
  case InstClass::FpStore:
    return ~0u;
  case InstClass::Jump:
    Unit = intUnit(I.Ra);
    break;
  case InstClass::Branch:
    if (!writesReturnAddress(I.Op))
      return ~0u;
    Unit = intUnit(I.Ra);
    break;
  case InstClass::IntOp:
    Unit = intUnit(I.Rc);
    break;
  case InstClass::FpOp:
    Unit = fpUnit(I.Rc);
    break;
  case InstClass::Transfer:
    Unit = I.Op == Opcode::Itoft ? fpUnit(I.Rc) : intUnit(I.Rc);
    break;
  default:
    return ~0u;
  }
  return isZeroUnit(Unit) ? ~0u : Unit;
}

//===----------------------------------------------------------------------===//
// Inst basics.
//===----------------------------------------------------------------------===//

Inst Inst::nop() { return makeOp(Opcode::Bis, Zero, Zero, Zero); }

bool Inst::isNop() const {
  // Any side-effect-free instruction whose destination is the hardwired
  // zero register behaves as a no-op; OM emits the canonical BIS form but
  // accepts LDA-to-zero as well (the traditional UNOP spelling).
  switch (classOf(Op)) {
  case InstClass::IntOp:
    return Rc == Zero;
  case InstClass::FpOp:
    return Rc == FZero;
  case InstClass::LoadAddress:
    return Ra == Zero;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Builders.
//===----------------------------------------------------------------------===//

Inst om64::isa::makeMem(Opcode Op, uint8_t Ra, int32_t Disp, uint8_t Rb) {
  assert(fitsDisp16(Disp) && "memory displacement out of range");
  Inst I;
  I.Op = Op;
  I.Ra = Ra;
  I.Rb = Rb;
  I.Disp = Disp;
  return I;
}

Inst om64::isa::makeBranch(Opcode Op, uint8_t Ra, int32_t WordDisp) {
  assert(fitsBranchDisp(WordDisp) && "branch displacement out of range");
  Inst I;
  I.Op = Op;
  I.Ra = Ra;
  I.Disp = WordDisp;
  return I;
}

Inst om64::isa::makeJump(Opcode Op, uint8_t LinkRa, uint8_t TargetRb) {
  Inst I;
  I.Op = Op;
  I.Ra = LinkRa;
  I.Rb = TargetRb;
  return I;
}

Inst om64::isa::makeOp(Opcode Op, uint8_t Ra, uint8_t Rb, uint8_t Rc) {
  Inst I;
  I.Op = Op;
  I.Ra = Ra;
  I.Rb = Rb;
  I.Rc = Rc;
  return I;
}

Inst om64::isa::makeOpLit(Opcode Op, uint8_t Ra, uint8_t Lit, uint8_t Rc) {
  Inst I;
  I.Op = Op;
  I.Ra = Ra;
  I.IsLit = true;
  I.Lit = Lit;
  I.Rc = Rc;
  return I;
}

Inst om64::isa::makePal(PalFunc Func) {
  Inst I;
  I.Op = Opcode::CallPal;
  I.Disp = static_cast<int32_t>(Func);
  return I;
}

Inst om64::isa::makePalCount(uint32_t Index) {
  assert(Index < (1u << 18) && "profile counter index out of range");
  Inst I;
  I.Op = Opcode::CallPal;
  I.Disp = static_cast<int32_t>((Index << 8) |
                                static_cast<uint32_t>(PalFunc::Count));
  return I;
}

//===----------------------------------------------------------------------===//
// Displacement helpers.
//===----------------------------------------------------------------------===//

void om64::isa::splitDisp32(int64_t Value, int32_t &High, int32_t &Low) {
  Low = static_cast<int16_t>(static_cast<uint64_t>(Value) & 0xFFFF);
  // Wrapping-safe: Value - Low can overflow int64 near the extremes; the
  // result is only meaningful when fitsDisp32(Value) holds, which callers
  // must check (it verifies exact reconstruction).
  uint64_t Diff = static_cast<uint64_t>(Value) -
                  static_cast<uint64_t>(static_cast<int64_t>(Low));
  High = static_cast<int32_t>(static_cast<int64_t>(Diff) >> 16);
}

bool om64::isa::fitsDisp16(int64_t Value) {
  return Value >= -32768 && Value <= 32767;
}

bool om64::isa::fitsDisp32(int64_t Value) {
  int32_t High, Low;
  splitDisp32(Value, High, Low);
  return fitsDisp16(High) &&
         (static_cast<int64_t>(High) << 16) + Low == Value;
}

bool om64::isa::fitsBranchDisp(int64_t WordDisp) {
  return WordDisp >= -(1 << 20) && WordDisp < (1 << 20);
}

//===----------------------------------------------------------------------===//
// Encode.
//===----------------------------------------------------------------------===//

uint32_t om64::isa::encode(const Inst &I) {
  auto memWord = [&](uint32_t Raw) {
    assert(fitsDisp16(I.Disp) && "memory displacement out of range");
    return (Raw << 26) | (uint32_t(I.Ra & 31) << 21) |
           (uint32_t(I.Rb & 31) << 16) | (uint32_t(I.Disp) & 0xFFFF);
  };
  auto branchWord = [&](uint32_t Raw) {
    assert(fitsBranchDisp(I.Disp) && "branch displacement out of range");
    return (Raw << 26) | (uint32_t(I.Ra & 31) << 21) |
           (uint32_t(I.Disp) & 0x1FFFFF);
  };
  auto operateWord = [&]() {
    OperateEncoding E = operateEncoding(I.Op);
    uint32_t Word = (E.RawOpcode << 26) | (uint32_t(I.Ra & 31) << 21) |
                    (E.Func << 5) | uint32_t(I.Rc & 31);
    if (I.IsLit)
      Word |= (uint32_t(I.Lit) << 13) | (1u << 12);
    else
      Word |= uint32_t(I.Rb & 31) << 16;
    return Word;
  };

  switch (I.Op) {
  case Opcode::CallPal:
    return (uint32_t(RawPal) << 26) | (uint32_t(I.Disp) & 0x3FFFFFF);
  case Opcode::Lda:  return memWord(RawLda);
  case Opcode::Ldah: return memWord(RawLdah);
  case Opcode::Ldl:  return memWord(RawLdl);
  case Opcode::Ldq:  return memWord(RawLdq);
  case Opcode::Stl:  return memWord(RawStl);
  case Opcode::Stq:  return memWord(RawStq);
  case Opcode::Ldt:  return memWord(RawLdt);
  case Opcode::Stt:  return memWord(RawStt);
  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret: {
    uint32_t Kind = I.Op == Opcode::Jmp ? 0u : I.Op == Opcode::Jsr ? 1u : 2u;
    return (uint32_t(RawJump) << 26) | (uint32_t(I.Ra & 31) << 21) |
           (uint32_t(I.Rb & 31) << 16) | (Kind << 14);
  }
  case Opcode::Br:   return branchWord(RawBr);
  case Opcode::Bsr:  return branchWord(RawBsr);
  case Opcode::Beq:  return branchWord(RawBeq);
  case Opcode::Bne:  return branchWord(RawBne);
  case Opcode::Blt:  return branchWord(RawBlt);
  case Opcode::Ble:  return branchWord(RawBle);
  case Opcode::Bgt:  return branchWord(RawBgt);
  case Opcode::Bge:  return branchWord(RawBge);
  case Opcode::Fbeq: return branchWord(RawFbeq);
  case Opcode::Fbne: return branchWord(RawFbne);
  default:
    return operateWord();
  }
}

//===----------------------------------------------------------------------===//
// Decode.
//===----------------------------------------------------------------------===//

std::optional<Inst> om64::isa::decode(uint32_t Word) {
  uint32_t Raw = Word >> 26;
  uint32_t RaField = (Word >> 21) & 31;
  uint32_t RbField = (Word >> 16) & 31;

  Inst I;
  I.Ra = static_cast<uint8_t>(RaField);
  I.Rb = static_cast<uint8_t>(RbField);

  auto memInst = [&](Opcode Op) {
    I.Op = Op;
    I.Disp = signExtend(Word, 16);
    return I;
  };
  auto branchInst = [&](Opcode Op) {
    I.Op = Op;
    I.Disp = signExtend(Word, 21);
    return I;
  };

  switch (Raw) {
  case RawPal:
    I.Op = Opcode::CallPal;
    I.Ra = Zero;
    I.Rb = Zero;
    I.Disp = static_cast<int32_t>(Word & 0x3FFFFFF);
    return I;
  case RawLda:  return memInst(Opcode::Lda);
  case RawLdah: return memInst(Opcode::Ldah);
  case RawLdl:  return memInst(Opcode::Ldl);
  case RawLdq:  return memInst(Opcode::Ldq);
  case RawStl:  return memInst(Opcode::Stl);
  case RawStq:  return memInst(Opcode::Stq);
  case RawLdt:  return memInst(Opcode::Ldt);
  case RawStt:  return memInst(Opcode::Stt);
  case RawJump: {
    uint32_t Kind = (Word >> 14) & 3;
    if (Kind > 2)
      return std::nullopt;
    I.Op = Kind == 0 ? Opcode::Jmp : Kind == 1 ? Opcode::Jsr : Opcode::Ret;
    return I;
  }
  case RawBr:   return branchInst(Opcode::Br);
  case RawBsr:  return branchInst(Opcode::Bsr);
  case RawBeq:  return branchInst(Opcode::Beq);
  case RawBne:  return branchInst(Opcode::Bne);
  case RawBlt:  return branchInst(Opcode::Blt);
  case RawBle:  return branchInst(Opcode::Ble);
  case RawBgt:  return branchInst(Opcode::Bgt);
  case RawBge:  return branchInst(Opcode::Bge);
  case RawFbeq: return branchInst(Opcode::Fbeq);
  case RawFbne: return branchInst(Opcode::Fbne);
  case RawIntArith:
  case RawIntLogic:
  case RawIntShift:
  case RawIntMul:
  case RawTransfer:
  case RawFpOp: {
    uint32_t Func = (Word >> 5) & 0x7F;
    std::optional<Opcode> Op = decodeOperate(Raw, Func);
    if (!Op)
      return std::nullopt;
    I.Op = *Op;
    I.Rc = static_cast<uint8_t>(Word & 31);
    if (Word & (1u << 12)) {
      I.IsLit = true;
      I.Lit = static_cast<uint8_t>((Word >> 13) & 0xFF);
      I.Rb = Zero;
    }
    return I;
  }
  default:
    return std::nullopt;
  }
}

//===- isa/Disassembler.h - Textual rendering of AAX instructions --------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef OM64_ISA_DISASSEMBLER_H
#define OM64_ISA_DISASSEMBLER_H

#include "isa/Inst.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace om64 {
namespace isa {

/// Optional context for prettier disassembly: the instruction's own address
/// (so branch targets print as absolute addresses) and a symbolizer that
/// maps an address to a label such as "mathlib.sqrt".
struct DisasmContext {
  uint64_t Pc = 0;
  bool HavePc = false;
  std::function<std::string(uint64_t)> Symbolize;
};

/// Renders one instruction, e.g. "ldq t0, 188(gp)" or "bsr ra, 0x1200004a0".
std::string disassemble(const Inst &I, const DisasmContext &Ctx = {});

/// Renders a code region: one "ADDR: WORD  text" line per instruction.
std::string disassembleRegion(const std::vector<uint32_t> &Words,
                              uint64_t BaseAddr,
                              const std::function<std::string(uint64_t)>
                                  &Symbolize = nullptr);

} // namespace isa
} // namespace om64

#endif // OM64_ISA_DISASSEMBLER_H

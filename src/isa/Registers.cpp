//===- isa/Registers.cpp ---------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "isa/Registers.h"

using namespace om64;
using namespace om64::isa;

static const char *const IntRegNames[32] = {
    "v0", "t0", "t1", "t2", "t3", "t4", "t5",  "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5",  "fp",
    "a0", "a1", "a2", "a3", "a4", "a5", "t8",  "t9",
    "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero"};

static const char *const FpRegNames[32] = {
    "f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",
    "f8",  "f9",  "f10", "f11", "f12", "f13", "f14", "f15",
    "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
    "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31"};

const char *om64::isa::intRegName(uint8_t R) {
  return R < 32 ? IntRegNames[R] : "r??";
}

const char *om64::isa::fpRegName(uint8_t F) {
  return F < 32 ? FpRegNames[F] : "f??";
}

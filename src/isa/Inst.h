//===- isa/Inst.h - AAX instruction set: decode, encode, classify --------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AAX instruction set. AAX is a clean-room, Alpha-AXP-inspired 64-bit
/// RISC with fixed 32-bit instructions, designed to reproduce exactly the
/// code-generation patterns the paper's link-time optimizations act on:
///
///   * LDA / LDAH   - load-address with a signed 16-bit displacement, and
///                    its "high" form that shifts the displacement left 16.
///                    Together they add an arbitrary 32-bit displacement to
///                    a base register in two instructions (paper, section 1).
///   * LDQ disp(GP) - the "address load" from the global address table.
///   * JSR / BSR    - general indirect call, and the limited-range direct
///                    call with a 21-bit word displacement.
///   * CALL_PAL     - the simulator's tiny OS interface (halt, putchar, ...).
///
/// Instruction formats (all 32 bits, little-endian in memory):
///
///   Memory:  [31:26] op  [25:21] ra  [20:16] rb  [15:0]  disp (signed)
///   Branch:  [31:26] op  [25:21] ra  [20:0]  disp (signed words)
///   Jump:    [31:26] 0x1A[25:21] ra  [20:16] rb  [15:14] kind  [13:0] hint
///   Operate: [31:26] op  [25:21] ra  [20:13] lit/[20:16] rb  [12] L
///            [11:5] func [4:0] rc
///   PAL:     [31:26] 0x00 [25:0] function
///
//===----------------------------------------------------------------------===//

#ifndef OM64_ISA_INST_H
#define OM64_ISA_INST_H

#include "isa/Registers.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace om64 {
namespace isa {

/// Mnemonic-level opcode of a decoded AAX instruction.
enum class Opcode : uint8_t {
  // PAL (operating system interface).
  CallPal,
  // Memory format.
  Lda,   // ra = rb + disp                       (load address)
  Ldah,  // ra = rb + (disp << 16)               (load address high)
  Ldl,   // ra = sext32(mem32[rb + disp])
  Ldq,   // ra = mem64[rb + disp]
  Stl,   // mem32[rb + disp] = ra<31:0>
  Stq,   // mem64[rb + disp] = ra
  Ldt,   // fa = memf64[rb + disp]
  Stt,   // memf64[rb + disp] = fa
  // Jump format.
  Jmp,   // ra = retaddr; pc = rb & ~3
  Jsr,   // ra = retaddr; pc = rb & ~3           (subroutine hint)
  Ret,   // ra = retaddr; pc = rb & ~3           (return hint)
  // Branch format.
  Br,    // ra = retaddr; pc += 4 + disp*4
  Bsr,   // ra = retaddr; pc += 4 + disp*4       (subroutine)
  Beq, Bne, Blt, Ble, Bgt, Bge,   // test ra against zero
  Fbeq, Fbne,                     // test fa against +0.0
  // Integer operate format.
  Addq, Subq, Mulq, S4addq, S8addq,
  Cmpeq, Cmplt, Cmple, Cmpult,
  And, Bic, Bis, Ornot, Xor,
  Sll, Srl, Sra,
  // Floating operate format (registers are fp registers).
  Addt, Subt, Mult, Divt,
  Cmpteq, Cmptlt, Cmptle,
  Cvtqt,  // fb (integer bits) -> fc (double)
  Cvttq,  // fb (double) -> fc (integer bits, truncating)
  Cpys,   // fc = sign(fa) combined with magnitude(fb); cpys f,f,d moves
          // a register exactly (the sign-preserving fp move)
  // Register-file transfers.
  Itoft, // fc<bits> = ra
  Ftoit, // rc = fa<bits>
};

/// Number of distinct opcodes (for tables indexed by Opcode).
inline constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Ftoit) + 1;

/// PAL function codes understood by the simulator. The 26-bit PAL field
/// holds the function in its low 8 bits; Count packs a counter index in
/// the upper 18 bits (the ATOM-style instrumentation hook, section 6).
enum class PalFunc : uint32_t {
  Halt = 0,       // terminate; exit status in a0
  PutChar = 1,    // write a0's low byte to the output stream
  PutInt = 2,     // write a0 as signed decimal
  PutReal = 3,    // write fa0 (f16) with "%.6g"
  CycleCount = 4, // v0 = cycles executed so far (timing runs only; else 0)
  Count = 5,      // ++profile counter [pal-field >> 8]; no visible state
};

/// A decoded AAX instruction. Operate-format register fields are integer
/// registers for integer opcodes and fp registers for fp opcodes; memory
/// format Ra is an fp register for Ldt/Stt.
struct Inst {
  Opcode Op = Opcode::Bis;
  uint8_t Ra = Zero;   // source/dest (format dependent)
  uint8_t Rb = Zero;   // base / second source
  uint8_t Rc = Zero;   // operate destination
  bool IsLit = false;  // operate: Rb field is an 8-bit literal
  uint8_t Lit = 0;     // operate literal value
  int32_t Disp = 0;    // memory: 16-bit; branch: 21-bit words; PAL: function

  bool operator==(const Inst &O) const = default;

  /// Returns the canonical no-op: BIS zero,zero,zero.
  static Inst nop();

  /// True if this is the canonical no-op (or any operate writing the zero
  /// register with no side effects).
  bool isNop() const;
};

/// Broad format/behavior class of an opcode.
enum class InstClass : uint8_t {
  Pal,
  LoadAddress,  // LDA / LDAH
  IntLoad,      // LDL / LDQ
  IntStore,     // STL / STQ
  FpLoad,       // LDT
  FpStore,      // STT
  Jump,         // JMP / JSR / RET
  Branch,       // BR / BSR / conditional branches
  IntOp,
  FpOp,
  Transfer,     // ITOFT / FTOIT
};

/// Number of instruction classes (for tables indexed by InstClass).
inline constexpr unsigned NumInstClasses =
    static_cast<unsigned>(InstClass::Transfer) + 1;

/// Returns the printable name of an instruction class ("int-load", ...).
const char *instClassName(InstClass C);

//===----------------------------------------------------------------------===//
// Opcode property tables. The properties are defined once as constexpr
// switches and then baked into dense opcode-indexed tables at compile time,
// so the hot consumers (the simulator's interpreter loops, the schedulers'
// dependence analysis) pay one indexed load per query instead of a call
// into another translation unit.
//===----------------------------------------------------------------------===//

namespace detail {

constexpr InstClass classOfImpl(Opcode Op) {
  switch (Op) {
  case Opcode::CallPal:
    return InstClass::Pal;
  case Opcode::Lda:
  case Opcode::Ldah:
    return InstClass::LoadAddress;
  case Opcode::Ldl:
  case Opcode::Ldq:
    return InstClass::IntLoad;
  case Opcode::Stl:
  case Opcode::Stq:
    return InstClass::IntStore;
  case Opcode::Ldt:
    return InstClass::FpLoad;
  case Opcode::Stt:
    return InstClass::FpStore;
  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret:
    return InstClass::Jump;
  case Opcode::Br:
  case Opcode::Bsr:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
  case Opcode::Bgt:
  case Opcode::Bge:
  case Opcode::Fbeq:
  case Opcode::Fbne:
    return InstClass::Branch;
  case Opcode::Addq:
  case Opcode::Subq:
  case Opcode::Mulq:
  case Opcode::S4addq:
  case Opcode::S8addq:
  case Opcode::Cmpeq:
  case Opcode::Cmplt:
  case Opcode::Cmple:
  case Opcode::Cmpult:
  case Opcode::And:
  case Opcode::Bic:
  case Opcode::Bis:
  case Opcode::Ornot:
  case Opcode::Xor:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Sra:
    return InstClass::IntOp;
  case Opcode::Addt:
  case Opcode::Subt:
  case Opcode::Mult:
  case Opcode::Divt:
  case Opcode::Cmpteq:
  case Opcode::Cmptlt:
  case Opcode::Cmptle:
  case Opcode::Cvtqt:
  case Opcode::Cvttq:
  case Opcode::Cpys:
    return InstClass::FpOp;
  case Opcode::Itoft:
  case Opcode::Ftoit:
    return InstClass::Transfer;
  }
  return InstClass::IntOp;
}

constexpr unsigned latencyOfImpl(Opcode Op) {
  // Dual-issue AXP-class latencies: loads have a 3-cycle load-use latency
  // even on cache hits (the effect section 5.2 exploits when removing
  // address loads), multiplies and fp operations are longer.
  switch (classOfImpl(Op)) {
  case InstClass::IntLoad:
  case InstClass::FpLoad:
    return 3;
  case InstClass::Transfer:
    return 2;
  case InstClass::FpOp:
    switch (Op) {
    case Opcode::Divt:
      return 20;
    case Opcode::Mult:
      return 5;
    case Opcode::Cpys:
      return 1;
    default:
      return 4;
    }
  case InstClass::IntOp:
    return Op == Opcode::Mulq ? 8 : 1;
  default:
    return 1;
  }
}

constexpr bool isCondBranchImpl(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Ble:
  case Opcode::Bgt:
  case Opcode::Bge:
  case Opcode::Fbeq:
  case Opcode::Fbne:
    return true;
  default:
    return false;
  }
}

constexpr bool writesReturnAddressImpl(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::Bsr:
  case Opcode::Jmp:
  case Opcode::Jsr:
  case Opcode::Ret:
    return true;
  default:
    return false;
  }
}

template <typename T, typename Fn>
constexpr std::array<T, NumOpcodes> makeOpcodeTable(Fn F) {
  std::array<T, NumOpcodes> Table{};
  for (unsigned I = 0; I < NumOpcodes; ++I)
    Table[I] = F(static_cast<Opcode>(I));
  return Table;
}

inline constexpr auto ClassTable =
    makeOpcodeTable<InstClass>([](Opcode Op) { return classOfImpl(Op); });
inline constexpr auto LatencyTable = makeOpcodeTable<uint8_t>(
    [](Opcode Op) { return static_cast<uint8_t>(latencyOfImpl(Op)); });
inline constexpr auto LoadTable = makeOpcodeTable<bool>([](Opcode Op) {
  InstClass C = classOfImpl(Op);
  return C == InstClass::IntLoad || C == InstClass::FpLoad;
});
inline constexpr auto StoreTable = makeOpcodeTable<bool>([](Opcode Op) {
  InstClass C = classOfImpl(Op);
  return C == InstClass::IntStore || C == InstClass::FpStore;
});
inline constexpr auto CondBranchTable =
    makeOpcodeTable<bool>([](Opcode Op) { return isCondBranchImpl(Op); });
inline constexpr auto TerminatorTable = makeOpcodeTable<bool>([](Opcode Op) {
  InstClass C = classOfImpl(Op);
  return C == InstClass::Branch || C == InstClass::Jump ||
         C == InstClass::Pal;
});
inline constexpr auto WritesRaTable = makeOpcodeTable<bool>(
    [](Opcode Op) { return writesReturnAddressImpl(Op); });

} // namespace detail

/// Returns the class of \p Op.
inline InstClass classOf(Opcode Op) {
  return detail::ClassTable[static_cast<unsigned>(Op)];
}

/// True for LDL/LDQ/LDT (instructions that read data memory).
inline bool isLoad(Opcode Op) {
  return detail::LoadTable[static_cast<unsigned>(Op)];
}
/// True for STL/STQ/STT.
inline bool isStore(Opcode Op) {
  return detail::StoreTable[static_cast<unsigned>(Op)];
}
/// True for any conditional branch (BEQ..BGE, FBEQ/FBNE).
inline bool isCondBranch(Opcode Op) {
  return detail::CondBranchTable[static_cast<unsigned>(Op)];
}
/// True for instructions that end a basic block (branches, jumps, PAL).
inline bool isTerminator(Opcode Op) {
  return detail::TerminatorTable[static_cast<unsigned>(Op)];
}
/// True if \p Op writes its Ra field with a return address (BR/BSR with
/// Ra != zero, and all jump-format instructions).
inline bool writesReturnAddress(Opcode Op) {
  return detail::WritesRaTable[static_cast<unsigned>(Op)];
}

/// Returns the mnemonic text of \p Op (e.g. "ldq").
const char *opcodeName(Opcode Op);

/// Result latency in cycles, shared by the compile-time scheduler, OM's
/// link-time rescheduler, and the timing simulator. A latency of N means a
/// dependent instruction can issue N cycles after the producer.
inline unsigned latencyOf(Opcode Op) {
  return detail::LatencyTable[static_cast<unsigned>(Op)];
}

/// Fills RegUnits (see Registers.h) read by \p I into \p Units and returns
/// the count (max 3). The zero units are never reported.
unsigned regUnitsRead(const Inst &I, unsigned Units[3]);

/// Returns the RegUnit written by \p I, or ~0u if it writes none (stores,
/// zero-register destinations, PAL).
unsigned regUnitWritten(const Inst &I);

/// Encodes a decoded instruction into its 32-bit representation.
uint32_t encode(const Inst &I);

/// Decodes a 32-bit word; returns std::nullopt for invalid encodings.
std::optional<Inst> decode(uint32_t Word);

//===----------------------------------------------------------------------===//
// Instruction builder helpers (used by codegen, OM, and tests).
//===----------------------------------------------------------------------===//

Inst makeMem(Opcode Op, uint8_t Ra, int32_t Disp, uint8_t Rb);
Inst makeBranch(Opcode Op, uint8_t Ra, int32_t WordDisp);
Inst makeJump(Opcode Op, uint8_t LinkRa, uint8_t TargetRb);
Inst makeOp(Opcode Op, uint8_t Ra, uint8_t Rb, uint8_t Rc);
Inst makeOpLit(Opcode Op, uint8_t Ra, uint8_t Lit, uint8_t Rc);
Inst makePal(PalFunc Func);
/// Builds a profiling CALL_PAL incrementing counter \p Index (the
/// ATOM-style instrumentation hook).
Inst makePalCount(uint32_t Index);

/// Splits a signed 32-bit displacement \p Value into (High, Low) such that
/// (High << 16) + Low == Value with Low interpreted as signed 16-bit. This
/// is the LDAH/LDA pair computation used for GP establishment (Figure 1).
void splitDisp32(int64_t Value, int32_t &High, int32_t &Low);

/// True if \p Value fits in a signed 16-bit displacement.
bool fitsDisp16(int64_t Value);

/// True if \p Value can be formed by an LDAH/LDA pair (signed 32 bits,
/// accounting for the +0x8000 rounding in splitDisp32).
bool fitsDisp32(int64_t Value);

/// True if a branch-format word displacement fits in 21 signed bits.
bool fitsBranchDisp(int64_t WordDisp);

} // namespace isa
} // namespace om64

#endif // OM64_ISA_INST_H

//===- isa/Registers.h - AAX register file and software conventions ------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register numbering and calling-convention roles for AAX, the
/// Alpha-AXP-inspired 64-bit RISC used throughout this reproduction.
///
/// The software conventions mirror Alpha/OSF: a dedicated global pointer
/// (GP), a procedure value register (PV) holding the entry address of the
/// procedure being called, and a return address register (RA). These three
/// are the registers the paper's address-calculation optimizations act on.
///
//===----------------------------------------------------------------------===//

#ifndef OM64_ISA_REGISTERS_H
#define OM64_ISA_REGISTERS_H

#include <cstdint>

namespace om64 {
namespace isa {

/// Integer register numbers with their conventional roles.
enum Reg : uint8_t {
  V0 = 0,                                         // return value
  T0 = 1, T1, T2, T3, T4, T5, T6, T7,             // caller-saved temps
  S0 = 9, S1, S2, S3, S4, S5,                     // callee-saved
  FP = 15,                                        // frame pointer (s6)
  A0 = 16, A1, A2, A3, A4, A5,                    // argument registers
  T8 = 22, T9, T10, T11,                          // more temps
  RA = 26,                                        // return address
  PV = 27,                                        // procedure value (t12)
  AT = 28,                                        // assembler temp
  GP = 29,                                        // global pointer
  SP = 30,                                        // stack pointer
  Zero = 31,                                      // hardwired zero
};

/// Floating-point register numbers. F31 reads as +0.0 and ignores writes.
enum FReg : uint8_t {
  F0 = 0,    // fp return value
  FA0 = 16,  // first fp argument (f16..f21 are fp args)
  FZero = 31,
};

/// Number of architectural registers in each file.
inline constexpr unsigned NumIntRegs = 32;
inline constexpr unsigned NumFpRegs = 32;

/// Dependence analysis and the simulator number registers in one flat space:
/// integer registers are units [0,32) and fp registers are units [32,64).
/// Unit 31 (integer zero) and unit 63 (fp zero) never carry dependences.
inline constexpr unsigned NumRegUnits = 64;
inline unsigned intUnit(uint8_t R) { return R; }
inline unsigned fpUnit(uint8_t F) { return 32u + F; }
inline bool isZeroUnit(unsigned U) { return U == 31 || U == 63; }

/// Returns the conventional assembly name of an integer register
/// ("v0", "t0", ..., "gp", "sp", "zero").
const char *intRegName(uint8_t R);

/// Returns the name of a floating-point register ("f0".."f31").
const char *fpRegName(uint8_t F);

} // namespace isa
} // namespace om64

#endif // OM64_ISA_REGISTERS_H

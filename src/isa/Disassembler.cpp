//===- isa/Disassembler.cpp ------------------------------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//

#include "isa/Disassembler.h"

#include "support/Format.h"

using namespace om64;
using namespace om64::isa;

static std::string branchTargetText(const Inst &I, const DisasmContext &Ctx) {
  if (!Ctx.HavePc)
    return formatString(".%+d", (I.Disp + 1) * 4);
  uint64_t Target = Ctx.Pc + 4 + static_cast<int64_t>(I.Disp) * 4;
  if (Ctx.Symbolize) {
    std::string Name = Ctx.Symbolize(Target);
    if (!Name.empty())
      return Name;
  }
  return formatHex64(Target);
}

std::string om64::isa::disassemble(const Inst &I, const DisasmContext &Ctx) {
  const char *Name = opcodeName(I.Op);
  if (I.isNop())
    return "nop";
  switch (classOf(I.Op)) {
  case InstClass::Pal: {
    const char *Func = "?";
    switch (static_cast<PalFunc>(I.Disp & 0xFF)) {
    case PalFunc::Halt:       Func = "halt"; break;
    case PalFunc::PutChar:    Func = "putchar"; break;
    case PalFunc::PutInt:     Func = "putint"; break;
    case PalFunc::PutReal:    Func = "putreal"; break;
    case PalFunc::CycleCount: Func = "cycles"; break;
    case PalFunc::Count:
      return formatString("call_pal count[%u]", unsigned(I.Disp) >> 8);
    }
    return formatString("call_pal %s", Func);
  }
  case InstClass::LoadAddress:
  case InstClass::IntLoad:
  case InstClass::IntStore:
    return formatString("%s %s, %d(%s)", Name, intRegName(I.Ra), I.Disp,
                        intRegName(I.Rb));
  case InstClass::FpLoad:
  case InstClass::FpStore:
    return formatString("%s %s, %d(%s)", Name, fpRegName(I.Ra), I.Disp,
                        intRegName(I.Rb));
  case InstClass::Jump:
    return formatString("%s %s, (%s)", Name, intRegName(I.Ra),
                        intRegName(I.Rb));
  case InstClass::Branch: {
    std::string Target = branchTargetText(I, Ctx);
    if (I.Op == Opcode::Br && I.Ra == Zero)
      return formatString("br %s", Target.c_str());
    const char *RegName = (I.Op == Opcode::Fbeq || I.Op == Opcode::Fbne)
                              ? fpRegName(I.Ra)
                              : intRegName(I.Ra);
    return formatString("%s %s, %s", Name, RegName, Target.c_str());
  }
  case InstClass::IntOp:
    if (I.IsLit)
      return formatString("%s %s, %u, %s", Name, intRegName(I.Ra),
                          unsigned(I.Lit), intRegName(I.Rc));
    return formatString("%s %s, %s, %s", Name, intRegName(I.Ra),
                        intRegName(I.Rb), intRegName(I.Rc));
  case InstClass::FpOp:
    if (I.Op == Opcode::Cvtqt || I.Op == Opcode::Cvttq)
      return formatString("%s %s, %s", Name, fpRegName(I.Rb),
                          fpRegName(I.Rc));
    return formatString("%s %s, %s, %s", Name, fpRegName(I.Ra),
                        fpRegName(I.Rb), fpRegName(I.Rc));
  case InstClass::Transfer:
    if (I.Op == Opcode::Itoft)
      return formatString("itoft %s, %s", intRegName(I.Ra), fpRegName(I.Rc));
    return formatString("ftoit %s, %s", fpRegName(I.Ra), intRegName(I.Rc));
  }
  return "???";
}

std::string om64::isa::disassembleRegion(
    const std::vector<uint32_t> &Words, uint64_t BaseAddr,
    const std::function<std::string(uint64_t)> &Symbolize) {
  std::string Out;
  for (size_t Idx = 0; Idx < Words.size(); ++Idx) {
    uint64_t Addr = BaseAddr + Idx * 4;
    if (Symbolize) {
      std::string Label = Symbolize(Addr);
      if (!Label.empty())
        Out += formatString("%s:\n", Label.c_str());
    }
    std::string Text;
    if (std::optional<Inst> I = decode(Words[Idx])) {
      DisasmContext Ctx;
      Ctx.Pc = Addr;
      Ctx.HavePc = true;
      Ctx.Symbolize = Symbolize;
      Text = disassemble(*I, Ctx);
    } else {
      Text = formatString(".word 0x%08x", Words[Idx]);
    }
    Out += formatString("  %s: %08x  %s\n", formatHex64(Addr).c_str(),
                        Words[Idx], Text.c_str());
  }
  return Out;
}

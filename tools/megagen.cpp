//===- tools/megagen.cpp - Mega-scale workload generator driver -----------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a synthetic many-module program (src/megagen) as AAX objects:
///
///   megagen --shape mixed --modules 64 --procs 16 --insts 1050000 -o DIR
///
/// Writes DIR/mg0000.aaxo .. DIR/mgNNNN.aaxo (zero-padded so shell glob
/// order equals module order, which the linker's determinism depends on)
/// and prints the generation summary. Options:
///
///   --seed N      generator seed (default 1); same seed => same bytes
///   --shape S     deep-chains | wide-fanout | hot-loops | mixed
///   --modules N   module (object file) count
///   --procs N     procedures per module (>= 3: two leaves + bodies)
///   --insts N     target total instruction count across all modules
///   --data N      data symbols per module
///   -o DIR        output directory (must exist; default ".")
///
/// A second mode models a compiler re-emitting one module after a source
/// edit, for relink workloads:
///
///   megagen --perturb FILE [--seed N]
///
/// rewrites FILE in place with one instruction (or data byte) changed; see
/// megagen::perturbModule for the exact edit rules.
///
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace om64;

static int usage() {
  std::fprintf(stderr,
               "usage: megagen [--seed N] [--shape deep-chains|wide-fanout|"
               "hot-loops|mixed]\n"
               "               [--modules N] [--procs N] [--insts N] "
               "[--data N] [-o DIR]\n"
               "       megagen --perturb FILE [--seed N]\n");
  return 2;
}

/// --perturb FILE: edit one instruction of an existing module in place.
static int perturbFile(const std::string &Path, uint64_t Seed) {
  Result<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (!Bytes) {
    std::fprintf(stderr, "megagen: %s\n", Bytes.message().c_str());
    return 1;
  }
  Result<obj::ObjectFile> Obj = obj::ObjectFile::deserialize(*Bytes);
  if (!Obj) {
    std::fprintf(stderr, "megagen: %s: %s\n", Path.c_str(),
                 Obj.message().c_str());
    return 1;
  }
  if (!megagen::perturbModule(*Obj, Seed)) {
    std::fprintf(stderr, "megagen: %s: no perturbable site\n", Path.c_str());
    return 1;
  }
  if (Error E = writeFileBytes(Path, Obj->serialize())) {
    std::fprintf(stderr, "megagen: %s\n", E.message().c_str());
    return 1;
  }
  std::printf("megagen: perturbed %s (seed %llu)\n", Path.c_str(),
              (unsigned long long)Seed);
  return 0;
}

int main(int argc, char **argv) {
  megagen::MegaSpec Spec;
  std::string OutDir = ".";
  std::string PerturbPath;

  // Accept both "--flag value" and "--flag=value" spellings.
  std::vector<std::string> Argv;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-' &&
        (Eq = Arg.find('=')) != std::string::npos) {
      Argv.push_back(Arg.substr(0, Eq));
      Argv.push_back(Arg.substr(Eq + 1));
    } else {
      Argv.push_back(Arg);
    }
  }
  const size_t NArgs = Argv.size();
  // Strict numeric parsing: "--modules 1x" is a fatal diagnostic, not a
  // silent truncation to 1.
  auto NumArg = [](const char *Flag, const std::string &Value, uint64_t Max,
                   uint64_t &Out) {
    Result<uint64_t> V = parseUnsigned(Value, Max);
    if (!V) {
      std::fprintf(stderr, "megagen: %s: %s\n", Flag, V.message().c_str());
      return false;
    }
    Out = *V;
    return true;
  };
  uint64_t N = 0;
  for (size_t I = 0; I < NArgs; ++I) {
    const std::string &Arg = Argv[I];
    if (Arg == "--seed" && I + 1 < NArgs) {
      if (!NumArg("--seed", Argv[++I], ~0ull, N))
        return 2;
      Spec.Seed = N;
    } else if (Arg == "--shape" && I + 1 < NArgs) {
      std::optional<megagen::CallShape> S = megagen::parseShape(Argv[++I]);
      if (!S) {
        std::fprintf(stderr, "megagen: unknown shape '%s'\n",
                     Argv[I].c_str());
        return usage();
      }
      Spec.Shape = *S;
    } else if (Arg == "--modules" && I + 1 < NArgs) {
      if (!NumArg("--modules", Argv[++I], ~0u, N))
        return 2;
      Spec.Modules = static_cast<unsigned>(N);
    } else if (Arg == "--procs" && I + 1 < NArgs) {
      if (!NumArg("--procs", Argv[++I], ~0u, N))
        return 2;
      Spec.ProcsPerModule = static_cast<unsigned>(N);
    } else if (Arg == "--insts" && I + 1 < NArgs) {
      if (!NumArg("--insts", Argv[++I], ~0ull, N))
        return 2;
      Spec.TargetInstructions = N;
    } else if (Arg == "--data" && I + 1 < NArgs) {
      if (!NumArg("--data", Argv[++I], ~0u, N))
        return 2;
      Spec.DataSymsPerModule = static_cast<unsigned>(N);
    } else if (Arg == "-o" && I + 1 < NArgs) {
      OutDir = Argv[++I];
    } else if (Arg == "--perturb" && I + 1 < NArgs) {
      PerturbPath = Argv[++I];
    } else {
      return usage();
    }
  }
  if (!PerturbPath.empty())
    return perturbFile(PerturbPath, Spec.Seed);

  megagen::MegaProgram MP = megagen::generate(Spec);
  for (size_t Idx = 0; Idx < MP.Objects.size(); ++Idx) {
    std::string Path =
        OutDir + formatString("/mg%04zu.aaxo", Idx);
    if (Error E = writeFileBytes(Path, MP.Objects[Idx].serialize())) {
      std::fprintf(stderr, "megagen: %s\n", E.message().c_str());
      return 1;
    }
  }
  const megagen::MegaSummary &S = MP.Summary;
  std::printf("megagen: wrote %zu object(s) to %s (shape %s, seed %llu)\n"
              "  %llu instructions, %llu procedures, %llu data bytes\n"
              "  calls: %llu cross-module, %llu intra-module, %llu leaf "
              "BSR; %llu GAT entries\n",
              MP.Objects.size(), OutDir.c_str(),
              megagen::shapeName(Spec.Shape),
              (unsigned long long)Spec.Seed,
              (unsigned long long)S.TotalInstructions,
              (unsigned long long)S.TotalProcedures,
              (unsigned long long)S.TotalDataBytes,
              (unsigned long long)S.CrossModuleCalls,
              (unsigned long long)S.IntraModuleCalls,
              (unsigned long long)S.LeafBsrCalls,
              (unsigned long long)S.GatEntries);
  return 0;
}

//===- tools/megagen.cpp - Mega-scale workload generator driver -----------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a synthetic many-module program (src/megagen) as AAX objects:
///
///   megagen --shape mixed --modules 64 --procs 16 --insts 1050000 -o DIR
///
/// Writes DIR/mg0000.aaxo .. DIR/mgNNNN.aaxo (zero-padded so shell glob
/// order equals module order, which the linker's determinism depends on)
/// and prints the generation summary. Options:
///
///   --seed N      generator seed (default 1); same seed => same bytes
///   --shape S     deep-chains | wide-fanout | hot-loops | mixed
///   --modules N   module (object file) count
///   --procs N     procedures per module (>= 3: two leaves + bodies)
///   --insts N     target total instruction count across all modules
///   --data N      data symbols per module
///   -o DIR        output directory (must exist; default ".")
///
//===----------------------------------------------------------------------===//

#include "megagen/MegaGen.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace om64;

static int usage() {
  std::fprintf(stderr,
               "usage: megagen [--seed N] [--shape deep-chains|wide-fanout|"
               "hot-loops|mixed]\n"
               "               [--modules N] [--procs N] [--insts N] "
               "[--data N] [-o DIR]\n");
  return 2;
}

int main(int argc, char **argv) {
  megagen::MegaSpec Spec;
  std::string OutDir = ".";

  // Accept both "--flag value" and "--flag=value" spellings.
  std::vector<std::string> Argv;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-' &&
        (Eq = Arg.find('=')) != std::string::npos) {
      Argv.push_back(Arg.substr(0, Eq));
      Argv.push_back(Arg.substr(Eq + 1));
    } else {
      Argv.push_back(Arg);
    }
  }
  const size_t NArgs = Argv.size();
  for (size_t I = 0; I < NArgs; ++I) {
    const std::string &Arg = Argv[I];
    if (Arg == "--seed" && I + 1 < NArgs) {
      Spec.Seed = std::strtoull(Argv[++I].c_str(), nullptr, 10);
    } else if (Arg == "--shape" && I + 1 < NArgs) {
      std::optional<megagen::CallShape> S = megagen::parseShape(Argv[++I]);
      if (!S) {
        std::fprintf(stderr, "megagen: unknown shape '%s'\n",
                     Argv[I].c_str());
        return usage();
      }
      Spec.Shape = *S;
    } else if (Arg == "--modules" && I + 1 < NArgs) {
      Spec.Modules =
          static_cast<unsigned>(std::strtoul(Argv[++I].c_str(), nullptr, 10));
    } else if (Arg == "--procs" && I + 1 < NArgs) {
      Spec.ProcsPerModule =
          static_cast<unsigned>(std::strtoul(Argv[++I].c_str(), nullptr, 10));
    } else if (Arg == "--insts" && I + 1 < NArgs) {
      Spec.TargetInstructions = std::strtoull(Argv[++I].c_str(), nullptr, 10);
    } else if (Arg == "--data" && I + 1 < NArgs) {
      Spec.DataSymsPerModule =
          static_cast<unsigned>(std::strtoul(Argv[++I].c_str(), nullptr, 10));
    } else if (Arg == "-o" && I + 1 < NArgs) {
      OutDir = Argv[++I];
    } else {
      return usage();
    }
  }

  megagen::MegaProgram MP = megagen::generate(Spec);
  for (size_t Idx = 0; Idx < MP.Objects.size(); ++Idx) {
    std::string Path =
        OutDir + formatString("/mg%04zu.aaxo", Idx);
    if (Error E = writeFileBytes(Path, MP.Objects[Idx].serialize())) {
      std::fprintf(stderr, "megagen: %s\n", E.message().c_str());
      return 1;
    }
  }
  const megagen::MegaSummary &S = MP.Summary;
  std::printf("megagen: wrote %zu object(s) to %s (shape %s, seed %llu)\n"
              "  %llu instructions, %llu procedures, %llu data bytes\n"
              "  calls: %llu cross-module, %llu intra-module, %llu leaf "
              "BSR; %llu GAT entries\n",
              MP.Objects.size(), OutDir.c_str(),
              megagen::shapeName(Spec.Shape),
              (unsigned long long)Spec.Seed,
              (unsigned long long)S.TotalInstructions,
              (unsigned long long)S.TotalProcedures,
              (unsigned long long)S.TotalDataBytes,
              (unsigned long long)S.CrossModuleCalls,
              (unsigned long long)S.IntraModuleCalls,
              (unsigned long long)S.LeafBsrCalls,
              (unsigned long long)S.GatEntries);
  return 0;
}

//===- tools/omlink.cpp - The optimizing linker driver ---------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Links AAX objects into an executable (.aaxe), optionally running OM:
///
///   omlink -o a.aaxe obj1.aaxo obj2.aaxo ...
///
/// Options:
///   --standard        use the traditional linker (no OM at all)
///   -O none|simple|full   OM level (default full)
///   --sched           OM-full: reschedule basic blocks and align loops
///   --no-sort         OM: keep the module-order data layout
///   --gat-max N       entries per GAT group (forces multiple GPs)
///   -j N, --jobs N    worker threads for the per-procedure pipeline
///                     stages (0 = hardware concurrency, 1 = serial; the
///                     output image is byte-identical for every N)
///   --profile-in FILE read an AAXP execution profile (aaxrun
///                     --profile-out) to drive profile-guided decisions
///   --layout MODE     "hot-cold" (OM-full, needs --profile-in): reorder
///                     blocks so hot successors fall through, split cold
///                     code, order procedures by call heat; "none" off
///   --analysis        OM-full: run the dataflow analysis (OmAnalysis) and
///                     delete what it proves — GP resets already correct on
///                     every path, PV loads of values the register already
///                     holds, address loads with dead destinations — beyond
///                     the pattern-matched transforms; every deletion is
///                     re-proved by an analysis-backed verify stage
///   --lint            report-only mode: lift the inputs, run the dataflow,
///                     and print the binary lint findings (L001..L010, see
///                     docs/LINT.md) instead of linking
///   --lint-werror     --lint, and exit nonzero if anything was found
///   --explain         with --lint: append each finding's witness path
///                     (the shortest abstract-interpretation trace from
///                     the procedure entry to the defect site)
///   --stats           print OM's Figure 3-5 statistics for this link,
///                     plus per-stage wall times and the worker count
///   --stats-json FILE write the same statistics as JSON ("-" = stdout)
///   --verify          OmVerify: check structural invariants after the lift
///                     and the call transforms, then differentially execute
///                     the program at every OM level and compare results
///   --verify-each-stage   also check between every emission stage
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "objfile/ObjectFile.h"
#include "om/Analysis.h"
#include "om/Om.h"
#include "om/OmImpl.h"
#include "om/Verify.h"
#include "support/Diagnostics.h"
#include "support/FileIO.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace om64;

static int usage() {
  std::fprintf(stderr,
               "usage: omlink [--standard | -O none|simple|full] [--sched]\n"
               "              [--analysis] [--lint] [--lint-werror]\n"
               "              [--explain]\n"
               "              [--no-sort] [--gat-max N] [-j N | --jobs N]\n"
               "              [--stats] [--stats-json FILE] [--instrument]\n"
               "              [--profile-in FILE] [--layout none|hot-cold]\n"
               "              [--verify] [--verify-each-stage]\n"
               "              -o out.aaxe obj.aaxo...\n");
  return 2;
}

/// Renders one link's statistics as a JSON object (one key per OmStats
/// field, stage seconds nested), for machine consumers of --stats-json.
static std::string statsJson(const om::OmStats &S, om::OmLevel Level) {
  std::string J = "{\n";
  J += formatString("  \"level\": \"%s\",\n", om::levelName(Level));
  J += formatString("  \"jobs\": %u,\n", S.Jobs);
  auto U = [&](const char *Key, unsigned long long V, bool Comma = true) {
    J += formatString("  \"%s\": %llu%s\n", Key, V, Comma ? "," : "");
  };
  U("address_loads_total", S.AddressLoadsTotal);
  U("address_loads_converted", S.AddressLoadsConverted);
  U("address_loads_nullified", S.AddressLoadsNullified);
  U("calls_total", S.CallsTotal);
  U("calls_needing_pv_load", S.CallsNeedingPvLoad);
  U("calls_needing_gp_reset", S.CallsNeedingGpReset);
  U("jsr_converted_to_bsr", S.JsrConvertedToBsr);
  U("bsr_fallback_jsrs", S.BsrFallbackJsrs);
  U("bsr_relax_rounds", S.BsrRelaxRounds);
  U("bsr_retained_by_relax", S.BsrRetainedByRelax);
  U("instructions_total", S.InstructionsTotal);
  U("instructions_nullified", S.InstructionsNullified);
  U("instructions_deleted", S.InstructionsDeleted);
  U("nops_inserted", S.NopsInserted);
  U("instrumentation_inserted", S.InstrumentationInserted);
  U("gat_bytes_before", S.GatBytesBefore);
  U("gat_bytes_after", S.GatBytesAfter);
  U("gp_groups", S.GpGroups);
  U("text_bytes_before", S.TextBytesBefore);
  U("text_bytes_after", S.TextBytesAfter);
  U("layout_procs_reordered", S.LayoutProcsReordered);
  U("layout_blocks_moved", S.LayoutBlocksMoved);
  U("layout_cold_blocks", S.LayoutColdBlocks);
  U("layout_fixup_branches", S.LayoutFixupBranches);
  U("analysis_gp_pairs_deleted", S.AnalysisGpPairsDeleted);
  U("analysis_pv_loads_deleted", S.AnalysisPvLoadsDeleted);
  U("analysis_dead_loads_deleted", S.AnalysisDeadLoadsDeleted);
  U("sched_mem_deps_freed", S.SchedMemDepsFreed);
  J += "  \"stage_seconds\": {\n";
  auto Sec = [&](const char *Key, double V, bool Comma = true) {
    J += formatString("    \"%s\": %.6f%s\n", Key, V, Comma ? "," : "");
  };
  Sec("lift", S.Seconds.Lift);
  Sec("call_transforms", S.Seconds.CallTransforms);
  Sec("address_loads", S.Seconds.AddressLoads);
  Sec("code_motion", S.Seconds.CodeMotion);
  Sec("assemble", S.Seconds.Assemble);
  Sec("verify", S.Seconds.Verify);
  Sec("total", S.Seconds.Total, false);
  J += "  }\n}\n";
  return J;
}

int main(int argc, char **argv) {
  std::vector<std::string> Inputs;
  std::string Output = "a.aaxe";
  std::string StatsJsonPath;
  std::string ProfileInPath;
  bool Standard = false;
  bool Stats = false;
  bool Lint = false;
  bool LintWerror = false;
  bool LintExplain = false;
  om::OmOptions Opts;
  Opts.Jobs = 0; // hardware concurrency unless -j overrides

  // Accept both "--flag value" and "--flag=value" spellings.
  std::vector<std::string> Argv;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-' &&
        (Eq = Arg.find('=')) != std::string::npos) {
      Argv.push_back(Arg.substr(0, Eq));
      Argv.push_back(Arg.substr(Eq + 1));
    } else {
      Argv.push_back(Arg);
    }
  }
  const size_t NArgs = Argv.size();
  for (size_t I = 0; I < NArgs; ++I) {
    const std::string &Arg = Argv[I];
    if (Arg == "-o" && I + 1 < NArgs) {
      Output = Argv[++I];
    } else if (Arg == "--standard") {
      Standard = true;
    } else if (Arg == "-O" && I + 1 < NArgs) {
      std::string Level = Argv[++I];
      if (Level == "none")
        Opts.Level = om::OmLevel::None;
      else if (Level == "simple")
        Opts.Level = om::OmLevel::Simple;
      else if (Level == "full")
        Opts.Level = om::OmLevel::Full;
      else
        return usage();
    } else if (Arg == "--sched") {
      Opts.Reschedule = true;
      Opts.AlignLoopTargets = true;
    } else if (Arg == "--analysis") {
      Opts.Analysis = true;
    } else if (Arg == "--lint") {
      Lint = true;
    } else if (Arg == "--lint-werror") {
      Lint = true;
      LintWerror = true;
    } else if (Arg == "--explain") {
      LintExplain = true;
    } else if (Arg == "--no-sort") {
      Opts.SortDataBySize = false;
    } else if (Arg == "--gat-max" && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I], ~0u);
      if (!V) {
        std::fprintf(stderr, "omlink: --gat-max: %s\n", V.message().c_str());
        return 2;
      }
      Opts.MaxGatEntriesPerGroup = static_cast<unsigned>(*V);
    } else if ((Arg == "-j" || Arg == "--jobs") && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I], ~0u);
      if (!V) {
        std::fprintf(stderr, "omlink: %s: %s\n", Arg.c_str(),
                     V.message().c_str());
        return 2;
      }
      Opts.Jobs = static_cast<unsigned>(*V);
    } else if (Arg == "--profile-in" && I + 1 < NArgs) {
      ProfileInPath = Argv[++I];
    } else if (Arg == "--layout" && I + 1 < NArgs) {
      std::string Mode = Argv[++I];
      if (Mode == "hot-cold")
        Opts.HotColdLayout = true;
      else if (Mode == "none")
        Opts.HotColdLayout = false;
      else
        return usage();
    } else if (Arg == "--instrument") {
      Opts.InstrumentProcedureCounts = true;
    } else if (Arg == "--verify") {
      Opts.Verify = true;
    } else if (Arg == "--verify-each-stage") {
      Opts.VerifyEachStage = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--stats-json" && I + 1 < NArgs) {
      StatsJsonPath = Argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty())
    return usage();
  if (!ProfileInPath.empty()) {
    Result<std::vector<uint8_t>> Bytes = readFileBytes(ProfileInPath);
    if (!Bytes) {
      std::fprintf(stderr, "omlink: %s\n", Bytes.message().c_str());
      return 1;
    }
    Result<prof::Profile> P = prof::Profile::deserialize(*Bytes);
    if (!P) {
      std::fprintf(stderr, "omlink: %s: %s\n", ProfileInPath.c_str(),
                   P.message().c_str());
      return 1;
    }
    Opts.Profile = P.take();
  }
  if (Opts.HotColdLayout && ProfileInPath.empty()) {
    std::fprintf(stderr,
                 "omlink: --layout=hot-cold requires --profile-in\n");
    return 2;
  }
  if (Opts.HotColdLayout && Opts.Level != om::OmLevel::Full) {
    std::fprintf(stderr, "omlink: --layout=hot-cold requires -O full\n");
    return 2;
  }
  if (Opts.Analysis && Opts.Level != om::OmLevel::Full) {
    std::fprintf(stderr, "omlink: --analysis requires -O full\n");
    return 2;
  }
  if (Lint && Standard) {
    std::fprintf(stderr, "omlink: --lint needs the OM pipeline; drop "
                         "--standard\n");
    return 2;
  }
  if (LintExplain && !Lint) {
    std::fprintf(stderr, "omlink: --explain requires --lint\n");
    return 2;
  }
  Opts.Lint = Lint;
  Opts.LintExplain = LintExplain;

  std::vector<obj::ObjectFile> Objs;
  for (const std::string &Path : Inputs) {
    Result<std::vector<uint8_t>> Bytes = readFileBytes(Path);
    if (!Bytes) {
      std::fprintf(stderr, "omlink: %s\n", Bytes.message().c_str());
      return 1;
    }
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(*Bytes);
    if (!O) {
      std::fprintf(stderr, "omlink: %s: %s\n", Path.c_str(),
                   O.message().c_str());
      return 1;
    }
    Objs.push_back(O.take());
  }

  if (Lint) {
    // Report-only: lift the inputs into the symbolic form, run the
    // dataflow, and print the lint findings. No image is produced.
    ThreadPool Pool(Opts.Jobs);
    Result<om::SymbolicProgram> SP = om::liftProgram(Objs, Opts, Pool);
    if (!SP) {
      std::fprintf(stderr, "omlink: lint: %s\n", SP.message().c_str());
      return 1;
    }
    om::analysis::ProgramAnalysis PA = om::analysis::analyzeProgram(*SP, Pool);
    std::vector<om::analysis::LintFinding> Findings =
        om::analysis::lintProgram(*SP, PA, Pool);
    if (!Findings.empty())
      std::fputs(
          om::analysis::renderLintText(Findings, LintExplain).c_str(),
          stdout);
    std::fprintf(stderr, "omlink: lint: %zu finding(s) in %zu procedure(s)\n",
                 Findings.size(), SP->Procs.size());
    return (LintWerror && !Findings.empty()) ? 1 : 0;
  }

  obj::Image Img;
  if (Standard) {
    if (Opts.Verify || Opts.VerifyEachStage)
      std::fprintf(stderr, "omlink: warning: --verify has no effect with "
                           "--standard (OM pipeline not run)\n");
    Result<obj::Image> R = lnk::link(Objs);
    if (!R) {
      std::fprintf(stderr, "omlink: %s\n", R.message().c_str());
      return 1;
    }
    Img = R.take();
  } else {
    Result<om::OmResult> R = om::optimize(Objs, Opts);
    if (!R) {
      std::fprintf(stderr, "omlink: %s\n", R.message().c_str());
      return 1;
    }
    Img = std::move(R->Image);
    if (!R->ProfiledProcedures.empty()) {
      // Sidecar map: counter index -> procedure, consumed by aaxrun.
      std::vector<uint8_t> Map;
      for (size_t Idx = 0; Idx < R->ProfiledProcedures.size(); ++Idx) {
        std::string Line = std::to_string(Idx) + " " +
                           R->ProfiledProcedures[Idx] + "\n";
        Map.insert(Map.end(), Line.begin(), Line.end());
      }
      if (Error E = writeFileBytes(Output + ".profmap", Map)) {
        std::fprintf(stderr, "omlink: %s\n", E.message().c_str());
        return 1;
      }
      std::printf("omlink: wrote %s.profmap (%zu counters)\n",
                  Output.c_str(), R->ProfiledProcedures.size());
    }
    if (Stats) {
      const om::OmStats &S = R->Stats;
      std::fprintf(stderr,
                   "omlink: OM-%s statistics\n"
                   "  address loads  %llu total, %llu converted, %llu "
                   "nullified\n"
                   "  calls          %llu total, %llu need PV, %llu need "
                   "GP resets, %llu JSR->BSR\n"
                   "  instructions   %llu total, %llu nullified, %llu "
                   "deleted\n"
                   "  GAT            %llu -> %llu bytes (%u group(s))\n"
                   "  text           %llu -> %llu bytes\n",
                   om::levelName(Opts.Level),
                   (unsigned long long)S.AddressLoadsTotal,
                   (unsigned long long)S.AddressLoadsConverted,
                   (unsigned long long)S.AddressLoadsNullified,
                   (unsigned long long)S.CallsTotal,
                   (unsigned long long)S.CallsNeedingPvLoad,
                   (unsigned long long)S.CallsNeedingGpReset,
                   (unsigned long long)S.JsrConvertedToBsr,
                   (unsigned long long)S.InstructionsTotal,
                   (unsigned long long)S.InstructionsNullified,
                   (unsigned long long)S.InstructionsDeleted,
                   (unsigned long long)S.GatBytesBefore,
                   (unsigned long long)S.GatBytesAfter, S.GpGroups,
                   (unsigned long long)S.TextBytesBefore,
                   (unsigned long long)S.TextBytesAfter);
      if (S.BsrRelaxRounds)
        std::fprintf(stderr, "  bsr relax      %llu round(s), %llu "
                             "conversion(s) retained\n",
                     (unsigned long long)S.BsrRelaxRounds,
                     (unsigned long long)S.BsrRetainedByRelax);
      if (S.BsrFallbackJsrs)
        std::fprintf(stderr, "  bsr fallback   %llu call(s) left as JSR "
                             "(out of BSR range)\n",
                     (unsigned long long)S.BsrFallbackJsrs);
      if (Opts.Analysis)
        std::fprintf(stderr,
                     "  analysis       %llu GP pair(s), %llu PV load(s), "
                     "%llu dead load(s) deleted; %llu sched dep(s) freed\n",
                     (unsigned long long)S.AnalysisGpPairsDeleted,
                     (unsigned long long)S.AnalysisPvLoadsDeleted,
                     (unsigned long long)S.AnalysisDeadLoadsDeleted,
                     (unsigned long long)S.SchedMemDepsFreed);
      if (Opts.HotColdLayout)
        std::fprintf(stderr,
                     "  layout         %llu proc(s) reordered, %llu blocks "
                     "moved, %llu cold, %llu fixup branches\n",
                     (unsigned long long)S.LayoutProcsReordered,
                     (unsigned long long)S.LayoutBlocksMoved,
                     (unsigned long long)S.LayoutColdBlocks,
                     (unsigned long long)S.LayoutFixupBranches);
      std::fprintf(stderr,
                   "  pipeline       %u job(s); lift %.3fs, transforms "
                   "%.3fs, addr-loads %.3fs, code-motion %.3fs, assemble "
                   "%.3fs, verify %.3fs, total %.3fs\n",
                   S.Jobs, S.Seconds.Lift, S.Seconds.CallTransforms,
                   S.Seconds.AddressLoads, S.Seconds.CodeMotion,
                   S.Seconds.Assemble, S.Seconds.Verify, S.Seconds.Total);
    }
    if (!StatsJsonPath.empty()) {
      std::string J = statsJson(R->Stats, Opts.Level);
      if (StatsJsonPath == "-") {
        std::fputs(J.c_str(), stdout);
      } else {
        std::vector<uint8_t> Bytes(J.begin(), J.end());
        if (Error E = writeFileBytes(StatsJsonPath, Bytes)) {
          std::fprintf(stderr, "omlink: %s\n", E.message().c_str());
          return 1;
        }
      }
    }
    if (Opts.Verify || Opts.VerifyEachStage) {
      // Differential execution: relink at every OM level and run each
      // image on the functional simulator; any divergence from the
      // unoptimized reference is a transform miscompile.
      Result<om::DifferentialReport> Rep = om::runDifferential(Objs, Opts);
      if (!Rep) {
        std::fprintf(stderr, "omlink: verify: %s\n", Rep.message().c_str());
        return 1;
      }
      for (const om::DifferentialLeg &Leg : Rep->Legs)
        std::fprintf(stderr,
                     "omlink: verify: OM-%s%s exit %lld, %zu output bytes, "
                     "mem %s, %llu instructions\n",
                     om::levelName(Leg.Level), Leg.Sched ? "+sched" : "",
                     (long long)Leg.ExitCode, Leg.Output.size(),
                     formatHex64(Leg.MemoryHash).c_str(),
                     (unsigned long long)Leg.Instructions);
      std::fprintf(stderr,
                   "omlink: verify: all %zu legs architecturally "
                   "identical\n",
                   Rep->Legs.size());
    }
  }

  if (Error E = writeFileBytes(Output, Img.serialize())) {
    std::fprintf(stderr, "omlink: %s\n", E.message().c_str());
    return 1;
  }
  std::printf("omlink: wrote %s (%zu bytes text, entry %s)\n",
              Output.c_str(), Img.Text.size(),
              formatHex64(Img.Entry).c_str());
  return 0;
}

#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares freshly-emitted bench JSON records against the committed
baselines in docs/BENCH_*.json. Both sides use the uniform schema
written by bench/BenchUtil.h::writeBenchJson:

    {"bench": NAME, "schema": 1, "entries": [
        {"name": ..., "metric": ..., "value": ..., "unit": ...,
         "higher_is_better": ..., "tolerance_pct": ...}, ...]}

Entries are matched across the two files by (name, metric). An entry
regresses when its value moves in the *bad* direction (per
higher_is_better) by more than the tolerance; movement in the good
direction never fails, however large. The tolerance comes from the
baseline entry's tolerance_pct, or --default-tolerance (15%) when the
entry says -1. A baseline entry missing from the current record is a
hard failure (a bench silently dropping a workload must not pass).

Also hosts the lint-gate self-test (--lint-selftest): runs aaxlint
--werror over a corpus directory emitted by `aaxlint --emit-corpus` and
demands that every seeded defect (files named L00x_*.aaxo) fails with its
code in the output and every clean*.aaxo passes. A linter that silently
stops reporting a code therefore fails the CI job rather than the gate
going quietly green.

Also hosts the ctest wall-clock budget gate (--ctest-budget): parses the
JUnit XML that `ctest --output-junit` emits and fails when the suite's
summed test time, or any single test's time, exceeds the committed budget
(docs/CTEST_BUDGET.json). A change that quietly makes the slow label
several times slower therefore fails CI with the offending tests named,
instead of the suite creeping toward the job timeout.

Usage:
    check_bench.py [--default-tolerance PCT] BASELINE CURRENT \
                   [BASELINE CURRENT ...]
    check_bench.py --lint-selftest DIR --aaxlint PATH
    check_bench.py --ctest-budget JUNIT_XML --budget BUDGET_JSON

Exit status: 0 all pairs pass, 1 any regression or schema problem.
Stdlib only; do not add dependencies.
"""

import argparse
import json
import os
import re
import subprocess
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"check_bench: cannot read {path}: {e}")
    if doc.get("schema") != 1 or not isinstance(doc.get("entries"), list):
        raise SystemExit(
            f"check_bench: {path}: not a schema-1 bench record "
            "(regenerate with the bench's --json flag)")
    return doc


def index(doc, path):
    out = {}
    for e in doc["entries"]:
        key = (e.get("name"), e.get("metric"))
        if None in key:
            raise SystemExit(
                f"check_bench: {path}: entry missing name/metric: {e}")
        if key in out:
            raise SystemExit(
                f"check_bench: {path}: duplicate entry {key}")
        out[key] = e
    return out


def check_pair(baseline_path, current_path, default_tol):
    base = load(baseline_path)
    cur = load(current_path)
    bench = base.get("bench", "?")
    if cur.get("bench") != base.get("bench"):
        print(f"FAIL {bench}: bench name mismatch "
              f"({base.get('bench')} vs {cur.get('bench')})")
        return 1

    cur_by_key = index(cur, current_path)
    failures = 0
    checked = 0
    for key, b in index(base, baseline_path).items():
        name, metric = key
        c = cur_by_key.get(key)
        if c is None:
            print(f"FAIL {bench}: {name}/{metric}: missing from current run")
            failures += 1
            continue
        tol = b.get("tolerance_pct", -1)
        if tol is None or tol < 0:
            tol = default_tol
        bv, cv = float(b["value"]), float(c["value"])
        higher_better = bool(b.get("higher_is_better", False))
        # Signed change in the "bad" direction, as a percent of baseline.
        if bv == 0:
            worse_pct = 0.0 if cv == 0 else float("inf")
            if higher_better and cv > 0:
                worse_pct = 0.0  # was zero, now positive: an improvement
        else:
            delta_pct = 100.0 * (cv - bv) / abs(bv)
            worse_pct = -delta_pct if higher_better else delta_pct
        checked += 1
        if worse_pct > tol:
            print(f"FAIL {bench}: {name}/{metric}: {bv:g} -> {cv:g} "
                  f"({worse_pct:+.1f}% worse, tolerance {tol:g}%)")
            failures += 1

    extra = set(cur_by_key) - set(index(base, baseline_path))
    for name, metric in sorted(extra):
        print(f"note {bench}: {name}/{metric}: new entry, not in baseline "
              "(update docs/BENCH_*.json to start gating it)")

    status = "FAIL" if failures else "ok"
    print(f"{status} {bench}: {checked} entries checked, "
          f"{failures} regression(s)  [{baseline_path} vs {current_path}]")
    return failures


def lint_selftest(corpus_dir, aaxlint):
    try:
        cases = sorted(f for f in os.listdir(corpus_dir)
                       if f.endswith(".aaxo"))
    except OSError as e:
        raise SystemExit(f"check_bench: cannot read {corpus_dir}: {e}")
    if not cases:
        raise SystemExit(
            f"check_bench: {corpus_dir}: no .aaxo corpus files "
            "(regenerate with aaxlint --emit-corpus)")

    failures = 0
    seen_codes = set()
    for f in cases:
        path = os.path.join(corpus_dir, f)
        try:
            proc = subprocess.run([aaxlint, "--werror", path],
                                  capture_output=True, text=True)
        except OSError as e:
            raise SystemExit(f"check_bench: cannot run {aaxlint}: {e}")
        out = proc.stdout + proc.stderr
        m = re.match(r"(L\d{3})_", f)
        if m:
            code = m.group(1)
            seen_codes.add(code)
            if proc.returncode == 0:
                print(f"FAIL lint-selftest: {f}: aaxlint --werror passed "
                      f"a corpus module seeded with a {code} defect")
                failures += 1
            elif code not in out:
                print(f"FAIL lint-selftest: {f}: failed (exit "
                      f"{proc.returncode}) but never reported {code}")
                failures += 1
        elif f.startswith("clean"):
            if proc.returncode != 0:
                print(f"FAIL lint-selftest: {f}: clean corpus module "
                      f"flagged (exit {proc.returncode}):\n{out}")
                failures += 1
        else:
            print(f"FAIL lint-selftest: {f}: unrecognized corpus file "
                  "(expected L00x_*.aaxo or clean*.aaxo)")
            failures += 1

    expected = {f"L{n:03d}" for n in range(1, 11)}
    for code in sorted(expected - seen_codes):
        print(f"FAIL lint-selftest: corpus has no module for {code}")
        failures += 1

    status = "FAIL" if failures else "ok"
    print(f"{status} lint-selftest: {len(cases)} corpus module(s), "
          f"{failures} failure(s)")
    return 1 if failures else 0


def ctest_budget(junit_path, budget_path):
    import xml.etree.ElementTree as ET

    try:
        with open(budget_path, "r", encoding="utf-8") as f:
            budget = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"check_bench: cannot read {budget_path}: {e}")
    for field in ("total_seconds", "max_test_seconds", "min_tests"):
        if not isinstance(budget.get(field), (int, float)):
            raise SystemExit(
                f"check_bench: {budget_path}: missing numeric '{field}'")

    try:
        root = ET.parse(junit_path).getroot()
    except (OSError, ET.ParseError) as e:
        raise SystemExit(f"check_bench: cannot parse {junit_path}: {e}")

    # ctest --output-junit: a <testsuite> of <testcase name= time= status=>
    # elements; skipped tests carry status="notrun" and a ~zero time.
    times = []
    for tc in root.iter("testcase"):
        name = tc.get("name", "?")
        try:
            seconds = float(tc.get("time") or 0.0)
        except ValueError:
            seconds = 0.0
        if tc.get("status") != "notrun":
            times.append((seconds, name))

    failures = 0
    total = sum(t for t, _ in times)
    if len(times) < budget["min_tests"]:
        # An empty or truncated run must not pass a wall-clock gate.
        print(f"FAIL ctest-budget: only {len(times)} test(s) ran, "
              f"budget expects at least {budget['min_tests']:g}")
        failures += 1
    if total > budget["total_seconds"]:
        print(f"FAIL ctest-budget: suite took {total:.1f}s, "
              f"budget {budget['total_seconds']:g}s")
        failures += 1
    for seconds, name in times:
        if seconds > budget["max_test_seconds"]:
            print(f"FAIL ctest-budget: {name}: {seconds:.1f}s exceeds "
                  f"per-test budget {budget['max_test_seconds']:g}s")
            failures += 1

    for seconds, name in sorted(times, reverse=True)[:5]:
        print(f"  {seconds:7.2f}s  {name}")
    status = "FAIL" if failures else "ok"
    print(f"{status} ctest-budget: {len(times)} test(s), {total:.1f}s total "
          f"(budget {budget['total_seconds']:g}s), {failures} violation(s)")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--default-tolerance", type=float, default=15.0,
                    metavar="PCT",
                    help="tolerance for entries with tolerance_pct < 0 "
                         "(default: 15)")
    ap.add_argument("--lint-selftest", metavar="DIR",
                    help="self-test the lint gate against the corpus "
                         "directory DIR instead of checking bench pairs")
    ap.add_argument("--aaxlint", metavar="PATH",
                    help="aaxlint binary for --lint-selftest")
    ap.add_argument("--ctest-budget", metavar="JUNIT_XML",
                    help="gate the wall-clock budget of a ctest run's "
                         "JUnit output instead of checking bench pairs")
    ap.add_argument("--budget", metavar="BUDGET_JSON",
                    help="committed budget file for --ctest-budget")
    ap.add_argument("files", nargs="*", metavar="BASELINE CURRENT",
                    help="one or more baseline/current file pairs")
    args = ap.parse_args()
    if args.lint_selftest:
        if not args.aaxlint:
            ap.error("--lint-selftest requires --aaxlint PATH")
        if args.files:
            ap.error("--lint-selftest takes no bench file pairs")
        return lint_selftest(args.lint_selftest, args.aaxlint)
    if args.ctest_budget:
        if not args.budget:
            ap.error("--ctest-budget requires --budget BUDGET_JSON")
        if args.files:
            ap.error("--ctest-budget takes no bench file pairs")
        return ctest_budget(args.ctest_budget, args.budget)
    if not args.files:
        ap.error("files must come in BASELINE CURRENT pairs")
    if len(args.files) % 2 != 0:
        ap.error("files must come in BASELINE CURRENT pairs")

    total_failures = 0
    for i in range(0, len(args.files), 2):
        total_failures += check_pair(args.files[i], args.files[i + 1],
                                     args.default_tolerance)
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main())

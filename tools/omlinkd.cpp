//===- tools/omlinkd.cpp - The incremental relink daemon -------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-lived relink service: listens on a Unix-domain socket and serves
/// omlinkc requests, keeping each output image's parsed modules and
/// analysis memos warm so an edit-relink cycle redoes only what changed
/// (see docs/OMLINKD.md for the protocol and the cache-invalidation
/// rules).
///
///   omlinkd --socket PATH [--max-requests N] [--cache-mb N]
///
///   --socket PATH     Unix-domain socket to listen on (required)
///   --max-requests N  exit after serving N requests (CI safety net)
///   --cache-mb N      analysis-cache budget per image, in MiB
///                     (default 512)
///
/// SIGINT/SIGTERM stop the daemon cleanly: in-flight relinks finish (and
/// their outputs appear atomically or not at all), then the socket is
/// removed.
///
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"
#include "support/Format.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace om64;

static service::Daemon *ActiveDaemon = nullptr;

static void onSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

static int usage() {
  std::fprintf(stderr, "usage: omlinkd --socket PATH [--max-requests N] "
                       "[--cache-mb N]\n");
  return 2;
}

int main(int argc, char **argv) {
  service::DaemonOptions Opts;

  std::vector<std::string> Argv;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-' &&
        (Eq = Arg.find('=')) != std::string::npos) {
      Argv.push_back(Arg.substr(0, Eq));
      Argv.push_back(Arg.substr(Eq + 1));
    } else {
      Argv.push_back(Arg);
    }
  }
  const size_t NArgs = Argv.size();
  for (size_t I = 0; I < NArgs; ++I) {
    const std::string &Arg = Argv[I];
    if (Arg == "--socket" && I + 1 < NArgs) {
      Opts.SocketPath = Argv[++I];
    } else if (Arg == "--max-requests" && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I]);
      if (!V) {
        std::fprintf(stderr, "omlinkd: --max-requests: %s\n",
                     V.message().c_str());
        return 2;
      }
      Opts.MaxRequests = *V;
    } else if (Arg == "--cache-mb" && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I], ~0ull >> 20);
      if (!V) {
        std::fprintf(stderr, "omlinkd: --cache-mb: %s\n",
                     V.message().c_str());
        return 2;
      }
      Opts.CacheBudgetBytes = static_cast<size_t>(*V << 20);
    } else {
      return usage();
    }
  }
  if (Opts.SocketPath.empty())
    return usage();

  service::Daemon D(Opts);
  if (Error E = D.start()) {
    std::fprintf(stderr, "omlinkd: %s\n", E.message().c_str());
    return 1;
  }
  ActiveDaemon = &D;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::fprintf(stderr, "omlinkd: listening on %s\n",
               Opts.SocketPath.c_str());

  Error E = D.run();
  ActiveDaemon = nullptr;
  if (E) {
    std::fprintf(stderr, "omlinkd: %s\n", E.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "omlinkd: served %llu request(s), exiting\n",
               static_cast<unsigned long long>(D.requestsServed()));
  return 0;
}

//===- tools/aaxlint.cpp - Standalone binary lint over AAX objects ---------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lints AAX objects without linking them: lifts the inputs into OM's
/// symbolic form, runs the OmAnalysis dataflow, and reports the findings
/// (L001..L010, catalogued in docs/LINT.md) with procedure and instruction
/// provenance:
///
///   aaxlint obj1.aaxo obj2.aaxo ...
///
/// Options:
///   --werror          exit nonzero if anything was found
///   --explain         append each finding's witness path (shortest
///                     abstract-interpretation trace from the procedure
///                     entry to the defect site)
///   --json            print findings as JSON
///                     ({"findings":[{code,proc,offset,message}...]})
///                     instead of text
///   --sarif FILE      also write the findings as SARIF 2.1.0 ("-" =
///                     stdout) for CI annotation
///   -j N, --jobs N    worker threads for lift and analysis
///   --emit-corpus DIR write the built-in lint corpus (one module per
///                     L-code plus one clean module) to DIR as
///                     <Code>_<Name>.aaxo / clean_<Name>.aaxo and exit;
///                     feeds
///                     the CI gate self-test (tools/check_bench.py
///                     --lint-selftest)
///
//===----------------------------------------------------------------------===//

#include "objfile/ObjectFile.h"
#include "om/Analysis.h"
#include "om/Om.h"
#include "om/OmImpl.h"
#include "support/Diagnostics.h"
#include "support/FileIO.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/stat.h>

using namespace om64;

static int usage() {
  std::fprintf(stderr, "usage: aaxlint [--werror] [--explain] [--json] "
                       "[--sarif FILE]\n"
                       "               [-j N | --jobs N] obj.aaxo...\n"
                       "       aaxlint --emit-corpus DIR\n");
  return 2;
}

static int emitCorpus(const std::string &Dir) {
  if (mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "aaxlint: cannot create %s: %s\n", Dir.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::vector<om::analysis::LintCase> Corpus = om::analysis::lintCorpus();
  for (const om::analysis::LintCase &Case : Corpus) {
    std::string Name = Case.Code.empty()
                           ? "clean_" + Case.Name
                           : Case.Code + "_" + Case.Name;
    std::string Path = Dir + "/" + Name + ".aaxo";
    if (Error E = writeFileBytes(Path, Case.Obj.serialize())) {
      std::fprintf(stderr, "aaxlint: %s\n", E.message().c_str());
      return 1;
    }
    std::printf("aaxlint: wrote %s\n", Path.c_str());
  }
  return 0;
}

int main(int argc, char **argv) {
  std::vector<std::string> Inputs;
  bool Werror = false;
  bool Explain = false;
  bool Json = false;
  std::string SarifPath;
  unsigned Jobs = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--werror") {
      Werror = true;
    } else if (Arg == "--explain") {
      Explain = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--sarif" && I + 1 < argc) {
      SarifPath = argv[++I];
    } else if ((Arg == "-j" || Arg == "--jobs") && I + 1 < argc) {
      Result<uint64_t> V = parseUnsigned(argv[++I], ~0u);
      if (!V) {
        std::fprintf(stderr, "aaxlint: %s: %s\n", Arg.c_str(),
                     V.message().c_str());
        return 2;
      }
      Jobs = static_cast<unsigned>(*V);
    } else if (Arg == "--emit-corpus" && I + 1 < argc) {
      return emitCorpus(argv[++I]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty())
    return usage();

  std::vector<obj::ObjectFile> Objs;
  for (const std::string &Path : Inputs) {
    Result<std::vector<uint8_t>> Bytes = readFileBytes(Path);
    if (!Bytes) {
      std::fprintf(stderr, "aaxlint: %s\n", Bytes.message().c_str());
      return 1;
    }
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(*Bytes);
    if (!O) {
      std::fprintf(stderr, "aaxlint: %s: %s\n", Path.c_str(),
                   O.message().c_str());
      return 1;
    }
    Objs.push_back(O.take());
  }

  ThreadPool Pool(Jobs);
  om::OmOptions Opts;
  Opts.Jobs = Jobs;
  Result<om::SymbolicProgram> SP = om::liftProgram(Objs, Opts, Pool);
  if (!SP) {
    std::fprintf(stderr, "aaxlint: %s\n", SP.message().c_str());
    return 1;
  }
  om::analysis::ProgramAnalysis PA = om::analysis::analyzeProgram(*SP, Pool);
  std::vector<om::analysis::LintFinding> Findings =
      om::analysis::lintProgram(*SP, PA, Pool);
  if (Json)
    std::fputs(om::analysis::renderLintJson(Findings).c_str(), stdout);
  else if (!Findings.empty())
    std::fputs(om::analysis::renderLintText(Findings, Explain).c_str(),
               stdout);
  if (!SarifPath.empty()) {
    std::string Sarif = om::analysis::renderLintSarif(Findings);
    if (SarifPath == "-") {
      std::fputs(Sarif.c_str(), stdout);
    } else if (Error E = writeFileBytes(
                   SarifPath,
                   std::vector<uint8_t>(Sarif.begin(), Sarif.end()))) {
      std::fprintf(stderr, "aaxlint: %s\n", E.message().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "aaxlint: %zu finding(s) in %zu procedure(s)\n",
               Findings.size(), SP->Procs.size());
  return (Werror && !Findings.empty()) ? 1 : 0;
}

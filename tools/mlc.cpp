//===- tools/mlc.cpp - The MLang compiler driver ---------------------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles MLang sources to AAX relocatable objects (.aaxo).
///
///   mlc file.ml ...            compile each module to <module>.aaxo
///   mlc --all -o unit.aaxo ... compile all inputs as one interprocedural
///                              unit (the paper's compile-all mode)
///   mlc --emit-runtime DIR     write the pre-compiled runtime library
///                              objects (rt/io/mathlib/...) into DIR
///
/// Options: -o PATH (output file for --all / directory otherwise),
/// --no-sched (disable compile-time pipeline scheduling), --no-fold,
/// --no-runtime (do not make the runtime modules visible to sema).
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/FileIO.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace om64;

static int usage() {
  std::fprintf(stderr,
               "usage: mlc [options] file.ml...\n"
               "       mlc --emit-runtime DIR\n"
               "options:\n"
               "  -o PATH        output object (--all) or directory\n"
               "  --all          compile all inputs as one unit\n"
               "  --no-sched     disable compile-time scheduling\n"
               "  --no-fold      disable constant folding\n"
               "  --no-runtime   do not include the runtime library in the\n"
               "                 semantic environment\n");
  return 2;
}

int main(int argc, char **argv) {
  std::vector<std::string> Inputs;
  std::string Output;
  std::string EmitRuntimeDir;
  bool All = false;
  bool WithRuntime = true;
  cg::CompileOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (Arg == "--all") {
      All = true;
    } else if (Arg == "--no-sched") {
      Opts.Schedule = false;
    } else if (Arg == "--no-fold") {
      Opts.FoldConstants = false;
    } else if (Arg == "--no-runtime") {
      WithRuntime = false;
    } else if (Arg == "--emit-runtime" && I + 1 < argc) {
      EmitRuntimeDir = argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Inputs.push_back(Arg);
    }
  }

  DiagnosticEngine Diags;
  lang::Program Prog;
  std::vector<std::string> UserModules;
  std::vector<std::string> RuntimeNames;

  for (const std::string &Path : Inputs) {
    Result<std::string> Src = readFileText(Path);
    if (!Src) {
      std::fprintf(stderr, "mlc: %s\n", Src.message().c_str());
      return 1;
    }
    std::optional<lang::Module> M = lang::parseModule(Path, *Src, Diags);
    if (!M) {
      std::fputs(Diags.render().c_str(), stderr);
      return 1;
    }
    UserModules.push_back(M->Name);
    Prog.Modules.push_back(std::move(*M));
  }
  if (WithRuntime || !EmitRuntimeDir.empty()) {
    for (const wl::SourceModule &SM : wl::runtimeModules()) {
      std::optional<lang::Module> M =
          lang::parseModule(SM.Name, SM.Source, Diags);
      if (!M) {
        std::fputs(Diags.render().c_str(), stderr);
        return 1;
      }
      RuntimeNames.push_back(M->Name);
      Prog.Modules.push_back(std::move(*M));
    }
  }

  if (Inputs.empty() && EmitRuntimeDir.empty())
    return usage();

  if (!lang::analyzeProgram(Prog, Diags)) {
    std::fputs(Diags.render().c_str(), stderr);
    return 1;
  }

  auto writeObject = [&](const obj::ObjectFile &O,
                         const std::string &Path) -> bool {
    if (Error E = writeFileBytes(Path, O.serialize())) {
      std::fprintf(stderr, "mlc: %s\n", E.message().c_str());
      return false;
    }
    std::printf("mlc: wrote %s (%zu bytes text, %zu relocations)\n",
                Path.c_str(), O.Text.size(), O.Relocs.size());
    return true;
  };

  if (!EmitRuntimeDir.empty()) {
    Result<std::vector<obj::ObjectFile>> Lib =
        cg::compileEach(Prog, RuntimeNames, Opts);
    if (!Lib) {
      std::fprintf(stderr, "mlc: %s\n", Lib.message().c_str());
      return 1;
    }
    for (const obj::ObjectFile &O : *Lib)
      if (!writeObject(O, EmitRuntimeDir + "/" + O.ModuleName + ".aaxo"))
        return 1;
  }

  if (Inputs.empty())
    return 0;

  if (All) {
    Opts.InterUnit = true;
    Result<obj::ObjectFile> Unit = cg::compileUnit(Prog, UserModules, Opts);
    if (!Unit) {
      std::fprintf(stderr, "mlc: %s\n", Unit.message().c_str());
      return 1;
    }
    std::string Path = Output.empty() ? Unit->ModuleName + ".aaxo" : Output;
    return writeObject(*Unit, Path) ? 0 : 1;
  }

  Result<std::vector<obj::ObjectFile>> Objs =
      cg::compileEach(Prog, UserModules, Opts);
  if (!Objs) {
    std::fprintf(stderr, "mlc: %s\n", Objs.message().c_str());
    return 1;
  }
  for (const obj::ObjectFile &O : *Objs) {
    std::string Path = (Output.empty() ? std::string() : Output + "/") +
                       O.ModuleName + ".aaxo";
    if (!writeObject(O, Path))
      return 1;
  }
  return 0;
}

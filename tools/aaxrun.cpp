//===- tools/aaxrun.cpp - Run an executable on the simulator ---------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an .aaxe image. The program's PAL output goes to stdout and
/// the process exit code is the simulated program's.
///
///   aaxrun [--functional] [--stats] [--max-insts N] a.aaxe
///
//===----------------------------------------------------------------------===//

#include "objfile/Image.h"
#include "sim/Simulator.h"
#include "support/FileIO.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace om64;

static int usage() {
  std::fprintf(stderr,
               "usage: aaxrun [--functional] [--stats] [--max-insts N] "
               "a.aaxe\n");
  return 2;
}

int main(int argc, char **argv) {
  std::string Input;
  sim::SimConfig Cfg;
  bool Stats = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--functional") {
      Cfg.Timing = false;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--max-insts" && I + 1 < argc) {
      Cfg.MaxInstructions = std::strtoull(argv[++I], nullptr, 10);
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else if (Input.empty()) {
      Input = Arg;
    } else {
      return usage();
    }
  }
  if (Input.empty())
    return usage();

  Result<std::vector<uint8_t>> Bytes = readFileBytes(Input);
  if (!Bytes) {
    std::fprintf(stderr, "aaxrun: %s\n", Bytes.message().c_str());
    return 1;
  }
  Result<obj::Image> Img = obj::Image::deserialize(*Bytes);
  if (!Img) {
    std::fprintf(stderr, "aaxrun: %s: %s\n", Input.c_str(),
                 Img.message().c_str());
    return 1;
  }

  Result<sim::SimResult> R = sim::run(*Img, Cfg);
  if (!R) {
    std::fprintf(stderr, "aaxrun: %s\n", R.message().c_str());
    return 1;
  }
  std::fputs(R->Output.c_str(), stdout);
  if (Stats && !R->ProfileCounts.empty()) {
    std::fprintf(stderr, "aaxrun: profile counters:\n");
    for (size_t Idx = 0; Idx < R->ProfileCounts.size(); ++Idx)
      std::fprintf(stderr, "  count[%zu] = %llu\n", Idx,
                   (unsigned long long)R->ProfileCounts[Idx]);
  }
  if (Stats)
    std::fprintf(stderr,
                 "aaxrun: %llu instructions (%llu nops, %llu loads, %llu "
                 "stores), %llu cycles, %llu dual-issue pairs, I$ %llu / "
                 "D$ %llu misses, exit %lld\n",
                 (unsigned long long)R->Instructions,
                 (unsigned long long)R->Nops,
                 (unsigned long long)R->Loads,
                 (unsigned long long)R->Stores,
                 (unsigned long long)R->Cycles,
                 (unsigned long long)R->DualIssuePairs,
                 (unsigned long long)R->ICacheMisses,
                 (unsigned long long)R->DCacheMisses,
                 (long long)R->ExitCode);
  return static_cast<int>(R->ExitCode & 0x7F);
}

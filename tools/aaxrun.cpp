//===- tools/aaxrun.cpp - Run an executable on the simulator ---------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an .aaxe image. The program's PAL output goes to stdout and
/// the process exit code is the simulated program's.
///
///   aaxrun [--functional] [--stats] [--stats-json FILE] [--max-insts N]
///          [--profile-out FILE] a.aaxe
///
/// --stats prints the run's observability block (instruction-class
/// histogram, load/store/branch mix, cache hit rates, simulated MIPS) to
/// stderr; --stats-json writes the same data as JSON to FILE ("-" for
/// stdout). --profile-out collects an execution profile (per-procedure
/// heat, branch taken/fall-through counts, dynamic call edges) and writes
/// it to FILE in the AAXP format `omlink --profile-in` consumes.
///
//===----------------------------------------------------------------------===//

#include "objfile/Image.h"
#include "sim/SimStats.h"
#include "sim/Simulator.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace om64;

static int usage() {
  std::fprintf(stderr,
               "usage: aaxrun [--functional] [--stats] [--stats-json FILE] "
               "[--max-insts N] [--profile-out FILE] a.aaxe\n");
  return 2;
}

int main(int argc, char **argv) {
  std::string Input;
  std::string StatsJsonPath;
  std::string ProfileOutPath;
  sim::SimConfig Cfg;
  bool Stats = false;

  // Accept both "--flag value" and "--flag=value" spellings.
  std::vector<std::string> Argv;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-' &&
        (Eq = Arg.find('=')) != std::string::npos) {
      Argv.push_back(Arg.substr(0, Eq));
      Argv.push_back(Arg.substr(Eq + 1));
    } else {
      Argv.push_back(Arg);
    }
  }
  const size_t NArgs = Argv.size();
  for (size_t I = 0; I < NArgs; ++I) {
    const std::string &Arg = Argv[I];
    if (Arg == "--functional") {
      Cfg.Timing = false;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--stats-json" && I + 1 < NArgs) {
      StatsJsonPath = Argv[++I];
    } else if (Arg == "--max-insts" && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I]);
      if (!V) {
        std::fprintf(stderr, "aaxrun: --max-insts: %s\n",
                     V.message().c_str());
        return 2;
      }
      Cfg.MaxInstructions = *V;
    } else if (Arg == "--profile-out" && I + 1 < NArgs) {
      ProfileOutPath = Argv[++I];
      Cfg.Profile = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else if (Input.empty()) {
      Input = Arg;
    } else {
      return usage();
    }
  }
  if (Input.empty())
    return usage();

  Result<std::vector<uint8_t>> Bytes = readFileBytes(Input);
  if (!Bytes) {
    std::fprintf(stderr, "aaxrun: %s\n", Bytes.message().c_str());
    return 1;
  }
  Result<obj::Image> Img = obj::Image::deserialize(*Bytes);
  if (!Img) {
    std::fprintf(stderr, "aaxrun: %s: %s\n", Input.c_str(),
                 Img.message().c_str());
    return 1;
  }

  Result<sim::SimResult> R = sim::run(*Img, Cfg);
  if (!R) {
    std::fprintf(stderr, "aaxrun: %s\n", R.message().c_str());
    return 1;
  }
  std::fputs(R->Output.c_str(), stdout);
  if (Stats && !R->ProfileCounts.empty()) {
    std::fprintf(stderr, "aaxrun: profile counters:\n");
    for (size_t Idx = 0; Idx < R->ProfileCounts.size(); ++Idx)
      std::fprintf(stderr, "  count[%zu] = %llu\n", Idx,
                   (unsigned long long)R->ProfileCounts[Idx]);
  }
  if (Stats) {
    std::fprintf(stderr, "aaxrun: run statistics (exit %lld):\n",
                 (long long)R->ExitCode);
    std::fputs(sim::statsText(*R, Cfg.Timing).c_str(), stderr);
  }
  if (!ProfileOutPath.empty()) {
    if (Error E = writeFileBytes(ProfileOutPath, R->Profile.serialize())) {
      std::fprintf(stderr, "aaxrun: %s\n", E.message().c_str());
      return 1;
    }
  }
  if (!StatsJsonPath.empty()) {
    std::string Json = sim::statsJson(*R, Cfg.Timing);
    if (StatsJsonPath == "-") {
      std::fputs(Json.c_str(), stdout);
    } else {
      std::vector<uint8_t> JsonBytes(Json.begin(), Json.end());
      if (Error E = writeFileBytes(StatsJsonPath, JsonBytes)) {
        std::fprintf(stderr, "aaxrun: %s\n", E.message().c_str());
        return 1;
      }
    }
  }
  return static_cast<int>(R->ExitCode & 0x7F);
}

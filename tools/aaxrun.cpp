//===- tools/aaxrun.cpp - Run an executable on the simulator ---------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an .aaxe image. The program's PAL output goes to stdout and
/// the process exit code is the simulated program's.
///
///   aaxrun [--functional] [--dispatch MODE] [--stats] [--stats-json FILE]
///          [--max-insts N] [--profile-out FILE] a.aaxe
///   aaxrun --suite [--jobs N] [common flags] a.aaxe b.aaxe ...
///
/// --dispatch selects the functional interpreter core: `threaded` (the
/// computed-goto core, the default) or `switch` (the legacy opcode-switch
/// core); timing and profiled runs always use the switch-based loops.
/// --stats prints the run's observability block (instruction-class
/// histogram, load/store/branch mix, cache hit rates, simulated MIPS) to
/// stderr; --stats-json writes the same data as JSON to FILE ("-" for
/// stdout). --profile-out collects an execution profile (per-procedure
/// heat, branch taken/fall-through counts, dynamic call edges) and writes
/// it to FILE in the AAXP format `omlink --profile-in` consumes.
///
/// --suite accepts several images and runs them concurrently on --jobs
/// pool threads (0 = hardware concurrency), printing each program's output
/// to stdout in command-line order regardless of completion order. A run
/// that faults reports `aaxrun: NAME: message` on stderr and the process
/// exits 1; otherwise the exit code is 0 (per-program exit codes are in
/// --stats / --stats-json). --profile-out is single-run only.
///
//===----------------------------------------------------------------------===//

#include "objfile/Image.h"
#include "sim/SimStats.h"
#include "sim/Simulator.h"
#include "sim/SuiteRunner.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace om64;

static int usage() {
  std::fprintf(
      stderr,
      "usage: aaxrun [--functional] [--dispatch threaded|switch] [--stats]\n"
      "              [--stats-json FILE] [--max-insts N] [--profile-out "
      "FILE]\n"
      "              a.aaxe\n"
      "       aaxrun --suite [--jobs N] [common flags] a.aaxe b.aaxe ...\n");
  return 2;
}

int main(int argc, char **argv) {
  std::vector<std::string> Inputs;
  std::string StatsJsonPath;
  std::string ProfileOutPath;
  sim::SimConfig Cfg;
  bool Stats = false;
  bool Suite = false;
  uint64_t SuiteJobs = 0; // 0 = hardware concurrency

  // Accept both "--flag value" and "--flag=value" spellings.
  std::vector<std::string> Argv;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-' &&
        (Eq = Arg.find('=')) != std::string::npos) {
      Argv.push_back(Arg.substr(0, Eq));
      Argv.push_back(Arg.substr(Eq + 1));
    } else {
      Argv.push_back(Arg);
    }
  }
  const size_t NArgs = Argv.size();
  for (size_t I = 0; I < NArgs; ++I) {
    const std::string &Arg = Argv[I];
    if (Arg == "--functional") {
      Cfg.Timing = false;
    } else if (Arg == "--dispatch" && I + 1 < NArgs) {
      const std::string &Mode = Argv[++I];
      if (Mode == "threaded") {
        Cfg.Dispatch = sim::DispatchMode::Threaded;
      } else if (Mode == "switch") {
        Cfg.Dispatch = sim::DispatchMode::Switch;
      } else {
        std::fprintf(stderr, "aaxrun: --dispatch: unknown mode '%s'\n",
                     Mode.c_str());
        return 2;
      }
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--suite") {
      Suite = true;
    } else if (Arg == "--jobs" && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I]);
      if (!V) {
        std::fprintf(stderr, "aaxrun: --jobs: %s\n", V.message().c_str());
        return 2;
      }
      SuiteJobs = *V;
    } else if (Arg == "--stats-json" && I + 1 < NArgs) {
      StatsJsonPath = Argv[++I];
    } else if (Arg == "--max-insts" && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I]);
      if (!V) {
        std::fprintf(stderr, "aaxrun: --max-insts: %s\n",
                     V.message().c_str());
        return 2;
      }
      Cfg.MaxInstructions = *V;
    } else if (Arg == "--profile-out" && I + 1 < NArgs) {
      ProfileOutPath = Argv[++I];
      Cfg.Profile = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty())
    return usage();
  if (!Suite && Inputs.size() > 1)
    return usage();
  // Profiles key against one image's procedure table; a merged multi-image
  // profile would be meaningless, so reject the combination outright.
  if (Suite && !ProfileOutPath.empty())
    return usage();

  std::vector<obj::Image> Images;
  Images.reserve(Inputs.size());
  for (const std::string &Input : Inputs) {
    Result<std::vector<uint8_t>> Bytes = readFileBytes(Input);
    if (!Bytes) {
      std::fprintf(stderr, "aaxrun: %s\n", Bytes.message().c_str());
      return 1;
    }
    Result<obj::Image> Img = obj::Image::deserialize(*Bytes);
    if (!Img) {
      std::fprintf(stderr, "aaxrun: %s: %s\n", Input.c_str(),
                   Img.message().c_str());
      return 1;
    }
    Images.push_back(std::move(*Img));
  }

  if (Suite) {
    std::vector<sim::SuiteJob> Jobs;
    Jobs.reserve(Images.size());
    for (size_t I = 0; I < Images.size(); ++I)
      Jobs.push_back({Inputs[I], &Images[I], Cfg});
    std::vector<sim::SuiteJobResult> Results =
        sim::runSuite(Jobs, static_cast<unsigned>(SuiteJobs));

    bool AnyFailed = false;
    std::string Json = "{\n  \"suite\": [\n";
    for (size_t I = 0; I < Results.size(); ++I) {
      const sim::SuiteJobResult &R = Results[I];
      if (!R.Ok) {
        std::fprintf(stderr, "aaxrun: %s: %s\n", R.Name.c_str(),
                     R.Error.c_str());
        AnyFailed = true;
        continue;
      }
      std::fputs(R.Result.Output.c_str(), stdout);
      if (Stats) {
        std::fprintf(stderr, "aaxrun: %s: run statistics (exit %lld):\n",
                     R.Name.c_str(), (long long)R.Result.ExitCode);
        std::fputs(sim::statsText(R.Result, Cfg.Timing).c_str(), stderr);
      }
      if (!StatsJsonPath.empty()) {
        Json += "    {\"name\": \"" + R.Name + "\",\n     \"exit_code\": " +
                std::to_string(R.Result.ExitCode) + ",\n     \"stats\": " +
                sim::statsJson(R.Result, Cfg.Timing);
        // statsJson ends with a newline; splice the closing brace in.
        while (!Json.empty() && Json.back() == '\n')
          Json.pop_back();
        Json += "}";
        Json += I + 1 < Results.size() ? ",\n" : "\n";
      }
    }
    Json += "  ]\n}\n";
    if (!StatsJsonPath.empty() && !AnyFailed) {
      if (StatsJsonPath == "-") {
        std::fputs(Json.c_str(), stdout);
      } else {
        std::vector<uint8_t> JsonBytes(Json.begin(), Json.end());
        if (Error E = writeFileBytes(StatsJsonPath, JsonBytes)) {
          std::fprintf(stderr, "aaxrun: %s\n", E.message().c_str());
          return 1;
        }
      }
    }
    return AnyFailed ? 1 : 0;
  }

  Result<sim::SimResult> R = sim::run(Images[0], Cfg);
  if (!R) {
    std::fprintf(stderr, "aaxrun: %s\n", R.message().c_str());
    return 1;
  }
  std::fputs(R->Output.c_str(), stdout);
  if (Stats && !R->ProfileCounts.empty()) {
    std::fprintf(stderr, "aaxrun: profile counters:\n");
    for (size_t Idx = 0; Idx < R->ProfileCounts.size(); ++Idx)
      std::fprintf(stderr, "  count[%zu] = %llu\n", Idx,
                   (unsigned long long)R->ProfileCounts[Idx]);
  }
  if (Stats) {
    std::fprintf(stderr, "aaxrun: run statistics (exit %lld):\n",
                 (long long)R->ExitCode);
    std::fputs(sim::statsText(*R, Cfg.Timing).c_str(), stderr);
  }
  if (!ProfileOutPath.empty()) {
    if (Error E = writeFileBytes(ProfileOutPath, R->Profile.serialize())) {
      std::fprintf(stderr, "aaxrun: %s\n", E.message().c_str());
      return 1;
    }
  }
  if (!StatsJsonPath.empty()) {
    std::string Json = sim::statsJson(*R, Cfg.Timing);
    if (StatsJsonPath == "-") {
      std::fputs(Json.c_str(), stdout);
    } else {
      std::vector<uint8_t> JsonBytes(Json.begin(), Json.end());
      if (Error E = writeFileBytes(StatsJsonPath, JsonBytes)) {
        std::fprintf(stderr, "aaxrun: %s\n", E.message().c_str());
        return 1;
      }
    }
  }
  return static_cast<int>(R->ExitCode & 0x7F);
}

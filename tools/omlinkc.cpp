//===- tools/omlinkc.cpp - Client for the omlinkd relink daemon ------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin client: sends one request to a running omlinkd and prints the
/// reply. The relink form mirrors omlink's option subset the daemon
/// supports, so swapping `omlink` for `omlinkc --socket S` in a build
/// command turns cold links into warm ones:
///
///   omlinkc --socket PATH -o out.aaxe obj1.aaxo obj2.aaxo ...
///   omlinkc --socket PATH --ping
///   omlinkc --socket PATH --shutdown
///
/// Relink options (same meanings as omlink): -O none|simple|full,
/// --sched, --analysis, --no-sort, --gat-max N, -j N / --jobs N,
/// --verify. Input and output paths are resolved by the daemon, so they
/// are sent absolute (made so here when relative).
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <limits.h>
#include <unistd.h>

using namespace om64;

static int usage() {
  std::fprintf(stderr,
               "usage: omlinkc --socket PATH [-O none|simple|full] [--sched]"
               "\n"
               "               [--analysis] [--no-sort] [--gat-max N]\n"
               "               [-j N | --jobs N] [--verify]\n"
               "               -o out.aaxe obj.aaxo...\n"
               "       omlinkc --socket PATH --ping\n"
               "       omlinkc --socket PATH --shutdown\n");
  return 2;
}

/// The daemon resolves paths in its own working directory; send absolute
/// paths so the client's cwd is what counts, like a local linker run.
static std::string absolutePath(const std::string &Path) {
  if (!Path.empty() && Path[0] == '/')
    return Path;
  char Buf[PATH_MAX];
  if (!getcwd(Buf, sizeof(Buf)))
    return Path;
  return std::string(Buf) + "/" + Path;
}

int main(int argc, char **argv) {
  std::string Socket;
  bool Ping = false, Shutdown = false;
  service::RelinkRequest Req;
  Req.OutputPath = "a.aaxe";
  Req.Opts.Jobs = 0;

  std::vector<std::string> Argv;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    size_t Eq;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-' &&
        (Eq = Arg.find('=')) != std::string::npos) {
      Argv.push_back(Arg.substr(0, Eq));
      Argv.push_back(Arg.substr(Eq + 1));
    } else {
      Argv.push_back(Arg);
    }
  }
  const size_t NArgs = Argv.size();
  for (size_t I = 0; I < NArgs; ++I) {
    const std::string &Arg = Argv[I];
    if (Arg == "--socket" && I + 1 < NArgs) {
      Socket = Argv[++I];
    } else if (Arg == "--ping") {
      Ping = true;
    } else if (Arg == "--shutdown") {
      Shutdown = true;
    } else if (Arg == "-o" && I + 1 < NArgs) {
      Req.OutputPath = Argv[++I];
    } else if (Arg == "-O" && I + 1 < NArgs) {
      std::string Level = Argv[++I];
      if (Level == "none")
        Req.Opts.Level = om::OmLevel::None;
      else if (Level == "simple")
        Req.Opts.Level = om::OmLevel::Simple;
      else if (Level == "full")
        Req.Opts.Level = om::OmLevel::Full;
      else
        return usage();
    } else if (Arg == "--sched") {
      Req.Opts.Reschedule = true;
      Req.Opts.AlignLoopTargets = true;
    } else if (Arg == "--analysis") {
      Req.Opts.Analysis = true;
    } else if (Arg == "--no-sort") {
      Req.Opts.SortDataBySize = false;
    } else if (Arg == "--verify") {
      Req.Opts.Verify = true;
    } else if (Arg == "--gat-max" && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I], ~0u);
      if (!V) {
        std::fprintf(stderr, "omlinkc: --gat-max: %s\n",
                     V.message().c_str());
        return 2;
      }
      Req.Opts.MaxGatEntriesPerGroup = static_cast<unsigned>(*V);
    } else if ((Arg == "-j" || Arg == "--jobs") && I + 1 < NArgs) {
      Result<uint64_t> V = parseUnsigned(Argv[++I], ~0u);
      if (!V) {
        std::fprintf(stderr, "omlinkc: %s: %s\n", Arg.c_str(),
                     V.message().c_str());
        return 2;
      }
      Req.Opts.Jobs = static_cast<unsigned>(*V);
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Req.InputPaths.push_back(Arg);
    }
  }
  if (Socket.empty())
    return usage();
  if (Ping && Shutdown)
    return usage();
  if (!Ping && !Shutdown && Req.InputPaths.empty())
    return usage();
  if (Req.Opts.Analysis && Req.Opts.Level != om::OmLevel::Full) {
    std::fprintf(stderr, "omlinkc: --analysis requires -O full\n");
    return 2;
  }

  Result<service::Response> R = [&] {
    if (Ping)
      return service::requestPing(Socket);
    if (Shutdown)
      return service::requestShutdown(Socket);
    Req.OutputPath = absolutePath(Req.OutputPath);
    for (std::string &P : Req.InputPaths)
      P = absolutePath(P);
    return service::requestRelink(Socket, Req);
  }();
  if (!R) {
    std::fprintf(stderr, "omlinkc: %s\n", R.message().c_str());
    return 1;
  }
  if (R->Status != 0) {
    std::fprintf(stderr, "omlinkc: daemon error: %s\n",
                 R->Message.c_str());
    return 1;
  }
  std::printf("omlinkc: %s (%.3f ms daemon time)\n", R->Message.c_str(),
              static_cast<double>(R->Micros) / 1000.0);
  if (!Ping && !Shutdown)
    std::printf(
        "omlinkc: summary cache %llu hit(s) / %llu miss(es)\n",
        static_cast<unsigned long long>(R->SummaryRoundHits),
        static_cast<unsigned long long>(R->SummaryRoundMisses));
  return 0;
}

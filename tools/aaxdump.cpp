//===- tools/aaxdump.cpp - Inspect objects and executables -----------------=//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// objdump-style inspection of .aaxo objects and .aaxe executables: file
/// kind is detected from the magic. Objects print sections, symbols, the
/// GAT literal pool, relocations (the paper's loader hints), procedure
/// descriptors, and a disassembly; executables print layout, procedures
/// with GP values, and a symbolized disassembly.
///
//===----------------------------------------------------------------------===//

#include "isa/Disassembler.h"
#include "objfile/Image.h"
#include "objfile/ObjectFile.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <cstdio>
#include <string>

using namespace om64;

static void dumpObject(const obj::ObjectFile &O) {
  std::printf("AAX object module '%s'\n", O.ModuleName.c_str());
  std::printf("  .text %zu  .data %zu  .bss %llu  GAT entries %zu\n",
              O.Text.size(), O.Data.size(),
              (unsigned long long)O.BssSize, O.Gat.size());

  std::printf("\nSYMBOLS\n");
  for (size_t Idx = 0; Idx < O.Symbols.size(); ++Idx) {
    const obj::Symbol &S = O.Symbols[Idx];
    std::printf("  [%3zu] %-28s %-6s +%-6llu %6llub%s%s%s\n", Idx,
                S.Name.c_str(),
                S.IsDefined ? obj::sectionName(S.Section) : "UNDEF",
                (unsigned long long)S.Offset, (unsigned long long)S.Size,
                S.IsProcedure ? " proc" : "", S.IsExported ? " exp" : "",
                S.IsDefined ? "" : " ext");
  }

  std::printf("\nGAT (literal pool)\n");
  for (size_t Idx = 0; Idx < O.Gat.size(); ++Idx)
    std::printf("  [%3zu] &%s\n", Idx,
                O.Symbols[O.Gat[Idx].SymbolIndex].Name.c_str());

  std::printf("\nRELOCATIONS\n");
  for (const obj::Reloc &R : O.Relocs) {
    std::printf("  %-6s +%-6llu %-12s", obj::sectionName(R.Section),
                (unsigned long long)R.Offset, obj::relocKindName(R.Kind));
    if (R.Kind == obj::RelocKind::Literal)
      std::printf(" gat[%u] lit#%u", R.GatIndex, R.LiteralId);
    else if (R.Kind == obj::RelocKind::GpDisp)
      std::printf(" %s pair+%llu anchor+%llu",
                  R.GpKind == 0 ? "prologue" : "postcall",
                  (unsigned long long)R.PairOffset,
                  (unsigned long long)R.AnchorOffset);
    else
      std::printf(" lit#%u", R.LiteralId);
    std::printf("\n");
  }

  std::printf("\nPROCEDURES\n");
  for (const obj::ProcDesc &P : O.Procs)
    std::printf("  %-28s +%-6llu %6llub  %s\n",
                O.Symbols[P.SymbolIndex].Name.c_str(),
                (unsigned long long)P.TextOffset,
                (unsigned long long)P.TextSize,
                P.UsesGp ? "uses-gp" : "gp-free");

  std::printf("\nDISASSEMBLY\n");
  std::vector<uint32_t> Words;
  for (size_t Off = 0; Off + 4 <= O.Text.size(); Off += 4)
    Words.push_back((uint32_t)O.Text[Off] | ((uint32_t)O.Text[Off + 1] << 8) |
                    ((uint32_t)O.Text[Off + 2] << 16) |
                    ((uint32_t)O.Text[Off + 3] << 24));
  std::fputs(
      isa::disassembleRegion(Words, 0,
                             [&](uint64_t Addr) -> std::string {
                               for (const obj::ProcDesc &P : O.Procs)
                                 if (P.TextOffset == Addr)
                                   return O.Symbols[P.SymbolIndex].Name;
                               return std::string();
                             })
          .c_str(),
      stdout);
}

static void dumpImage(const obj::Image &Img) {
  std::printf("AAX executable\n");
  std::printf("  text  %s..%s (%zu bytes)\n",
              formatHex64(Img.TextBase).c_str(),
              formatHex64(Img.TextBase + Img.Text.size()).c_str(),
              Img.Text.size());
  std::printf("  data  %s (%zu bytes + %llu bss)\n",
              formatHex64(Img.DataBase).c_str(), Img.Data.size(),
              (unsigned long long)Img.BssSize);
  std::printf("  GAT   %s (%llu bytes)\n", formatHex64(Img.GatBase).c_str(),
              (unsigned long long)Img.GatSize);
  std::printf("  entry %s (GP %s)\n", formatHex64(Img.Entry).c_str(),
              formatHex64(Img.InitialGp).c_str());

  std::printf("\nPROCEDURES\n");
  for (const obj::ImageProc &P : Img.Procs)
    std::printf("  %-28s %s %6llub  gp=%s (group %u)\n", P.Name.c_str(),
                formatHex64(P.Entry).c_str(), (unsigned long long)P.Size,
                formatHex64(P.GpValue).c_str(), P.GpGroup);

  std::printf("\nDISASSEMBLY\n");
  std::fputs(isa::disassembleRegion(
                 Img.textWords(), Img.TextBase,
                 [&](uint64_t Addr) { return Img.symbolAt(Addr); })
                 .c_str(),
             stdout);
}

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: aaxdump <file.aaxo|file.aaxe>\n");
    return 2;
  }
  Result<std::vector<uint8_t>> Bytes = readFileBytes(argv[1]);
  if (!Bytes) {
    std::fprintf(stderr, "aaxdump: %s\n", Bytes.message().c_str());
    return 1;
  }
  // Dispatch on the magic.
  if (Bytes->size() >= 4 && (*Bytes)[0] == 'A' && (*Bytes)[1] == 'A' &&
      (*Bytes)[2] == 'X' && (*Bytes)[3] == 'O') {
    Result<obj::ObjectFile> O = obj::ObjectFile::deserialize(*Bytes);
    if (!O) {
      std::fprintf(stderr, "aaxdump: %s\n", O.message().c_str());
      return 1;
    }
    dumpObject(*O);
    return 0;
  }
  if (Bytes->size() >= 4 && (*Bytes)[0] == 'A' && (*Bytes)[1] == 'A' &&
      (*Bytes)[2] == 'X' && (*Bytes)[3] == 'E') {
    Result<obj::Image> Img = obj::Image::deserialize(*Bytes);
    if (!Img) {
      std::fprintf(stderr, "aaxdump: %s\n", Img.message().c_str());
      return 1;
    }
    dumpImage(*Img);
    return 0;
  }
  std::fprintf(stderr, "aaxdump: %s: not an AAX object or executable\n",
               argv[1]);
  return 1;
}

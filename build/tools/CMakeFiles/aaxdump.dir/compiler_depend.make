# Empty compiler generated dependencies file for aaxdump.
# This may be replaced when dependencies are built.

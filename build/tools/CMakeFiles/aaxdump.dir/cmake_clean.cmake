file(REMOVE_RECURSE
  "CMakeFiles/aaxdump.dir/aaxdump.cpp.o"
  "CMakeFiles/aaxdump.dir/aaxdump.cpp.o.d"
  "aaxdump"
  "aaxdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aaxdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mlc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlc.dir/mlc.cpp.o"
  "CMakeFiles/mlc.dir/mlc.cpp.o.d"
  "mlc"
  "mlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for omlink.
# This may be replaced when dependencies are built.

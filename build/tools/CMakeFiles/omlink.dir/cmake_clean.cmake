file(REMOVE_RECURSE
  "CMakeFiles/omlink.dir/omlink.cpp.o"
  "CMakeFiles/omlink.dir/omlink.cpp.o.d"
  "omlink"
  "omlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

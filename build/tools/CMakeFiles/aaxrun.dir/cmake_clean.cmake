file(REMOVE_RECURSE
  "CMakeFiles/aaxrun.dir/aaxrun.cpp.o"
  "CMakeFiles/aaxrun.dir/aaxrun.cpp.o.d"
  "aaxrun"
  "aaxrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aaxrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

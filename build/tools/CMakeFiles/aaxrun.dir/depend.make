# Empty dependencies file for aaxrun.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for om64_objfile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/om64_objfile.dir/Image.cpp.o"
  "CMakeFiles/om64_objfile.dir/Image.cpp.o.d"
  "CMakeFiles/om64_objfile.dir/ObjectFile.cpp.o"
  "CMakeFiles/om64_objfile.dir/ObjectFile.cpp.o.d"
  "libom64_objfile.a"
  "libom64_objfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_objfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

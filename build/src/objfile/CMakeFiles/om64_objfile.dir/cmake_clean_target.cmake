file(REMOVE_RECURSE
  "libom64_objfile.a"
)

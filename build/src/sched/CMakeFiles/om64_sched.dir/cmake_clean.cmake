file(REMOVE_RECURSE
  "CMakeFiles/om64_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/om64_sched.dir/ListScheduler.cpp.o.d"
  "libom64_sched.a"
  "libom64_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libom64_sched.a"
)

# Empty compiler generated dependencies file for om64_sched.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ListScheduler.cpp" "src/sched/CMakeFiles/om64_sched.dir/ListScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/om64_sched.dir/ListScheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/om64_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/om64_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for om64_lang.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libom64_lang.a"
)

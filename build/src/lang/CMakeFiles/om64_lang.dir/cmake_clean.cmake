file(REMOVE_RECURSE
  "CMakeFiles/om64_lang.dir/Interp.cpp.o"
  "CMakeFiles/om64_lang.dir/Interp.cpp.o.d"
  "CMakeFiles/om64_lang.dir/Lexer.cpp.o"
  "CMakeFiles/om64_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/om64_lang.dir/Parser.cpp.o"
  "CMakeFiles/om64_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/om64_lang.dir/Sema.cpp.o"
  "CMakeFiles/om64_lang.dir/Sema.cpp.o.d"
  "libom64_lang.a"
  "libom64_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

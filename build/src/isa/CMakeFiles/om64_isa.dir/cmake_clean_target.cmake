file(REMOVE_RECURSE
  "libom64_isa.a"
)

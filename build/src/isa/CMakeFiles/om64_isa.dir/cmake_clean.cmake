file(REMOVE_RECURSE
  "CMakeFiles/om64_isa.dir/Disassembler.cpp.o"
  "CMakeFiles/om64_isa.dir/Disassembler.cpp.o.d"
  "CMakeFiles/om64_isa.dir/Inst.cpp.o"
  "CMakeFiles/om64_isa.dir/Inst.cpp.o.d"
  "CMakeFiles/om64_isa.dir/Registers.cpp.o"
  "CMakeFiles/om64_isa.dir/Registers.cpp.o.d"
  "libom64_isa.a"
  "libom64_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

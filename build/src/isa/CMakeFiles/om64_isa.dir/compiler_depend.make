# Empty compiler generated dependencies file for om64_isa.
# This may be replaced when dependencies are built.

# Empty dependencies file for om64_sim.
# This may be replaced when dependencies are built.

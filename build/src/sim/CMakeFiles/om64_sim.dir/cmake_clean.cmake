file(REMOVE_RECURSE
  "CMakeFiles/om64_sim.dir/Simulator.cpp.o"
  "CMakeFiles/om64_sim.dir/Simulator.cpp.o.d"
  "libom64_sim.a"
  "libom64_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libom64_sim.a"
)

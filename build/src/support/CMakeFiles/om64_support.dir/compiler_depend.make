# Empty compiler generated dependencies file for om64_support.
# This may be replaced when dependencies are built.

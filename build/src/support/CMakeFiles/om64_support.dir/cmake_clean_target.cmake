file(REMOVE_RECURSE
  "libom64_support.a"
)

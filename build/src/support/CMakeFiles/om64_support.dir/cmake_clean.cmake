file(REMOVE_RECURSE
  "CMakeFiles/om64_support.dir/ByteStream.cpp.o"
  "CMakeFiles/om64_support.dir/ByteStream.cpp.o.d"
  "CMakeFiles/om64_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/om64_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/om64_support.dir/FileIO.cpp.o"
  "CMakeFiles/om64_support.dir/FileIO.cpp.o.d"
  "CMakeFiles/om64_support.dir/Format.cpp.o"
  "CMakeFiles/om64_support.dir/Format.cpp.o.d"
  "CMakeFiles/om64_support.dir/Random.cpp.o"
  "CMakeFiles/om64_support.dir/Random.cpp.o.d"
  "libom64_support.a"
  "libom64_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/ByteStream.cpp" "src/support/CMakeFiles/om64_support.dir/ByteStream.cpp.o" "gcc" "src/support/CMakeFiles/om64_support.dir/ByteStream.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/support/CMakeFiles/om64_support.dir/Diagnostics.cpp.o" "gcc" "src/support/CMakeFiles/om64_support.dir/Diagnostics.cpp.o.d"
  "/root/repo/src/support/FileIO.cpp" "src/support/CMakeFiles/om64_support.dir/FileIO.cpp.o" "gcc" "src/support/CMakeFiles/om64_support.dir/FileIO.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/support/CMakeFiles/om64_support.dir/Format.cpp.o" "gcc" "src/support/CMakeFiles/om64_support.dir/Format.cpp.o.d"
  "/root/repo/src/support/Random.cpp" "src/support/CMakeFiles/om64_support.dir/Random.cpp.o" "gcc" "src/support/CMakeFiles/om64_support.dir/Random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libom64_codegen.a"
)

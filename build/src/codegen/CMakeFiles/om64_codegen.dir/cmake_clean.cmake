file(REMOVE_RECURSE
  "CMakeFiles/om64_codegen.dir/Codegen.cpp.o"
  "CMakeFiles/om64_codegen.dir/Codegen.cpp.o.d"
  "CMakeFiles/om64_codegen.dir/ProcGen.cpp.o"
  "CMakeFiles/om64_codegen.dir/ProcGen.cpp.o.d"
  "libom64_codegen.a"
  "libom64_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

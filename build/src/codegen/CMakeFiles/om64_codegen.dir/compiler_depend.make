# Empty compiler generated dependencies file for om64_codegen.
# This may be replaced when dependencies are built.

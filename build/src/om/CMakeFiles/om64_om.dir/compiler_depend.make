# Empty compiler generated dependencies file for om64_om.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/om/Emit.cpp" "src/om/CMakeFiles/om64_om.dir/Emit.cpp.o" "gcc" "src/om/CMakeFiles/om64_om.dir/Emit.cpp.o.d"
  "/root/repo/src/om/Lift.cpp" "src/om/CMakeFiles/om64_om.dir/Lift.cpp.o" "gcc" "src/om/CMakeFiles/om64_om.dir/Lift.cpp.o.d"
  "/root/repo/src/om/Om.cpp" "src/om/CMakeFiles/om64_om.dir/Om.cpp.o" "gcc" "src/om/CMakeFiles/om64_om.dir/Om.cpp.o.d"
  "/root/repo/src/om/Transforms.cpp" "src/om/CMakeFiles/om64_om.dir/Transforms.cpp.o" "gcc" "src/om/CMakeFiles/om64_om.dir/Transforms.cpp.o.d"
  "/root/repo/src/om/Verify.cpp" "src/om/CMakeFiles/om64_om.dir/Verify.cpp.o" "gcc" "src/om/CMakeFiles/om64_om.dir/Verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objfile/CMakeFiles/om64_objfile.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/om64_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/om64_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/om64_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/om64_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/om64_om.dir/Emit.cpp.o"
  "CMakeFiles/om64_om.dir/Emit.cpp.o.d"
  "CMakeFiles/om64_om.dir/Lift.cpp.o"
  "CMakeFiles/om64_om.dir/Lift.cpp.o.d"
  "CMakeFiles/om64_om.dir/Om.cpp.o"
  "CMakeFiles/om64_om.dir/Om.cpp.o.d"
  "CMakeFiles/om64_om.dir/Transforms.cpp.o"
  "CMakeFiles/om64_om.dir/Transforms.cpp.o.d"
  "CMakeFiles/om64_om.dir/Verify.cpp.o"
  "CMakeFiles/om64_om.dir/Verify.cpp.o.d"
  "libom64_om.a"
  "libom64_om.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_om.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

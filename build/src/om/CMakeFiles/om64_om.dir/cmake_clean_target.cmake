file(REMOVE_RECURSE
  "libom64_om.a"
)

file(REMOVE_RECURSE
  "libom64_workloads.a"
)

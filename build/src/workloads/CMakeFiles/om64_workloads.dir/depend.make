# Empty dependencies file for om64_workloads.
# This may be replaced when dependencies are built.

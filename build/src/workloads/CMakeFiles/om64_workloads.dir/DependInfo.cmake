
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Build.cpp" "src/workloads/CMakeFiles/om64_workloads.dir/Build.cpp.o" "gcc" "src/workloads/CMakeFiles/om64_workloads.dir/Build.cpp.o.d"
  "/root/repo/src/workloads/Programs.cpp" "src/workloads/CMakeFiles/om64_workloads.dir/Programs.cpp.o" "gcc" "src/workloads/CMakeFiles/om64_workloads.dir/Programs.cpp.o.d"
  "/root/repo/src/workloads/ProgramsFp.cpp" "src/workloads/CMakeFiles/om64_workloads.dir/ProgramsFp.cpp.o" "gcc" "src/workloads/CMakeFiles/om64_workloads.dir/ProgramsFp.cpp.o.d"
  "/root/repo/src/workloads/ProgramsInt.cpp" "src/workloads/CMakeFiles/om64_workloads.dir/ProgramsInt.cpp.o" "gcc" "src/workloads/CMakeFiles/om64_workloads.dir/ProgramsInt.cpp.o.d"
  "/root/repo/src/workloads/Runtime.cpp" "src/workloads/CMakeFiles/om64_workloads.dir/Runtime.cpp.o" "gcc" "src/workloads/CMakeFiles/om64_workloads.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/om64_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/om64_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/om64_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/om/CMakeFiles/om64_om.dir/DependInfo.cmake"
  "/root/repo/build/src/objfile/CMakeFiles/om64_objfile.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/om64_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/om64_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/om64_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/om64_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/om64_workloads.dir/Build.cpp.o"
  "CMakeFiles/om64_workloads.dir/Build.cpp.o.d"
  "CMakeFiles/om64_workloads.dir/Programs.cpp.o"
  "CMakeFiles/om64_workloads.dir/Programs.cpp.o.d"
  "CMakeFiles/om64_workloads.dir/ProgramsFp.cpp.o"
  "CMakeFiles/om64_workloads.dir/ProgramsFp.cpp.o.d"
  "CMakeFiles/om64_workloads.dir/ProgramsInt.cpp.o"
  "CMakeFiles/om64_workloads.dir/ProgramsInt.cpp.o.d"
  "CMakeFiles/om64_workloads.dir/Runtime.cpp.o"
  "CMakeFiles/om64_workloads.dir/Runtime.cpp.o.d"
  "libom64_workloads.a"
  "libom64_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

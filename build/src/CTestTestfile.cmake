# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("objfile")
subdirs("lang")
subdirs("sched")
subdirs("codegen")
subdirs("linker")
subdirs("om")
subdirs("sim")
subdirs("workloads")

file(REMOVE_RECURSE
  "libom64_linker.a"
)

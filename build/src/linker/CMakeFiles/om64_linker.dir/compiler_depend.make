# Empty compiler generated dependencies file for om64_linker.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/om64_linker.dir/Linker.cpp.o"
  "CMakeFiles/om64_linker.dir/Linker.cpp.o.d"
  "libom64_linker.a"
  "libom64_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om64_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_call_bookkeeping.
# This may be replaced when dependencies are built.

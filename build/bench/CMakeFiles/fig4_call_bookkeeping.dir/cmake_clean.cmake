file(REMOVE_RECURSE
  "CMakeFiles/fig4_call_bookkeeping.dir/fig4_call_bookkeeping.cpp.o"
  "CMakeFiles/fig4_call_bookkeeping.dir/fig4_call_bookkeeping.cpp.o.d"
  "fig4_call_bookkeeping"
  "fig4_call_bookkeeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_call_bookkeeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/gat_reduction.dir/gat_reduction.cpp.o"
  "CMakeFiles/gat_reduction.dir/gat_reduction.cpp.o.d"
  "gat_reduction"
  "gat_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gat_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

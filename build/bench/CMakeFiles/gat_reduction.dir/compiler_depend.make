# Empty compiler generated dependencies file for gat_reduction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_build_times.dir/fig7_build_times.cpp.o"
  "CMakeFiles/fig7_build_times.dir/fig7_build_times.cpp.o.d"
  "fig7_build_times"
  "fig7_build_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_build_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_build_times.
# This may be replaced when dependencies are built.

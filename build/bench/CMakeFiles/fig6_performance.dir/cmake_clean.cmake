file(REMOVE_RECURSE
  "CMakeFiles/fig6_performance.dir/fig6_performance.cpp.o"
  "CMakeFiles/fig6_performance.dir/fig6_performance.cpp.o.d"
  "fig6_performance"
  "fig6_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig3_address_loads.dir/fig3_address_loads.cpp.o"
  "CMakeFiles/fig3_address_loads.dir/fig3_address_loads.cpp.o.d"
  "fig3_address_loads"
  "fig3_address_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_address_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

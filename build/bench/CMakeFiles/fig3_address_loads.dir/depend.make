# Empty dependencies file for fig3_address_loads.
# This may be replaced when dependencies are built.

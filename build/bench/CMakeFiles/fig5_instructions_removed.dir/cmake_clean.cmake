file(REMOVE_RECURSE
  "CMakeFiles/fig5_instructions_removed.dir/fig5_instructions_removed.cpp.o"
  "CMakeFiles/fig5_instructions_removed.dir/fig5_instructions_removed.cpp.o.d"
  "fig5_instructions_removed"
  "fig5_instructions_removed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_instructions_removed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

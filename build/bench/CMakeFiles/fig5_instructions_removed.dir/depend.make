# Empty dependencies file for fig5_instructions_removed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/inspect_object.dir/inspect_object.cpp.o"
  "CMakeFiles/inspect_object.dir/inspect_object.cpp.o.d"
  "inspect_object"
  "inspect_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

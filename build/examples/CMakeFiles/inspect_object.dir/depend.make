# Empty dependencies file for inspect_object.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for om_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/om_pipeline.dir/om_pipeline.cpp.o"
  "CMakeFiles/om_pipeline.dir/om_pipeline.cpp.o.d"
  "om_pipeline"
  "om_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

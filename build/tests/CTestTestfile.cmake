# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/objfile_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/linker_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/om_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/endtoend_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/endtoend_test.dir/endtoend_test.cpp.o"
  "CMakeFiles/endtoend_test.dir/endtoend_test.cpp.o.d"
  "endtoend_test"
  "endtoend_test.pdb"
  "endtoend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

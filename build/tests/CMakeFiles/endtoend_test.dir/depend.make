# Empty dependencies file for endtoend_test.
# This may be replaced when dependencies are built.

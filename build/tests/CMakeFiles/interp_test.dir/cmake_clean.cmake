file(REMOVE_RECURSE
  "CMakeFiles/interp_test.dir/interp_test.cpp.o"
  "CMakeFiles/interp_test.dir/interp_test.cpp.o.d"
  "interp_test"
  "interp_test.pdb"
  "interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lang_test.
# This may be replaced when dependencies are built.

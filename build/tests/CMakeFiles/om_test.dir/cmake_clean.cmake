file(REMOVE_RECURSE
  "CMakeFiles/om_test.dir/om_test.cpp.o"
  "CMakeFiles/om_test.dir/om_test.cpp.o.d"
  "om_test"
  "om_test.pdb"
  "om_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

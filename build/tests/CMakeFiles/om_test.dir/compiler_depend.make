# Empty compiler generated dependencies file for om_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for linker_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for objfile_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/objfile_test.dir/objfile_test.cpp.o"
  "CMakeFiles/objfile_test.dir/objfile_test.cpp.o.d"
  "objfile_test"
  "objfile_test.pdb"
  "objfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

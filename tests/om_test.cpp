//===- tests/om_test.cpp - OM link-time optimizer tests -------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-transformation tests for OM: JSR->BSR conversion, GP-reset
/// nullification, prologue restoration and skipping, PV-load removal,
/// address-load conversion/nullification, GAT reduction, data sorting,
/// rescheduling, loop alignment, and the multi-GAT cases.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace om64;
using namespace om64::isa;
using namespace om64::obj;
using namespace om64::om;
using namespace om64::test;

namespace {

std::vector<ObjectFile> buildObjects(const std::string &Source,
                                     bool Schedule = true) {
  lang::Program P = parseProgram({{"t", Source}});
  cg::CompileOptions Opts;
  Opts.Schedule = Schedule;
  return compileAll(P, Opts);
}

OmResult runOm(const std::vector<ObjectFile> &Objs, OmLevel Level,
               bool Sched = false) {
  OmOptions Opts;
  Opts.Level = Level;
  Opts.Reschedule = Sched;
  Opts.AlignLoopTargets = Sched;
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R.take() : OmResult{};
}

unsigned countOpcode(const Image &Img, Opcode Op) {
  unsigned N = 0;
  for (uint32_t W : Img.textWords())
    if (std::optional<Inst> I = decode(W))
      N += I->Op == Op;
  return N;
}

std::string runImage(const Image &Img) {
  Result<sim::SimResult> R = sim::run(Img);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R->Output : "<error>";
}

constexpr const char *CallHeavySource = R"(
module t;
import io;
var total: int;
export func work(x: int): int {
  total = total + x;
  return total;
}
export func main(): int {
  var i: int;
  i = 0;
  while (i < 5) {
    i = i + 1;
    work(i);
  }
  io.print_int(total);
  return 0;
}
)";

TEST(OmTest, JsrsBecomeBsrs) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  EXPECT_GT(countOpcode(None.Image, Opcode::Jsr), 0u);
  // "even OM-simple can change essentially all JSRs in the test programs
  // to BSRs" -- only indirect calls remain, and there are none here.
  EXPECT_EQ(countOpcode(Simple.Image, Opcode::Jsr), 0u);
  EXPECT_GT(Simple.Stats.JsrConvertedToBsr, 0u);
  EXPECT_EQ(runImage(Simple.Image), runImage(None.Image));
}

TEST(OmTest, GpResetsNullified) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Full = runOm(Objs, OmLevel::Full);
  EXPECT_GT(None.Stats.CallsNeedingGpReset, 0u);
  // Single GAT: every reset is redundant at both levels.
  EXPECT_EQ(Simple.Stats.CallsNeedingGpReset, 0u);
  EXPECT_EQ(Full.Stats.CallsNeedingGpReset, 0u);
  EXPECT_EQ(Simple.Stats.CallsTotal, None.Stats.CallsTotal);
}

TEST(OmTest, SimpleKeepsPvLoadsWhenScheduled) {
  // With compile-time scheduling, prologues are dispersed, so OM-simple
  // cannot retarget BSRs past them and PV loads stay (section 5.1).
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource,
                                              /*Schedule=*/true);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Full = runOm(Objs, OmLevel::Full);
  // OM-simple can drop PV loads only for callees with no GP prologue at
  // all; calls to scheduled GP-using procedures keep theirs, because the
  // dispersed GP-set pair cannot be skipped without code motion.
  EXPECT_GT(Simple.Stats.CallsNeedingPvLoad, 0u)
      << "scheduled GP-using callees must keep PV loads under OM-simple";
  EXPECT_LT(Simple.Stats.CallsNeedingPvLoad,
            None.Stats.CallsNeedingPvLoad)
      << "GP-free callees lose their PV loads even at the simple level";
  EXPECT_EQ(Full.Stats.CallsNeedingPvLoad, 0u)
      << "OM-full restores prologues and removes every PV load here";
}

TEST(OmTest, SimpleSkipsPrologueWhenUnscheduled) {
  // Without compile-time scheduling, the GP-set pair is a clean entry
  // prefix and even OM-simple can skip it and drop the PV load.
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource,
                                              /*Schedule=*/false);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  EXPECT_LT(Simple.Stats.CallsNeedingPvLoad, None.Stats.CallsNeedingPvLoad);
  EXPECT_EQ(runImage(Simple.Image), runImage(None.Image));
}

TEST(OmTest, FullDeletesSimpleNullifies) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Full = runOm(Objs, OmLevel::Full);
  // Sizes: simple never changes text size; full shrinks it.
  EXPECT_EQ(Simple.Stats.TextBytesAfter, None.Stats.TextBytesAfter);
  EXPECT_LT(Full.Stats.TextBytesAfter, Simple.Stats.TextBytesAfter);
  EXPECT_GT(Simple.Stats.InstructionsNullified, 0u);
  EXPECT_EQ(Simple.Stats.InstructionsDeleted, 0u);
  EXPECT_GT(Full.Stats.InstructionsDeleted,
            Simple.Stats.InstructionsNullified)
      << "full deletes at least what simple nullifies, plus prologues";
}

TEST(OmTest, AddressLoadsConvertedOrNullified) {
  // "small" and the small array end up inside the 16-bit GP window, so
  // their address loads are nullified outright; "huge" (256 KiB) is
  // reachable only via a 32-bit displacement, so its loads convert to
  // LDAH with the low half absorbed into the dereference (section 3's
  // second kind of elimination).
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var small: int;
var arr: int[128];
var pad: int[8192];
var huge: int[8192];
export func main(): int {
  var i: int;
  small = 7;
  i = 0;
  while (i < 10) {
    pad[i] = i;
    arr[i] = small + i;
    huge[i * 800 + 500] = arr[i] + pad[i];
    i = i + 1;
  }
  io.print_int(arr[9] + huge[7200 + 500]);
  return 0;
}
)");
  OmResult Full = runOm(Objs, OmLevel::Full);
  EXPECT_GT(Full.Stats.AddressLoadsNullified, 0u)
      << "scalar and near-array accesses become GP-relative";
  EXPECT_GT(Full.Stats.AddressLoadsConverted, 0u)
      << "far-array bases convert to LDAH with absorbed low halves";
  EXPECT_EQ(runImage(Full.Image), "41");

  // The same program must behave identically at every level (including
  // the conversion paths just taken).
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Sched = runOm(Objs, OmLevel::Full, /*Sched=*/true);
  EXPECT_EQ(runImage(Simple.Image), "41");
  EXPECT_EQ(runImage(Sched.Image), "41");
}

TEST(OmTest, GatShrinksByOrderOfMagnitude) {
  // On real workloads the GAT drops to a few percent of its size
  // (section 5.1: between 3% and 15%).
  Result<wl::BuiltWorkload> W = wl::buildWorkload("compress");
  ASSERT_TRUE(bool(W)) << W.message();
  Result<OmResult> Full =
      wl::linkWithOm(*W, wl::CompileMode::Each, OmOptions{});
  ASSERT_TRUE(bool(Full)) << Full.message();
  EXPECT_GT(Full->Stats.GatBytesBefore, 0u);
  EXPECT_LE(Full->Stats.GatBytesAfter * 4, Full->Stats.GatBytesBefore)
      << "expected at least a 4x GAT reduction";
}

TEST(OmTest, IndirectCallsKeepPvAndProcAddressesStayExact) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var f: funcptr;
export func callee(a: int): int { return a * 3; }
export func main(): int {
  f = &callee;
  io.print_int(f(14));
  return 0;
}
)");
  OmResult Full = runOm(Objs, OmLevel::Full);
  // The indirect call still needs PV.
  EXPECT_GE(Full.Stats.CallsNeedingPvLoad, 1u);
  EXPECT_GT(countOpcode(Full.Image, Opcode::Jsr), 0u);
  EXPECT_EQ(runImage(Full.Image), "42");
}

TEST(OmTest, MultiGroupKeepsCrossGroupResets) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.MaxGatEntriesPerGroup = 2; // force several GP groups
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_GT(R->Stats.GpGroups, 1u);
  // Some resets must survive: calls cross GP groups.
  EXPECT_GT(R->Stats.CallsNeedingGpReset, 0u);
  EXPECT_EQ(runImage(R->Image), "15");

  OmOptions SimpleOpts = Opts;
  SimpleOpts.Level = OmLevel::Simple;
  Result<OmResult> S = om::optimize(Objs, SimpleOpts);
  ASSERT_TRUE(bool(S)) << S.message();
  // OM-simple keeps every reset with multiple GATs; OM-full's call-graph
  // analysis finds the removable subset ("a few cases OM-simple misses").
  EXPECT_GE(S->Stats.CallsNeedingGpReset, R->Stats.CallsNeedingGpReset);
  EXPECT_EQ(runImage(S->Image), "15");
}

TEST(OmTest, DataSortingPutsSmallSymbolsFirst) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
var big: int[4096];
var tiny: int;
export func main(): int {
  big[100] = 5;
  tiny = big[100] + 2;
  return tiny;
}
)");
  OmResult Full = runOm(Objs, OmLevel::Full);
  uint64_t AddrBig = 0, AddrTiny = 0;
  for (const ImageSymbol &S : Full.Image.Symbols) {
    if (S.Name == "t.big")
      AddrBig = S.Addr;
    if (S.Name == "t.tiny")
      AddrTiny = S.Addr;
  }
  ASSERT_NE(AddrBig, 0u);
  ASSERT_NE(AddrTiny, 0u);
  EXPECT_LT(AddrTiny, AddrBig)
      << "size-ascending sort places the scalar near the GAT";

  // Baseline keeps declaration order.
  Result<Image> Base = lnk::link(Objs);
  ASSERT_TRUE(bool(Base)) << Base.message();
  uint64_t BaseBig = 0, BaseTiny = 0;
  for (const ImageSymbol &S : Base->Symbols) {
    if (S.Name == "t.big")
      BaseBig = S.Addr;
    if (S.Name == "t.tiny")
      BaseTiny = S.Addr;
  }
  EXPECT_GT(BaseTiny, BaseBig);
}

TEST(OmTest, RescheduleAndAlignPreserveBehaviour) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult Plain = runOm(Objs, OmLevel::Full, /*Sched=*/false);
  OmResult Sched = runOm(Objs, OmLevel::Full, /*Sched=*/true);
  EXPECT_EQ(runImage(Plain.Image), runImage(Sched.Image));
  // Alignment may insert nops; they are counted.
  EXPECT_GE(Sched.Stats.NopsInserted, 0u);
}

TEST(OmTest, LoopTargetsAreQuadwordAligned) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
var acc: int;
export func main(): int {
  var i: int;
  i = 0;
  while (i < 100) {
    acc = acc + i;
    i = i + 1;
  }
  return acc - 4950;
}
)");
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  // Every backward-branch target in the final image is 8-aligned.
  std::vector<uint32_t> Words = R->Image.textWords();
  for (size_t Idx = 0; Idx < Words.size(); ++Idx) {
    std::optional<Inst> I = decode(Words[Idx]);
    if (!I || classOf(I->Op) != InstClass::Branch ||
        I->Op == Opcode::Bsr)
      continue;
    if (I->Disp < 0) {
      uint64_t Target = R->Image.TextBase + Idx * 4 + 4 +
                        static_cast<int64_t>(I->Disp) * 4;
      EXPECT_EQ(Target % 8, 0u)
          << "backward target at index " << Idx << " misaligned";
    }
  }
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->ExitCode, 0);
}

TEST(OmTest, StatsTotalsAreConsistent) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  for (OmLevel L : {OmLevel::None, OmLevel::Simple, OmLevel::Full}) {
    OmResult R = runOm(Objs, L);
    const OmStats &S = R.Stats;
    EXPECT_LE(S.AddressLoadsConverted + S.AddressLoadsNullified,
              S.AddressLoadsTotal);
    EXPECT_LE(S.CallsNeedingPvLoad, S.CallsTotal);
    EXPECT_LE(S.CallsNeedingGpReset, S.CallsTotal);
    EXPECT_LE(S.GatBytesAfter, S.GatBytesBefore);
    if (L == OmLevel::None) {
      EXPECT_EQ(S.AddressLoadsConverted, 0u);
      EXPECT_EQ(S.AddressLoadsNullified, 0u);
      EXPECT_EQ(S.InstructionsDeleted, 0u);
      EXPECT_EQ(S.GatBytesAfter, S.GatBytesBefore);
    }
  }
}

TEST(OmTest, NoneLevelMatchesBaselineBehaviour) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  Result<Image> Base = lnk::link(Objs);
  ASSERT_TRUE(bool(Base)) << Base.message();
  OmResult None = runOm(Objs, OmLevel::None);
  Result<sim::SimResult> A = sim::run(*Base);
  Result<sim::SimResult> B = sim::run(None.Image);
  ASSERT_TRUE(bool(A) && bool(B));
  EXPECT_EQ(A->Output, B->Output);
  EXPECT_EQ(A->Instructions, B->Instructions)
      << "OM with no optimization should execute the same instruction "
         "stream as the standard linker";
}


TEST(OmInstrumentTest, CountsProcedureEntries) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.InstrumentProcedureCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_FALSE(R->ProfiledProcedures.empty());
  EXPECT_EQ(R->Stats.InstrumentationInserted,
            R->ProfiledProcedures.size());

  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "15") << "instrumentation altered behaviour";

  auto countOf = [&](const std::string &Name) -> uint64_t {
    for (size_t Idx = 0; Idx < R->ProfiledProcedures.size(); ++Idx)
      if (R->ProfiledProcedures[Idx] == Name)
        return Idx < Run->ProfileCounts.size() ? Run->ProfileCounts[Idx]
                                               : 0;
    ADD_FAILURE() << "no counter for " << Name;
    return 0;
  };
  EXPECT_EQ(countOf("t.main"), 1u);
  EXPECT_EQ(countOf("t.work"), 5u);
  EXPECT_EQ(countOf("io.print_int"), 1u);
  EXPECT_EQ(countOf("io.newline"), 0u);
}

TEST(OmInstrumentTest, CountsIndirectEntriesToo) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var f: funcptr;
export func callee(a: int): int { return a + 1; }
export func main(): int {
  var i: int;
  f = &callee;
  i = 0;
  while (i < 7) { i = f(i); }
  io.print_int(i);
  return 0;
}
)");
  OmOptions Opts;
  Opts.InstrumentProcedureCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "7");
  for (size_t Idx = 0; Idx < R->ProfiledProcedures.size(); ++Idx)
    if (R->ProfiledProcedures[Idx] == "t.callee")
      EXPECT_EQ(Run->ProfileCounts[Idx], 7u)
          << "indirect entries must be counted";
}

TEST(OmInstrumentTest, RequiresFullLevel) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.Level = OmLevel::Simple;
  Opts.InstrumentProcedureCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_FALSE(bool(R));
  EXPECT_NE(R.message().find("OM-full"), std::string::npos);
}

TEST(OmInstrumentTest, ComposesWithScheduling) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.InstrumentProcedureCounts = true;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "15");
}


TEST(OmInstrumentTest, BlockCountsTrackLoopIterations) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var acc: int;
export func main(): int {
  var i: int;
  i = 0;
  while (i < 9) {
    acc = acc + i;
    i = i + 1;
  }
  io.print_int(acc);
  return 0;
}
)");
  OmOptions Opts;
  Opts.InstrumentBlockCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "36") << "instrumentation altered behaviour";

  // main has a loop: some block in main must have executed 9 times (the
  // body) and another 10 times (the test), while main itself ran once.
  bool SawNine = false, SawTen = false;
  uint64_t MainEntry = ~0ull;
  for (size_t Idx = 0; Idx < R->ProfiledProcedures.size(); ++Idx) {
    const std::string &Label = R->ProfiledProcedures[Idx];
    if (Label.rfind("t.main", 0) != 0)
      continue;
    uint64_t Count =
        Idx < Run->ProfileCounts.size() ? Run->ProfileCounts[Idx] : 0;
    if (Label == "t.main")
      MainEntry = Count;
    SawNine |= Count == 9;
    SawTen |= Count == 10;
  }
  EXPECT_EQ(MainEntry, 1u);
  EXPECT_TRUE(SawNine) << "loop body block should count 9 iterations";
  EXPECT_TRUE(SawTen) << "loop test block should count 10 evaluations";
}

TEST(OmInstrumentTest, BlockCountsPreserveWorkloadBehaviour) {
  Result<wl::BuiltWorkload> W = wl::buildWorkload("eqntott");
  ASSERT_TRUE(bool(W)) << W.message();
  Result<Image> Base = wl::linkBaseline(*W, wl::CompileMode::Each);
  ASSERT_TRUE(bool(Base));
  Result<sim::SimResult> BaseRun = sim::run(*Base);
  ASSERT_TRUE(bool(BaseRun));

  OmOptions Opts;
  Opts.InstrumentBlockCounts = true;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Result<OmResult> R = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, BaseRun->Output);
  EXPECT_GT(R->Stats.InstrumentationInserted,
            R->ProfiledProcedures.size() / 2)
      << "block mode should insert more counters than procedures alone";
}

} // namespace

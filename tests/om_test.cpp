//===- tests/om_test.cpp - OM link-time optimizer tests -------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-transformation tests for OM: JSR->BSR conversion, GP-reset
/// nullification, prologue restoration and skipping, PV-load removal,
/// address-load conversion/nullification, GAT reduction, data sorting,
/// rescheduling, loop alignment, and the multi-GAT cases.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "om/Verify.h"

#include <gtest/gtest.h>

#include <set>

using namespace om64;
using namespace om64::isa;
using namespace om64::obj;
using namespace om64::om;
using namespace om64::test;

namespace {

std::vector<ObjectFile> buildObjects(const std::string &Source,
                                     bool Schedule = true) {
  lang::Program P = parseProgram({{"t", Source}});
  cg::CompileOptions Opts;
  Opts.Schedule = Schedule;
  return compileAll(P, Opts);
}

OmResult runOm(const std::vector<ObjectFile> &Objs, OmLevel Level,
               bool Sched = false) {
  OmOptions Opts;
  Opts.Level = Level;
  Opts.Reschedule = Sched;
  Opts.AlignLoopTargets = Sched;
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R.take() : OmResult{};
}

unsigned countOpcode(const Image &Img, Opcode Op) {
  unsigned N = 0;
  for (uint32_t W : Img.textWords())
    if (std::optional<Inst> I = decode(W))
      N += I->Op == Op;
  return N;
}

std::string runImage(const Image &Img) {
  Result<sim::SimResult> R = sim::run(Img);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.message());
  return R ? R->Output : "<error>";
}

constexpr const char *CallHeavySource = R"(
module t;
import io;
var total: int;
export func work(x: int): int {
  total = total + x;
  return total;
}
export func main(): int {
  var i: int;
  i = 0;
  while (i < 5) {
    i = i + 1;
    work(i);
  }
  io.print_int(total);
  return 0;
}
)";

TEST(OmTest, JsrsBecomeBsrs) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  EXPECT_GT(countOpcode(None.Image, Opcode::Jsr), 0u);
  // "even OM-simple can change essentially all JSRs in the test programs
  // to BSRs" -- only indirect calls remain, and there are none here.
  EXPECT_EQ(countOpcode(Simple.Image, Opcode::Jsr), 0u);
  EXPECT_GT(Simple.Stats.JsrConvertedToBsr, 0u);
  EXPECT_EQ(runImage(Simple.Image), runImage(None.Image));
}

TEST(OmTest, GpResetsNullified) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Full = runOm(Objs, OmLevel::Full);
  EXPECT_GT(None.Stats.CallsNeedingGpReset, 0u);
  // Single GAT: every reset is redundant at both levels.
  EXPECT_EQ(Simple.Stats.CallsNeedingGpReset, 0u);
  EXPECT_EQ(Full.Stats.CallsNeedingGpReset, 0u);
  EXPECT_EQ(Simple.Stats.CallsTotal, None.Stats.CallsTotal);
}

TEST(OmTest, SimpleKeepsPvLoadsWhenScheduled) {
  // With compile-time scheduling, prologues are dispersed, so OM-simple
  // cannot retarget BSRs past them and PV loads stay (section 5.1).
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource,
                                              /*Schedule=*/true);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Full = runOm(Objs, OmLevel::Full);
  // OM-simple can drop PV loads only for callees with no GP prologue at
  // all; calls to scheduled GP-using procedures keep theirs, because the
  // dispersed GP-set pair cannot be skipped without code motion.
  EXPECT_GT(Simple.Stats.CallsNeedingPvLoad, 0u)
      << "scheduled GP-using callees must keep PV loads under OM-simple";
  EXPECT_LT(Simple.Stats.CallsNeedingPvLoad,
            None.Stats.CallsNeedingPvLoad)
      << "GP-free callees lose their PV loads even at the simple level";
  EXPECT_EQ(Full.Stats.CallsNeedingPvLoad, 0u)
      << "OM-full restores prologues and removes every PV load here";
}

TEST(OmTest, SimpleSkipsPrologueWhenUnscheduled) {
  // Without compile-time scheduling, the GP-set pair is a clean entry
  // prefix and even OM-simple can skip it and drop the PV load.
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource,
                                              /*Schedule=*/false);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  EXPECT_LT(Simple.Stats.CallsNeedingPvLoad, None.Stats.CallsNeedingPvLoad);
  EXPECT_EQ(runImage(Simple.Image), runImage(None.Image));
}

TEST(OmTest, FullDeletesSimpleNullifies) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult None = runOm(Objs, OmLevel::None);
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Full = runOm(Objs, OmLevel::Full);
  // Sizes: simple never changes text size; full shrinks it.
  EXPECT_EQ(Simple.Stats.TextBytesAfter, None.Stats.TextBytesAfter);
  EXPECT_LT(Full.Stats.TextBytesAfter, Simple.Stats.TextBytesAfter);
  EXPECT_GT(Simple.Stats.InstructionsNullified, 0u);
  EXPECT_EQ(Simple.Stats.InstructionsDeleted, 0u);
  EXPECT_GT(Full.Stats.InstructionsDeleted,
            Simple.Stats.InstructionsNullified)
      << "full deletes at least what simple nullifies, plus prologues";
}

TEST(OmTest, AddressLoadsConvertedOrNullified) {
  // "small" and the small array end up inside the 16-bit GP window, so
  // their address loads are nullified outright; "huge" (256 KiB) is
  // reachable only via a 32-bit displacement, so its loads convert to
  // LDAH with the low half absorbed into the dereference (section 3's
  // second kind of elimination).
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var small: int;
var arr: int[128];
var pad: int[8192];
var huge: int[8192];
export func main(): int {
  var i: int;
  small = 7;
  i = 0;
  while (i < 10) {
    pad[i] = i;
    arr[i] = small + i;
    huge[i * 800 + 500] = arr[i] + pad[i];
    i = i + 1;
  }
  io.print_int(arr[9] + huge[7200 + 500]);
  return 0;
}
)");
  OmResult Full = runOm(Objs, OmLevel::Full);
  EXPECT_GT(Full.Stats.AddressLoadsNullified, 0u)
      << "scalar and near-array accesses become GP-relative";
  EXPECT_GT(Full.Stats.AddressLoadsConverted, 0u)
      << "far-array bases convert to LDAH with absorbed low halves";
  EXPECT_EQ(runImage(Full.Image), "41");

  // The same program must behave identically at every level (including
  // the conversion paths just taken).
  OmResult Simple = runOm(Objs, OmLevel::Simple);
  OmResult Sched = runOm(Objs, OmLevel::Full, /*Sched=*/true);
  EXPECT_EQ(runImage(Simple.Image), "41");
  EXPECT_EQ(runImage(Sched.Image), "41");
}

TEST(OmTest, GatShrinksByOrderOfMagnitude) {
  // On real workloads the GAT drops to a few percent of its size
  // (section 5.1: between 3% and 15%).
  Result<wl::BuiltWorkload> W = wl::buildWorkload("compress");
  ASSERT_TRUE(bool(W)) << W.message();
  Result<OmResult> Full =
      wl::linkWithOm(*W, wl::CompileMode::Each, OmOptions{});
  ASSERT_TRUE(bool(Full)) << Full.message();
  EXPECT_GT(Full->Stats.GatBytesBefore, 0u);
  EXPECT_LE(Full->Stats.GatBytesAfter * 4, Full->Stats.GatBytesBefore)
      << "expected at least a 4x GAT reduction";
}

TEST(OmTest, IndirectCallsKeepPvAndProcAddressesStayExact) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var f: funcptr;
export func callee(a: int): int { return a * 3; }
export func main(): int {
  f = &callee;
  io.print_int(f(14));
  return 0;
}
)");
  OmResult Full = runOm(Objs, OmLevel::Full);
  // The indirect call still needs PV.
  EXPECT_GE(Full.Stats.CallsNeedingPvLoad, 1u);
  EXPECT_GT(countOpcode(Full.Image, Opcode::Jsr), 0u);
  EXPECT_EQ(runImage(Full.Image), "42");
}

TEST(OmTest, MultiGroupKeepsCrossGroupResets) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.MaxGatEntriesPerGroup = 2; // force several GP groups
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  EXPECT_GT(R->Stats.GpGroups, 1u);
  // Some resets must survive: calls cross GP groups.
  EXPECT_GT(R->Stats.CallsNeedingGpReset, 0u);
  EXPECT_EQ(runImage(R->Image), "15");

  OmOptions SimpleOpts = Opts;
  SimpleOpts.Level = OmLevel::Simple;
  Result<OmResult> S = om::optimize(Objs, SimpleOpts);
  ASSERT_TRUE(bool(S)) << S.message();
  // OM-simple keeps every reset with multiple GATs; OM-full's call-graph
  // analysis finds the removable subset ("a few cases OM-simple misses").
  EXPECT_GE(S->Stats.CallsNeedingGpReset, R->Stats.CallsNeedingGpReset);
  EXPECT_EQ(runImage(S->Image), "15");
}

TEST(OmTest, DataSortingPutsSmallSymbolsFirst) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
var big: int[4096];
var tiny: int;
export func main(): int {
  big[100] = 5;
  tiny = big[100] + 2;
  return tiny;
}
)");
  OmResult Full = runOm(Objs, OmLevel::Full);
  uint64_t AddrBig = 0, AddrTiny = 0;
  for (const ImageSymbol &S : Full.Image.Symbols) {
    if (S.Name == "t.big")
      AddrBig = S.Addr;
    if (S.Name == "t.tiny")
      AddrTiny = S.Addr;
  }
  ASSERT_NE(AddrBig, 0u);
  ASSERT_NE(AddrTiny, 0u);
  EXPECT_LT(AddrTiny, AddrBig)
      << "size-ascending sort places the scalar near the GAT";

  // Baseline keeps declaration order.
  Result<Image> Base = lnk::link(Objs);
  ASSERT_TRUE(bool(Base)) << Base.message();
  uint64_t BaseBig = 0, BaseTiny = 0;
  for (const ImageSymbol &S : Base->Symbols) {
    if (S.Name == "t.big")
      BaseBig = S.Addr;
    if (S.Name == "t.tiny")
      BaseTiny = S.Addr;
  }
  EXPECT_GT(BaseTiny, BaseBig);
}

TEST(OmTest, RescheduleAndAlignPreserveBehaviour) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmResult Plain = runOm(Objs, OmLevel::Full, /*Sched=*/false);
  OmResult Sched = runOm(Objs, OmLevel::Full, /*Sched=*/true);
  EXPECT_EQ(runImage(Plain.Image), runImage(Sched.Image));
  // Alignment may insert nops; they are counted.
  EXPECT_GE(Sched.Stats.NopsInserted, 0u);
}

TEST(OmTest, LoopTargetsAreQuadwordAligned) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
var acc: int;
export func main(): int {
  var i: int;
  i = 0;
  while (i < 100) {
    acc = acc + i;
    i = i + 1;
  }
  return acc - 4950;
}
)");
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  // Every backward-branch target in the final image is 8-aligned.
  std::vector<uint32_t> Words = R->Image.textWords();
  for (size_t Idx = 0; Idx < Words.size(); ++Idx) {
    std::optional<Inst> I = decode(Words[Idx]);
    if (!I || classOf(I->Op) != InstClass::Branch ||
        I->Op == Opcode::Bsr)
      continue;
    if (I->Disp < 0) {
      uint64_t Target = R->Image.TextBase + Idx * 4 + 4 +
                        static_cast<int64_t>(I->Disp) * 4;
      EXPECT_EQ(Target % 8, 0u)
          << "backward target at index " << Idx << " misaligned";
    }
  }
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->ExitCode, 0);
}

TEST(OmTest, StatsTotalsAreConsistent) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  for (OmLevel L : {OmLevel::None, OmLevel::Simple, OmLevel::Full}) {
    OmResult R = runOm(Objs, L);
    const OmStats &S = R.Stats;
    EXPECT_LE(S.AddressLoadsConverted + S.AddressLoadsNullified,
              S.AddressLoadsTotal);
    EXPECT_LE(S.CallsNeedingPvLoad, S.CallsTotal);
    EXPECT_LE(S.CallsNeedingGpReset, S.CallsTotal);
    EXPECT_LE(S.GatBytesAfter, S.GatBytesBefore);
    if (L == OmLevel::None) {
      EXPECT_EQ(S.AddressLoadsConverted, 0u);
      EXPECT_EQ(S.AddressLoadsNullified, 0u);
      EXPECT_EQ(S.InstructionsDeleted, 0u);
      EXPECT_EQ(S.GatBytesAfter, S.GatBytesBefore);
    }
  }
}

TEST(OmTest, NoneLevelMatchesBaselineBehaviour) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  Result<Image> Base = lnk::link(Objs);
  ASSERT_TRUE(bool(Base)) << Base.message();
  OmResult None = runOm(Objs, OmLevel::None);
  Result<sim::SimResult> A = sim::run(*Base);
  Result<sim::SimResult> B = sim::run(None.Image);
  ASSERT_TRUE(bool(A) && bool(B));
  EXPECT_EQ(A->Output, B->Output);
  EXPECT_EQ(A->Instructions, B->Instructions)
      << "OM with no optimization should execute the same instruction "
         "stream as the standard linker";
}


TEST(OmInstrumentTest, CountsProcedureEntries) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.Level = OmLevel::Full;
  Opts.InstrumentProcedureCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  ASSERT_FALSE(R->ProfiledProcedures.empty());
  EXPECT_EQ(R->Stats.InstrumentationInserted,
            R->ProfiledProcedures.size());

  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "15") << "instrumentation altered behaviour";

  auto countOf = [&](const std::string &Name) -> uint64_t {
    for (size_t Idx = 0; Idx < R->ProfiledProcedures.size(); ++Idx)
      if (R->ProfiledProcedures[Idx] == Name)
        return Idx < Run->ProfileCounts.size() ? Run->ProfileCounts[Idx]
                                               : 0;
    ADD_FAILURE() << "no counter for " << Name;
    return 0;
  };
  EXPECT_EQ(countOf("t.main"), 1u);
  EXPECT_EQ(countOf("t.work"), 5u);
  EXPECT_EQ(countOf("io.print_int"), 1u);
  EXPECT_EQ(countOf("io.newline"), 0u);
}

TEST(OmInstrumentTest, CountsIndirectEntriesToo) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var f: funcptr;
export func callee(a: int): int { return a + 1; }
export func main(): int {
  var i: int;
  f = &callee;
  i = 0;
  while (i < 7) { i = f(i); }
  io.print_int(i);
  return 0;
}
)");
  OmOptions Opts;
  Opts.InstrumentProcedureCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "7");
  for (size_t Idx = 0; Idx < R->ProfiledProcedures.size(); ++Idx)
    if (R->ProfiledProcedures[Idx] == "t.callee") {
      EXPECT_EQ(Run->ProfileCounts[Idx], 7u)
          << "indirect entries must be counted";
    }
}

TEST(OmInstrumentTest, RequiresFullLevel) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.Level = OmLevel::Simple;
  Opts.InstrumentProcedureCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  EXPECT_FALSE(bool(R));
  EXPECT_NE(R.message().find("OM-full"), std::string::npos);
}

TEST(OmInstrumentTest, ComposesWithScheduling) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Opts;
  Opts.InstrumentProcedureCounts = true;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "15");
}


TEST(OmInstrumentTest, BlockCountsTrackLoopIterations) {
  std::vector<ObjectFile> Objs = buildObjects(R"(
module t;
import io;
var acc: int;
export func main(): int {
  var i: int;
  i = 0;
  while (i < 9) {
    acc = acc + i;
    i = i + 1;
  }
  io.print_int(acc);
  return 0;
}
)");
  OmOptions Opts;
  Opts.InstrumentBlockCounts = true;
  Result<OmResult> R = om::optimize(Objs, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, "36") << "instrumentation altered behaviour";

  // main has a loop: some block in main must have executed 9 times (the
  // body) and another 10 times (the test), while main itself ran once.
  bool SawNine = false, SawTen = false;
  uint64_t MainEntry = ~0ull;
  for (size_t Idx = 0; Idx < R->ProfiledProcedures.size(); ++Idx) {
    const std::string &Label = R->ProfiledProcedures[Idx];
    if (Label.rfind("t.main", 0) != 0)
      continue;
    uint64_t Count =
        Idx < Run->ProfileCounts.size() ? Run->ProfileCounts[Idx] : 0;
    if (Label == "t.main")
      MainEntry = Count;
    SawNine |= Count == 9;
    SawTen |= Count == 10;
  }
  EXPECT_EQ(MainEntry, 1u);
  EXPECT_TRUE(SawNine) << "loop body block should count 9 iterations";
  EXPECT_TRUE(SawTen) << "loop test block should count 10 evaluations";
}

TEST(OmInstrumentTest, BlockCountsPreserveWorkloadBehaviour) {
  Result<wl::BuiltWorkload> W = wl::buildWorkload("eqntott");
  ASSERT_TRUE(bool(W)) << W.message();
  Result<Image> Base = wl::linkBaseline(*W, wl::CompileMode::Each);
  ASSERT_TRUE(bool(Base));
  Result<sim::SimResult> BaseRun = sim::run(*Base);
  ASSERT_TRUE(bool(BaseRun));

  OmOptions Opts;
  Opts.InstrumentBlockCounts = true;
  Opts.Reschedule = true;
  Opts.AlignLoopTargets = true;
  Result<OmResult> R = wl::linkWithOm(*W, wl::CompileMode::Each, Opts);
  ASSERT_TRUE(bool(R)) << R.message();
  Result<sim::SimResult> Run = sim::run(R->Image);
  ASSERT_TRUE(bool(Run)) << Run.message();
  EXPECT_EQ(Run->Output, BaseRun->Output);
  EXPECT_GT(R->Stats.InstrumentationInserted,
            R->ProfiledProcedures.size() / 2)
      << "block mode should insert more counters than procedures alone";
}

/// Hand-assembles an object whose caller has its call-address load hoisted
/// above the prologue GP-set pair — the pattern a compile-time scheduler
/// produces. h.main loads &h.leaf into T5 *before* its prologue (legal:
/// the simulator enters main with GP already valid, and the prologue pair
/// reads only PV), copies T5 into PV after the prologue, and calls leaf,
/// which adds 7 to h.val (initially 35). main returns the final value: 42.
///
/// At OM-full, restoreProloguePair moves the pair to entry, shifting the
/// load from index 0 to index 2. Without index remapping, the literal's
/// stale LoadIdx makes the PV-load removal nullify the restored GpHigh —
/// main's GP is miscomputed and every later GAT access reads garbage.
ObjectFile makeHoistedLoadObject() {
  ObjectFile O;
  O.ModuleName = "h";
  auto addWord = [&O](const Inst &I) {
    uint32_t W = encode(I);
    for (unsigned B = 0; B < 4; ++B)
      O.Text.push_back(static_cast<uint8_t>(W >> (8 * B)));
  };
  // h.main at text offset 0.
  addWord(makeMem(Opcode::Ldq, T5, 0, GP));   //  0: lit0 load, &h.leaf
  addWord(makeMem(Opcode::Ldah, GP, 0, PV));  //  4: prologue GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));   //  8: prologue GpLow
  addWord(makeMem(Opcode::Lda, SP, -16, SP)); // 12
  addWord(makeMem(Opcode::Stq, RA, 0, SP));   // 16
  addWord(makeOp(Opcode::Bis, T5, T5, PV));   // 20: PV = &h.leaf
  addWord(makeJump(Opcode::Jsr, RA, PV));     // 24: JsrViaGat lit0
  addWord(makeMem(Opcode::Ldah, GP, 0, RA));  // 28: post-call GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));   // 32: post-call GpLow
  addWord(makeMem(Opcode::Ldq, T1, 0, GP));   // 36: lit1 load, &h.val
  addWord(makeMem(Opcode::Ldq, V0, 0, T1));   // 40: LitUseMem lit1
  addWord(makeMem(Opcode::Ldq, RA, 0, SP));   // 44
  addWord(makeMem(Opcode::Lda, SP, 16, SP));  // 48
  addWord(makeJump(Opcode::Ret, Zero, RA));   // 52
  // h.leaf at text offset 56: h.val = h.val + 7.
  addWord(makeMem(Opcode::Ldah, GP, 0, PV));  // 56: prologue GpHigh
  addWord(makeMem(Opcode::Lda, GP, 0, GP));   // 60: prologue GpLow
  addWord(makeMem(Opcode::Ldq, T0, 0, GP));   // 64: lit2 load, &h.val
  addWord(makeMem(Opcode::Ldq, T1, 0, T0));   // 68: LitUseMem lit2
  addWord(makeMem(Opcode::Lda, T1, 7, T1));   // 72
  addWord(makeMem(Opcode::Stq, T1, 0, T0));   // 76: LitUseMem lit2
  addWord(makeJump(Opcode::Ret, Zero, RA));   // 80

  O.Data.assign(8, 0);
  O.Data[0] = 35;

  Symbol Main;
  Main.Name = "h.main";
  Main.Section = SectionKind::Text;
  Main.Size = 56;
  Main.IsProcedure = Main.IsExported = Main.IsDefined = true;
  Symbol Leaf = Main;
  Leaf.Name = "h.leaf";
  Leaf.Offset = 56;
  Leaf.Size = 28;
  Symbol Val;
  Val.Name = "h.val";
  Val.Section = SectionKind::Data;
  Val.Size = 8;
  Val.IsExported = Val.IsDefined = true;
  O.Symbols = {Main, Leaf, Val};
  O.Gat = {{1, 0}, {2, 0}}; // &h.leaf, &h.val

  auto lit = [](uint64_t Off, uint32_t GatIndex, uint32_t LitId) {
    Reloc R;
    R.Kind = RelocKind::Literal;
    R.Offset = Off;
    R.GatIndex = GatIndex;
    R.LiteralId = LitId;
    return R;
  };
  auto use = [](RelocKind K, uint64_t Off, uint32_t LitId) {
    Reloc R;
    R.Kind = K;
    R.Offset = Off;
    R.LiteralId = LitId;
    return R;
  };
  auto gpdisp = [](uint64_t Off, uint64_t Anchor, GpDispKind K) {
    Reloc R;
    R.Kind = RelocKind::GpDisp;
    R.Offset = Off;
    R.AnchorOffset = Anchor;
    R.PairOffset = 4;
    R.GpKind = static_cast<uint8_t>(K);
    return R;
  };
  O.Relocs = {lit(0, 0, 0),
              gpdisp(4, 0, GpDispKind::Prologue),
              use(RelocKind::LituseJsr, 24, 0),
              gpdisp(28, 28, GpDispKind::PostCall),
              lit(36, 1, 1),
              use(RelocKind::LituseBase, 40, 1),
              gpdisp(56, 56, GpDispKind::Prologue),
              lit(64, 1, 2),
              use(RelocKind::LituseBase, 68, 2),
              use(RelocKind::LituseBase, 76, 2)};

  ProcDesc MainDesc;
  MainDesc.TextSize = 56;
  ProcDesc LeafDesc;
  LeafDesc.SymbolIndex = 1;
  LeafDesc.TextOffset = 56;
  LeafDesc.TextSize = 28;
  O.Procs = {MainDesc, LeafDesc};
  return O;
}

TEST(OmVerifyTest, PrologueRestorationKeepsLiteralIndices) {
  std::vector<ObjectFile> Objs = {makeHoistedLoadObject()};
  ASSERT_FALSE(bool(Objs[0].verify())) << Objs[0].verify().message();

  // The miscompile was silent behavioural corruption: OM-full used to
  // nullify main's restored GpHigh through the stale LoadIdx, leaving GP
  // wrong for every later GAT access. All levels must agree on exit 42.
  for (OmLevel Level : {OmLevel::None, OmLevel::Simple, OmLevel::Full}) {
    for (bool Sched : {false, true}) {
      if (Sched && Level != OmLevel::Full)
        continue;
      OmResult R = runOm(Objs, Level, Sched);
      Result<sim::SimResult> Run = sim::run(R.Image);
      ASSERT_TRUE(bool(Run))
          << "OM-" << levelName(Level) << (Sched ? "+sched" : "") << ": "
          << Run.message();
      EXPECT_EQ(Run->ExitCode, 42)
          << "OM-" << levelName(Level) << (Sched ? "+sched" : "")
          << " miscompiled the hoisted-load caller";
    }
  }

  // The invariant checker agrees: a link with per-stage verification on
  // succeeds only when the restoration remapped every literal index.
  OmOptions Opts;
  Opts.VerifyEachStage = true;
  Result<OmResult> Checked = om::optimize(Objs, Opts);
  EXPECT_TRUE(bool(Checked)) << Checked.message();

  // And the differential harness proves all levels architecturally equal.
  Result<DifferentialReport> Rep = om::runDifferential(Objs, Opts);
  ASSERT_TRUE(bool(Rep)) << Rep.message();
  EXPECT_EQ(Rep->Legs.size(), 4u);
  for (const DifferentialLeg &Leg : Rep->Legs)
    EXPECT_EQ(Leg.ExitCode, 42);
}

/// Minimal two-symbol program for direct verifier unit tests: one
/// procedure with a prologue pair and an address load of a datum.
SymbolicProgram makeTinySymbolicProgram() {
  SymbolicProgram SP;
  PSym ProcSym;
  ProcSym.Name = "m.p";
  ProcSym.IsProc = true;
  ProcSym.ProcIdx = 0;
  PSym Datum;
  Datum.Name = "m.v";
  Datum.Size = 8;
  SP.Syms = {ProcSym, Datum};

  SymProc P;
  P.Name = "m.p";
  P.SymId = 0;
  SymInst High;
  High.Kind = SKind::GpHigh;
  High.GpKind = GpDispKind::Prologue;
  High.PairId = 0;
  SymInst Low;
  Low.Kind = SKind::GpLow;
  Low.GpKind = GpDispKind::Prologue;
  Low.PairId = 0;
  SymInst Load;
  Load.Kind = SKind::AddressLoad;
  Load.LitId = 0;
  Load.TargetSym = 1;
  SymInst Use;
  Use.Kind = SKind::LitUseMem;
  Use.LitId = 0;
  P.Insts = {High, Low, Load, Use};
  SP.Procs.push_back(std::move(P));

  LitInfo L;
  L.Proc = 0;
  L.LoadIdx = 2;
  L.TargetSym = 1;
  L.MemUses = {3};
  SP.Lits[0] = L;
  return SP;
}

TEST(OmVerifyTest, VerifierRejectsStaleLoadIndex) {
  SymbolicProgram SP = makeTinySymbolicProgram();
  EXPECT_FALSE(bool(verifyStage(SP, "unit"))) << "baseline must be clean";

  // Point the literal at the GpHigh instead of its load — exactly what a
  // missing remap after restoreProloguePair produces.
  SP.Lits[0].LoadIdx = 0;
  Error E = verifyStage(SP, "unit");
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("unit"), std::string::npos)
      << "diagnostic must carry the stage label: " << E.message();
  EXPECT_NE(E.message().find("m.p"), std::string::npos)
      << "diagnostic must name the procedure: " << E.message();
}

TEST(OmVerifyTest, VerifierRejectsHalfNullifiedPair) {
  SymbolicProgram SP = makeTinySymbolicProgram();
  SP.Procs[0].Insts[0].Nullified = true; // GpHigh only: corrupts GP
  Error E = verifyStage(SP, "unit");
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("half-nullified"), std::string::npos)
      << E.message();

  SP.Procs[0].Insts[1].Nullified = true; // both halves: a legal no-op pair
  EXPECT_FALSE(bool(verifyStage(SP, "unit")));
}

TEST(OmVerifyTest, VerifierRejectsNullifiedLoadWithLiveJsr) {
  SymbolicProgram SP = makeTinySymbolicProgram();
  SymInst Jsr;
  Jsr.Kind = SKind::JsrViaGat;
  Jsr.LitId = 0;
  SP.Procs[0].Insts.push_back(Jsr);
  SP.Lits[0].JsrIdx = 4;
  ASSERT_FALSE(bool(verifyStage(SP, "unit")));

  // Nullifying the PV load while the JSR still jumps through the loaded
  // register is the exact miscompile the PV-load removal can commit.
  SP.Procs[0].Insts[2].Nullified = true;
  Error E = verifyStage(SP, "unit");
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("nullified"), std::string::npos)
      << E.message();
}

TEST(OmVerifyTest, ReachableGroupsSaturateBeyond64) {
  // More GP groups than the 64-bit reachability bitset can name: 70
  // single-procedure modules, each forced into its own group, plus main
  // and the runtime. Before saturation, group 64+g aliased group g and the
  // reset nullification dropped live cross-group GP resets.
  std::vector<std::pair<std::string, std::string>> Mods;
  std::string MainSrc = "module t;\nimport io;\n";
  std::string Body;
  for (int I = 1; I <= 70; ++I) {
    std::string N = "m" + std::to_string(I);
    Mods.push_back({N, "module " + N + ";\nvar v: int;\nexport func f(): "
                           "int { v = v + " +
                           std::to_string(I) + "; return v; }\n"});
    MainSrc += "import " + N + ";\n";
    Body += "  s = s + " + N + ".f();\n";
  }
  MainSrc += "export func main(): int {\n  var s: int;\n  s = 0;\n" + Body +
             "  io.print_int(s);\n  return 0;\n}\n";
  Mods.push_back({"t", MainSrc});

  lang::Program P = parseProgram(Mods);
  DiagnosticEngine Diags;
  ASSERT_TRUE(lang::checkEntryPoint(P, Diags)) << Diags.render();
  std::vector<ObjectFile> Objs = compileAll(P);

  OmOptions NoneOpts;
  NoneOpts.Level = OmLevel::None;
  NoneOpts.MaxGatEntriesPerGroup = 1;
  OmOptions FullOpts;
  FullOpts.Level = OmLevel::Full;
  FullOpts.MaxGatEntriesPerGroup = 1;
  FullOpts.VerifyEachStage = true;
  Result<OmResult> None = om::optimize(Objs, NoneOpts);
  Result<OmResult> Full = om::optimize(Objs, FullOpts);
  ASSERT_TRUE(bool(None)) << None.message();
  ASSERT_TRUE(bool(Full)) << Full.message();
  ASSERT_GT(Full->Stats.GpGroups, 64u)
      << "the regression needs more groups than the bitset holds";
  EXPECT_GT(Full->Stats.CallsNeedingGpReset, 0u)
      << "cross-group calls must keep their GP resets";

  Result<sim::SimResult> NoneRun = sim::run(None->Image);
  Result<sim::SimResult> FullRun = sim::run(Full->Image);
  ASSERT_TRUE(bool(NoneRun)) << NoneRun.message();
  ASSERT_TRUE(bool(FullRun)) << FullRun.message();
  EXPECT_EQ(FullRun->Output, NoneRun->Output);
  EXPECT_EQ(FullRun->ExitCode, 0);
}

TEST(OmVerifyTest, DifferentialHarnessAgrees) {
  std::vector<ObjectFile> Objs = buildObjects(CallHeavySource);
  OmOptions Base;
  Base.VerifyEachStage = true;
  Result<DifferentialReport> Rep = om::runDifferential(Objs, Base);
  ASSERT_TRUE(bool(Rep)) << Rep.message();
  ASSERT_EQ(Rep->Legs.size(), 4u);
  EXPECT_EQ(Rep->Legs[0].Level, OmLevel::None);
  OmResult None = runOm(Objs, OmLevel::None);
  EXPECT_EQ(Rep->Legs[0].Output, runImage(None.Image));
  for (const DifferentialLeg &Leg : Rep->Legs) {
    EXPECT_EQ(Leg.ExitCode, Rep->Legs[0].ExitCode);
    EXPECT_EQ(Leg.Output, Rep->Legs[0].Output);
    EXPECT_EQ(Leg.MemoryHash, Rep->Legs[0].MemoryHash);
  }
}

} // namespace

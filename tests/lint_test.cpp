//===- tests/lint_test.cpp - Binary lint gate tests -----------------------===//
//
// Part of the om64 project (PLDI 1994 OM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint half of the tier-1 gate: every SPEC92-shaped workload must
/// lint clean in both compile modes (a lint finding on real toolchain
/// output is either a toolchain bug or a lint false positive — both block
/// the gate), and the seeded corpus modules must each report exactly their
/// defect with the right code, procedure, and instruction provenance.
///
//===----------------------------------------------------------------------===//

#include "om/Analysis.h"
#include "om/OmImpl.h"
#include "support/ThreadPool.h"

#include "TestUtil.h"

using namespace om64;
using namespace om64::om;
using namespace om64::om::analysis;
using namespace om64::test;

namespace {

/// Lints the given objects; returns the findings count and fills
/// \p Rendered with the diagnostics.
unsigned lintObjects(const std::vector<obj::ObjectFile> &Objs,
                     std::string &Rendered) {
  ThreadPool Pool(0);
  OmOptions Opts;
  Result<SymbolicProgram> SP = liftProgram(Objs, Opts, Pool);
  EXPECT_TRUE(bool(SP)) << SP.message();
  if (!SP)
    return ~0u;
  ProgramAnalysis PA = analyzeProgram(*SP, Pool);
  DiagnosticEngine Diags;
  unsigned N = runLint(*SP, PA, Diags);
  Rendered = Diags.render();
  return N;
}

class WorkloadLintTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadLintTest, LintsClean) {
  const std::string &Name = GetParam();
  Result<wl::BuiltWorkload> W = wl::buildWorkload(Name);
  ASSERT_TRUE(bool(W)) << W.message();
  for (wl::CompileMode Mode : {wl::CompileMode::Each, wl::CompileMode::All}) {
    std::string Rendered;
    unsigned N = lintObjects(W->linkSet(Mode), Rendered);
    EXPECT_EQ(N, 0u) << Name << " ("
                     << (Mode == wl::CompileMode::Each ? "each" : "all")
                     << "): " << Rendered;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadLintTest,
                         ::testing::ValuesIn(wl::workloadNames()),
                         [](const auto &Info) { return Info.param; });

/// The corpus cases double as provenance goldens: the diagnostic must name
/// the defective procedure, not merely the code.
TEST(LintCorpusTest, FindingsCarryProvenance) {
  for (const LintCase &Case : lintCorpus()) {
    if (Case.Code.empty())
      continue;
    std::string Rendered;
    unsigned N = lintObjects({Case.Obj}, Rendered);
    ASSERT_EQ(N, 1u) << Case.Name << ":\n" << Rendered;
    EXPECT_NE(Rendered.find(Case.Code), std::string::npos) << Rendered;
    // Every corpus diagnostic is anchored in a lintcase procedure buffer.
    EXPECT_NE(Rendered.find("lint:lintcase."), std::string::npos)
        << Case.Name << " diagnostic lacks a procedure buffer:\n"
        << Rendered;
  }
}

/// The clean corpus module also survives a whole optimize() run — corpus
/// objects are real linkable modules, not just lint fixtures.
TEST(LintCorpusTest, CleanModuleLinks) {
  for (const LintCase &Case : lintCorpus()) {
    if (!Case.Code.empty())
      continue;
    OmOptions Opts;
    Opts.Level = OmLevel::Full;
    Result<OmResult> R = optimize({Case.Obj}, Opts);
    EXPECT_TRUE(bool(R)) << R.message();
  }
}

} // namespace
